// Package btree provides a B+tree keyed by 128-bit composite keys, the
// row-store index structure used by the Oracle/TPC-C baseline model in
// internal/baselines. Leaves are chained for ordered scans, and inserts
// split nodes exactly as a disk-page-oriented OLTP index would.
package btree

import "fmt"

// Key is a 128-bit composite key (e.g. table id : row id, or row : col).
type Key struct {
	Hi uint64
	Lo uint64
}

// Less orders keys lexicographically (Hi, then Lo).
func (k Key) Less(o Key) bool {
	if k.Hi != o.Hi {
		return k.Hi < o.Hi
	}
	return k.Lo < o.Lo
}

// order is the maximum number of keys per node; chosen so a node is about
// one "page" of key material.
const order = 64

type node struct {
	keys     []Key
	vals     []uint64 // leaf only
	children []*node  // internal only
	next     *node    // leaf chain
	leaf     bool
}

// Tree is a B+tree mapping Key to uint64.
// It is not safe for concurrent use.
type Tree struct {
	root   *node
	size   int
	height int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}, height: 1}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// search returns the index of the first key >= k in n.keys.
func search(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored at k.
func (t *Tree) Get(k Key) (uint64, bool) {
	n := t.root
	for !n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && !k.Less(n.keys[i]) {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return 0, false
}

// Upsert inserts k=v, or if k exists replaces its value with
// merge(existing, v); nil merge means replace. Returns true if a new key
// was inserted.
func (t *Tree) Upsert(k Key, v uint64, merge func(old, new uint64) uint64) bool {
	inserted, split, sepKey, right := t.insert(t.root, k, v, merge)
	if split {
		newRoot := &node{
			keys:     []Key{sepKey},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree) insert(n *node, k Key, v uint64, merge func(old, new uint64) uint64) (inserted, split bool, sepKey Key, right *node) {
	if n.leaf {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			if merge != nil {
				n.vals[i] = merge(n.vals[i], v)
			} else {
				n.vals[i] = v
			}
			return false, false, Key{}, nil
		}
		n.keys = append(n.keys, Key{})
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = k
		n.vals[i] = v
		if len(n.keys) > order {
			mid := len(n.keys) / 2
			r := &node{
				leaf: true,
				keys: append([]Key(nil), n.keys[mid:]...),
				vals: append([]uint64(nil), n.vals[mid:]...),
				next: n.next,
			}
			n.keys = n.keys[:mid]
			n.vals = n.vals[:mid]
			n.next = r
			return true, true, r.keys[0], r
		}
		return true, false, Key{}, nil
	}

	i := search(n.keys, k)
	if i < len(n.keys) && !k.Less(n.keys[i]) {
		i++
	}
	inserted, childSplit, childSep, childRight := t.insert(n.children[i], k, v, merge)
	if childSplit {
		n.keys = append(n.keys, Key{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = childSep
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = childRight
		if len(n.keys) > order {
			mid := len(n.keys) / 2
			sep := n.keys[mid]
			r := &node{
				keys:     append([]Key(nil), n.keys[mid+1:]...),
				children: append([]*node(nil), n.children[mid+1:]...),
			}
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
			return inserted, true, sep, r
		}
	}
	return inserted, false, Key{}, nil
}

// Iterate visits entries in key order, stopping early if f returns false.
func (t *Tree) Iterate(f func(k Key, v uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		for i := range n.keys {
			if !f(n.keys[i], n.vals[i]) {
				return
			}
		}
	}
}

// CheckInvariants validates ordering and structure; used by tests.
func (t *Tree) CheckInvariants() error {
	var prev *Key
	count := 0
	var bad error
	t.Iterate(func(k Key, _ uint64) bool {
		if prev != nil && !prev.Less(k) {
			bad = fmt.Errorf("btree: keys out of order: %v then %v", *prev, k)
			return false
		}
		kc := k
		prev = &kc
		count++
		return true
	})
	if bad != nil {
		return bad
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but iterated %d", t.size, count)
	}
	return nil
}
