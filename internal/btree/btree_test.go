package btree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyLess(t *testing.T) {
	if !(Key{0, 5}).Less(Key{1, 0}) {
		t.Fatal("Hi ordering broken")
	}
	if !(Key{1, 2}).Less(Key{1, 3}) {
		t.Fatal("Lo ordering broken")
	}
	if (Key{1, 3}).Less(Key{1, 3}) {
		t.Fatal("irreflexivity broken")
	}
}

func TestUpsertGet(t *testing.T) {
	tr := New()
	if !tr.Upsert(Key{1, 2}, 10, nil) {
		t.Fatal("first insert reported existing")
	}
	if tr.Upsert(Key{1, 2}, 20, nil) {
		t.Fatal("replace reported new")
	}
	v, ok := tr.Get(Key{1, 2})
	if !ok || v != 20 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if _, ok := tr.Get(Key{9, 9}); ok {
		t.Fatal("phantom key")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestUpsertMerge(t *testing.T) {
	tr := New()
	add := func(old, new uint64) uint64 { return old + new }
	for k := 0; k < 100; k++ {
		tr.Upsert(Key{0, 7}, 1, add)
	}
	v, _ := tr.Get(Key{0, 7})
	if v != 100 {
		t.Fatalf("merged = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	tr := New()
	n := 10000
	for k := 0; k < n; k++ {
		tr.Upsert(Key{0, uint64(k)}, uint64(k), nil)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d after %d inserts", tr.Height(), n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 1, 4999, 9999} {
		v, ok := tr.Get(Key{0, k})
		if !ok || v != k {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
}

func TestRandomAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		tr := New()
		ref := make(map[Key]uint64)
		for k := 0; k < 2000; k++ {
			key := Key{uint64(r.Intn(16)), uint64(r.Intn(256))}
			v := r.Uint64() % 1000
			tr.Upsert(key, v, nil)
			ref[key] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		for key, want := range ref {
			got, ok := tr.Get(key)
			if !ok || got != want {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestIterateSortedComplete(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(2))
	ref := make(map[Key]uint64)
	for k := 0; k < 5000; k++ {
		key := Key{r.Uint64() % 8, r.Uint64()}
		tr.Upsert(key, 1, func(o, n uint64) uint64 { return o + n })
		ref[key]++
	}
	var prev *Key
	seen := 0
	tr.Iterate(func(k Key, v uint64) bool {
		if prev != nil && !prev.Less(k) {
			t.Fatalf("out of order: %v then %v", *prev, k)
		}
		if ref[k] != v {
			t.Fatalf("key %v = %d, want %d", k, v, ref[k])
		}
		kc := k
		prev = &kc
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("iterated %d, want %d", seen, len(ref))
	}
}

func TestIterateEarlyStop(t *testing.T) {
	tr := New()
	for k := 0; k < 100; k++ {
		tr.Upsert(Key{0, uint64(k)}, 0, nil)
	}
	n := 0
	tr.Iterate(func(Key, uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("visited %d", n)
	}
}

func TestDescendingInsertOrder(t *testing.T) {
	tr := New()
	for k := 5000; k > 0; k-- {
		tr.Upsert(Key{0, uint64(k)}, uint64(k), nil)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v, ok := tr.Get(Key{0, 1})
	if !ok || v != 1 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
}
