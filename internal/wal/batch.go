package wal

import (
	"encoding/binary"
	"fmt"

	"hhgb/internal/gb"
)

// Batch record codec.
//
// One record encodes one ingest batch — the unit the sharded frontend logs
// per WAL frame and the network protocol carries per insert frame (the two
// deliberately share this encoding, so a server-side worker can frame a
// received batch into its log without re-encoding):
//
//	record := uvarint(n) ‖ n × uvarint(row) ‖ n × uvarint(col) ‖ n × uvarint(value)
//
// Values cross through a caller-supplied put/get pair (gb.Codec), so float
// types round-trip bit-exactly and integers losslessly. Column-major field
// grouping keeps the deltas of a future delta-encoding cheap and the decode
// loop branch-free.

// AppendBatchRecord encodes one batch onto buf and returns the extended
// slice.
func AppendBatchRecord[T gb.Number](buf []byte, rows, cols []gb.Index, vals []T, put func(T) uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	for _, c := range cols {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, put(v))
	}
	return buf
}

// DecodeBatchRecord parses a record produced by AppendBatchRecord. The
// record must be exactly one batch — trailing bytes are an error — and a
// corrupt length prefix can never demand more memory than the record could
// hold.
func DecodeBatchRecord[T gb.Number](rec []byte, get func(uint64) T) (rows, cols []gb.Index, vals []T, err error) {
	n, k := binary.Uvarint(rec)
	if k <= 0 {
		return nil, nil, nil, fmt.Errorf("%w: wal record: bad batch length", gb.ErrInvalidValue)
	}
	off := k
	// Each entry needs >=3 bytes (one per field); bound n before the
	// three n-element allocations so a corrupt count can't demand
	// gigabytes ahead of the truncated-field error it would hit anyway.
	if n > uint64(len(rec)-k)/3 {
		return nil, nil, nil, fmt.Errorf("%w: wal record: batch length %d exceeds record", gb.ErrInvalidValue, n)
	}
	next := func() (uint64, error) {
		v, k := binary.Uvarint(rec[off:])
		if k <= 0 {
			return 0, fmt.Errorf("%w: wal record: truncated field", gb.ErrInvalidValue)
		}
		off += k
		return v, nil
	}
	rows = make([]gb.Index, n)
	cols = make([]gb.Index, n)
	vals = make([]T, n)
	for i := range rows {
		v, err := next()
		if err != nil {
			return nil, nil, nil, err
		}
		rows[i] = gb.Index(v)
	}
	for i := range cols {
		v, err := next()
		if err != nil {
			return nil, nil, nil, err
		}
		cols[i] = gb.Index(v)
	}
	for i := range vals {
		v, err := next()
		if err != nil {
			return nil, nil, nil, err
		}
		vals[i] = get(v)
	}
	if off != len(rec) {
		return nil, nil, nil, fmt.Errorf("%w: wal record: %d trailing bytes", gb.ErrInvalidValue, len(rec)-off)
	}
	return rows, cols, vals, nil
}
