package wal

import (
	"encoding/binary"
	"fmt"

	"hhgb/internal/gb"
)

// Batch record codec.
//
// One record encodes one ingest batch — the unit the sharded frontend logs
// per WAL frame and the network protocol carries per insert frame (the two
// deliberately share this encoding, so a server-side worker can frame a
// received batch into its log without re-encoding):
//
//	record := uvarint(n) ‖ n × uvarint(row) ‖ n × uvarint(col) ‖ n × uvarint(value)
//
// Values cross through a caller-supplied put/get pair (gb.Codec), so float
// types round-trip bit-exactly and integers losslessly. Column-major field
// grouping keeps the deltas of a future delta-encoding cheap and the decode
// loop branch-free.

// AppendBatchRecord encodes one batch onto buf and returns the extended
// slice.
func AppendBatchRecord[T gb.Number](buf []byte, rows, cols []gb.Index, vals []T, put func(T) uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	for _, c := range cols {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	for _, v := range vals {
		buf = binary.AppendUvarint(buf, put(v))
	}
	return buf
}

// Decode errors are constructed once at package init: the zero-allocation
// decode path must not build error values per failure, and callers only
// ever errors.Is against gb.ErrInvalidValue anyway.
var (
	errBadBatchLen    = fmt.Errorf("%w: wal record: bad batch length", gb.ErrInvalidValue)
	errBatchTooLong   = fmt.Errorf("%w: wal record: batch length exceeds record", gb.ErrInvalidValue)
	errTruncatedField = fmt.Errorf("%w: wal record: truncated field", gb.ErrInvalidValue)
	errTrailingBytes  = fmt.Errorf("%w: wal record: trailing bytes", gb.ErrInvalidValue)
)

// DecodeBatchRecord parses a record produced by AppendBatchRecord. The
// record must be exactly one batch — trailing bytes are an error — and a
// corrupt length prefix can never demand more memory than the record could
// hold. It allocates fresh output slices; the streaming hot path uses
// DecodeBatchRecordInto with retained scratch instead.
func DecodeBatchRecord[T gb.Number](rec []byte, get func(uint64) T) (rows, cols []gb.Index, vals []T, err error) {
	return DecodeBatchRecordInto(rec, nil, nil, nil, get)
}

// DecodeBatchRecordInto parses a record produced by AppendBatchRecord into
// the provided scratch slices, reusing their capacity (contents are
// overwritten; lengths are reset). It returns the filled slices — which
// alias the scratch when capacity sufficed — and allocates nothing once
// the scratch has warmed to the working batch size.
//
//hhgb:noalloc
func DecodeBatchRecordInto[T gb.Number](rec []byte, rows, cols []gb.Index, vals []T, get func(uint64) T) ([]gb.Index, []gb.Index, []T, error) {
	n64, k := binary.Uvarint(rec)
	if k <= 0 {
		return nil, nil, nil, errBadBatchLen
	}
	// Each entry needs >=3 bytes (one per field); bound n before the
	// three n-element (re)allocations so a corrupt count can't demand
	// gigabytes ahead of the truncated-field error it would hit anyway.
	if n64 > uint64(len(rec)-k)/3 {
		return nil, nil, nil, errBatchTooLong
	}
	n := int(n64)
	if cap(rows) < n || cap(cols) < n || cap(vals) < n {
		rows, cols, vals = growBatchScratch(rows, cols, vals, n)
	}
	rows, cols, vals = rows[:n], cols[:n], vals[:n]
	off := k
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(rec[off:])
		if w <= 0 {
			return nil, nil, nil, errTruncatedField
		}
		off += w
		rows[i] = gb.Index(v)
	}
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(rec[off:])
		if w <= 0 {
			return nil, nil, nil, errTruncatedField
		}
		off += w
		cols[i] = gb.Index(v)
	}
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(rec[off:])
		if w <= 0 {
			return nil, nil, nil, errTruncatedField
		}
		off += w
		vals[i] = get(v)
	}
	if off != len(rec) {
		return nil, nil, nil, errTrailingBytes
	}
	return rows, cols, vals, nil
}

// growBatchScratch replaces any of the three scratch slices whose capacity
// is below n, keeping DecodeBatchRecordInto itself free of allocation
// sites. Old contents are not preserved — decode overwrites everything.
func growBatchScratch[T gb.Number](rows, cols []gb.Index, vals []T, n int) ([]gb.Index, []gb.Index, []T) {
	if cap(rows) < n {
		rows = make([]gb.Index, n)
	}
	if cap(cols) < n {
		cols = make([]gb.Index, n)
	}
	if cap(vals) < n {
		vals = make([]T, n)
	}
	return rows, cols, vals
}
