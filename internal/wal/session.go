package wal

import (
	"encoding/binary"
	"fmt"

	"hhgb/internal/gb"
)

// Session header codec.
//
// Exactly-once network ingest journals the deduplication key alongside
// every logged batch: a shard WAL record is a session header followed by
// the batch record,
//
//	record := uvarint(len(session)) ‖ session ‖ uvarint(seq) ‖ batch record
//
// where (session, seq) identifies the client insert frame the batch came
// from. Batches with no session (local ingest, appender handoffs) carry
// the two-byte empty header (len 0, seq 0), so one record format serves
// both paths and replay never guesses. Recovery replays the batch and
// advances the shard's per-session high-water mark to seq, rebuilding the
// dedup table the manifest checkpoint may not have caught up to.

// MaxSessionID caps a session identifier's length on both sides: the
// append path refuses to journal a longer one and a decoded length beyond
// it is corruption, never an allocation request.
const MaxSessionID = 256

// AppendSessionHeader encodes the (session, seq) dedup header onto buf and
// returns the extended slice. An empty session must carry seq 0.
func AppendSessionHeader(buf []byte, session string, seq uint64) ([]byte, error) {
	if len(session) > MaxSessionID {
		return nil, fmt.Errorf("%w: session id %d bytes > %d", gb.ErrInvalidValue, len(session), MaxSessionID)
	}
	if session == "" && seq != 0 {
		return nil, fmt.Errorf("%w: sequence %d without a session", gb.ErrInvalidValue, seq)
	}
	buf = binary.AppendUvarint(buf, uint64(len(session)))
	buf = append(buf, session...)
	buf = binary.AppendUvarint(buf, seq)
	return buf, nil
}

// DecodeSessionHeader parses the header produced by AppendSessionHeader
// and returns the remainder of the record (the batch record).
func DecodeSessionHeader(rec []byte) (session string, seq uint64, rest []byte, err error) {
	n, k := binary.Uvarint(rec)
	if k <= 0 {
		return "", 0, nil, fmt.Errorf("%w: wal record: bad session length", gb.ErrInvalidValue)
	}
	if n > MaxSessionID || n > uint64(len(rec)-k) {
		return "", 0, nil, fmt.Errorf("%w: wal record: session length %d exceeds record", gb.ErrInvalidValue, n)
	}
	off := k + int(n)
	session = string(rec[k:off])
	seq, k = binary.Uvarint(rec[off:])
	if k <= 0 {
		return "", 0, nil, fmt.Errorf("%w: wal record: truncated session seq", gb.ErrInvalidValue)
	}
	if session == "" && seq != 0 {
		return "", 0, nil, fmt.Errorf("%w: wal record: sequence %d without a session", gb.ErrInvalidValue, seq)
	}
	return session, seq, rec[off+k:], nil
}
