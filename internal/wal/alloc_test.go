package wal

import (
	"math"
	"testing"

	"hhgb/internal/gb"
)

// The WAL encode stage runs on every durable worker's apply path: a batch
// is framed into a retained record buffer before Append. Encode must not
// allocate once the buffer has warmed to the working batch size, and the
// streaming decode (recovery, network ingest replay) must fill retained
// scratch without allocating either. Both budgets are pinned at zero.

func allocBatch(n int) (rows, cols []gb.Index, vals []float64) {
	rows = make([]gb.Index, n)
	cols = make([]gb.Index, n)
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = gb.Index(i * 3)
		cols[i] = gb.Index(i*5 + 1)
		vals[i] = float64(i) + 0.25
	}
	return rows, cols, vals
}

func TestAllocBudgetAppendBatchRecord(t *testing.T) {
	rows, cols, vals := allocBatch(256)
	buf := AppendBatchRecord(nil, rows, cols, vals, math.Float64bits) // warm capacity
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendBatchRecord(buf[:0], rows, cols, vals, math.Float64bits)
	})
	if allocs != 0 {
		t.Fatalf("warm AppendBatchRecord allocates %.1f/op, budget is 0", allocs)
	}
}

func TestAllocBudgetDecodeBatchRecordInto(t *testing.T) {
	rows, cols, vals := allocBatch(256)
	rec := AppendBatchRecord(nil, rows, cols, vals, math.Float64bits)
	var dr, dc []gb.Index
	var dv []float64
	var err error
	dr, dc, dv, err = DecodeBatchRecordInto(rec, dr, dc, dv, math.Float64frombits) // warm scratch
	if err != nil {
		t.Fatalf("DecodeBatchRecordInto: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		dr, dc, dv, err = DecodeBatchRecordInto(rec, dr[:0], dc[:0], dv[:0], math.Float64frombits)
		if err != nil {
			t.Fatalf("DecodeBatchRecordInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm DecodeBatchRecordInto allocates %.1f/op, budget is 0", allocs)
	}
	if len(dr) != 256 || dr[255] != rows[255] || dv[255] != vals[255] {
		t.Fatalf("decode mismatch after alloc run")
	}
}
