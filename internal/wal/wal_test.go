package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want [][]byte
	for k := 0; k < 100; k++ {
		rec := []byte(fmt.Sprintf("record-%d", k))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 100 || w.Syncs() != 1 {
		t.Fatalf("records=%d syncs=%d", w.Records(), w.Syncs())
	}
	if w.Bytes() <= 0 {
		t.Fatalf("bytes=%d", w.Bytes())
	}

	r := NewReader(&buf)
	for k := 0; ; k++ {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			if k != len(want) {
				t.Fatalf("replayed %d records, want %d", k, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, want[k]) {
			t.Fatalf("record %d = %q, want %q", k, rec, want[k])
		}
	}
}

func TestEmptyRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	_ = w.Sync()
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil || len(rec) != 0 {
		t.Fatalf("empty record: %q, %v", rec, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("payload-to-corrupt"))
	_ = w.Sync()
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestTruncatedLog(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("0123456789"))
	_ = w.Sync()
	raw := buf.Bytes()
	r := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestUnsyncedDataNotVisible(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("small")) // stays in the 64 KiB buffer until Sync
	if buf.Len() != 0 {
		t.Fatalf("record leaked before Sync: %d bytes", buf.Len())
	}
	_ = w.Sync()
	if buf.Len() == 0 {
		t.Fatal("Sync flushed nothing")
	}
}

// tornAt frames one record, then returns the log cut to n bytes — the
// on-disk state a crash can leave at each byte of an unsynced append.
func tornAt(t *testing.T, rec []byte, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if n > buf.Len() {
		t.Fatalf("cut %d beyond frame of %d bytes", n, buf.Len())
	}
	return buf.Bytes()[:n]
}

func TestCleanEOFVsTornFrame(t *testing.T) {
	rec := bytes.Repeat([]byte{0xab}, 300) // 2-byte length varint
	full := tornAt(t, rec, len(tornAt(t, rec, 0))+2+4+300)

	// A log ending exactly on a frame boundary is a clean EOF ...
	r := NewReader(bytes.NewReader(full))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}

	// ... while every strictly-partial prefix of a frame is torn: the
	// reader must say ErrCorrupt, never a clean EOF, never a bare read
	// error the replay loop can't classify.
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		_, err := r.Next()
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d of %d: want ErrCorrupt, got %v", cut, len(full), err)
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("cut at %d: torn frame misreported as EOF", cut)
		}
	}
}

func TestTornFrameAfterIntactFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for k := 0; k < 5; k++ {
		if err := w.Append([]byte(fmt.Sprintf("intact-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Sync()
	raw := append([]byte(nil), buf.Bytes()...)
	raw = append(raw, 0x09, 0x00) // 9-byte frame announced, 1 byte present

	r := NewReader(bytes.NewReader(raw))
	for k := 0; k < 5; k++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("intact frame %d: %v", k, err)
		}
		if want := fmt.Sprintf("intact-%d", k); string(rec) != want {
			t.Fatalf("frame %d = %q, want %q", k, rec, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail after intact frames: want ErrCorrupt, got %v", err)
	}
}

func TestAbsurdLengthIsCorrupt(t *testing.T) {
	// A bit-rotted length varint must not become a giant allocation.
	raw := binary.AppendUvarint(nil, uint64(MaxRecord)+1)
	raw = append(raw, 0, 0, 0, 0)
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for absurd length, got %v", err)
	}
}

func TestFileSyncDurableAndRotate(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "seg-0.log")
	l, err := Create(p0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(p0); err != nil || st.Size() == 0 {
		t.Fatalf("segment after Sync: size=%v err=%v", st, err)
	}

	p1 := filepath.Join(dir, "seg-1.log")
	l2, err := l.Rotate(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if l2.Path() != p1 {
		t.Fatalf("Path() = %q, want %q", l2.Path(), p1)
	}

	for i, p := range []string{p0, p1} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReader(f)
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		want := []string{"first", "second"}[i]
		if string(rec) != want {
			t.Fatalf("segment %d = %q, want %q", i, rec, want)
		}
		if _, err := r.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("segment %d: want clean EOF, got %v", i, err)
		}
		_ = f.Close()
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	// Append must refuse what Next would have to discard as corruption,
	// so an fsync-confirmed record can never be silently dropped at
	// recovery. Nothing reaches the buffer: the cap check runs first.
	w := NewWriter(&bytes.Buffer{})
	rec := make([]byte, MaxRecord+1)
	if err := w.Append(rec); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
	if w.Records() != 0 {
		t.Fatalf("oversized record counted: %d", w.Records())
	}
}
