package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want [][]byte
	for k := 0; k < 100; k++ {
		rec := []byte(fmt.Sprintf("record-%d", k))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 100 || w.Syncs() != 1 {
		t.Fatalf("records=%d syncs=%d", w.Records(), w.Syncs())
	}
	if w.Bytes() <= 0 {
		t.Fatalf("bytes=%d", w.Bytes())
	}

	r := NewReader(&buf)
	for k := 0; ; k++ {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			if k != len(want) {
				t.Fatalf("replayed %d records, want %d", k, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, want[k]) {
			t.Fatalf("record %d = %q, want %q", k, rec, want[k])
		}
	}
}

func TestEmptyRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	_ = w.Sync()
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil || len(rec) != 0 {
		t.Fatalf("empty record: %q, %v", rec, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("payload-to-corrupt"))
	_ = w.Sync()
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestTruncatedLog(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("0123456789"))
	_ = w.Sync()
	raw := buf.Bytes()
	r := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestUnsyncedDataNotVisible(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("small")) // stays in the 64 KiB buffer until Sync
	if buf.Len() != 0 {
		t.Fatalf("record leaked before Sync: %d bytes", buf.Len())
	}
	_ = w.Sync()
	if buf.Len() == 0 {
		t.Fatal("Sync flushed nothing")
	}
}
