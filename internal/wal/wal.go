// Package wal implements a CRC32-framed append-only write-ahead log. It is
// the durability path shared by the Accumulo, CrateDB and TPC-C baseline
// models and by the sharded ingest frontend's per-shard logs.
//
// # Framing
//
// A log is a sequence of self-delimiting frames with no file header:
//
//	frame := uvarint(len(payload)) ‖ crc32c(payload) ‖ payload
//
// The length is a standard unsigned varint (1–10 bytes); the checksum is a
// little-endian CRC-32 of the payload alone using the Castagnoli
// polynomial. A frame never spans files. Because frames carry no
// end-marker, the only way a log ends cleanly is exactly at a frame
// boundary; a crash while appending can leave a final frame that is torn
// (cut mid-length, mid-checksum, or mid-payload) or that fails its
// checksum. Reader.Next distinguishes the three outcomes a recovery loop
// must handle:
//
//   - io.EOF: the clean end of the log — the previous frame was the last.
//   - ErrCorrupt (wrapped, inspect with errors.Is): the bytes at the read
//     position are not a whole valid frame — a torn tail or bit rot.
//     Everything before this frame replayed intact; nothing at or after it
//     can be trusted.
//   - any other error: an I/O failure from the underlying reader.
//
// Records become durable at Sync, the group-commit boundary: Writer buffers
// frames in memory, and Sync flushes the buffered group (File.Sync also
// fsyncs, making the group crash-durable rather than merely visible).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCorrupt is returned when the log does not continue with a whole valid
// frame: a checksum mismatch, a torn final frame, or an absurd length.
// It is always wrapped with context; test with errors.Is.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrRecordTooLarge is returned by Append for a record beyond MaxRecord.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecord")

// MaxRecord caps a single record's payload length, enforced on BOTH sides:
// Append refuses to write a larger record (a reader would have to treat
// the oversized frame as corruption, silently discarding data the writer
// fsync-confirmed), and a length prefix beyond it is treated as corruption
// rather than an allocation request — a torn or bit-rotted length varint
// would otherwise ask for gigabytes.
const MaxRecord = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer appends framed records to an underlying writer.
type Writer struct {
	bw      *bufio.Writer
	records int64
	bytes   int64
	syncs   int64
}

// NewWriter returns a log writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Append frames and buffers one record. The record becomes durable at the
// next Sync. Records longer than MaxRecord are rejected with
// ErrRecordTooLarge before anything is written.
func (w *Writer) Append(rec []byte) error {
	if len(rec) > MaxRecord {
		return fmt.Errorf("%w: %d bytes > %d", ErrRecordTooLarge, len(rec), MaxRecord)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(rec, castagnoli))
	if _, err := w.bw.Write(crc[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(rec); err != nil {
		return err
	}
	w.records++
	w.bytes += int64(n + 4 + len(rec))
	return nil
}

// Sync flushes all buffered frames — the group-commit point.
func (w *Writer) Sync() error {
	w.syncs++
	return w.bw.Flush()
}

// Records returns the number of records appended.
func (w *Writer) Records() int64 { return w.records }

// Bytes returns the number of framed bytes produced.
func (w *Writer) Bytes() int64 { return w.bytes }

// Syncs returns the number of Sync calls.
func (w *Writer) Syncs() int64 { return w.syncs }

// Reader replays a log produced by Writer.
type Reader struct {
	br *bufio.Reader
}

// NewReader returns a log reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record. At the end of the log it returns io.EOF if
// the log ends cleanly on a frame boundary, or an error wrapping ErrCorrupt
// if the final frame is torn (the log stops mid-frame — the signature of a
// crash between Append and Sync) or fails its checksum. Frames before a
// corrupt one are unaffected; nothing at or after it should be trusted.
func (r *Reader) Next() ([]byte, error) {
	length, n, err := ReadUvarint(r.br)
	if err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return nil, io.EOF // clean end: no bytes of a next frame exist
		}
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("wal: torn frame length (%d bytes): %w", n, ErrCorrupt)
		}
		if errors.Is(err, ErrVarint) {
			return nil, fmt.Errorf("wal: frame length: %v: %w", err, ErrCorrupt)
		}
		return nil, fmt.Errorf("wal: reading frame length: %w", err)
	}
	if length > MaxRecord {
		return nil, fmt.Errorf("wal: frame length %d exceeds %d: %w", length, MaxRecord, ErrCorrupt)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("wal: torn frame checksum: %w", ErrCorrupt)
		}
		return nil, fmt.Errorf("wal: reading crc: %w", err)
	}
	rec := make([]byte, length)
	if _, err := io.ReadFull(r.br, rec); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("wal: torn frame payload: %w", ErrCorrupt)
		}
		return nil, fmt.Errorf("wal: reading payload: %w", err)
	}
	if crc32.Checksum(rec, castagnoli) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, fmt.Errorf("wal: checksum mismatch: %w", ErrCorrupt)
	}
	return rec, nil
}

// ErrVarint is returned (wrapped) by ReadUvarint for an overlong or
// overflowing length varint; each framing layer maps it to its own
// corruption sentinel (this package to ErrCorrupt, the network protocol
// to its malformed-frame error).
var ErrVarint = errors.New("wal: invalid length varint")

// ReadUvarint is binary.ReadUvarint, additionally reporting how many bytes
// were consumed — so a caller can tell a clean EOF (zero bytes) from a
// torn varint (some bytes, then EOF) — and rejecting non-canonical
// overlong encodings with an ErrVarint-wrapped error. It is the shared
// length-prefix reader of the WAL frame format and the network protocol's
// frame format.
func ReadUvarint(br io.ByteReader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return x, i, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return x, i + 1, fmt.Errorf("%w: overflows uint64", ErrVarint)
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return x, binary.MaxVarintLen64, fmt.Errorf("%w: longer than %d bytes", ErrVarint, binary.MaxVarintLen64)
}

// File is a Writer bound to an operating-system file, adding the fsync and
// segment-rotation halves a crash-durable log needs. Its Sync makes the
// buffered group durable (flush + fsync), not merely visible.
type File struct {
	*Writer
	f    *os.File
	path string
}

// Create creates (or truncates) a log file at path.
func Create(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &File{Writer: NewWriter(f), f: f, path: path}, nil
}

// Path returns the file path the log writes to.
func (l *File) Path() string { return l.path }

// Sync flushes the buffered frames and fsyncs the file: on return, every
// appended record survives a crash.
func (l *File) Sync() error {
	if err := l.Writer.Sync(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close syncs and closes the file. The *File must not be used afterwards.
func (l *File) Close() error {
	syncErr := l.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Rotate syncs and closes the current segment and starts a fresh one at
// path, returning the new *File. The old segment is left on disk for the
// caller to retire once whatever supersedes it (a checkpoint manifest) is
// durable. On error the current segment may already be closed.
func (l *File) Rotate(path string) (*File, error) {
	if err := l.Close(); err != nil {
		return nil, err
	}
	return Create(path)
}
