// Package wal implements a CRC32-framed append-only write-ahead log: the
// durability path shared by the Accumulo, CrateDB and TPC-C baseline models.
// Records are framed as uvarint(length) ‖ crc32c ‖ payload; Sync flushes
// the buffered group (the group-commit boundary the models charge for).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt is returned when a frame fails its checksum.
var ErrCorrupt = errors.New("wal: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer appends framed records to an underlying writer.
type Writer struct {
	bw      *bufio.Writer
	records int64
	bytes   int64
	syncs   int64
}

// NewWriter returns a log writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Append frames and buffers one record. The record becomes durable at the
// next Sync.
func (w *Writer) Append(rec []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(rec)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(rec, castagnoli))
	if _, err := w.bw.Write(crc[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(rec); err != nil {
		return err
	}
	w.records++
	w.bytes += int64(n + 4 + len(rec))
	return nil
}

// Sync flushes all buffered frames — the group-commit point.
func (w *Writer) Sync() error {
	w.syncs++
	return w.bw.Flush()
}

// Records returns the number of records appended.
func (w *Writer) Records() int64 { return w.records }

// Bytes returns the number of framed bytes produced.
func (w *Writer) Bytes() int64 { return w.bytes }

// Syncs returns the number of Sync calls.
func (w *Writer) Syncs() int64 { return w.syncs }

// Reader replays a log produced by Writer.
type Reader struct {
	br *bufio.Reader
}

// NewReader returns a log reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, io.EOF at the clean end of the log, or
// ErrCorrupt if a frame fails its checksum.
func (r *Reader) Next() ([]byte, error) {
	length, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: reading frame length: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return nil, fmt.Errorf("wal: reading crc: %w", err)
	}
	rec := make([]byte, length)
	if _, err := io.ReadFull(r.br, rec); err != nil {
		return nil, fmt.Errorf("wal: reading payload: %w", err)
	}
	if crc32.Checksum(rec, castagnoli) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, ErrCorrupt
	}
	return rec, nil
}
