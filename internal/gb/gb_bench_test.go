package gb

import (
	"math/rand"
	"testing"
)

// benchTuples returns n random tuples over a dim x dim space.
func benchTuples(n int, dim uint64, seed int64) ([]Index, []Index, []uint64) {
	r := rand.New(rand.NewSource(seed))
	rows := make([]Index, n)
	cols := make([]Index, n)
	vals := make([]uint64, n)
	for k := 0; k < n; k++ {
		rows[k] = Index(r.Uint64() % dim)
		cols[k] = Index(r.Uint64() % dim)
		vals[k] = 1
	}
	return rows, cols, vals
}

// BenchmarkWaitRadix measures pending-tuple materialization on the packed
// radix-sort fast path (32-bit indices).
func BenchmarkWaitRadix(b *testing.B) {
	const n = 100_000
	rows, cols, vals := benchTuples(n, 1<<32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MustNewMatrix[uint64](1<<32, 1<<32)
		_ = m.AppendTuples(rows, cols, vals)
		m.Wait()
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkWaitComparison measures the comparison-sort path (indices
// beyond 32 bits force the generic stable sort).
func BenchmarkWaitComparison(b *testing.B) {
	const n = 100_000
	rows, cols, vals := benchTuples(n, 1<<40, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MustNewMatrix[uint64](1<<40, 1<<40)
		_ = m.AppendTuples(rows, cols, vals)
		m.Wait()
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkEWiseAdd measures the union-merge kernel (the cascade step).
func BenchmarkEWiseAdd(b *testing.B) {
	const n = 100_000
	r1, c1, v1 := benchTuples(n, 1<<32, 3)
	r2, c2, v2 := benchTuples(n, 1<<32, 4)
	x, _ := MatrixFromTuples(1<<32, 1<<32, r1, c1, v1, Plus[uint64]().Op)
	y, _ := MatrixFromTuples(1<<32, 1<<32, r2, c2, v2, Plus[uint64]().Op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EWiseAdd(x, y, Plus[uint64]().Op); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*2*n/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkMxM measures hypersparse SpGEMM over plus.times.
func BenchmarkMxM(b *testing.B) {
	const n = 20_000
	r1, c1, v1 := benchTuples(n, 1<<14, 5)
	r2, c2, v2 := benchTuples(n, 1<<14, 6)
	x, _ := MatrixFromTuples(1<<14, 1<<14, r1, c1, v1, Plus[uint64]().Op)
	y, _ := MatrixFromTuples(1<<14, 1<<14, r2, c2, v2, Plus[uint64]().Op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MxM(x, y, PlusTimes[uint64]()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMxMMasked measures the masked multiply (triangle-counting
// kernel) with the output pattern restricted to x's own pattern.
func BenchmarkMxMMasked(b *testing.B) {
	const n = 20_000
	r1, c1, v1 := benchTuples(n, 1<<14, 7)
	x, _ := MatrixFromTuples(1<<14, 1<<14, r1, c1, v1, Plus[uint64]().Op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MxMMasked(x, x, PlusPair[uint64](), StructuralMask(x)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranspose measures the bucket transpose.
func BenchmarkTranspose(b *testing.B) {
	const n = 100_000
	r1, c1, v1 := benchTuples(n, 1<<32, 8)
	x, _ := MatrixFromTuples(1<<32, 1<<32, r1, c1, v1, Plus[uint64]().Op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transpose(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkReduceRows measures the row-reduction (degree vector) kernel.
func BenchmarkReduceRows(b *testing.B) {
	const n = 100_000
	r1, c1, v1 := benchTuples(n, 1<<32, 9)
	x, _ := MatrixFromTuples(1<<32, 1<<32, r1, c1, v1, Plus[uint64]().Op)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReduceRows(x, Plus[uint64]()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds(), "entries/s")
}
