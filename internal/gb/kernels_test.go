package gb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyPreservesPattern(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	a := randMatrix(r, 32, 32, 100)
	c, err := Apply(a, func(v int64) int64 { return v * 2 })
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != a.NVals() {
		t.Fatalf("pattern changed: %d vs %d", c.NVals(), a.NVals())
	}
	da, dc := denseOf(a), denseOf(c)
	for k, v := range da {
		if dc[k] != 2*v {
			t.Fatalf("entry %v: %d != 2*%d", k, dc[k], v)
		}
	}
}

func TestApplyZeroResultKept(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	_ = a.SetElement(1, 1, 7)
	c, err := Apply(a, func(int64) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 1 {
		t.Fatalf("explicit zero dropped by Apply: NVals = %d", c.NVals())
	}
}

func TestScale(t *testing.T) {
	a := MustNewMatrix[float64](4, 4)
	_ = a.SetElement(1, 2, 3)
	c, err := Scale(a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c.ExtractElement(1, 2)
	if v != 1.5 {
		t.Fatalf("Scale = %v", v)
	}
}

func TestSelectPredicate(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	a := randMatrix(r, 32, 32, 200)
	c, err := Select(a, func(i, j Index, v int64) bool { return v > 0 })
	if err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, c)
	c.Iterate(func(_, _ Index, v int64) bool {
		if v <= 0 {
			t.Fatalf("select kept %d", v)
		}
		return true
	})
	// Select(true) is identity.
	all, err := Select(a, func(Index, Index, int64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(all, a) {
		t.Fatal("Select(true) != identity")
	}
	// Select(false) is empty.
	none, err := Select(a, func(Index, Index, int64) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if none.NVals() != 0 {
		t.Fatalf("Select(false) kept %d", none.NVals())
	}
}

func TestTrilTriuPartition(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := randMatrix(r, 24, 24, 150)
	lo, err := Tril(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	diagUp, err := Triu(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// tril(-1) and triu(0) partition the entries exactly.
	if lo.NVals()+diagUp.NVals() != a.NVals() {
		t.Fatalf("partition broken: %d + %d != %d", lo.NVals(), diagUp.NVals(), a.NVals())
	}
	sum, err := EWiseAdd(lo, diagUp, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(sum, a) {
		t.Fatal("tril + triu != original")
	}
}

func TestPruneDropsZeros(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	_ = a.SetElement(0, 0, 0)
	_ = a.SetElement(1, 1, 2)
	c, err := Prune(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 1 {
		t.Fatalf("NVals = %d, want 1", c.NVals())
	}
}

func TestReduceScalarEqualsTupleSum(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		a := randMatrix(r, 32, 32, 200)
		got, err := ReduceScalar(a, Plus[int64]())
		if err != nil {
			return false
		}
		var want int64
		for _, tp := range tuplesOf(a) {
			want += tp.Val
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScalarEmptyIsIdentity(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	got, err := ReduceScalar(a, Plus[int64]())
	if err != nil || got != 0 {
		t.Fatalf("got %d, %v", got, err)
	}
	gotMin, err := ReduceScalar(a, MinWith[int64](1<<62))
	if err != nil || gotMin != 1<<62 {
		t.Fatalf("min identity: got %d, %v", gotMin, err)
	}
}

func TestReduceRowsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	a := randMatrix(r, 24, 24, 150)
	v, err := ReduceRows(a, Plus[int64]())
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[Index]int64)
	a.Iterate(func(i, _ Index, x int64) bool {
		ref[i] += x
		return true
	})
	if v.NVals() != len(ref) {
		t.Fatalf("NVals = %d, want %d", v.NVals(), len(ref))
	}
	v.Iterate(func(i Index, x int64) bool {
		if ref[i] != x {
			t.Fatalf("row %d sum = %d, want %d", i, x, ref[i])
		}
		return true
	})
}

func TestReduceColsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	a := randMatrix(r, 24, 24, 150)
	v, err := ReduceCols(a, Plus[int64]())
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[Index]int64)
	a.Iterate(func(_, j Index, x int64) bool {
		ref[j] += x
		return true
	})
	if v.NVals() != len(ref) {
		t.Fatalf("NVals = %d, want %d", v.NVals(), len(ref))
	}
	v.Iterate(func(j Index, x int64) bool {
		if ref[j] != x {
			t.Fatalf("col %d sum = %d, want %d", j, x, ref[j])
		}
		return true
	})
}

func TestReduceRowsColsDuality(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	a := randMatrix(r, 24, 24, 150)
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	rowsOfA, _ := ReduceRows(a, Plus[int64]())
	colsOfAT, _ := ReduceCols(at, Plus[int64]())
	if !VecEqual(rowsOfA, colsOfAT) {
		t.Fatal("ReduceRows(A) != ReduceCols(Aᵀ)")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	f := func() bool {
		a := randMatrix(r, 40, 28, 200)
		at, err := Transpose(a)
		if err != nil || at.checkInvariants() != nil {
			return false
		}
		att, err := Transpose(at)
		if err != nil {
			return false
		}
		return Equal(a, att)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(28))
	a := randMatrix(r, 16, 24, 100)
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	if at.NRows() != a.NCols() || at.NCols() != a.NRows() {
		t.Fatalf("transpose dims %dx%d", at.NRows(), at.NCols())
	}
	da, dt := denseOf(a), denseOf(at)
	if len(da) != len(dt) {
		t.Fatalf("nnz changed: %d vs %d", len(da), len(dt))
	}
	for k, v := range da {
		if dt[[2]Index{k[1], k[0]}] != v {
			t.Fatalf("entry %v not transposed", k)
		}
	}
}

// denseMul is the reference O(n^3) multiply for small matrices.
func denseMul(a, b map[[2]Index]int64) map[[2]Index]int64 {
	out := make(map[[2]Index]int64)
	for ka, va := range a {
		for kb, vb := range b {
			if ka[1] == kb[0] {
				out[[2]Index{ka[0], kb[1]}] += va * vb
			}
		}
	}
	return out
}

func TestMxMAgainstDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		a := randMatrix(r, 20, 16, 80)
		b := randMatrix(r, 16, 24, 80)
		c, err := MxM(a, b, PlusTimes[int64]())
		if err != nil {
			t.Fatal(err)
		}
		mustInvariants(t, c)
		ref := denseMul(denseOf(a), denseOf(b))
		got := denseOf(c)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: nnz %d vs %d", trial, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("trial %d: C%v = %d, want %d", trial, k, got[k], v)
			}
		}
	}
}

func TestMxMDimensionMismatch(t *testing.T) {
	a := MustNewMatrix[int64](4, 5)
	b := MustNewMatrix[int64](6, 4)
	if _, err := MxM(a, b, PlusTimes[int64]()); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("got %v", err)
	}
}

func TestMxMIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	a := randMatrix(r, 16, 16, 60)
	eye := MustNewMatrix[int64](16, 16)
	for i := Index(0); i < 16; i++ {
		_ = eye.SetElement(i, i, 1)
	}
	c, err := MxM(a, eye, PlusTimes[int64]())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c, a) {
		t.Fatal("A * I != A")
	}
	c2, err := MxM(eye, a, PlusTimes[int64]())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c2, a) {
		t.Fatal("I * A != A")
	}
}

func TestMxVAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	a := randMatrix(r, 20, 16, 80)
	x := MustNewVector[int64](16)
	for k := 0; k < 10; k++ {
		_ = x.SetElement(Index(r.Uint64()%16), int64(r.Intn(5)+1))
	}
	y, err := MxV(a, x, PlusTimes[int64]())
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[Index]int64)
	hit := make(map[Index]bool)
	a.Iterate(func(i, j Index, v int64) bool {
		if xv, err2 := x.ExtractElement(j); err2 == nil {
			ref[i] += v * xv
			hit[i] = true
		}
		return true
	})
	if y.NVals() != len(hit) {
		t.Fatalf("NVals = %d, want %d", y.NVals(), len(hit))
	}
	y.Iterate(func(i Index, v int64) bool {
		if ref[i] != v {
			t.Fatalf("y(%d) = %d, want %d", i, v, ref[i])
		}
		return true
	})
}

func TestVxMMatchesTransposedMxV(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	a := randMatrix(r, 18, 22, 90)
	x := MustNewVector[int64](18)
	for k := 0; k < 8; k++ {
		_ = x.SetElement(Index(r.Uint64()%18), int64(r.Intn(5)+1))
	}
	y1, err := VxM(x, a, PlusTimes[int64]())
	if err != nil {
		t.Fatal(err)
	}
	at, _ := Transpose(a)
	y2, err := MxV(at, x, PlusTimes[int64]())
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(y1, y2) {
		t.Fatal("xᵀA != Aᵀx")
	}
}

func TestMxMPlusPairCountsOverlap(t *testing.T) {
	// plus.pair over A·Aᵀ counts common neighbors — the triangle-counting
	// building block.
	a := MustNewMatrix[int64](4, 4)
	// path 0-1, 0-2, 1-2 (a triangle), 3 isolated
	for _, e := range [][2]Index{{0, 1}, {1, 0}, {0, 2}, {2, 0}, {1, 2}, {2, 1}} {
		_ = a.SetElement(e[0], e[1], 1)
	}
	at, _ := Transpose(a)
	c, err := MxM(a, at, PlusPair[int64]())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c.ExtractElement(0, 1) // vertices 0,1 share neighbor 2
	if v != 1 {
		t.Fatalf("common neighbors(0,1) = %d, want 1", v)
	}
}

func TestKronAgainstDense(t *testing.T) {
	a := MustNewMatrix[int64](2, 2)
	_ = a.SetElement(0, 0, 1)
	_ = a.SetElement(1, 1, 2)
	b := MustNewMatrix[int64](3, 3)
	_ = b.SetElement(0, 2, 3)
	_ = b.SetElement(2, 0, 4)
	c, err := Kron(a, b, Times[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, c)
	if c.NRows() != 6 || c.NCols() != 6 {
		t.Fatalf("kron dims %dx%d", c.NRows(), c.NCols())
	}
	if c.NVals() != 4 {
		t.Fatalf("kron nnz = %d, want 4", c.NVals())
	}
	checks := map[[2]Index]int64{
		{0, 2}: 3, {2, 0}: 4, // block (0,0) * 1
		{3, 5}: 6, {5, 3}: 8, // block (1,1) * 2
	}
	got := denseOf(c)
	for k, v := range checks {
		if got[k] != v {
			t.Fatalf("kron%v = %d, want %d", k, got[k], v)
		}
	}
}

func TestKronNNZLaw(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	f := func() bool {
		a := randMatrix(r, 8, 8, 20)
		b := randMatrix(r, 8, 8, 20)
		c, err := Kron(a, b, Times[int64]().Op)
		if err != nil {
			return false
		}
		return c.NVals() == a.NVals()*b.NVals() && c.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKronOverflowRejected(t *testing.T) {
	a := MustNewMatrix[int64](1<<40, 1<<40)
	b := MustNewMatrix[int64](1<<40, 1<<40)
	if _, err := Kron(a, b, Times[int64]().Op); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestKronPower(t *testing.T) {
	a := MustNewMatrix[int64](2, 2)
	_ = a.SetElement(0, 0, 1)
	_ = a.SetElement(0, 1, 1)
	_ = a.SetElement(1, 0, 1)
	c, err := KronPower(a, 3, Times[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if c.NRows() != 8 || c.NVals() != 27 {
		t.Fatalf("kron^3: dims %d nnz %d", c.NRows(), c.NVals())
	}
	if _, err := KronPower(a, 0, Times[int64]().Op); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("power 0: %v", err)
	}
}

func TestExtractSubmatrix(t *testing.T) {
	a := MustNewMatrix[int64](10, 10)
	for i := Index(0); i < 10; i++ {
		_ = a.SetElement(i, i, int64(i)+1)
	}
	c, err := Extract(a, []Index{2, 4, 6}, []Index{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.NRows() != 3 || c.NCols() != 3 || c.NVals() != 3 {
		t.Fatalf("extract: %s", c)
	}
	for p, want := range []int64{3, 5, 7} {
		v, err := c.ExtractElement(Index(uint64(p)), Index(uint64(p)))
		if err != nil || v != want {
			t.Fatalf("C(%d,%d) = %d, %v; want %d", p, p, v, err, want)
		}
	}
}

func TestExtractAllIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	a := randMatrix(r, 32, 32, 100)
	c, err := Extract(a, All, All)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c, a) {
		t.Fatal("Extract(All, All) != identity")
	}
}

func TestExtractOOBIndex(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	if _, err := Extract(a, []Index{9}, All); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
	if _, err := Extract(a, All, []Index{4}); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestExtractRowCol(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(3, 1, 10)
	_ = a.SetElement(3, 5, 20)
	_ = a.SetElement(6, 5, 30)
	row, err := ExtractRow(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.NVals() != 2 {
		t.Fatalf("row nvals = %d", row.NVals())
	}
	col, err := ExtractCol(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if col.NVals() != 2 {
		t.Fatalf("col nvals = %d", col.NVals())
	}
	v, _ := col.ExtractElement(6)
	if v != 30 {
		t.Fatalf("col(6) = %d", v)
	}
	empty, err := ExtractRow(a, 0)
	if err != nil || empty.NVals() != 0 {
		t.Fatalf("empty row: %d, %v", empty.NVals(), err)
	}
}

func TestAssignScalar(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	if err := AssignScalar(a, []Index{1, 2}, []Index{3, 4}, 7); err != nil {
		t.Fatal(err)
	}
	if a.NVals() != 4 {
		t.Fatalf("NVals = %d, want 4", a.NVals())
	}
	if err := AssignScalar(a, nil, []Index{1}, 7); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil list: %v", err)
	}
}

func TestDiag(t *testing.T) {
	v := MustNewVector[int64](8)
	_ = v.SetElement(2, 5)
	_ = v.SetElement(6, 7)
	d, err := Diag(v)
	if err != nil {
		t.Fatal(err)
	}
	if d.NRows() != 8 || d.NVals() != 2 {
		t.Fatalf("diag: %s", d)
	}
	x, _ := d.ExtractElement(6, 6)
	if x != 7 {
		t.Fatalf("diag(6,6) = %d", x)
	}
}
