package gb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := MustNewVector[int64](100)
	if v.Size() != 100 {
		t.Fatalf("Size = %d", v.Size())
	}
	_ = v.SetElement(5, 2)
	_ = v.SetElement(5, 3)
	_ = v.SetElement(50, 7)
	if v.NVals() != 2 {
		t.Fatalf("NVals = %d", v.NVals())
	}
	x, err := v.ExtractElement(5)
	if err != nil || x != 5 {
		t.Fatalf("v(5) = %d, %v", x, err)
	}
	if _, err := v.ExtractElement(6); !errors.Is(err, ErrNoValue) {
		t.Fatalf("got %v", err)
	}
	if _, err := v.ExtractElement(200); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestVectorZeroSizeRejected(t *testing.T) {
	if _, err := NewVector[int64](0); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestVectorSetElementOOB(t *testing.T) {
	v := MustNewVector[int64](4)
	if err := v.SetElement(4, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestVectorBuild(t *testing.T) {
	v := MustNewVector[int64](10)
	err := v.Build([]Index{3, 3, 7}, []int64{1, 10, 5}, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := v.ExtractElement(3)
	if x != 11 {
		t.Fatalf("dup combine = %d", x)
	}
	if err := v.Build([]Index{1}, []int64{1}, Plus[int64]().Op); !errors.Is(err, ErrOutputNotEmpty) {
		t.Fatalf("rebuild: %v", err)
	}
}

func TestVectorBuildErrors(t *testing.T) {
	v := MustNewVector[int64](10)
	if err := v.Build([]Index{1, 2}, []int64{1}, Plus[int64]().Op); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("length mismatch: %v", err)
	}
	if err := v.Build([]Index{10}, []int64{1}, Plus[int64]().Op); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("oob: %v", err)
	}
	if err := v.Build([]Index{1}, []int64{1}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil dup: %v", err)
	}
}

func TestVectorBuildRestoresAccum(t *testing.T) {
	v := MustNewVector[int64](10)
	if err := v.Build([]Index{1, 1}, []int64{5, 9}, Second[int64]); err != nil {
		t.Fatal(err)
	}
	x, _ := v.ExtractElement(1)
	if x != 9 {
		t.Fatalf("second dup = %d", x)
	}
	// After Build, default accumulation (+) applies again.
	_ = v.SetElement(1, 1)
	x, _ = v.ExtractElement(1)
	if x != 10 {
		t.Fatalf("accum after build = %d, want 10", x)
	}
}

func TestVectorWaitMergesSortedUnion(t *testing.T) {
	v := MustNewVector[int64](100)
	_ = v.SetElement(50, 1)
	v.Wait()
	_ = v.SetElement(10, 2)
	_ = v.SetElement(50, 3)
	_ = v.SetElement(90, 4)
	v.Wait()
	idx, vals := v.ExtractTuples()
	wantIdx := []Index{10, 50, 90}
	wantVal := []int64{2, 4, 4}
	if len(idx) != 3 {
		t.Fatalf("idx = %v", idx)
	}
	for k := range wantIdx {
		if idx[k] != wantIdx[k] || vals[k] != wantVal[k] {
			t.Fatalf("entry %d: (%d,%d), want (%d,%d)", k, idx[k], vals[k], wantIdx[k], wantVal[k])
		}
	}
}

func TestVectorClearDup(t *testing.T) {
	v := MustNewVector[int64](10)
	_ = v.SetElement(1, 5)
	d := v.Dup()
	v.Clear()
	if v.NVals() != 0 {
		t.Fatalf("clear: %d", v.NVals())
	}
	if d.NVals() != 1 {
		t.Fatalf("dup affected by clear: %d", d.NVals())
	}
}

func TestVecEWiseAddBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	f := func() bool {
		a := MustNewVector[int64](64)
		b := MustNewVector[int64](64)
		for k := 0; k < 30; k++ {
			_ = a.SetElement(Index(r.Uint64()%64), int64(r.Intn(9)))
			_ = b.SetElement(Index(r.Uint64()%64), int64(r.Intn(9)))
		}
		c, err := VecEWiseAdd(a, b, Plus[int64]().Op)
		if err != nil {
			return false
		}
		ref := make(map[Index]int64)
		a.Iterate(func(i Index, x int64) bool { ref[i] += x; return true })
		b.Iterate(func(i Index, x int64) bool { ref[i] += x; return true })
		if c.NVals() != len(ref) {
			return false
		}
		ok := true
		c.Iterate(func(i Index, x int64) bool {
			if ref[i] != x {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVecEWiseMultIntersection(t *testing.T) {
	a := MustNewVector[int64](10)
	b := MustNewVector[int64](10)
	_ = a.SetElement(1, 2)
	_ = a.SetElement(2, 3)
	_ = b.SetElement(2, 4)
	_ = b.SetElement(3, 5)
	c, err := VecEWiseMult(a, b, Times[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 1 {
		t.Fatalf("NVals = %d", c.NVals())
	}
	x, _ := c.ExtractElement(2)
	if x != 12 {
		t.Fatalf("value = %d", x)
	}
}

func TestVecDimensionMismatch(t *testing.T) {
	a := MustNewVector[int64](4)
	b := MustNewVector[int64](5)
	if _, err := VecEWiseAdd(a, b, Plus[int64]().Op); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("add: %v", err)
	}
	if _, err := VecEWiseMult(a, b, Times[int64]().Op); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mult: %v", err)
	}
}

func TestVecReduceAndApply(t *testing.T) {
	v := MustNewVector[int64](10)
	_ = v.SetElement(1, 3)
	_ = v.SetElement(5, 4)
	total, err := VecReduce(v, Plus[int64]())
	if err != nil || total != 7 {
		t.Fatalf("reduce = %d, %v", total, err)
	}
	doubled, err := VecApply(v, func(x int64) int64 { return 2 * x })
	if err != nil {
		t.Fatal(err)
	}
	total2, _ := VecReduce(doubled, Plus[int64]())
	if total2 != 14 {
		t.Fatalf("apply+reduce = %d", total2)
	}
}

func TestVectorIterateEarlyStop(t *testing.T) {
	v := MustNewVector[int64](10)
	for k := Index(0); k < 6; k++ {
		_ = v.SetElement(k, 1)
	}
	n := 0
	v.Iterate(func(Index, int64) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

func TestVectorHugeIndexSpace(t *testing.T) {
	v := MustNewVector[uint64](1 << 60)
	_ = v.SetElement(1<<59, 42)
	x, err := v.ExtractElement(1 << 59)
	if err != nil || x != 42 {
		t.Fatalf("got %d, %v", x, err)
	}
}
