package gb

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripInt(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	f := func() bool {
		m := randMatrix(r, 1<<20, 1<<20, 300)
		var buf bytes.Buffer
		if err := Encode(&buf, m, Int64Codec[int64]()); err != nil {
			return false
		}
		got, err := Decode[int64](&buf, Int64Codec[int64]())
		if err != nil {
			return false
		}
		return Equal(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTripFloat(t *testing.T) {
	m := MustNewMatrix[float64](1<<40, 1<<40)
	_ = m.SetElement(12345678901, 98765432109, math.Pi)
	_ = m.SetElement(1, 2, -0.0)
	_ = m.SetElement(1, 3, math.MaxFloat64)
	var buf bytes.Buffer
	if err := Encode(&buf, m, Float64Codec[float64]()); err != nil {
		t.Fatal(err)
	}
	got, err := Decode[float64](&buf, Float64Codec[float64]())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, got) {
		t.Fatal("float round trip mismatch")
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	m := MustNewMatrix[uint64](1<<50, 1<<50)
	var buf bytes.Buffer
	if err := Encode(&buf, m, Uint64Codec[uint64]()); err != nil {
		t.Fatal(err)
	}
	got, err := Decode[uint64](&buf, Uint64Codec[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	if got.NVals() != 0 || got.NRows() != 1<<50 {
		t.Fatalf("empty round trip: %s", got)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := Decode[int64](strings.NewReader("NOTAMATRIXxxxxxxxxxxx"), Int64Codec[int64]())
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := MustNewMatrix[int64](100, 100)
	_ = m.SetElement(3, 4, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, m, Int64Codec[int64]()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 2, len(full) - 1} {
		if _, err := Decode[int64](bytes.NewReader(full[:cut]), Int64Codec[int64]()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUint64CodecLossless(t *testing.T) {
	c := Uint64Codec[uint64]()
	for _, v := range []uint64{0, 1, 1<<53 + 1, math.MaxUint64} {
		if got := c.Get(c.Put(v)); got != v {
			t.Fatalf("codec lost %d -> %d", v, got)
		}
	}
}

func TestInt64CodecLossless(t *testing.T) {
	c := Int64Codec[int64]()
	for _, v := range []int64{0, -1, math.MinInt64, math.MaxInt64} {
		if got := c.Get(c.Put(v)); got != v {
			t.Fatalf("codec lost %d -> %d", v, got)
		}
	}
}

func TestWriteTSV(t *testing.T) {
	m := MustNewMatrix[int64](10, 10)
	_ = m.SetElement(1, 2, 3)
	_ = m.SetElement(4, 5, 6)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	want := "1\t2\t3\n4\t5\t6\n"
	if buf.String() != want {
		t.Fatalf("TSV = %q, want %q", buf.String(), want)
	}
}
