package gb

import "slices"

// Wait materializes all pending updates into the DCSR structure, combining
// duplicates with the matrix accumulator. It is idempotent and cheap when
// nothing is pending. This is the analogue of GrB_Matrix_wait: after Wait,
// NVals/Iterate/algebraic kernels see a fully assembled matrix.
//
// Cost: O(p log p) to sort p pending tuples plus O(p + nvals) to union-merge
// with the existing structure. The hierarchical cascade keeps p and nvals
// small at the lowest level, which is where almost all Waits happen.
func (m *Matrix[T]) Wait() {
	if len(m.pending) == 0 {
		return
	}
	sortTuples(m.pending)
	dd := combineDuplicates(m.pending, m.accum)
	m.pending = nil

	pr, pp, pc, pv := dcsrFromSortedTuples(dd)
	if len(m.col) == 0 {
		m.rows, m.ptr, m.col, m.val = pr, pp, pc, pv
		return
	}
	m.rows, m.ptr, m.col, m.val = mergeDCSR(
		m.rows, m.ptr, m.col, m.val,
		pr, pp, pc, pv,
		m.accum,
	)
}

// sortTuples orders tuples by (row, col) ascending; equal keys keep their
// relative order (stable), so duplicate combination is deterministic even
// for non-commutative accumulators.
//
// When every index fits in 32 bits — the IPv4 traffic-matrix case and the
// hot path of the streaming benchmarks — the (row, col) pair packs into a
// single uint64 key and an LSD radix sort (stable by construction) replaces
// the comparison sort, skipping passes whose key byte is constant.
func sortTuples[T Number](t []Tuple[T]) {
	if len(t) < 2 {
		return
	}
	var any Index
	for k := range t {
		any |= t[k].Row | t[k].Col
	}
	if any < 1<<32 && len(t) >= 128 {
		radixSortPacked(t)
		return
	}
	slices.SortStableFunc(t, func(a, b Tuple[T]) int {
		switch {
		case a.Row < b.Row:
			return -1
		case a.Row > b.Row:
			return 1
		case a.Col < b.Col:
			return -1
		case a.Col > b.Col:
			return 1
		default:
			return 0
		}
	})
}

// radixSortPacked sorts tuples by the packed key row<<32|col with an LSD
// byte-wise counting sort. Counting sort is stable, so the composition is
// stable. Byte positions where every key agrees (all&any masks) are
// skipped — power-law batches typically need only 4-6 of the 8 passes.
func radixSortPacked[T Number](t []Tuple[T]) {
	type packed struct {
		key uint64
		val T
	}
	n := len(t)
	a := make([]packed, n)
	b := make([]packed, n)
	andKey := ^uint64(0)
	orKey := uint64(0)
	for k := range t {
		key := uint64(t[k].Row)<<32 | uint64(t[k].Col)
		a[k] = packed{key: key, val: t[k].Val}
		andKey &= key
		orKey |= key
	}
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		// Skip the pass if this byte is identical across all keys.
		if byte(andKey>>shift) == byte(orKey>>shift) {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for k := 0; k < n; k++ {
			counts[byte(a[k].key>>shift)]++
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for k := 0; k < n; k++ {
			d := byte(a[k].key >> shift)
			b[counts[d]] = a[k]
			counts[d]++
		}
		a, b = b, a
	}
	for k := range t {
		t[k] = Tuple[T]{Row: Index(a[k].key >> 32), Col: Index(a[k].key & 0xffffffff), Val: a[k].val}
	}
}

// combineDuplicates collapses runs of equal (row, col) in sorted tuples by
// folding values left-to-right with op. It reuses the input slice.
func combineDuplicates[T Number](t []Tuple[T], op BinaryOp[T]) []Tuple[T] {
	if len(t) == 0 {
		return t
	}
	w := 0
	for r := 1; r < len(t); r++ {
		if t[r].Row == t[w].Row && t[r].Col == t[w].Col {
			t[w].Val = op(t[w].Val, t[r].Val)
		} else {
			w++
			t[w] = t[r]
		}
	}
	return t[:w+1]
}

// dcsrFromSortedTuples builds DCSR arrays from sorted, duplicate-free tuples.
func dcsrFromSortedTuples[T Number](t []Tuple[T]) (rows []Index, ptr []int, col []Index, val []T) {
	col = make([]Index, len(t))
	val = make([]T, len(t))
	ptr = []int{0}
	for k := range t {
		if len(rows) == 0 || rows[len(rows)-1] != t[k].Row {
			if len(rows) != 0 {
				ptr = append(ptr, k)
			}
			rows = append(rows, t[k].Row)
		}
		col[k] = t[k].Col
		val[k] = t[k].Val
	}
	ptr = append(ptr, len(t))
	if len(rows) == 0 {
		ptr = []int{0}
	}
	return rows, ptr, col, val
}

// mergeDCSR union-merges two DCSR structures, combining colliding entries
// with op (left operand from the a side). It is the single kernel behind
// Wait and EWiseAdd; its O(nnz(a)+nnz(b)) sequential sweeps are what make
// the cascade's level-to-level addition memory-friendly.
func mergeDCSR[T Number](
	ar []Index, ap []int, ac []Index, av []T,
	br []Index, bp []int, bc []Index, bv []T,
	op BinaryOp[T],
) (rows []Index, ptr []int, col []Index, val []T) {
	rows = make([]Index, 0, len(ar)+len(br))
	ptr = make([]int, 1, len(ar)+len(br)+1)
	col = make([]Index, 0, len(ac)+len(bc))
	val = make([]T, 0, len(av)+len(bv))

	i, j := 0, 0
	for i < len(ar) || j < len(br) {
		switch {
		case j >= len(br) || (i < len(ar) && ar[i] < br[j]):
			rows = append(rows, ar[i])
			col = append(col, ac[ap[i]:ap[i+1]]...)
			val = append(val, av[ap[i]:ap[i+1]]...)
			i++
		case i >= len(ar) || br[j] < ar[i]:
			rows = append(rows, br[j])
			col = append(col, bc[bp[j]:bp[j+1]]...)
			val = append(val, bv[bp[j]:bp[j+1]]...)
			j++
		default: // same row id: merge the two sorted column runs
			rows = append(rows, ar[i])
			x, xe := ap[i], ap[i+1]
			y, ye := bp[j], bp[j+1]
			for x < xe || y < ye {
				switch {
				case y >= ye || (x < xe && ac[x] < bc[y]):
					col = append(col, ac[x])
					val = append(val, av[x])
					x++
				case x >= xe || bc[y] < ac[x]:
					col = append(col, bc[y])
					val = append(val, bv[y])
					y++
				default:
					col = append(col, ac[x])
					val = append(val, op(av[x], bv[y]))
					x++
					y++
				}
			}
			i++
			j++
		}
		ptr = append(ptr, len(col))
	}
	if len(rows) == 0 {
		ptr = []int{0}
	}
	return rows, ptr, col, val
}
