package gb

import "slices"

// Wait materializes all pending updates into the DCSR structure, combining
// duplicates with the matrix accumulator. It is idempotent and cheap when
// nothing is pending. This is the analogue of GrB_Matrix_wait: after Wait,
// NVals/Iterate/algebraic kernels see a fully assembled matrix.
//
// Cost: O(p) radix passes to sort p pending entries (O(p log p) comparison
// fallback for indices >= 2^32) plus O(p + nvals) to union-merge with the
// existing structure. The hierarchical cascade keeps p and nvals small at
// the lowest level, which is where almost all Waits happen.
//
// Allocation: the sort runs entirely in scratch buffers retained on the
// matrix and the pending SoA slices are truncated (not released) after the
// merge, so a warm Wait allocates only the output DCSR arrays — at most 8
// exact-sized slices, independent of batch count.
func (m *Matrix[T]) Wait() {
	if len(m.pRow) == 0 {
		return
	}
	m.sortPending()
	n := combineSoA(m.pRow, m.pCol, m.pVal, m.accum)

	pr, pp, pc, pv := m.dcsrFromPending(n)
	m.pRow = m.pRow[:0]
	m.pCol = m.pCol[:0]
	m.pVal = m.pVal[:0]
	if len(m.col) == 0 {
		m.rows, m.ptr, m.col, m.val = pr, pp, pc, pv
		return
	}
	m.rows, m.ptr, m.col, m.val = mergeDCSR(
		m.rows, m.ptr, m.col, m.val,
		pr, pp, pc, pv,
		m.accum,
	)
}

// sortPending orders the pending SoA entries by (row, col) ascending;
// equal keys keep their relative order (stable), so duplicate combination
// is deterministic even for non-commutative accumulators.
//
// When every index fits in 32 bits — the IPv4 traffic-matrix case and the
// hot path of the streaming benchmarks — the (row, col) pair packs into a
// single uint64 key sorted in the matrix's retained scratch: an LSD radix
// sort (stable by construction) for large batches, a binary-insertion sort
// for small ones, neither allocating once the scratch is warm. Indices
// that need more than 32 bits fall back to a comparison sort over
// temporary AoS tuples.
func (m *Matrix[T]) sortPending() {
	n := len(m.pRow)
	if n < 2 {
		return
	}
	var any Index
	for k := 0; k < n; k++ {
		any |= m.pRow[k] | m.pCol[k]
	}
	if any >= 1<<32 {
		m.sortPendingWide()
		return
	}
	s := &m.scratch
	if cap(s.keyA) < n {
		s.keyA = make([]uint64, n)
		s.keyB = make([]uint64, n)
		s.valA = make([]T, n)
		s.valB = make([]T, n)
	}
	ka, kb := s.keyA[:n], s.keyB[:n]
	va, vb := s.valA[:n], s.valB[:n]
	andKey := ^uint64(0)
	orKey := uint64(0)
	for k := 0; k < n; k++ {
		key := uint64(m.pRow[k])<<32 | uint64(m.pCol[k])
		ka[k] = key
		va[k] = m.pVal[k]
		andKey &= key
		orKey |= key
	}
	if n >= 128 {
		ka, va = radixSortPacked(ka, kb, va, vb, andKey, orKey)
	} else {
		insertionSortPacked(ka, va)
	}
	for k := 0; k < n; k++ {
		m.pRow[k] = Index(ka[k] >> 32)
		m.pCol[k] = Index(ka[k] & 0xffffffff)
		m.pVal[k] = va[k]
	}
}

// sortPendingWide is the >=2^32-index fallback: a stable comparison sort
// over temporary AoS tuples. It allocates; batches with indices that wide
// are outside the packed-key hot path by construction.
func (m *Matrix[T]) sortPendingWide() {
	n := len(m.pRow)
	t := make([]Tuple[T], n)
	for k := 0; k < n; k++ {
		t[k] = Tuple[T]{Row: m.pRow[k], Col: m.pCol[k], Val: m.pVal[k]}
	}
	slices.SortStableFunc(t, func(a, b Tuple[T]) int {
		switch {
		case a.Row < b.Row:
			return -1
		case a.Row > b.Row:
			return 1
		case a.Col < b.Col:
			return -1
		case a.Col > b.Col:
			return 1
		default:
			return 0
		}
	})
	for k := 0; k < n; k++ {
		m.pRow[k] = t[k].Row
		m.pCol[k] = t[k].Col
		m.pVal[k] = t[k].Val
	}
}

// radixSortPacked sorts the packed keys (values riding along) with an LSD
// byte-wise counting sort, ping-ponging between the (ka, va) and (kb, vb)
// buffer pairs. Counting sort is stable, so the composition is stable.
// Byte positions where every key agrees (and/or masks) are skipped —
// power-law batches typically need only 4-6 of the 8 passes. Returns the
// buffer pair holding the sorted result.
func radixSortPacked[T Number](ka, kb []uint64, va, vb []T, andKey, orKey uint64) ([]uint64, []T) {
	n := len(ka)
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		// Skip the pass if this byte is identical across all keys.
		if byte(andKey>>shift) == byte(orKey>>shift) {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for k := 0; k < n; k++ {
			counts[byte(ka[k]>>shift)]++
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for k := 0; k < n; k++ {
			d := byte(ka[k] >> shift)
			kb[counts[d]] = ka[k]
			vb[counts[d]] = va[k]
			counts[d]++
		}
		ka, kb = kb, ka
		va, vb = vb, va
	}
	return ka, va
}

// insertionSortPacked is the small-batch packed-key sort: stable, in
// place, allocation-free, and faster than setting up radix passes below
// ~128 entries.
func insertionSortPacked[T Number](keys []uint64, vals []T) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			vals[j+1] = vals[j]
			j--
		}
		keys[j+1] = k
		vals[j+1] = v
	}
}

// combineSoA collapses runs of equal (row, col) in the sorted SoA slices
// by folding values left-to-right with op, in place. It returns the
// deduplicated length.
func combineSoA[T Number](rows, cols []Index, vals []T, op BinaryOp[T]) int {
	if len(rows) == 0 {
		return 0
	}
	w := 0
	for r := 1; r < len(rows); r++ {
		if rows[r] == rows[w] && cols[r] == cols[w] {
			vals[w] = op(vals[w], vals[r])
		} else {
			w++
			rows[w] = rows[r]
			cols[w] = cols[r]
			vals[w] = vals[r]
		}
	}
	return w + 1
}

// dcsrFromPending builds DCSR arrays from the first n sorted,
// duplicate-free pending entries. A pre-pass counts distinct rows so
// every output slice is allocated exactly once at its final size.
func (m *Matrix[T]) dcsrFromPending(n int) (rows []Index, ptr []int, col []Index, val []T) {
	if n == 0 {
		return nil, []int{0}, nil, nil
	}
	nr := 1
	for k := 1; k < n; k++ {
		if m.pRow[k] != m.pRow[k-1] {
			nr++
		}
	}
	rows = make([]Index, 0, nr)
	ptr = make([]int, 1, nr+1)
	col = make([]Index, n)
	val = make([]T, n)
	copy(col, m.pCol[:n])
	copy(val, m.pVal[:n])
	for k := 0; k < n; k++ {
		if k == 0 || m.pRow[k] != m.pRow[k-1] {
			if k != 0 {
				ptr = append(ptr, k)
			}
			rows = append(rows, m.pRow[k])
		}
	}
	ptr = append(ptr, n)
	return rows, ptr, col, val
}

// mergeDCSR union-merges two DCSR structures, combining colliding entries
// with op (left operand from the a side). It is the single kernel behind
// Wait and EWiseAdd; its O(nnz(a)+nnz(b)) sequential sweeps are what make
// the cascade's level-to-level addition memory-friendly.
func mergeDCSR[T Number](
	ar []Index, ap []int, ac []Index, av []T,
	br []Index, bp []int, bc []Index, bv []T,
	op BinaryOp[T],
) (rows []Index, ptr []int, col []Index, val []T) {
	rows = make([]Index, 0, len(ar)+len(br))
	ptr = make([]int, 1, len(ar)+len(br)+1)
	col = make([]Index, 0, len(ac)+len(bc))
	val = make([]T, 0, len(av)+len(bv))

	i, j := 0, 0
	for i < len(ar) || j < len(br) {
		switch {
		case j >= len(br) || (i < len(ar) && ar[i] < br[j]):
			rows = append(rows, ar[i])
			col = append(col, ac[ap[i]:ap[i+1]]...)
			val = append(val, av[ap[i]:ap[i+1]]...)
			i++
		case i >= len(ar) || br[j] < ar[i]:
			rows = append(rows, br[j])
			col = append(col, bc[bp[j]:bp[j+1]]...)
			val = append(val, bv[bp[j]:bp[j+1]]...)
			j++
		default: // same row id: merge the two sorted column runs
			rows = append(rows, ar[i])
			x, xe := ap[i], ap[i+1]
			y, ye := bp[j], bp[j+1]
			for x < xe || y < ye {
				switch {
				case y >= ye || (x < xe && ac[x] < bc[y]):
					col = append(col, ac[x])
					val = append(val, av[x])
					x++
				case x >= xe || bc[y] < ac[x]:
					col = append(col, bc[y])
					val = append(val, bv[y])
					y++
				default:
					col = append(col, ac[x])
					val = append(val, op(av[x], bv[y]))
					x++
					y++
				}
			}
			i++
			j++
		}
		ptr = append(ptr, len(col))
	}
	if len(rows) == 0 {
		ptr = []int{0}
	}
	return rows, ptr, col, val
}
