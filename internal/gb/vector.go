package gb

import (
	"fmt"
	"slices"
)

// vecTuple is a staged vector update.
type vecTuple[T Number] struct {
	idx Index
	val T
}

// Vector is a hypersparse vector of T values: sorted indices plus values,
// with a pending-tuple buffer mirroring Matrix's non-blocking mode.
type Vector[T Number] struct {
	n       Index
	idx     []Index
	val     []T
	pending []vecTuple[T]
	accum   BinaryOp[T]
}

// NewVector returns an empty vector of size n (> 0) with plus accumulation.
func NewVector[T Number](n Index) (*Vector[T], error) {
	if n == 0 {
		return nil, fmt.Errorf("%w: vector size must be nonzero", ErrInvalidValue)
	}
	return &Vector[T]{n: n, accum: Plus[T]().Op}, nil
}

// MustNewVector is NewVector that panics on error; for tests and examples.
func MustNewVector[T Number](n Index) *Vector[T] {
	v, err := NewVector[T](n)
	if err != nil {
		panic(err)
	}
	return v
}

// Size returns the vector's index-space size.
func (v *Vector[T]) Size() Index { return v.n }

// NVals returns the number of stored entries, materializing pending updates.
func (v *Vector[T]) NVals() int {
	v.Wait()
	return len(v.idx)
}

// SetAccum replaces the duplicate-combining operator. It must be called
// while no pending updates are staged.
func (v *Vector[T]) SetAccum(op BinaryOp[T]) error {
	if len(v.pending) != 0 {
		return fmt.Errorf("%w: cannot change accumulator with pending updates", ErrInvalidValue)
	}
	v.accum = op
	return nil
}

// SetElement stages v(i) ⊕= x.
func (v *Vector[T]) SetElement(i Index, x T) error {
	if i >= v.n {
		return fmt.Errorf("%w: %d outside vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	v.pending = append(v.pending, vecTuple[T]{idx: i, val: x})
	return nil
}

// Build assembles the vector from index/value lists, combining duplicates
// with dup; the vector must be empty.
func (v *Vector[T]) Build(idx []Index, vals []T, dup BinaryOp[T]) error {
	if len(v.idx) != 0 || len(v.pending) != 0 {
		return ErrOutputNotEmpty
	}
	if len(idx) != len(vals) {
		return fmt.Errorf("%w: slice lengths %d/%d differ", ErrInvalidValue, len(idx), len(vals))
	}
	if dup == nil {
		return fmt.Errorf("%w: nil dup operator", ErrInvalidValue)
	}
	for _, i := range idx {
		if i >= v.n {
			return fmt.Errorf("%w: %d outside vector of size %d", ErrIndexOutOfBounds, i, v.n)
		}
	}
	saved := v.accum
	v.accum = dup
	for k := range idx {
		v.pending = append(v.pending, vecTuple[T]{idx: idx[k], val: vals[k]})
	}
	v.Wait()
	v.accum = saved
	return nil
}

// ExtractElement returns the stored value at i, or ErrNoValue.
func (v *Vector[T]) ExtractElement(i Index) (T, error) {
	var zero T
	if i >= v.n {
		return zero, fmt.Errorf("%w: %d outside vector of size %d", ErrIndexOutOfBounds, i, v.n)
	}
	v.Wait()
	p, ok := searchIndex(v.idx, i)
	if !ok {
		return zero, ErrNoValue
	}
	return v.val[p], nil
}

// ExtractTuples returns copies of the stored indices and values in order.
func (v *Vector[T]) ExtractTuples() ([]Index, []T) {
	v.Wait()
	return append([]Index(nil), v.idx...), append([]T(nil), v.val...)
}

// Iterate calls f for each stored entry in index order; stops early on false.
func (v *Vector[T]) Iterate(f func(i Index, x T) bool) {
	v.Wait()
	for k := range v.idx {
		if !f(v.idx[k], v.val[k]) {
			return
		}
	}
}

// Clear removes all entries, keeping the size and accumulator.
func (v *Vector[T]) Clear() {
	v.idx = nil
	v.val = nil
	v.pending = nil
}

// Dup returns a deep copy with pending updates materialized.
func (v *Vector[T]) Dup() *Vector[T] {
	v.Wait()
	return &Vector[T]{
		n:     v.n,
		idx:   append([]Index(nil), v.idx...),
		val:   append([]T(nil), v.val...),
		accum: v.accum,
	}
}

// Wait materializes pending vector updates (sort, combine, union-merge).
func (v *Vector[T]) Wait() {
	if len(v.pending) == 0 {
		return
	}
	p := v.pending
	v.pending = nil
	slices.SortStableFunc(p, func(a, b vecTuple[T]) int {
		switch {
		case a.idx < b.idx:
			return -1
		case a.idx > b.idx:
			return 1
		default:
			return 0
		}
	})
	w := 0
	for r := 1; r < len(p); r++ {
		if p[r].idx == p[w].idx {
			p[w].val = v.accum(p[w].val, p[r].val)
		} else {
			w++
			p[w] = p[r]
		}
	}
	p = p[:w+1]

	if len(v.idx) == 0 {
		v.idx = make([]Index, len(p))
		v.val = make([]T, len(p))
		for k := range p {
			v.idx[k] = p[k].idx
			v.val[k] = p[k].val
		}
		return
	}
	nidx := make([]Index, 0, len(v.idx)+len(p))
	nval := make([]T, 0, len(v.val)+len(p))
	i, j := 0, 0
	for i < len(v.idx) || j < len(p) {
		switch {
		case j >= len(p) || (i < len(v.idx) && v.idx[i] < p[j].idx):
			nidx = append(nidx, v.idx[i])
			nval = append(nval, v.val[i])
			i++
		case i >= len(v.idx) || p[j].idx < v.idx[i]:
			nidx = append(nidx, p[j].idx)
			nval = append(nval, p[j].val)
			j++
		default:
			nidx = append(nidx, v.idx[i])
			nval = append(nval, v.accum(v.val[i], p[j].val))
			i++
			j++
		}
	}
	v.idx, v.val = nidx, nval
}

// VecEWiseAdd returns the union combination of a and b.
func VecEWiseAdd[T Number](a, b *Vector[T], add BinaryOp[T]) (*Vector[T], error) {
	if a.n != b.n {
		return nil, fmt.Errorf("%w: vectors %d vs %d", ErrDimensionMismatch, a.n, b.n)
	}
	if add == nil {
		return nil, fmt.Errorf("%w: nil add operator", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	c := &Vector[T]{n: a.n, accum: a.accum}
	i, j := 0, 0
	for i < len(a.idx) || j < len(b.idx) {
		switch {
		case j >= len(b.idx) || (i < len(a.idx) && a.idx[i] < b.idx[j]):
			c.idx = append(c.idx, a.idx[i])
			c.val = append(c.val, a.val[i])
			i++
		case i >= len(a.idx) || b.idx[j] < a.idx[i]:
			c.idx = append(c.idx, b.idx[j])
			c.val = append(c.val, b.val[j])
			j++
		default:
			c.idx = append(c.idx, a.idx[i])
			c.val = append(c.val, add(a.val[i], b.val[j]))
			i++
			j++
		}
	}
	return c, nil
}

// VecEWiseMult returns the intersection combination of a and b.
func VecEWiseMult[T Number](a, b *Vector[T], mul BinaryOp[T]) (*Vector[T], error) {
	if a.n != b.n {
		return nil, fmt.Errorf("%w: vectors %d vs %d", ErrDimensionMismatch, a.n, b.n)
	}
	if mul == nil {
		return nil, fmt.Errorf("%w: nil mul operator", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	c := &Vector[T]{n: a.n, accum: a.accum}
	i, j := 0, 0
	for i < len(a.idx) && j < len(b.idx) {
		switch {
		case a.idx[i] < b.idx[j]:
			i++
		case b.idx[j] < a.idx[i]:
			j++
		default:
			c.idx = append(c.idx, a.idx[i])
			c.val = append(c.val, mul(a.val[i], b.val[j]))
			i++
			j++
		}
	}
	return c, nil
}

// VecReduce folds all stored values with the monoid.
func VecReduce[T Number](v *Vector[T], m Monoid[T]) (T, error) {
	if m.Op == nil {
		var zero T
		return zero, fmt.Errorf("%w: monoid with nil operator", ErrInvalidValue)
	}
	v.Wait()
	acc := m.Identity
	for _, x := range v.val {
		acc = m.Op(acc, x)
	}
	return acc, nil
}

// VecApply returns a new vector with f applied to every stored value.
func VecApply[T Number](v *Vector[T], f UnaryOp[T]) (*Vector[T], error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil unary operator", ErrInvalidValue)
	}
	c := v.Dup()
	for k := range c.val {
		c.val[k] = f(c.val[k])
	}
	return c, nil
}
