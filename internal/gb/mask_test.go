package gb

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestApplyMaskStructural(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(1, 1, 10)
	_ = a.SetElement(2, 2, 20)
	_ = a.SetElement(3, 3, 30)
	mask := MustNewMatrix[int64](8, 8)
	_ = mask.SetElement(1, 1, 0) // mask values are ignored; pattern matters
	_ = mask.SetElement(3, 3, 999)
	_ = mask.SetElement(5, 5, 1) // mask position with no input entry

	c, err := ApplyMask(a, StructuralMask(mask))
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 2 {
		t.Fatalf("NVals = %d, want 2", c.NVals())
	}
	if _, err := c.ExtractElement(2, 2); !errors.Is(err, ErrNoValue) {
		t.Fatal("unmasked entry survived")
	}
	v, _ := c.ExtractElement(1, 1)
	if v != 10 {
		t.Fatalf("masked value = %d", v)
	}
}

func TestApplyComplementMask(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(1, 1, 10)
	_ = a.SetElement(2, 2, 20)
	mask := MustNewMatrix[int64](8, 8)
	_ = mask.SetElement(1, 1, 1)
	c, err := ApplyMask(a, ComplementMask(mask))
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 1 {
		t.Fatalf("NVals = %d", c.NVals())
	}
	if _, err := c.ExtractElement(2, 2); err != nil {
		t.Fatal("complement-admitted entry missing")
	}
}

func TestMaskPartitionProperty(t *testing.T) {
	// mask-selected + complement-selected == original, always.
	r := rand.New(rand.NewSource(70))
	f := func() bool {
		a := randMatrix(r, 32, 32, 120)
		mk := randMatrix(r, 32, 32, 80)
		sel, err1 := ApplyMask(a, StructuralMask(mk))
		com, err2 := ApplyMask(a, ComplementMask(mk))
		if err1 != nil || err2 != nil {
			return false
		}
		sum, err := EWiseAdd(sel, com, Plus[int64]().Op)
		if err != nil {
			return false
		}
		return Equal(sum, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMaskErrors(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	if _, err := ApplyMask(a, Mask[int64]{}); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil mask: %v", err)
	}
	wrong := MustNewMatrix[int64](4, 4)
	if _, err := ApplyMask(a, StructuralMask(wrong)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
}

func TestMxMMaskedMatchesFilteredMxM(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	f := func() bool {
		a := randMatrix(r, 24, 20, 80)
		b := randMatrix(r, 20, 28, 80)
		mk := randMatrix(r, 24, 28, 100)
		masked, err := MxMMasked(a, b, PlusTimes[int64](), StructuralMask(mk))
		if err != nil {
			return false
		}
		full, err := MxM(a, b, PlusTimes[int64]())
		if err != nil {
			return false
		}
		want, err := ApplyMask(full, StructuralMask(mk))
		if err != nil {
			return false
		}
		return Equal(masked, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMxMMaskedComplement(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	a := randMatrix(r, 16, 16, 60)
	b := randMatrix(r, 16, 16, 60)
	mk := randMatrix(r, 16, 16, 40)
	masked, err := MxMMasked(a, b, PlusTimes[int64](), ComplementMask(mk))
	if err != nil {
		t.Fatal(err)
	}
	full, _ := MxM(a, b, PlusTimes[int64]())
	want, _ := ApplyMask(full, ComplementMask(mk))
	if !Equal(masked, want) {
		t.Fatal("complement masked multiply mismatch")
	}
}

func TestMxMMaskedErrors(t *testing.T) {
	a := MustNewMatrix[int64](4, 5)
	b := MustNewMatrix[int64](5, 6)
	mk := MustNewMatrix[int64](4, 6)
	if _, err := MxMMasked(a, b, PlusTimes[int64](), Mask[int64]{}); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil mask: %v", err)
	}
	badMask := MustNewMatrix[int64](4, 5)
	if _, err := MxMMasked(a, b, PlusTimes[int64](), StructuralMask(badMask)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mask dims: %v", err)
	}
	badB := MustNewMatrix[int64](9, 6)
	if _, err := MxMMasked(a, badB, PlusTimes[int64](), StructuralMask(mk)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("inner dims: %v", err)
	}
}

func TestMxMMaskedEmptyOperands(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	b := MustNewMatrix[int64](4, 4)
	mk := MustNewMatrix[int64](4, 4)
	_ = mk.SetElement(0, 0, 1)
	c, err := MxMMasked(a, b, PlusTimes[int64](), StructuralMask(mk))
	if err != nil || c.NVals() != 0 {
		t.Fatalf("empty: %v, %v", c, err)
	}
}

func TestWriteReadMatrixMarketRoundTrip(t *testing.T) {
	m := MustNewMatrix[float64](100, 80)
	_ = m.SetElement(0, 0, 1.5)
	_ = m.SetElement(42, 7, -2)
	_ = m.SetElement(99, 79, 3.25)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, got) {
		t.Fatal("MatrixMarket round trip mismatch")
	}
}

func TestReadMatrixMarketPatternAndSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% comment line
3 3 2
2 1
3 2
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NVals() != 4 { // each off-diagonal entry expands to two
		t.Fatalf("NVals = %d, want 4", m.NVals())
	}
	v, err := m.ExtractElement(0, 1) // mirror of "2 1"
	if err != nil || v != 1 {
		t.Fatalf("mirrored entry = %v, %v", v, err)
	}
}

func TestReadMatrixMarketRejectsMalformed(t *testing.T) {
	cases := []string{
		"not a header\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n1 1\n1\n",
		"%%MatrixMarket matrix coordinate real general\nbogus\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 5\n",          // truncated
		"%%MatrixMarket matrix coordinate real general\n3 3 1\n0 1 5\n",          // 0-based coord
		"%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 notanumber\n", // bad value
		"%%MatrixMarket matrix coordinate real general\n3 3 1\n1\n",              // short line
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
