package gb

import "fmt"

// Mask is a structural mask over a matrix pattern: a masked operation may
// only produce entries at positions present in the mask (or absent, for a
// complement mask). Values in the mask matrix are ignored — only the
// pattern matters, matching GraphBLAS structural masks.
type Mask[T Number] struct {
	pattern    *Matrix[T]
	complement bool
}

// StructuralMask returns a mask selecting the positions where m has
// entries.
func StructuralMask[T Number](m *Matrix[T]) Mask[T] {
	return Mask[T]{pattern: m}
}

// ComplementMask returns a mask selecting the positions where m has no
// entry.
func ComplementMask[T Number](m *Matrix[T]) Mask[T] {
	return Mask[T]{pattern: m, complement: true}
}

// allows reports whether the mask admits position (i, j).
func (k Mask[T]) allows(i, j Index) bool {
	k.pattern.Wait()
	r, ok := searchIndex(k.pattern.rows, i)
	if !ok {
		return k.complement
	}
	lo, hi := k.pattern.ptr[r], k.pattern.ptr[r+1]
	_, found := searchIndex(k.pattern.col[lo:hi], j)
	if k.complement {
		return !found
	}
	return found
}

// rowPattern returns the sorted column ids of the mask's row i (nil if the
// row is empty). Only meaningful for non-complement masks.
func (k Mask[T]) rowPattern(i Index) []Index {
	r, ok := searchIndex(k.pattern.rows, i)
	if !ok {
		return nil
	}
	return k.pattern.col[k.pattern.ptr[r]:k.pattern.ptr[r+1]]
}

// ApplyMask returns the entries of a admitted by the mask.
func ApplyMask[T Number](a *Matrix[T], mask Mask[T]) (*Matrix[T], error) {
	if mask.pattern == nil {
		return nil, fmt.Errorf("%w: nil mask pattern", ErrInvalidValue)
	}
	if mask.pattern.nrows != a.nrows || mask.pattern.ncols != a.ncols {
		return nil, fmt.Errorf("%w: mask %dx%d over %dx%d", ErrDimensionMismatch,
			mask.pattern.nrows, mask.pattern.ncols, a.nrows, a.ncols)
	}
	a.Wait()
	mask.pattern.Wait()
	return Select(a, func(i, j Index, _ T) bool { return mask.allows(i, j) })
}

// MxMMasked computes C<mask> = A ⊕.⊗ B: only output positions admitted by
// the mask are computed and stored. For a non-complement mask this prunes
// the Gustavson accumulation to the mask's row patterns — the "masked
// multiply" at the heart of GraphBLAS triangle counting, where it turns an
// O(n^3)-flavored product into work proportional to the mask's nnz.
func MxMMasked[T Number](a, b *Matrix[T], s Semiring[T], mask Mask[T]) (*Matrix[T], error) {
	if mask.pattern == nil {
		return nil, fmt.Errorf("%w: nil mask pattern", ErrInvalidValue)
	}
	if a.ncols != b.nrows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrDimensionMismatch, a.nrows, a.ncols, b.nrows, b.ncols)
	}
	if mask.pattern.nrows != a.nrows || mask.pattern.ncols != b.ncols {
		return nil, fmt.Errorf("%w: mask %dx%d over %dx%d product", ErrDimensionMismatch,
			mask.pattern.nrows, mask.pattern.ncols, a.nrows, b.ncols)
	}
	if s.Add.Op == nil || s.Mul == nil {
		return nil, fmt.Errorf("%w: incomplete semiring", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	mask.pattern.Wait()

	c := &Matrix[T]{nrows: a.nrows, ncols: b.ncols, accum: a.accum, ptr: []int{0}}
	if len(a.col) == 0 || len(b.col) == 0 {
		return c, nil
	}

	if mask.complement {
		// Complement masks cannot prune the sweep; compute then filter.
		full, err := MxM(a, b, s)
		if err != nil {
			return nil, err
		}
		return Select(full, func(i, j Index, _ T) bool { return mask.allows(i, j) })
	}

	acc := make(map[Index]T)
	for k, i := range a.rows {
		allowed := mask.rowPattern(i)
		if len(allowed) == 0 {
			continue
		}
		clear(acc)
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			kk := a.col[p]
			bi, ok := searchIndex(b.rows, kk)
			if !ok {
				continue
			}
			av := a.val[p]
			for q := b.ptr[bi]; q < b.ptr[bi+1]; q++ {
				j := b.col[q]
				// Prune to the mask's row pattern.
				if _, ok := searchIndex(allowed, j); !ok {
					continue
				}
				prod := s.Mul(av, b.val[q])
				if cur, seen := acc[j]; seen {
					acc[j] = s.Add.Op(cur, prod)
				} else {
					acc[j] = prod
				}
			}
		}
		if len(acc) == 0 {
			continue
		}
		before := len(c.col)
		for _, j := range allowed { // allowed is sorted: emit in order
			if v, ok := acc[j]; ok {
				c.col = append(c.col, j)
				c.val = append(c.val, v)
			}
		}
		if len(c.col) > before {
			c.rows = append(c.rows, i)
			c.ptr = append(c.ptr, len(c.col))
		}
	}
	return c, nil
}
