package gb

import "fmt"

// Build assembles the matrix from tuple lists, combining duplicate (i, j)
// pairs with dup. Following GrB_Matrix_build, the matrix must be empty
// (no stored entries and no pending updates).
func (m *Matrix[T]) Build(rows, cols []Index, vals []T, dup BinaryOp[T]) error {
	if len(m.col) != 0 || len(m.pRow) != 0 {
		return ErrOutputNotEmpty
	}
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return fmt.Errorf("%w: slice lengths %d/%d/%d differ", ErrInvalidValue, len(rows), len(cols), len(vals))
	}
	if dup == nil {
		return fmt.Errorf("%w: nil dup operator", ErrInvalidValue)
	}
	for k := range rows {
		if rows[k] >= m.nrows || cols[k] >= m.ncols {
			return fmt.Errorf("%w: (%d,%d) outside %d x %d", ErrIndexOutOfBounds, rows[k], cols[k], m.nrows, m.ncols)
		}
	}
	// Stage through the pending SoA buffers so Build shares the Wait
	// sort/combine/assemble pipeline, just with dup in place of the
	// matrix accumulator.
	m.stageTuples(rows, cols, vals)
	m.sortPending()
	n := combineSoA(m.pRow, m.pCol, m.pVal, dup)
	m.rows, m.ptr, m.col, m.val = m.dcsrFromPending(n)
	m.pRow = m.pRow[:0]
	m.pCol = m.pCol[:0]
	m.pVal = m.pVal[:0]
	return nil
}

// MatrixFromTuples constructs a new matrix from tuple slices with duplicates
// combined by dup. Convenience wrapper over NewMatrix + Build.
func MatrixFromTuples[T Number](nrows, ncols Index, rows, cols []Index, vals []T, dup BinaryOp[T]) (*Matrix[T], error) {
	m, err := NewMatrix[T](nrows, ncols)
	if err != nil {
		return nil, err
	}
	if err := m.Build(rows, cols, vals, dup); err != nil {
		return nil, err
	}
	return m, nil
}

// Diag returns an n x n matrix whose diagonal entries are taken from the
// vector v (one entry per stored element of v).
func Diag[T Number](v *Vector[T]) (*Matrix[T], error) {
	v.Wait()
	m, err := NewMatrix[T](v.n, v.n)
	if err != nil {
		return nil, err
	}
	idx := append([]Index(nil), v.idx...)
	val := append([]T(nil), v.val...)
	return m, m.Build(idx, idx, val, First[T])
}
