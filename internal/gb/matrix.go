package gb

import "fmt"

// Matrix is a hypersparse matrix of T values, stored row-oriented in DCSR
// form. The zero value is not usable; construct with NewMatrix.
//
// Matrices operate in "non-blocking mode": SetElement and AppendTuples stage
// updates in a pending-tuple buffer, and any operation that needs the
// materialized structure calls Wait first. Pending duplicates (and pending
// entries colliding with stored entries) are combined with the matrix
// accumulator, which defaults to addition — the semantics the hierarchical
// cascade requires.
type Matrix[T Number] struct {
	nrows Index
	ncols Index

	// DCSR storage. rows holds the sorted ids of non-empty rows;
	// col[ptr[k]:ptr[k+1]] and val[ptr[k]:ptr[k+1]] hold the sorted column
	// ids and values of row rows[k]. len(ptr) == len(rows)+1.
	rows []Index
	ptr  []int
	col  []Index
	val  []T

	// Pending updates not yet merged into the DCSR arrays, in
	// struct-of-arrays layout: entry k is (pRow[k], pCol[k], pVal[k]).
	// SoA keeps the Wait sort/merge loop cache-friendly (the radix passes
	// touch only the packed keys, never the values' padding) and lets the
	// staging append copy each incoming batch with three memmoves instead
	// of a per-entry struct assignment. The three slices grow in lockstep;
	// Wait truncates them to length zero, retaining capacity, so a matrix
	// in steady state stages updates without allocating.
	pRow []Index
	pCol []Index
	pVal []T

	// scratch holds the radix-sort ping-pong buffers, retained across
	// Waits so sorting is allocation-free once warm.
	scratch sortScratch[T]

	accum BinaryOp[T]
}

// sortScratch is the retained workspace for sortPending: packed 64-bit
// keys and the value payloads, double-buffered for the LSD radix passes.
type sortScratch[T Number] struct {
	keyA, keyB []uint64
	valA, valB []T
}

// NewMatrix returns an empty nrows x ncols matrix with the default plus
// accumulator for pending updates. Dimensions must be nonzero.
func NewMatrix[T Number](nrows, ncols Index) (*Matrix[T], error) {
	if nrows == 0 || ncols == 0 {
		return nil, fmt.Errorf("%w: dimensions must be nonzero (got %d x %d)", ErrInvalidValue, nrows, ncols)
	}
	return &Matrix[T]{nrows: nrows, ncols: ncols, accum: Plus[T]().Op, ptr: []int{0}}, nil
}

// MustNewMatrix is NewMatrix for statically valid dimensions; it panics on
// error and exists for tests and examples.
func MustNewMatrix[T Number](nrows, ncols Index) *Matrix[T] {
	m, err := NewMatrix[T](nrows, ncols)
	if err != nil {
		panic(err)
	}
	return m
}

// SetAccum replaces the duplicate-combining operator used when pending
// updates are materialized. It must be called while no pending updates are
// staged (typically right after construction).
func (m *Matrix[T]) SetAccum(op BinaryOp[T]) error {
	if len(m.pRow) != 0 {
		return fmt.Errorf("%w: cannot change accumulator with pending updates", ErrInvalidValue)
	}
	m.accum = op
	return nil
}

// NRows returns the number of rows of the matrix's index space.
func (m *Matrix[T]) NRows() Index { return m.nrows }

// NCols returns the number of columns of the matrix's index space.
func (m *Matrix[T]) NCols() Index { return m.ncols }

// NVals returns the number of stored entries, materializing pending updates
// first (like GrB_Matrix_nvals, it forces completion).
func (m *Matrix[T]) NVals() int {
	m.Wait()
	return len(m.col)
}

// PendingLen reports how many staged (not yet materialized) updates exist.
// Together with the materialized entry count it bounds NVals from above;
// the hierarchical cascade uses this to decide when a Wait is worthwhile.
func (m *Matrix[T]) PendingLen() int { return len(m.pRow) }

// MaterializedNVals returns the number of entries in the DCSR structure,
// ignoring pending updates. NVals() <= MaterializedNVals()+PendingLen().
func (m *Matrix[T]) MaterializedNVals() int { return len(m.col) }

// SetElement stages the update A(i,j) ⊕= v (⊕ is the matrix accumulator).
func (m *Matrix[T]) SetElement(i, j Index, v T) error {
	if i >= m.nrows || j >= m.ncols {
		return fmt.Errorf("%w: (%d,%d) outside %d x %d", ErrIndexOutOfBounds, i, j, m.nrows, m.ncols)
	}
	if cap(m.pRow)-len(m.pRow) < 1 {
		m.growPending(1)
	}
	m.pRow = append(m.pRow, i)
	m.pCol = append(m.pCol, j)
	m.pVal = append(m.pVal, v)
	return nil
}

// AppendTuples stages a batch of updates. It is the bulk equivalent of
// calling SetElement for each (rows[k], cols[k], vals[k]) and is the fast
// path used by streaming ingest. The three slices must have equal length.
func (m *Matrix[T]) AppendTuples(rows, cols []Index, vals []T) error {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return fmt.Errorf("%w: slice lengths %d/%d/%d differ", ErrInvalidValue, len(rows), len(cols), len(vals))
	}
	for k := range rows {
		if rows[k] >= m.nrows || cols[k] >= m.ncols {
			return fmt.Errorf("%w: (%d,%d) outside %d x %d", ErrIndexOutOfBounds, rows[k], cols[k], m.nrows, m.ncols)
		}
	}
	m.stageTuples(rows, cols, vals)
	return nil
}

// stageTuples copies a validated batch into the pending SoA buffers.
// Growth is delegated to growPending so the steady-state path (capacity
// already warm) stays free of allocation sites.
//
//hhgb:noalloc
func (m *Matrix[T]) stageTuples(rows, cols []Index, vals []T) {
	if cap(m.pRow)-len(m.pRow) < len(rows) {
		m.growPending(len(rows))
	}
	m.pRow = append(m.pRow, rows...)
	m.pCol = append(m.pCol, cols...)
	m.pVal = append(m.pVal, vals...)
}

// growPending reserves room for n more pending entries, at least doubling
// so repeated staging amortizes to O(1) copies per entry. The three SoA
// slices grow together, keeping their capacities in lockstep.
func (m *Matrix[T]) growPending(n int) {
	want := len(m.pRow) + n
	newCap := 2 * cap(m.pRow)
	if newCap < want {
		newCap = want
	}
	grownRow := make([]Index, len(m.pRow), newCap)
	copy(grownRow, m.pRow)
	m.pRow = grownRow
	grownCol := make([]Index, len(m.pCol), newCap)
	copy(grownCol, m.pCol)
	m.pCol = grownCol
	grownVal := make([]T, len(m.pVal), newCap)
	copy(grownVal, m.pVal)
	m.pVal = grownVal
}

// ExtractElement returns the stored value at (i, j). It forces completion of
// pending updates. The error is ErrNoValue when no entry exists.
func (m *Matrix[T]) ExtractElement(i, j Index) (T, error) {
	var zero T
	if i >= m.nrows || j >= m.ncols {
		return zero, fmt.Errorf("%w: (%d,%d) outside %d x %d", ErrIndexOutOfBounds, i, j, m.nrows, m.ncols)
	}
	m.Wait()
	k, ok := searchIndex(m.rows, i)
	if !ok {
		return zero, ErrNoValue
	}
	lo, hi := m.ptr[k], m.ptr[k+1]
	p, ok := searchIndex(m.col[lo:hi], j)
	if !ok {
		return zero, ErrNoValue
	}
	return m.val[lo+p], nil
}

// RemoveElement deletes the entry at (i, j) if present. It forces completion
// of pending updates. Removing an absent entry is not an error.
func (m *Matrix[T]) RemoveElement(i, j Index) error {
	if i >= m.nrows || j >= m.ncols {
		return fmt.Errorf("%w: (%d,%d) outside %d x %d", ErrIndexOutOfBounds, i, j, m.nrows, m.ncols)
	}
	m.Wait()
	k, ok := searchIndex(m.rows, i)
	if !ok {
		return nil
	}
	lo, hi := m.ptr[k], m.ptr[k+1]
	p, ok := searchIndex(m.col[lo:hi], j)
	if !ok {
		return nil
	}
	at := lo + p
	m.col = append(m.col[:at], m.col[at+1:]...)
	m.val = append(m.val[:at], m.val[at+1:]...)
	for q := k + 1; q < len(m.ptr); q++ {
		m.ptr[q]--
	}
	if m.ptr[k] == m.ptr[k+1] { // row became empty
		m.rows = append(m.rows[:k], m.rows[k+1:]...)
		m.ptr = append(m.ptr[:k+1], m.ptr[k+2:]...)
	}
	return nil
}

// Clear removes all entries (stored and pending), keeping dimensions and
// accumulator. Storage is released so a cleared level really returns its
// memory, which is the point of the hierarchical cascade.
func (m *Matrix[T]) Clear() {
	m.rows = nil
	m.ptr = []int{0}
	m.col = nil
	m.val = nil
	m.pRow = nil
	m.pCol = nil
	m.pVal = nil
	m.scratch = sortScratch[T]{}
}

// Dup returns a deep copy. Pending updates are materialized first so the
// copy shares no state with the original.
func (m *Matrix[T]) Dup() *Matrix[T] {
	m.Wait()
	d := &Matrix[T]{nrows: m.nrows, ncols: m.ncols, accum: m.accum}
	d.rows = append([]Index(nil), m.rows...)
	d.ptr = append([]int(nil), m.ptr...)
	d.col = append([]Index(nil), m.col...)
	d.val = append([]T(nil), m.val...)
	return d
}

// NNZRows returns the number of non-empty rows (the hypersparse row count).
func (m *Matrix[T]) NNZRows() int {
	m.Wait()
	return len(m.rows)
}

// Iterate calls f for each stored entry in row-major order, stopping early
// if f returns false. Pending updates are materialized first.
func (m *Matrix[T]) Iterate(f func(i, j Index, v T) bool) {
	m.Wait()
	for k, r := range m.rows {
		for p := m.ptr[k]; p < m.ptr[k+1]; p++ {
			if !f(r, m.col[p], m.val[p]) {
				return
			}
		}
	}
}

// ExtractTuples returns all stored entries in row-major order. It forces
// completion of pending updates. The returned slices are fresh copies.
func (m *Matrix[T]) ExtractTuples() (rows, cols []Index, vals []T) {
	m.Wait()
	n := len(m.col)
	rows = make([]Index, 0, n)
	cols = append([]Index(nil), m.col...)
	vals = append([]T(nil), m.val...)
	for k, r := range m.rows {
		for p := m.ptr[k]; p < m.ptr[k+1]; p++ {
			_ = p
			rows = append(rows, r)
		}
	}
	return rows, cols, vals
}

// String summarizes the matrix without dumping entries.
func (m *Matrix[T]) String() string {
	return fmt.Sprintf("gb.Matrix[%dx%d, nvals=%d(+%d pending), nnzrows=%d]",
		m.nrows, m.ncols, len(m.col), len(m.pRow), len(m.rows))
}

// searchIndex binary-searches a sorted Index slice and reports the position
// and whether x was found.
func searchIndex(s []Index, x Index) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == x
}
