package gb

import (
	"fmt"
	"math/bits"
)

// Kron returns the Kronecker product C = A ⊗ B with values combined by mul:
// C(i*Brows + k, j*Bcols + l) = mul(A(i,j), B(k,l)).
//
// Kronecker products of small seed matrices generate the power-law graphs
// used throughout the Graph Challenge / GraphBLAS literature; the generator
// in internal/powerlaw uses this for its "explicit Kronecker" mode.
func Kron[T Number](a, b *Matrix[T], mul BinaryOp[T]) (*Matrix[T], error) {
	if mul == nil {
		return nil, fmt.Errorf("%w: nil mul operator", ErrInvalidValue)
	}
	hiR, nR := bits.Mul64(a.nrows, b.nrows)
	hiC, nC := bits.Mul64(a.ncols, b.ncols)
	if hiR != 0 || hiC != 0 {
		return nil, fmt.Errorf("%w: kron dimensions overflow uint64", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	c := &Matrix[T]{nrows: nR, ncols: nC, accum: a.accum, ptr: []int{0}}
	if len(a.col) == 0 || len(b.col) == 0 {
		return c, nil
	}
	// Outer loop over A's rows ascending, inner over B's rows ascending
	// gives sorted output rows; same argument sorts columns within a row.
	for ka, ia := range a.rows {
		for kb, ib := range b.rows {
			row := ia*b.nrows + ib
			before := len(c.col)
			for p := a.ptr[ka]; p < a.ptr[ka+1]; p++ {
				ja, va := a.col[p], a.val[p]
				for q := b.ptr[kb]; q < b.ptr[kb+1]; q++ {
					c.col = append(c.col, ja*b.ncols+b.col[q])
					c.val = append(c.val, mul(va, b.val[q]))
				}
			}
			if len(c.col) > before {
				c.rows = append(c.rows, row)
				c.ptr = append(c.ptr, len(c.col))
			}
		}
	}
	return c, nil
}

// KronPower returns the k-fold Kronecker power A ⊗ A ⊗ ... ⊗ A (k >= 1).
func KronPower[T Number](a *Matrix[T], k int, mul BinaryOp[T]) (*Matrix[T], error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: kron power %d < 1", ErrInvalidValue, k)
	}
	c := a.Dup()
	for i := 1; i < k; i++ {
		next, err := Kron(c, a, mul)
		if err != nil {
			return nil, err
		}
		c = next
	}
	return c, nil
}
