package gb

import "testing"

// The staging stage (AppendTuples → stageTuples) is where every ingest
// batch lands in a cascade level; it must append into the pending SoA
// without allocating once pending capacity has warmed. Wait is off the
// per-batch path (it runs at merge/barrier cadence) but still carries a
// documented budget: the pack/sort/unpack machinery reuses retained
// scratch, so the only allocations are the fresh DCSR arrays (and the
// merge result when the matrix already holds entries).

func allocTuples(n int) (rows, cols []Index, vals []float64) {
	rows = make([]Index, n)
	cols = make([]Index, n)
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		// Spread across rows and columns, small indices: the narrow
		// (packed-key radix) sort path, which is the steady state.
		rows[i] = Index((i * 2654435761) % 1024)
		cols[i] = Index((i * 40503) % 1024)
		vals[i] = float64(i) + 0.5
	}
	return rows, cols, vals
}

func TestAllocBudgetStageTuples(t *testing.T) {
	m := MustNewMatrix[float64](1024, 1024)
	rows, cols, vals := allocTuples(256)
	if err := m.AppendTuples(rows, cols, vals); err != nil { // warm pending capacity
		t.Fatalf("AppendTuples: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.pRow = m.pRow[:0]
		m.pCol = m.pCol[:0]
		m.pVal = m.pVal[:0]
		if err := m.AppendTuples(rows, cols, vals); err != nil {
			t.Fatalf("AppendTuples: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm stageTuples allocates %.1f/op, budget is 0", allocs)
	}
}

// waitAllocBudget documents the warm Wait allocation budget for a merging
// matrix: the four DCSR arrays built from pending, the four arrays of the
// merge result, and small bookkeeping. It is a ceiling, not a target —
// the test exists to catch the sort path regressing back to
// allocate-per-call (pre-SoA it was O(n) boxed tuples per Wait).
const waitAllocBudget = 16

func TestAllocBudgetWait(t *testing.T) {
	m := MustNewMatrix[float64](1024, 1024)
	rows, cols, vals := allocTuples(256)
	if err := m.AppendTuples(rows, cols, vals); err != nil {
		t.Fatalf("AppendTuples: %v", err)
	}
	m.Wait() // warm sort scratch and establish the merge target
	allocs := testing.AllocsPerRun(50, func() {
		if err := m.AppendTuples(rows, cols, vals); err != nil {
			t.Fatalf("AppendTuples: %v", err)
		}
		m.Wait()
	})
	if allocs > waitAllocBudget {
		t.Fatalf("warm Wait allocates %.1f/op, budget is %d", allocs, waitAllocBudget)
	}
}
