package gb

// Equal reports whether a and b have identical dimensions, sparsity pattern
// and values. Pending updates are materialized on both sides first.
// Explicit zeros are significant: a stored 0 differs from no entry.
func Equal[T Number](a, b *Matrix[T]) bool {
	if a == nil || b == nil {
		return a == b
	}
	a.Wait()
	b.Wait()
	if a.nrows != b.nrows || a.ncols != b.ncols || len(a.col) != len(b.col) || len(a.rows) != len(b.rows) {
		return false
	}
	for k := range a.rows {
		if a.rows[k] != b.rows[k] || a.ptr[k+1] != b.ptr[k+1] {
			return false
		}
	}
	for k := range a.col {
		if a.col[k] != b.col[k] || a.val[k] != b.val[k] {
			return false
		}
	}
	return true
}

// VecEqual reports whether two vectors are identical in size, pattern and
// values.
func VecEqual[T Number](a, b *Vector[T]) bool {
	if a == nil || b == nil {
		return a == b
	}
	a.Wait()
	b.Wait()
	if a.n != b.n || len(a.idx) != len(b.idx) {
		return false
	}
	for k := range a.idx {
		if a.idx[k] != b.idx[k] || a.val[k] != b.val[k] {
			return false
		}
	}
	return true
}

// checkInvariants verifies internal DCSR consistency; used by tests.
func (m *Matrix[T]) checkInvariants() error {
	if len(m.ptr) != len(m.rows)+1 {
		return errInvariant("ptr length")
	}
	if m.ptr[0] != 0 || m.ptr[len(m.ptr)-1] != len(m.col) {
		return errInvariant("ptr endpoints")
	}
	if len(m.col) != len(m.val) {
		return errInvariant("col/val length")
	}
	for k := 1; k < len(m.rows); k++ {
		if m.rows[k-1] >= m.rows[k] {
			return errInvariant("rows not strictly increasing")
		}
	}
	for k := range m.rows {
		if m.ptr[k] >= m.ptr[k+1] {
			return errInvariant("empty row stored")
		}
		if m.rows[k] >= m.nrows {
			return errInvariant("row id out of bounds")
		}
		for p := m.ptr[k]; p < m.ptr[k+1]; p++ {
			if m.col[p] >= m.ncols {
				return errInvariant("col id out of bounds")
			}
			if p > m.ptr[k] && m.col[p-1] >= m.col[p] {
				return errInvariant("cols not strictly increasing within row")
			}
		}
	}
	return nil
}

type errInvariant string

func (e errInvariant) Error() string { return "gb: invariant violated: " + string(e) }
