package gb

import "fmt"

// EWiseAdd returns the set-union element-wise combination of a and b:
// entries present in both are combined with add; entries present in exactly
// one operand are copied. This is GraphBLAS eWiseAdd and the single
// operation the hierarchical cascade is built from.
func EWiseAdd[T Number](a, b *Matrix[T], add BinaryOp[T]) (*Matrix[T], error) {
	if a.nrows != b.nrows || a.ncols != b.ncols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrDimensionMismatch, a.nrows, a.ncols, b.nrows, b.ncols)
	}
	if add == nil {
		return nil, fmt.Errorf("%w: nil add operator", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	c := &Matrix[T]{nrows: a.nrows, ncols: a.ncols, accum: a.accum}
	c.rows, c.ptr, c.col, c.val = mergeDCSR(a.rows, a.ptr, a.col, a.val, b.rows, b.ptr, b.col, b.val, add)
	return c, nil
}

// AddAssign performs dst ⊕= src in place (dst keeps its accumulator and
// dimensions; src is unchanged). It is the cascade step "A(i+1) += A(i)".
func AddAssign[T Number](dst, src *Matrix[T], add BinaryOp[T]) error {
	if dst.nrows != src.nrows || dst.ncols != src.ncols {
		return fmt.Errorf("%w: %dx%d += %dx%d", ErrDimensionMismatch, dst.nrows, dst.ncols, src.nrows, src.ncols)
	}
	if add == nil {
		return fmt.Errorf("%w: nil add operator", ErrInvalidValue)
	}
	dst.Wait()
	src.Wait()
	if len(src.col) == 0 {
		return nil
	}
	if len(dst.col) == 0 {
		dst.rows = append([]Index(nil), src.rows...)
		dst.ptr = append([]int(nil), src.ptr...)
		dst.col = append([]Index(nil), src.col...)
		dst.val = append([]T(nil), src.val...)
		return nil
	}
	dst.rows, dst.ptr, dst.col, dst.val = mergeDCSR(
		dst.rows, dst.ptr, dst.col, dst.val,
		src.rows, src.ptr, src.col, src.val,
		add,
	)
	return nil
}

// EWiseMult returns the set-intersection element-wise combination of a and
// b: only entries present in both operands appear in the result, combined
// with mul.
func EWiseMult[T Number](a, b *Matrix[T], mul BinaryOp[T]) (*Matrix[T], error) {
	if a.nrows != b.nrows || a.ncols != b.ncols {
		return nil, fmt.Errorf("%w: %dx%d .* %dx%d", ErrDimensionMismatch, a.nrows, a.ncols, b.nrows, b.ncols)
	}
	if mul == nil {
		return nil, fmt.Errorf("%w: nil mul operator", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	c := &Matrix[T]{nrows: a.nrows, ncols: a.ncols, accum: a.accum, ptr: []int{0}}

	i, j := 0, 0
	for i < len(a.rows) && j < len(b.rows) {
		switch {
		case a.rows[i] < b.rows[j]:
			i++
		case b.rows[j] < a.rows[i]:
			j++
		default:
			before := len(c.col)
			x, xe := a.ptr[i], a.ptr[i+1]
			y, ye := b.ptr[j], b.ptr[j+1]
			for x < xe && y < ye {
				switch {
				case a.col[x] < b.col[y]:
					x++
				case b.col[y] < a.col[x]:
					y++
				default:
					c.col = append(c.col, a.col[x])
					c.val = append(c.val, mul(a.val[x], b.val[y]))
					x++
					y++
				}
			}
			if len(c.col) > before {
				c.rows = append(c.rows, a.rows[i])
				c.ptr = append(c.ptr, len(c.col))
			}
			i++
			j++
		}
	}
	return c, nil
}

// Sum folds EWiseAdd over all operands with the plus operator, returning the
// materialized total. It implements the paper's query step A = Σ Ai. A nil
// or empty operand list is invalid; single operands are duplicated so the
// caller may mutate the result freely.
func Sum[T Number](ms ...*Matrix[T]) (*Matrix[T], error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: Sum of no matrices", ErrInvalidValue)
	}
	acc := ms[0].Dup()
	plus := Plus[T]().Op
	for _, m := range ms[1:] {
		if err := AddAssign(acc, m, plus); err != nil {
			return nil, err
		}
	}
	return acc, nil
}
