package gb

import "fmt"

// All is the nil index list, meaning "every index" (GrB_ALL).
var All []Index = nil

// Extract returns C(i', j') = A(rowIdx[i'], colIdx[j']) — the submatrix
// selected (and relabeled) by the given index lists. A nil list selects
// every index in order (GrB_ALL); for a hypersparse matrix that means the
// identity relabeling, not materializing 2^64 rows.
func Extract[T Number](a *Matrix[T], rowIdx, colIdx []Index) (*Matrix[T], error) {
	a.Wait()

	outRows := Index(uint64(len(rowIdx)))
	if rowIdx == nil {
		outRows = a.nrows
	}
	outCols := Index(uint64(len(colIdx)))
	if colIdx == nil {
		outCols = a.ncols
	}
	if outRows == 0 || outCols == 0 {
		return nil, fmt.Errorf("%w: empty extract index list", ErrInvalidValue)
	}
	for _, i := range rowIdx {
		if i >= a.nrows {
			return nil, fmt.Errorf("%w: row %d outside %d", ErrIndexOutOfBounds, i, a.nrows)
		}
	}
	for _, j := range colIdx {
		if j >= a.ncols {
			return nil, fmt.Errorf("%w: col %d outside %d", ErrIndexOutOfBounds, j, a.ncols)
		}
	}

	// Column relabeling map (old id -> new position, keeping duplicates'
	// last position like GrB extract with duplicate indices is undefined;
	// we take the last occurrence deterministically).
	var colMap map[Index]Index
	if colIdx != nil {
		colMap = make(map[Index]Index, len(colIdx))
		for p, j := range colIdx {
			colMap[j] = Index(uint64(p))
		}
	}

	var rr, cc []Index
	var vv []T
	appendRow := func(srcRow int, newID Index) {
		for p := a.ptr[srcRow]; p < a.ptr[srcRow+1]; p++ {
			j := a.col[p]
			if colMap != nil {
				nj, ok := colMap[j]
				if !ok {
					continue
				}
				j = nj
			}
			rr = append(rr, newID)
			cc = append(cc, j)
			vv = append(vv, a.val[p])
		}
	}

	if rowIdx == nil {
		for k := range a.rows {
			appendRow(k, a.rows[k])
		}
	} else {
		for p, i := range rowIdx {
			if k, ok := searchIndex(a.rows, i); ok {
				appendRow(k, Index(uint64(p)))
			}
		}
	}
	return MatrixFromTuples(outRows, outCols, rr, cc, vv, Second[T])
}

// ExtractRow returns row i of A as a vector over the column space.
func ExtractRow[T Number](a *Matrix[T], i Index) (*Vector[T], error) {
	if i >= a.nrows {
		return nil, fmt.Errorf("%w: row %d outside %d", ErrIndexOutOfBounds, i, a.nrows)
	}
	a.Wait()
	v, err := NewVector[T](a.ncols)
	if err != nil {
		return nil, err
	}
	k, ok := searchIndex(a.rows, i)
	if !ok {
		return v, nil
	}
	v.idx = append([]Index(nil), a.col[a.ptr[k]:a.ptr[k+1]]...)
	v.val = append([]T(nil), a.val[a.ptr[k]:a.ptr[k+1]]...)
	return v, nil
}

// ExtractCol returns column j of A as a vector over the row space.
func ExtractCol[T Number](a *Matrix[T], j Index) (*Vector[T], error) {
	if j >= a.ncols {
		return nil, fmt.Errorf("%w: col %d outside %d", ErrIndexOutOfBounds, j, a.ncols)
	}
	a.Wait()
	v, err := NewVector[T](a.nrows)
	if err != nil {
		return nil, err
	}
	for k, r := range a.rows {
		lo, hi := a.ptr[k], a.ptr[k+1]
		if p, ok := searchIndex(a.col[lo:hi], j); ok {
			v.idx = append(v.idx, r)
			v.val = append(v.val, a.val[lo+p])
		}
	}
	return v, nil
}

// AssignScalar stages A(i,j) = v for every (i,j) in the cross product of
// the index lists, accumulated with the matrix accumulator. Nil lists are
// rejected here (unlike Extract) because GrB_ALL over a 2^64 space is not
// materializable.
func AssignScalar[T Number](a *Matrix[T], rowIdx, colIdx []Index, v T) error {
	if rowIdx == nil || colIdx == nil {
		return fmt.Errorf("%w: AssignScalar requires explicit index lists", ErrInvalidValue)
	}
	for _, i := range rowIdx {
		for _, j := range colIdx {
			if err := a.SetElement(i, j, v); err != nil {
				return err
			}
		}
	}
	return nil
}
