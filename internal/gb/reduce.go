package gb

import "fmt"

// ReduceScalar folds all stored values of a with the monoid, returning the
// monoid identity for an empty matrix.
func ReduceScalar[T Number](a *Matrix[T], m Monoid[T]) (T, error) {
	if m.Op == nil {
		var zero T
		return zero, fmt.Errorf("%w: monoid with nil operator", ErrInvalidValue)
	}
	a.Wait()
	acc := m.Identity
	for _, v := range a.val {
		acc = m.Op(acc, v)
	}
	return acc, nil
}

// ReduceRows reduces each row of a to a single value with the monoid,
// producing a hypersparse vector with one entry per non-empty row.
// For the plus monoid on a traffic matrix this is the out-degree /
// out-traffic vector.
func ReduceRows[T Number](a *Matrix[T], m Monoid[T]) (*Vector[T], error) {
	if m.Op == nil {
		return nil, fmt.Errorf("%w: monoid with nil operator", ErrInvalidValue)
	}
	a.Wait()
	v, err := NewVector[T](a.nrows)
	if err != nil {
		return nil, err
	}
	v.idx = make([]Index, 0, len(a.rows))
	v.val = make([]T, 0, len(a.rows))
	for k, r := range a.rows {
		acc := m.Identity
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			acc = m.Op(acc, a.val[p])
		}
		v.idx = append(v.idx, r)
		v.val = append(v.val, acc)
	}
	return v, nil
}

// ReduceCols reduces each column of a with the monoid, producing a
// hypersparse vector with one entry per non-empty column (the in-degree /
// in-traffic vector for plus on a traffic matrix). The monoid must be
// commutative: entries are folded in row-major order.
func ReduceCols[T Number](a *Matrix[T], m Monoid[T]) (*Vector[T], error) {
	if m.Op == nil {
		return nil, fmt.Errorf("%w: monoid with nil operator", ErrInvalidValue)
	}
	a.Wait()
	v, err := NewVector[T](a.ncols)
	if err != nil {
		return nil, err
	}
	// Accumulate per distinct column via staged tuples; Wait sorts and
	// combines them with the monoid operator.
	if err := v.SetAccum(m.Op); err != nil {
		return nil, err
	}
	for k := range a.rows {
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			v.pending = append(v.pending, vecTuple[T]{idx: a.col[p], val: a.val[p]})
		}
	}
	v.Wait()
	return v, nil
}
