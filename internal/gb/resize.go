package gb

import "fmt"

// Resize changes the matrix's dimensions in place (GxB_Matrix_resize).
// Growing keeps all entries; shrinking drops entries outside the new
// bounds. Hypersparse storage makes growing free and shrinking O(nnz).
func (m *Matrix[T]) Resize(nrows, ncols Index) error {
	if nrows == 0 || ncols == 0 {
		return fmt.Errorf("%w: resize to %d x %d", ErrInvalidValue, nrows, ncols)
	}
	m.Wait()
	if nrows >= m.nrows && ncols >= m.ncols {
		m.nrows, m.ncols = nrows, ncols
		return nil
	}
	rows, cols, vals := m.ExtractTuples()
	kept := 0
	for k := range rows {
		if rows[k] < nrows && cols[k] < ncols {
			rows[kept], cols[kept], vals[kept] = rows[k], cols[k], vals[k]
			kept++
		}
	}
	m.nrows, m.ncols = nrows, ncols
	m.Clear()
	return m.Build(rows[:kept], cols[:kept], vals[:kept], Second[T])
}

// ConcatRows stacks the operands vertically: the result has the summed row
// count and each operand's entries offset by the rows above it
// (GxB_Matrix_concat for an Nx1 tiling). All operands must share ncols.
func ConcatRows[T Number](ms ...*Matrix[T]) (*Matrix[T], error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: concat of no matrices", ErrInvalidValue)
	}
	ncols := ms[0].ncols
	var totalRows Index
	for _, m := range ms {
		if m.ncols != ncols {
			return nil, fmt.Errorf("%w: concat column counts %d vs %d", ErrDimensionMismatch, m.ncols, ncols)
		}
		next := totalRows + m.nrows
		if next < totalRows {
			return nil, fmt.Errorf("%w: concat rows overflow", ErrInvalidValue)
		}
		totalRows = next
	}
	out, err := NewMatrix[T](totalRows, ncols)
	if err != nil {
		return nil, err
	}
	var offset Index
	var rr, cc []Index
	var vv []T
	for _, m := range ms {
		m.Wait()
		rows, cols, vals := m.ExtractTuples()
		for k := range rows {
			rr = append(rr, rows[k]+offset)
			cc = append(cc, cols[k])
			vv = append(vv, vals[k])
		}
		offset += m.nrows
	}
	if err := out.Build(rr, cc, vv, Second[T]); err != nil {
		return nil, err
	}
	return out, nil
}

// ConcatCols stacks the operands horizontally; all operands must share
// nrows.
func ConcatCols[T Number](ms ...*Matrix[T]) (*Matrix[T], error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: concat of no matrices", ErrInvalidValue)
	}
	nrows := ms[0].nrows
	var totalCols Index
	for _, m := range ms {
		if m.nrows != nrows {
			return nil, fmt.Errorf("%w: concat row counts %d vs %d", ErrDimensionMismatch, m.nrows, nrows)
		}
		next := totalCols + m.ncols
		if next < totalCols {
			return nil, fmt.Errorf("%w: concat cols overflow", ErrInvalidValue)
		}
		totalCols = next
	}
	out, err := NewMatrix[T](nrows, totalCols)
	if err != nil {
		return nil, err
	}
	var offset Index
	var rr, cc []Index
	var vv []T
	for _, m := range ms {
		m.Wait()
		rows, cols, vals := m.ExtractTuples()
		for k := range rows {
			rr = append(rr, rows[k])
			cc = append(cc, cols[k]+offset)
			vv = append(vv, vals[k])
		}
		offset += m.ncols
	}
	if err := out.Build(rr, cc, vv, Second[T]); err != nil {
		return nil, err
	}
	return out, nil
}

// ApplyIndexOp maps every stored entry through f(i, j, v), keeping the
// pattern — the GrB_apply / IndexUnaryOp form used for positional
// transforms (banding, reweighting by coordinates, ...).
func ApplyIndexOp[T Number](a *Matrix[T], f func(i, j Index, v T) T) (*Matrix[T], error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil index operator", ErrInvalidValue)
	}
	a.Wait()
	c := a.Dup()
	k := 0
	for r, row := range c.rows {
		for p := c.ptr[r]; p < c.ptr[r+1]; p++ {
			c.val[k] = f(row, c.col[p], c.val[p])
			k++
		}
	}
	return c, nil
}

// VecExtract returns the subvector v(idx[0]), v(idx[1]), … relabeled to
// positions 0…len(idx)-1; absent entries stay absent. A nil index list
// copies the vector (GrB_ALL).
func VecExtract[T Number](v *Vector[T], idx []Index) (*Vector[T], error) {
	v.Wait()
	if idx == nil {
		return v.Dup(), nil
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("%w: empty extract index list", ErrInvalidValue)
	}
	out, err := NewVector[T](Index(uint64(len(idx))))
	if err != nil {
		return nil, err
	}
	var oi []Index
	var ov []T
	for p, i := range idx {
		if i >= v.n {
			return nil, fmt.Errorf("%w: index %d outside vector of size %d", ErrIndexOutOfBounds, i, v.n)
		}
		if x, err := v.ExtractElement(i); err == nil {
			oi = append(oi, Index(uint64(p)))
			ov = append(ov, x)
		}
	}
	if len(oi) > 0 {
		if err := out.Build(oi, ov, Second[T]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// VecSelect returns the entries of v satisfying pred.
func VecSelect[T Number](v *Vector[T], pred func(i Index, x T) bool) (*Vector[T], error) {
	if pred == nil {
		return nil, fmt.Errorf("%w: nil predicate", ErrInvalidValue)
	}
	v.Wait()
	out, err := NewVector[T](v.n)
	if err != nil {
		return nil, err
	}
	var oi []Index
	var ov []T
	v.Iterate(func(i Index, x T) bool {
		if pred(i, x) {
			oi = append(oi, i)
			ov = append(ov, x)
		}
		return true
	})
	if len(oi) > 0 {
		if err := out.Build(oi, ov, Second[T]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
