package gb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate format
// (1-based indices), the interchange format of the sparse-matrix
// ecosystem (SuiteSparse collection, Graph Challenge data sets).
func WriteMatrixMarket[T Number](w io.Writer, m *Matrix[T]) error {
	m.Wait()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.nrows, m.ncols, len(m.col)); err != nil {
		return err
	}
	var outer error
	m.Iterate(func(i, j Index, v T) bool {
		if _, err := fmt.Fprintf(bw, "%d %d %v\n", i+1, j+1, v); err != nil {
			outer = err
			return false
		}
		return true
	})
	if outer != nil {
		return outer
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a MatrixMarket coordinate file into a float64
// matrix, summing duplicate coordinates. Pattern files get value 1 per
// entry; symmetric files are expanded to both triangles.
func ReadMatrixMarket(r io.Reader) (*Matrix[float64], error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("gb: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" || fields[2] != "coordinate" {
		return nil, fmt.Errorf("%w: unsupported MatrixMarket header %q", ErrInvalidValue, strings.TrimSpace(header))
	}
	pattern := fields[3] == "pattern"
	symmetric := len(fields) >= 5 && fields[4] == "symmetric"

	// Skip comments; read the size line.
	var sizeLine string
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("gb: reading MatrixMarket size line: %w", err)
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			continue
		}
		sizeLine = trimmed
		break
	}
	var nrows, ncols uint64
	var nnz int
	if _, err := fmt.Sscanf(sizeLine, "%d %d %d", &nrows, &ncols, &nnz); err != nil {
		return nil, fmt.Errorf("%w: malformed size line %q", ErrInvalidValue, sizeLine)
	}
	m, err := NewMatrix[float64](nrows, ncols)
	if err != nil {
		return nil, err
	}
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			parts := strings.Fields(trimmed)
			want := 3
			if pattern {
				want = 2
			}
			if len(parts) < want {
				return nil, fmt.Errorf("%w: malformed entry %q", ErrInvalidValue, trimmed)
			}
			i, err1 := strconv.ParseUint(parts[0], 10, 64)
			j, err2 := strconv.ParseUint(parts[1], 10, 64)
			if err1 != nil || err2 != nil || i == 0 || j == 0 {
				return nil, fmt.Errorf("%w: bad coordinates in %q", ErrInvalidValue, trimmed)
			}
			v := 1.0
			if !pattern {
				v, err = strconv.ParseFloat(parts[2], 64)
				if err != nil {
					return nil, fmt.Errorf("%w: bad value in %q", ErrInvalidValue, trimmed)
				}
			}
			if err := m.SetElement(Index(i-1), Index(j-1), v); err != nil {
				return nil, err
			}
			if symmetric && i != j {
				if err := m.SetElement(Index(j-1), Index(i-1), v); err != nil {
					return nil, err
				}
			}
			read++
		}
		if err != nil {
			if err == io.EOF && read == nnz {
				break
			}
			if err == io.EOF {
				return nil, fmt.Errorf("%w: expected %d entries, got %d", ErrInvalidValue, nnz, read)
			}
			return nil, err
		}
	}
	m.Wait()
	return m, nil
}
