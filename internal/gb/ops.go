package gb

// BinaryOp combines two values of the same type. GraphBLAS binary operators
// with uniform input/output types; sufficient for the streaming workload.
type BinaryOp[T Number] func(x, y T) T

// UnaryOp maps one value to another of the same type.
type UnaryOp[T Number] func(x T) T

// IndexPredicate decides whether entry (i, j, v) is kept by Select.
type IndexPredicate[T Number] func(i, j Index, v T) bool

// Monoid is a binary operator together with its identity element. The
// operator is assumed associative; commutativity is required only where
// documented (eWiseAdd-based cascades rely on it).
type Monoid[T Number] struct {
	Op       BinaryOp[T]
	Identity T
	Name     string
}

// Semiring pairs an additive monoid with a multiplicative binary operator,
// as used by MxM, MxV and VxM.
type Semiring[T Number] struct {
	Add  Monoid[T]
	Mul  BinaryOp[T]
	Name string
}

// Plus returns the conventional (+, 0) monoid. It is the monoid the
// hierarchical cascade is built on.
func Plus[T Number]() Monoid[T] {
	return Monoid[T]{Op: func(x, y T) T { return x + y }, Identity: 0, Name: "plus"}
}

// Times returns the (*, 1) monoid.
func Times[T Number]() Monoid[T] {
	return Monoid[T]{Op: func(x, y T) T { return x * y }, Identity: 1, Name: "times"}
}

// MinWith returns the (min, identity) monoid. The identity must be the
// largest representable value of T for the monoid laws to hold; it is taken
// as an argument because Go generics cannot derive it for ~-constrained
// types. See MinInt64, MinFloat64 for ready-made instances.
func MinWith[T Number](identity T) Monoid[T] {
	return Monoid[T]{
		Op: func(x, y T) T {
			if x < y {
				return x
			}
			return y
		},
		Identity: identity,
		Name:     "min",
	}
}

// MaxWith returns the (max, identity) monoid; identity must be the smallest
// representable value of T.
func MaxWith[T Number](identity T) Monoid[T] {
	return Monoid[T]{
		Op: func(x, y T) T {
			if x > y {
				return x
			}
			return y
		},
		Identity: identity,
		Name:     "max",
	}
}

// Any returns the GraphBLAS ANY monoid: the result is one of the inputs,
// unspecified which. Useful for structural (pattern-only) computations.
func Any[T Number]() Monoid[T] {
	return Monoid[T]{Op: func(x, _ T) T { return x }, Identity: 0, Name: "any"}
}

// First returns x; Second returns y. The standard positional operators.
func First[T Number](x, _ T) T  { return x }
func Second[T Number](_, y T) T { return y }

// PlusTimes returns the conventional arithmetic (+, *) semiring.
func PlusTimes[T Number]() Semiring[T] {
	return Semiring[T]{Add: Plus[T](), Mul: func(x, y T) T { return x * y }, Name: "plus.times"}
}

// MinPlus returns the tropical (min, +) semiring; minIdentity must be the
// largest representable value of T (acts as "infinity").
func MinPlus[T Number](minIdentity T) Semiring[T] {
	return Semiring[T]{Add: MinWith(minIdentity), Mul: func(x, y T) T { return x + y }, Name: "min.plus"}
}

// MaxPlus returns the (max, +) semiring; maxIdentity must be the smallest
// representable value of T.
func MaxPlus[T Number](maxIdentity T) Semiring[T] {
	return Semiring[T]{Add: MaxWith(maxIdentity), Mul: func(x, y T) T { return x + y }, Name: "max.plus"}
}

// PlusFirst returns the (+, first) semiring, counting/propagating left
// operands; widely used for degree-style computations.
func PlusFirst[T Number]() Semiring[T] {
	return Semiring[T]{Add: Plus[T](), Mul: First[T], Name: "plus.first"}
}

// PlusSecond returns the (+, second) semiring.
func PlusSecond[T Number]() Semiring[T] {
	return Semiring[T]{Add: Plus[T](), Mul: Second[T], Name: "plus.second"}
}

// PlusPair returns the (+, pair) semiring, where pair(x,y) == 1. MxM over
// plus.pair counts structural overlaps (e.g. triangle counting).
func PlusPair[T Number]() Semiring[T] {
	return Semiring[T]{Add: Plus[T](), Mul: func(_, _ T) T { return 1 }, Name: "plus.pair"}
}
