package gb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixRejectsZeroDims(t *testing.T) {
	if _, err := NewMatrix[int64](0, 5); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("want ErrInvalidValue, got %v", err)
	}
	if _, err := NewMatrix[int64](5, 0); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("want ErrInvalidValue, got %v", err)
	}
}

func TestNewMatrixHugeDims(t *testing.T) {
	// IPv6-scale index space must construct without allocating dimension-
	// proportional storage: that is the whole point of hypersparse.
	m, err := NewMatrix[uint64](1<<63, 1<<63)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetElement(1<<62, 1<<61, 7); err != nil {
		t.Fatal(err)
	}
	if got := m.NVals(); got != 1 {
		t.Fatalf("NVals = %d, want 1", got)
	}
	v, err := m.ExtractElement(1<<62, 1<<61)
	if err != nil || v != 7 {
		t.Fatalf("ExtractElement = %d, %v", v, err)
	}
}

func TestSetElementAccumulates(t *testing.T) {
	m := MustNewMatrix[int64](10, 10)
	for k := 0; k < 5; k++ {
		if err := m.SetElement(3, 4, 2); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.ExtractElement(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("accumulated value = %d, want 10", v)
	}
	if m.NVals() != 1 {
		t.Fatalf("NVals = %d, want 1", m.NVals())
	}
}

func TestSetElementOutOfBounds(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	if err := m.SetElement(4, 0, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("row oob: got %v", err)
	}
	if err := m.SetElement(0, 4, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("col oob: got %v", err)
	}
}

func TestAppendTuplesLengthMismatch(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	err := m.AppendTuples([]Index{1}, []Index{1, 2}, []int64{1})
	if !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestAppendTuplesRejectsOOBAtomically(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	err := m.AppendTuples([]Index{0, 9}, []Index{0, 0}, []int64{1, 1})
	if !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
	if m.NVals() != 0 {
		t.Fatalf("partial batch applied: NVals = %d", m.NVals())
	}
}

func TestWaitIdempotent(t *testing.T) {
	m := MustNewMatrix[int64](8, 8)
	_ = m.SetElement(1, 1, 1)
	m.Wait()
	before := m.String()
	m.Wait()
	m.Wait()
	if m.String() != before {
		t.Fatalf("Wait not idempotent: %s -> %s", before, m)
	}
	mustInvariants(t, m)
}

func TestPendingThenMergeWithStored(t *testing.T) {
	m := MustNewMatrix[int64](16, 16)
	_ = m.SetElement(2, 2, 1)
	_ = m.SetElement(5, 5, 2)
	m.Wait()
	_ = m.SetElement(2, 2, 10) // collides with stored
	_ = m.SetElement(1, 7, 3)  // new row before existing
	_ = m.SetElement(9, 0, 4)  // new row after existing
	m.Wait()
	mustInvariants(t, m)
	want := map[[2]Index]int64{
		{2, 2}: 11, {5, 5}: 2, {1, 7}: 3, {9, 0}: 4,
	}
	got := denseOf(m)
	if len(got) != len(want) {
		t.Fatalf("entries = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %v = %d, want %d", k, got[k], v)
		}
	}
}

func TestExplicitZeroIsStored(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	_ = m.SetElement(1, 1, 0)
	if m.NVals() != 1 {
		t.Fatalf("explicit zero dropped: NVals = %d", m.NVals())
	}
	v, err := m.ExtractElement(1, 1)
	if err != nil || v != 0 {
		t.Fatalf("ExtractElement = %d, %v; want 0, nil", v, err)
	}
	// Values that cancel to zero stay stored, preserving linearity.
	_ = m.SetElement(2, 2, 5)
	_ = m.SetElement(2, 2, -5)
	if m.NVals() != 2 {
		t.Fatalf("cancelled entry dropped: NVals = %d", m.NVals())
	}
}

func TestExtractElementNoValue(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	_ = m.SetElement(1, 1, 3)
	if _, err := m.ExtractElement(0, 0); !errors.Is(err, ErrNoValue) {
		t.Fatalf("got %v, want ErrNoValue", err)
	}
	if _, err := m.ExtractElement(1, 2); !errors.Is(err, ErrNoValue) {
		t.Fatalf("same-row absent col: got %v", err)
	}
	if _, err := m.ExtractElement(9, 0); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("oob: got %v", err)
	}
}

func TestRemoveElement(t *testing.T) {
	m := MustNewMatrix[int64](8, 8)
	_ = m.SetElement(1, 1, 1)
	_ = m.SetElement(1, 3, 2)
	_ = m.SetElement(4, 4, 3)
	if err := m.RemoveElement(1, 3); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	if m.NVals() != 2 {
		t.Fatalf("NVals = %d, want 2", m.NVals())
	}
	// Removing the last entry of a row removes the row itself.
	if err := m.RemoveElement(4, 4); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	if m.NNZRows() != 1 {
		t.Fatalf("NNZRows = %d, want 1", m.NNZRows())
	}
	// Removing an absent entry is a no-op.
	if err := m.RemoveElement(7, 7); err != nil {
		t.Fatal(err)
	}
	if m.NVals() != 1 {
		t.Fatalf("NVals = %d, want 1", m.NVals())
	}
}

func TestClearReleasesEverything(t *testing.T) {
	m := MustNewMatrix[int64](8, 8)
	_ = m.SetElement(1, 1, 1)
	m.Wait()
	_ = m.SetElement(2, 2, 2) // pending at clear time
	m.Clear()
	if m.NVals() != 0 || m.PendingLen() != 0 {
		t.Fatalf("Clear left state: %s", m)
	}
	if m.NRows() != 8 || m.NCols() != 8 {
		t.Fatalf("Clear changed dims: %s", m)
	}
	// Matrix is reusable after Clear.
	_ = m.SetElement(3, 3, 3)
	if m.NVals() != 1 {
		t.Fatalf("NVals after reuse = %d", m.NVals())
	}
}

func TestDupIsDeep(t *testing.T) {
	m := MustNewMatrix[int64](8, 8)
	_ = m.SetElement(1, 1, 1)
	d := m.Dup()
	_ = m.SetElement(1, 1, 100)
	m.Wait()
	v, err := d.ExtractElement(1, 1)
	if err != nil || v != 1 {
		t.Fatalf("dup mutated: %d, %v", v, err)
	}
	_ = d.SetElement(2, 2, 5)
	d.Wait()
	if _, err := m.ExtractElement(2, 2); !errors.Is(err, ErrNoValue) {
		t.Fatalf("original mutated through dup: %v", err)
	}
}

func TestSetAccumRequiresNoPending(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	_ = m.SetElement(0, 0, 1)
	if err := m.SetAccum(First[int64]); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
	m.Wait()
	if err := m.SetAccum(First[int64]); err != nil {
		t.Fatal(err)
	}
	_ = m.SetElement(0, 0, 42)
	m.Wait()
	// first(stored, pending): existing value wins.
	v, _ := m.ExtractElement(0, 0)
	if v != 1 {
		t.Fatalf("first accum gave %d, want 1", v)
	}
}

func TestSecondAccumOverwrites(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	if err := m.SetAccum(Second[int64]); err != nil {
		t.Fatal(err)
	}
	_ = m.SetElement(0, 0, 1)
	_ = m.SetElement(0, 0, 2)
	_ = m.SetElement(0, 0, 3)
	v, _ := m.ExtractElement(0, 0)
	if v != 3 {
		t.Fatalf("second accum gave %d, want 3 (last write wins)", v)
	}
}

func TestExtractTuplesRowMajorSorted(t *testing.T) {
	m := MustNewMatrix[int64](100, 100)
	// Insert in scrambled order.
	_ = m.SetElement(50, 2, 1)
	_ = m.SetElement(3, 99, 2)
	_ = m.SetElement(3, 7, 3)
	_ = m.SetElement(50, 1, 4)
	rows, cols, vals := m.ExtractTuples()
	if len(rows) != 4 || len(cols) != 4 || len(vals) != 4 {
		t.Fatalf("lengths %d/%d/%d", len(rows), len(cols), len(vals))
	}
	for k := 1; k < len(rows); k++ {
		if rows[k-1] > rows[k] || (rows[k-1] == rows[k] && cols[k-1] >= cols[k]) {
			t.Fatalf("tuples not row-major sorted: %v %v", rows, cols)
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	m := MustNewMatrix[int64](10, 10)
	for k := 0; k < 6; k++ {
		_ = m.SetElement(Index(uint64(k)), 0, 1)
	}
	seen := 0
	m.Iterate(func(_, _ Index, _ int64) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop visited %d, want 3", seen)
	}
}

func TestBuildRequiresEmpty(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	_ = m.SetElement(0, 0, 1)
	err := m.Build([]Index{1}, []Index{1}, []int64{1}, Plus[int64]().Op)
	if !errors.Is(err, ErrOutputNotEmpty) {
		t.Fatalf("got %v", err)
	}
}

func TestBuildCombinesDuplicates(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	err := m.Build(
		[]Index{2, 2, 1, 2}, []Index{3, 3, 0, 3},
		[]int64{1, 10, 5, 100}, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, m)
	v, _ := m.ExtractElement(2, 3)
	if v != 111 {
		t.Fatalf("dup combine = %d, want 111", v)
	}
	if m.NVals() != 2 {
		t.Fatalf("NVals = %d, want 2", m.NVals())
	}
}

func TestBuildExtractRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		m := randMatrix(r, 64, 64, 200)
		rows, cols, vals := m.ExtractTuples()
		m2 := MustNewMatrix[int64](64, 64)
		if err := m2.Build(rows, cols, vals, Plus[int64]().Op); err != nil {
			return false
		}
		return Equal(m, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitInvariantsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		m := randMatrix(r, 32, 32, 300)
		m.Wait()
		return m.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedWaitsEqualSingleWait(t *testing.T) {
	// Splitting a stream across many Waits must produce the same matrix as
	// one big Wait (order-independence of the plus accumulator).
	r := rand.New(rand.NewSource(3))
	type upd struct {
		i, j Index
		v    int64
	}
	var updates []upd
	for k := 0; k < 500; k++ {
		updates = append(updates, upd{Index(r.Uint64() % 40), Index(r.Uint64() % 40), int64(r.Intn(5))})
	}
	a := MustNewMatrix[int64](40, 40)
	b := MustNewMatrix[int64](40, 40)
	for k, u := range updates {
		_ = a.SetElement(u.i, u.j, u.v)
		_ = b.SetElement(u.i, u.j, u.v)
		if k%7 == 0 {
			a.Wait()
		}
	}
	if !Equal(a, b) {
		t.Fatal("interleaved waits diverged from single wait")
	}
}

func TestMatrixFromTuples(t *testing.T) {
	m, err := MatrixFromTuples(8, 8,
		[]Index{1, 2}, []Index{3, 4}, []int64{5, 6}, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if m.NVals() != 2 {
		t.Fatalf("NVals = %d", m.NVals())
	}
}

func TestNNZRowsHypersparse(t *testing.T) {
	m := MustNewMatrix[int64](1<<40, 1<<40)
	for k := 0; k < 100; k++ {
		_ = m.SetElement(Index(uint64(k)*(1<<30)), 5, 1)
	}
	if m.NNZRows() != 100 {
		t.Fatalf("NNZRows = %d, want 100", m.NNZRows())
	}
}

func TestStringSummary(t *testing.T) {
	m := MustNewMatrix[int64](4, 4)
	_ = m.SetElement(0, 0, 1)
	s := m.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
