// Package gb implements the GraphBLAS-style hypersparse matrix substrate used
// by the hierarchical streaming-insert library.
//
// The package provides a deliberately small but mathematically complete subset
// of the GraphBLAS standard in pure Go:
//
//   - Matrix[T] and Vector[T]: hypersparse containers with 64-bit indices,
//     valid for dimensions up to 2^64 (IPv6-scale traffic matrices).
//   - Non-blocking updates: SetElement and AppendTuples buffer "pending
//     tuples" (as SuiteSparse:GraphBLAS does); Wait materializes them.
//   - Element-wise algebra (EWiseAdd, EWiseMult), Apply, Select, Reduce,
//     Transpose, MxM/MxV/VxM over semirings, Kron, and Extract.
//
// Storage is always DCSR ("doubly compressed sparse row"): a sorted list of
// non-empty row ids plus per-row sorted column/value runs. This is the
// hypersparse regime SuiteSparse switches into when #entries << #rows, which
// is the only regime the streaming traffic-matrix workload ever occupies.
//
// All operations preserve explicit zeros, matching GraphBLAS semantics: an
// entry with value 0 is still an entry. This is what makes the hierarchical
// cascade (internal/hier) exactly linear.
package gb

import "errors"

// Index addresses rows and columns. It is 64-bit so a single matrix can span
// the full IPv6 address space (2^64 x 2^64).
type Index = uint64

// Number constrains the value types a Matrix or Vector may hold.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Tuple is a single stored entry (row, column, value).
type Tuple[T Number] struct {
	Row Index
	Col Index
	Val T
}

// Errors returned by operations in this package. They mirror the GraphBLAS
// error codes that matter for a pure in-memory implementation.
var (
	// ErrDimensionMismatch is returned when operand shapes are incompatible.
	ErrDimensionMismatch = errors.New("gb: dimension mismatch")
	// ErrIndexOutOfBounds is returned when an index is >= the matrix dimension.
	ErrIndexOutOfBounds = errors.New("gb: index out of bounds")
	// ErrOutputNotEmpty is returned by Build when the target already has entries.
	ErrOutputNotEmpty = errors.New("gb: output matrix must be empty")
	// ErrInvalidValue is returned for malformed arguments (mismatched slice
	// lengths, zero dimensions, overflowing Kronecker shapes, ...).
	ErrInvalidValue = errors.New("gb: invalid value")
	// ErrNoValue is returned by ExtractElement when no entry is present.
	ErrNoValue = errors.New("gb: no entry at index")
)
