package gb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResizeGrowKeepsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	a := randMatrix(r, 32, 32, 100)
	before := a.Dup()
	if err := a.Resize(1<<40, 1<<40); err != nil {
		t.Fatal(err)
	}
	if a.NRows() != 1<<40 || a.NCols() != 1<<40 {
		t.Fatalf("dims = %dx%d", a.NRows(), a.NCols())
	}
	if a.NVals() != before.NVals() {
		t.Fatalf("grow lost entries: %d vs %d", a.NVals(), before.NVals())
	}
	// Entries beyond the old bounds are now legal.
	if err := a.SetElement(1<<39, 1<<39, 1); err != nil {
		t.Fatal(err)
	}
}

func TestResizeShrinkDropsOutside(t *testing.T) {
	a := MustNewMatrix[int64](100, 100)
	_ = a.SetElement(5, 5, 1)
	_ = a.SetElement(50, 5, 2)
	_ = a.SetElement(5, 50, 3)
	_ = a.SetElement(99, 99, 4)
	if err := a.Resize(10, 10); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, a)
	if a.NVals() != 1 {
		t.Fatalf("NVals = %d, want 1", a.NVals())
	}
	v, err := a.ExtractElement(5, 5)
	if err != nil || v != 1 {
		t.Fatalf("survivor = %d, %v", v, err)
	}
	if err := a.SetElement(50, 5, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("old bounds still accepted: %v", err)
	}
}

func TestResizeRejectsZero(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	if err := a.Resize(0, 4); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestConcatRows(t *testing.T) {
	a := MustNewMatrix[int64](2, 4)
	_ = a.SetElement(1, 3, 10)
	b := MustNewMatrix[int64](3, 4)
	_ = b.SetElement(0, 0, 20)
	c, err := ConcatRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NRows() != 5 || c.NCols() != 4 {
		t.Fatalf("dims = %dx%d", c.NRows(), c.NCols())
	}
	v, _ := c.ExtractElement(1, 3)
	if v != 10 {
		t.Fatalf("a entry = %d", v)
	}
	v, _ = c.ExtractElement(2, 0) // b's row 0 offset by a's 2 rows
	if v != 20 {
		t.Fatalf("b entry = %d", v)
	}
	if _, err := ConcatRows[int64](); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("empty concat: %v", err)
	}
	bad := MustNewMatrix[int64](2, 5)
	if _, err := ConcatRows(a, bad); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mismatched cols: %v", err)
	}
}

func TestConcatColsMatchesTransposedConcatRows(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	f := func() bool {
		a := randMatrix(r, 16, 12, 40)
		b := randMatrix(r, 16, 20, 40)
		cc, err := ConcatCols(a, b)
		if err != nil {
			return false
		}
		at, _ := Transpose(a)
		bt, _ := Transpose(b)
		cr, err := ConcatRows(at, bt)
		if err != nil {
			return false
		}
		cct, _ := Transpose(cc)
		return Equal(cct, cr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatRowsNVals(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	a := randMatrix(r, 8, 8, 30)
	b := randMatrix(r, 8, 8, 30)
	c, err := ConcatRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != a.NVals()+b.NVals() {
		t.Fatalf("concat nnz %d != %d + %d", c.NVals(), a.NVals(), b.NVals())
	}
}

func TestApplyIndexOp(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(2, 3, 10)
	_ = a.SetElement(5, 1, 20)
	c, err := ApplyIndexOp(a, func(i, j Index, v int64) int64 {
		return v + int64(i)*100 + int64(j)
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c.ExtractElement(2, 3)
	if v != 10+200+3 {
		t.Fatalf("indexed apply = %d", v)
	}
	v, _ = c.ExtractElement(5, 1)
	if v != 20+500+1 {
		t.Fatalf("indexed apply = %d", v)
	}
	if _, err := ApplyIndexOp[int64](a, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil op: %v", err)
	}
	// Original untouched.
	v, _ = a.ExtractElement(2, 3)
	if v != 10 {
		t.Fatalf("original mutated: %d", v)
	}
}

func TestVecExtract(t *testing.T) {
	v := MustNewVector[int64](100)
	_ = v.SetElement(10, 1)
	_ = v.SetElement(20, 2)
	_ = v.SetElement(30, 3)
	sub, err := VecExtract(v, []Index{20, 99, 10})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 3 || sub.NVals() != 2 {
		t.Fatalf("sub = size %d nvals %d", sub.Size(), sub.NVals())
	}
	x, _ := sub.ExtractElement(0) // position of index 20
	if x != 2 {
		t.Fatalf("sub(0) = %d", x)
	}
	x, _ = sub.ExtractElement(2) // position of index 10
	if x != 1 {
		t.Fatalf("sub(2) = %d", x)
	}
	all, err := VecExtract(v, nil)
	if err != nil || !VecEqual(all, v) {
		t.Fatalf("GrB_ALL extract: %v", err)
	}
	if _, err := VecExtract(v, []Index{}); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("empty list: %v", err)
	}
	if _, err := VecExtract(v, []Index{200}); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("oob: %v", err)
	}
}

func TestVecSelect(t *testing.T) {
	v := MustNewVector[int64](100)
	for k := Index(0); k < 10; k++ {
		_ = v.SetElement(k, int64(k))
	}
	odd, err := VecSelect(v, func(_ Index, x int64) bool { return x%2 == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if odd.NVals() != 5 {
		t.Fatalf("NVals = %d", odd.NVals())
	}
	none, err := VecSelect(v, func(Index, int64) bool { return false })
	if err != nil || none.NVals() != 0 {
		t.Fatalf("empty select: %d, %v", none.NVals(), err)
	}
	if _, err := VecSelect[int64](v, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("nil pred: %v", err)
	}
}
