package gb

// Transpose returns A with rows and columns exchanged. The kernel is a
// bucket transpose over the distinct column ids: O(nnz log nnzcols) to
// discover and index the columns, then a single scatter pass.
func Transpose[T Number](a *Matrix[T]) (*Matrix[T], error) {
	a.Wait()
	c := &Matrix[T]{nrows: a.ncols, ncols: a.nrows, accum: a.accum, ptr: []int{0}}
	nnz := len(a.col)
	if nnz == 0 {
		return c, nil
	}

	// Distinct, sorted column ids become the output's non-empty rows.
	outRows := append([]Index(nil), a.col...)
	sortIndices(outRows)
	outRows = dedupeSorted(outRows)

	counts := make([]int, len(outRows)+1)
	for _, j := range a.col {
		k, _ := searchIndex(outRows, j)
		counts[k+1]++
	}
	for k := 1; k < len(counts); k++ {
		counts[k] += counts[k-1]
	}
	ptr := append([]int(nil), counts...)

	col := make([]Index, nnz)
	val := make([]T, nnz)
	cursor := append([]int(nil), counts[:len(counts)-1]...)
	// Row-major input order means each output row receives its (new)
	// column ids in increasing order, so no per-row sort is needed.
	for k, r := range a.rows {
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			o, _ := searchIndex(outRows, a.col[p])
			col[cursor[o]] = r
			val[cursor[o]] = a.val[p]
			cursor[o]++
		}
	}
	c.rows = outRows
	c.ptr = ptr
	c.col = col
	c.val = val
	return c, nil
}

// sortIndices sorts an Index slice ascending (radix-free, stdlib sort).
func sortIndices(s []Index) {
	// Simple pdq via sort.Slice; hot paths pre-sort larger structures.
	if len(s) < 2 {
		return
	}
	quickSortIndices(s)
}

func quickSortIndices(s []Index) {
	for len(s) > 12 {
		p := medianOfThree(s)
		lo, hi := 0, len(s)-1
		for lo <= hi {
			for s[lo] < p {
				lo++
			}
			for s[hi] > p {
				hi--
			}
			if lo <= hi {
				s[lo], s[hi] = s[hi], s[lo]
				lo++
				hi--
			}
		}
		if hi+1 < len(s)-lo { // recurse on smaller side first
			quickSortIndices(s[:hi+1])
			s = s[lo:]
		} else {
			quickSortIndices(s[lo:])
			s = s[:hi+1]
		}
	}
	for i := 1; i < len(s); i++ { // insertion sort tail
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func medianOfThree(s []Index) Index {
	a, b, c := s[0], s[len(s)/2], s[len(s)-1]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
		if a > b {
			b = a
		}
	}
	return b
}

// dedupeSorted removes adjacent duplicates from a sorted slice in place.
func dedupeSorted(s []Index) []Index {
	if len(s) == 0 {
		return s
	}
	w := 0
	for r := 1; r < len(s); r++ {
		if s[r] != s[w] {
			w++
			s[w] = s[r]
		}
	}
	return s[:w+1]
}
