package gb

import (
	"fmt"
	"slices"
)

// MxM returns C = A ⊕.⊗ B over the semiring s, using a hypersparse
// Gustavson sweep: for each non-empty row i of A, the partial products
// A(i,k) ⊗ B(k,:) are accumulated into a hash workspace keyed by output
// column, then emitted in sorted order.
func MxM[T Number](a, b *Matrix[T], s Semiring[T]) (*Matrix[T], error) {
	if a.ncols != b.nrows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrDimensionMismatch, a.nrows, a.ncols, b.nrows, b.ncols)
	}
	if s.Add.Op == nil || s.Mul == nil {
		return nil, fmt.Errorf("%w: incomplete semiring", ErrInvalidValue)
	}
	a.Wait()
	b.Wait()
	c := &Matrix[T]{nrows: a.nrows, ncols: b.ncols, accum: a.accum, ptr: []int{0}}
	if len(a.col) == 0 || len(b.col) == 0 {
		return c, nil
	}

	acc := make(map[Index]T)
	var keys []Index
	for k, i := range a.rows {
		clear(acc)
		keys = keys[:0]
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			kk := a.col[p]
			bi, ok := searchIndex(b.rows, kk)
			if !ok {
				continue
			}
			av := a.val[p]
			for q := b.ptr[bi]; q < b.ptr[bi+1]; q++ {
				j := b.col[q]
				prod := s.Mul(av, b.val[q])
				if cur, seen := acc[j]; seen {
					acc[j] = s.Add.Op(cur, prod)
				} else {
					acc[j] = prod
					keys = append(keys, j)
				}
			}
		}
		if len(keys) == 0 {
			continue
		}
		slices.Sort(keys)
		c.rows = append(c.rows, i)
		for _, j := range keys {
			c.col = append(c.col, j)
			c.val = append(c.val, acc[j])
		}
		c.ptr = append(c.ptr, len(c.col))
	}
	return c, nil
}

// MxV returns y = A ⊕.⊗ x: y(i) = ⊕_k A(i,k) ⊗ x(k).
func MxV[T Number](a *Matrix[T], x *Vector[T], s Semiring[T]) (*Vector[T], error) {
	if a.ncols != x.n {
		return nil, fmt.Errorf("%w: %dx%d * vector(%d)", ErrDimensionMismatch, a.nrows, a.ncols, x.n)
	}
	if s.Add.Op == nil || s.Mul == nil {
		return nil, fmt.Errorf("%w: incomplete semiring", ErrInvalidValue)
	}
	a.Wait()
	x.Wait()
	y := &Vector[T]{n: a.nrows, accum: Plus[T]().Op}
	for k, i := range a.rows {
		acc := s.Add.Identity
		hit := false
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			q, ok := searchIndex(x.idx, a.col[p])
			if !ok {
				continue
			}
			prod := s.Mul(a.val[p], x.val[q])
			if hit {
				acc = s.Add.Op(acc, prod)
			} else {
				acc = prod
				hit = true
			}
		}
		if hit {
			y.idx = append(y.idx, i)
			y.val = append(y.val, acc)
		}
	}
	return y, nil
}

// VxM returns y = x ⊕.⊗ A: y(j) = ⊕_i x(i) ⊗ A(i,j).
func VxM[T Number](x *Vector[T], a *Matrix[T], s Semiring[T]) (*Vector[T], error) {
	if x.n != a.nrows {
		return nil, fmt.Errorf("%w: vector(%d) * %dx%d", ErrDimensionMismatch, x.n, a.nrows, a.ncols)
	}
	if s.Add.Op == nil || s.Mul == nil {
		return nil, fmt.Errorf("%w: incomplete semiring", ErrInvalidValue)
	}
	a.Wait()
	x.Wait()
	acc := make(map[Index]T)
	var keys []Index
	for q := range x.idx {
		k, ok := searchIndex(a.rows, x.idx[q])
		if !ok {
			continue
		}
		xv := x.val[q]
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			j := a.col[p]
			prod := s.Mul(xv, a.val[p])
			if cur, seen := acc[j]; seen {
				acc[j] = s.Add.Op(cur, prod)
			} else {
				acc[j] = prod
				keys = append(keys, j)
			}
		}
	}
	slices.Sort(keys)
	y := &Vector[T]{n: a.ncols, accum: Plus[T]().Op}
	for _, j := range keys {
		y.idx = append(y.idx, j)
		y.val = append(y.val, acc[j])
	}
	return y, nil
}
