package gb

import "fmt"

// Apply returns a new matrix with f applied to every stored value. The
// sparsity pattern is unchanged (explicit zeros produced by f are kept,
// per GraphBLAS semantics).
func Apply[T Number](a *Matrix[T], f UnaryOp[T]) (*Matrix[T], error) {
	if f == nil {
		return nil, fmt.Errorf("%w: nil unary operator", ErrInvalidValue)
	}
	c := a.Dup()
	for k := range c.val {
		c.val[k] = f(c.val[k])
	}
	return c, nil
}

// Scale returns s .* A (every stored value multiplied by s); a common
// special case of Apply used by decaying background models.
func Scale[T Number](a *Matrix[T], s T) (*Matrix[T], error) {
	return Apply(a, func(v T) T { return s * v })
}

// Select returns the entries of a for which pred(i, j, v) is true; the
// GraphBLAS GrB_select analogue with a Go predicate.
func Select[T Number](a *Matrix[T], pred IndexPredicate[T]) (*Matrix[T], error) {
	if pred == nil {
		return nil, fmt.Errorf("%w: nil predicate", ErrInvalidValue)
	}
	a.Wait()
	c := &Matrix[T]{nrows: a.nrows, ncols: a.ncols, accum: a.accum, ptr: []int{0}}
	for k, r := range a.rows {
		before := len(c.col)
		for p := a.ptr[k]; p < a.ptr[k+1]; p++ {
			if pred(r, a.col[p], a.val[p]) {
				c.col = append(c.col, a.col[p])
				c.val = append(c.val, a.val[p])
			}
		}
		if len(c.col) > before {
			c.rows = append(c.rows, r)
			c.ptr = append(c.ptr, len(c.col))
		}
	}
	return c, nil
}

// Tril returns the entries on or below the diagonal shifted by k
// (j <= i + k), matching GxB_TRIL.
func Tril[T Number](a *Matrix[T], k int64) (*Matrix[T], error) {
	return Select(a, func(i, j Index, _ T) bool {
		return int64(j)-int64(i) <= k
	})
}

// Triu returns the entries on or above the diagonal shifted by k
// (j >= i + k), matching GxB_TRIU.
func Triu[T Number](a *Matrix[T], k int64) (*Matrix[T], error) {
	return Select(a, func(i, j Index, _ T) bool {
		return int64(j)-int64(i) >= k
	})
}

// Prune returns a copy of a without entries equal to v (commonly 0),
// shrinking the stored pattern. GraphBLAS keeps explicit zeros; Prune is the
// explicit way to drop them when an application wants to.
func Prune[T Number](a *Matrix[T], v T) (*Matrix[T], error) {
	return Select(a, func(_, _ Index, x T) bool { return x != v })
}
