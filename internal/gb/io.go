package gb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Codec converts matrix values to and from a fixed 8-byte wire word.
// Encoding is generic-value-type agnostic: the caller picks the codec that
// matches T's semantics (bit-exact for float64, lossless for integers that
// fit uint64/int64).
type Codec[T Number] struct {
	Put func(v T) uint64
	Get func(w uint64) T
}

// Float64Codec round-trips float-typed values bit-exactly through Float64bits.
func Float64Codec[T Number]() Codec[T] {
	return Codec[T]{
		Put: func(v T) uint64 { return math.Float64bits(float64(v)) },
		Get: func(w uint64) T { return T(math.Float64frombits(w)) },
	}
}

// Uint64Codec round-trips unsigned-integer-typed values losslessly.
func Uint64Codec[T Number]() Codec[T] {
	return Codec[T]{
		Put: func(v T) uint64 { return uint64(v) },
		Get: func(w uint64) T { return T(w) },
	}
}

// Int64Codec round-trips signed-integer-typed values losslessly.
func Int64Codec[T Number]() Codec[T] {
	return Codec[T]{
		Put: func(v T) uint64 { return uint64(int64(v)) },
		Get: func(w uint64) T { return T(int64(w)) },
	}
}

const matrixMagic = "HHGBmat1"

// Encode writes the matrix in a compact binary form: magic, dimensions,
// entry count, then delta-varint row ids with per-row lengths, delta-varint
// columns, and codec-encoded values. Pending updates are materialized first.
func Encode[T Number](w io.Writer, m *Matrix[T], c Codec[T]) error {
	m.Wait()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(matrixMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(m.nrows); err != nil {
		return err
	}
	if err := putUvarint(m.ncols); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(m.rows))); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(m.col))); err != nil {
		return err
	}
	prevRow := uint64(0)
	for k, r := range m.rows {
		if err := putUvarint(r - prevRow); err != nil {
			return err
		}
		prevRow = r
		if err := putUvarint(uint64(m.ptr[k+1] - m.ptr[k])); err != nil {
			return err
		}
		prevCol := uint64(0)
		for p := m.ptr[k]; p < m.ptr[k+1]; p++ {
			delta := m.col[p]
			if p > m.ptr[k] {
				delta = m.col[p] - prevCol
			}
			prevCol = m.col[p]
			if err := putUvarint(delta); err != nil {
				return err
			}
		}
	}
	for _, v := range m.val {
		binary.LittleEndian.PutUint64(buf[:8], c.Put(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a matrix written by Encode.
func Decode[T Number](r io.Reader, c Codec[T]) (*Matrix[T], error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(matrixMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gb: reading magic: %w", err)
	}
	if string(magic) != matrixMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalidValue, magic)
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nnzRows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nnz, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m, err := NewMatrix[T](nrows, ncols)
	if err != nil {
		return nil, err
	}
	m.rows = make([]Index, 0, nnzRows)
	m.ptr = make([]int, 1, nnzRows+1)
	m.col = make([]Index, 0, nnz)
	m.val = make([]T, nnz)
	prevRow := uint64(0)
	for k := uint64(0); k < nnzRows; k++ {
		dr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prevRow += dr
		m.rows = append(m.rows, prevRow)
		rl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prevCol := uint64(0)
		for p := uint64(0); p < rl; p++ {
			dc, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if p == 0 {
				prevCol = dc
			} else {
				prevCol += dc
			}
			m.col = append(m.col, prevCol)
		}
		m.ptr = append(m.ptr, len(m.col))
	}
	if uint64(len(m.col)) != nnz {
		return nil, fmt.Errorf("%w: entry count mismatch (%d != %d)", ErrInvalidValue, len(m.col), nnz)
	}
	var word [8]byte
	for k := range m.val {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			return nil, err
		}
		m.val[k] = c.Get(binary.LittleEndian.Uint64(word[:]))
	}
	if err := m.checkInvariants(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteTSV writes the matrix as "row<TAB>col<TAB>value" lines in row-major
// order — the interchange format consumed by the D4M tooling and by
// cmd/trafficgen. Values are printed with %v.
func WriteTSV[T Number](w io.Writer, m *Matrix[T]) error {
	m.Wait()
	bw := bufio.NewWriter(w)
	var outer error
	m.Iterate(func(i, j Index, v T) bool {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%v\n", i, j, v); err != nil {
			outer = err
			return false
		}
		return true
	})
	if outer != nil {
		return outer
	}
	return bw.Flush()
}
