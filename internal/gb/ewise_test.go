package gb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWiseAddBasic(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	b := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(1, 1, 1)
	_ = a.SetElement(2, 2, 2)
	_ = b.SetElement(2, 2, 10)
	_ = b.SetElement(3, 3, 3)
	c, err := EWiseAdd(a, b, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, c)
	want := map[[2]Index]int64{{1, 1}: 1, {2, 2}: 12, {3, 3}: 3}
	got := denseOf(c)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %v = %d, want %d", k, got[k], v)
		}
	}
}

func TestEWiseAddDimensionMismatch(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	b := MustNewMatrix[int64](8, 9)
	if _, err := EWiseAdd(a, b, Plus[int64]().Op); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("got %v", err)
	}
}

func TestEWiseAddEmptyOperands(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	b := MustNewMatrix[int64](8, 8)
	c, err := EWiseAdd(a, b, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 0 {
		t.Fatalf("NVals = %d", c.NVals())
	}
	_ = b.SetElement(1, 1, 5)
	c, err = EWiseAdd(a, b, Plus[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c, b) {
		t.Fatal("empty + b != b")
	}
}

func TestEWiseAddCommutativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := func() bool {
		a := randMatrix(r, 48, 48, 150)
		b := randMatrix(r, 48, 48, 150)
		ab, err1 := EWiseAdd(a, b, Plus[int64]().Op)
		ba, err2 := EWiseAdd(b, a, Plus[int64]().Op)
		return err1 == nil && err2 == nil && Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEWiseAddAssociativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		a := randMatrix(r, 32, 32, 100)
		b := randMatrix(r, 32, 32, 100)
		c := randMatrix(r, 32, 32, 100)
		plus := Plus[int64]().Op
		ab, _ := EWiseAdd(a, b, plus)
		abc1, _ := EWiseAdd(ab, c, plus)
		bc, _ := EWiseAdd(b, c, plus)
		abc2, _ := EWiseAdd(a, bc, plus)
		return Equal(abc1, abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEWiseAddIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		a := randMatrix(r, 32, 32, 100)
		empty := MustNewMatrix[int64](32, 32)
		c, err := EWiseAdd(a, empty, Plus[int64]().Op)
		return err == nil && Equal(c, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEWiseAddAgainstDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		a := randMatrix(r, 24, 24, 120)
		b := randMatrix(r, 24, 24, 120)
		c, err := EWiseAdd(a, b, Plus[int64]().Op)
		if err != nil {
			t.Fatal(err)
		}
		ref := denseOf(a)
		for k, v := range denseOf(b) {
			if cur, ok := ref[k]; ok {
				ref[k] = cur + v
			} else {
				ref[k] = v
			}
		}
		got := denseOf(c)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: nnz %d vs ref %d", trial, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("trial %d: entry %v = %d, want %d", trial, k, got[k], v)
			}
		}
	}
}

func TestAddAssignMatchesEWiseAdd(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	f := func() bool {
		a := randMatrix(r, 32, 32, 100)
		b := randMatrix(r, 32, 32, 100)
		want, _ := EWiseAdd(a, b, Plus[int64]().Op)
		if err := AddAssign(a, b, Plus[int64]().Op); err != nil {
			return false
		}
		return Equal(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAssignIntoEmptyCopies(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	b := MustNewMatrix[int64](8, 8)
	_ = b.SetElement(2, 2, 9)
	if err := AddAssign(a, b, Plus[int64]().Op); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("AddAssign into empty did not copy")
	}
	// Must be a copy, not an alias of b's storage.
	_ = a.SetElement(2, 2, 1)
	a.Wait()
	v, _ := b.ExtractElement(2, 2)
	if v != 9 {
		t.Fatalf("b mutated through a: %d", v)
	}
}

func TestAddAssignEmptySrcNoop(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(1, 1, 5)
	before := a.Dup()
	empty := MustNewMatrix[int64](8, 8)
	if err := AddAssign(a, empty, Plus[int64]().Op); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, before) {
		t.Fatal("AddAssign with empty src changed dst")
	}
}

func TestEWiseMultIntersection(t *testing.T) {
	a := MustNewMatrix[int64](8, 8)
	b := MustNewMatrix[int64](8, 8)
	_ = a.SetElement(1, 1, 3)
	_ = a.SetElement(2, 2, 4)
	_ = b.SetElement(2, 2, 5)
	_ = b.SetElement(3, 3, 6)
	c, err := EWiseMult(a, b, Times[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, c)
	if c.NVals() != 1 {
		t.Fatalf("NVals = %d, want 1", c.NVals())
	}
	v, _ := c.ExtractElement(2, 2)
	if v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
}

func TestEWiseMultAgainstDenseReference(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		a := randMatrix(r, 24, 24, 120)
		b := randMatrix(r, 24, 24, 120)
		c, err := EWiseMult(a, b, Times[int64]().Op)
		if err != nil {
			t.Fatal(err)
		}
		da, db := denseOf(a), denseOf(b)
		ref := make(map[[2]Index]int64)
		for k, v := range da {
			if w, ok := db[k]; ok {
				ref[k] = v * w
			}
		}
		got := denseOf(c)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: nnz %d vs ref %d", trial, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("trial %d: entry %v = %d, want %d", trial, k, got[k], v)
			}
		}
	}
}

func TestEWiseMultWithEmptyIsEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	a := randMatrix(r, 16, 16, 50)
	empty := MustNewMatrix[int64](16, 16)
	c, err := EWiseMult(a, empty, Times[int64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	if c.NVals() != 0 {
		t.Fatalf("NVals = %d", c.NVals())
	}
}

func TestSumOfLevels(t *testing.T) {
	// Sum is the paper's query step: A = Σ Ai.
	var levels []*Matrix[int64]
	want := MustNewMatrix[int64](16, 16)
	r := rand.New(rand.NewSource(17))
	for l := 0; l < 4; l++ {
		m := randMatrix(r, 16, 16, 40)
		levels = append(levels, m)
		if err := AddAssign(want, m, Plus[int64]().Op); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Sum(levels...)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("Sum != fold of AddAssign")
	}
	// Sum must not mutate its operands.
	if err := levels[0].checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSumRejectsNoOperands(t *testing.T) {
	if _, err := Sum[int64](); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestSumSingleOperandIsCopy(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	_ = a.SetElement(0, 0, 1)
	s, err := Sum(a)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.SetElement(0, 0, 10)
	s.Wait()
	v, _ := a.ExtractElement(0, 0)
	if v != 1 {
		t.Fatalf("Sum aliased operand: %d", v)
	}
}

func TestNilOperatorRejected(t *testing.T) {
	a := MustNewMatrix[int64](4, 4)
	b := MustNewMatrix[int64](4, 4)
	if _, err := EWiseAdd(a, b, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("EWiseAdd nil op: %v", err)
	}
	if _, err := EWiseMult(a, b, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("EWiseMult nil op: %v", err)
	}
	if err := AddAssign(a, b, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("AddAssign nil op: %v", err)
	}
}
