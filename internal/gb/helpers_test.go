package gb

import (
	"math/rand"
	"testing"
)

// randMatrix builds a random nrows x ncols matrix with up to maxNNZ entries
// (duplicates combined by +), using the given source for determinism.
func randMatrix(r *rand.Rand, nrows, ncols Index, maxNNZ int) *Matrix[int64] {
	m := MustNewMatrix[int64](nrows, ncols)
	n := r.Intn(maxNNZ + 1)
	for k := 0; k < n; k++ {
		i := Index(r.Uint64() % nrows)
		j := Index(r.Uint64() % ncols)
		v := int64(r.Intn(21) - 10)
		if err := m.SetElement(i, j, v); err != nil {
			panic(err)
		}
	}
	return m
}

// randFloatMatrix is randMatrix for float64 values.
func randFloatMatrix(r *rand.Rand, nrows, ncols Index, maxNNZ int) *Matrix[float64] {
	m := MustNewMatrix[float64](nrows, ncols)
	n := r.Intn(maxNNZ + 1)
	for k := 0; k < n; k++ {
		i := Index(r.Uint64() % nrows)
		j := Index(r.Uint64() % ncols)
		if err := m.SetElement(i, j, float64(r.Intn(9)+1)); err != nil {
			panic(err)
		}
	}
	return m
}

// denseOf expands a small matrix to a dense map for reference computations.
func denseOf[T Number](m *Matrix[T]) map[[2]Index]T {
	d := make(map[[2]Index]T)
	m.Iterate(func(i, j Index, v T) bool {
		d[[2]Index{i, j}] = v
		return true
	})
	return d
}

// mustInvariants fails the test if the DCSR structure is inconsistent.
func mustInvariants[T Number](t *testing.T, m *Matrix[T]) {
	t.Helper()
	m.Wait()
	if err := m.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v (%s)", err, m)
	}
}

// tuplesOf collects all entries as a tuple slice.
func tuplesOf[T Number](m *Matrix[T]) []Tuple[T] {
	var out []Tuple[T]
	m.Iterate(func(i, j Index, v T) bool {
		out = append(out, Tuple[T]{Row: i, Col: j, Val: v})
		return true
	})
	return out
}
