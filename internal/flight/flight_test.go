package flight

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hhgb/internal/metrics"
)

func TestRecorderKeepsMostRecent(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Record(KindConnOpen, uint64(i), "s", 0, 0, 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot holds %d events, ring size 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(12 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest-first, most recent 8)", i, e.Seq, want)
		}
		if e.Conn != e.Seq {
			t.Fatalf("event %d conn = %d, want %d", i, e.Conn, e.Seq)
		}
		if e.Kind != "conn_open" || e.Session != "s" {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d, want 20", r.Len())
	}
}

func TestRecorderTimestampsMonotone(t *testing.T) {
	r := NewRecorder(16)
	r.Record(KindSeal, 0, "", 0, 1, 2, time.Millisecond)
	r.Record(KindRollup, 0, "", 0, 0, 0, 0)
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[1].TS < evs[0].TS {
		t.Fatalf("timestamps went backwards: %d then %d", evs[0].TS, evs[1].TS)
	}
	if evs[0].A != 1 || evs[0].B != 2 || evs[0].Dur != int64(time.Millisecond) {
		t.Fatalf("args not preserved: %+v", evs[0])
	}
	// Wall times must differ by exactly the monotonic distance.
	if got := evs[1].Wall.Sub(evs[0].Wall); got != time.Duration(evs[1].TS-evs[0].TS) {
		t.Fatalf("wall delta %v != monotonic delta %v", got, time.Duration(evs[1].TS-evs[0].TS))
	}
}

func TestNilRecorderAndSpanSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindAck, 1, "x", 2, 3, 4, 5)
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Fatal("nil recorder not empty")
	}
	var s *Span
	s.EndStage(StageDecode)
	s.MarkHandoff()
	s.ObserveMax(StageWAL, time.Second)
	s.ObserveShardWait()
	s.Hold()
	s.Done()
	s.Drop()
	var tr *Tracer
	if tr.Active() {
		t.Fatal("nil tracer active")
	}
	if sp := tr.Sample(1, "s", 2, Now()); sp != nil {
		t.Fatal("nil tracer sampled")
	}
}

func TestHandlerServesValidJSON(t *testing.T) {
	r := NewRecorder(16)
	r.Record(KindConnOpen, 7, "sess-1", 0, 0, 0, 0)
	r.Record(KindConnClose, 7, "sess-1", 0, 0, 0, 0)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var d struct {
		Recorded uint64  `json:"recorded_total"`
		Events   []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, rec.Body.String())
	}
	if d.Recorded != 2 || len(d.Events) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Events[0].Kind != "conn_open" || d.Events[1].Kind != "conn_close" {
		t.Fatalf("kinds = %s, %s", d.Events[0].Kind, d.Events[1].Kind)
	}
}

func TestTracerSamplesOneInN(t *testing.T) {
	tr := NewTracer(nil, nil, 4, -1)
	if !tr.Active() {
		t.Fatal("tracer with rate 4 not active")
	}
	sampled := 0
	for i := 0; i < 400; i++ {
		if sp := tr.Sample(1, "s", uint64(i), Now()); sp != nil {
			sampled++
			sp.Done()
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 400 at rate 4", sampled)
	}
	// Rate 0: enabled-but-disabled tracer never samples.
	off := NewTracer(nil, nil, 0, -1)
	if off.Active() {
		t.Fatal("rate-0 tracer active")
	}
	for i := 0; i < 100; i++ {
		if sp := off.Sample(1, "s", uint64(i), Now()); sp != nil {
			t.Fatal("rate-0 tracer sampled")
		}
	}
}

// TestSpanSyncStagesSumToTotal pins the reconciliation invariant: the
// four synchronous stages share boundary timestamps, so their sum equals
// total exactly — not approximately.
func TestSpanSyncStagesSumToTotal(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTracer(reg, nil, 1, -1)
	hist := RegisterStageHistograms(reg)

	sp := tr.Sample(3, "sess", 9, Now())
	if sp == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	sp.EndStage(StageDecode)
	time.Sleep(time.Millisecond)
	sp.EndStage(StageQueue)
	sp.MarkHandoff()
	sp.Hold() // one shard partition
	sp.EndStage(StagePartition)
	sp.EndStage(StageAck)

	// The "worker": async attribution arrives after the ack.
	sp.ObserveShardWait()
	sp.ObserveMax(StageWAL, 500*time.Microsecond)
	sp.ObserveMax(StageApply, 200*time.Microsecond)
	sum := sp.StageNanos(StageDecode) + sp.StageNanos(StageQueue) +
		sp.StageNanos(StagePartition) + sp.StageNanos(StageAck)
	sp.Done() // worker ref
	sp.Done() // owner ref — finalizes

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), StageHistogramName) {
		t.Fatalf("no %s family in exposition:\n%s", StageHistogramName, b.String())
	}
	for st := Stage(0); st < Stage(NumStages); st++ {
		if hist[st].Count() != 1 {
			t.Fatalf("stage %s observed %d times, want 1", st, hist[st].Count())
		}
	}
	_, _, _, totalSum := hist[StageTotal].Snapshot()
	_, _, _, syncSum := hist[StageDecode].Snapshot()
	for _, st := range []Stage{StageQueue, StagePartition, StageAck} {
		_, _, _, s := hist[st].Snapshot()
		syncSum += s
	}
	if diff := totalSum - syncSum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sync stage sum %.12f != total %.12f", syncSum, totalSum)
	}
	if float64(sum)/1e9 != totalSum {
		t.Fatalf("span nanos %.12f != observed total %.12f", float64(sum)/1e9, totalSum)
	}
}

// TestTracerRecordsPipelineToRing: a sampled span past the slow
// threshold lands in the ring as one causally ordered run.
func TestTracerRecordsPipelineToRing(t *testing.T) {
	rec := NewRecorder(64)
	tr := NewTracer(nil, rec, 1, 0) // slow=0: record every sampled span
	sp := tr.Sample(5, "sess", 42, Now())
	sp.EndStage(StageDecode)
	sp.EndStage(StageQueue)
	sp.MarkHandoff()
	sp.Hold()
	sp.EndStage(StagePartition)
	sp.EndStage(StageAck)
	sp.ObserveShardWait()
	sp.ObserveMax(StageWAL, time.Millisecond)
	sp.ObserveMax(StageApply, time.Millisecond)
	sp.Done()
	sp.Done()

	var kinds []string
	var lastSeq uint64
	for _, e := range rec.Snapshot() {
		if e.FrameSeq != 42 {
			continue
		}
		if len(kinds) > 0 && e.Seq != lastSeq+1 {
			t.Fatalf("pipeline events not consecutive: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		kinds = append(kinds, e.Kind)
	}
	want := []string{"frame_decode", "dequeue", "wal_append", "shard_apply", "ack"}
	if len(kinds) != len(want) {
		t.Fatalf("pipeline kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("pipeline kinds = %v, want %v", kinds, want)
		}
	}

	// A dropped span must leave no trace and no observations.
	before := rec.Len()
	dp := tr.Sample(5, "sess", 43, Now())
	dp.EndStage(StageDecode)
	dp.Drop()
	if rec.Len() != before {
		t.Fatal("dropped span recorded events")
	}
}

// TestSlowFrameMarker: with a positive threshold, only spans at or above
// it are ring-recorded, and they carry the slow_frame marker.
func TestSlowFrameMarker(t *testing.T) {
	rec := NewRecorder(64)
	tr := NewTracer(nil, rec, 1, 2*time.Millisecond)
	fast := tr.Sample(1, "s", 1, Now())
	fast.EndStage(StageDecode)
	fast.EndStage(StageQueue)
	fast.EndStage(StagePartition)
	fast.EndStage(StageAck)
	fast.Done()
	if rec.Len() != 0 {
		t.Fatalf("fast span recorded %d events", rec.Len())
	}
	slow := tr.Sample(1, "s", 2, Now())
	slow.EndStage(StageDecode)
	time.Sleep(3 * time.Millisecond)
	slow.EndStage(StageQueue)
	slow.EndStage(StagePartition)
	slow.EndStage(StageAck)
	slow.Done()
	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("slow span not recorded")
	}
	last := evs[len(evs)-1]
	if last.Kind != "slow_frame" || last.FrameSeq != 2 {
		t.Fatalf("last event = %+v, want slow_frame for frame 2", last)
	}
	if int64(last.A) != last.Dur || last.Dur < int64(2*time.Millisecond) {
		t.Fatalf("slow_frame total = a:%d dur:%d", last.A, last.Dur)
	}
}

// TestAllocBudgets pins the tracing plane's hot-path allocation costs:
// ring records and unsampled Sample calls are free; a warm sampled span's
// whole lifecycle allocates nothing (spans are pooled, not sync.Pooled).
func TestAllocBudgets(t *testing.T) {
	rec := NewRecorder(1024)
	if a := testing.AllocsPerRun(200, func() {
		rec.Record(KindAck, 1, "session", 2, 3, 4, 5)
	}); a != 0 {
		t.Fatalf("Record allocates %.1f/op, budget is 0", a)
	}

	off := NewTracer(nil, nil, 0, -1)
	if a := testing.AllocsPerRun(200, func() {
		if off.Sample(1, "s", 2, 0) != nil {
			t.Fatal("rate-0 sampled")
		}
	}); a != 0 {
		t.Fatalf("rate-0 Sample allocates %.1f/op, budget is 0", a)
	}

	miss := NewTracer(nil, nil, 1<<30, -1)
	if a := testing.AllocsPerRun(200, func() {
		if miss.Sample(1, "s", 2, Now()) != nil {
			t.Fatal("unexpected sample")
		}
	}); a != 0 {
		t.Fatalf("unsampled Sample allocates %.1f/op, budget is 0", a)
	}

	// Warm sampled lifecycle: Sample → stages → Done, span recycled each
	// run. slow=-1 keeps the ring out of it; a second run with ring
	// recording must also be free (RecordAt writes preallocated slots).
	for _, cfg := range []struct {
		name string
		slow time.Duration
	}{{"histograms-only", -1}, {"ring-recorded", 0}} {
		tr := NewTracer(nil, rec, 1, cfg.slow)
		warm := tr.Sample(9, "sess", 1, Now())
		warm.Done()
		if a := testing.AllocsPerRun(200, func() {
			sp := tr.Sample(9, "sess", 1, Now())
			if sp == nil {
				t.Fatal("rate-1 did not sample")
			}
			sp.EndStage(StageDecode)
			sp.EndStage(StageQueue)
			sp.MarkHandoff()
			sp.Hold()
			sp.EndStage(StagePartition)
			sp.EndStage(StageAck)
			sp.ObserveShardWait()
			sp.ObserveMax(StageWAL, time.Millisecond)
			sp.Done()
			sp.Done()
		}); a != 0 {
			t.Fatalf("%s: warm sampled span lifecycle allocates %.1f/op, budget is 0", cfg.name, a)
		}
	}
}

// TestRecorderConcurrent hammers the ring from many goroutines while
// snapshots run — the per-slot locking must keep every dumped event
// internally consistent (checked via the conn==fseq tie) under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				v := uint64(g)<<32 | uint64(i)
				r.Record(KindFrameDecode, v, "s", v, 0, 0, 0)
			}
		}(g)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Snapshot() {
				if e.Conn != e.FrameSeq {
					t.Errorf("torn event: conn %d fseq %d", e.Conn, e.FrameSeq)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
}

// TestHandlerFilters: ?kind narrows the dump to one event kind, ?limit
// keeps only the most recent N survivors, and a bad limit is a 400 —
// the knobs that pull one slow-query chain out of a full ring.
func TestHandlerFilters(t *testing.T) {
	r := NewRecorder(32)
	for i := uint64(1); i <= 4; i++ {
		r.Record(KindAck, 1, "s", i, 0, 0, 0)
	}
	r.Record(KindSlowQuery, 1, "s", 9, 0, 0, 0)
	h := r.Handler()

	get := func(target string) (int, dump) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		var d dump
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
				t.Fatalf("%s: dump does not parse: %v", target, err)
			}
		}
		return rec.Code, d
	}

	if code, d := get("/debug/events?kind=slow_query"); code != 200 || len(d.Events) != 1 || d.Events[0].Kind != "slow_query" {
		t.Fatalf("kind filter: code %d events %+v", code, d.Events)
	}
	if code, d := get("/debug/events?limit=2"); code != 200 || len(d.Events) != 2 {
		t.Fatalf("limit filter: code %d, %d events", code, len(d.Events))
	} else if d.Events[0].FrameSeq != 4 || d.Events[1].FrameSeq != 9 {
		t.Fatalf("limit did not keep the most recent events: %+v", d.Events)
	}
	if code, d := get("/debug/events?kind=ack&limit=1"); code != 200 || len(d.Events) != 1 || d.Events[0].FrameSeq != 4 {
		t.Fatalf("combined filter: code %d events %+v", code, d.Events)
	}
	// recorded_total stays the ring's true count, filtered or not.
	if _, d := get("/debug/events?kind=slow_query"); d.Recorded != 5 {
		t.Fatalf("recorded_total = %d under filter, want 5", d.Recorded)
	}
	if code, _ := get("/debug/events?limit=x"); code != 400 {
		t.Fatalf("bad limit: code %d, want 400", code)
	}
	if code, _ := get("/debug/events?limit=-1"); code != 400 {
		t.Fatalf("negative limit: code %d, want 400", code)
	}
}

// TestQueryTracerSlowPolicy pins the three ring-recording regimes:
// slow < 0 never records, slow == 0 records every sampled span without a
// marker, slow > 0 records only spans at or over the threshold and ends
// their chain with the slow_query marker carrying the total.
func TestQueryTracerSlowPolicy(t *testing.T) {
	drive := func(tr *QueryTracer, fseq uint64, sleep time.Duration) {
		sp := tr.Sample(1, "s", fseq, Now())
		if sp == nil {
			t.Fatal("rate-1 query tracer did not sample")
		}
		sp.EndStage(QStageDecode)
		sp.EndStage(QStageQueue)
		sp.EndStage(QStagePlan)
		if sleep > 0 {
			time.Sleep(sleep)
		}
		sp.Touch(0, 2)
		sp.ObserveLeg(time.Microsecond)
		sp.AdvanceStage(QStageFanout)
		sp.EndStage(QStageMerge)
		sp.EndStage(QStageEncode)
		sp.EndStage(QStageAck)
		sp.Done()
	}

	rec := NewRecorder(64)
	drive(NewQueryTracer(nil, rec, 1, -1), 1, 0)
	if rec.Len() != 0 {
		t.Fatalf("slow<0 recorded %d events", rec.Len())
	}

	drive(NewQueryTracer(nil, rec, 1, 0), 2, 0)
	evs := rec.Snapshot()
	want := []string{"query_decode", "query_plan", "query_fanout", "query_merge", "query_encode", "query_ack"}
	if len(evs) != len(want) {
		t.Fatalf("slow=0 recorded %d events, want %d", len(evs), len(want))
	}
	for i, e := range evs {
		if e.Kind != want[i] || e.FrameSeq != 2 {
			t.Fatalf("event %d = %+v, want kind %s for query 2", i, e, want[i])
		}
	}
	if evs[2].A != 2 || evs[2].B != 1 {
		t.Fatalf("fanout event shape a=%d b=%d, want 2 shard tasks over 1 window", evs[2].A, evs[2].B)
	}

	slow := NewQueryTracer(nil, rec, 1, 2*time.Millisecond)
	drive(slow, 3, 0) // fast: under threshold, not recorded
	if n := len(rec.Snapshot()); n != len(want) {
		t.Fatalf("fast query under slow>0 recorded: ring has %d events", n)
	}
	drive(slow, 4, 3*time.Millisecond)
	evs = rec.Snapshot()
	last := evs[len(evs)-1]
	if last.Kind != "slow_query" || last.FrameSeq != 4 {
		t.Fatalf("last event = %+v, want slow_query for query 4", last)
	}
	if int64(last.A) != last.Dur || last.Dur < int64(2*time.Millisecond) {
		t.Fatalf("slow_query total = a:%d dur:%d", last.A, last.Dur)
	}
	var chain []string
	for _, e := range evs {
		if e.FrameSeq == 4 && e.Kind != "slow_query" {
			chain = append(chain, e.Kind)
		}
	}
	if len(chain) != len(want) {
		t.Fatalf("slow query chain = %v, want %v", chain, want)
	}

	// A dropped span leaves no trace.
	before := rec.Len()
	dp := NewQueryTracer(nil, rec, 1, 0).Sample(1, "s", 5, Now())
	dp.EndStage(QStageDecode)
	dp.Drop()
	if rec.Len() != before {
		t.Fatal("dropped query span recorded events")
	}
}

// TestQuerySpanAllocBudgets pins the read path's tracing costs: inactive
// and unsampled tracers are free, and a warm sampled span's whole
// lifecycle — stages, fan-out shape, finalize, ring record — allocates
// nothing (spans are pooled).
func TestQuerySpanAllocBudgets(t *testing.T) {
	var off *QueryTracer
	if off.Active() {
		t.Fatal("nil query tracer active")
	}
	if a := testing.AllocsPerRun(200, func() {
		if off.Sample(1, "s", 2, 0) != nil {
			t.Fatal("nil tracer sampled")
		}
	}); a != 0 {
		t.Fatalf("nil-tracer Sample allocates %.1f/op, budget is 0", a)
	}

	zero := NewQueryTracer(nil, nil, 0, -1)
	if zero.Active() {
		t.Fatal("rate-0 query tracer active")
	}
	if a := testing.AllocsPerRun(200, func() {
		if zero.Sample(1, "s", 2, 0) != nil {
			t.Fatal("rate-0 sampled")
		}
	}); a != 0 {
		t.Fatalf("rate-0 Sample allocates %.1f/op, budget is 0", a)
	}

	// Nil-span methods (the unsampled query's per-stage cost) are free.
	var nilSpan *QuerySpan
	if a := testing.AllocsPerRun(200, func() {
		nilSpan.EndStage(QStageDecode)
		nilSpan.AdvanceStage(QStageFanout)
		nilSpan.ObserveLeg(time.Microsecond)
		nilSpan.Touch(0, 1)
		nilSpan.TouchShards(1)
		nilSpan.Done()
	}); a != 0 {
		t.Fatalf("nil-span methods allocate %.1f/op, budget is 0", a)
	}

	rec := NewRecorder(1024)
	for _, cfg := range []struct {
		name string
		slow time.Duration
	}{{"histograms-only", -1}, {"ring-recorded", 0}} {
		tr := NewQueryTracer(nil, rec, 1, cfg.slow)
		warm := tr.Sample(9, "sess", 1, Now())
		warm.Done()
		if a := testing.AllocsPerRun(200, func() {
			sp := tr.Sample(9, "sess", 1, Now())
			if sp == nil {
				t.Fatal("rate-1 did not sample")
			}
			sp.EndStage(QStageDecode)
			sp.EndStage(QStageQueue)
			sp.EndStage(QStagePlan)
			sp.Touch(0, 2)
			sp.ObserveLeg(time.Microsecond)
			sp.AdvanceStage(QStageFanout)
			sp.EndStage(QStageMerge)
			sp.EndStage(QStageEncode)
			sp.EndStage(QStageAck)
			sp.Done()
		}); a != 0 {
			t.Fatalf("%s query span lifecycle allocates %.1f/op, budget is 0", cfg.name, a)
		}
	}
}
