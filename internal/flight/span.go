package flight

import (
	"sync/atomic"
	"time"

	"hhgb/internal/metrics"
	"hhgb/internal/pool"
)

// Stage is one leg of a sampled frame's journey through the ingest
// pipeline. The first four are the synchronous chain the applier walks —
// their durations share boundary timestamps, so
// decode + queue + partition + ack == total exactly (the reconciliation
// tests depend on it). The async stages are recorded by shard workers
// after the ack may already be on the wire (the server acks on
// queue-accept, not apply); each keeps the max across the frame's shard
// partitions, approximating the critical path.
type Stage uint8

const (
	// StageDecode: frame body parse into a pooled batch (reader goroutine).
	StageDecode Stage = iota
	// StageQueue: wait in the connection's bounded apply queue.
	StageQueue
	// StagePartition: the applier's matrix call — validate, dedup-check,
	// partition, and hand off to the shard queues.
	StagePartition
	// StageAck: response written back to the client.
	StageAck
	// StageShardWait: shard-queue wait, handoff to worker dequeue (async).
	StageShardWait
	// StageWAL: per-shard WAL append + group-commit share (async).
	StageWAL
	// StageApply: per-shard matrix apply (async).
	StageApply
	// StageTotal: decode start to ack written — what the client observes.
	StageTotal

	numStages
)

// NumStages is the number of span stages (len of RegisterStageHistograms'
// result).
const NumStages = int(numStages)

// String returns the stage's metric label.
func (st Stage) String() string {
	switch st {
	case StageDecode:
		return "decode"
	case StageQueue:
		return "queue"
	case StagePartition:
		return "partition"
	case StageAck:
		return "ack"
	case StageShardWait:
		return "shard_wait"
	case StageWAL:
		return "wal"
	case StageApply:
		return "apply"
	case StageTotal:
		return "total"
	}
	return "unknown"
}

// StageHistogramName is the per-stage ingest latency family every
// sampled span observes into; one series per Stage label.
const StageHistogramName = "hhgb_server_ingest_stage_seconds"

// RegisterStageHistograms registers (or fetches, the registry dedups)
// the stage-latency histogram family and returns the series indexed by
// Stage. A nil registry wires them to the discard registry.
func RegisterStageHistograms(reg *metrics.Registry) []*metrics.Histogram {
	r := metrics.OrDiscard(reg)
	h := make([]*metrics.Histogram, NumStages)
	for st := Stage(0); st < numStages; st++ {
		h[st] = r.Histogram(StageHistogramName,
			"Sampled ingest frame latency decomposed by pipeline stage; decode+queue+partition+ack sum to total, shard_wait/wal/apply are async worker attribution.",
			nil, metrics.L("stage", st.String()))
	}
	return h
}

// Span tracks one sampled frame through the pipeline. Spans are pooled:
// the tracer owns their lifecycle via a refcount — the applier holds one
// reference, each shard partition carrying the frame holds one more, and
// the last release finalizes (observes histograms, records the ring,
// recycles). All methods are nil-receiver safe, so unsampled frames cost
// one branch per call site.
type Span struct {
	t       *Tracer
	conn    uint64
	sess    string
	fseq    uint64
	start   int64 // Now() when decode began
	last    int64 // end of the previous sync stage
	handoff int64 // Now() when the frame entered the shard queues
	dropped bool  // refused/duplicate frame: recycle without observing
	refs    atomic.Int32
	stages  [numStages]atomic.Int64 // ns per stage
}

// EndStage closes the current synchronous stage at the current clock:
// the stage's duration is the time since the previous EndStage (or the
// span's start). Sync stages are single-threaded along the request's
// path (reader → channel → applier), which is what lets them share
// boundaries and sum exactly to total.
//
//hhgb:noalloc
func (s *Span) EndStage(st Stage) {
	if s == nil {
		return
	}
	now := Now()
	s.stages[st].Store(now - s.last)
	s.last = now
}

// MarkHandoff stamps the instant the frame entered the shard queues;
// workers measure StageShardWait against it.
//
//hhgb:noalloc
func (s *Span) MarkHandoff() {
	if s == nil {
		return
	}
	s.handoff = Now()
}

// ObserveMax folds one shard's duration into an async stage, keeping the
// maximum across the frame's partitions — the critical-path share.
//
//hhgb:noalloc
func (s *Span) ObserveMax(st Stage, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	ns := int64(d)
	for {
		cur := s.stages[st].Load()
		if ns <= cur || s.stages[st].CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveShardWait records the shard-queue wait: handoff mark to now,
// max across partitions.
//
//hhgb:noalloc
func (s *Span) ObserveShardWait() {
	if s == nil || s.handoff == 0 {
		return
	}
	s.ObserveMax(StageShardWait, time.Duration(Now()-s.handoff))
}

// Hold adds one reference — taken once per shard partition the frame
// fans out to, before the partition is enqueued.
//
//hhgb:noalloc
func (s *Span) Hold() {
	if s != nil {
		s.refs.Add(1)
	}
}

// Done releases one reference; the last release finalizes the span
// (histograms observed, ring recorded, span recycled). After calling
// Done the caller must not touch the span again.
//
//hhgb:noalloc
func (s *Span) Done() {
	if s == nil {
		return
	}
	if s.refs.Add(-1) == 0 {
		s.t.finalize(s)
	}
}

// Drop abandons the span without observing it — for frames that were
// refused or deduplicated, whose timings would pollute the stage
// histograms. Only valid while the owner holds the sole reference.
//
//hhgb:noalloc
func (s *Span) Drop() {
	if s == nil {
		return
	}
	s.dropped = true
	s.Done()
}

// StageNanos returns a stage's recorded duration (test hook).
func (s *Span) StageNanos(st Stage) int64 { return s.stages[st].Load() }

// Tracer samples 1-in-N ingest frames into pooled spans and owns their
// finalization. A nil *Tracer, or one with sample rate 0, never samples
// and adds zero allocations to the hot path (Sample is one atomic add).
type Tracer struct {
	rec   *Recorder
	every uint64 // sample 1 in every; 0 = never
	slow  int64  // ring-record threshold in ns; see NewTracer
	n     atomic.Uint64
	spans *pool.FreeList[*Span]
	hist  []*metrics.Histogram
}

// spanPoolSize bounds idle pooled spans; sampled frames in flight beyond
// it fall back to fresh allocations (recycled by the GC).
const spanPoolSize = 64

// NewTracer returns a tracer sampling one in every `every` frames
// (every < 1 disables sampling entirely — the tracer stays usable and
// free). Stage histograms register on reg (nil = discard). Sampled spans
// whose total latency reaches `slow` are recorded stage-by-stage into
// rec; slow == 0 records every sampled span, slow < 0 records none.
// KindSlowFrame marker events are only emitted when slow > 0.
func NewTracer(reg *metrics.Registry, rec *Recorder, every int, slow time.Duration) *Tracer {
	t := &Tracer{rec: rec, slow: int64(slow), hist: RegisterStageHistograms(reg)}
	if every > 0 {
		t.every = uint64(every)
	}
	t.spans = pool.New(spanPoolSize, func() *Span { return &Span{t: t} })
	return t
}

// Active reports whether Sample can ever return a span — the hot path
// uses it to skip even the clock read when tracing is off.
//
//hhgb:noalloc
func (t *Tracer) Active() bool { return t != nil && t.every != 0 }

// Sample returns a reset span for this frame if it is the 1-in-N pick,
// nil otherwise. start is the frame's decode-begin instant (from Now).
// The caller owns the returned span's initial reference.
//
//hhgb:noalloc
func (t *Tracer) Sample(conn uint64, sess string, fseq uint64, start int64) *Span {
	if t == nil || t.every == 0 {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	s := t.spans.Get()
	s.conn, s.sess, s.fseq = conn, sess, fseq
	s.start, s.last, s.handoff = start, start, 0
	s.dropped = false
	for i := range s.stages {
		s.stages[i].Store(0)
	}
	s.refs.Store(1)
	return s
}

// finalize runs on the goroutine releasing the span's last reference:
// observe the stage histograms, record the pipeline into the ring when
// the span clears the slow threshold, and recycle.
func (t *Tracer) finalize(s *Span) {
	if !s.dropped {
		total := s.last - s.start
		s.stages[StageTotal].Store(total)
		for st := Stage(0); st < numStages; st++ {
			d := s.stages[st].Load()
			if d < 0 {
				d = 0
			}
			// Async stages are absent (not zero) on frames that never
			// reached a shard worker — skip them so their histograms
			// only describe frames they actually measured. Sync stages
			// observe unconditionally to keep counts reconcilable.
			switch st {
			case StageShardWait, StageWAL, StageApply:
				if d == 0 {
					continue
				}
			}
			t.hist[st].Observe(float64(d) / 1e9)
		}
		if t.rec != nil && t.slow >= 0 && total >= t.slow {
			t.recordPipeline(s, total)
		}
	}
	s.sess = "" // drop the session string reference before pooling
	t.spans.Put(s)
}

// recordPipeline writes the span's stages to the ring as one causally
// ordered run of events (consecutive claim numbers, pipeline order):
// decode → queue → wal → apply → ack, with reconstructed end timestamps
// for the sync stages and the finalize instant for the async ones.
func (t *Tracer) recordPipeline(s *Span, total int64) {
	r := t.rec
	now := Now()
	end := s.start + s.stages[StageDecode].Load()
	r.RecordAt(end, KindFrameDecode, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[StageDecode].Load()))
	end += s.stages[StageQueue].Load()
	r.RecordAt(end, KindDequeue, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[StageQueue].Load()))
	if d := s.stages[StageWAL].Load(); d > 0 {
		r.RecordAt(now, KindWALAppend, s.conn, s.sess, s.fseq, 0, 0, time.Duration(d))
	}
	if d := s.stages[StageApply].Load(); d > 0 {
		r.RecordAt(now, KindShardApply, s.conn, s.sess, s.fseq, 0, 0, time.Duration(d))
	}
	end += s.stages[StagePartition].Load() + s.stages[StageAck].Load()
	r.RecordAt(end, KindAck, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[StageAck].Load()))
	if t.slow > 0 {
		r.RecordAt(end, KindSlowFrame, s.conn, s.sess, s.fseq, uint64(total), 0, time.Duration(total))
	}
}
