package flight

import "time"

// clock.go is the ONLY file in internal/flight allowed to call time.Now
// or time.Since — the hhgbinvariants `timenow` rule enforces it, exactly
// as it pins internal/window to wallclock.go. Everything the flight
// recorder stamps — ring events, span stage boundaries — goes through
// Now below, so the whole latency-attribution plane runs on one
// monotonic timeline that wall-clock steps cannot tear, and tests can
// reason about a single clock source.

// base anchors the package's monotonic timeline, captured once at
// process start. time.Time carries a monotonic reading, so differences
// against it are immune to wall-clock adjustment.
var base = time.Now()

// Now returns the current instant as monotonic nanoseconds since the
// package base. It is the one clock every flight event and span stage
// mark uses; keep arithmetic in these raw nanoseconds and convert to
// wall time only at dump boundaries (wallAt).
func Now() int64 { return int64(time.Since(base)) }

// wallAt converts a monotonic timestamp from Now back to wall time for
// human-facing dumps. The conversion shares the recorder's base, so two
// events' wall times differ by exactly their monotonic distance.
func wallAt(ns int64) time.Time { return base.Add(time.Duration(ns)) }
