package flight

import (
	"sync/atomic"
	"time"

	"hhgb/internal/metrics"
	"hhgb/internal/pool"
)

// QStage is one leg of a sampled query's journey through the read path.
// The first seven are the synchronous chain the request walks — decode on
// the reader goroutine, queue wait, then plan/fanout/merge/encode/ack on
// the applier — and their durations share boundary timestamps, so they
// sum exactly to total (the reconciliation tests depend on it, as they do
// for ingest spans). QStageFanoutMax is the async-style attribution: the
// slowest single fan-out leg (one cover window's barrier on a windowed
// store, the whole pushdown call on a flat one), folded by max exactly as
// the ingest span folds its per-shard stages.
type QStage uint8

const (
	// QStageDecode: query frame body parse (reader goroutine).
	QStageDecode QStage = iota
	// QStageQueue: wait in the connection's bounded apply queue.
	QStageQueue
	// QStagePlan: cover/route selection — QueryRange's greedy cover walk
	// on a windowed store, the trivial shard route on a flat one.
	QStagePlan
	// QStageFanout: the per-shard (and per-window) fan-out: every cover
	// window's pushdown barrier, including the interleaved per-window
	// monoid merges a range query does between legs.
	QStageFanout
	// QStageMerge: the read-time merge tail after the last leg returns —
	// top-k selection, summary reduction, cross-window accumulation.
	QStageMerge
	// QStageEncode: response body build.
	QStageEncode
	// QStageAck: response handed to the connection writer.
	QStageAck
	// QStageFanoutMax: the slowest single fan-out leg (max across legs).
	QStageFanoutMax
	// QStageTotal: decode start to response written.
	QStageTotal

	numQStages
)

// NumQueryStages is the number of query span stages (len of
// RegisterQueryStageHistograms' result).
const NumQueryStages = int(numQStages)

// String returns the stage's metric label.
func (st QStage) String() string {
	switch st {
	case QStageDecode:
		return "decode"
	case QStageQueue:
		return "queue"
	case QStagePlan:
		return "plan"
	case QStageFanout:
		return "fanout"
	case QStageMerge:
		return "merge"
	case QStageEncode:
		return "encode"
	case QStageAck:
		return "ack"
	case QStageFanoutMax:
		return "fanout_max"
	case QStageTotal:
		return "total"
	}
	return "unknown"
}

// QueryStageHistogramName is the per-stage query latency family every
// sampled query span observes into; one series per QStage label.
const QueryStageHistogramName = "hhgb_query_stage_seconds"

// QueryShardsHistogramName is the fan-out-shape histogram counting the
// per-shard tasks one query fanned out to (summed across cover windows).
const QueryShardsHistogramName = "hhgb_query_shards_touched"

// QueryWindowsHistogramName is the fan-out-shape histogram family counting
// cover windows touched per query, one series per hierarchy level.
const QueryWindowsHistogramName = "hhgb_query_windows_touched"

// countBuckets is the bucket layout for fan-out-shape histograms: counts,
// not seconds. Powers of two up to 256 place both a single-shard lookup
// and a cover that touched hundreds of fine windows.
var countBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// windowLevelLabels is the fixed label set for the windows-touched family:
// levels beyond the deepest practical roll-up hierarchy share "4+", so the
// metric schema stays pinned regardless of store configuration.
var windowLevelLabels = [...]string{"0", "1", "2", "3", "4+"}

// RegisterQueryStageHistograms registers (or fetches) the query
// stage-latency histogram family and returns the series indexed by
// QStage. A nil registry wires them to the discard registry.
func RegisterQueryStageHistograms(reg *metrics.Registry) []*metrics.Histogram {
	r := metrics.OrDiscard(reg)
	h := make([]*metrics.Histogram, NumQueryStages)
	for st := QStage(0); st < numQStages; st++ {
		h[st] = r.Histogram(QueryStageHistogramName,
			"Sampled query latency decomposed by read-path stage; decode+queue+plan+fanout+merge+encode+ack sum to total, fanout_max is the slowest single fan-out leg.",
			nil, metrics.L("stage", st.String()))
	}
	return h
}

// registerQueryShapeHistograms registers the fan-out-shape families.
func registerQueryShapeHistograms(reg *metrics.Registry) (shards *metrics.Histogram, windows []*metrics.Histogram) {
	r := metrics.OrDiscard(reg)
	shards = r.Histogram(QueryShardsHistogramName,
		"Per-shard fan-out tasks one sampled query issued, summed across its cover windows.",
		countBuckets)
	windows = make([]*metrics.Histogram, len(windowLevelLabels))
	for i, lv := range windowLevelLabels {
		windows[i] = r.Histogram(QueryWindowsHistogramName,
			"Cover windows one sampled query touched, per hierarchy level.",
			countBuckets, metrics.L("level", lv))
	}
	return shards, windows
}

// QuerySpan tracks one sampled query through the read path. Unlike ingest
// spans, a query span has a single owner at every instant — the reader
// hands it to the applier through the request queue, and every fan-out leg
// is timed on the applier goroutine — so its fields need no atomics. All
// methods are nil-receiver safe, so unsampled queries cost one branch per
// call site.
type QuerySpan struct {
	t       *QueryTracer
	conn    uint64
	sess    string
	fseq    uint64
	start   int64 // Now() when decode began
	last    int64 // end of the previous sync stage
	dropped bool  // refused query: recycle without observing
	stages  [numQStages]int64
	shards  int64    // per-shard tasks fanned out to, summed across legs
	windows [5]int64 // cover windows touched, by level (index 4 = "4+")
}

// EndStage closes the current synchronous stage at the current clock:
// the stage's duration is the time since the previous EndStage (or the
// span's start).
//
//hhgb:noalloc
func (s *QuerySpan) EndStage(st QStage) {
	if s == nil {
		return
	}
	now := Now()
	s.stages[st] = now - s.last
	s.last = now
}

// AdvanceStage extends a stage to the current clock, accumulating: each
// call adds the time since the previous stage boundary. Fan-out uses it —
// a range query's legs interleave with per-window merges, so the fanout
// stage is advanced once per leg (the interleaved merges accrue to it)
// and the final merge tail is whatever EndStage(QStageMerge) closes
// afterwards. The stages still partition [start, last] exactly.
//
//hhgb:noalloc
func (s *QuerySpan) AdvanceStage(st QStage) {
	if s == nil {
		return
	}
	now := Now()
	s.stages[st] += now - s.last
	s.last = now
}

// ObserveLeg folds one fan-out leg's duration into QStageFanoutMax,
// keeping the maximum across the query's legs — the critical-path leg.
//
//hhgb:noalloc
func (s *QuerySpan) ObserveLeg(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	if ns := int64(d); ns > s.stages[QStageFanoutMax] {
		s.stages[QStageFanoutMax] = ns
	}
}

// Touch records one fan-out leg's shape: the hierarchy level of the
// window it hit and the number of per-shard tasks it issued (1 for a
// routed lookup, the group's shard count for a barrier query).
//
//hhgb:noalloc
func (s *QuerySpan) Touch(level, shards int) {
	if s == nil {
		return
	}
	if level < 0 {
		level = 0
	}
	if level >= len(s.windows) {
		level = len(s.windows) - 1
	}
	s.windows[level]++
	s.shards += int64(shards)
}

// TouchShards records shards fan-out without a window (flat stores).
//
//hhgb:noalloc
func (s *QuerySpan) TouchShards(n int) {
	if s == nil {
		return
	}
	s.shards += int64(n)
}

// Done finalizes the span: histograms observed, ring recorded when the
// span clears the slow threshold, span recycled. The caller must not
// touch the span again.
//
//hhgb:noalloc
func (s *QuerySpan) Done() {
	if s == nil {
		return
	}
	s.t.finalize(s)
}

// Drop abandons the span without observing it — for queries that were
// refused before doing representative work.
//
//hhgb:noalloc
func (s *QuerySpan) Drop() {
	if s == nil {
		return
	}
	s.dropped = true
	s.Done()
}

// StageNanos returns a stage's recorded duration (test hook).
func (s *QuerySpan) StageNanos(st QStage) int64 { return s.stages[st] }

// ExplainLeg is one fan-out leg of an explained query: the cover window
// it hit (level and event-time bounds; zero for a flat store's single
// leg), the per-shard tasks it issued, and how long the leg took.
type ExplainLeg struct {
	Level      int
	Start, End int64 // event-time bounds, unix nanoseconds
	Shards     int
	Dur        time.Duration
}

// ExplainSpan is one uncovered hole of an explained range query.
type ExplainSpan struct {
	Start, End int64
}

// QueryExplain collects the structured EXPLAIN trailer for one query:
// the served cover (one leg per window, timed), the uncovered holes, and
// per-leg fan-out shape. The server fills it alongside (or instead of) a
// sampled span; explain queries are diagnostic, so it may allocate.
type QueryExplain struct {
	Legs      []ExplainLeg
	Uncovered []ExplainSpan
}

// QueryTracer samples queries into pooled spans and owns their
// finalization, mirroring Tracer for the read path. A nil *QueryTracer,
// or one with sample rate 0, never samples and adds zero allocations.
type QueryTracer struct {
	rec     *Recorder
	every   uint64 // sample 1 in every; 0 = never
	slow    int64  // ring-record threshold in ns; see NewQueryTracer
	n       atomic.Uint64
	spans   pool.Pool[*QuerySpan]
	hist    []*metrics.Histogram
	shards  *metrics.Histogram
	windows []*metrics.Histogram
}

// NewQueryTracer returns a tracer sampling one in every `every` queries
// (every < 1 disables sampling entirely). Stage and fan-out-shape
// histograms register on reg (nil = discard). Sampled spans whose total
// latency reaches `slow` are recorded stage-by-stage into rec as one
// causally ordered chain; slow == 0 records every sampled span, slow < 0
// records none. KindSlowQuery marker events are only emitted when
// slow > 0.
func NewQueryTracer(reg *metrics.Registry, rec *Recorder, every int, slow time.Duration) *QueryTracer {
	t := &QueryTracer{rec: rec, slow: int64(slow), hist: RegisterQueryStageHistograms(reg)}
	t.shards, t.windows = registerQueryShapeHistograms(reg)
	if every > 0 {
		t.every = uint64(every)
	}
	t.spans = pool.New(spanPoolSize, func() *QuerySpan { return &QuerySpan{t: t} })
	return t
}

// SetPool replaces the span free-list — tests swap in a pool.Checked to
// prove every sampled span is returned exactly once.
func (t *QueryTracer) SetPool(p pool.Pool[*QuerySpan]) { t.spans = p }

// AllocSpan allocates a fresh span owned by this tracer — the alloc hook
// a SetPool replacement needs, since a span finalizes through its tracer.
func (t *QueryTracer) AllocSpan() *QuerySpan { return &QuerySpan{t: t} }

// Active reports whether Sample can ever return a span — the hot path
// uses it to skip even the clock read when query tracing is off.
//
//hhgb:noalloc
func (t *QueryTracer) Active() bool { return t != nil && t.every != 0 }

// Sample returns a reset span for this query if it is the 1-in-N pick,
// nil otherwise. start is the query's decode-begin instant (from Now).
//
//hhgb:noalloc
func (t *QueryTracer) Sample(conn uint64, sess string, fseq uint64, start int64) *QuerySpan {
	if t == nil || t.every == 0 {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	s := t.spans.Get()
	s.conn, s.sess, s.fseq = conn, sess, fseq
	s.start, s.last = start, start
	s.dropped = false
	for i := range s.stages {
		s.stages[i] = 0
	}
	s.shards = 0
	for i := range s.windows {
		s.windows[i] = 0
	}
	return s
}

// finalize observes the stage and fan-out-shape histograms, records the
// pipeline into the ring when the span clears the slow threshold, and
// recycles the span.
func (t *QueryTracer) finalize(s *QuerySpan) {
	if !s.dropped {
		total := s.last - s.start
		s.stages[QStageTotal] = total
		for st := QStage(0); st < numQStages; st++ {
			d := s.stages[st]
			if d < 0 {
				d = 0
			}
			// The max-leg stage is absent (not zero) on queries that never
			// fanned out — skip it so its histogram only describes queries
			// it actually measured. Sync stages observe unconditionally to
			// keep counts reconcilable.
			if st == QStageFanoutMax && d == 0 {
				continue
			}
			t.hist[st].Observe(float64(d) / 1e9)
		}
		if s.shards > 0 {
			t.shards.Observe(float64(s.shards))
		}
		for lv, n := range s.windows {
			if n > 0 {
				t.windows[lv].Observe(float64(n))
			}
		}
		if t.rec != nil && t.slow >= 0 && total >= t.slow {
			t.recordPipeline(s, total)
		}
	}
	s.sess = "" // drop the session string reference before pooling
	t.spans.Put(s)
}

// recordPipeline writes the span's stages to the ring as one causally
// ordered run of events (consecutive claim numbers, pipeline order):
// decode → plan → fanout → merge → encode → ack, with reconstructed end
// timestamps (the queue wait is folded into the decode→plan gap). The
// fanout event carries the fan-out shape in a (shard tasks) and b
// (windows touched).
func (t *QueryTracer) recordPipeline(s *QuerySpan, total int64) {
	r := t.rec
	end := s.start + s.stages[QStageDecode]
	r.RecordAt(end, KindQueryDecode, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[QStageDecode]))
	end += s.stages[QStageQueue] + s.stages[QStagePlan]
	r.RecordAt(end, KindQueryPlan, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[QStagePlan]))
	end += s.stages[QStageFanout]
	var wins int64
	for _, n := range s.windows {
		wins += n
	}
	r.RecordAt(end, KindQueryFanout, s.conn, s.sess, s.fseq, uint64(s.shards), uint64(wins), time.Duration(s.stages[QStageFanout]))
	end += s.stages[QStageMerge]
	r.RecordAt(end, KindQueryMerge, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[QStageMerge]))
	end += s.stages[QStageEncode]
	r.RecordAt(end, KindQueryEncode, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[QStageEncode]))
	end += s.stages[QStageAck]
	r.RecordAt(end, KindQueryAck, s.conn, s.sess, s.fseq, 0, 0, time.Duration(s.stages[QStageAck]))
	if t.slow > 0 {
		r.RecordAt(end, KindSlowQuery, s.conn, s.sess, s.fseq, uint64(total), 0, time.Duration(total))
	}
}
