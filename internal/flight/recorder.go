// Package flight is the server's latency-attribution plane: a fixed-size
// preallocated ring of structured events (the flight recorder) plus
// sampled per-frame spans that decompose end-to-end ingest latency into
// per-stage histograms.
//
// Everything here is built to ride the allocation-free ingest hot path:
// recording an event writes into a preallocated ring slot, spans come
// from a bounded free-list (internal/pool), and every method is safe on
// a nil receiver so unconfigured servers pay a single branch. Timestamps
// are monotonic nanoseconds from the package clock (clock.go, the only
// time.Now site — enforced by the hhgbinvariants timenow rule).
package flight

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what a ring event records.
type Kind uint8

// Event kinds. The zero value is reserved so an unwritten slot can never
// render as a real event.
const (
	KindConnOpen Kind = 1 + iota
	KindConnClose
	KindFrameDecode
	KindDequeue
	KindWALAppend
	KindWALFsync
	KindShardApply
	KindAck
	KindRefusal
	KindEviction
	KindSeal
	KindRollup
	KindExpiry
	KindCheckpointBegin
	KindCheckpointEnd
	KindSlowFrame
	KindQueryDecode
	KindQueryPlan
	KindQueryFanout
	KindQueryMerge
	KindQueryEncode
	KindQueryAck
	KindSlowQuery
)

// String returns the kind's JSON name.
func (k Kind) String() string {
	switch k {
	case KindConnOpen:
		return "conn_open"
	case KindConnClose:
		return "conn_close"
	case KindFrameDecode:
		return "frame_decode"
	case KindDequeue:
		return "dequeue"
	case KindWALAppend:
		return "wal_append"
	case KindWALFsync:
		return "wal_fsync"
	case KindShardApply:
		return "shard_apply"
	case KindAck:
		return "ack"
	case KindRefusal:
		return "refusal"
	case KindEviction:
		return "eviction"
	case KindSeal:
		return "seal"
	case KindRollup:
		return "rollup"
	case KindExpiry:
		return "expiry"
	case KindCheckpointBegin:
		return "checkpoint_begin"
	case KindCheckpointEnd:
		return "checkpoint_end"
	case KindSlowFrame:
		return "slow_frame"
	case KindQueryDecode:
		return "query_decode"
	case KindQueryPlan:
		return "query_plan"
	case KindQueryFanout:
		return "query_fanout"
	case KindQueryMerge:
		return "query_merge"
	case KindQueryEncode:
		return "query_encode"
	case KindQueryAck:
		return "query_ack"
	case KindSlowQuery:
		return "slow_query"
	}
	return "unknown"
}

// slot is one preallocated ring entry. Each slot carries its own mutex so
// writers only contend when the ring has wrapped all the way around onto
// a slot a dump is reading — there is no global lock on the record path.
type slot struct {
	mu   sync.Mutex
	seq  uint64 // claim number; slot is live iff seq ≡ claim order
	ts   int64  // monotonic ns (clock.go)
	kind Kind
	conn uint64
	sess string
	fseq uint64
	a, b uint64
	dur  int64
}

// Recorder is the flight recorder: a fixed-size ring of recent events.
// All methods are safe for concurrent use and on a nil receiver (every
// Record is then a no-op), so instrumented code never branches on
// whether a recorder is configured.
type Recorder struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64 // claim counter; total events ever recorded
}

// DefaultRingSize is the event capacity NewRecorder rounds up to when
// asked for less than one slot.
const DefaultRingSize = 4096

// NewRecorder returns a recorder holding the most recent n events
// (rounded up to a power of two; n < 1 gets DefaultRingSize). All memory
// is allocated here — recording never allocates.
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = DefaultRingSize
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Recorder{slots: make([]slot, size), mask: uint64(size - 1)}
}

// Record appends one event stamped with the current monotonic clock.
// conn/sess/fseq are correlation fields (zero values mean "not tied to a
// connection/session/frame"); a and b are kind-specific arguments; dur
// is the event's duration when it has one.
//
//hhgb:noalloc
func (r *Recorder) Record(k Kind, conn uint64, sess string, fseq uint64, a, b uint64, dur time.Duration) {
	if r == nil {
		return
	}
	r.record(Now(), k, conn, sess, fseq, a, b, int64(dur))
}

// RecordAt is Record with an explicit timestamp from the package clock —
// used when an event's true time was captured earlier than the call
// (e.g. span stages reconstructed at frame completion).
//
//hhgb:noalloc
func (r *Recorder) RecordAt(ts int64, k Kind, conn uint64, sess string, fseq uint64, a, b uint64, dur time.Duration) {
	if r == nil {
		return
	}
	r.record(ts, k, conn, sess, fseq, a, b, int64(dur))
}

//hhgb:noalloc
func (r *Recorder) record(ts int64, k Kind, conn uint64, sess string, fseq uint64, a, b uint64, dur int64) {
	seq := r.next.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.mu.Lock()
	s.seq = seq
	s.ts = ts
	s.kind = k
	s.conn = conn
	s.sess = sess
	s.fseq = fseq
	s.a, s.b = a, b
	s.dur = dur
	s.mu.Unlock()
}

// Len reports how many events have ever been recorded (not the ring
// occupancy; the ring keeps the most recent min(Len, capacity)).
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Event is one dumped ring event. TS is monotonic nanoseconds on the
// package clock; Wall is the same instant rendered as wall time.
type Event struct {
	Seq      uint64    `json:"seq"`
	Wall     time.Time `json:"wall"`
	TS       int64     `json:"ts_ns"`
	Kind     string    `json:"kind"`
	Conn     uint64    `json:"conn,omitempty"`
	Session  string    `json:"session,omitempty"`
	FrameSeq uint64    `json:"frame_seq,omitempty"`
	A        uint64    `json:"a,omitempty"`
	B        uint64    `json:"b,omitempty"`
	Dur      int64     `json:"dur_ns"`
}

// Snapshot returns the ring's current events, oldest first. Events
// recorded while the snapshot runs may displace not-yet-copied old ones;
// each returned event is internally consistent (per-slot locking), and
// the sequence numbers reveal any gap.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	start := uint64(0)
	if n > uint64(len(r.slots)) {
		start = n - uint64(len(r.slots))
	}
	out := make([]Event, 0, n-start)
	for seq := start; seq < n; seq++ {
		s := &r.slots[seq&r.mask]
		s.mu.Lock()
		if s.seq != seq || s.kind == 0 {
			s.mu.Unlock()
			continue // displaced by a newer event mid-snapshot
		}
		out = append(out, Event{
			Seq:      s.seq,
			Wall:     wallAt(s.ts),
			TS:       s.ts,
			Kind:     s.kind.String(),
			Conn:     s.conn,
			Session:  s.sess,
			FrameSeq: s.fseq,
			A:        s.a,
			B:        s.b,
			Dur:      s.dur,
		})
		s.mu.Unlock()
	}
	return out
}

// dump is the JSON envelope of a ring dump.
type dump struct {
	Recorded uint64  `json:"recorded_total"`
	Events   []Event `json:"events"`
}

// WriteJSON dumps the ring as one JSON object {"recorded_total", "events"}
// to w — the payload of /debug/events and the SIGQUIT stderr dump.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dump{Recorded: r.Len(), Events: r.Snapshot()})
}

// Handler serves the ring dump as application/json (the /debug/events
// endpoint on the stats mux). Two optional query parameters narrow the
// dump so a slow-query chain can be pulled without the whole ring:
// ?kind=<name> keeps only events of that kind (exact Kind.String() name,
// e.g. kind=slow_query), and ?limit=N keeps only the most recent N of
// whatever survived the kind filter. A non-numeric or negative limit is
// a 400.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		events := r.Snapshot()
		if kind := q.Get("kind"); kind != "" {
			kept := events[:0]
			for _, ev := range events {
				if ev.Kind == kind {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		if lim := q.Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				http.Error(w, "bad limit: want a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(dump{Recorded: r.Len(), Events: events})
	})
}
