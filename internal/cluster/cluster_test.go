package cluster

import (
	"errors"
	"testing"

	"hhgb/internal/baselines"
	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

func testStream() powerlaw.StreamSpec {
	return powerlaw.StreamSpec{TotalEdges: 40_000, SetSize: 2_000, Scale: 20, Seed: 11}
}

func hierFactory() baselines.Factory {
	return func() (baselines.Engine, error) {
		return baselines.NewHierGraphBLAS(1<<20, nil)
	}
}

func TestRunLocalConservesUpdates(t *testing.T) {
	stream := testStream()
	for _, procs := range []int{1, 2, 3, 7} {
		r, err := RunLocal(hierFactory(), stream, procs)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if r.Updates != int64(stream.TotalEdges) {
			t.Fatalf("procs=%d: updates = %d, want %d", procs, r.Updates, stream.TotalEdges)
		}
		if r.Processes != procs {
			t.Fatalf("procs recorded = %d", r.Processes)
		}
		if r.Rate() <= 0 {
			t.Fatalf("rate = %v", r.Rate())
		}
		if r.Engine != "hier-graphblas" {
			t.Fatalf("engine = %q", r.Engine)
		}
	}
}

// TestRunLocalShardedEngine drives the cluster harness with the concurrent
// sharded frontend: one internally-parallel instance per "process". The
// update count must be conserved through the hash-partitioned async path,
// and the calibrated model must compose per server.
func TestRunLocalShardedEngine(t *testing.T) {
	stream := testStream()
	factory := func() (baselines.Engine, error) {
		return baselines.NewShardedGraphBLAS(1<<20, nil, 2)
	}
	r, err := RunLocal(factory, stream, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != int64(stream.TotalEdges) {
		t.Fatalf("updates = %d, want %d", r.Updates, stream.TotalEdges)
	}
	if r.Engine != "sharded-graphblas" {
		t.Fatalf("engine = %q", r.Engine)
	}

	m, err := Calibrate("sharded-graphblas", factory, stream, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != baselines.ScalePerServer {
		t.Fatalf("sharded model class = %v, want ScalePerServer", m.Class)
	}
	if m.PerProcessRate <= 0 {
		t.Fatalf("per-process rate = %v", m.PerProcessRate)
	}
	// Per-server composition: 10 servers ≈ 10x one server (x efficiency),
	// with no procs-per-server multiplier.
	one, ten := m.Aggregate(1), m.Aggregate(10)
	if ten <= 5*one || ten > 10*one {
		t.Fatalf("Aggregate(10) = %v vs Aggregate(1) = %v; want sublinear 10x", ten, one)
	}
}

func TestRunLocalValidation(t *testing.T) {
	if _, err := RunLocal(hierFactory(), testStream(), 0); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero procs: %v", err)
	}
	bad := powerlaw.StreamSpec{TotalEdges: 10, SetSize: 3, Scale: 10}
	if _, err := RunLocal(hierFactory(), bad, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("bad stream: %v", err)
	}
}

func TestRunLocalMoreProcsThanSets(t *testing.T) {
	stream := powerlaw.StreamSpec{TotalEdges: 4000, SetSize: 2000, Scale: 16, Seed: 3}
	r, err := RunLocal(hierFactory(), stream, 8) // only 2 sets for 8 procs
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != 4000 {
		t.Fatalf("updates = %d", r.Updates)
	}
}

func TestCalibrateTimedRunsAtLeastMinSeconds(t *testing.T) {
	rate, err := CalibrateTimed(hierFactory(), testStream(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rate.Seconds < 0.05 {
		t.Fatalf("ran only %.3fs", rate.Seconds)
	}
	if rate.PerSecond() <= 0 {
		t.Fatalf("rate = %v", rate.PerSecond())
	}
}

func TestModelAggregateScalesWithServers(t *testing.T) {
	m := Model{PerProcessRate: 1e6, ProcsPerServer: 28, Efficiency: DefaultEfficiency}
	one := m.Aggregate(1)
	if one != 28e6 {
		t.Fatalf("Aggregate(1) = %v", one)
	}
	big := m.Aggregate(1100)
	if big <= one {
		t.Fatal("no scaling")
	}
	// Sublinear but near-linear: within [60%, 100%] of perfect scaling.
	perfect := one * 1100
	if big < 0.6*perfect || big > perfect {
		t.Fatalf("Aggregate(1100) = %v, perfect = %v", big, perfect)
	}
	if m.Aggregate(0) != 0 {
		t.Fatal("Aggregate(0) != 0")
	}
	// Nil efficiency means perfectly linear.
	lin := Model{PerProcessRate: 1e6, ProcsPerServer: 1}
	if lin.Aggregate(10) != 1e7 {
		t.Fatalf("linear aggregate = %v", lin.Aggregate(10))
	}
}

func TestDefaultEfficiencyBounds(t *testing.T) {
	if DefaultEfficiency(1) != 1 {
		t.Fatal("eff(1) != 1")
	}
	prev := 1.0
	for _, n := range []int{2, 10, 100, 1100} {
		e := DefaultEfficiency(n)
		if e <= 0 || e > 1 {
			t.Fatalf("eff(%d) = %v out of (0,1]", n, e)
		}
		if e > prev {
			t.Fatalf("efficiency not monotone at %d", n)
		}
		prev = e
	}
}

func TestFig2ProducesOrderedSeries(t *testing.T) {
	cfg := Fig2Config{
		Stream:             testStream(),
		ServerCounts:       []int{1, 10, 100},
		ProcsPerServer:     28,
		CalibrationSeconds: 0.02,
		Engines:            []string{"hier-graphblas", "tpcc"},
		Dim:                1 << 22,
	}
	series, models, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(models) != 2 {
		t.Fatalf("series/models = %d/%d", len(series), len(models))
	}
	for i, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("series %d has %d points", i, len(s.Points))
		}
		if s.Points[0].Y >= s.Points[2].Y {
			t.Fatalf("series %s does not scale: %v", s.Name, s.Points)
		}
	}
	// The paper's headline ordering: hierarchical GraphBLAS above TPCC at
	// every scale.
	for k := range series[0].Points {
		if series[0].Points[k].Y <= series[1].Points[k].Y {
			t.Fatalf("hier-graphblas (%v) not above tpcc (%v) at x=%v",
				series[0].Points[k].Y, series[1].Points[k].Y, series[0].Points[k].X)
		}
	}
}

func TestFig2UnknownEngine(t *testing.T) {
	cfg := Fig2Config{Stream: testStream(), Engines: []string{"nosuch"}}
	if _, _, err := Fig2(cfg); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestWeakScalingShape(t *testing.T) {
	// Weak scaling: each process streams its OWN full workload copy, so
	// total updates grow with the process count.
	results, err := WeakScaling(hierFactory(), testStream(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("results = %d", len(results))
	}
	wantProcs := []int{1, 2, 4}
	for i, r := range results {
		if r.Processes != wantProcs[i] {
			t.Fatalf("procs sequence %v at %d", r.Processes, i)
		}
		if r.Updates != int64(testStream().TotalEdges)*int64(r.Processes) {
			t.Fatalf("weak scaling: %d procs did %d updates, want %d",
				r.Processes, r.Updates, int64(testStream().TotalEdges)*int64(r.Processes))
		}
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Strong scaling: the total workload is fixed and split.
	results, err := StrongScaling(hierFactory(), testStream(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Updates != int64(testStream().TotalEdges) {
			t.Fatalf("strong scaling changed total work: %d", r.Updates)
		}
	}
}

func TestWeakScalingNonPowerOfTwoMax(t *testing.T) {
	results, err := WeakScaling(hierFactory(), testStream(), 3)
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if last.Processes != 3 {
		t.Fatalf("last procs = %d, want 3", last.Processes)
	}
}

func TestRunLocalWeakDistinctGraphs(t *testing.T) {
	// Per-process seeds must differ: two processes must not ingest
	// identical graphs. Compare resulting matrices via separate runs.
	stream := powerlaw.StreamSpec{TotalEdges: 2000, SetSize: 1000, Scale: 18, Seed: 5}
	r, err := RunLocalWeak(hierFactory(), stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != 4000 {
		t.Fatalf("updates = %d, want 4000", r.Updates)
	}
	if _, err := RunLocalWeak(hierFactory(), stream, 0); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero procs: %v", err)
	}
}

func TestDefaultServerCountsEndAt1100(t *testing.T) {
	counts := DefaultServerCounts()
	if counts[0] != 1 || counts[len(counts)-1] != 1100 {
		t.Fatalf("counts = %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("not increasing: %v", counts)
		}
	}
}

// TestShardSweepSmall runs a tiny sweep end to end: every point must
// stream the full workload, report positive rates, and carry a speedup
// relative to the measured flat baseline.
func TestShardSweepSmall(t *testing.T) {
	res, err := ShardSweep(ShardSweepConfig{
		Stream:      powerlaw.StreamSpec{TotalEdges: 20_000, SetSize: 1000, Scale: 18, Seed: 11},
		ShardCounts: []int{1, 2},
		Producers:   2,
		Handoff:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flat.PerSecond() <= 0 {
		t.Fatalf("flat baseline rate %v", res.Flat)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Updates != 20_000 {
			t.Fatalf("shards=%d streamed %d updates, want 20000", p.Shards, p.Updates)
		}
		if p.Rate() <= 0 || p.Speedup <= 0 {
			t.Fatalf("shards=%d rate %v speedup %v", p.Shards, p.Rate(), p.Speedup)
		}
		if p.Producers != 2 {
			t.Fatalf("shards=%d producers %d, want 2", p.Shards, p.Producers)
		}
	}
	if _, err := ShardSweep(ShardSweepConfig{Stream: powerlaw.StreamSpec{}}); err == nil {
		t.Fatal("invalid stream should fail")
	}
}

func TestDefaultShardCountsShape(t *testing.T) {
	counts := DefaultShardCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != 2*counts[i-1] {
			t.Fatalf("not powers of two: %v", counts)
		}
	}
}
