// Package cluster reproduces the paper's Section III methodology: many
// shared-nothing processes, each owning its own engine instance, streaming
// independently generated sets of a power-law graph, with the aggregate
// sustained update rate measured as total updates over wall-clock time.
//
// On the MIT SuperCloud the processes span 1,100 servers; on a laptop the
// same code runs P goroutine "processes" on local cores and calibrates an
// extrapolation model. Because the paper's workload is embarrassingly
// parallel (no process ever communicates), aggregate throughput composes
// additively across servers; the model multiplies the measured per-process
// rate by the process count and a documented parallel-efficiency factor.
//
// The harness is engine-agnostic: any baselines.Factory slots in,
// including "sharded-graphblas" — the concurrent ingest frontend that runs
// the shared-nothing composition *inside* one process across cores. For
// that variant the natural shape is one internally-parallel process
// (procs=1, shards=cores), and its Model composes per server
// (baselines.ScalePerServer) rather than per process, so the two scaling
// axes — shards within a node, shared-nothing processes across nodes —
// multiply in the extrapolation.
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"hhgb/internal/baselines"
	"hhgb/internal/bench"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
	"hhgb/internal/shard"
)

// RunResult is one measured local run.
type RunResult struct {
	Engine    string
	Processes int
	Updates   int64
	Seconds   float64
}

// Rate returns the aggregate updates/second of the run.
func (r RunResult) Rate() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Seconds
}

// RunLocal executes the paper's experiment at local scale: procs goroutine
// processes, each with its own engine instance, each generating and
// ingesting its own round-robin share of the stream's sets. It returns the
// measured aggregate result.
func RunLocal(factory baselines.Factory, stream powerlaw.StreamSpec, procs int) (RunResult, error) {
	if procs < 1 {
		return RunResult{}, fmt.Errorf("%w: procs %d < 1", gb.ErrInvalidValue, procs)
	}
	if err := stream.Validate(); err != nil {
		return RunResult{}, err
	}
	engines := make([]baselines.Engine, procs)
	for p := range engines {
		e, err := factory()
		if err != nil {
			return RunResult{}, err
		}
		engines[p] = e
	}

	var wg sync.WaitGroup
	errs := make([]error, procs)
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			e := engines[p]
			for set := p; set < stream.Sets(); set += procs {
				edges, err := stream.GenerateSet(set)
				if err != nil {
					errs[p] = err
					return
				}
				if err := e.Ingest(edges); err != nil {
					errs[p] = err
					return
				}
			}
			errs[p] = e.Close()
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total int64
	for p, err := range errs {
		if err != nil {
			return RunResult{}, fmt.Errorf("process %d: %w", p, err)
		}
		total += engines[p].Count()
	}
	name := "unknown"
	if procs > 0 {
		name = engines[0].Name()
	}
	return RunResult{Engine: name, Processes: procs, Updates: total, Seconds: elapsed}, nil
}

// CalibrateTimed measures a single process's sustained ingest rate by
// streaming sets for at least minSeconds (cycling through a pre-generated
// pool of the stream's sets, so generation cost stays outside the
// measurement — the paper's processes load pre-generated data). Slow
// engines get measured over fewer updates instead of taking unbounded time.
func CalibrateTimed(factory baselines.Factory, stream powerlaw.StreamSpec, minSeconds float64) (bench.Rate, error) {
	if err := stream.Validate(); err != nil {
		return bench.Rate{}, err
	}
	e, err := factory()
	if err != nil {
		return bench.Rate{}, err
	}
	defer e.Close()

	poolSize := stream.Sets()
	if poolSize > 16 {
		poolSize = 16
	}
	pool := make([][]powerlaw.Edge, poolSize)
	for k := range pool {
		edges, err := stream.GenerateSet(k)
		if err != nil {
			return bench.Rate{}, err
		}
		pool[k] = edges
	}

	var updates int64
	start := time.Now()
	for set := 0; ; set = (set + 1) % len(pool) {
		if err := e.Ingest(pool[set]); err != nil {
			return bench.Rate{}, err
		}
		updates += int64(len(pool[set]))
		if time.Since(start).Seconds() >= minSeconds {
			break
		}
	}
	// Asynchronous engines (the sharded frontend) accept batches into
	// queues; drain inside the measured window so the rate counts only
	// work that actually completed, keeping the comparison honest against
	// the synchronous engines.
	if d, ok := e.(baselines.Drainer); ok {
		if err := d.Drain(); err != nil {
			return bench.Rate{}, err
		}
	}
	return bench.Rate{Updates: updates, Seconds: time.Since(start).Seconds()}, nil
}

// Model extrapolates aggregate throughput to server counts the local
// machine cannot host, using the shared-nothing additivity of the paper's
// workload.
type Model struct {
	// EngineName identifies the engine the model was calibrated for.
	EngineName string
	// PerProcessRate is the measured single-process sustained rate.
	PerProcessRate float64
	// ProcsPerServer is the process count per server (the paper runs
	// ~31,000 instances on 1,100 servers ≈ 28/server; 32 matches the
	// SuperCloud's cores-per-node scheduling). Applied only to
	// shared-nothing engines.
	ProcsPerServer int
	// Class selects how throughput composes across servers: per-process
	// shared-nothing (the paper's hierarchical runs), per-server
	// (distributed databases), or scale-up (Oracle TPC-C).
	Class baselines.ScalingClass
	// Efficiency returns the parallel efficiency at a server count;
	// DefaultEfficiency models the paper's slightly sublinear curve.
	Efficiency func(servers int) float64
}

// DefaultProcsPerServer matches the paper's ~28-31 instances per node.
const DefaultProcsPerServer = 28

// DefaultEfficiency is a mildly sublinear efficiency curve: eff(n) =
// n^-0.03 (≈ 0.81 at 1,100 servers), matching the slight roll-off of the
// paper's measured hierarchical curves at full scale.
func DefaultEfficiency(servers int) float64 {
	if servers <= 1 {
		return 1
	}
	return math.Pow(float64(servers), -0.03)
}

// Aggregate returns the modeled aggregate rate at the given server count.
func (m Model) Aggregate(servers int) float64 {
	if servers < 1 {
		return 0
	}
	eff := 1.0
	if m.Efficiency != nil {
		eff = m.Efficiency(servers)
	}
	switch m.Class {
	case baselines.ScaleUp:
		return m.PerProcessRate * math.Pow(float64(servers), 0.3)
	case baselines.ScalePerServer:
		return float64(servers) * m.PerProcessRate * eff
	default: // shared-nothing
		return float64(servers) * float64(m.ProcsPerServer) * m.PerProcessRate * eff
	}
}

// Calibrate builds a Model for the engine by measuring its single-process
// rate over at least minSeconds.
func Calibrate(name string, factory baselines.Factory, stream powerlaw.StreamSpec, minSeconds float64, procsPerServer int) (Model, error) {
	if procsPerServer < 1 {
		procsPerServer = DefaultProcsPerServer
	}
	rate, err := CalibrateTimed(factory, stream, minSeconds)
	if err != nil {
		return Model{}, err
	}
	return Model{
		EngineName:     name,
		PerProcessRate: rate.PerSecond(),
		ProcsPerServer: procsPerServer,
		Class:          baselines.ClassOf(name),
		Efficiency:     DefaultEfficiency,
	}, nil
}

// Fig2Config drives the Fig. 2 reproduction sweep.
type Fig2Config struct {
	// Stream is the workload specification (paper: 1,000 sets of 100,000).
	Stream powerlaw.StreamSpec
	// ServerCounts is the x-axis (paper: 1 … 1,100, log-spaced).
	ServerCounts []int
	// ProcsPerServer scales servers to processes.
	ProcsPerServer int
	// CalibrationSeconds bounds each engine's measurement time.
	CalibrationSeconds float64
	// Engines selects and orders the engines; nil means Fig2Order.
	Engines []string
	// Dim is the traffic-matrix dimension for the GraphBLAS engines.
	Dim gb.Index
}

// DefaultServerCounts returns the paper's log-spaced x-axis up to 1,100.
func DefaultServerCounts() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1100}
}

// Fig2 runs the full Fig. 2 reproduction: it calibrates every engine
// locally, then produces one modeled series per engine across the server
// counts. The returned models carry the measured per-process rates for
// reporting.
func Fig2(cfg Fig2Config) ([]bench.Series, []Model, error) {
	if cfg.ProcsPerServer < 1 {
		cfg.ProcsPerServer = DefaultProcsPerServer
	}
	if cfg.CalibrationSeconds <= 0 {
		cfg.CalibrationSeconds = 0.5
	}
	if cfg.ServerCounts == nil {
		cfg.ServerCounts = DefaultServerCounts()
	}
	if cfg.Dim == 0 {
		cfg.Dim = 1 << 32
	}
	names := cfg.Engines
	if names == nil {
		names = baselines.Fig2Order()
	}
	registry := baselines.Registry(cfg.Dim)
	var series []bench.Series
	var models []Model
	for _, name := range names {
		factory, ok := registry[name]
		if !ok {
			return nil, nil, fmt.Errorf("%w: unknown engine %q", gb.ErrInvalidValue, name)
		}
		model, err := Calibrate(name, factory, cfg.Stream, cfg.CalibrationSeconds, cfg.ProcsPerServer)
		if err != nil {
			return nil, nil, fmt.Errorf("calibrating %s: %w", name, err)
		}
		s := bench.Series{Name: name}
		for _, n := range cfg.ServerCounts {
			s.Add(float64(n), model.Aggregate(n))
		}
		series = append(series, s)
		models = append(models, model)
	}
	return series, models, nil
}

// RunLocalWeak executes the paper's actual experiment shape: every process
// streams its *own* full copy of the workload ("each creating many
// different graphs of 100,000,000 edges each"), with per-process seeds so
// the graphs differ. Total work grows with the process count (weak
// scaling).
func RunLocalWeak(factory baselines.Factory, stream powerlaw.StreamSpec, procs int) (RunResult, error) {
	if procs < 1 {
		return RunResult{}, fmt.Errorf("%w: procs %d < 1", gb.ErrInvalidValue, procs)
	}
	if err := stream.Validate(); err != nil {
		return RunResult{}, err
	}
	engines := make([]baselines.Engine, procs)
	for p := range engines {
		e, err := factory()
		if err != nil {
			return RunResult{}, err
		}
		engines[p] = e
	}
	var wg sync.WaitGroup
	errs := make([]error, procs)
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			own := stream
			own.Seed = stream.Seed + 0x9e3779b97f4a7c15*uint64(p+1)
			e := engines[p]
			for set := 0; set < own.Sets(); set++ {
				edges, err := own.GenerateSet(set)
				if err != nil {
					errs[p] = err
					return
				}
				if err := e.Ingest(edges); err != nil {
					errs[p] = err
					return
				}
			}
			errs[p] = e.Close()
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total int64
	for p, err := range errs {
		if err != nil {
			return RunResult{}, fmt.Errorf("process %d: %w", p, err)
		}
		total += engines[p].Count()
	}
	return RunResult{Engine: engines[0].Name(), Processes: procs, Updates: total, Seconds: elapsed}, nil
}

// procSweep runs f at power-of-two process counts up to maxProcs.
func procSweep(maxProcs int, f func(procs int) (RunResult, error)) ([]RunResult, error) {
	if maxProcs < 1 {
		maxProcs = runtime.GOMAXPROCS(0)
	}
	var out []RunResult
	for p := 1; p <= maxProcs; p *= 2 {
		r, err := f(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if p == maxProcs {
			break
		}
		if p*2 > maxProcs {
			r, err := f(maxProcs)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			break
		}
	}
	return out, nil
}

// WeakScaling measures aggregate rate at increasing process counts with
// per-process constant work (experiment E12, the paper's methodology):
// each process streams its own full workload copy.
func WeakScaling(factory baselines.Factory, stream powerlaw.StreamSpec, maxProcs int) ([]RunResult, error) {
	return procSweep(maxProcs, func(p int) (RunResult, error) {
		return RunLocalWeak(factory, stream, p)
	})
}

// StrongScaling measures aggregate rate at increasing process counts with
// the total workload fixed and divided among processes.
func StrongScaling(factory baselines.Factory, stream powerlaw.StreamSpec, maxProcs int) ([]RunResult, error) {
	return procSweep(maxProcs, func(p int) (RunResult, error) {
		return RunLocal(factory, stream, p)
	})
}

// ShardSweepConfig drives the single-node shard-scaling sweep (the
// cmd/hhgb-shards figure): one logical matrix, shard count on the x-axis,
// a fixed producer pool streaming a fixed total workload into it.
type ShardSweepConfig struct {
	// Dim is the traffic-matrix dimension (0 selects 2^Stream.Scale).
	Dim gb.Index
	// Cuts configures every shard's cascade; nil selects the default.
	Cuts []int
	// Stream is the total workload; its sets are pre-generated and cycled
	// so generation cost stays outside every measurement.
	Stream powerlaw.StreamSpec
	// ShardCounts is the x-axis; nil selects powers of two from 1 through
	// 2 x GOMAXPROCS (oversubscription shows where scaling rolls off).
	ShardCounts []int
	// Producers is the concurrent producer count feeding each run; zero
	// or negative selects GOMAXPROCS.
	Producers int
	// Handoff is the per-shard producer buffer size; <= 0 is the default.
	Handoff int
}

// ShardPoint is one measured point of a shard sweep.
type ShardPoint struct {
	Shards    int
	Producers int
	Updates   int64
	Seconds   float64
	// Speedup is the rate relative to the flat single-goroutine cascade
	// streamed the same workload on the same machine.
	Speedup float64
}

// Rate returns the point's aggregate updates/second.
func (p ShardPoint) Rate() float64 {
	if p.Seconds <= 0 {
		return 0
	}
	return float64(p.Updates) / p.Seconds
}

// ShardSweepResult is a full sweep: the flat baseline plus one point per
// shard count.
type ShardSweepResult struct {
	Flat   bench.Rate
	Points []ShardPoint
}

// DefaultShardCounts returns powers of two from 1 through 2 x GOMAXPROCS.
func DefaultShardCounts() []int {
	max := 2 * runtime.GOMAXPROCS(0)
	var out []int
	for s := 1; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// shardPools pre-generates one batch pool per producer, already converted
// to tuples, so neither generation nor conversion pollutes a measurement.
type shardPools struct {
	rows [][][]gb.Index
	cols [][][]gb.Index
	vals [][][]uint64
}

func generateShardPools(stream powerlaw.StreamSpec, producers, setsPerProducer int) (shardPools, error) {
	var p shardPools
	for pr := 0; pr < producers; pr++ {
		own := stream
		own.Seed = stream.Seed + 0x9e3779b97f4a7c15*uint64(pr+1)
		var rows [][]gb.Index
		var cols [][]gb.Index
		var vals [][]uint64
		for k := 0; k < setsPerProducer; k++ {
			edges, err := own.GenerateSet(k)
			if err != nil {
				return shardPools{}, err
			}
			r, c, v := powerlaw.ToTuples(edges)
			rows, cols, vals = append(rows, r), append(cols, c), append(vals, v)
		}
		p.rows = append(p.rows, rows)
		p.cols = append(p.cols, cols)
		p.vals = append(p.vals, vals)
	}
	return p, nil
}

// ShardSweep measures the flat single-goroutine cascade, then the sharded
// group at every shard count, streaming the same total workload each time.
// Every sharded run gives each producer its own Appender (producer-local
// shard buffers) and times ingest through the final Close, so queued or
// buffered work is never credited.
func ShardSweep(cfg ShardSweepConfig) (ShardSweepResult, error) {
	if err := cfg.Stream.Validate(); err != nil {
		return ShardSweepResult{}, err
	}
	if cfg.Producers < 1 {
		cfg.Producers = runtime.GOMAXPROCS(0)
	}
	if cfg.ShardCounts == nil {
		cfg.ShardCounts = DefaultShardCounts()
	}
	if cfg.Dim == 0 {
		cfg.Dim = gb.Index(1) << uint(cfg.Stream.Scale)
	}
	hierCfg := hier.DefaultConfig()
	if cfg.Cuts != nil {
		hierCfg = hier.Config{Cuts: cfg.Cuts}
	}

	// Each producer streams its share of the total workload by cycling a
	// small pre-generated pool of sets (the paper's processes load
	// pre-generated data).
	setsPerProducer := cfg.Stream.Sets() / cfg.Producers
	if setsPerProducer < 1 {
		setsPerProducer = 1
	}
	poolSets := setsPerProducer
	if poolSets > 8 {
		poolSets = 8
	}
	pools, err := generateShardPools(cfg.Stream, cfg.Producers, poolSets)
	if err != nil {
		return ShardSweepResult{}, err
	}
	// Producers stream whole sets until they reach their quota, so the
	// actual update count can overshoot the quota by part of one set;
	// every measurement reports the true streamed count.
	perProducer := int64(cfg.Stream.TotalEdges / cfg.Producers)
	streamed := func(pr int) int64 {
		var done int64
		for k := 0; done < perProducer; k = (k + 1) % poolSets {
			done += int64(len(pools.rows[pr][k]))
		}
		return done
	}
	var totalUpdates int64
	for pr := 0; pr < cfg.Producers; pr++ {
		totalUpdates += streamed(pr)
	}

	var result ShardSweepResult

	// Flat baseline: one cascade, one goroutine, same total workload.
	flat, err := hier.New[uint64](cfg.Dim, cfg.Dim, hierCfg)
	if err != nil {
		return ShardSweepResult{}, err
	}
	result.Flat, err = bench.Measure(totalUpdates, func() error {
		for pr := 0; pr < cfg.Producers; pr++ {
			var done int64
			for k := 0; done < perProducer; k = (k + 1) % poolSets {
				if err := flat.Update(pools.rows[pr][k], pools.cols[pr][k], pools.vals[pr][k]); err != nil {
					return err
				}
				done += int64(len(pools.rows[pr][k]))
			}
		}
		_, err := flat.Flush()
		return err
	})
	if err != nil {
		return ShardSweepResult{}, err
	}

	for _, shards := range cfg.ShardCounts {
		g, err := shard.NewGroup[uint64](cfg.Dim, cfg.Dim, shard.Config{
			Shards:  shards,
			Handoff: cfg.Handoff,
			Hier:    hierCfg,
		})
		if err != nil {
			return ShardSweepResult{}, err
		}
		errs := make([]error, cfg.Producers)
		rate, err := bench.Measure(totalUpdates, func() error {
			var wg sync.WaitGroup
			for pr := 0; pr < cfg.Producers; pr++ {
				wg.Add(1)
				go func(pr int) {
					defer wg.Done()
					a, err := g.NewAppender()
					if err != nil {
						errs[pr] = err
						return
					}
					defer a.Close()
					var done int64
					for k := 0; done < perProducer; k = (k + 1) % poolSets {
						if err := a.Append(pools.rows[pr][k], pools.cols[pr][k], pools.vals[pr][k]); err != nil {
							errs[pr] = err
							return
						}
						done += int64(len(pools.rows[pr][k]))
					}
				}(pr)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return g.Close() // drain buffers and queues; rate counts real ingest
		})
		if err != nil {
			return ShardSweepResult{}, err
		}
		result.Points = append(result.Points, ShardPoint{
			Shards:    shards,
			Producers: cfg.Producers,
			Updates:   rate.Updates,
			Seconds:   rate.Seconds,
			Speedup:   bench.Speedup(result.Flat, rate),
		})
	}
	return result, nil
}
