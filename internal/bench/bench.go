// Package bench provides the measurement and reporting utilities shared by
// the benchmark harnesses: rate timing, data series, aligned tables, CSV
// output, and the ASCII log-log plot used to regenerate the paper's Fig. 2.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Rate is a measured throughput.
type Rate struct {
	Updates int64
	Seconds float64
}

// PerSecond returns updates per second (0 for a zero-duration run).
func (r Rate) PerSecond() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Seconds
}

// String renders the rate in engineering form.
func (r Rate) String() string {
	return fmt.Sprintf("%s updates/s (%d updates in %.3fs)", Eng(r.PerSecond()), r.Updates, r.Seconds)
}

// Measure times f, which performs the given number of updates.
func Measure(updates int64, f func() error) (Rate, error) {
	start := time.Now()
	if err := f(); err != nil {
		return Rate{}, err
	}
	return Rate{Updates: updates, Seconds: time.Since(start).Seconds()}, nil
}

// Speedup returns how many times faster the improved rate is than the
// base rate (0 when the base is unmeasurable). The scaling harnesses use
// it to report sharded-vs-flat and P-process-vs-1-process ratios.
func Speedup(base, improved Rate) float64 {
	b := base.PerSecond()
	if b <= 0 {
		return 0
	}
	return improved.PerSecond() / b
}

// Eng formats a number with an engineering suffix (K, M, G, T).
func Eng(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.2fK", v/1e3)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// FormatTable renders the series as an aligned text table with one row per
// distinct X value (union across series) and one column per series.
func FormatTable(xLabel string, series []Series) string {
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	rows := [][]string{headers}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = Eng(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for ri, row := range rows {
		for c, cell := range row {
			if c > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[c], cell)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for c := range row {
				if c > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", widths[c]))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// WriteCSV writes the series as CSV: xLabel, series1, series2, ...
func WriteCSV(w io.Writer, xLabel string, series []Series) error {
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		cells := []string{trimFloat(x)}
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%g", p.Y)
					break
				}
			}
			cells = append(cells, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// PlotLogLog renders the series as an ASCII log-log scatter plot —
// the terminal rendering of the paper's Fig. 2. Each series is drawn with
// its own marker; the legend maps markers to names.
func PlotLogLog(series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if p.X <= 0 || p.Y <= 0 {
				continue
			}
			any = true
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if !any {
		return "(no positive data to plot)\n"
	}
	if minX == maxX {
		maxX = minX * 10
	}
	if minY == maxY {
		maxY = minY * 10
	}
	lx0, lx1 := math.Log10(minX), math.Log10(maxX)
	ly0, ly1 := math.Log10(minY), math.Log10(maxY)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			if p.X <= 0 || p.Y <= 0 {
				continue
			}
			c := int(math.Round((math.Log10(p.X) - lx0) / (lx1 - lx0) * float64(width-1)))
			r := height - 1 - int(math.Round((math.Log10(p.Y)-ly0)/(ly1-ly0)*float64(height-1)))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = m
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s +%s\n", Eng(maxY), strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 10)
		if r == height/2 {
			label = fmt.Sprintf("%10s", "updates/s")
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%10s +%s\n", Eng(minY), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%10s  %-10s%*s\n", "", Eng(minX), width-10, Eng(maxX))
	for si, s := range series {
		fmt.Fprintf(&sb, "%12c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}
