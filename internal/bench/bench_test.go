package bench

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestRatePerSecond(t *testing.T) {
	r := Rate{Updates: 1000, Seconds: 0.5}
	if r.PerSecond() != 2000 {
		t.Fatalf("PerSecond = %v", r.PerSecond())
	}
	if (Rate{Updates: 10}).PerSecond() != 0 {
		t.Fatal("zero-duration rate not 0")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSpeedup(t *testing.T) {
	base := Rate{Updates: 1000, Seconds: 1}
	fast := Rate{Updates: 4000, Seconds: 1}
	if got := Speedup(base, fast); got != 4 {
		t.Fatalf("Speedup = %v, want 4", got)
	}
	if got := Speedup(Rate{}, fast); got != 0 {
		t.Fatalf("Speedup over zero base = %v, want 0", got)
	}
}

func TestMeasure(t *testing.T) {
	r, err := Measure(42, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if r.Updates != 42 || r.Seconds < 0 {
		t.Fatalf("rate = %+v", r)
	}
	wantErr := errors.New("boom")
	if _, err := Measure(1, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
}

func TestEngSuffixes(t *testing.T) {
	cases := map[float64]string{
		5:       "5.00",
		1500:    "1.50K",
		2.5e6:   "2.50M",
		7.5e10:  "75.00G",
		1.2e13:  "12.00T",
		-2.5e6:  "-2.50M",
		999.999: "1000.00",
	}
	for v, want := range cases {
		if got := Eng(v); got != want {
			t.Errorf("Eng(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.Points) != 2 || s.Points[1] != (Point{3, 4}) {
		t.Fatalf("points = %v", s.Points)
	}
}

func TestFormatTableAlignsAndUnions(t *testing.T) {
	a := Series{Name: "alpha", Points: []Point{{1, 1e6}, {10, 1e7}}}
	b := Series{Name: "beta", Points: []Point{{10, 5e5}, {100, 5e6}}}
	out := FormatTable("servers", []Series{a, b})
	if !strings.Contains(out, "servers") || !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + separator + 3 distinct x values
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.00M") || !strings.Contains(out, "500.00K") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	a := Series{Name: "alpha", Points: []Point{{1, 100}, {2, 200}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, "x", []Series{a}); err != nil {
		t.Fatal(err)
	}
	want := "x,alpha\n1,100\n2,200\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteCSVMissingCells(t *testing.T) {
	a := Series{Name: "a", Points: []Point{{1, 10}}}
	b := Series{Name: "b", Points: []Point{{2, 20}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, "x", []Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "1,10," || lines[2] != "2,,20" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestPlotLogLog(t *testing.T) {
	s := Series{Name: "hier-graphblas"}
	for _, p := range []Point{{1, 2.8e7}, {10, 2.6e8}, {100, 2.4e9}, {1100, 2.3e10}} {
		s.Points = append(s.Points, p)
	}
	out := PlotLogLog([]Series{s}, 60, 16)
	if !strings.Contains(out, "hier-graphblas") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("markers missing:\n%s", out)
	}
	// Monotone series: marker column increases with row going up.
	if strings.Count(out, "*") < 3 {
		t.Fatalf("too few markers:\n%s", out)
	}
}

func TestPlotLogLogDegenerate(t *testing.T) {
	if out := PlotLogLog(nil, 40, 10); !strings.Contains(out, "no positive data") {
		t.Fatalf("empty plot: %q", out)
	}
	neg := Series{Name: "neg", Points: []Point{{-1, -5}}}
	if out := PlotLogLog([]Series{neg}, 40, 10); !strings.Contains(out, "no positive data") {
		t.Fatalf("negative-only plot: %q", out)
	}
	single := Series{Name: "one", Points: []Point{{5, 5}}}
	out := PlotLogLog([]Series{single}, 40, 10)
	if !strings.Contains(out, "one") {
		t.Fatalf("single point plot:\n%s", out)
	}
}

func TestPlotMinimumDimensions(t *testing.T) {
	s := Series{Name: "s", Points: []Point{{1, 1}, {10, 10}}}
	out := PlotLogLog([]Series{s}, 1, 1) // clamped to minimums
	if out == "" {
		t.Fatal("empty plot")
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	traj := NewTrajectory("shards", "updates/s")
	if traj.Timestamp == "" || traj.GoMaxProcs < 1 {
		t.Fatalf("unstamped trajectory: %+v", traj)
	}
	traj.Meta = map[string]string{"edges": "1000"}
	traj.AddPoint("flat", 0, 1e6, nil)
	traj.AddPoint("shards=2", 2, 2e6, map[string]float64{"speedup_vs_flat": 2})
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := traj.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "shards" || got.Unit != "updates/s" || len(got.Points) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Points[1].Extra["speedup_vs_flat"] != 2 {
		t.Fatalf("extra lost: %+v", got.Points[1])
	}
	if got.Meta["edges"] != "1000" {
		t.Fatalf("meta lost: %+v", got.Meta)
	}
	if _, err := ReadTrajectory(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}
