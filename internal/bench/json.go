package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Trajectory is the schema of the BENCH_*.json artifacts the CI bench-smoke
// job uploads: one benchmark family per file, with enough environment
// context (host shape, commit supplied via Meta) that points from different
// runs can be compared over time. The perf trajectory of the project is the
// accumulated sequence of these files.
type Trajectory struct {
	// Benchmark names the family, e.g. "shards".
	Benchmark string `json:"benchmark"`
	// Unit is the unit of every point's Value, e.g. "updates/s".
	Unit string `json:"unit"`
	// Timestamp is the measurement time in RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// GoMaxProcs records the core budget of the measuring host — shard
	// scaling numbers are meaningless without it.
	GoMaxProcs int `json:"gomaxprocs"`
	// Meta carries free-form context (flag values, commit, host class).
	Meta map[string]string `json:"meta,omitempty"`
	// Points is the measured series.
	Points []TrajectoryPoint `json:"points"`
}

// TrajectoryPoint is one measured sample of a trajectory.
type TrajectoryPoint struct {
	// Label names the configuration, e.g. "shards=4".
	Label string `json:"label"`
	// X is the sweep coordinate (shard count, batch size, ...).
	X float64 `json:"x"`
	// Value is the measurement in the trajectory's Unit.
	Value float64 `json:"value"`
	// Extra carries secondary per-point measurements (speedup, balance).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// NewTrajectory returns a trajectory stamped with the current time and
// host shape.
func NewTrajectory(benchmark, unit string) *Trajectory {
	return &Trajectory{
		Benchmark:  benchmark,
		Unit:       unit,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// AddPoint appends one sample.
func (t *Trajectory) AddPoint(label string, x, value float64, extra map[string]float64) {
	t.Points = append(t.Points, TrajectoryPoint{Label: label, X: x, Value: value, Extra: extra})
}

// WriteFile writes the trajectory as indented JSON, atomically enough for
// CI (temp file + rename, so a crashed run never leaves a torn artifact).
func (t *Trajectory) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadTrajectory loads a trajectory written by WriteFile.
func ReadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &t, nil
}
