package shard

import (
	"fmt"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/stats"
)

// feedGroup streams a deterministic batch set into a group and returns the
// materialized merged matrix as the reference answer.
func feedGroup(t *testing.T, g *Group[uint64], seed uint64) *gb.Matrix[uint64] {
	t.Helper()
	rows, cols, vals := genBatches(t, 16, 400, seed)
	for k := range rows {
		if err := g.Update(rows[k], cols[k], vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	q, err := g.Query()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestPushdownMatchesMaterialized is the read-side correctness keystone:
// every pushdown query — per-shard partials merged at read time — must be
// bit-identical to reducing the materialized merged matrix, which the
// original implementation did (and TestGroupMatchesFlat ties to the flat
// path). Covers NVals, Total, row/col sums, row/col degrees, top-k, and
// Lookup, across shard counts, both before and after Close.
func TestPushdownMatchesMaterialized(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			g, err := NewGroup[uint64](testDim, testDim, testConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			q := feedGroup(t, g, uint64(40+shards))
			check := func(t *testing.T) {
				t.Helper()
				plus := gb.Plus[uint64]()

				nvals, err := g.NVals()
				if err != nil {
					t.Fatal(err)
				}
				if nvals != q.NVals() {
					t.Fatalf("NVals = %d, want %d", nvals, q.NVals())
				}

				total, err := g.Total()
				if err != nil {
					t.Fatal(err)
				}
				wantTotal, err := gb.ReduceScalar(q, plus)
				if err != nil {
					t.Fatal(err)
				}
				if total != wantTotal {
					t.Fatalf("Total = %d, want %d", total, wantTotal)
				}

				vecChecks := []struct {
					name string
					got  func() (*gb.Vector[uint64], error)
					want func() (*gb.Vector[uint64], error)
				}{
					{"RowSums", g.RowSums, func() (*gb.Vector[uint64], error) { return gb.ReduceRows(q, plus) }},
					{"ColSums", g.ColSums, func() (*gb.Vector[uint64], error) { return gb.ReduceCols(q, plus) }},
					{"RowDegrees", g.RowDegrees, func() (*gb.Vector[uint64], error) { return stats.OutDegrees(q) }},
					{"ColDegrees", g.ColDegrees, func() (*gb.Vector[uint64], error) { return stats.InDegrees(q) }},
				}
				for _, vc := range vecChecks {
					got, err := vc.got()
					if err != nil {
						t.Fatal(err)
					}
					want, err := vc.want()
					if err != nil {
						t.Fatal(err)
					}
					if !gb.VecEqual(got, want) {
						t.Fatalf("%s: pushdown vector differs from materialized reduction (nvals %d vs %d)",
							vc.name, got.NVals(), want.NVals())
					}
				}

				for _, k := range []int{0, 1, 5, 1 << 20} {
					top, err := g.TopRows(k)
					if err != nil {
						t.Fatal(err)
					}
					vec, err := gb.ReduceRows(q, plus)
					if err != nil {
						t.Fatal(err)
					}
					want, err := stats.SelectTopK(vec, k)
					if err != nil {
						t.Fatal(err)
					}
					if len(top) != len(want) {
						t.Fatalf("TopRows(%d) length %d, want %d", k, len(top), len(want))
					}
					for i := range top {
						if top[i] != want[i] {
							t.Fatalf("TopRows(%d)[%d] = %+v, want %+v", k, i, top[i], want[i])
						}
					}
				}

				// Lookup every stored cell of a row slice plus an absent one.
				count := 0
				q.Iterate(func(i, j gb.Index, v uint64) bool {
					got, ok, err := g.Lookup(i, j)
					if err != nil {
						t.Fatal(err)
					}
					if !ok || got != v {
						t.Fatalf("Lookup(%d,%d) = %d,%v; want %d,true", i, j, got, ok, v)
					}
					count++
					return count < 25
				})
				if _, ok, err := g.Lookup(testDim-1, testDim-1); err != nil || ok {
					t.Fatalf("Lookup(absent) = ok=%v err=%v; want false, nil", ok, err)
				}
				if _, _, err := g.Lookup(testDim, 0); err == nil {
					t.Fatal("Lookup out of bounds should fail")
				}
			}
			check(t)
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			check(t) // the pushdown path must keep working post-Close
		})
	}
}

// TestAggregateAllMatchesIndividuals checks the single-barrier combined
// snapshot agrees with the individual pushdown queries on a quiescent
// group (no ingest between calls, so they all see the same state).
func TestAggregateAllMatchesIndividuals(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	feedGroup(t, g, 77)
	agg, err := g.AggregateAll()
	if err != nil {
		t.Fatal(err)
	}
	nvals, err := g.NVals()
	if err != nil {
		t.Fatal(err)
	}
	if agg.NVals != nvals {
		t.Fatalf("AggregateAll.NVals = %d, NVals() = %d", agg.NVals, nvals)
	}
	total, err := g.Total()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Total != total {
		t.Fatalf("AggregateAll.Total = %d, Total() = %d", agg.Total, total)
	}
	pairs := []struct {
		name string
		got  *gb.Vector[uint64]
		want func() (*gb.Vector[uint64], error)
	}{
		{"RowSums", agg.RowSums, g.RowSums},
		{"ColSums", agg.ColSums, g.ColSums},
		{"RowDegrees", agg.RowDegrees, g.RowDegrees},
		{"ColDegrees", agg.ColDegrees, g.ColDegrees},
	}
	for _, p := range pairs {
		want, err := p.want()
		if err != nil {
			t.Fatal(err)
		}
		if !gb.VecEqual(p.got, want) {
			t.Fatalf("AggregateAll.%s differs from %s()", p.name, p.name)
		}
	}
}

// TestPushdownOnEmptyGroup checks the zero-traffic edge: empty vectors,
// zero counts, no phantom entries.
func TestPushdownOnEmptyGroup(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if n, err := g.NVals(); err != nil || n != 0 {
		t.Fatalf("NVals = %d, %v; want 0, nil", n, err)
	}
	if total, err := g.Total(); err != nil || total != 0 {
		t.Fatalf("Total = %d, %v; want 0, nil", total, err)
	}
	v, err := g.RowSums()
	if err != nil {
		t.Fatal(err)
	}
	if v.NVals() != 0 {
		t.Fatalf("RowSums on empty group has %d entries", v.NVals())
	}
	top, err := g.TopRows(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 0 {
		t.Fatalf("TopRows on empty group returned %d entries", len(top))
	}
}
