package shard

import (
	"os"
	"path/filepath"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

// Kill-point tests for the exactly-once session state: every crash window
// must recover a session table consistent with the recovered matrix —
// never ahead of it (that would silently drop a retransmitted frame whose
// entries died with the crash) — and a full retransmission of the stream
// into the recovered group must converge to the reference, duplicates
// dropped, gaps refilled.

// ktSessApply streams the given batch indices as session frames: batch i
// rides seq i+1 under session "sess-kt".
func ktSessApply(t *testing.T, g *Group[uint64], batches []int) {
	t.Helper()
	for _, i := range batches {
		r, c, v := ktBatch(i)
		dup, err := g.UpdateSession("sess-kt", uint64(i)+1, r, c, v)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if dup {
			t.Fatalf("batch %d unexpectedly deduplicated on first send", i)
		}
	}
}

// ktSessReplay retransmits the given batches and reports how many the
// group frontier dropped as duplicates.
func ktSessReplay(t *testing.T, g *Group[uint64], batches []int) (dups int) {
	t.Helper()
	for _, i := range batches {
		r, c, v := ktBatch(i)
		dup, err := g.UpdateSession("sess-kt", uint64(i)+1, r, c, v)
		if err != nil {
			t.Fatalf("replay batch %d: %v", i, err)
		}
		if dup {
			dups++
		}
	}
	return dups
}

func TestSessionKillPointRecovery(t *testing.T) {
	const noSync = 1 << 30
	cases := []struct {
		name string
		// run drives g to the crash point and returns the crash-state copy.
		run        func(t *testing.T, g *Group[uint64], dir string) string
		want       []int  // batches the recovered state must equal
		wantResume uint64 // recovered ResumeSeq("sess-kt")
		replay     []int  // full-stream retransmit into the recovered group
		wantDups   int    // how many of the replayed frames must dedup
		final      []int  // state after the retransmit
	}{
		{
			// The window between a frame's WAL append and its durable
			// table commit: seqs 11..15 are logged by the workers but the
			// crash hits before any barrier syncs them, so both their
			// entries AND their session seqs must vanish together.
			name: "wal-append-before-table-commit",
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktSessApply(t, g, seq(0, 10))
				if err := g.Flush(); err != nil {
					t.Fatal(err)
				}
				ktSessApply(t, g, seq(10, 15))
				if err := g.Err(); err != nil { // drain: logged, not synced
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want:       seq(0, 10),
			wantResume: 10,
			replay:     seq(0, 15),
			wantDups:   10,
			final:      seq(0, 15),
		},
		{
			// Crash between the checkpoint's manifest commit and its WAL
			// truncation: the new manifest's session table governs, and
			// the stale pre-checkpoint segments (which still carry session
			// headers for seqs 1..10) must not double-apply or double-
			// advance anything.
			name: "checkpoint-manifest-before-truncation",
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktSessApply(t, g, seq(0, 10))
				var copy string
				g.ckptHook = func(stage string) {
					if stage == "manifest" && copy == "" {
						copy = copyDir(t, dir)
					}
				}
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				g.ckptHook = nil
				if copy == "" {
					t.Fatal("manifest hook never fired")
				}
				return copy
			},
			want:       seq(0, 10),
			wantResume: 10,
			replay:     seq(0, 12),
			wantDups:   10,
			final:      seq(0, 12),
		},
		{
			// Snapshot-only recovery: after a clean checkpoint the WAL is
			// truncated, so the session table survives only if the
			// manifest checkpointed it — there are no session headers left
			// to replay.
			name: "snapshot-only-after-checkpoint",
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktSessApply(t, g, seq(0, 10))
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want:       seq(0, 10),
			wantResume: 10,
			replay:     seq(0, 10),
			wantDups:   10,
			final:      seq(0, 10),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g, err := NewGroup[uint64](ktDim, ktDim, Config{
				Shards:  3,
				Hier:    hier.Config{Cuts: ktCuts},
				Durable: Durability{Dir: dir, SyncEvery: noSync},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			crashDir := tc.run(t, g, dir)
			rec, _ := recoverCopy(t, crashDir)
			if got := rec.ResumeSeq("sess-kt"); got != tc.wantResume {
				t.Fatalf("recovered ResumeSeq = %d, want %d", got, tc.wantResume)
			}
			assertSameState(t, rec, ktRef(t, tc.want))
			if dups := ktSessReplay(t, rec, tc.replay); dups != tc.wantDups {
				t.Fatalf("replay deduplicated %d frames, want %d", dups, tc.wantDups)
			}
			if err := rec.Flush(); err != nil {
				t.Fatal(err)
			}
			assertSameState(t, rec, ktRef(t, tc.final))
		})
	}
}

// buildSessTornDir mirrors buildTornDir under the session protocol: a
// single-shard group syncs ten one-frame session batches (seqs 1..10)
// and the copy's segment is truncated one byte into the final frame.
func buildSessTornDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards:  1,
		Hier:    hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir, SyncEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	for i := 0; i < 10; i++ {
		ktSessApply(t, g, []int{i})
		if err := g.Err(); err != nil { // drain so each batch is one frame
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	crash := copyDir(t, dir)
	torn := 0
	for _, e := range mustReadDir(t, crash) {
		if _, _, isWAL, ok := parseDataFile(e.Name()); ok && isWAL {
			p := filepath.Join(crash, e.Name())
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() == 0 {
				continue
			}
			if err := os.Truncate(p, st.Size()-1); err != nil {
				t.Fatal(err)
			}
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("tore %d segments, want 1", torn)
	}
	return crash
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ents
}

// TestSessionTornTailRecovery pins the invariant that a torn final record
// drops its session seq along with its entries: the recovered frontier is
// 9, so the client's retransmit of seq 10 applies (not dedups) and the
// stream completes without a hole.
func TestSessionTornTailRecovery(t *testing.T) {
	crash := buildSessTornDir(t)
	rec, st := recoverCopy(t, crash)
	if st.TornTails != 1 || st.ReplayedBatches != 9 {
		t.Fatalf("TornTails=%d ReplayedBatches=%d, want 1/9", st.TornTails, st.ReplayedBatches)
	}
	if got := rec.ResumeSeq("sess-kt"); got != 9 {
		t.Fatalf("recovered ResumeSeq = %d, want 9 (the torn seq 10 must not survive)", got)
	}
	assertSameState(t, rec, ktRef(t, seq(0, 9)))
	// The frame the tear destroyed is retransmitted: seq 9 dedups, the
	// torn seq 10 must apply.
	if dups := ktSessReplay(t, rec, seq(8, 10)); dups != 1 {
		t.Fatalf("replay deduplicated %d frames, want 1 (seq 9 only)", dups)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, rec, ktRef(t, seq(0, 10)))
}

// TestSessionMinFrontierUnderReport pins the conservative frontier: a
// frame whose entries all hash to one shard leaves the other shards'
// tables behind, so the recovered resume frontier is the MIN over shards
// — under-reported. The client retransmits the frame and the per-shard
// high-water tables absorb the overlap: the matrix must not double-count.
func TestSessionMinFrontierUnderReport(t *testing.T) {
	const noSync = 1 << 30
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards:  3,
		Hier:    hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir, SyncEvery: noSync},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ktSessApply(t, g, seq(0, 10))
	// Seq 11: a single-cell frame — exactly one shard's table reaches 11.
	one := []gb.Index{42}
	if dup, err := g.UpdateSession("sess-kt", 11, one, one, []uint64{5}); err != nil || dup {
		t.Fatalf("seq 11: dup=%v err=%v", dup, err)
	}
	if err := g.Flush(); err != nil { // everything above is fully durable
		t.Fatal(err)
	}
	rec, _ := recoverCopy(t, copyDir(t, dir))
	if got := rec.ResumeSeq("sess-kt"); got != 10 {
		t.Fatalf("recovered ResumeSeq = %d, want 10 (min over shards; seq 11 touched one shard)", got)
	}
	// The minting floor is the other direction: seq 11 lives in one
	// shard's table, so a resuming writer that reused it for new data
	// would be silently dup-dropped there. MintSeq must over-report.
	if got := rec.MintSeq("sess-kt"); got != 11 {
		t.Fatalf("recovered MintSeq = %d, want 11 (max over shards)", got)
	}
	// The client, told 10, retransmits seq 11. The group frontier (also
	// 10) lets it through; the owning shard's table says 11 and drops it.
	if dup, err := rec.UpdateSession("sess-kt", 11, one, one, []uint64{5}); err != nil || dup {
		t.Fatalf("retransmit of seq 11: dup=%v err=%v (group frontier must under-report)", dup, err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	ref := ktRef(t, seq(0, 10))
	if err := ref.Update(one, one, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, rec, ref)
}
