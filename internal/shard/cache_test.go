package shard

import (
	"testing"

	"hhgb/internal/gb"
)

// fillGroup streams a deterministic batch and barriers it in.
func fillGroup(t *testing.T, g *Group[uint64], seed uint64, n int) {
	t.Helper()
	rows := make([]gb.Index, n)
	cols := make([]gb.Index, n)
	vals := make([]uint64, n)
	for k := range rows {
		x := seed + uint64(k)
		rows[k] = gb.Index((x * 2654435761) % 1024)
		cols[k] = gb.Index((x*2246822519 + 3) % 1024)
		vals[k] = x%5 + 1
	}
	if err := g.Update(rows, cols, vals); err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
}

// snapshotAggregates runs every cached pushdown and returns the answers
// for later equality checks.
type aggSnapshot struct {
	nvals int
	total uint64
	rowS  []uint64
	colD  []uint64
}

func takeSnapshot(t *testing.T, g *Group[uint64]) aggSnapshot {
	t.Helper()
	var s aggSnapshot
	var err error
	if s.nvals, err = g.NVals(); err != nil {
		t.Fatal(err)
	}
	if s.total, err = g.Total(); err != nil {
		t.Fatal(err)
	}
	rs, err := g.RowSums()
	if err != nil {
		t.Fatal(err)
	}
	_, s.rowS = rs.ExtractTuples()
	cd, err := g.ColDegrees()
	if err != nil {
		t.Fatal(err)
	}
	_, s.colD = cd.ExtractTuples()
	return s
}

func equalSnap(a, b aggSnapshot) bool {
	if a.nvals != b.nvals || a.total != b.total || len(a.rowS) != len(b.rowS) || len(a.colD) != len(b.colD) {
		return false
	}
	for i := range a.rowS {
		if a.rowS[i] != b.rowS[i] {
			return false
		}
	}
	for i := range a.colD {
		if a.colD[i] != b.colD[i] {
			return false
		}
	}
	return true
}

// TestPushdownCacheHitAndInvalidate proves the satellite contract: on a
// quiescent stream, repeated pushdown queries are pure cache hits (zero
// new misses); an ingest batch invalidates exactly the shards it touched;
// and cached answers are always bit-identical to recomputed ones.
func TestPushdownCacheHitAndInvalidate(t *testing.T) {
	g, err := NewGroup[uint64](1024, 1024, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	fillGroup(t, g, 1, 500)

	// Cold: every per-shard quantity is a miss.
	first := takeSnapshot(t, g)
	cold := g.CacheStats()
	if cold.Hits != 0 || cold.Misses == 0 {
		t.Fatalf("cold stats = %+v, want 0 hits and some misses", cold)
	}

	// Quiescent repeat: identical answers, pure hits.
	second := takeSnapshot(t, g)
	if !equalSnap(first, second) {
		t.Fatalf("cached snapshot differs: %+v vs %+v", first, second)
	}
	warm := g.CacheStats()
	if warm.Misses != cold.Misses {
		t.Fatalf("quiescent queries recomputed: misses %d -> %d", cold.Misses, warm.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Fatalf("quiescent queries did not hit the cache: %+v", warm)
	}

	// AggregateAll needs all six quantities, and the snapshot primed only
	// four — so the first call recomputes (filling the rest), after which
	// a repeat is hit-only.
	agg, err := g.AggregateAll()
	if err != nil {
		t.Fatal(err)
	}
	if agg.NVals != first.nvals || agg.Total != first.total {
		t.Fatalf("AggregateAll = %d/%d, want %d/%d", agg.NVals, agg.Total, first.nvals, first.total)
	}
	primed := g.CacheStats()
	if _, err := g.AggregateAll(); err != nil {
		t.Fatal(err)
	}
	afterAgg := g.CacheStats()
	if afterAgg.Misses != primed.Misses {
		t.Fatalf("warm AggregateAll recomputed: misses %d -> %d", primed.Misses, afterAgg.Misses)
	}

	// Ingest invalidates: the next snapshot must recompute (new misses)
	// and reflect the new state.
	fillGroup(t, g, 7777, 300)
	third := takeSnapshot(t, g)
	if equalSnap(first, third) {
		t.Fatal("snapshot unchanged after ingest — stale cache served")
	}
	invalidated := g.CacheStats()
	if invalidated.Misses == afterAgg.Misses {
		t.Fatal("no recomputation after ingest — invalidation failed")
	}

	// And the recomputed answers must equal a fresh group fed the same
	// combined stream (cache transparency end to end).
	ref, err := NewGroup[uint64](1024, 1024, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	fillGroup(t, ref, 1, 500)
	fillGroup(t, ref, 7777, 300)
	want := takeSnapshot(t, ref)
	if !equalSnap(third, want) {
		t.Fatalf("post-invalidation snapshot %+v != reference %+v", third, want)
	}
}

// TestAggregateAllPrimesVectorCache proves the shared-fill: one
// AggregateAll materialization makes every later individual pushdown a
// hit.
func TestAggregateAllPrimesVectorCache(t *testing.T) {
	g, err := NewGroup[uint64](1024, 1024, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	fillGroup(t, g, 3, 400)
	if _, err := g.AggregateAll(); err != nil {
		t.Fatal(err)
	}
	primed := g.CacheStats()
	takeSnapshot(t, g) // NVals, Total, RowSums, ColDegrees
	after := g.CacheStats()
	if after.Misses != primed.Misses {
		t.Fatalf("pushdowns after AggregateAll recomputed: misses %d -> %d", primed.Misses, after.Misses)
	}
	if after.Hits == primed.Hits {
		t.Fatal("pushdowns after AggregateAll did not hit")
	}
}

// TestCacheSingleShardReturnsCopies guards the aliasing contract: with one
// shard the merged vector IS the shard's partial, so the query layer must
// hand out copies — a caller mutating its result must not poison the
// cache.
func TestCacheSingleShardReturnsCopies(t *testing.T) {
	g, err := NewGroup[uint64](1024, 1024, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	fillGroup(t, g, 11, 200)
	v1, err := g.RowSums()
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := v1.ExtractTuples()
	if len(idx) == 0 {
		t.Fatal("empty row sums")
	}
	if err := v1.SetElement(idx[0], 999999); err != nil { // caller vandalism
		t.Fatal(err)
	}
	v2, err := g.RowSums() // served from cache
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.ExtractElement(idx[0])
	if err != nil {
		t.Fatal(err)
	}
	if got == 999999 {
		t.Fatal("cache entry aliased to a caller-visible vector")
	}
}
