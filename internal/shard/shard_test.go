package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
)

const testDim gb.Index = 1 << 24

func testConfig(shards int) Config {
	return Config{
		Shards: shards,
		Hier:   hier.Config{Cuts: hier.GeometricCuts(3, 256, 8)},
	}
}

func genBatches(t testing.TB, n, size int, seed uint64) (rows, cols [][]gb.Index, vals [][]uint64) {
	t.Helper()
	g, err := powerlaw.NewRMAT(24, seed)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		r := make([]gb.Index, size)
		c := make([]gb.Index, size)
		v := make([]uint64, size)
		if err := g.Fill(r, c); err != nil {
			t.Fatal(err)
		}
		for i := range v {
			v[i] = 1 + uint64(i%3)
		}
		rows = append(rows, r)
		cols = append(cols, c)
		vals = append(vals, v)
	}
	return rows, cols, vals
}

// TestGroupMatchesFlat is the correctness keystone: the merged query of a
// sharded group must be bit-identical to a single unsharded cascade fed the
// same stream (linearity of GraphBLAS addition).
func TestGroupMatchesFlat(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rows, cols, vals := genBatches(t, 20, 500, 7)
			g, err := NewGroup[uint64](testDim, testDim, testConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			flat := hier.MustNew[uint64](testDim, testDim, testConfig(shards).Hier)
			for k := range rows {
				if err := g.Update(rows[k], cols[k], vals[k]); err != nil {
					t.Fatal(err)
				}
				if err := flat.Update(rows[k], cols[k], vals[k]); err != nil {
					t.Fatal(err)
				}
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := g.Query()
			if err != nil {
				t.Fatal(err)
			}
			want, err := flat.Query()
			if err != nil {
				t.Fatal(err)
			}
			if !gb.Equal(got, want) {
				t.Fatalf("sharded query (nvals %d) differs from flat query (nvals %d)", got.NVals(), want.NVals())
			}
		})
	}
}

// TestConcurrentProducers hammers one group from many goroutines; with
// -race this doubles as the data-race proof for the ingest path.
func TestConcurrentProducers(t *testing.T) {
	const producers = 8
	const batches = 12
	const batchSize = 400
	g, err := NewGroup[uint64](testDim, testDim, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rows, cols, vals := genBatches(t, batches, batchSize, uint64(100+p))
			for k := range rows {
				if err := g.Update(rows[k], cols[k], vals[k]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	// Interleave analysis queries with ingest to exercise the barrier.
	for q := 0; q < 3; q++ {
		if _, err := g.NVals(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if want := int64(producers * batches * batchSize); st.Updates != want {
		t.Fatalf("merged Updates = %d, want %d", st.Updates, want)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseLifecycle(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Update([]gb.Index{1, 2}, []gb.Index{3, 4}, []uint64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// Update after Close fails fast.
	if err := g.Update([]gb.Index{1}, []gb.Index{1}, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after Close = %v, want ErrClosed", err)
	}
	// Queries keep working on the drained state.
	n, err := g.NVals()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("NVals after Close = %d, want 2", n)
	}
	if st := g.Stats(); st.Updates != 2 {
		t.Fatalf("Stats after Close: Updates = %d, want 2", st.Updates)
	}
	if lv := g.LevelNVals(); len(lv) != g.Levels() {
		t.Fatalf("LevelNVals length %d, want %d", len(lv), g.Levels())
	}
}

// TestConcurrentQueriesAfterClose is the regression test for the
// post-Close read path: with the workers gone, queries touch the shard
// matrices directly and must be serialized by the group (hier.Matrix
// queries mutate internal counters). Run under -race.
func TestConcurrentQueriesAfterClose(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, vals := genBatches(t, 4, 500, 21)
	for k := range rows {
		if err := g.Update(rows[k], cols[k], vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Query(); err != nil {
				t.Error(err)
			}
			if _, err := g.NVals(); err != nil {
				t.Error(err)
			}
			g.Stats()
			g.LevelNVals()
		}()
	}
	wg.Wait()
}

// TestQueryBatchAtomicity checks that a query concurrent with ingest never
// observes a torn batch: every Update carries a batch whose weights sum to
// a fixed amount, so any barrier-consistent snapshot has a total mass
// divisible by that amount — even while entries sit in producer-local
// appender buffers (the barrier drains them atomically). The concurrent
// probes use the pushdown Total; the final state is cross-checked against
// a full materialization.
func TestQueryBatchAtomicity(t *testing.T) {
	const batchMass = 64 // weights per batch sum to this
	const producers = 3
	const batchesPerProducer = 300
	g, err := NewGroup[uint64](testDim, testDim, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := uint64(p + 1)
			for i := 0; i < batchesPerProducer; i++ {
				rows := make([]gb.Index, batchMass)
				cols := make([]gb.Index, batchMass)
				vals := make([]uint64, batchMass)
				for k := range rows {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					rows[k] = gb.Index(rng % (1 << 20))
					cols[k] = gb.Index((rng >> 20) % (1 << 20))
					vals[k] = 1
				}
				if err := g.Update(rows, cols, vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for q := 0; q < 10; q++ {
		mass, err := g.Total()
		if err != nil {
			t.Fatal(err)
		}
		if mass%batchMass != 0 {
			t.Fatalf("query %d observed a torn batch: total mass %d not a multiple of %d", q, mass, batchMass)
		}
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := g.Query()
	if err != nil {
		t.Fatal(err)
	}
	var mass uint64
	m.Iterate(func(i, j gb.Index, v uint64) bool {
		mass += v
		return true
	})
	if want := uint64(producers * batchesPerProducer * batchMass); mass != want {
		t.Fatalf("final mass %d, want %d", mass, want)
	}
}

func TestUpdateRejectsBadBatches(t *testing.T) {
	g, err := NewGroup[uint64](1<<10, 1<<10, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Update([]gb.Index{1}, []gb.Index{2, 3}, []uint64{1}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("mismatched lengths = %v, want ErrInvalidValue", err)
	}
	if err := g.Update([]gb.Index{1 << 10}, []gb.Index{0}, []uint64{1}); !errors.Is(err, gb.ErrIndexOutOfBounds) {
		t.Fatalf("out of bounds = %v, want ErrIndexOutOfBounds", err)
	}
	// A rejected batch must not be partially ingested.
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Updates != 0 {
		t.Fatalf("Updates after rejected batches = %d, want 0", st.Updates)
	}
}

func TestInputSlicesNotRetained(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rows := []gb.Index{10, 20, 30}
	cols := []gb.Index{1, 2, 3}
	vals := []uint64{5, 5, 5}
	if err := g.Update(rows, cols, vals); err != nil {
		t.Fatal(err)
	}
	// Clobber the caller-owned slices immediately; the async ingest must
	// have copied them.
	for i := range rows {
		rows[i], cols[i], vals[i] = 999, 999, 999
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	q, err := g.Query()
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.ExtractElement(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("entry (10,1) = %d, want 5", v)
	}
}

func TestConfigDefaults(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.NumShards() < 1 {
		t.Fatalf("default shards = %d, want >= 1", g.NumShards())
	}
	if g.Levels() != 1 {
		t.Fatalf("nil cuts should yield a single flat level, got %d", g.Levels())
	}
	if g.NRows() != testDim || g.NCols() != testDim {
		t.Fatalf("dims = %dx%d, want %dx%d", g.NRows(), g.NCols(), testDim, testDim)
	}
}

func TestShardOfBalance(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// A single hot source row (a supernode) must still spread across
	// shards because the hash mixes the column too.
	counts := make([]int, g.NumShards())
	for c := 0; c < 4096; c++ {
		counts[g.shardOf(42, gb.Index(c))]++
	}
	for sh, n := range counts {
		if n < 512 || n > 1536 {
			t.Fatalf("shard %d got %d of 4096 single-row entries; want roughly balanced", sh, n)
		}
	}
}

// BenchmarkGroupIngest measures aggregate ingest throughput at several
// shard counts with GOMAXPROCS concurrent producers. On a >= 4-core
// machine the multi-shard rows show near-linear speedup over shards=1.
func BenchmarkGroupIngest(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const batchSize = 10_000
			rows, cols, vals := genBatches(b, 16, batchSize, 0xbe9c)
			g, err := NewGroup[uint64](testDim, testDim, Config{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					if err := g.Update(rows[k%len(rows)], cols[k%len(cols)], vals[k%len(vals)]); err != nil {
						b.Error(err)
						return
					}
					k++
				}
			})
			if err := g.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*batchSize/b.Elapsed().Seconds(), "updates/s")
		})
	}
}
