package shard

import (
	"testing"

	"hhgb/internal/flight"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

// The append stage — Appender.append partitioning a validated batch into
// slab-backed shard buffers — is the producer-side per-entry hot path and
// must not allocate once each shard's buffer is slab-backed.
//
// Measurement note: AllocsPerRun counts process-global mallocs, so the
// shard workers must stay idle while the loop runs. The test forces that
// by choosing a Handoff far larger than everything the loop appends: no
// buffer ever reaches the handoff size, so no message is sent and the
// workers stay parked on their queues.
func TestAllocBudgetAppenderAppend(t *testing.T) {
	const (
		handoff = 1 << 16
		batch   = 256
		runs    = 100
	)
	g, err := NewGroup[float64](1<<20, 1<<20, Config{
		Shards:  4,
		Handoff: handoff,
		Hier:    hier.Config{Cuts: nil},
	})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()

	a, err := g.NewAppender()
	if err != nil {
		t.Fatalf("NewAppender: %v", err)
	}
	rows := make([]gb.Index, batch)
	cols := make([]gb.Index, batch)
	vals := make([]float64, batch)
	for i := range rows {
		rows[i] = gb.Index(i * 2654435761 % (1 << 20))
		cols[i] = gb.Index(i * 40503 % (1 << 20))
		vals[i] = 1
	}
	// Warm-up: attach a slab to every shard the batch touches. The loop
	// appends runs×batch entries per shard at most, far under handoff, so
	// no handoff (and no worker wake-up) happens inside the measurement.
	if err := a.Append(rows, cols, vals); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if runs*batch >= handoff {
		t.Fatalf("measurement would overflow the handoff buffer: %d >= %d", runs*batch, handoff)
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if err := a.Append(rows, cols, vals); err != nil {
			t.Fatalf("Append: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Appender.Append allocates %.1f/op, budget is 0", allocs)
	}
}

// The tracing plane must be free when it is not sampling: a group with a
// flight recorder wired in (tracing compiled in, as every server now
// runs) and nil spans (the unsampled case — sample rate 0) keeps the
// session ingest path at zero allocations. The dup branch is the one a
// reconnect retransmit storm hammers, so it is measured directly: every
// frame below the accepted frontier must dedup without a single malloc,
// recorder or not.
func TestAllocBudgetSessionDedupTraced(t *testing.T) {
	g, err := NewGroup[float64](1<<20, 1<<20, Config{
		Shards:  4,
		Handoff: 1 << 16,
		Hier:    hier.Config{Cuts: nil},
		Flight:  flight.NewRecorder(0),
	})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()

	rows := []gb.Index{1, 2, 3}
	cols := []gb.Index{4, 5, 6}
	vals := []float64{1, 1, 1}
	// Advance the session frontier past the seq the loop replays, then
	// drain so the workers are parked before the measurement.
	if dup, err := g.UpdateSessionSpan("storm", 8, rows, cols, vals, nil); err != nil || dup {
		t.Fatalf("seed frame: dup=%v err=%v", dup, err)
	}
	if err := g.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		dup, err := g.UpdateSessionSpan("storm", 3, rows, cols, vals, nil)
		if err != nil || !dup {
			t.Fatalf("dup=%v err=%v, want dup", dup, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("traced session dedup allocates %.1f/op, budget is 0", allocs)
	}
}

// Single-shard groups take the bulk-copy branch of append; pin it too.
func TestAllocBudgetAppenderAppendSingleShard(t *testing.T) {
	g, err := NewGroup[float64](1<<20, 1<<20, Config{
		Shards:  1,
		Handoff: 1 << 16,
		Hier:    hier.Config{Cuts: nil},
	})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	defer g.Close()
	a, err := g.NewAppender()
	if err != nil {
		t.Fatalf("NewAppender: %v", err)
	}
	rows := make([]gb.Index, 256)
	cols := make([]gb.Index, 256)
	vals := make([]float64, 256)
	for i := range rows {
		rows[i], cols[i], vals[i] = gb.Index(i), gb.Index(i+1), 1
	}
	if err := a.Append(rows, cols, vals); err != nil {
		t.Fatalf("Append: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Append(rows, cols, vals); err != nil {
			t.Fatalf("Append: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm single-shard Append allocates %.1f/op, budget is 0", allocs)
	}
}
