//go:build !unix

package shard

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// lockDir on platforms without flock(2) falls back to an advisory pid
// lock file claimed with an O_EXCL create. This scheme has two windows
// flock does not: a crash between create and pid write leaves an
// unparseable LOCK an operator must delete by hand, and two processes
// observing the same dead owner can race the steal. It exists so the
// package still builds and behaves reasonably off unix; deployments that
// need the hard guarantee run where flock is available.
func lockDir(dir string) (io.Closer, error) {
	path := filepath.Join(dir, lockName)
	me := []byte(strconv.Itoa(os.Getpid()) + "\n")
	for attempt := 0; attempt < 4; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if _, err := f.Write(me); err == nil {
				err = f.Sync()
			}
			if err != nil {
				// Never leave a half-written LOCK behind: an empty file
				// would read as "held by an unknown owner" forever.
				f.Close()
				os.Remove(path)
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			return pidLock{path: path}, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // holder just released; retry the claim
			}
			return nil, err
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil || (pid != os.Getpid() && processAlive(pid)) {
			// Unparseable counts as held: the owner may be mid-write,
			// and corrupting a live group is worse than asking the
			// operator to delete a stale LOCK by hand.
			return nil, fmt.Errorf("shard: %s is locked by %q; remove %s only if that owner is gone", dir, strings.TrimSpace(string(data)), lockName)
		}
		os.Remove(path) // dead, or our own crash-abandoned lock: steal and retry
	}
	return nil, fmt.Errorf("shard: could not claim %s under contention", filepath.Join(dir, lockName))
}

// pidLock releases the fallback lock by deleting the LOCK file.
type pidLock struct{ path string }

func (l pidLock) Close() error { return os.Remove(l.path) }

// processAlive reports whether pid names a running process. Signal 0 is
// the liveness probe; an indeterminate answer counts as alive, so the
// lock errs toward refusing rather than corrupting.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	return !errors.Is(err, os.ErrProcessDone)
}
