package shard

import (
	"errors"
	"sync"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

// TestAppenderMatchesFlat feeds the same stream through per-producer
// appenders (small handoff so buffers cycle many times) and a flat
// cascade; the merged query must be bit-identical.
func TestAppenderMatchesFlat(t *testing.T) {
	cfg := testConfig(3)
	cfg.Handoff = 64 // force many mid-batch handoffs
	g, err := NewGroup[uint64](testDim, testDim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat := hier.MustNew[uint64](testDim, testDim, cfg.Hier)
	rows, cols, vals := genBatches(t, 12, 500, 99)
	a, err := g.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	for k := range rows {
		if err := a.Append(rows[k], cols[k], vals[k]); err != nil {
			t.Fatal(err)
		}
		if err := flat.Update(rows[k], cols[k], vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := g.Query()
	if err != nil {
		t.Fatal(err)
	}
	want, err := flat.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(got, want) {
		t.Fatalf("appender-fed query (nvals %d) differs from flat (nvals %d)", got.NVals(), want.NVals())
	}
}

// TestAppenderBuffersDrainOnBarrier checks that entries still sitting in
// an appender's local buffers are visible to every query barrier without
// an explicit appender Flush.
func TestAppenderBuffersDrainOnBarrier(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	a, err := g.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Append([]gb.Index{1, 2, 3}, []gb.Index{4, 5, 6}, []uint64{7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	if a.Buffered() != 3 {
		t.Fatalf("Buffered = %d, want 3 (below handoff threshold)", a.Buffered())
	}
	n, err := g.NVals()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("NVals = %d, want 3: query barrier must drain appender buffers", n)
	}
	if a.Buffered() != 0 {
		t.Fatalf("Buffered = %d after barrier, want 0", a.Buffered())
	}
}

// TestAppenderLifecycle covers the error paths: Append/Flush after
// appender Close, Append/Flush/NewAppender after group Close, double
// closes of both, and that a closing appender hands off its buffers.
func TestAppenderLifecycle(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]gb.Index{10}, []gb.Index{20}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := a.Append([]gb.Index{1}, []gb.Index{1}, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after appender Close = %v, want ErrClosed", err)
	}
	if err := a.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after appender Close = %v, want ErrClosed", err)
	}
	// The buffered entry was handed off by Close.
	if n, err := g.NVals(); err != nil || n != 1 {
		t.Fatalf("NVals = %d, %v; want 1, nil", n, err)
	}

	b, err := g.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]gb.Index{11}, []gb.Index{21}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// Group Close drained b's buffer even though b was never closed.
	if n, err := g.NVals(); err != nil || n != 2 {
		t.Fatalf("NVals after group Close = %d, %v; want 2, nil", n, err)
	}
	if err := b.Append([]gb.Index{1}, []gb.Index{1}, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after group Close = %v, want ErrClosed", err)
	}
	if err := b.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("appender Flush after group Close = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil { // detach after group close is fine
		t.Fatal(err)
	}
	if _, err := g.NewAppender(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewAppender after group Close = %v, want ErrClosed", err)
	}
}

// TestGroupFlushAfterClose pins the Flush-after-Close contract: it reports
// the Close outcome (nil on a clean close) instead of whatever the dead
// queues would do, and the group stays queryable.
func TestGroupFlushAfterClose(t *testing.T) {
	g, err := NewGroup[uint64](testDim, testDim, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Update([]gb.Index{1}, []gb.Index{2}, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil { // double Close is idempotent
		t.Fatal(err)
	}
	if err := g.Flush(); err != nil {
		t.Fatalf("Flush after clean Close = %v, want nil", err)
	}
	if err := g.Err(); err != nil {
		t.Fatalf("Err after clean Close = %v, want nil", err)
	}
	if n, err := g.NVals(); err != nil || n != 1 {
		t.Fatalf("NVals after Close = %d, %v; want 1, nil", n, err)
	}
}

// TestConcurrentAppendFlush hammers appenders from many producers while
// other goroutines Flush, query, and finally Close the group — the -race
// proof for the buffered ingest path and its barrier coordination.
func TestConcurrentAppendFlush(t *testing.T) {
	const producers = 4
	const batches = 20
	const batchSize = 200
	cfg := testConfig(3)
	cfg.Handoff = 128
	g, err := NewGroup[uint64](testDim, testDim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a, err := g.NewAppender()
			if err != nil {
				t.Error(err)
				return
			}
			defer a.Close()
			rows, cols, vals := genBatches(t, batches, batchSize, uint64(500+p))
			for k := range rows {
				if err := a.Append(rows[k], cols[k], vals[k]); err != nil {
					t.Error(err)
					return
				}
				if k%7 == 0 {
					if err := a.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	// Concurrent group-level flushes and queries against the appenders.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := g.Flush(); err != nil {
				t.Error(err)
				return
			}
			if _, err := g.NVals(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Updates != int64(producers*batches*batchSize) {
		t.Fatalf("Updates = %d, want %d", st.Updates, producers*batches*batchSize)
	}
}

// TestAppenderRejectsBadBatches checks Append validates like Update: a
// malformed batch is rejected whole with nothing buffered.
func TestAppenderRejectsBadBatches(t *testing.T) {
	g, err := NewGroup[uint64](1<<10, 1<<10, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	a, err := g.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Append([]gb.Index{1}, []gb.Index{2, 3}, []uint64{1}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("mismatched lengths = %v, want ErrInvalidValue", err)
	}
	if err := a.Append([]gb.Index{1 << 10}, []gb.Index{0}, []uint64{1}); !errors.Is(err, gb.ErrIndexOutOfBounds) {
		t.Fatalf("out of bounds = %v, want ErrIndexOutOfBounds", err)
	}
	if a.Buffered() != 0 {
		t.Fatalf("Buffered = %d after rejected batches, want 0", a.Buffered())
	}
}

// TestUpdatePoolReuse drives the pooled Update path long enough that
// appenders are recycled, and checks nothing is lost or duplicated.
func TestUpdatePoolReuse(t *testing.T) {
	cfg := testConfig(4)
	cfg.Handoff = 100
	g, err := NewGroup[uint64](testDim, testDim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const batches = 15
	const batchSize = 333
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rows, cols, vals := genBatches(t, batches, batchSize, uint64(900+p))
			for k := range rows {
				if err := g.Update(rows[k], cols[k], vals[k]); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Updates != int64(producers*batches*batchSize) {
		t.Fatalf("Updates = %d, want %d", st.Updates, producers*batches*batchSize)
	}
}
