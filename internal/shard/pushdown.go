package shard

import (
	"fmt"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/stats"
)

// Pushdown queries.
//
// Every query here runs its per-shard computation on the shard's own
// worker goroutine (through the run barrier, so the snapshot is
// batch-atomic and concurrent with ingest on the other shards) and merges
// the S partial results at read time. Because the hash partition assigns
// each (row, col) cell to exactly one shard, the merges are exact:
//
//   - counts and value totals add (monoid merge),
//   - row/column vectors (sums, degrees) merge elementwise with the plus
//     monoid — a cell contributes on exactly one shard, so no entry is
//     double-counted,
//   - top-k ranks the merged vector with a bounded heap.
//
// The old path — materialize the global Σ over shards and levels, then
// reduce — cost O(total nnz) serially per query. Here the O(shard nnz)
// work runs on S workers concurrently and the serial read-time merge is
// O(result size): vector length for degrees/sums, k for top-k, one cell
// for Lookup, a scalar for counts. The package tests verify every pushdown
// result is bit-identical to reducing the materialized flat matrix.

// shardCache memoizes one shard's pushdown reductions between ingest
// batches. It is owned by the worker goroutine (queries run there, and
// the ingest loop clears it whenever a batch lands — see worker.loop), so
// repeated analytics on a quiescent stream cost only the read-time merge:
// every per-shard scalar, vector, and degree reduction is served from
// here. Cached vectors are materialized (Wait) before they are stored and
// treated as immutable afterwards, so handing the same *gb.Vector to
// several concurrent merges is safe.
type shardCache[T gb.Number] struct {
	nvals *int
	total *T
	vecs  [4]*gb.Vector[T] // indexed by vectorKind
}

// hit/miss bump the worker-owned counters (exposed via CacheStats) and
// mirror them into the registry-level shard metrics (one atomic add).
func (w *worker[T]) hit() {
	w.cacheHits++
	w.met.CacheHits.Inc()
}

func (w *worker[T]) miss() {
	w.cacheMisses++
	w.met.CacheMisses.Inc()
}

// cacheVec stores a freshly computed per-shard vector, materialized so
// later readers never mutate it.
func (w *worker[T]) cacheVec(kind vectorKind, v *gb.Vector[T]) {
	v.Wait()
	w.cache.vecs[kind] = v
}

// CacheCounters aggregates the per-shard pushdown-cache counters: one hit
// or miss is counted per shard per cached quantity a query touches, and
// one invalidation per ingest batch that cleared a non-empty cache.
type CacheCounters struct {
	Hits          int64
	Misses        int64
	Invalidations int64
}

// CacheStats sums the per-shard pushdown cache counters (a barrier, like
// every query).
func (g *Group[T]) CacheStats() CacheCounters {
	counts := make([]CacheCounters, len(g.workers))
	_ = g.run(func(i int, w *worker[T]) {
		counts[i] = CacheCounters{
			Hits:          w.cacheHits,
			Misses:        w.cacheMisses,
			Invalidations: w.cacheInvals,
		}
	})
	var out CacheCounters
	for _, c := range counts {
		out.Hits += c.Hits
		out.Misses += c.Misses
		out.Invalidations += c.Invalidations
	}
	return out
}

// NVals returns the number of distinct stored entries in the logical
// matrix: the per-shard counts, summed.
func (g *Group[T]) NVals() (int, error) {
	ns := make([]int, len(g.workers))
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		if w.cache.nvals != nil {
			w.hit()
			ns[i] = *w.cache.nvals
			return
		}
		w.miss()
		ns[i], errs[i] = w.m.NVals()
		if errs[i] == nil {
			n := ns[i]
			w.cache.nvals = &n
		}
	}); err != nil {
		return 0, err
	}
	if err := firstError(errs); err != nil {
		return 0, err
	}
	total := 0
	for _, n := range ns {
		total += n
	}
	return total, nil
}

// Total returns the sum of every stored value. It is fully incremental:
// each worker reduces its levels directly (value sums are linear, so no
// shard ever materializes its Σ) and the S partial sums add.
func (g *Group[T]) Total() (T, error) {
	parts := make([]T, len(g.workers))
	errs := make([]error, len(g.workers))
	plus := gb.Plus[T]()
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		if w.cache.total != nil {
			w.hit()
			parts[i] = *w.cache.total
			return
		}
		w.miss()
		var acc T
		for l := 0; l < w.m.NumLevels(); l++ {
			s, err := gb.ReduceScalar(w.m.Level(l), plus)
			if err != nil {
				errs[i] = err
				return
			}
			acc = plus.Op(acc, s)
		}
		parts[i] = acc
		w.cache.total = &acc
	}); err != nil {
		var zero T
		return zero, err
	}
	var total T
	if err := firstError(errs); err != nil {
		return total, err
	}
	for _, p := range parts {
		total = plus.Op(total, p)
	}
	return total, nil
}

// Lookup returns the accumulated value of one cell and whether any traffic
// was recorded for it. The cell lives on exactly one shard, so only that
// shard is drained and barriered and only its worker does lookup work —
// O(levels x log shard-nnz), with no materialization anywhere and latency
// independent of the other shards' queue depth.
func (g *Group[T]) Lookup(row, col gb.Index) (T, bool, error) {
	var zero T
	if row >= g.nrows || col >= g.ncols {
		return zero, false, fmt.Errorf("%w: (%d,%d) outside %d x %d", gb.ErrIndexOutOfBounds, row, col, g.nrows, g.ncols)
	}
	sh := g.shardOf(row, col)
	var v T
	var ok bool
	var lookupErr error
	if err := g.runOne(sh, func(w *worker[T]) {
		if w.err != nil {
			lookupErr = w.err
			return
		}
		v, ok, lookupErr = w.m.ExtractElement(row, col)
	}); err != nil {
		return zero, false, err
	}
	if lookupErr != nil {
		return zero, false, fmt.Errorf("shard %d: %w", sh, lookupErr)
	}
	return v, ok, nil
}

// mergeVecs folds per-shard partial vectors elementwise with add. Nil
// partials (shards that computed nothing) are skipped; the merge of all-nil
// returns an empty vector of the given length.
func mergeVecs[T gb.Number](parts []*gb.Vector[T], n gb.Index, add gb.BinaryOp[T]) (*gb.Vector[T], error) {
	var acc *gb.Vector[T]
	for _, p := range parts {
		if p == nil {
			continue
		}
		if acc == nil {
			acc = p
			continue
		}
		var err error
		acc, err = gb.VecEWiseAdd(acc, p, add)
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return gb.NewVector[T](n)
	}
	return acc, nil
}

// vectorKind selects which per-shard vector a pushdown query computes.
type vectorKind int

const (
	rowSums vectorKind = iota
	colSums
	rowDegrees
	colDegrees
)

// shardVector computes one shard's partial vector on the worker goroutine.
// Sums are linear, so they reduce level by level with no materialization;
// degrees count distinct cells (not linear across levels, which can store
// the same cell), so they reduce the shard's materialized Σ.
func shardVector[T gb.Number](m *hier.Matrix[T], kind vectorKind, n gb.Index) (*gb.Vector[T], error) {
	plus := gb.Plus[T]()
	switch kind {
	case rowSums, colSums:
		var acc *gb.Vector[T]
		for l := 0; l < m.NumLevels(); l++ {
			lvl := m.Level(l)
			var v *gb.Vector[T]
			var err error
			if kind == rowSums {
				v, err = gb.ReduceRows(lvl, plus)
			} else {
				v, err = gb.ReduceCols(lvl, plus)
			}
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = v
				continue
			}
			acc, err = gb.VecEWiseAdd(acc, v, plus.Op)
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			return gb.NewVector[T](n)
		}
		return acc, nil
	default:
		q, err := m.Query()
		if err != nil {
			return nil, err
		}
		ones, err := gb.Apply(q, func(T) T { return 1 })
		if err != nil {
			return nil, err
		}
		if kind == rowDegrees {
			return gb.ReduceRows(ones, plus)
		}
		return gb.ReduceCols(ones, plus)
	}
}

// vector runs one pushdown vector query: per-shard partials on the
// workers, merged with the plus monoid at read time.
func (g *Group[T]) vector(kind vectorKind) (*gb.Vector[T], error) {
	n := g.nrows
	if kind == colSums || kind == colDegrees {
		n = g.ncols
	}
	parts := make([]*gb.Vector[T], len(g.workers))
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		if v := w.cache.vecs[kind]; v != nil {
			w.hit()
			parts[i] = v
			return
		}
		w.miss()
		parts[i], errs[i] = shardVector[T](w.m, kind, n)
		if errs[i] == nil {
			w.cacheVec(kind, parts[i])
		}
	}); err != nil {
		return nil, err
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	v, err := mergeVecs(parts, n, gb.Plus[T]().Op)
	if err != nil {
		return nil, err
	}
	if len(g.workers) == 1 {
		// A single-shard merge returns the shard's partial itself, which
		// may be the cached vector; hand the caller a copy so the cache
		// entry stays immutable.
		v = v.Dup()
	}
	return v, nil
}

// RowSums returns the per-row value totals (out-traffic for a traffic
// matrix), one entry per non-empty row.
func (g *Group[T]) RowSums() (*gb.Vector[T], error) { return g.vector(rowSums) }

// ColSums returns the per-column value totals (in-traffic), one entry per
// non-empty column.
func (g *Group[T]) ColSums() (*gb.Vector[T], error) { return g.vector(colSums) }

// RowDegrees returns, per non-empty row, the number of distinct stored
// cells in it (out-degree: destination fan-out).
func (g *Group[T]) RowDegrees() (*gb.Vector[T], error) { return g.vector(rowDegrees) }

// ColDegrees returns, per non-empty column, the number of distinct stored
// cells in it (in-degree: source fan-in).
func (g *Group[T]) ColDegrees() (*gb.Vector[T], error) { return g.vector(colDegrees) }

// TopRows returns the k rows with the largest value totals, in descending
// order with ties broken by lower index — exactly the flat path's answer.
// The per-shard sums are pushed down to the workers; the merge plus a
// bounded-heap selection is all that runs serially.
func (g *Group[T]) TopRows(k int) ([]stats.Top[T], error) {
	v, err := g.RowSums()
	if err != nil {
		return nil, err
	}
	return stats.SelectTopK(v, k)
}

// TopCols returns the k columns with the largest value totals; see TopRows.
func (g *Group[T]) TopCols(k int) ([]stats.Top[T], error) {
	v, err := g.ColSums()
	if err != nil {
		return nil, err
	}
	return stats.SelectTopK(v, k)
}

// Aggregates is a batch-atomic snapshot of every standard aggregate, taken
// in ONE barrier so all fields describe the same instant of the stream
// (chaining the individual queries would let ingest slip between them).
type Aggregates[T gb.Number] struct {
	NVals      int           // distinct stored cells
	Total      T             // sum of all values
	RowSums    *gb.Vector[T] // per-row value totals
	ColSums    *gb.Vector[T] // per-column value totals
	RowDegrees *gb.Vector[T] // per-row distinct-cell counts
	ColDegrees *gb.Vector[T] // per-column distinct-cell counts
}

// AggregateAll computes all pushdown aggregates in a single barrier: each
// worker materializes its own Σ once and derives its six partials from it;
// the merge is monoid/elementwise as in the individual queries.
func (g *Group[T]) AggregateAll() (Aggregates[T], error) {
	type partial struct {
		nvals                  int
		total                  T
		rowS, colS, rowD, colD *gb.Vector[T]
	}
	plus := gb.Plus[T]()
	parts := make([]partial, len(g.workers))
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		c := &w.cache
		if c.nvals != nil && c.total != nil &&
			c.vecs[rowSums] != nil && c.vecs[colSums] != nil &&
			c.vecs[rowDegrees] != nil && c.vecs[colDegrees] != nil {
			w.hit()
			parts[i] = partial{
				nvals: *c.nvals, total: *c.total,
				rowS: c.vecs[rowSums], colS: c.vecs[colSums],
				rowD: c.vecs[rowDegrees], colD: c.vecs[colDegrees],
			}
			return
		}
		w.miss()
		q, err := w.m.Query()
		if err != nil {
			errs[i] = err
			return
		}
		p := partial{nvals: q.NVals()}
		if p.total, err = gb.ReduceScalar(q, plus); err != nil {
			errs[i] = err
			return
		}
		if p.rowS, err = gb.ReduceRows(q, plus); err != nil {
			errs[i] = err
			return
		}
		if p.colS, err = gb.ReduceCols(q, plus); err != nil {
			errs[i] = err
			return
		}
		ones, err := gb.Apply(q, func(T) T { return 1 })
		if err != nil {
			errs[i] = err
			return
		}
		if p.rowD, err = gb.ReduceRows(ones, plus); err != nil {
			errs[i] = err
			return
		}
		if p.colD, err = gb.ReduceCols(ones, plus); err != nil {
			errs[i] = err
			return
		}
		parts[i] = p
		// One Σ paid for all six reductions: cache them all, so the next
		// quiescent query of ANY pushdown kind is a hit.
		n, t := p.nvals, p.total
		c.nvals, c.total = &n, &t
		w.cacheVec(rowSums, p.rowS)
		w.cacheVec(colSums, p.colS)
		w.cacheVec(rowDegrees, p.rowD)
		w.cacheVec(colDegrees, p.colD)
	}); err != nil {
		return Aggregates[T]{}, err
	}
	if err := firstError(errs); err != nil {
		return Aggregates[T]{}, err
	}

	var agg Aggregates[T]
	collect := func(pick func(partial) *gb.Vector[T], n gb.Index) (*gb.Vector[T], error) {
		vs := make([]*gb.Vector[T], len(parts))
		for i, p := range parts {
			vs[i] = pick(p)
		}
		v, err := mergeVecs(vs, n, plus.Op)
		if err != nil {
			return nil, err
		}
		if len(g.workers) == 1 {
			v = v.Dup() // never alias a cache entry to the caller
		}
		return v, nil
	}
	var err error
	for _, p := range parts {
		agg.NVals += p.nvals
		agg.Total = plus.Op(agg.Total, p.total)
	}
	if agg.RowSums, err = collect(func(p partial) *gb.Vector[T] { return p.rowS }, g.nrows); err != nil {
		return Aggregates[T]{}, err
	}
	if agg.ColSums, err = collect(func(p partial) *gb.Vector[T] { return p.colS }, g.ncols); err != nil {
		return Aggregates[T]{}, err
	}
	if agg.RowDegrees, err = collect(func(p partial) *gb.Vector[T] { return p.rowD }, g.nrows); err != nil {
		return Aggregates[T]{}, err
	}
	if agg.ColDegrees, err = collect(func(p partial) *gb.Vector[T] { return p.colD }, g.ncols); err != nil {
		return Aggregates[T]{}, err
	}
	return agg, nil
}
