package shard

import (
	"hhgb/internal/metrics"
)

// Metrics is the shard layer's instrument set. All groups wired to the
// same registry share one set — registration is idempotent, so repeated
// NewMetrics calls against a registry hand back the same series rather
// than colliding. A nil registry yields instruments on the shared discard
// registry: always safe to update, never rendered.
type Metrics struct {
	// BatchesApplied counts ingest batches a shard worker applied to its
	// cascade. Deduplicated retransmissions and batches dropped after a
	// shard error are excluded — this is work done, not work offered.
	BatchesApplied *metrics.Counter
	// EntriesApplied counts the matrix entries inside those batches.
	EntriesApplied *metrics.Counter
	// WALFsync observes the latency of every WAL fsync: group commits,
	// flush barriers, and the per-shard checkpoint syncs alike.
	WALFsync *metrics.Histogram
	// Checkpoint observes the end-to-end duration of each checkpoint
	// that did work: barrier, per-shard fsync + snapshot (+ rotation on
	// the live path), manifest commit, prune. Close's no-op checkpoint
	// on a clean group records nothing.
	Checkpoint *metrics.Histogram
	// CacheHits / CacheMisses count pushdown-cache outcomes, one per
	// shard per cached quantity a query touches (the registry-level sum
	// of the per-group CacheStats counters that have existed since the
	// cache landed). CacheInvalidations counts the ingest batches that
	// cleared a non-empty cache — invalidating an already-empty cache is
	// free and not counted, so the rate reads as "warm reductions lost
	// to writes".
	CacheHits          *metrics.Counter
	CacheMisses        *metrics.Counter
	CacheInvalidations *metrics.Counter
}

// NewMetrics registers (or re-fetches) the shard instrument set on reg.
// A nil reg wires the set to the discard registry.
func NewMetrics(reg *metrics.Registry) *Metrics {
	r := metrics.OrDiscard(reg)
	return &Metrics{
		BatchesApplied: r.Counter("hhgb_shard_batches_applied_total",
			"Ingest batches applied by shard workers (dedup and error drops excluded)."),
		EntriesApplied: r.Counter("hhgb_shard_entries_applied_total",
			"Matrix entries applied by shard workers."),
		WALFsync: r.Histogram("hhgb_shard_wal_fsync_seconds",
			"Write-ahead-log fsync latency (group commits, flush barriers, checkpoints).", nil),
		Checkpoint: r.Histogram("hhgb_shard_checkpoint_seconds",
			"Checkpoint duration: barrier, fsync + snapshot per shard, manifest commit, prune.", nil),
		CacheHits: r.Counter("hhgb_shard_cache_hits_total",
			"Pushdown-cache hits: per-shard reductions served from the worker cache."),
		CacheMisses: r.Counter("hhgb_shard_cache_misses_total",
			"Pushdown-cache misses: per-shard reductions recomputed from the cascade."),
		CacheInvalidations: r.Counter("hhgb_shard_cache_invalidations_total",
			"Ingest batches that cleared a non-empty pushdown cache (warm reductions lost to writes)."),
	}
}

// QueueDepth reports the number of batches sitting unprocessed on the
// shard queues right now. It is a sampled gauge — exact only at a
// barrier — meant for backpressure observability, not control flow.
func (g *Group[T]) QueueDepth() int {
	n := 0
	for _, w := range g.workers {
		n += len(w.in)
	}
	return n
}
