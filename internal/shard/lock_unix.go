//go:build unix

package shard

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
)

// lockDir claims the durability directory's LOCK file via flock(2): the
// claim is atomic (no read-check-write window for two simultaneous
// starters to race through), exclusive across processes, and released by
// the kernel the instant the owning process dies — a crashed owner can
// never leave a stale lock behind. The pid written into the file is an
// operator breadcrumb only; correctness comes from the kernel lock. The
// file is deliberately NOT removed on release: unlinking a lock file
// reopens the classic race where one process holds an fd to the unlinked
// inode while another locks a fresh file of the same name, and both
// believe they own the directory.
func lockDir(dir string) (io.Closer, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("shard: %s is locked by another live group (flock: %v)", dir, err)
	}
	_ = f.Truncate(0)
	_, _ = f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
	return f, nil // closing the file releases the flock
}
