package shard

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hhgb/internal/flight"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/wal"
)

// Durability — the crash-safe half of the sharded frontend.
//
// Each shard worker owns a write-ahead log (one file per shard per
// checkpoint epoch) and logs every ingest batch before applying it, with a
// group-commit sync policy; checkpoints serialize each shard's hierarchical
// matrix into a snapshot file and commit a manifest, after which the
// superseded logs are deleted. The on-disk layout under Durability.Dir:
//
//	MANIFEST.json              dimensions, shard count, cuts, epoch E,
//	                           per-shard snapshot names (committed atomically:
//	                           tmp + fsync + rename + dir fsync)
//	snap-SSSS.EEEEEEEEEE.hier  shard S's hier.Encode snapshot at epoch E
//	wal-SSSS.EEEEEEEEEE.log    shard S's batches logged since epoch E
//	LOCK                       single-owner lock (flock-held on unix; the
//	                           pid inside is an operator breadcrumb)
//
// The invariant every crash window preserves: restoring manifest epoch E's
// snapshots and replaying every surviving wal segment with epoch >= E (in
// ascending epoch order, tolerating a torn final frame at each shard's
// newest segment) yields exactly each shard's durable prefix of the
// stream. At the cross-shard durability points — Flush, Checkpoint, Close
// — the per-shard prefixes line up on a whole-stream prefix (the barrier
// syncs every shard atomically with respect to accepted batches); between
// them, the counter-based group commit runs per shard, so a crash may
// persist a batch's entries on some shards and not others until the next
// barrier. The
// checkpoint protocol orders its steps so this holds at every instant:
//
//	1. per shard, on the worker: fsync the live segment (epoch E), write
//	   snapshot E+1 (tmp + fsync + rename), rotate the log to a fresh
//	   segment E+1;
//	2. commit the manifest naming the epoch-E+1 snapshots;
//	3. delete segments and snapshots with epoch <= E.
//
// A crash before step 2 recovers from the old manifest: snapshot E plus
// the fully-synced segment E plus whatever made it into segment E+1 —
// the same state, reached the long way. A crash between 2 and 3 leaves
// stale files that recovery ignores (epoch < manifest epoch) and prunes.

// DefaultSyncEvery is the default group-commit interval: the per-shard WAL
// is fsynced after this many logged batches. 1 makes every batch durable
// at queue-drain time; larger values amortize the fsync at the cost of a
// longer undurable tail after a crash. Barriers (Flush, Checkpoint, Close)
// always sync regardless.
const DefaultSyncEvery = 64

// Durability configures the per-shard WAL + checkpoint persistence of a
// Group.
type Durability struct {
	// Dir is the directory holding the manifest, WAL segments, and
	// snapshots. Empty disables durability.
	Dir string
	// SyncEvery is the group-commit interval in batches; zero or negative
	// selects DefaultSyncEvery.
	SyncEvery int
}

const (
	manifestName = "MANIFEST.json"
	lockName     = "LOCK"
	// manifestVersion 2 (the exactly-once release) added per-shard session
	// tables to the manifest and a session header to every WAL record. The
	// break from v1 is deliberate and strict — v1 segments would be
	// misparsed under the new record layout, and "v1 but cleanly closed"
	// cannot be told apart from "v1 with a live tail" reliably enough to
	// risk it — so recovery refuses v1 directories outright: re-ingest
	// them (or drain them through a v1 binary into a v2 server) rather
	// than upgrading in place.
	manifestVersion = 2
	walSuffix       = ".log"
	snapSuffix      = ".hier"
)

// heldDirs tracks the durability directories owned by live groups in THIS
// process, each with its released-on-Close lock handle. An on-disk lock
// alone cannot cleanly distinguish a live same-process group from an
// abandoned one, so without this registry a second NewGroup/RecoverGroup
// in the same process could take over a directory out from under a
// running group and prune its live segments.
var (
	heldDirsMu sync.Mutex
	heldDirs   = map[string]io.Closer{}
)

// acquireDirLock claims single-owner access to a durability directory.
// Two live groups over one directory would advance epochs independently
// and prune each other's live segments — silent loss of fsync-confirmed
// data — so the claim is refused while any live owner exists: an
// in-process owner via the heldDirs registry, a foreign process via the
// platform lock on the LOCK file (lockDir: flock(2) on unix — atomic,
// kernel-held, and self-releasing when the owner dies, so a crash can
// never leave a stale lock behind).
func acquireDirLock(dir string) error {
	key, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	heldDirsMu.Lock()
	if _, held := heldDirs[key]; held {
		heldDirsMu.Unlock()
		return fmt.Errorf("shard: %s is already owned by a live group in this process", dir)
	}
	heldDirs[key] = nil // reserve against concurrent in-process claims
	heldDirsMu.Unlock()
	h, err := lockDir(dir)
	heldDirsMu.Lock()
	if err != nil {
		delete(heldDirs, key)
	} else {
		heldDirs[key] = h
	}
	heldDirsMu.Unlock()
	return err
}

// AcquireDirLock claims single-owner access to a directory for a caller
// outside this package (internal/window uses it for a window store's root
// directory; each window's group still claims its own subdirectory through
// NewGroup/RecoverGroup). Semantics match the per-group lock: refused while
// any live owner exists, in this process or another; released by
// ReleaseDirLock, or by the kernel the instant the owning process dies.
func AcquireDirLock(dir string) error { return acquireDirLock(dir) }

// ReleaseDirLock releases a claim taken with AcquireDirLock.
func ReleaseDirLock(dir string) { releaseDirLock(dir) }

func releaseDirLock(dir string) {
	key, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	heldDirsMu.Lock()
	h := heldDirs[key]
	delete(heldDirs, key)
	heldDirsMu.Unlock()
	if h != nil {
		h.Close()
	}
}

func walName(shard int, epoch uint64) string {
	return fmt.Sprintf("wal-%04d.%010d%s", shard, epoch, walSuffix)
}

func snapName(shard int, epoch uint64) string {
	return fmt.Sprintf("snap-%04d.%010d%s", shard, epoch, snapSuffix)
}

// parseDataFile recognizes wal segment and snapshot names, returning the
// shard and epoch they encode.
func parseDataFile(name string) (shard int, epoch uint64, isWAL, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, walSuffix):
		rest, isWAL = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), walSuffix), true
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, snapSuffix):
		rest = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), snapSuffix)
	default:
		return 0, 0, false, false
	}
	shardStr, epochStr, found := strings.Cut(rest, ".")
	if !found {
		return 0, 0, false, false
	}
	s, err1 := strconv.Atoi(shardStr)
	e, err2 := strconv.ParseUint(epochStr, 10, 64)
	if err1 != nil || err2 != nil || s < 0 {
		return 0, 0, false, false
	}
	return s, e, isWAL, true
}

// manifest is the JSON root record naming the current durable state.
type manifest struct {
	Version int      `json:"version"`
	NRows   gb.Index `json:"nrows"`
	NCols   gb.Index `json:"ncols"`
	Shards  int      `json:"shards"`
	Cuts    []int    `json:"cuts"`
	Epoch   uint64   `json:"epoch"`
	// Snapshots has one entry per shard: the snapshot file restoring the
	// shard's state at Epoch, or "" when the shard starts empty (only the
	// initial epoch-0 manifest).
	Snapshots []string `json:"snapshots"`
	// Sessions, when present, has one entry per shard: the shard's
	// exactly-once high-water table at the moment its Epoch snapshot was
	// taken. It makes dedup state survive snapshot-only recovery — after a
	// checkpoint truncates the logs, the manifest is the only carrier of
	// the session frontiers the truncated records held. WAL replay then
	// advances the tables past these seeds.
	Sessions []map[string]uint64 `json:"sessions,omitempty"`
}

func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing %s: %w", manifestName, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d, want %d (v1 directories predate the session-bearing WAL layout and must be re-ingested)", gb.ErrInvalidValue, m.Version, manifestVersion)
	}
	if m.Shards < 1 || len(m.Snapshots) != m.Shards {
		return nil, fmt.Errorf("%w: manifest has %d shards, %d snapshots", gb.ErrInvalidValue, m.Shards, len(m.Snapshots))
	}
	if len(m.Sessions) != 0 && len(m.Sessions) != m.Shards {
		return nil, fmt.Errorf("%w: manifest has %d shards, %d session tables", gb.ErrInvalidValue, m.Shards, len(m.Sessions))
	}
	return &m, nil
}

// commitManifest atomically replaces the manifest: write to a temp file,
// fsync it, rename over the old manifest, fsync the directory. Readers see
// either the old or the new manifest, never a torn one. The directory is
// also fsynced BEFORE the manifest rename, so the snapshot renames the
// manifest is about to reference are durable first — rename ordering
// across a power loss is filesystem-dependent, and a manifest naming
// nonexistent snapshots would be unrecoverable.
func (g *Group[T]) commitManifest(epoch uint64, snaps []string, sessions []map[string]uint64) error {
	m := manifest{
		Version:   manifestVersion,
		NRows:     g.nrows,
		NCols:     g.ncols,
		Shards:    len(g.workers),
		Cuts:      g.cfg.Hier.Cuts,
		Epoch:     epoch,
		Snapshots: snaps,
		Sessions:  sessions,
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	dir := g.cfg.Durable.Dir
	if err := syncDir(dir); err != nil { // persist the snapshot renames first
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// shardWAL is one shard's write-ahead log: a wal.File plus the group-commit
// counter. It is owned by the shard's worker goroutine (barrier callbacks
// run there too), so no locking is needed; after Close the workers are gone
// and any access happens inline under the group's exclusive lock.
type shardWAL[T gb.Number] struct {
	shard     int
	f         *wal.File
	put       func(T) uint64
	met       *Metrics
	rec       *flight.Recorder // nil-safe; fsync events for the flight ring
	syncEvery int
	unsynced  int // batches appended since the last sync
	dirty     int // batches appended since the last snapshotted checkpoint
	buf       []byte
}

// logBatch frames one ingest batch into the log — the exactly-once dedup
// key first, then the batch record — and applies the group-commit policy:
// every syncEvery-th batch forces an fsync. Unkeyed batches (local
// ingest) carry the two-byte empty header.
func (l *shardWAL[T]) logBatch(sess string, seq uint64, rows, cols []gb.Index, vals []T) error {
	var err error
	l.buf, err = wal.AppendSessionHeader(l.buf[:0], sess, seq)
	if err != nil {
		return err
	}
	l.buf = wal.AppendBatchRecord(l.buf, rows, cols, vals, l.put)
	if err := l.f.Append(l.buf); err != nil {
		return err
	}
	l.unsynced++
	l.dirty++
	if l.unsynced >= l.syncEvery {
		return l.sync()
	}
	return nil
}

// sync makes every logged batch crash-durable; with nothing appended since
// the last successful sync it is free (so Flush on a quiescent stream
// costs no fsyncs). The group-commit counter resets only on success: a
// failed fsync may have dropped dirty pages (on Linux a retry can report
// success without rewriting them), so the error must keep propagating
// until the shard is poisoned, never be absorbed.
func (l *shardWAL[T]) sync() error {
	if l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	d := time.Since(start)
	l.met.WALFsync.Observe(d.Seconds())
	l.rec.Record(flight.KindWALFsync, 0, "", 0, uint64(l.shard), uint64(l.unsynced), d)
	l.unsynced = 0
	return nil
}

// rotate starts a fresh segment for the given epoch and fsyncs its
// directory entry immediately: a Flush can group-commit batches into the
// new segment before the checkpoint's manifest commit runs, and a durable
// file in a lost directory entry is no durability at all. The old segment
// stays on disk until the checkpoint that superseded it commits and
// prunes.
func (l *shardWAL[T]) rotate(dir string, epoch uint64) error {
	nf, err := l.f.Rotate(filepath.Join(dir, walName(l.shard, epoch)))
	if err != nil {
		return err
	}
	l.f = nf
	l.unsynced = 0
	return syncDir(dir)
}

func (l *shardWAL[T]) close() error { return l.f.Close() }

// defaultCodec picks the lossless wire codec for T: bit-exact for float
// types, sign-preserving two's-complement for every integer type. The
// probe works for named types too — T(1)/T(2) is 0 exactly when T
// truncates like an integer.
func defaultCodec[T gb.Number]() gb.Codec[T] {
	if probe := T(1) / T(2); probe != T(0) {
		return gb.Float64Codec[T]()
	}
	return gb.Int64Codec[T]()
}

// initDurability prepares a FRESH durability directory for a new group:
// epoch-0 WAL segments for every shard and an initial manifest with no
// snapshots. It refuses a directory that already holds a manifest — that
// state belongs to an earlier group and should be restored with
// RecoverGroup, not silently shadowed.
func (g *Group[T]) initDurability() error {
	dir := g.cfg.Durable.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return fmt.Errorf("shard: %s already holds a durable group; use RecoverGroup to restore it", dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err := acquireDirLock(dir); err != nil {
		return err
	}
	if err := g.openLogs(0); err != nil {
		releaseDirLock(dir)
		return err
	}
	if err := g.commitManifest(0, make([]string, len(g.workers)), nil); err != nil {
		g.closeLogs()
		releaseDirLock(dir)
		return err
	}
	return nil
}

// openLogs creates a fresh WAL segment per shard at the given epoch and
// attaches the shardWAL handles to the workers. On failure every segment
// already opened is closed again — a caller retrying against a flaky
// environment must not leak a descriptor per attempt.
func (g *Group[T]) openLogs(epoch uint64) error {
	for i, w := range g.workers {
		f, err := wal.Create(filepath.Join(g.cfg.Durable.Dir, walName(i, epoch)))
		if err != nil {
			g.closeLogs()
			return err
		}
		w.log = &shardWAL[T]{
			shard:     i,
			f:         f,
			put:       g.codec.Put,
			met:       g.cfg.Metrics,
			rec:       g.cfg.Flight,
			syncEvery: g.cfg.Durable.SyncEvery,
		}
	}
	return nil
}

// closeLogs closes and detaches whatever shard logs are open; error-path
// cleanup only (Close handles the normal shutdown itself).
func (g *Group[T]) closeLogs() {
	for _, w := range g.workers {
		if w.log != nil {
			w.log.close()
			w.log = nil
		}
	}
}

// Checkpoint makes the entire accepted stream durable and compact: a
// barrier (batch-atomic, like every query) at which each shard fsyncs its
// WAL, serializes its hierarchical matrix into a snapshot file, and rotates
// its log; then the manifest is committed atomically and the superseded
// logs and snapshots are deleted. After Checkpoint returns, recovery cost
// is the snapshot decode alone — the logs have been truncated.
//
// On a non-durable group it returns ErrNotDurable; after Close, ErrClosed
// (Close already took a final checkpoint).
func (g *Group[T]) Checkpoint() error {
	if g.cfg.Durable.Dir == "" {
		return ErrNotDurable
	}
	g.ckptMu.Lock()
	defer g.ckptMu.Unlock()
	start := time.Now()
	defer func() { g.cfg.Metrics.Checkpoint.Observe(time.Since(start).Seconds()) }()
	g.epoch++           // advance even on failure: names are never reused
	g.ckptFailed = true // until this attempt fully commits
	epoch := g.epoch
	g.cfg.Flight.Record(flight.KindCheckpointBegin, 0, "", 0, epoch, 0, 0)
	defer func() { g.cfg.Flight.Record(flight.KindCheckpointEnd, 0, "", 0, epoch, 0, time.Since(start)) }()
	accepted := g.snapshotAccepted()
	errs := make([]error, len(g.workers))
	snaps := make([]string, len(g.workers))
	tables := make([]map[string]uint64, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		snaps[i], tables[i], errs[i] = g.checkpointShard(w, i, epoch, true)
	}); err != nil {
		return err
	}
	if err := firstError(errs); err != nil {
		return err
	}
	if err := g.commitEpoch(epoch, snaps, tables); err != nil {
		return err
	}
	g.commitDurableSessions(accepted)
	return nil
}

// commitEpoch is the shared commit tail of every checkpoint flavor: the
// manifest rename that makes epoch's snapshots authoritative, then the
// pruning of everything they supersede. Both the barrier path (Checkpoint)
// and the inline path (Close) MUST go through it so their crash-window
// guarantees never diverge.
func (g *Group[T]) commitEpoch(epoch uint64, snaps []string, sessions []map[string]uint64) error {
	g.hook("snapshots")
	if err := g.commitManifest(epoch, snaps, sessions); err != nil {
		return err
	}
	g.hook("manifest")
	g.prune(epoch)
	g.ckptFailed = false
	return nil
}

// checkpointLocked is Checkpoint's shard loop run inline — used by Close,
// which holds both ckptMu and mu with the workers already stopped. No log
// rotation: nothing will ever be appended again, so a fresh segment would
// only litter the directory (Close closes the old, pruned-away segments
// right after). When nothing was logged since the last committed
// checkpoint, the whole step is skipped — the on-disk epoch already
// describes the final state exactly, and re-encoding every shard would
// double shutdown cost for nothing.
func (g *Group[T]) checkpointLocked() error {
	if !g.ckptFailed {
		clean := true
		for _, w := range g.workers {
			if w.log == nil || w.log.dirty > 0 {
				clean = false
				break
			}
		}
		if clean {
			return nil
		}
	}
	start := time.Now()
	defer func() { g.cfg.Metrics.Checkpoint.Observe(time.Since(start).Seconds()) }()
	g.epoch++
	g.ckptFailed = true
	epoch := g.epoch
	g.cfg.Flight.Record(flight.KindCheckpointBegin, 0, "", 0, epoch, 0, 0)
	defer func() { g.cfg.Flight.Record(flight.KindCheckpointEnd, 0, "", 0, epoch, 0, time.Since(start)) }()
	accepted := g.snapshotAccepted()
	snaps := make([]string, len(g.workers))
	tables := make([]map[string]uint64, len(g.workers))
	for i, w := range g.workers {
		s, tab, err := g.checkpointShard(w, i, epoch, false)
		if err != nil {
			return err
		}
		snaps[i], tables[i] = s, tab
	}
	if err := g.commitEpoch(epoch, snaps, tables); err != nil {
		return err
	}
	g.commitDurableSessions(accepted)
	return nil
}

// checkpointShard runs one shard's checkpoint steps on the shard's own
// goroutine (or inline once the workers are stopped): sync the live
// segment, write the epoch snapshot, and — when the group keeps running —
// rotate the log. Order matters: the sync must precede the rotation so a
// crash anywhere in between leaves a replayable segment chain. It also
// copies the shard's session high-water table (safe here: the callback
// runs on the table's owning goroutine) for the manifest, which must
// carry the dedup frontier the about-to-be-truncated records held.
func (g *Group[T]) checkpointShard(w *worker[T], i int, epoch uint64, rotate bool) (string, map[string]uint64, error) {
	if w.log == nil {
		return "", nil, ErrClosed
	}
	if w.err != nil {
		return "", nil, w.err
	}
	if err := w.log.sync(); err != nil {
		w.err = fmt.Errorf("wal: %w", err) // sticky: see Flush
		return "", nil, w.err
	}
	name := snapName(i, epoch)
	if err := writeSnapshot(filepath.Join(g.cfg.Durable.Dir, name), w.m, g.codec); err != nil {
		return "", nil, err
	}
	if rotate {
		if err := w.log.rotate(g.cfg.Durable.Dir, epoch); err != nil {
			// Sticky: Rotate closed the old segment before the new one
			// failed to open, so the shard has no live log — letting it
			// keep accepting batches would buffer frames over a closed
			// file and report success.
			w.err = fmt.Errorf("wal: %w", err)
			return "", nil, w.err
		}
	}
	w.log.dirty = 0 // this epoch's snapshot covers everything logged so far
	table := make(map[string]uint64, len(w.sessions))
	for s, q := range w.sessions {
		table[s] = q
	}
	return name, table, nil
}

func (g *Group[T]) hook(stage string) {
	if g.ckptHook != nil {
		g.ckptHook(stage)
	}
}

// prune deletes WAL segments and snapshots superseded by the committed
// epoch, plus any stray temp files. Best-effort: a leftover file costs disk
// space, never correctness (recovery ignores epochs below the manifest's).
func (g *Group[T]) prune(epoch uint64) {
	dir := g.cfg.Durable.Dir
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if _, ep, _, ok := parseDataFile(name); ok && ep < epoch {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// writeSnapshot serializes a shard's hierarchical matrix (cascade state
// included) crash-safely: temp file, fsync, rename.
func writeSnapshot[T gb.Number](path string, m *hier.Matrix[T], c gb.Codec[T]) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := hier.Encode(bw, m, c); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readSnapshot[T gb.Number](path string, c gb.Codec[T]) (*hier.Matrix[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hier.Decode[T](bufio.NewReaderSize(f, 1<<16), c)
}

// RecoverStats describes what RecoverGroup rebuilt.
type RecoverStats struct {
	// Epoch is the manifest epoch the snapshots restored.
	Epoch uint64
	// Shards is the recovered shard count (from the manifest).
	Shards int
	// ReplayedBatches and ReplayedEntries count the WAL records applied
	// on top of the snapshots.
	ReplayedBatches int
	ReplayedEntries int
	// TornTails counts shards whose newest segment ended in a torn or
	// corrupt final frame — the expected signature of a crash between
	// Append and Sync; the intact prefix was replayed.
	TornTails int
}

// RecoverGroup restores a durable group from cfg.Durable.Dir: the manifest
// fixes dimensions, shard count, and cuts (overriding cfg's values — the
// hash partition is only valid at the recorded shard count); each shard's
// snapshot is decoded and its surviving WAL segments are replayed in epoch
// order, tolerating a torn final frame at the newest segment (everything
// synced before the crash is restored; the unsynced tail is gone, exactly
// as group-commit promises). The recovered group then takes an immediate
// checkpoint — compacting replayed logs away and leaving the directory
// clean — and starts its workers, ready to ingest.
//
// Recovery is proven bit-identical by the package kill-point tests: for
// every crash window, the recovered group's Summary, Entries, merged
// Query, and pushdown results equal the reference stream prefix.
func RecoverGroup[T gb.Number](cfg Config) (*Group[T], RecoverStats, error) {
	var st RecoverStats
	dir := cfg.Durable.Dir
	if dir == "" {
		return nil, st, ErrNotDurable
	}
	if err := acquireDirLock(dir); err != nil {
		return nil, st, err
	}
	recovered := false
	defer func() {
		if !recovered {
			releaseDirLock(dir)
		}
	}()
	man, err := readManifest(dir)
	if err != nil {
		return nil, st, err
	}
	st.Epoch = man.Epoch
	st.Shards = man.Shards
	cfg.Shards = man.Shards
	cfg.Hier = hier.Config{Cuts: man.Cuts}
	cfg = cfg.withDefaults()
	codec := defaultCodec[T]()

	// 1+2. Restore each shard — decode its snapshot (or build an empty
	// cascade) and replay its surviving segments with epoch >= the
	// manifest's, oldest first — in one goroutine per shard: the shards'
	// files are disjoint and their matrices independent, so restart
	// latency on a multi-core host is the slowest single shard, not the
	// sum. The first error wins (the others finish and are discarded).
	// Segments below the manifest epoch are stale leftovers of a crash
	// between manifest commit and prune; they are ignored (and removed by
	// the checkpoint below).
	segs, maxEpoch, err := listSegments(dir, man)
	if err != nil {
		return nil, st, err
	}
	ms := make([]*hier.Matrix[T], man.Shards)
	tables := make([]map[string]uint64, man.Shards)
	perShard := make([]RecoverStats, man.Shards)
	shardErrs := make([]error, man.Shards)
	var wg sync.WaitGroup
	for i := range ms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i], tables[i], perShard[i], shardErrs[i] = recoverShard[T](dir, man, i, segs[i], codec)
		}(i)
	}
	wg.Wait()
	if err := firstError(shardErrs); err != nil {
		return nil, st, err
	}
	for _, ps := range perShard {
		st.ReplayedBatches += ps.ReplayedBatches
		st.ReplayedEntries += ps.ReplayedEntries
		st.TornTails += ps.TornTails
	}

	// 3. Build the group around the restored matrices and — when anything
	// was replayed or a tail was torn — immediately checkpoint at a fresh
	// epoch (single-threaded, the workers are not started yet), so the
	// replayed logs compact away and a crash loop never replays the same
	// tail twice. The manifest MUST commit before the new epoch's (empty)
	// segments are created: creating them first would demote the shard's
	// possibly-torn old segment from newest-segment status, and a crash
	// before the commit would then make the next recovery misread that
	// tolerated torn tail as real corruption. A crash after the commit is
	// benign either way — a missing segment replays as empty. A clean
	// restart (nothing replayed, e.g. after Close's final checkpoint)
	// skips the re-encode entirely: the existing manifest and snapshots
	// already describe the restored state exactly, which keeps restart
	// latency at decode cost instead of decode + full re-encode.
	g, err := buildGroup[T](man.NRows, man.NCols, cfg, ms)
	if err != nil {
		return nil, st, err
	}
	// Hand each shard its recovered dedup table and derive the group
	// frontiers — one per safety direction. The resume frontier (accepted
	// and durable) is the MINIMUM over shards: a frame above it may have
	// reached some shards and not others (or reached a shard whose
	// unsynced tail was lost, leaving no table entry at all — hence
	// absent entries count as 0), so only the minimum is provably whole.
	// Under-reporting is safe there — and required: the client
	// retransmits the gap, UpdateSession's frontier check lets the
	// retransmissions through, and the per-shard tables drop exactly the
	// already-applied fragments, repairing any partial application.
	// (Seeding accepted with the max instead would dup-ack those
	// retransmissions without re-applying them — permanent data loss.)
	// The minted floor is the MAXIMUM over shards: any seq some table
	// remembers would be silently dup-dropped if a resuming client
	// reused it for new data, so MintSeq must over-report. Sessions
	// absent from every table keep whatever the manifest recorded via
	// accepted (min == max == manifest frontier for those).
	for i, w := range g.workers {
		w.sessions = tables[i]
	}
	frontier := make(map[string]uint64)
	minted := make(map[string]uint64)
	for _, tab := range tables {
		for s := range tab {
			frontier[s] = 0
		}
	}
	for s := range frontier {
		min := uint64(0)
		max := uint64(0)
		for k, tab := range tables {
			q := tab[s]
			if k == 0 || q < min {
				min = q
			}
			if q > max {
				max = q
			}
		}
		frontier[s] = min
		minted[s] = max
	}
	if len(frontier) > 0 {
		g.accepted = frontier
		g.durable = make(map[string]uint64, len(frontier))
		for s, q := range frontier {
			g.durable[s] = q
		}
		g.minted = minted
	}
	g.epoch = maxEpoch + 1
	if st.ReplayedBatches > 0 || st.TornTails > 0 {
		snaps := make([]string, len(g.workers))
		snapErrs := make([]error, len(g.workers))
		var swg sync.WaitGroup
		for i, w := range g.workers {
			swg.Add(1)
			go func(i int, m *hier.Matrix[T]) {
				defer swg.Done()
				name := snapName(i, g.epoch)
				snapErrs[i] = writeSnapshot(filepath.Join(dir, name), m, g.codec)
				snaps[i] = name
			}(i, w.m)
		}
		swg.Wait()
		if err := firstError(snapErrs); err != nil {
			return nil, st, err
		}
		if err := g.commitManifest(g.epoch, snaps, tables); err != nil {
			return nil, st, err
		}
	}
	if err := g.openLogs(g.epoch); err != nil {
		return nil, st, err
	}
	// Persist the new segments' directory entries: file fsync (what Flush
	// does) does not cover them, and a power loss that dropped a segment's
	// entry would silently void every group commit made into it. The
	// NewGroup path gets this for free from commitManifest's syncDir.
	if err := syncDir(dir); err != nil {
		g.closeLogs()
		return nil, st, err
	}
	// Prune strictly below the MANIFEST's epoch: on the clean-restart
	// path no new manifest was committed, and pruning below g.epoch
	// would delete the very snapshots the old manifest still names.
	if st.ReplayedBatches > 0 || st.TornTails > 0 {
		g.prune(g.epoch)
	} else {
		g.prune(man.Epoch)
	}
	g.start()
	recovered = true // the lock now belongs to the running group
	return g, st, nil
}

// recoverShard rebuilds one shard's matrix and session high-water table:
// snapshot decode (or an empty cascade) with the manifest's table seed,
// then segment replay in epoch order, tolerating a torn final frame only
// in the newest segment. It touches only shard-local state, so
// RecoverGroup runs one per goroutine.
func recoverShard[T gb.Number](dir string, man *manifest, i int, shardSegs []segment, codec gb.Codec[T]) (*hier.Matrix[T], map[string]uint64, RecoverStats, error) {
	var st RecoverStats
	var m *hier.Matrix[T]
	table := make(map[string]uint64)
	if len(man.Sessions) > i {
		for s, q := range man.Sessions[i] {
			table[s] = q
		}
	}
	if snap := man.Snapshots[i]; snap != "" {
		var err error
		m, err = readSnapshot[T](filepath.Join(dir, snap), codec)
		if err != nil {
			return nil, nil, st, fmt.Errorf("snapshot %s: %w", snap, err)
		}
		if m.NRows() != man.NRows || m.NCols() != man.NCols {
			return nil, nil, st, fmt.Errorf("%w: snapshot dims %dx%d != manifest %dx%d",
				gb.ErrInvalidValue, m.NRows(), m.NCols(), man.NRows, man.NCols)
		}
	} else {
		var err error
		m, err = hier.New[T](man.NRows, man.NCols, hier.Config{Cuts: man.Cuts})
		if err != nil {
			return nil, nil, st, err
		}
	}
	for si, seg := range shardSegs {
		batches, entries, torn, err := replaySegment(seg.path, m, table, codec, si == len(shardSegs)-1)
		if err != nil {
			return nil, nil, st, fmt.Errorf("replaying %s: %w", filepath.Base(seg.path), err)
		}
		st.ReplayedBatches += batches
		st.ReplayedEntries += entries
		if torn {
			st.TornTails++
		}
	}
	return m, table, st, nil
}

type segment struct {
	path  string
	epoch uint64
}

// listSegments collects each shard's WAL segments with epoch >= the
// manifest's, sorted ascending, and reports the highest epoch present in
// the directory (manifest included) so recovery can pick a fresh one.
func listSegments(dir string, man *manifest) ([][]segment, uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	segs := make([][]segment, man.Shards)
	maxEpoch := man.Epoch
	for _, e := range ents {
		shard, epoch, isWAL, ok := parseDataFile(e.Name())
		if !ok {
			continue
		}
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
		if !isWAL || shard >= man.Shards || epoch < man.Epoch {
			continue
		}
		segs[shard] = append(segs[shard], segment{path: filepath.Join(dir, e.Name()), epoch: epoch})
	}
	for _, s := range segs {
		sort.Slice(s, func(a, b int) bool { return s[a].epoch < s[b].epoch })
	}
	return segs, maxEpoch, nil
}

// replaySegment applies one WAL segment's batches to a shard matrix,
// advancing the session high-water table from each record's dedup header.
// A sessioned record at or below the table — possible when a checkpoint's
// manifest committed but its log truncation did not finish — replays the
// table advance but not the batch, exactly mirroring the live dedup skip.
// In the shard's newest segment (last=true) a torn or corrupt final frame
// is tolerated — the intact prefix is applied and torn=true is reported;
// in any older segment (fully synced before its checkpoint rotated away
// from it) the same condition is real corruption and fails the recovery.
func replaySegment[T gb.Number](path string, m *hier.Matrix[T], table map[string]uint64, codec gb.Codec[T], last bool) (batches, entries int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, 0, false, nil // never-created segment: nothing to replay
		}
		return 0, 0, false, err
	}
	defer f.Close()
	r := wal.NewReader(f)
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return batches, entries, false, nil
		}
		if errors.Is(err, wal.ErrCorrupt) {
			if last {
				return batches, entries, true, nil
			}
			return batches, entries, false, err
		}
		if err != nil {
			return batches, entries, false, err
		}
		sess, seq, rest, err := wal.DecodeSessionHeader(rec)
		if err != nil {
			return batches, entries, false, err
		}
		if sess != "" && seq <= table[sess] {
			continue // already covered by the snapshot or an earlier record
		}
		rows, cols, vals, err := wal.DecodeBatchRecord(rest, codec.Get)
		if err != nil {
			return batches, entries, false, err
		}
		if err := m.Update(rows, cols, vals); err != nil {
			return batches, entries, false, err
		}
		if sess != "" {
			table[sess] = seq
		}
		batches++
		entries += len(rows)
	}
}
