//go:build unix

package shard

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"hhgb/internal/hier"
)

// TestDirLockRefusesLiveFlockOwner pins the cross-process half of the
// single-owner guarantee: a live flock on the LOCK file — what another
// running process would hold — refuses every claim, releasing it makes
// the directory claimable again, and a clean Close never leaves the
// directory permanently locked.
func TestDirLockRefusesLiveFlockOwner(t *testing.T) {
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards: 1, Hier: hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a live foreign owner: flock the LOCK from an independent
	// descriptor (flock conflicts across open file descriptions, so this
	// behaves exactly like another process holding it).
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		t.Fatalf("test flock: %v", err)
	}
	if _, _, err := RecoverGroup[uint64](Config{Durable: Durability{Dir: dir}}); err == nil ||
		!strings.Contains(err.Error(), "locked by") {
		t.Fatalf("RecoverGroup under a live foreign flock: %v", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		t.Fatal(err)
	}

	// Released: claimable again, and reclaimable after every clean Close
	// (a crashed owner releases implicitly — flock dies with the process).
	for i := 0; i < 2; i++ {
		r, _, err := RecoverGroup[uint64](Config{Durable: Durability{Dir: dir}})
		if err != nil {
			t.Fatalf("recover round %d: %v", i, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
