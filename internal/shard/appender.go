package shard

import "hhgb/internal/gb"

// Appender is a per-producer ingest handle: S shard-local buffers that
// amortize hash-partitioning and queue handoff across many Append calls.
// Where Update pays a stripe lock per batch, a producer goroutine that
// owns an Appender partitions straight into its own buffers and touches a
// shard queue only when a buffer fills (every Handoff entries) — so the
// per-entry ingest cost on the producer is one hash and one append,
// independent of the shard count, and producers never share a splitter.
//
// An Appender is NOT safe for concurrent use: create one per producer
// goroutine with NewAppender. The group's barriers coordinate with all
// appenders internally, so queries, Flush, and Close still observe every
// appended entry (buffered entries are drained at each barrier) and
// snapshots stay batch-atomic: an Append call's batch is either entirely
// included in a snapshot or entirely excluded.
//
// Lifecycle: Append after the group closes returns ErrClosed (the group's
// Close already drained this appender's buffers). Close hands off any
// remaining buffered entries and detaches the appender; it is idempotent,
// and Append after it also returns ErrClosed.
type Appender[T gb.Number] struct {
	g       *Group[T]
	handoff int
	rows    [][]gb.Index // one buffer per shard
	cols    [][]gb.Index
	vals    [][]T
	closed  bool
}

// newAppender builds an unregistered appender with empty buffers. Buffer
// backing arrays are allocated lazily at first use and at each handoff, so
// idle appenders stay cheap.
func newAppender[T gb.Number](g *Group[T]) *Appender[T] {
	k := len(g.workers)
	return &Appender[T]{
		g:       g,
		handoff: g.cfg.Handoff,
		rows:    make([][]gb.Index, k),
		cols:    make([][]gb.Index, k),
		vals:    make([][]T, k),
	}
}

// NewAppender returns a registered per-producer appender. The group drains
// its buffers at every barrier, so the owner only needs to call Close (or
// Flush) to make a final partial buffer visible without waiting for one.
func (g *Group[T]) NewAppender() (*Appender[T], error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return nil, ErrClosed
	}
	return g.register(newAppender(g)), nil
}

// Append hash-partitions one batch into the shard-local buffers, handing
// any buffer that reaches the handoff size to its shard queue (blocking
// only when that queue is full). The input slices are copied before the
// call returns. A malformed batch is rejected whole, like Update.
func (a *Appender[T]) Append(rows, cols []gb.Index, vals []T) error {
	g := a.g
	if err := g.validate(rows, cols, vals); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed || a.closed {
		return ErrClosed
	}
	a.append(rows, cols, vals)
	return nil
}

// append partitions a validated batch into the buffers. It requires g.mu
// held (shared by the owning producer, exclusive by barriers) and the
// appender to be exclusively owned for the duration of the call.
//
// This is the per-entry ingest hot path: buffer backing comes from the
// group's slab free-list (attachSlab), so once the list is warm the loop
// is one hash and three appends per entry with no allocation sites.
//
//hhgb:noalloc
func (a *Appender[T]) append(rows, cols []gb.Index, vals []T) {
	if len(a.rows) == 1 {
		// Single shard: bulk-copy in handoff-sized chunks, no hashing.
		// Chunking (rather than copying the whole batch then checking)
		// bounds every queued buffer — and with it every WAL record a
		// durable worker frames from it — by the handoff size, matching
		// the per-entry bound of the multi-shard path.
		for len(rows) > 0 {
			if a.rows[0] == nil {
				a.attachSlab(0)
			}
			n := a.handoff - len(a.rows[0])
			if n > len(rows) {
				n = len(rows)
			}
			a.rows[0] = append(a.rows[0], rows[:n]...)
			a.cols[0] = append(a.cols[0], cols[:n]...)
			a.vals[0] = append(a.vals[0], vals[:n]...)
			if len(a.rows[0]) >= a.handoff {
				a.handoffShard(0)
			}
			rows, cols, vals = rows[n:], cols[n:], vals[n:]
		}
		return
	}
	for i := range rows {
		sh := a.g.shardOf(rows[i], cols[i])
		if a.rows[sh] == nil {
			a.attachSlab(sh)
		}
		a.rows[sh] = append(a.rows[sh], rows[i])
		a.cols[sh] = append(a.cols[sh], cols[i])
		a.vals[sh] = append(a.vals[sh], vals[i])
		if len(a.rows[sh]) >= a.handoff {
			a.handoffShard(sh)
		}
	}
}

// attachSlab backs shard sh's empty buffer with a slab from the group's
// free-list — recycled from a worker when the list is warm, freshly
// allocated only while it is not.
func (a *Appender[T]) attachSlab(sh int) {
	s := a.g.getSlab()
	a.rows[sh], a.cols[sh], a.vals[sh] = s.rows, s.cols, s.vals
}

// handoffShard moves one shard's buffer onto its queue, transferring
// ownership of the backing arrays to the worker (who recycles them onto
// the slab free-list after applying), and leaves an empty buffer behind
// (re-backed from the free-list on next use). Requires g.mu held.
func (a *Appender[T]) handoffShard(sh int) {
	a.g.workers[sh].in <- msg[T]{rows: a.rows[sh], cols: a.cols[sh], vals: a.vals[sh]}
	a.rows[sh] = nil
	a.cols[sh] = nil
	a.vals[sh] = nil
}

// flushBuffers hands every non-empty buffer to its shard queue. Requires
// g.mu held (shared by the owner, exclusive by barriers).
func (a *Appender[T]) flushBuffers() {
	for sh := range a.rows {
		if len(a.rows[sh]) > 0 {
			a.handoffShard(sh)
		}
	}
}

// Flush hands the buffered entries to their shard queues without waiting
// for ingest; a subsequent Group.Flush (or any query barrier) makes them
// visible. After the group or the appender is closed it returns ErrClosed
// (the closer already drained the buffers).
func (a *Appender[T]) Flush() error {
	g := a.g
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed || a.closed {
		return ErrClosed
	}
	a.flushBuffers()
	return nil
}

// Buffered reports how many entries are currently staged in the local
// buffers (accepted by Append but not yet handed to a shard queue).
func (a *Appender[T]) Buffered() int {
	g := a.g
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for sh := range a.rows {
		n += len(a.rows[sh])
	}
	return n
}

// Close hands off any buffered entries and detaches the appender from the
// group; Append and Flush return ErrClosed afterwards. Closing after the
// group closed just detaches (the group already drained the buffers).
// Close is idempotent and never fails; its error result exists so callers
// can treat appenders uniformly with other closers.
func (a *Appender[T]) Close() error {
	g := a.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	if !g.closed {
		a.flushBuffers()
	}
	g.unregister(a)
	return nil
}
