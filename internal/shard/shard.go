package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hhgb/internal/flight"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/wal"
)

// ErrClosed is returned by Update, Append, and Appender.Flush after the
// group is closed.
var ErrClosed = errors.New("shard: group is closed")

// ErrNotDurable is returned by Checkpoint and RecoverGroup when the group
// has no durability directory configured.
var ErrNotDurable = errors.New("shard: group has no durability directory")

// DefaultDepth is the default per-shard queue depth in batches. Deep enough
// to decouple producers from a momentarily-cascading shard, shallow enough
// that a Flush barrier stays cheap and queued batches stay cache-warm.
const DefaultDepth = 8

// DefaultHandoff is the default per-shard appender buffer size in entries.
// Large enough that the per-entry partitioning cost (one hash, one append)
// dominates the per-buffer handoff cost (one channel send, three
// allocations), small enough that a buffer still fits in cache while the
// producer fills it.
const DefaultHandoff = 4096

// Config describes a sharded ingest group.
type Config struct {
	// Shards is the number of independent cascades (and worker
	// goroutines). Zero or negative selects runtime.GOMAXPROCS(0).
	Shards int
	// Depth is the per-shard queue depth in batches; zero or negative
	// selects DefaultDepth.
	Depth int
	// Handoff is the per-shard producer buffer size in entries: an
	// appender hands a shard's buffer to the shard queue when it reaches
	// this size (and at every flush or query barrier). Zero or negative
	// selects DefaultHandoff.
	Handoff int
	// Hier configures every shard's cascade. As in hier.New, nil Cuts
	// yields a single flat level.
	Hier hier.Config
	// Durable configures per-shard write-ahead logging and checkpointing.
	// The zero value keeps the group purely in-memory.
	Durable Durability
	// Metrics receives the shard layer's instruments (batches applied,
	// WAL fsync and checkpoint latency). Nil wires them to the discard
	// registry: updated but never rendered.
	Metrics *Metrics
	// Flight, when non-nil, receives structured ring events from the
	// shard layer (WAL fsyncs, checkpoint phases). Recording is
	// allocation-free; nil disables it at the cost of one branch.
	Flight *flight.Recorder
}

// withDefaults resolves zero values to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	if c.Handoff <= 0 {
		c.Handoff = DefaultHandoff
	}
	if c.Durable.Dir != "" && c.Durable.SyncEvery <= 0 {
		c.Durable.SyncEvery = DefaultSyncEvery
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil)
	}
	return c
}

// msg is one unit of work on a shard queue: a buffer to ingest (rows set),
// or a control request to run on the worker's goroutine (do set). Control
// requests double as barriers: the queue is FIFO, so by the time do runs,
// every buffer enqueued before it has been ingested.
type msg[T gb.Number] struct {
	rows []gb.Index
	cols []gb.Index
	vals []T
	// sess/seq tag a buffer with its exactly-once dedup key: the client
	// session and insert-frame sequence number the entries came from
	// (UpdateSession). Empty sess marks the unkeyed local-ingest path.
	sess string
	seq  uint64
	// span, when non-nil, is the sampled frame's latency span; the
	// producer took one reference per partition (Hold), and the worker
	// releases it after attributing shard-side stages (Done).
	span *flight.Span
	do   func(m *hier.Matrix[T])
	done chan struct{}
}

// worker is one shard: a cascade owned by a single goroutine, plus — when
// the group is durable — the shard's write-ahead log, owned by the same
// goroutine (barrier callbacks run on it too, so the log needs no lock).
// The pushdown result cache (see pushdown.go) lives here for the same
// reason: queries execute on the worker goroutine, so cache reads, fills,
// and the ingest-side invalidation all happen on one owner, lock-free.
type worker[T gb.Number] struct {
	in  chan msg[T]
	m   *hier.Matrix[T]
	log *shardWAL[T] // nil when the group is not durable
	met *Metrics
	err error // first ingest error; owned by the worker goroutine

	// slabs is the group's slab free-list: the worker recycles each data
	// message's buffers here once Update has copied the entries out, which
	// is what closes the appender → queue → worker → appender loop and
	// makes steady-state ingest allocation-free.
	slabs chan slab[T]

	// sessions is the shard's exactly-once high-water table: per client
	// session, the highest frame seq whose portion this shard has applied
	// (and, durable groups, logged — the WAL journals the key alongside
	// each batch, so recovery rebuilds the table). A retransmitted frame's
	// portion at or below the mark is dropped without logging or applying.
	// Owned by the worker goroutine, like the log.
	sessions map[string]uint64

	cache                               shardCache[T]
	cacheHits, cacheMisses, cacheInvals int64
}

func (w *worker[T]) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for msg := range w.in {
		if msg.do != nil {
			msg.do(w.m)
			close(msg.done)
			continue
		}
		w.ingest(msg)
		// The buffers are dead on every path out of ingest — dropped,
		// dedup-skipped, or copied into the cascade's pending staging —
		// so recycle them for the next producer handoff.
		if msg.rows != nil {
			putSlab(w.slabs, slab[T]{rows: msg.rows[:0], cols: msg.cols[:0], vals: msg.vals[:0]})
		}
	}
}

// ingest applies one data message: exactly-once dedup, WAL logging,
// cascade update, session high-water advance. The message's buffers are
// consumed (copied out) by the time it returns.
func (w *worker[T]) ingest(msg msg[T]) {
	// Sampled frames attribute their shard-side latency here: queue wait
	// on dequeue, then the WAL and apply shares below. Every path out
	// releases the partition's span reference; the span methods are
	// nil-safe, so unsampled messages pay one branch.
	defer msg.span.Done()
	var spanMark int64
	if msg.span != nil {
		msg.span.ObserveShardWait()
		spanMark = flight.Now()
	}
	if w.err != nil {
		return // sticky: drop buffers after the first failure
	}
	// Exactly-once dedup: a sessioned buffer at or below this shard's
	// high-water mark has already been logged and applied here — a
	// retransmission after a reconnect or a crash on another shard —
	// and is dropped whole, before the log sees it again.
	if msg.sess != "" && msg.seq <= w.sessions[msg.sess] {
		return
	}
	// Log before applying (the WAL convention). A crash between the
	// two replays the batch on recovery; the reverse order could not
	// lose anything either (the loop is sequential, so an unlogged
	// applied batch is always the last work the shard ever did), but
	// log-first keeps "in the log" ⊇ "in the matrix" at every instant.
	if w.log != nil {
		if err := w.log.logBatch(msg.sess, msg.seq, msg.rows, msg.cols, msg.vals); err != nil {
			w.err = fmt.Errorf("wal: %w", err)
			return
		}
		if msg.span != nil {
			now := flight.Now()
			msg.span.ObserveMax(flight.StageWAL, time.Duration(now-spanMark))
			spanMark = now
		}
	}
	if w.cache != (shardCache[T]{}) {
		// Only clearing a cache that held something counts as an
		// invalidation — the common streaming case (batch after batch,
		// nothing cached) stays at one struct store.
		w.cacheInvals++
		w.met.CacheInvalidations.Inc()
	}
	w.cache = shardCache[T]{} // this shard's reductions are stale now
	w.err = w.m.Update(msg.rows, msg.cols, msg.vals)
	if msg.span != nil {
		msg.span.ObserveMax(flight.StageApply, time.Duration(flight.Now()-spanMark))
	}
	if w.err == nil {
		w.met.BatchesApplied.Inc()
		w.met.EntriesApplied.Add(uint64(len(msg.rows)))
	}
	if w.err == nil && msg.sess != "" {
		if w.sessions == nil {
			w.sessions = make(map[string]uint64)
		}
		w.sessions[msg.sess] = msg.seq
	}
}

// Group is one logical nrows x ncols traffic matrix hash-partitioned across
// independent hierarchical cascades. Update is safe for concurrent use by
// any number of producer goroutines; dedicated producers can amortize the
// partitioning further with a NewAppender handle each. The analysis-time
// queries may run concurrently with ingest and observe a batch-atomic
// merged snapshot: every accepted batch is either entirely included or
// entirely excluded (the query barrier drains all producer buffers and
// excludes in-flight Update/Append calls, see run).
type Group[T gb.Number] struct {
	nrows, ncols gb.Index
	cfg          Config
	workers      []*worker[T]
	wg           sync.WaitGroup

	// slabs and parts are the ingest free-lists (see slab.go): handoff
	// buffers circulating producer → queue → worker → producer, and
	// UpdateSession's per-call partition headers.
	slabs chan slab[T]
	parts chan *partScratch[T]

	// mu is the producer/barrier lock: Update and Appender.Append hold it
	// shared while partitioning into buffers and sending on the shard
	// queues; barriers (run, Close) hold it exclusively while draining
	// every producer buffer and placing their cut, which is what makes
	// snapshots batch-atomic. It also guards closed vs. sends and close.
	mu       sync.RWMutex
	closed   bool
	closeErr error

	// regMu guards the appender registry alone and nests inside mu:
	// registration happens under mu held shared (NewAppender), reads
	// happen under mu held exclusively (barrier drains).
	regMu     sync.Mutex
	appenders []*Appender[T]

	// stripes serve the handle-free Update path: a fixed set of
	// registered appenders, each behind its own mutex, picked round-robin
	// so concurrent callers get producer-local buffers without contending
	// on one shared splitter. Fixed size keeps the registry — and with it
	// every barrier's drain cost — bounded for the life of the group.
	stripes   []*stripe[T]
	stripeIdx atomic.Uint32

	// sessMu guards the exactly-once session frontiers. accepted holds,
	// per client session, the highest frame seq whose portions have been
	// enqueued (UpdateSession advances it only after every shard took its
	// slice, so a refused enqueue never marks a frame accepted); durable
	// trails accepted on durable groups, advancing when a fsync barrier
	// (Flush, Checkpoint, Close) commits a frontier snapshot taken before
	// the barrier — ResumeSeq must never promise a seq a crash could
	// lose. minted is only populated by recovery: the max over per-shard
	// session tables, which can exceed the recovered accepted frontier
	// (the min over shards) when a crash left a frame partially applied.
	// MintSeq folds it in so a resuming client never reuses a seq some
	// shard's table already remembers. sessMu is a leaf lock: nothing is
	// acquired while it is held.
	sessMu   sync.Mutex
	accepted map[string]uint64
	durable  map[string]uint64
	minted   map[string]uint64

	// codec converts values to and from the 8-byte wire word the WAL and
	// snapshots use; chosen per T (floats bit-exact, integers lossless).
	codec gb.Codec[T]
	// ckptMu serializes checkpoints (and Close's final checkpoint) so
	// epoch numbers advance monotonically and manifest commits never
	// interleave. Lock order: ckptMu before mu.
	ckptMu sync.Mutex
	// epoch is the current checkpoint attempt number; the live WAL
	// segments carry it in their names. Guarded by ckptMu after
	// construction. It advances even when a checkpoint fails, so segment
	// and snapshot names are never reused (reuse could truncate a live
	// segment on a shard that had already rotated).
	epoch uint64
	// ckptFailed is true while the latest checkpoint attempt has not
	// fully committed; it blocks the Close-time "nothing changed, skip
	// the final checkpoint" shortcut, because a failed attempt may have
	// reset per-shard dirty counters without committing their snapshots.
	// Guarded by ckptMu.
	ckptFailed bool
	// ckptHook, when set (tests only), is called between checkpoint
	// stages: "snapshots" after every shard has synced, snapshotted and
	// rotated; "manifest" after the manifest commit, before pruning.
	ckptHook func(stage string)
}

// stripe is one Update-path appender and the mutex that hands it to a
// single caller at a time. Stripe mutexes nest inside mu (held shared by
// the caller); barriers hold mu exclusively, which already excludes every
// stripe user, so they drain stripe appenders without touching stripe
// locks.
type stripe[T gb.Number] struct {
	mu sync.Mutex
	a  *Appender[T]
}

// NewGroup returns a running sharded group; its workers idle until the
// first Update. Callers that finish ingesting should Close it. With
// Config.Durable set, the group opens one write-ahead log per shard under
// the durability directory (which must not already hold a durable group —
// restart from existing state with RecoverGroup instead).
func NewGroup[T gb.Number](nrows, ncols gb.Index, cfg Config) (*Group[T], error) {
	cfg = cfg.withDefaults()
	g, err := buildGroup[T](nrows, ncols, cfg, nil)
	if err != nil {
		return nil, err
	}
	if cfg.Durable.Dir != "" {
		if err := g.initDurability(); err != nil {
			return nil, err
		}
	}
	g.start()
	return g, nil
}

// buildGroup constructs a group without starting its workers. ms, when
// non-nil, supplies recovered per-shard matrices (len must equal
// cfg.Shards); nil builds empty cascades. cfg must already be resolved.
func buildGroup[T gb.Number](nrows, ncols gb.Index, cfg Config, ms []*hier.Matrix[T]) (*Group[T], error) {
	g := &Group[T]{
		nrows: nrows, ncols: ncols, cfg: cfg, codec: defaultCodec[T](),
		slabs: newSlabList[T](cfg),
		parts: make(chan *partScratch[T], 4),
	}
	for i := 0; i < cfg.Shards; i++ {
		m := (*hier.Matrix[T])(nil)
		if ms != nil {
			m = ms[i]
		} else {
			var err error
			m, err = hier.New[T](nrows, ncols, cfg.Hier)
			if err != nil {
				return nil, err
			}
		}
		g.workers = append(g.workers, &worker[T]{
			in:    make(chan msg[T], cfg.Depth),
			m:     m,
			met:   cfg.Metrics,
			slabs: g.slabs,
		})
	}
	// 2x GOMAXPROCS stripes: enough that round-robin rarely lands two
	// concurrent Updates on the same stripe, few enough that the
	// registry stays trivially small. Buffers allocate lazily, so idle
	// stripes cost only the struct.
	for i := 0; i < 2*runtime.GOMAXPROCS(0); i++ {
		g.stripes = append(g.stripes, &stripe[T]{a: g.register(newAppender(g))})
	}
	return g, nil
}

// start launches the worker goroutines. Everything the workers read —
// matrices, WAL handles — must be in place before the call.
func (g *Group[T]) start() {
	g.wg.Add(len(g.workers))
	for _, w := range g.workers {
		go w.loop(&g.wg)
	}
}

// NRows returns the row dimension.
func (g *Group[T]) NRows() gb.Index { return g.nrows }

// NCols returns the column dimension.
func (g *Group[T]) NCols() gb.Index { return g.ncols }

// NumShards returns the shard count.
func (g *Group[T]) NumShards() int { return len(g.workers) }

// Durable reports whether the group write-ahead-logs its ingest.
func (g *Group[T]) Durable() bool { return g.cfg.Durable.Dir != "" }

// Levels returns the per-shard cascade depth.
func (g *Group[T]) Levels() int { return g.workers[0].m.NumLevels() }

// shardOf routes an entry to a shard by mixing both coordinates (splitmix64
// final avalanche over src ⊕ rotated dst). Hashing the full (src, dst) pair
// keeps shards balanced even when a single power-law supernode source
// dominates the stream — row-only hashing would funnel that hot row into
// one shard — and assigns every cell to exactly one shard, the property the
// pushdown queries rely on to merge partial results exactly.
func (g *Group[T]) shardOf(row, col gb.Index) int {
	x := uint64(row) ^ (uint64(col)<<32 | uint64(col)>>32)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(g.workers)))
}

// validate rejects a malformed batch synchronously and atomically, like
// gb.Matrix.AppendTuples, before any entry is buffered or enqueued.
func (g *Group[T]) validate(rows, cols []gb.Index, vals []T) error {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return fmt.Errorf("%w: slice lengths %d/%d/%d differ", gb.ErrInvalidValue, len(rows), len(cols), len(vals))
	}
	for k := range rows {
		if rows[k] >= g.nrows || cols[k] >= g.ncols {
			return fmt.Errorf("%w: (%d,%d) outside %d x %d", gb.ErrIndexOutOfBounds, rows[k], cols[k], g.nrows, g.ncols)
		}
	}
	return nil
}

// register adds an appender to the registry so barriers can drain it.
func (g *Group[T]) register(a *Appender[T]) *Appender[T] {
	g.regMu.Lock()
	g.appenders = append(g.appenders, a)
	g.regMu.Unlock()
	return a
}

// unregister removes an appender from the registry.
func (g *Group[T]) unregister(a *Appender[T]) {
	g.regMu.Lock()
	defer g.regMu.Unlock()
	for i, x := range g.appenders {
		if x == a {
			g.appenders[i] = g.appenders[len(g.appenders)-1]
			g.appenders = g.appenders[:len(g.appenders)-1]
			return
		}
	}
}

// drainAppenders hands every registered appender's buffered entries to the
// shard queues. It requires g.mu held exclusively — no Update or Append can
// be mid-flight — so the drain plus whatever the caller enqueues next (a
// barrier, or nothing before Close) forms one atomic cut of the stream.
func (g *Group[T]) drainAppenders() {
	g.regMu.Lock()
	apps := append([]*Appender[T](nil), g.appenders...)
	g.regMu.Unlock()
	for _, a := range apps {
		a.flushBuffers()
	}
}

// Update hash-partitions one batch of updates into producer-local shard
// buffers (a striped set of internal appenders, so concurrent callers
// never contend on one shared splitter) and hands full buffers to their
// shard queues, blocking only when a destination queue is full. The input
// slices are copied before the call returns and may be reused immediately.
// Ingest is asynchronous: a nil return means the batch was accepted, not
// ingested; buffered entries become visible at the next Flush, Close, or
// query barrier, and ingest errors surface on Flush, Close, Err, and the
// queries. Dedicated producer goroutines can skip the stripes with
// NewAppender.
func (g *Group[T]) Update(rows, cols []gb.Index, vals []T) error {
	if err := g.validate(rows, cols, vals); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return ErrClosed
	}
	s := g.stripes[int(g.stripeIdx.Add(1))%len(g.stripes)]
	s.mu.Lock()
	s.a.append(rows, cols, vals)
	s.mu.Unlock()
	return nil
}

// UpdateSession ingests one client insert frame under the exactly-once
// protocol: (session, seq) is the frame's dedup key. A frame at or below
// the accepted frontier returns dup=true without re-applying anything —
// the ack-without-reapply path for retransmissions after a reconnect. A
// fresh frame is hash-partitioned and enqueued like Update (skipping the
// stripe buffers: the key must ride with exactly this frame's entries),
// journaled with its key on durable groups, and advances the accepted
// frontier; the durable frontier, which ResumeSeq reports on durable
// groups, follows at the next Flush, Checkpoint, or Close. A session's
// frames must be ingested in seq order (the network server processes a
// connection sequentially, so a session's accepted seqs always form a
// prefix of the client's stream — the property that makes a single
// high-water mark a complete dedup test). An empty batch still advances
// the frontier, so seq holes never form. Sessions longer than
// wal.MaxSessionID, empty sessions, and zero seqs are rejected.
func (g *Group[T]) UpdateSession(session string, seq uint64, rows, cols []gb.Index, vals []T) (bool, error) {
	return g.UpdateSessionSpan(session, seq, rows, cols, vals, nil)
}

// UpdateSessionSpan is UpdateSession carrying a sampled frame's latency
// span. When sp is non-nil, the handoff instant is stamped and each
// non-empty partition takes one span reference before it is enqueued;
// the shard workers attribute queue-wait, WAL, and apply time to the
// span and release the references as they finish. The caller keeps its
// own reference throughout — a dup or error return never transfers any.
func (g *Group[T]) UpdateSessionSpan(session string, seq uint64, rows, cols []gb.Index, vals []T, sp *flight.Span) (bool, error) {
	if session == "" || seq == 0 {
		return false, fmt.Errorf("%w: session %q seq %d", gb.ErrInvalidValue, session, seq)
	}
	if len(session) > wal.MaxSessionID {
		return false, fmt.Errorf("%w: session id %d bytes > %d", gb.ErrInvalidValue, len(session), wal.MaxSessionID)
	}
	if err := g.validate(rows, cols, vals); err != nil {
		return false, err
	}
	g.sessMu.Lock()
	prev := g.accepted[session]
	g.sessMu.Unlock()
	if seq <= prev {
		return true, nil
	}
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return false, ErrClosed
	}
	if len(rows) > 0 {
		// Partition into recycled slabs through a recycled header scratch:
		// the steady-state session path allocates nothing. Each non-empty
		// partition's slab ownership transfers to its worker, which
		// recycles it after applying; the header scratch is returned here.
		p := g.getParts()
		for k := range rows {
			s := g.shardOf(rows[k], cols[k])
			if p.rows[s] == nil {
				sl := g.getSlab()
				p.rows[s], p.cols[s], p.vals[s] = sl.rows, sl.cols, sl.vals
			}
			p.rows[s] = append(p.rows[s], rows[k])
			p.cols[s] = append(p.cols[s], cols[k])
			p.vals[s] = append(p.vals[s], vals[k])
		}
		sp.MarkHandoff()
		for s := range g.workers {
			if p.rows[s] == nil {
				continue
			}
			// One span reference per partition, taken before the send:
			// the worker's release must never race a reference not yet
			// counted.
			sp.Hold()
			g.workers[s].in <- msg[T]{
				rows: p.rows[s], cols: p.cols[s], vals: p.vals[s],
				sess: session, seq: seq, span: sp,
			}
			p.rows[s], p.cols[s], p.vals[s] = nil, nil, nil
		}
		g.putParts(p)
	}
	g.mu.RUnlock()
	// Advance only after every shard took its slice: enqueueing cannot
	// fail past the closed check above, so at this point the frame is in
	// the shard queues in its entirety and "accepted" is true.
	g.sessMu.Lock()
	if g.accepted == nil {
		g.accepted = make(map[string]uint64)
	}
	if seq > g.accepted[session] {
		g.accepted[session] = seq
	}
	g.sessMu.Unlock()
	return false, nil
}

// ResumeSeq reports the session's resume frontier — the highest frame seq
// a reconnecting client may safely drop from its retransmit ring. Durable
// groups report the durable frontier (what a crash provably preserves);
// in-memory groups report the accepted frontier. Unknown sessions report
// 0. Under-reporting is always safe: the client retransmits and the
// per-shard high-water tables drop the duplicates.
func (g *Group[T]) ResumeSeq(session string) uint64 {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	if g.Durable() {
		return g.durable[session]
	}
	return g.accepted[session]
}

// MintSeq reports the session's seq-minting floor — the highest frame seq
// the group's dedup state has ever recorded for the session, on any
// shard. A resuming client that lost its retransmit ring (a fresh
// process) must assign new frames seqs strictly above it; reusing a seq
// at or below would be dup-dropped without applying. Always >= ResumeSeq:
// over-reporting here is the safe direction, the opposite of ResumeSeq.
// Live, the accepted frontier is that max (UpdateSession advances it only
// after every shard took its slice of the frame); after recovery the
// minted table carries the max over per-shard session tables, which
// exceeds the recovered accepted frontier (the min over shards) when a
// crash left a frame partially applied.
func (g *Group[T]) MintSeq(session string) uint64 {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	q := g.accepted[session]
	if m := g.minted[session]; m > q {
		q = m
	}
	return q
}

// SessionHighs merges the per-shard high-water tables, max per session:
// the highest frame seq any shard has applied. Because a session's
// accepted seqs form a prefix of its stream, after a barrier (which this
// call is) the max over shards is exactly the frontier the fully-applied
// stream reached — the windowed store stashes it when it seals a window.
// Works on a closed group; the barrier then runs inline.
func (g *Group[T]) SessionHighs() map[string]uint64 {
	var mu sync.Mutex
	out := make(map[string]uint64)
	_ = g.run(func(i int, w *worker[T]) {
		mu.Lock()
		defer mu.Unlock()
		for s, q := range w.sessions {
			if q > out[s] {
				out[s] = q
			}
		}
	})
	return out
}

// snapshotAccepted copies the accepted frontier. A durability barrier
// captures it on entry so its commit publishes only seqs whose frames
// were enqueued — and therefore logged and fsynced — before the barrier.
func (g *Group[T]) snapshotAccepted() map[string]uint64 {
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	if len(g.accepted) == 0 {
		return nil
	}
	snap := make(map[string]uint64, len(g.accepted))
	for s, q := range g.accepted {
		snap[s] = q
	}
	return snap
}

// commitDurableSessions publishes a pre-barrier frontier snapshot as the
// durable frontier, after the barrier succeeded. Max per key: a commit
// must never move a session's durable frontier backwards.
func (g *Group[T]) commitDurableSessions(snap map[string]uint64) {
	if len(snap) == 0 {
		return
	}
	g.sessMu.Lock()
	defer g.sessMu.Unlock()
	if g.durable == nil {
		g.durable = make(map[string]uint64, len(snap))
	}
	for s, q := range snap {
		if q > g.durable[s] {
			g.durable[s] = q
		}
	}
}

// run executes f(i, w) once per shard on the shard's own goroutine (a
// barrier: all batches accepted before the call are ingested first), then
// waits for every shard. Appender buffers are drained and the barrier
// messages enqueued under the write lock, so no Update or Append can
// interleave with them: every accepted batch is either entirely before the
// barrier on all its shards or entirely after, making the observed state
// batch-atomic. After Close the workers are gone and the cascades are
// drained; f then runs inline, still under the write lock so concurrent
// post-Close queries are serialized (the matrices are no longer protected
// by worker goroutines). The per-shard f calls may run concurrently with
// each other before Close; f must only touch shard-local state.
func (g *Group[T]) run(f func(i int, w *worker[T])) error {
	g.mu.Lock()
	if g.closed {
		defer g.mu.Unlock()
		for i, w := range g.workers {
			f(i, w)
		}
		return g.closeErr
	}
	g.drainAppenders()
	dones := make([]chan struct{}, len(g.workers))
	for i, w := range g.workers {
		done := make(chan struct{})
		dones[i] = done
		w.in <- msg[T]{do: func(m *hier.Matrix[T]) { f(i, w) }, done: done}
	}
	g.mu.Unlock() // the barrier is placed; waiting needs no lock
	for _, done := range dones {
		<-done
	}
	return nil
}

// runOne is run for a single shard: it drains only that shard's slice of
// every producer buffer and barriers only that shard's queue, so the
// latency of a shard-local read (Lookup) is independent of the other
// shards' queue depth. Consistency: all of a batch's entries for THIS
// shard sit in one buffer slice and are drained together, so any state f
// observes includes each accepted batch's contribution to this shard
// either entirely or not at all — exactly the batch atomicity a
// shard-local read can distinguish.
func (g *Group[T]) runOne(sh int, f func(w *worker[T])) error {
	g.mu.Lock()
	if g.closed {
		defer g.mu.Unlock()
		f(g.workers[sh])
		return g.closeErr
	}
	g.regMu.Lock()
	apps := append([]*Appender[T](nil), g.appenders...)
	g.regMu.Unlock()
	for _, a := range apps {
		if len(a.rows[sh]) > 0 {
			a.handoffShard(sh)
		}
	}
	w := g.workers[sh]
	done := make(chan struct{})
	w.in <- msg[T]{do: func(m *hier.Matrix[T]) { f(w) }, done: done}
	g.mu.Unlock()
	<-done
	return nil
}

// Err reports the first sticky ingest error, if any shard has failed. It
// doubles as a drain barrier: on return, every batch accepted before the
// call has been ingested (unlike Flush it does not force the cascades to
// promote, so it is the cheap way to wait for queued work).
func (g *Group[T]) Err() error {
	errs := make([]error, len(g.workers))
	_ = g.run(func(i int, w *worker[T]) { errs[i] = w.err })
	return firstError(errs)
}

// Flush drains every producer buffer and shard queue and completes all
// pending cascade work, so a subsequent Query reflects every batch accepted
// before the call. On a durable group it is also a group-commit point: each
// shard's WAL is fsynced, so every batch accepted before the call survives
// a crash (a cheaper durability point than Checkpoint, which additionally
// snapshots and truncates the logs). It returns the first ingest or flush
// error; after Close it reports the Close outcome.
func (g *Group[T]) Flush() error {
	var snap map[string]uint64
	if g.Durable() {
		snap = g.snapshotAccepted()
	}
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		_, errs[i] = w.m.Flush()
		if errs[i] == nil && w.log != nil {
			if err := w.log.sync(); err != nil {
				// Sticky, like a logBatch failure: after a failed fsync
				// the log can no longer prove durability (the kernel may
				// have dropped the dirty pages), so the shard must stop
				// accepting batches rather than let a retried Flush
				// report success over a hole in the log.
				w.err = fmt.Errorf("wal: %w", err)
				errs[i] = w.err
			}
		}
	}); err != nil {
		return err
	}
	if err := firstError(errs); err != nil {
		return err
	}
	// Every frame in the snapshot was enqueued before the barrier, so its
	// records are under the fsync that just succeeded on every shard.
	g.commitDurableSessions(snap)
	return nil
}

// Close drains the producer buffers and queues, stops the workers, and
// completes all cascade work. The group stays readable — queries keep
// working on the final state — but Update and Append return ErrClosed.
// On a durable group Close also takes a final checkpoint (so a later
// RecoverGroup restores from snapshots alone, with no log replay) and
// closes the WAL files. Close is idempotent and returns the first ingest,
// flush, or checkpoint error.
func (g *Group[T]) Close() error {
	g.ckptMu.Lock() // before mu: Checkpoint takes ckptMu then mu
	defer g.ckptMu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return g.closeErr
	}
	g.drainAppenders() // before the queues close: buffered entries count
	g.closed = true
	for _, w := range g.workers {
		close(w.in)
	}
	g.wg.Wait() // workers drain their queues before exiting
	errs := make([]error, len(g.workers))
	for i, w := range g.workers {
		if w.err != nil {
			errs[i] = w.err
			continue
		}
		_, errs[i] = w.m.Flush()
	}
	g.closeErr = firstError(errs)
	if g.cfg.Durable.Dir != "" {
		if g.closeErr == nil {
			// Final checkpoint: the workers are gone, so the shard steps
			// run inline — safe, nothing else touches the matrices while
			// mu is held.
			g.closeErr = g.checkpointLocked()
		}
		for _, w := range g.workers {
			if w.log != nil {
				if err := w.log.close(); err != nil && g.closeErr == nil {
					g.closeErr = err
				}
				w.log = nil
			}
		}
		releaseDirLock(g.cfg.Durable.Dir)
	}
	return g.closeErr
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Query materializes the merged total A = Σ over shards Σ over levels.
// Because GraphBLAS addition is linear, the result is exactly the matrix a
// single unsharded cascade would hold after the same stream. Analyses that
// only need degrees, sums, top-k, counts, or single cells should prefer the
// pushdown queries (RowSums, TopRows, NVals, Lookup, Aggregates, ...),
// which skip this global materialization.
func (g *Group[T]) Query() (*gb.Matrix[T], error) {
	parts := make([]*gb.Matrix[T], len(g.workers))
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		parts[i], errs[i] = w.m.Query()
	}); err != nil {
		return nil, err
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return gb.Sum(parts...)
}

// ShardStats snapshots every shard's cascade counters.
func (g *Group[T]) ShardStats() []hier.Stats {
	out := make([]hier.Stats, len(g.workers))
	_ = g.run(func(i int, w *worker[T]) { out[i] = w.m.Stats() })
	return out
}

// Stats merges the per-shard cascade counters into one view: scalar
// counters add, and the per-level promotion counters add elementwise
// (every shard has the same depth by construction).
func (g *Group[T]) Stats() hier.Stats {
	per := g.ShardStats()
	merged := hier.Stats{
		Cascades:        make([]int64, g.Levels()),
		CascadedEntries: make([]int64, g.Levels()),
	}
	for _, s := range per {
		merged.Updates += s.Updates
		merged.Batches += s.Batches
		merged.Queries += s.Queries
		for l := range s.Cascades {
			merged.Cascades[l] += s.Cascades[l]
			merged.CascadedEntries[l] += s.CascadedEntries[l]
		}
	}
	return merged
}

// LevelNVals reports the merged per-level occupancy across shards.
func (g *Group[T]) LevelNVals() []int {
	out := make([]int, g.Levels())
	var mu sync.Mutex
	_ = g.run(func(i int, w *worker[T]) {
		lv := w.m.LevelNVals()
		mu.Lock()
		defer mu.Unlock()
		for l, n := range lv {
			out[l] += n
		}
	})
	return out
}
