package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

// ErrClosed is returned by Update after Close.
var ErrClosed = errors.New("shard: group is closed")

// DefaultDepth is the default per-shard queue depth in batches. Deep enough
// to decouple producers from a momentarily-cascading shard, shallow enough
// that a Flush barrier stays cheap and queued batches stay cache-warm.
const DefaultDepth = 8

// Config describes a sharded ingest group.
type Config struct {
	// Shards is the number of independent cascades (and worker
	// goroutines). Zero or negative selects runtime.GOMAXPROCS(0).
	Shards int
	// Depth is the per-shard queue depth in batches; zero or negative
	// selects DefaultDepth.
	Depth int
	// Hier configures every shard's cascade. As in hier.New, nil Cuts
	// yields a single flat level.
	Hier hier.Config
}

// withDefaults resolves zero values to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	return c
}

// msg is one unit of work on a shard queue: a batch to ingest (rows set),
// or a control request to run on the worker's goroutine (do set). Control
// requests double as barriers: the queue is FIFO, so by the time do runs,
// every batch enqueued before it has been ingested.
type msg[T gb.Number] struct {
	rows []gb.Index
	cols []gb.Index
	vals []T
	do   func(m *hier.Matrix[T])
	done chan struct{}
}

// worker is one shard: a cascade owned by a single goroutine.
type worker[T gb.Number] struct {
	in  chan msg[T]
	m   *hier.Matrix[T]
	err error // first ingest error; owned by the worker goroutine
}

func (w *worker[T]) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for msg := range w.in {
		if msg.do != nil {
			msg.do(w.m)
			close(msg.done)
			continue
		}
		if w.err != nil {
			continue // sticky: drop batches after the first failure
		}
		w.err = w.m.Update(msg.rows, msg.cols, msg.vals)
	}
}

// Group is one logical nrows x ncols traffic matrix hash-partitioned across
// independent hierarchical cascades. Update is safe for concurrent use by
// any number of producer goroutines; the analysis-time queries may run
// concurrently with ingest and observe a batch-atomic merged snapshot:
// every accepted batch is either entirely included or entirely excluded
// (the query barrier excludes in-flight Update calls, see run).
type Group[T gb.Number] struct {
	nrows, ncols gb.Index
	cfg          Config
	workers      []*worker[T]
	wg           sync.WaitGroup

	mu       sync.RWMutex // guards closed vs. channel sends and close
	closed   bool
	closeErr error
}

// NewGroup returns a running sharded group; its workers idle until the
// first Update. Callers that finish ingesting should Close it.
func NewGroup[T gb.Number](nrows, ncols gb.Index, cfg Config) (*Group[T], error) {
	cfg = cfg.withDefaults()
	g := &Group[T]{nrows: nrows, ncols: ncols, cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		m, err := hier.New[T](nrows, ncols, cfg.Hier)
		if err != nil {
			return nil, err
		}
		g.workers = append(g.workers, &worker[T]{
			in: make(chan msg[T], cfg.Depth),
			m:  m,
		})
	}
	g.wg.Add(len(g.workers))
	for _, w := range g.workers {
		go w.loop(&g.wg)
	}
	return g, nil
}

// NRows returns the row dimension.
func (g *Group[T]) NRows() gb.Index { return g.nrows }

// NCols returns the column dimension.
func (g *Group[T]) NCols() gb.Index { return g.ncols }

// NumShards returns the shard count.
func (g *Group[T]) NumShards() int { return len(g.workers) }

// Levels returns the per-shard cascade depth.
func (g *Group[T]) Levels() int { return g.workers[0].m.NumLevels() }

// shardOf routes an entry to a shard by mixing both coordinates (splitmix64
// final avalanche over src ⊕ rotated dst). Hashing the full (src, dst) pair
// keeps shards balanced even when a single power-law supernode source
// dominates the stream — row-only hashing would funnel that hot row into
// one shard.
func (g *Group[T]) shardOf(row, col gb.Index) int {
	x := uint64(row) ^ (uint64(col)<<32 | uint64(col)>>32)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(g.workers)))
}

// Update hash-partitions one batch of updates and enqueues the per-shard
// sub-batches, blocking only when a destination queue is full. The input
// slices are copied before the call returns and may be reused immediately.
// Ingest is asynchronous: a nil return means the batch was accepted, not
// ingested; ingest errors surface on Flush, Close, Err, and the queries.
func (g *Group[T]) Update(rows, cols []gb.Index, vals []T) error {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return fmt.Errorf("%w: slice lengths %d/%d/%d differ", gb.ErrInvalidValue, len(rows), len(cols), len(vals))
	}
	if len(rows) == 0 {
		return nil
	}
	// Validate bounds before partitioning so a bad batch is rejected
	// synchronously and atomically, like gb.Matrix.AppendTuples.
	for k := range rows {
		if rows[k] >= g.nrows || cols[k] >= g.ncols {
			return fmt.Errorf("%w: (%d,%d) outside %d x %d", gb.ErrIndexOutOfBounds, rows[k], cols[k], g.nrows, g.ncols)
		}
	}

	k := len(g.workers)
	bRows := make([][]gb.Index, k)
	bCols := make([][]gb.Index, k)
	bVals := make([][]T, k)
	if k == 1 {
		bRows[0] = append([]gb.Index(nil), rows...)
		bCols[0] = append([]gb.Index(nil), cols...)
		bVals[0] = append([]T(nil), vals...)
	} else {
		for i := range rows {
			sh := g.shardOf(rows[i], cols[i])
			bRows[sh] = append(bRows[sh], rows[i])
			bCols[sh] = append(bCols[sh], cols[i])
			bVals[sh] = append(bVals[sh], vals[i])
		}
	}

	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.closed {
		return ErrClosed
	}
	for sh := 0; sh < k; sh++ {
		if len(bRows[sh]) == 0 {
			continue
		}
		g.workers[sh].in <- msg[T]{rows: bRows[sh], cols: bCols[sh], vals: bVals[sh]}
	}
	return nil
}

// run executes f(i, w) once per shard on the shard's own goroutine (a
// barrier: all batches enqueued before the call are ingested first), then
// waits for every shard. The barrier messages are enqueued under the write
// lock, so no Update can interleave its per-shard sub-batches with them:
// every accepted batch is either entirely before the barrier on all its
// shards or entirely after, making the observed state batch-atomic. After
// Close the workers are gone and the cascades are drained; f then runs
// inline, still under the write lock so concurrent post-Close queries are
// serialized (the matrices are no longer protected by worker goroutines).
// The per-shard f calls may run concurrently with each other before Close;
// f must only touch shard-local state.
func (g *Group[T]) run(f func(i int, w *worker[T])) error {
	g.mu.Lock()
	if g.closed {
		defer g.mu.Unlock()
		for i, w := range g.workers {
			f(i, w)
		}
		return g.closeErr
	}
	dones := make([]chan struct{}, len(g.workers))
	for i, w := range g.workers {
		done := make(chan struct{})
		dones[i] = done
		w.in <- msg[T]{do: func(m *hier.Matrix[T]) { f(i, w) }, done: done}
	}
	g.mu.Unlock() // the barrier is placed; waiting needs no lock
	for _, done := range dones {
		<-done
	}
	return nil
}

// Err reports the first sticky ingest error, if any shard has failed. It
// doubles as a drain barrier: on return, every batch accepted before the
// call has been ingested (unlike Flush it does not force the cascades to
// promote, so it is the cheap way to wait for queued work).
func (g *Group[T]) Err() error {
	errs := make([]error, len(g.workers))
	_ = g.run(func(i int, w *worker[T]) { errs[i] = w.err })
	return firstError(errs)
}

// Flush drains every queue and completes all pending cascade work, so a
// subsequent Query reflects every batch accepted before the call. It
// returns the first ingest or flush error.
func (g *Group[T]) Flush() error {
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		_, errs[i] = w.m.Flush()
	}); err != nil {
		return err
	}
	return firstError(errs)
}

// Close drains the queues, stops the workers, and completes all cascade
// work. The group stays readable — queries keep working on the final
// state — but Update returns ErrClosed. Close is idempotent and returns
// the first ingest or flush error.
func (g *Group[T]) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return g.closeErr
	}
	g.closed = true
	for _, w := range g.workers {
		close(w.in)
	}
	g.wg.Wait() // workers drain their queues before exiting
	errs := make([]error, len(g.workers))
	for i, w := range g.workers {
		if w.err != nil {
			errs[i] = w.err
			continue
		}
		_, errs[i] = w.m.Flush()
	}
	g.closeErr = firstError(errs)
	return g.closeErr
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Query materializes the merged total A = Σ over shards Σ over levels.
// Because GraphBLAS addition is linear, the result is exactly the matrix a
// single unsharded cascade would hold after the same stream.
func (g *Group[T]) Query() (*gb.Matrix[T], error) {
	parts := make([]*gb.Matrix[T], len(g.workers))
	errs := make([]error, len(g.workers))
	if err := g.run(func(i int, w *worker[T]) {
		if w.err != nil {
			errs[i] = w.err
			return
		}
		parts[i], errs[i] = w.m.Query()
	}); err != nil {
		return nil, err
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return gb.Sum(parts...)
}

// NVals returns the number of distinct stored entries in the merged matrix.
func (g *Group[T]) NVals() (int, error) {
	q, err := g.Query()
	if err != nil {
		return 0, err
	}
	return q.NVals(), nil
}

// ShardStats snapshots every shard's cascade counters.
func (g *Group[T]) ShardStats() []hier.Stats {
	out := make([]hier.Stats, len(g.workers))
	_ = g.run(func(i int, w *worker[T]) { out[i] = w.m.Stats() })
	return out
}

// Stats merges the per-shard cascade counters into one view: scalar
// counters add, and the per-level promotion counters add elementwise
// (every shard has the same depth by construction).
func (g *Group[T]) Stats() hier.Stats {
	per := g.ShardStats()
	merged := hier.Stats{
		Cascades:        make([]int64, g.Levels()),
		CascadedEntries: make([]int64, g.Levels()),
	}
	for _, s := range per {
		merged.Updates += s.Updates
		merged.Batches += s.Batches
		merged.Queries += s.Queries
		for l := range s.Cascades {
			merged.Cascades[l] += s.Cascades[l]
			merged.CascadedEntries[l] += s.CascadedEntries[l]
		}
	}
	return merged
}

// LevelNVals reports the merged per-level occupancy across shards.
func (g *Group[T]) LevelNVals() []int {
	out := make([]int, g.Levels())
	var mu sync.Mutex
	_ = g.run(func(i int, w *worker[T]) {
		lv := w.m.LevelNVals()
		mu.Lock()
		defer mu.Unlock()
		for l, n := range lv {
			out[l] += n
		}
	})
	return out
}
