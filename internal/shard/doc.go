// Package shard implements the concurrent sharded ingest frontend: one
// logical traffic matrix hash-partitioned across S independent hierarchical
// hypersparse cascades, each owned by a dedicated worker goroutine and fed
// through a bounded batch channel.
//
// This is the single-node analogue of the paper's scaling experiment. The
// paper reaches 75B inserts/second by running ~31,000 shared-nothing
// hierarchical matrix instances across 1,100 servers; the follow-up work
// (arXiv:2108.06650) shows the same shared-nothing composition applies
// *inside* one node across cores. A Group is exactly that composition:
//
//	producer(s) ──Update──▶ hash(src,dst) ─┬─▶ chan ─▶ worker 0 ─▶ cascade 0
//	                                       ├─▶ chan ─▶ worker 1 ─▶ cascade 1
//	                                       ┆                    ┆
//	                                       └─▶ chan ─▶ worker S-1 ─▶ cascade S-1
//
// Ingest is wait-free between shards: each worker sorts and merges only its
// own sub-batches inside its own cache-resident level-1 matrix, so aggregate
// update throughput scales with cores until memory bandwidth saturates.
// Because GraphBLAS addition is linear, the union of the shard cascades is
// exactly equivalent to one flat accumulation; analysis-time queries merge
// the per-shard totals with Σ and are bit-identical to the unsharded path
// (a property the package tests verify).
//
// Lifecycle: Update may be called from any number of goroutines. Flush
// drains every queue and completes all cascade work. Close flushes, stops
// the workers, and leaves the group readable (queries keep working on the
// drained state); Update after Close returns ErrClosed.
package shard
