// Package shard implements the concurrent sharded ingest frontend: one
// logical traffic matrix hash-partitioned across S independent hierarchical
// hypersparse cascades, each owned by a dedicated worker goroutine and fed
// through a bounded batch channel.
//
// This is the single-node analogue of the paper's scaling experiment. The
// paper reaches 75B inserts/second by running ~31,000 shared-nothing
// hierarchical matrix instances across 1,100 servers; the follow-up work
// (arXiv:2108.06650) shows the same shared-nothing composition applies
// *inside* one node across cores. A Group is exactly that composition, with
// per-producer shard buffers so partitioning is amortized and P producers
// never contend on a shared splitter:
//
//	producer 0 ─Append─▶ S local buffers ─┐ (handoff on full buffer)
//	producer 1 ─Append─▶ S local buffers ─┼─▶ chan ─▶ worker 0 ─▶ cascade 0
//	     ┆                                ├─▶ chan ─▶ worker 1 ─▶ cascade 1
//	producer P ─Append─▶ S local buffers ─┘        ┆            ┆
//	                                       ─▶ chan ─▶ worker S-1 ─▶ cascade S-1
//
// Ingest is wait-free between shards: each worker sorts and merges only its
// own buffers inside its own cache-resident level-1 matrix, so aggregate
// update throughput scales with cores until memory bandwidth saturates.
// Each producer either calls Update (which borrows a striped buffer set)
// or owns an Appender (its own P×S buffer row above); a buffer is handed to its
// shard queue when it reaches Config.Handoff entries, so the per-entry
// producer cost is one hash and one append regardless of shard count.
//
// Because GraphBLAS addition is linear and the hash assigns every (row,
// col) cell to exactly one shard, the union of the shard cascades is
// exactly equivalent to one flat accumulation. Analysis queries are pushed
// down to the shards and merged at read time — degrees, sums, and counts by
// monoid merge, top-k by bounded heap, single cells by routing to the one
// owning shard — so the serial read-time cost is the result size, not the
// total stored nnz; Query still materializes the full merged Σ when the
// whole matrix is wanted. Every query observes a batch-atomic snapshot and
// is bit-identical to the unsharded path (properties the package tests
// verify).
//
// Durability: with Config.Durable set, each worker additionally owns a
// CRC32-framed write-ahead log (internal/wal) and logs every batch before
// applying it, fsyncing on a group-commit interval; Checkpoint serializes
// each shard's cascade into a snapshot (hier.Encode), commits a manifest
// atomically, and truncates the logs; RecoverGroup restores manifest +
// snapshots + surviving log tails after a crash, tolerating a torn final
// frame. See durable.go for the epoch protocol and its crash-window
// guarantees.
//
// Lifecycle: Update/Append may be called from any number of goroutines
// (each Appender from one). Flush drains every producer buffer and queue
// and completes all cascade work (and fsyncs the logs of a durable
// group). Close flushes, stops the workers — after a final checkpoint on
// a durable group — and leaves the group readable (queries keep working
// on the drained state); Update and Append after Close return ErrClosed.
package shard
