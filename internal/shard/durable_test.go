package shard

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

// The kill-point tests simulate a crash by copying the durability
// directory at a chosen instant (the exact on-disk state a kill -9 would
// leave: unsynced bufio tails lost, synced frames intact) and recovering
// from the copy while the original group keeps running. Each crash window
// must recover to exactly the durable prefix of the stream — same merged
// matrix, same counts, same pushdown answers as an in-memory reference fed
// that prefix.

const ktDim = gb.Index(1) << 16

var ktCuts = []int{8, 64}

// ktBatch returns deterministic batch i: 64 entries with repeated cells so
// accumulation (not just insertion) is exercised.
func ktBatch(i int) (rows, cols []gb.Index, vals []uint64) {
	const n = 64
	x := uint64(i)*0x9e3779b97f4a7c15 + 1
	for k := 0; k < n; k++ {
		x ^= x >> 12
		x *= 0x2545f4914f6cdd1d
		x ^= x << 25
		rows = append(rows, gb.Index(x>>17)%ktDim)
		cols = append(cols, gb.Index(x>>31)%ktDim)
		vals = append(vals, x%7+1)
	}
	return rows, cols, vals
}

// ktApply streams the given batch indices into g.
func ktApply(t *testing.T, g *Group[uint64], batches []int) {
	t.Helper()
	for _, i := range batches {
		r, c, v := ktBatch(i)
		if err := g.Update(r, c, v); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}

// ktRef builds the in-memory reference state: the same batches through a
// plain non-durable group.
func ktRef(t *testing.T, batches []int) *Group[uint64] {
	t.Helper()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{Shards: 3, Hier: hier.Config{Cuts: ktCuts}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	ktApply(t, g, batches)
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	return g
}

// assertSameState proves got and want hold the identical logical matrix:
// merged Query bit-equal, plus the pushdown answers a recovered service
// would actually serve (counts, totals, degree vectors, top-k, lookups).
func assertSameState(t *testing.T, got, want *Group[uint64]) {
	t.Helper()
	qg, err := got.Query()
	if err != nil {
		t.Fatal(err)
	}
	qw, err := want.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(qg, qw) {
		t.Fatalf("recovered matrix differs: %d vs %d entries", qg.NVals(), qw.NVals())
	}
	ng, err := got.NVals()
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := want.NVals()
	if ng != nw {
		t.Fatalf("NVals %d != %d", ng, nw)
	}
	tg, err := got.Total()
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := want.Total()
	if tg != tw {
		t.Fatalf("Total %d != %d", tg, tw)
	}
	rg, err := got.RowSums()
	if err != nil {
		t.Fatal(err)
	}
	rw, _ := want.RowSums()
	if !gb.VecEqual(rg, rw) {
		t.Fatal("RowSums differ")
	}
	kg, err := got.TopRows(5)
	if err != nil {
		t.Fatal(err)
	}
	kw, _ := want.TopRows(5)
	if len(kg) != len(kw) {
		t.Fatalf("TopRows lengths %d != %d", len(kg), len(kw))
	}
	for i := range kg {
		if kg[i] != kw[i] {
			t.Fatalf("TopRows[%d] = %+v != %+v", i, kg[i], kw[i])
		}
	}
	checked := 0
	qw.Iterate(func(i, j gb.Index, v uint64) bool {
		gv, ok, err := got.Lookup(i, j)
		if err != nil || !ok || gv != v {
			t.Fatalf("Lookup(%d,%d) = %d,%v,%v; want %d", i, j, gv, ok, err, v)
		}
		checked++
		return checked < 8
	})
}

// copyDir snapshots the on-disk state of a durability directory.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func recoverCopy(t *testing.T, dir string) (*Group[uint64], RecoverStats) {
	t.Helper()
	g, st, err := RecoverGroup[uint64](Config{Durable: Durability{Dir: dir}})
	if err != nil {
		t.Fatalf("RecoverGroup: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g, st
}

func seq(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestKillPointRecovery(t *testing.T) {
	// noSync disables the batch-count group commit so only explicit
	// barriers (Flush, Checkpoint) make anything durable — every crash
	// window below is then exactly controlled.
	const noSync = 1 << 30
	cases := []struct {
		name string
		// run drives g to the crash point and returns the crash-state
		// directory copy.
		run  func(t *testing.T, g *Group[uint64], dir string) string
		want []int // batch indices the recovered state must equal
	}{
		{
			name: "before-any-sync",
			// Batches accepted, logged by the workers (Err is a drain
			// barrier), never synced: a crash loses all of them.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				if err := g.Err(); err != nil {
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want: nil,
		},
		{
			name: "after-sync-before-checkpoint",
			// Flush is the group-commit point: everything before it must
			// survive via WAL replay alone (no snapshot exists yet).
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				if err := g.Flush(); err != nil {
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want: seq(0, 10),
		},
		{
			name: "synced-then-unsynced-tail",
			// The synced prefix survives; the accepted-but-unsynced tail
			// is lost — the group-commit contract.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				if err := g.Flush(); err != nil {
					t.Fatal(err)
				}
				ktApply(t, g, seq(10, 20))
				if err := g.Err(); err != nil {
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want: seq(0, 10),
		},
		{
			name: "after-checkpoint",
			// Snapshot-only restore: logs were truncated at checkpoint,
			// the unsynced tail after it is lost.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				ktApply(t, g, seq(10, 20))
				if err := g.Err(); err != nil {
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want: seq(0, 10),
		},
		{
			name: "checkpoint-then-synced-tail",
			// Snapshot plus WAL-tail replay compose.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				ktApply(t, g, seq(10, 20))
				if err := g.Flush(); err != nil {
					t.Fatal(err)
				}
				return copyDir(t, dir)
			},
			want: seq(0, 20),
		},
		{
			name: "mid-checkpoint-before-manifest",
			// Crash after every shard snapshotted and rotated but before
			// the manifest commit: the OLD manifest still governs, and
			// restore goes snapshot(old) + full old segments + empty new
			// segments — the same state, reached the long way.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				var copy string
				g.ckptHook = func(stage string) {
					if stage == "snapshots" && copy == "" {
						copy = copyDir(t, dir)
					}
				}
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				g.ckptHook = nil
				if copy == "" {
					t.Fatal("snapshots hook never fired")
				}
				return copy
			},
			want: seq(0, 10),
		},
		{
			name: "mid-checkpoint-after-manifest-before-prune",
			// Crash between manifest commit and prune: the NEW manifest
			// governs; stale old-epoch files must be ignored.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				var copy string
				g.ckptHook = func(stage string) {
					if stage == "manifest" && copy == "" {
						copy = copyDir(t, dir)
					}
				}
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				g.ckptHook = nil
				if copy == "" {
					t.Fatal("manifest hook never fired")
				}
				return copy
			},
			want: seq(0, 10),
		},
		{
			name: "after-close",
			// Close takes a final checkpoint; restart is snapshot-only.
			run: func(t *testing.T, g *Group[uint64], dir string) string {
				ktApply(t, g, seq(0, 10))
				if err := g.Close(); err != nil {
					t.Fatal(err)
				}
				// A clean shutdown leaves only manifest + snapshots:
				// the final checkpoint does not rotate, so no empty
				// segments accumulate across restarts.
				ents, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range ents {
					if _, _, isWAL, ok := parseDataFile(e.Name()); ok && isWAL {
						t.Fatalf("stray WAL segment after Close: %s", e.Name())
					}
				}
				return copyDir(t, dir)
			},
			want: seq(0, 10),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g, err := NewGroup[uint64](ktDim, ktDim, Config{
				Shards:  3,
				Hier:    hier.Config{Cuts: ktCuts},
				Durable: Durability{Dir: dir, SyncEvery: noSync},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			crashDir := tc.run(t, g, dir)
			rec, _ := recoverCopy(t, crashDir)
			assertSameState(t, rec, ktRef(t, tc.want))
		})
	}
}

// buildTornDir produces the crash-state directory of a single-shard group
// that synced ten one-batch frames (batches 0..9) and then died mid-append:
// the copy's segment is truncated one byte into its final frame, so nine
// intact frames remain.
func buildTornDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards:  1,
		Hier:    hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir, SyncEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	for i := 0; i < 10; i++ {
		ktApply(t, g, []int{i})
		if err := g.Err(); err != nil { // drain so each batch is one frame
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	crash := copyDir(t, dir)

	// Tear the final frame in the copy: chop one byte off the segment.
	ents, err := os.ReadDir(crash)
	if err != nil {
		t.Fatal(err)
	}
	torn := 0
	for _, e := range ents {
		if _, _, isWAL, ok := parseDataFile(e.Name()); ok && isWAL {
			p := filepath.Join(crash, e.Name())
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() == 0 {
				continue
			}
			if err := os.Truncate(p, st.Size()-1); err != nil {
				t.Fatal(err)
			}
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("tore %d segments, want 1", torn)
	}
	return crash
}

func TestRecoveryToleratesTornFinalFrame(t *testing.T) {
	crash := buildTornDir(t)
	rec, st := recoverCopy(t, crash)
	if st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	if st.ReplayedBatches != 9 {
		t.Fatalf("ReplayedBatches = %d, want 9 (the torn 10th is dropped)", st.ReplayedBatches)
	}
	assertSameState(t, rec, ktRef(t, seq(0, 9)))
}

// TestRecoverySurvivesCrashMidRecovery pins the recovery commit order:
// a recovery attempt that dies after writing its fresh-epoch snapshots
// but before committing the manifest must leave the directory exactly as
// recoverable as before — in particular, the shard's torn segment must
// still count as its NEWEST segment (tolerated tail), which is why
// recovery creates its new log segments only after the manifest commits.
func TestRecoverySurvivesCrashMidRecovery(t *testing.T) {
	crash := buildTornDir(t)
	man, err := readManifest(crash)
	if err != nil {
		t.Fatal(err)
	}
	// The stray artifact of the dead attempt: a higher-epoch snapshot,
	// old manifest untouched, no higher-epoch segments.
	m, err := hier.New[uint64](ktDim, ktDim, hier.Config{Cuts: ktCuts})
	if err != nil {
		t.Fatal(err)
	}
	stray := snapName(0, man.Epoch+1)
	if err := writeSnapshot(filepath.Join(crash, stray), m, defaultCodec[uint64]()); err != nil {
		t.Fatal(err)
	}
	rec, st := recoverCopy(t, crash)
	if st.TornTails != 1 || st.ReplayedBatches != 9 {
		t.Fatalf("TornTails=%d ReplayedBatches=%d, want 1/9", st.TornTails, st.ReplayedBatches)
	}
	assertSameState(t, rec, ktRef(t, seq(0, 9)))
	if _, err := os.Stat(filepath.Join(crash, stray)); !os.IsNotExist(err) {
		t.Fatalf("stray snapshot not pruned: %v", err)
	}
}

func TestRecoverResumeAndReRecover(t *testing.T) {
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards:  3,
		Hier:    hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	ktApply(t, g, seq(0, 10))
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	// "Crash" (abandon without Close) and recover in place: the recovered
	// group must accept further ingest, checkpoint, and survive a second
	// recovery with the full stream intact.
	crash := copyDir(t, dir)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	r1, st := recoverCopy(t, crash)
	if st.ReplayedBatches == 0 {
		t.Fatal("expected WAL replay (no checkpoint was taken)")
	}
	ktApply(t, r1, seq(10, 20))
	if err := r1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r2, st2 := recoverCopy(t, copyDir(t, crash))
	if st2.ReplayedBatches != 0 {
		t.Fatalf("post-checkpoint recovery replayed %d batches, want 0", st2.ReplayedBatches)
	}
	assertSameState(t, r2, ktRef(t, seq(0, 20)))
}

func TestDurabilityLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards: 2, Hier: hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A second group on the same directory must refuse, not shadow.
	if _, err := NewGroup[uint64](ktDim, ktDim, Config{Durable: Durability{Dir: dir}}); err == nil ||
		!strings.Contains(err.Error(), "RecoverGroup") {
		t.Fatalf("NewGroup on a live durable dir: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}

	plain, err := NewGroup[uint64](ktDim, ktDim, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint without durability = %v, want ErrNotDurable", err)
	}
	if _, _, err := RecoverGroup[uint64](Config{}); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("RecoverGroup without dir = %v, want ErrNotDurable", err)
	}
	if _, _, err := RecoverGroup[uint64](Config{Durable: Durability{Dir: t.TempDir()}}); err == nil {
		t.Fatal("RecoverGroup on an empty dir must fail (no manifest)")
	}
}

// TestDirLockInProcessOwner pins the heldDirs registry: while a live group
// in this process owns a directory, a second claim is refused; Close
// releases the ownership.
func TestDirLockInProcessOwner(t *testing.T) {
	dir := t.TempDir()
	g, err := NewGroup[uint64](ktDim, ktDim, Config{
		Shards: 1, Hier: hier.Config{Cuts: ktCuts},
		Durable: Durability{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverGroup[uint64](Config{Durable: Durability{Dir: dir}}); err == nil ||
		!strings.Contains(err.Error(), "live group in this process") {
		t.Fatalf("RecoverGroup while a live in-process group owns the dir: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	r, _, err := RecoverGroup[uint64](Config{Durable: Durability{Dir: dir}})
	if err != nil {
		t.Fatalf("RecoverGroup after Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
