package shard

import "hhgb/internal/gb"

// Slab recycling: the buffers riding every data message — appender
// handoffs and UpdateSession partitions — circulate through a bounded
// free-list instead of being allocated per handoff and left to the
// garbage collector. A producer takes a slab when a shard buffer first
// needs backing, fills it, and hands it to the shard queue; the worker
// copies the entries into its cascade and puts the slab back. Once the
// list has warmed to the live producer/queue population, steady-state
// ingest recycles the same backing arrays forever.
//
// A plain buffered channel (not sync.Pool) keeps the recycling
// deterministic: sync.Pool empties at GC, which would make the
// "append stage allocates zero" budget tests racy against the collector.

// slab is one shard buffer's backing: three parallel arrays, length zero,
// capacity at least the group's handoff size.
type slab[T gb.Number] struct {
	rows []gb.Index
	cols []gb.Index
	vals []T
}

// newSlabList sizes the free-list to the group's worst-case circulation:
// every shard queue full plus one in flight per queue slot producer-side,
// so a saturated group recycles without ever dropping a slab on the
// floor. Retained memory stays bounded by the same product.
func newSlabList[T gb.Number](cfg Config) chan slab[T] {
	return make(chan slab[T], cfg.Shards*(cfg.Depth+2))
}

// getSlab pops a recycled slab or allocates a fresh one at handoff
// capacity. Never blocks.
func (g *Group[T]) getSlab() slab[T] {
	select {
	case s := <-g.slabs:
		return s
	default:
		h := g.cfg.Handoff
		return slab[T]{
			rows: make([]gb.Index, 0, h),
			cols: make([]gb.Index, 0, h),
			vals: make([]T, 0, h),
		}
	}
}

// putSlab recycles a slab (already truncated to length zero) onto the
// free-list, dropping it when the list is full. Never blocks.
func putSlab[T gb.Number](slabs chan slab[T], s slab[T]) {
	select {
	case slabs <- s:
	default:
	}
}

// partScratch is the reusable per-call workspace of UpdateSession: the
// slice-of-slice headers that point each shard at its partition slab.
type partScratch[T gb.Number] struct {
	rows [][]gb.Index
	cols [][]gb.Index
	vals [][]T
}

// getParts pops (or allocates) a partition scratch sized to the shard
// count. Entries are nil; the caller lazily attaches slabs to the shards
// that receive entries and must nil every attached entry before putParts.
func (g *Group[T]) getParts() *partScratch[T] {
	select {
	case p := <-g.parts:
		return p
	default:
		n := len(g.workers)
		return &partScratch[T]{
			rows: make([][]gb.Index, n),
			cols: make([][]gb.Index, n),
			vals: make([][]T, n),
		}
	}
}

// putParts recycles a partition scratch whose entries are all nil again.
func (g *Group[T]) putParts(p *partScratch[T]) {
	select {
	case g.parts <- p:
	default:
	}
}
