package powerlaw

import (
	"errors"
	"math"
	"testing"

	"hhgb/internal/gb"
)

func TestRMATDeterministic(t *testing.T) {
	g1, err := NewRMAT(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewRMAT(16, 42)
	e1 := g1.Edges(1000)
	e2 := g2.Edges(1000)
	for k := range e1 {
		if e1[k] != e2[k] {
			t.Fatalf("edge %d differs: %v vs %v", k, e1[k], e2[k])
		}
	}
}

func TestRMATSeedsDiffer(t *testing.T) {
	g1, _ := NewRMAT(16, 1)
	g2, _ := NewRMAT(16, 2)
	same := 0
	e1, e2 := g1.Edges(500), g2.Edges(500)
	for k := range e1 {
		if e1[k] == e2[k] {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produced %d/500 identical edges", same)
	}
}

func TestRMATBounds(t *testing.T) {
	g, _ := NewRMAT(10, 7)
	n := g.NumVertices()
	if n != 1024 {
		t.Fatalf("NumVertices = %d", n)
	}
	for _, e := range g.Edges(5000) {
		if e.Row >= n || e.Col >= n {
			t.Fatalf("edge out of bounds: %v", e)
		}
		if e.Val != 1 {
			t.Fatalf("edge weight = %d", e.Val)
		}
	}
}

func TestRMATParamValidation(t *testing.T) {
	if _, err := NewRMAT(0, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("scale 0: %v", err)
	}
	if _, err := NewRMAT(63, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("scale 63: %v", err)
	}
	if _, err := NewRMATParams(10, 1, 0.5, 0.5, 0.5, 0.5); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("bad probs: %v", err)
	}
	if _, err := NewRMATParams(10, 1, -0.1, 0.5, 0.3, 0.3); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("negative prob: %v", err)
	}
}

func TestRMATSkew(t *testing.T) {
	// Graph500 parameters concentrate mass in low vertex ids: vertex id 0's
	// quadrant (a = 0.57) must attract far more edges than uniform would.
	g, _ := NewRMAT(12, 99)
	edges := g.Edges(20000)
	low := 0
	half := g.NumVertices() / 2
	for _, e := range edges {
		if e.Row < half {
			low++
		}
	}
	frac := float64(low) / float64(len(edges))
	// P(row < half) = a + b = 0.76 per top-level split.
	if frac < 0.70 || frac > 0.82 {
		t.Fatalf("low-half fraction = %v, want ~0.76", frac)
	}
}

func TestRMATFill(t *testing.T) {
	g, _ := NewRMAT(10, 3)
	rows := make([]gb.Index, 100)
	cols := make([]gb.Index, 100)
	if err := g.Fill(rows, cols); err != nil {
		t.Fatal(err)
	}
	if err := g.Fill(rows, cols[:50]); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("mismatched fill: %v", err)
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z, err := NewZipf(1000, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for k := 0; k < 50000; k++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 10 which must dominate rank 100.
	if !(counts[0] > counts[10] && counts[10] > counts[100]) {
		t.Fatalf("zipf ordering broken: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// Theoretical ratio c0/c1 = 2^1.5 ≈ 2.83; allow wide sampling noise.
	ratio := float64(counts[0]) / float64(counts[1]+1)
	if ratio < 1.8 || ratio > 4.5 {
		t.Fatalf("c0/c1 = %v, want ~2.8", ratio)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1.5, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := NewZipf(1<<25, 1.5, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("huge n: %v", err)
	}
	if _, err := NewZipf(100, 0, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("s=0: %v", err)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	// alpha=0.5 gives P(X > 2^20) ≈ 2^-10, so 1e5 draws see the tail with
	// overwhelming probability while every draw stays in range.
	p, err := NewBoundedPareto(1<<40, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	seenHigh := false
	for k := 0; k < 100000; k++ {
		v := p.Next()
		if v >= 1<<40 {
			t.Fatalf("out of range: %d", v)
		}
		if v > 1<<20 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("heavy tail never sampled above 2^20 in 1e5 draws")
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	p, _ := NewBoundedPareto(1<<30, 1.2, 13)
	low := 0
	const draws = 50000
	for k := 0; k < draws; k++ {
		if p.Next() < 100 {
			low++
		}
	}
	// With alpha=1.2 the mass below 100 is overwhelming.
	if float64(low)/draws < 0.9 {
		t.Fatalf("low-100 mass = %v, want > 0.9", float64(low)/draws)
	}
}

func TestBoundedParetoValidation(t *testing.T) {
	if _, err := NewBoundedPareto(0, 1, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("n=0: %v", err)
	}
	if _, err := NewBoundedPareto(10, -1, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("alpha<0: %v", err)
	}
}

func TestParetoPairs(t *testing.T) {
	p, err := NewParetoPairs(1<<32, 1.1, 77)
	if err != nil {
		t.Fatal(err)
	}
	edges := p.Edges(1000)
	if len(edges) != 1000 {
		t.Fatalf("len = %d", len(edges))
	}
	// Rows and columns are drawn independently: they should not be equal
	// everywhere.
	eq := 0
	for _, e := range edges {
		if e.Row == e.Col {
			eq++
		}
	}
	if eq > 900 {
		t.Fatalf("rows == cols in %d/1000 draws", eq)
	}
}

func TestToTuples(t *testing.T) {
	edges := []Edge{{1, 2, 3}, {4, 5, 6}}
	r, c, v := ToTuples(edges)
	if r[1] != 4 || c[1] != 5 || v[1] != 6 {
		t.Fatalf("tuples = %v %v %v", r, c, v)
	}
}

func TestStreamSpecValidate(t *testing.T) {
	if err := (StreamSpec{TotalEdges: 100, SetSize: 33, Scale: 10, Seed: 1}).Validate(); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("indivisible: %v", err)
	}
	if err := (StreamSpec{TotalEdges: 0, SetSize: 1, Scale: 10}).Validate(); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero edges: %v", err)
	}
	if err := (StreamSpec{TotalEdges: 100, SetSize: 10, Scale: 0}).Validate(); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero scale: %v", err)
	}
	spec := StreamSpec{TotalEdges: 1000, SetSize: 100, Scale: 12, Seed: 1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Sets() != 10 {
		t.Fatalf("sets = %d", spec.Sets())
	}
}

func TestPaperSpecShape(t *testing.T) {
	s := PaperSpec(1)
	if s.TotalEdges != 100_000_000 || s.SetSize != 100_000 || s.Sets() != 1000 {
		t.Fatalf("paper spec = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledSpecKeepsStructure(t *testing.T) {
	s := ScaledSpec(1_000_000, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Sets() != 1000 {
		t.Fatalf("sets = %d, want 1000", s.Sets())
	}
	tiny := ScaledSpec(5000, 1)
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
	if tiny.SetSize < 1000 {
		t.Fatalf("tiny set size = %d", tiny.SetSize)
	}
}

func TestGenerateSetDeterministicAndComplete(t *testing.T) {
	spec := StreamSpec{TotalEdges: 10000, SetSize: 1000, Scale: 14, Seed: 9}
	a, err := spec.GenerateSet(3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.GenerateSet(3)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("set regeneration differs at %d", k)
		}
	}
	// Different sets differ.
	c, _ := spec.GenerateSet(4)
	same := 0
	for k := range a {
		if a[k] == c[k] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("sets 3 and 4 share %d/%d edges", same, len(a))
	}
	// Sets tile the stream exactly.
	total := 0
	for k := 0; k < spec.Sets(); k++ {
		s, err := spec.GenerateSet(k)
		if err != nil {
			t.Fatal(err)
		}
		total += len(s)
	}
	if total != spec.TotalEdges {
		t.Fatalf("sets cover %d edges, want %d", total, spec.TotalEdges)
	}
	if _, err := spec.GenerateSet(-1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("negative set: %v", err)
	}
	if _, err := spec.GenerateSet(10); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("set beyond end: %v", err)
	}
}

func TestFillSetMatchesGenerateSet(t *testing.T) {
	spec := StreamSpec{TotalEdges: 4000, SetSize: 1000, Scale: 12, Seed: 4}
	want, _ := spec.GenerateSet(2)
	rows := make([]gb.Index, spec.SetSize)
	cols := make([]gb.Index, spec.SetSize)
	if err := spec.FillSet(2, rows, cols); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if rows[k] != want[k].Row || cols[k] != want[k].Col {
			t.Fatalf("FillSet diverges at %d", k)
		}
	}
	if err := spec.FillSet(2, rows[:10], cols[:10]); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("short slices: %v", err)
	}
}

func TestDegreeHistogramAndSlope(t *testing.T) {
	g, _ := NewRMAT(14, 21)
	edges := g.Edges(60000)
	hist := OutDegreeHistogram(edges)
	if len(hist) < 5 {
		t.Fatalf("degenerate histogram: %v", hist)
	}
	slope := FitSlope(hist)
	// Power law: clearly negative slope on log-log axes.
	if slope > -0.5 {
		t.Fatalf("slope = %v, want < -0.5 (power law)", slope)
	}
	if math.IsNaN(slope) || math.IsInf(slope, 0) {
		t.Fatalf("slope = %v", slope)
	}
}

func TestFitSlopeDegenerate(t *testing.T) {
	if s := FitSlope(map[int]int{}); s != 0 {
		t.Fatalf("empty hist slope = %v", s)
	}
	if s := FitSlope(map[int]int{3: 10}); s != 0 {
		t.Fatalf("single point slope = %v", s)
	}
}
