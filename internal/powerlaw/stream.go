package powerlaw

import (
	"fmt"
	"math"
	"sort"

	"hhgb/internal/gb"
)

// StreamSpec describes the paper's workload shape: TotalEdges entries
// divided into Sets() sets of SetSize entries, drawn from an R-MAT graph
// over 2^Scale vertices. The paper uses TotalEdges=100,000,000 and
// SetSize=100,000 (1,000 sets); laptop-scale runs shrink both while keeping
// the structure.
type StreamSpec struct {
	TotalEdges int
	SetSize    int
	Scale      int
	Seed       uint64
}

// Validate checks the specification.
func (s StreamSpec) Validate() error {
	if s.TotalEdges < 1 || s.SetSize < 1 {
		return fmt.Errorf("%w: stream sizes must be >= 1 (total %d, set %d)", gb.ErrInvalidValue, s.TotalEdges, s.SetSize)
	}
	if s.TotalEdges%s.SetSize != 0 {
		return fmt.Errorf("%w: total %d not divisible by set size %d", gb.ErrInvalidValue, s.TotalEdges, s.SetSize)
	}
	if s.Scale < 1 || s.Scale > 62 {
		return fmt.Errorf("%w: scale %d outside [1,62]", gb.ErrInvalidValue, s.Scale)
	}
	return nil
}

// Sets returns the number of sets the stream divides into.
func (s StreamSpec) Sets() int { return s.TotalEdges / s.SetSize }

// PaperSpec returns the exact workload of the paper's Section III:
// 100,000,000 entries in 1,000 sets of 100,000, over a 2^32-vertex
// (IPv4-scale) vertex space.
func PaperSpec(seed uint64) StreamSpec {
	return StreamSpec{TotalEdges: 100_000_000, SetSize: 100_000, Scale: 32, Seed: seed}
}

// ScaledSpec returns the paper's workload shape shrunk to totalEdges while
// preserving the 1,000-sets structure where possible (set size is
// totalEdges/1000, floored to at least 1,000 entries).
func ScaledSpec(totalEdges int, seed uint64) StreamSpec {
	setSize := totalEdges / 1000
	if setSize < 1000 {
		setSize = 1000
	}
	if setSize > totalEdges {
		setSize = totalEdges
	}
	totalEdges = (totalEdges / setSize) * setSize
	return StreamSpec{TotalEdges: totalEdges, SetSize: setSize, Scale: 22, Seed: seed}
}

// setSeed derives the deterministic sub-seed for set k, mixing with
// splitmix64 so neighbouring sets are statistically independent.
func (s StreamSpec) setSeed(k int) uint64 {
	x := s.Seed + 0x9e3779b97f4a7c15*uint64(k+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// GenerateSet produces set k (0-based) of the stream. Any process can
// generate any set independently and reproducibly — the shared-nothing
// property the cluster harness relies on.
func (s StreamSpec) GenerateSet(k int) ([]Edge, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if k < 0 || k >= s.Sets() {
		return nil, fmt.Errorf("%w: set %d outside [0,%d)", gb.ErrInvalidValue, k, s.Sets())
	}
	g, err := NewRMAT(s.Scale, s.setSeed(k))
	if err != nil {
		return nil, err
	}
	return g.Edges(s.SetSize), nil
}

// FillSet regenerates set k into pre-allocated slices of length SetSize,
// avoiding per-set allocation in tight benchmark loops.
func (s StreamSpec) FillSet(k int, rows, cols []gb.Index) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if k < 0 || k >= s.Sets() {
		return fmt.Errorf("%w: set %d outside [0,%d)", gb.ErrInvalidValue, k, s.Sets())
	}
	if len(rows) != s.SetSize || len(cols) != s.SetSize {
		return fmt.Errorf("%w: fill slices must have length %d", gb.ErrInvalidValue, s.SetSize)
	}
	g, err := NewRMAT(s.Scale, s.setSeed(k))
	if err != nil {
		return err
	}
	return g.Fill(rows, cols)
}

// OutDegreeHistogram returns degree -> number of vertices with that
// out-degree, for slope analysis of generated graphs.
func OutDegreeHistogram(edges []Edge) map[int]int {
	deg := make(map[gb.Index]int)
	for _, e := range edges {
		deg[e.Row]++
	}
	hist := make(map[int]int)
	for _, d := range deg {
		hist[d]++
	}
	return hist
}

// FitSlope estimates the power-law exponent of a degree histogram by
// least-squares regression of log(count) on log(degree). A power-law
// degree distribution yields a clearly negative slope; the Graph500 R-MAT
// parameters give roughly -2 at moderate scales.
func FitSlope(hist map[int]int) float64 {
	var xs, ys []float64
	for d, c := range hist {
		if d > 0 && c > 0 {
			xs = append(xs, math.Log(float64(d)))
			ys = append(ys, math.Log(float64(c)))
		}
	}
	if len(xs) < 2 {
		return 0
	}
	sort.Sort(byPair{xs, ys})
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for k := range xs {
		sx += xs[k]
		sy += ys[k]
		sxx += xs[k] * xs[k]
		sxy += xs[k] * ys[k]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

type byPair struct{ xs, ys []float64 }

func (p byPair) Len() int { return len(p.xs) }
func (p byPair) Swap(i, j int) {
	p.xs[i], p.xs[j] = p.xs[j], p.xs[i]
	p.ys[i], p.ys[j] = p.ys[j], p.ys[i]
}
func (p byPair) Less(i, j int) bool { return p.xs[i] < p.xs[j] }
