// Package algo implements the graph algorithms the SuiteSparse GraphBLAS
// ecosystem is known for — BFS, triangle counting, k-truss, PageRank and
// connected components — expressed over the semiring kernels in
// internal/gb. Davis's companion papers (ACM TOMS Algorithm 1000; HPEC'18
// "triangle counting and k-truss") evaluate exactly these workloads; they
// are the analyses a traffic-matrix deployment runs on the accumulated
// hypersparse matrices.
package algo

import (
	"fmt"
	"math"

	"hhgb/internal/gb"
)

// BFS returns the hop distance from source to every reachable vertex
// (distance 0 for the source itself) as a hypersparse vector. The
// traversal is level-synchronous vxm over the boolean-like any/pair
// structure of the adjacency matrix a (values are ignored; the pattern is
// the graph).
func BFS(a *gb.Matrix[uint64], source gb.Index) (*gb.Vector[uint64], error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("%w: adjacency matrix %dx%d not square", gb.ErrDimensionMismatch, a.NRows(), a.NCols())
	}
	if source >= n {
		return nil, fmt.Errorf("%w: source %d outside %d vertices", gb.ErrIndexOutOfBounds, source, n)
	}
	dist, err := gb.NewVector[uint64](n)
	if err != nil {
		return nil, err
	}
	if err := dist.Build([]gb.Index{source}, []uint64{0}, gb.First[uint64]); err != nil {
		return nil, err
	}
	frontier := dist.Dup()

	// any.pair: reachability only; values collapse to 1.
	anyPair := gb.Semiring[uint64]{
		Add:  gb.Any[uint64](),
		Mul:  func(_, _ uint64) uint64 { return 1 },
		Name: "any.pair",
	}
	for depth := uint64(1); frontier.NVals() > 0; depth++ {
		next, err := gb.VxM(frontier, a, anyPair)
		if err != nil {
			return nil, err
		}
		// Keep only vertices not seen before.
		fresh, err := vecMaskOut(next, dist)
		if err != nil {
			return nil, err
		}
		if fresh.NVals() == 0 {
			break
		}
		d := depth
		depthVec, err := gb.VecApply(fresh, func(uint64) uint64 { return d })
		if err != nil {
			return nil, err
		}
		dist, err = gb.VecEWiseAdd(dist, depthVec, gb.First[uint64])
		if err != nil {
			return nil, err
		}
		frontier = depthVec
	}
	return dist, nil
}

// vecMaskOut returns the entries of v whose index is NOT present in mask
// (a structural complement mask).
func vecMaskOut[T gb.Number](v, mask *gb.Vector[T]) (*gb.Vector[T], error) {
	out, err := gb.NewVector[T](v.Size())
	if err != nil {
		return nil, err
	}
	var idx []gb.Index
	var vals []T
	v.Iterate(func(i gb.Index, x T) bool {
		if _, err := mask.ExtractElement(i); err != nil {
			idx = append(idx, i)
			vals = append(vals, x)
		}
		return true
	})
	if err := out.Build(idx, vals, gb.First[T]); err != nil && len(idx) > 0 {
		return nil, err
	}
	return out, nil
}

// TriangleCount returns the number of triangles in the undirected graph
// whose adjacency pattern is a (which must be symmetric with an empty
// diagonal). It uses the Sandia L·L formulation from Davis's HPEC'18
// paper: count = reduce(EWiseMult(L, L·L)) over plus.pair, where L is the
// strictly lower triangle.
func TriangleCount(a *gb.Matrix[uint64]) (uint64, error) {
	if a.NRows() != a.NCols() {
		return 0, fmt.Errorf("%w: adjacency matrix not square", gb.ErrDimensionMismatch)
	}
	l, err := gb.Tril(a, -1)
	if err != nil {
		return 0, err
	}
	// C<L> = L·L over plus.pair: the masked multiply only computes output
	// positions that are themselves edges, which is what makes the Sandia
	// formulation subquadratic on sparse graphs.
	masked, err := gb.MxMMasked(l, l, gb.PlusPair[uint64](), gb.StructuralMask(l))
	if err != nil {
		return 0, err
	}
	return gb.ReduceScalar(masked, gb.Plus[uint64]())
}

// KTruss returns the k-truss of the undirected graph a: the maximal
// subgraph in which every edge supports at least k-2 triangles. The
// returned matrix holds, for each surviving edge, its triangle support.
// Follows the iterated support-filter formulation of Davis (HPEC'18).
func KTruss(a *gb.Matrix[uint64], k int) (*gb.Matrix[uint64], error) {
	if k < 3 {
		return nil, fmt.Errorf("%w: k-truss needs k >= 3 (got %d)", gb.ErrInvalidValue, k)
	}
	if a.NRows() != a.NCols() {
		return nil, fmt.Errorf("%w: adjacency matrix not square", gb.ErrDimensionMismatch)
	}
	// Work on the full symmetric pattern with values 1.
	c, err := gb.Apply(a, func(uint64) uint64 { return 1 })
	if err != nil {
		return nil, err
	}
	support := k - 2
	for {
		// Support of each surviving edge: C<C> = C·C over plus.pair.
		sup, err := gb.MxMMasked(c, c, gb.PlusPair[uint64](), gb.StructuralMask(c))
		if err != nil {
			return nil, err
		}
		keep, err := gb.Select(sup, func(_, _ gb.Index, v uint64) bool {
			return v >= uint64(support)
		})
		if err != nil {
			return nil, err
		}
		if keep.NVals() == c.NVals() {
			return keep, nil
		}
		if keep.NVals() == 0 {
			return keep, nil
		}
		c, err = gb.Apply(keep, func(uint64) uint64 { return 1 })
		if err != nil {
			return nil, err
		}
	}
}

// PageRank computes the PageRank of every vertex with damping factor d,
// iterating until the L1 delta drops below tol or maxIter sweeps. Returns
// a dense-ish hypersparse vector over the graph's non-isolated vertices.
func PageRank(a *gb.Matrix[uint64], d float64, tol float64, maxIter int) (*gb.Vector[float64], error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("%w: adjacency matrix not square", gb.ErrDimensionMismatch)
	}
	if d <= 0 || d >= 1 {
		return nil, fmt.Errorf("%w: damping %v outside (0,1)", gb.ErrInvalidValue, d)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("%w: maxIter %d < 1", gb.ErrInvalidValue, maxIter)
	}

	// Column-stochastic transition: P(j,i) = 1/outdeg(j) for edge j->i.
	// Build as float matrix with rows scaled by 1/outdeg.
	rows, cols, _ := a.ExtractTuples()
	outdeg := make(map[gb.Index]float64)
	for _, r := range rows {
		outdeg[r]++
	}
	vals := make([]float64, len(rows))
	for k, r := range rows {
		vals[k] = 1 / outdeg[r]
	}
	p, err := gb.MatrixFromTuples(n, n, rows, cols, vals, gb.Plus[float64]().Op)
	if err != nil {
		return nil, err
	}

	// Vertex universe: every endpoint of an edge.
	verts := make(map[gb.Index]bool)
	for k := range rows {
		verts[rows[k]] = true
		verts[cols[k]] = true
	}
	nv := float64(len(verts))
	if nv == 0 {
		return gb.NewVector[float64](n)
	}
	var vidx []gb.Index
	for v := range verts {
		vidx = append(vidx, v)
	}
	rank, err := gb.NewVector[float64](n)
	if err != nil {
		return nil, err
	}
	init := make([]float64, len(vidx))
	for k := range init {
		init[k] = 1 / nv
	}
	if err := rank.Build(vidx, init, gb.First[float64]); err != nil {
		return nil, err
	}

	teleport := (1 - d) / nv
	for iter := 0; iter < maxIter; iter++ {
		spread, err := gb.VxM(rank, p, gb.PlusTimes[float64]())
		if err != nil {
			return nil, err
		}
		next, err := gb.NewVector[float64](n)
		if err != nil {
			return nil, err
		}
		// next = teleport + d*spread over the vertex universe; dangling
		// mass (rank at vertices with no out-edges) redistributes evenly.
		var dangling float64
		rank.Iterate(func(i gb.Index, x float64) bool {
			if _, hasOut := outdeg[i]; !hasOut {
				dangling += x
			}
			return true
		})
		base := teleport + d*dangling/nv
		nvals := make([]float64, len(vidx))
		for k, v := range vidx {
			s, err := spread.ExtractElement(v)
			if err != nil {
				s = 0
			}
			nvals[k] = base + d*s
		}
		if err := next.Build(vidx, nvals, gb.First[float64]); err != nil {
			return nil, err
		}
		// L1 delta.
		var delta float64
		next.Iterate(func(i gb.Index, x float64) bool {
			prev, err := rank.ExtractElement(i)
			if err != nil {
				prev = 0
			}
			delta += math.Abs(x - prev)
			return true
		})
		rank = next
		if delta < tol {
			break
		}
	}
	return rank, nil
}

// ConnectedComponents labels every non-isolated vertex of the undirected
// graph a with the smallest vertex id of its component, via label
// propagation over the min.first semiring until a fixed point.
func ConnectedComponents(a *gb.Matrix[uint64]) (*gb.Vector[uint64], error) {
	n := a.NRows()
	if a.NCols() != n {
		return nil, fmt.Errorf("%w: adjacency matrix not square", gb.ErrDimensionMismatch)
	}
	rows, cols, _ := a.ExtractTuples()
	verts := make(map[gb.Index]bool)
	for k := range rows {
		verts[rows[k]] = true
		verts[cols[k]] = true
	}
	labels, err := gb.NewVector[uint64](n)
	if err != nil {
		return nil, err
	}
	var vidx []gb.Index
	var vlab []uint64
	for v := range verts {
		vidx = append(vidx, v)
		vlab = append(vlab, uint64(v))
	}
	if len(vidx) == 0 {
		return labels, nil
	}
	if err := labels.Build(vidx, vlab, gb.First[uint64]); err != nil {
		return nil, err
	}

	const inf = math.MaxUint64
	minFirst := gb.Semiring[uint64]{
		Add:  gb.MinWith[uint64](inf),
		Mul:  gb.First[uint64],
		Name: "min.first",
	}
	for {
		prop, err := gb.VxM(labels, a, minFirst)
		if err != nil {
			return nil, err
		}
		next, err := gb.VecEWiseAdd(labels, prop, func(x, y uint64) uint64 {
			if x < y {
				return x
			}
			return y
		})
		if err != nil {
			return nil, err
		}
		if gb.VecEqual(next, labels) {
			return labels, nil
		}
		labels = next
	}
}
