package algo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hhgb/internal/gb"
)

// undirected builds a symmetric adjacency matrix from an edge list.
func undirected(t testing.TB, n gb.Index, edges [][2]gb.Index) *gb.Matrix[uint64] {
	t.Helper()
	m := gb.MustNewMatrix[uint64](n, n)
	for _, e := range edges {
		if err := m.SetElement(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
		if err := m.SetElement(e[1], e[0], 1); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// pathGraph returns 0-1-2-...-n-1.
func pathGraph(t testing.TB, n int) *gb.Matrix[uint64] {
	t.Helper()
	var edges [][2]gb.Index
	for k := 0; k < n-1; k++ {
		edges = append(edges, [2]gb.Index{gb.Index(uint64(k)), gb.Index(uint64(k + 1))})
	}
	return undirected(t, gb.Index(uint64(n)), edges)
}

func TestBFSPath(t *testing.T) {
	a := pathGraph(t, 6)
	dist, err := BFS(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := gb.Index(0); v < 6; v++ {
		d, err := dist.ExtractElement(v)
		if err != nil || d != uint64(v) {
			t.Fatalf("dist(%d) = %d, %v; want %d", v, d, err, v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	a := undirected(t, 10, [][2]gb.Index{{0, 1}, {1, 2}, {5, 6}})
	dist, err := BFS(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist.NVals() != 3 {
		t.Fatalf("reached %d vertices, want 3", dist.NVals())
	}
	if _, err := dist.ExtractElement(5); !errors.Is(err, gb.ErrNoValue) {
		t.Fatal("unreachable vertex got a distance")
	}
}

func TestBFSSourceOnly(t *testing.T) {
	a := gb.MustNewMatrix[uint64](8, 8)
	dist, err := BFS(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dist.NVals() != 1 {
		t.Fatalf("NVals = %d", dist.NVals())
	}
	d, _ := dist.ExtractElement(3)
	if d != 0 {
		t.Fatalf("dist(source) = %d", d)
	}
}

func TestBFSErrors(t *testing.T) {
	rect := gb.MustNewMatrix[uint64](4, 5)
	if _, err := BFS(rect, 0); !errors.Is(err, gb.ErrDimensionMismatch) {
		t.Fatalf("rect: %v", err)
	}
	sq := gb.MustNewMatrix[uint64](4, 4)
	if _, err := BFS(sq, 9); !errors.Is(err, gb.ErrIndexOutOfBounds) {
		t.Fatalf("oob: %v", err)
	}
}

func TestBFSAgainstReferenceOnRandomGraph(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n = 60
	var edges [][2]gb.Index
	for k := 0; k < 150; k++ {
		edges = append(edges, [2]gb.Index{gb.Index(r.Uint64() % n), gb.Index(r.Uint64() % n)})
	}
	a := undirected(t, n, edges)
	dist, err := BFS(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference BFS over an adjacency map.
	adj := make(map[gb.Index][]gb.Index)
	a.Iterate(func(i, j gb.Index, _ uint64) bool {
		adj[i] = append(adj[i], j)
		return true
	})
	ref := map[gb.Index]uint64{0: 0}
	queue := []gb.Index{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if _, seen := ref[w]; !seen {
				ref[w] = ref[v] + 1
				queue = append(queue, w)
			}
		}
	}
	if dist.NVals() != len(ref) {
		t.Fatalf("reached %d, reference %d", dist.NVals(), len(ref))
	}
	dist.Iterate(func(i gb.Index, d uint64) bool {
		if ref[i] != d {
			t.Fatalf("dist(%d) = %d, reference %d", i, d, ref[i])
		}
		return true
	})
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// A single triangle.
	tri := undirected(t, 4, [][2]gb.Index{{0, 1}, {1, 2}, {0, 2}})
	n, err := TriangleCount(tri)
	if err != nil || n != 1 {
		t.Fatalf("triangle: %d, %v", n, err)
	}
	// K4 has C(4,3) = 4 triangles.
	k4 := undirected(t, 4, [][2]gb.Index{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	n, err = TriangleCount(k4)
	if err != nil || n != 4 {
		t.Fatalf("K4: %d, %v", n, err)
	}
	// A path has none.
	p := pathGraph(t, 10)
	n, err = TriangleCount(p)
	if err != nil || n != 0 {
		t.Fatalf("path: %d, %v", n, err)
	}
	// K5: C(5,3) = 10.
	var k5e [][2]gb.Index
	for i := gb.Index(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k5e = append(k5e, [2]gb.Index{i, j})
		}
	}
	k5 := undirected(t, 5, k5e)
	n, err = TriangleCount(k5)
	if err != nil || n != 10 {
		t.Fatalf("K5: %d, %v", n, err)
	}
}

func TestTriangleCountAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const n = 30
	var edges [][2]gb.Index
	seen := map[[2]gb.Index]bool{}
	for k := 0; k < 80; k++ {
		i, j := gb.Index(r.Uint64()%n), gb.Index(r.Uint64()%n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if !seen[[2]gb.Index{i, j}] {
			seen[[2]gb.Index{i, j}] = true
			edges = append(edges, [2]gb.Index{i, j})
		}
	}
	a := undirected(t, n, edges)
	got, err := TriangleCount(a)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, e1 := range edges {
		for _, e2 := range edges {
			if e1[1] == e2[0] && seen[[2]gb.Index{e1[0], e2[1]}] {
				want++
			}
		}
	}
	if got != want {
		t.Fatalf("triangles = %d, brute force %d", got, want)
	}
}

func TestKTrussTriangleSurvives(t *testing.T) {
	// Triangle + pendant edge: 3-truss keeps the triangle, drops the tail.
	a := undirected(t, 5, [][2]gb.Index{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	k3, err := KTruss(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k3.NVals() != 6 { // 3 undirected edges = 6 stored entries
		t.Fatalf("3-truss edges = %d, want 6", k3.NVals())
	}
	if _, err := k3.ExtractElement(2, 3); !errors.Is(err, gb.ErrNoValue) {
		t.Fatal("pendant edge survived 3-truss")
	}
	// 4-truss of a lone triangle is empty (each edge supports 1 < 2).
	k4, err := KTruss(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k4.NVals() != 0 {
		t.Fatalf("4-truss of triangle = %d entries", k4.NVals())
	}
}

func TestKTrussK4(t *testing.T) {
	k4 := undirected(t, 4, [][2]gb.Index{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	out, err := KTruss(k4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge of K4 supports exactly 2 triangles: all survive k=4.
	if out.NVals() != 12 {
		t.Fatalf("4-truss of K4 = %d entries, want 12", out.NVals())
	}
	v, _ := out.ExtractElement(0, 1)
	if v != 2 {
		t.Fatalf("support(0,1) = %d, want 2", v)
	}
}

func TestKTrussValidation(t *testing.T) {
	a := gb.MustNewMatrix[uint64](4, 4)
	if _, err := KTruss(a, 2); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("k=2: %v", err)
	}
	rect := gb.MustNewMatrix[uint64](4, 5)
	if _, err := KTruss(rect, 3); !errors.Is(err, gb.ErrDimensionMismatch) {
		t.Fatalf("rect: %v", err)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// Directed 4-cycle: symmetric structure → uniform ranks of 1/4.
	a := gb.MustNewMatrix[uint64](4, 4)
	for i := gb.Index(0); i < 4; i++ {
		_ = a.SetElement(i, (i+1)%4, 1)
	}
	pr, err := PageRank(a, 0.85, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pr.NVals() != 4 {
		t.Fatalf("ranked %d vertices", pr.NVals())
	}
	pr.Iterate(func(i gb.Index, x float64) bool {
		if math.Abs(x-0.25) > 1e-6 {
			t.Fatalf("rank(%d) = %v, want 0.25", i, x)
		}
		return true
	})
}

func TestPageRankSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := gb.MustNewMatrix[uint64](50, 50)
	for k := 0; k < 120; k++ {
		_ = a.SetElement(gb.Index(r.Uint64()%50), gb.Index(r.Uint64()%50), 1)
	}
	pr, err := PageRank(a, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := gb.VecReduce(pr, gb.Plus[float64]())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank mass = %v, want 1", sum)
	}
}

func TestPageRankHubWins(t *testing.T) {
	// Star pointing into vertex 0: vertex 0 must hold the highest rank.
	a := gb.MustNewMatrix[uint64](6, 6)
	for i := gb.Index(1); i < 6; i++ {
		_ = a.SetElement(i, 0, 1)
	}
	_ = a.SetElement(0, 1, 1) // give the hub an out-edge
	pr, err := PageRank(a, 0.85, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	hub, _ := pr.ExtractElement(0)
	pr.Iterate(func(i gb.Index, x float64) bool {
		if i != 0 && x >= hub {
			t.Fatalf("vertex %d rank %v >= hub %v", i, x, hub)
		}
		return true
	})
}

func TestPageRankValidation(t *testing.T) {
	a := gb.MustNewMatrix[uint64](4, 4)
	if _, err := PageRank(a, 0, 1e-6, 10); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("d=0: %v", err)
	}
	if _, err := PageRank(a, 1, 1e-6, 10); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("d=1: %v", err)
	}
	if _, err := PageRank(a, 0.85, 1e-6, 0); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("maxIter=0: %v", err)
	}
	empty, err := PageRank(a, 0.85, 1e-6, 10)
	if err != nil || empty.NVals() != 0 {
		t.Fatalf("empty graph: %v, %v", empty, err)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {5,6}; 9 isolated (absent).
	a := undirected(t, 10, [][2]gb.Index{{0, 1}, {1, 2}, {5, 6}})
	cc, err := ConnectedComponents(a)
	if err != nil {
		t.Fatal(err)
	}
	if cc.NVals() != 5 {
		t.Fatalf("labeled %d vertices, want 5", cc.NVals())
	}
	for _, v := range []gb.Index{0, 1, 2} {
		l, _ := cc.ExtractElement(v)
		if l != 0 {
			t.Fatalf("label(%d) = %d, want 0", v, l)
		}
	}
	for _, v := range []gb.Index{5, 6} {
		l, _ := cc.ExtractElement(v)
		if l != 5 {
			t.Fatalf("label(%d) = %d, want 5", v, l)
		}
	}
}

func TestConnectedComponentsLongPath(t *testing.T) {
	// Label propagation on a path takes many rounds: exercises the fixed
	// point loop.
	a := pathGraph(t, 40)
	cc, err := ConnectedComponents(a)
	if err != nil {
		t.Fatal(err)
	}
	cc.Iterate(func(i gb.Index, l uint64) bool {
		if l != 0 {
			t.Fatalf("label(%d) = %d", i, l)
		}
		return true
	})
}

func TestConnectedComponentsAgainstUnionFind(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	const n = 50
	var edges [][2]gb.Index
	for k := 0; k < 40; k++ {
		edges = append(edges, [2]gb.Index{gb.Index(r.Uint64() % n), gb.Index(r.Uint64() % n)})
	}
	a := undirected(t, n, edges)
	cc, err := ConnectedComponents(a)
	if err != nil {
		t.Fatal(err)
	}
	// Union-find reference.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		a, b := find(int(e[0])), find(int(e[1]))
		if a != b {
			parent[a] = b
		}
	}
	// Same-component in reference ⇔ same label in result.
	labels := make(map[gb.Index]uint64)
	cc.Iterate(func(i gb.Index, l uint64) bool {
		labels[i] = l
		return true
	})
	for v1 := range labels {
		for v2 := range labels {
			sameRef := find(int(v1)) == find(int(v2))
			sameGot := labels[v1] == labels[v2]
			if sameRef != sameGot {
				t.Fatalf("vertices %d,%d: reference same=%v, got same=%v", v1, v2, sameRef, sameGot)
			}
		}
	}
}
