package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	out := render(t, r)
	for _, want := range []string{
		"# HELP test_events_total Events seen.\n",
		"# TYPE test_events_total counter\n",
		"test_events_total 5\n",
		"# TYPE test_depth gauge\n",
		"test_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "x")
	b := r.Counter("test_total", "x")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	l1 := r.Counter("test_labeled_total", "x", L("op", "a"))
	l2 := r.Counter("test_labeled_total", "x", L("op", "b"))
	if l1 == l2 {
		t.Fatal("different labels must return different series")
	}
	if got := r.Counter("test_labeled_total", "x", L("op", "a")); got != l1 {
		t.Fatal("re-registration with same labels must return the original")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter must panic")
		}
	}()
	r.Gauge("test_total", "x")
}

func TestFuncBackedSum(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("test_applied_total", "x", func() int64 { return 3 })
	r.CounterFunc("test_applied_total", "x", func() int64 { return 4 })
	out := render(t, r)
	if !strings.Contains(out, "test_applied_total 7\n") {
		t.Fatalf("func-backed counters must sum:\n%s", out)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "x", []float64{0.1, 1}, L("op", "q"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)
	out := render(t, r)
	for _, want := range []string{
		`test_seconds_bucket{op="q",le="0.1"} 1`,
		`test_seconds_bucket{op="q",le="1"} 3`,
		`test_seconds_bucket{op="q",le="+Inf"} 4`,
		`test_seconds_sum{op="q"} 100.05`,
		`test_seconds_count{op="q"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
}

func TestIntegralValuesRenderAsIntegers(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("test_big_total", "x", func() int64 { return 2000000 })
	out := render(t, r)
	if !strings.Contains(out, "test_big_total 2000000\n") {
		t.Fatalf("large integral counters must not render in e-notation:\n%s", out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test_total", "x")
			h := r.Histogram("test_seconds", "x", nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test_total", "x").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("test_seconds", "x", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestExpositionParses runs every rendered line through
// ValidateExposition — the same well-formedness contract the CI smoke
// asserts with curl.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_events_total", "Events with \"quotes\" and \\ slash.").Add(3)
	r.Gauge("test_depth", "d", L("shard", "0")).Set(-2)
	r.Histogram("test_seconds", "h", nil, L("op", `quo"te`)).Observe(0.2)
	r.GaugeFunc("test_sampled", "s", func() int64 { return 11 })
	out := render(t, r)
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
}
