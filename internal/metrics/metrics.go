// Package metrics is a small, dependency-free instrumentation registry
// rendered in the Prometheus text exposition format (version 0.0.4, the
// format every Prometheus-compatible scraper speaks). It exists so the
// long-running deployment shape of this pipeline — the MIT SuperCloud
// GraphBLAS network monitor runs for months — can answer operational
// questions (ingest rate, seal lag, checkpoint pauses, overloaded
// connections) from any off-the-shelf dashboard, without this repo
// growing an external dependency.
//
// Three instrument kinds cover the repo's needs:
//
//   - Counter: a monotonically increasing integer (events, entries,
//     bytes). CounterFunc mirrors an existing atomic the /stats JSON
//     already maintains, so the two surfaces can never disagree.
//   - Gauge: an integer that goes both ways (queue depth, in-flight
//     budget, active windows). GaugeFunc samples at scrape time.
//   - Histogram: fixed cumulative buckets plus sum and count, for
//     latencies (fsync, checkpoint, per-op service time) and lags.
//
// Registration is idempotent: asking for an instrument that already
// exists (same name, same label set) returns the existing one, so every
// shard.Group of a window store shares one family of counters instead of
// colliding. Kind or help mismatches panic — they are programmer errors
// a test catches, not runtime conditions.
//
// All instruments are safe for concurrent use; updates are single
// atomic operations, cheap enough for per-batch (not per-entry) hot
// paths.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to an instrument at
// registration. Labels distinguish series within a family (for example
// op="insert" vs op="query" under one latency histogram).
type Label struct {
	Name, Value string
}

// L is shorthand for Label{Name: n, Value: v}.
func L(n, v string) Label { return Label{Name: n, Value: v} }

// DurationBuckets is the default histogram bucket layout for durations in
// seconds: 100µs to 10s, roughly geometric. Wide enough to place both a
// loopback insert (tens of µs land in the first bucket) and a stalled
// checkpoint; coarse enough that a scrape stays small.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LagBuckets is the bucket layout for lag-style measurements — stream
// time behind a frontier — which range from sub-second (a healthy
// watermark chase) to hours (a stalled backfill): 100ms to 1h.
var LagBuckets = []float64{
	0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 300, 900, 3600,
}

// Instrument kinds, as rendered in # TYPE lines.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets and tracks
// their sum, the Prometheus histogram contract. The implicit +Inf bucket
// always exists; Observe is two atomic adds.
type Histogram struct {
	uppers []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomicFloat
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Find the first bucket whose upper bound contains v. Linear scan:
	// bucket counts are small (16 by default) and the branch predictor
	// wins over binary search at this size.
	for i, ub := range h.uppers {
		if v <= ub {
			h.counts[i].Add(1)
			h.sum.add(v)
			return
		}
	}
	h.inf.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot returns the bucket upper bounds, the per-bucket (non-
// cumulative) observation counts, the +Inf bucket's count, and the sum
// of all observations. The bounds slice aliases the histogram's
// immutable configuration; the counts are a copy.
func (h *Histogram) Snapshot() (uppers []float64, counts []uint64, inf uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.uppers, counts, h.inf.Load(), h.sum.load()
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observations by
// linear interpolation inside the bucket holding it — the standard
// fixed-bucket estimate, as precise as the bucket layout. Observations
// in the +Inf bucket are reported as the highest finite bound (an
// underestimate, flagged by comparing against Sum/Count). Returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	uppers, counts, inf, _ := h.Snapshot()
	total := inf
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var seen float64
	lower := 0.0
	for i, c := range counts {
		if c > 0 && seen+float64(c) >= target {
			frac := (target - seen) / float64(c)
			return lower + (uppers[i]-lower)*frac
		}
		seen += float64(c)
		lower = uppers[i]
	}
	if len(uppers) > 0 {
		return uppers[len(uppers)-1]
	}
	return 0
}

// atomicFloat is a float64 updated by CAS on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// series is one labeled instrument within a family.
type series struct {
	labels []Label // sorted by name
	sig    string  // rendered label signature, the dedup key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is every series sharing one metric name (one HELP/TYPE pair).
type family struct {
	name, help, kind string
	series           map[string]*series
	order            []string // signatures in registration order, sorted at render
	funcs            []func() int64
	buckets          []float64 // histograms: the family-wide bucket layout
}

// Registry holds instrument families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// discard is the shared sink behind Discard.
var discard = NewRegistry()

// Discard returns a process-wide registry that is never scraped:
// components that were not handed a real registry register here, so the
// instrumented code path needs no nil checks. Instruments still count
// (two atomic ops), which profiles as noise.
func Discard() *Registry { return discard }

// OrDiscard returns r, or the shared discard registry when r is nil —
// the standard way a Config field plumbs through.
func OrDiscard(r *Registry) *Registry {
	if r == nil {
		return Discard()
	}
	return r
}

// validName reports whether s is a legal Prometheus metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*; labels additionally may not contain ':').
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		case c == ':':
			if label {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sig renders a sorted label set as its canonical {a="x",b="y"} signature
// (empty string for no labels).
func sig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// ensure returns the family for name, creating it with the given kind and
// help, and panics on any mismatch with a prior registration.
func (r *Registry) ensure(name, help, kind string) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, f.kind, kind))
	}
	if f.help != help {
		panic(fmt.Sprintf("metrics: %s already registered with different help text", name))
	}
	return f
}

// seriesFor returns (creating if needed) the series for the label set.
func (f *family) seriesFor(labels []Label) *series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	for _, l := range ls {
		if !validName(l.Name, true) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Name, f.name))
		}
	}
	s := sig(ls)
	if sr := f.series[s]; sr != nil {
		return sr
	}
	sr := &series{labels: ls, sig: s}
	f.series[s] = sr
	f.order = append(f.order, s)
	return sr
}

// Counter returns the counter with the given name and labels, registering
// it on first use. Help text and kind must agree across registrations.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensure(name, help, KindCounter)
	if len(f.funcs) > 0 {
		panic(fmt.Sprintf("metrics: %s is function-backed", name))
	}
	sr := f.seriesFor(labels)
	if sr.c == nil {
		sr.c = &Counter{}
	}
	return sr.c
}

// Gauge returns the gauge with the given name and labels, registering it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensure(name, help, KindGauge)
	if len(f.funcs) > 0 {
		panic(fmt.Sprintf("metrics: %s is function-backed", name))
	}
	sr := f.seriesFor(labels)
	if sr.g == nil {
		sr.g = &Gauge{}
	}
	return sr.g
}

// Histogram returns the histogram with the given name, bucket upper
// bounds (ascending, seconds by convention; nil selects DurationBuckets),
// and labels, registering it on first use. Every series in a family
// shares the first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensure(name, help, KindHistogram)
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	sr := f.seriesFor(labels)
	if sr.h == nil {
		sr.h = &Histogram{uppers: f.buckets, counts: make([]atomic.Uint64, len(f.buckets))}
	}
	return sr.h
}

// CounterFunc registers a sampled counter: fn is called at scrape time
// and must be monotonically non-decreasing (typically an atomic the
// component already maintains — the /stats counters — so the two
// surfaces reconcile exactly). Multiple registrations under one name sum,
// letting several instances share a family.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensure(name, help, KindCounter)
	if len(f.series) > 0 {
		panic(fmt.Sprintf("metrics: %s already has direct series", name))
	}
	f.funcs = append(f.funcs, fn)
}

// GaugeFunc registers a sampled gauge; multiple registrations sum.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.ensure(name, help, KindGauge)
	if len(f.series) > 0 {
		panic(fmt.Sprintf("metrics: %s already has direct series", name))
	}
	f.funcs = append(f.funcs, fn)
}

// Family describes one registered metric family; see Families.
type Family struct {
	Name, Kind, Help string
}

// Families lists every registered family sorted by name — the schema
// surface a pinned test asserts on.
func (r *Registry) Families() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, Family{Name: f.name, Kind: f.kind, Help: f.help})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// formatValue renders a sample value: integral values print as integers
// (so a scrape is grep-able and diff-able), everything else in shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in Prometheus text exposition format,
// families sorted by name, series in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if len(f.funcs) > 0 {
			var total int64
			for _, fn := range f.funcs {
				total += fn()
			}
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(float64(total)))
			continue
		}
		for _, s := range f.order {
			sr := f.series[s]
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sr.sig, sr.c.Value())
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sr.sig, sr.g.Value())
			case KindHistogram:
				writeHistogram(&b, f, sr)
			}
		}
	}
	r.mu.Unlock()
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (le merged into the series labels), then _sum and _count.
func writeHistogram(b *strings.Builder, f *family, sr *series) {
	var cum uint64
	for i, ub := range sr.h.uppers {
		cum += sr.h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketSig(sr.labels, strconv.FormatFloat(ub, 'g', -1, 64)), cum)
	}
	cum += sr.h.inf.Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketSig(sr.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, sr.sig, formatValue(sr.h.sum.load()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, sr.sig, cum)
}

// bucketSig renders a series' labels with le appended.
func bucketSig(labels []Label, le string) string {
	all := append(append([]Label(nil), labels...), Label{Name: "le", Value: le})
	return sig(all)
}

// Handler serves the registry at any GET path, with the content type
// Prometheus scrapers expect.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
