package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition checks s as Prometheus text exposition format (the
// subset this package emits): HELP/TYPE comments, then `name{labels}
// value` samples whose value parses as a float and whose name matches the
// metric name grammar. It is the well-formedness contract the CI smoke
// asserts with curl, shared by the server-level schema tests.
func ValidateExposition(s string) error {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for _, line := range lines {
		if line == "" {
			return fmt.Errorf("blank line")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("unknown comment %q", line)
		}
		// name{labels} value | name value
		rest := line
		nameEnd := strings.IndexAny(rest, "{ ")
		if nameEnd <= 0 {
			return fmt.Errorf("no metric name in %q", line)
		}
		name := rest[:nameEnd]
		if !validName(name, false) {
			return fmt.Errorf("bad metric name %q", name)
		}
		rest = rest[nameEnd:]
		if rest[0] == '{' {
			end := labelsEnd(rest)
			if end < 0 {
				return fmt.Errorf("unterminated labels in %q", line)
			}
			rest = rest[end+1:]
		}
		if len(rest) == 0 || rest[0] != ' ' {
			return fmt.Errorf("no value separator in %q", line)
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(rest[1:], "+"), 64); err != nil {
			return fmt.Errorf("bad value in %q: %v", line, err)
		}
	}
	return nil
}

// labelsEnd returns the index of the closing '}' of a label block that
// starts at s[0] == '{', honoring escaped quotes inside label values.
func labelsEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}
