package pool

import (
	"strings"
	"sync"
	"testing"
)

func TestFreeListRecycles(t *testing.T) {
	allocs := 0
	l := New(2, func() *int { allocs++; return new(int) })
	a := l.Get()
	if allocs != 1 {
		t.Fatalf("allocs = %d, want 1", allocs)
	}
	l.Put(a)
	if got := l.Get(); got != a {
		t.Fatalf("Get after Put returned a different value")
	}
	if allocs != 1 {
		t.Fatalf("recycled Get allocated (allocs = %d)", allocs)
	}
}

func TestFreeListBounded(t *testing.T) {
	l := New(1, func() *int { return new(int) })
	a, b := l.Get(), l.Get()
	l.Put(a)
	l.Put(b) // over capacity: dropped, not blocked
	if l.Idle() != 1 {
		t.Fatalf("Idle = %d, want 1", l.Idle())
	}
}

func TestFreeListConcurrent(t *testing.T) {
	l := New(8, func() *[]byte { b := make([]byte, 64); return &b })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v := l.Get()
				(*v)[0]++
				l.Put(v)
			}
		}()
	}
	wg.Wait()
}

func TestCheckedCleanProtocol(t *testing.T) {
	c := NewChecked(4, func() *int { return new(int) }, nil)
	a, b := c.Get(), c.Get()
	c.Put(a)
	c.Put(b)
	if err := c.Verify(); err != nil {
		t.Fatalf("Verify after balanced Get/Put: %v", err)
	}
	if gets, puts := c.Stats(); gets != 2 || puts != 2 {
		t.Fatalf("Stats = (%d, %d), want (2, 2)", gets, puts)
	}
}

func TestCheckedDetectsLeak(t *testing.T) {
	c := NewChecked(4, func() *int { return new(int) }, nil)
	c.Get()
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "never returned") {
		t.Fatalf("Verify = %v, want leak error", err)
	}
	if c.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", c.Outstanding())
	}
}

func TestCheckedDetectsDoubleReturn(t *testing.T) {
	c := NewChecked(4, func() *int { return new(int) }, nil)
	a := c.Get()
	c.Put(a)
	c.Put(a)
	err := c.Verify()
	if err == nil || !strings.Contains(err.Error(), "double return") {
		t.Fatalf("Verify = %v, want double-return error", err)
	}
}

func TestCheckedDetectsForeignPut(t *testing.T) {
	c := NewChecked(4, func() *int { return new(int) }, nil)
	c.Put(new(int))
	if err := c.Verify(); err == nil {
		t.Fatal("Verify accepted a foreign Put")
	}
}

func TestCheckedPoisons(t *testing.T) {
	poisoned := 0
	c := NewChecked(4, func() *[]byte { b := make([]byte, 4); return &b }, func(v *[]byte) {
		poisoned++
		for i := range *v {
			(*v)[i] = 0xAA
		}
	})
	v := c.Get()
	copy(*v, []byte{1, 2, 3, 4})
	c.Put(v)
	if poisoned != 1 {
		t.Fatalf("poison ran %d times, want 1", poisoned)
	}
	w := c.Get()
	if (*w)[0] != 0xAA {
		t.Fatalf("recycled value not poisoned: %v", *w)
	}
}

var _ Pool[*int] = (*FreeList[*int])(nil)
var _ Pool[*int] = (*Checked[*int])(nil)
