// Package pool provides bounded, deterministic free-lists for the ingest
// hot path, plus a leak-detecting wrapper for tests.
//
// The production FreeList is a fixed-capacity channel, not a sync.Pool:
// sync.Pool contents are released at GC, which makes "this stage allocates
// zero" unfalsifiable — a test (or a production burst) racing a GC cycle
// would see allocations that are not regressions. A channel free-list has
// none of that nondeterminism: what was Put is there to Get, the capacity
// bounds worst-case retained memory, and overflow simply falls to the
// garbage collector.
//
// Ownership protocol (enforced by Checked in tests): every Get has exactly
// one owner at a time, ownership transfers with the value (reader → apply
// queue → applier in the server), and exactly one Put returns it — at ack
// time, or on whichever error path consumed the value instead.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is the Get/Put contract shared by FreeList and Checked, so
// production code can hold either (tests swap in a Checked without the
// hot path knowing).
type Pool[T any] interface {
	Get() T
	Put(T)
}

// FreeList is a bounded free-list: Get pops a recycled value or allocates
// a fresh one; Put recycles up to the capacity and drops the rest. Both
// are non-blocking and safe for concurrent use.
type FreeList[T any] struct {
	free  chan T
	alloc func() T
}

// New returns a FreeList holding at most capacity idle values; alloc
// makes a fresh value when the list is empty.
func New[T any](capacity int, alloc func() T) *FreeList[T] {
	return &FreeList[T]{free: make(chan T, capacity), alloc: alloc}
}

// Get returns a recycled value if one is idle, else a fresh allocation.
func (l *FreeList[T]) Get() T {
	select {
	case v := <-l.free:
		return v
	default:
		return l.alloc()
	}
}

// Put recycles v for a future Get. If the list is already at capacity the
// value is dropped for the garbage collector — Put never blocks.
func (l *FreeList[T]) Put(v T) {
	select {
	case l.free <- v:
	default:
	}
}

// Idle reports how many values are currently recycled and waiting.
func (l *FreeList[T]) Idle() int { return len(l.free) }

// Checked wraps a FreeList with borrow accounting and optional poisoning,
// for tests that must prove the ownership protocol: every borrowed value
// returned exactly once, nothing foreign returned, nothing still borrowed
// at drain. T must be of pointer (comparable, identity-carrying) kind.
type Checked[T comparable] struct {
	list   *FreeList[T]
	poison func(T)

	mu       sync.Mutex
	borrowed map[T]bool
	gets     atomic.Int64
	puts     atomic.Int64
	errs     []error
}

// NewChecked returns a leak-detecting pool. poison, if non-nil, is run on
// every Put before the value is recycled; poisoning the contents proves
// no consumer retains a reference past its Put (a retained reference
// reads garbage and fails whatever asserted on it).
func NewChecked[T comparable](capacity int, alloc func() T, poison func(T)) *Checked[T] {
	return &Checked[T]{
		list:     New(capacity, alloc),
		poison:   poison,
		borrowed: map[T]bool{},
	}
}

// Get borrows a value and records the borrow.
func (c *Checked[T]) Get() T {
	v := c.list.Get()
	c.gets.Add(1)
	c.mu.Lock()
	if c.borrowed[v] {
		c.errs = append(c.errs, fmt.Errorf("pool: Get returned a value already borrowed (%v)", v))
	}
	c.borrowed[v] = true
	c.mu.Unlock()
	return v
}

// Put returns a borrowed value. Returning a value that was not borrowed
// from this pool — a double return, or a foreign value — is recorded and
// fails Verify.
func (c *Checked[T]) Put(v T) {
	c.puts.Add(1)
	c.mu.Lock()
	if !c.borrowed[v] {
		c.errs = append(c.errs, fmt.Errorf("pool: Put of a value not currently borrowed (%v): double return or foreign value", v))
		c.mu.Unlock()
		return
	}
	delete(c.borrowed, v)
	c.mu.Unlock()
	if c.poison != nil {
		c.poison(v)
	}
	c.list.Put(v)
}

// Outstanding reports how many borrowed values have not been returned.
func (c *Checked[T]) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.borrowed)
}

// Stats returns the total Get and Put counts.
func (c *Checked[T]) Stats() (gets, puts int64) {
	return c.gets.Load(), c.puts.Load()
}

// Verify returns an error if any protocol violation was recorded or any
// value is still borrowed. Call it after the system under test has fully
// drained (server closed, appliers exited).
func (c *Checked[T]) Verify() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	if len(c.borrowed) > 0 {
		return fmt.Errorf("pool: %d borrowed value(s) never returned (gets=%d puts=%d)",
			len(c.borrowed), c.gets.Load(), c.puts.Load())
	}
	return nil
}
