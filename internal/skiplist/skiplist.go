// Package skiplist provides an ordered byte-key skiplist, the in-memory
// memtable structure used by the Accumulo tablet-server model in
// internal/baselines. Keys are kept in lexicographic order so flushes
// produce sorted runs directly, exactly as an LSM memtable does.
package skiplist

import (
	"bytes"
	"math/rand/v2"
)

const maxHeight = 20

type node struct {
	key  []byte
	val  []byte
	next []*node
}

// List is an ordered map from byte keys to byte values.
// It is not safe for concurrent use.
type List struct {
	head   *node
	height int
	size   int
	bytes  int64
	rng    *rand.Rand
}

// New returns an empty skiplist with a deterministic level generator.
func New(seed uint64) *List {
	return &List{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d)),
	}
}

// Len returns the number of stored keys.
func (l *List) Len() int { return l.size }

// Bytes returns the approximate payload size (keys + values) stored.
func (l *List) Bytes() int64 { return l.bytes }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Uint64()&3 == 0 { // p = 1/4
		h++
	}
	return h
}

// findPredecessors fills prev with the rightmost node < key at every level.
func (l *List) findPredecessors(key []byte, prev []*node) *node {
	x := l.head
	for i := l.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		prev[i] = x
	}
	return prev[0].next[0]
}

// PutMerge inserts key=val, or if the key exists replaces its value with
// merge(existing, val). A nil merge means replace. This is the
// combiner-iterator behaviour of an Accumulo memtable.
func (l *List) PutMerge(key, val []byte, merge func(old, new []byte) []byte) {
	var prev [maxHeight]*node
	x := l.findPredecessors(key, prev[:])
	if x != nil && bytes.Equal(x.key, key) {
		l.bytes -= int64(len(x.val))
		if merge != nil {
			x.val = merge(x.val, val)
		} else {
			x.val = append([]byte(nil), val...)
		}
		l.bytes += int64(len(x.val))
		return
	}
	h := l.randomHeight()
	if h > l.height {
		for i := l.height; i < h; i++ {
			prev[i] = l.head
		}
		l.height = h
	}
	n := &node{
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), val...),
		next: make([]*node, h),
	}
	for i := 0; i < h; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	l.size++
	l.bytes += int64(len(n.key) + len(n.val))
}

// Put inserts or replaces key=val.
func (l *List) Put(key, val []byte) { l.PutMerge(key, val, nil) }

// Get returns the value stored at key.
func (l *List) Get(key []byte) ([]byte, bool) {
	x := l.head
	for i := l.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, key) {
		return x.val, true
	}
	return nil, false
}

// Iterate visits entries in key order, stopping early if f returns false.
func (l *List) Iterate(f func(key, val []byte) bool) {
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		if !f(x.key, x.val) {
			return
		}
	}
}

// Reset empties the list, keeping the level generator state.
func (l *List) Reset() {
	l.head = &node{next: make([]*node, maxHeight)}
	l.height = 1
	l.size = 0
	l.bytes = 0
}
