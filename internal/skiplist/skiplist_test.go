package skiplist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	l := New(1)
	l.Put([]byte("b"), []byte("2"))
	l.Put([]byte("a"), []byte("1"))
	l.Put([]byte("c"), []byte("3"))
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	v, ok := l.Get([]byte("b"))
	if !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, ok)
	}
	if _, ok := l.Get([]byte("zz")); ok {
		t.Fatal("phantom key")
	}
	l.Put([]byte("b"), []byte("20"))
	v, _ = l.Get([]byte("b"))
	if string(v) != "20" {
		t.Fatalf("replace failed: %q", v)
	}
	if l.Len() != 3 {
		t.Fatalf("replace changed Len: %d", l.Len())
	}
}

func TestPutMergeAccumulates(t *testing.T) {
	l := New(2)
	add := func(old, new []byte) []byte {
		a := binary.LittleEndian.Uint64(old)
		b := binary.LittleEndian.Uint64(new)
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], a+b)
		return out[:]
	}
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	for k := 0; k < 10; k++ {
		l.PutMerge([]byte("key"), one, add)
	}
	v, _ := l.Get([]byte("key"))
	if binary.LittleEndian.Uint64(v) != 10 {
		t.Fatalf("merged = %d", binary.LittleEndian.Uint64(v))
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestIterateSorted(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		l := New(uint64(r.Int63()))
		ref := make(map[string]string)
		for k := 0; k < 200; k++ {
			key := fmt.Sprintf("k%04d", r.Intn(500))
			val := fmt.Sprintf("v%d", k)
			l.Put([]byte(key), []byte(val))
			ref[key] = val
		}
		if l.Len() != len(ref) {
			return false
		}
		var keys []string
		ok := true
		l.Iterate(func(k, v []byte) bool {
			keys = append(keys, string(k))
			if ref[string(k)] != string(v) {
				ok = false
				return false
			}
			return true
		})
		return ok && sort.StringsAreSorted(keys) && len(keys) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	l := New(4)
	for k := 0; k < 10; k++ {
		l.Put([]byte{byte(k)}, nil)
	}
	n := 0
	l.Iterate(func(_, _ []byte) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("visited %d", n)
	}
}

func TestBytesAccounting(t *testing.T) {
	l := New(5)
	l.Put([]byte("abc"), []byte("xy"))
	if l.Bytes() != 5 {
		t.Fatalf("Bytes = %d", l.Bytes())
	}
	l.Put([]byte("abc"), []byte("xyz9"))
	if l.Bytes() != 7 {
		t.Fatalf("Bytes after replace = %d", l.Bytes())
	}
}

func TestReset(t *testing.T) {
	l := New(6)
	l.Put([]byte("a"), []byte("1"))
	l.Reset()
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Fatalf("reset left %d/%d", l.Len(), l.Bytes())
	}
	if _, ok := l.Get([]byte("a")); ok {
		t.Fatal("key survived reset")
	}
	l.Put([]byte("b"), []byte("2"))
	if l.Len() != 1 {
		t.Fatal("list unusable after reset")
	}
}

func TestKeysAreCopied(t *testing.T) {
	l := New(7)
	key := []byte("mutable")
	val := []byte("value")
	l.Put(key, val)
	key[0] = 'X'
	val[0] = 'X'
	if _, ok := l.Get([]byte("mutable")); !ok {
		t.Fatal("stored key aliased caller's buffer")
	}
	v, _ := l.Get([]byte("mutable"))
	if !bytes.Equal(v, []byte("value")) {
		t.Fatal("stored value aliased caller's buffer")
	}
}

func TestLargeInsertStaysOrdered(t *testing.T) {
	l := New(8)
	r := rand.New(rand.NewSource(9))
	for k := 0; k < 20000; k++ {
		var key [8]byte
		binary.BigEndian.PutUint64(key[:], r.Uint64())
		l.Put(key[:], nil)
	}
	var prev []byte
	l.Iterate(func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("order violated")
		}
		prev = append(prev[:0], k...)
		return true
	})
}
