package memsim

import (
	"fmt"
	"math/rand/v2"

	"hhgb/internal/gb"
)

// entryBytes is the storage cost of one hypersparse entry
// (column index + value; row ids amortize across runs).
const entryBytes = 16

// IngestCost summarizes a simulated ingest run.
type IngestCost struct {
	Updates        int64
	Cycles         int64
	MergedEntries  int64 // entries read+written by merge sweeps
	CyclesPerEntry float64
}

// regionBase spaces structures far apart so they never share cache sets by
// accident.
func regionBase(i int) uint64 { return uint64(i+1) << 34 }

// SimulateFlatIngest replays the address pattern of streaming batches into
// a single flat hypersparse matrix: every batch is sorted (touching the
// batch buffer) and union-merged with the whole structure, reading and
// rewriting all current entries.
func SimulateFlatIngest(h *Hierarchy, updates, batch int, distinct gb.Index, seed uint64) (IngestCost, error) {
	if err := validateIngest(updates, batch, distinct); err != nil {
		return IngestCost{}, err
	}
	h.Reset()
	rng := rand.New(rand.NewPCG(seed, seed^0x1234abcd5678ef90))
	var merged int64
	size := 0 // current nnz of the flat structure
	base := regionBase(0)
	batchBase := regionBase(9)
	for done := 0; done < updates; done += batch {
		b := min(batch, updates-done)
		// Sort pass over the batch buffer: ~log passes touch it; model as
		// two sequential sweeps (read + write).
		h.AccessRange(batchBase, b*entryBytes)
		h.AccessRange(batchBase, b*entryBytes)
		// Union merge: read the whole structure, write the whole structure.
		h.AccessRange(base, size*entryBytes)
		newSize := growNNZ(size, b, distinct, rng)
		h.AccessRange(base, newSize*entryBytes)
		merged += int64(size + newSize)
		size = newSize
	}
	return costOf(h, updates, merged), nil
}

// SimulateHierIngest replays the address pattern of the same stream going
// through an N-level cascade with the given cuts: batches merge into the
// small level-1 region; only when a cut trips does a (rare) merge touch the
// next, larger region.
func SimulateHierIngest(h *Hierarchy, updates, batch int, cuts []int, distinct gb.Index, seed uint64) (IngestCost, error) {
	if err := validateIngest(updates, batch, distinct); err != nil {
		return IngestCost{}, err
	}
	for i, c := range cuts {
		if c < 1 {
			return IngestCost{}, fmt.Errorf("%w: cut %d is %d", gb.ErrInvalidValue, i, c)
		}
	}
	h.Reset()
	rng := rand.New(rand.NewPCG(seed, seed^0x0badf00ddeadbeef))
	levels := len(cuts) + 1
	size := make([]int, levels)
	var merged int64
	batchBase := regionBase(9)
	for done := 0; done < updates; done += batch {
		b := min(batch, updates-done)
		h.AccessRange(batchBase, b*entryBytes)
		h.AccessRange(batchBase, b*entryBytes)
		// Merge into level 0.
		h.AccessRange(regionBase(0), size[0]*entryBytes)
		newSize := growNNZ(size[0], b, distinct, rng)
		h.AccessRange(regionBase(0), newSize*entryBytes)
		merged += int64(size[0] + newSize)
		size[0] = newSize
		// Cascade.
		for i := 0; i < len(cuts) && size[i] > cuts[i]; i++ {
			h.AccessRange(regionBase(i), size[i]*entryBytes)     // read level i
			h.AccessRange(regionBase(i+1), size[i+1]*entryBytes) // read level i+1
			up := growNNZ(size[i+1], size[i], distinct, rng)
			h.AccessRange(regionBase(i+1), up*entryBytes) // write level i+1
			merged += int64(size[i] + size[i+1] + up)
			size[i+1] = up
			size[i] = 0
		}
	}
	return costOf(h, updates, merged), nil
}

// growNNZ models how many distinct entries a structure holds after
// absorbing n more updates drawn from a `distinct`-sized key space:
// birthday-style collisions shrink growth as the structure fills.
func growNNZ(cur, n int, distinct gb.Index, rng *rand.Rand) int {
	space := float64(distinct)
	c := float64(cur)
	for k := 0; k < n; k++ {
		pNew := 1 - c/space
		if pNew <= 0 {
			break
		}
		if rng.Float64() < pNew {
			c++
		}
	}
	if c > space {
		c = space
	}
	return int(c)
}

func validateIngest(updates, batch int, distinct gb.Index) error {
	if updates < 1 || batch < 1 {
		return fmt.Errorf("%w: updates %d / batch %d must be >= 1", gb.ErrInvalidValue, updates, batch)
	}
	if distinct < 1 {
		return fmt.Errorf("%w: distinct key space must be >= 1", gb.ErrInvalidValue)
	}
	return nil
}

func costOf(h *Hierarchy, updates int, merged int64) IngestCost {
	return IngestCost{
		Updates:        int64(updates),
		Cycles:         h.TotalCycles(),
		MergedEntries:  merged,
		CyclesPerEntry: float64(h.TotalCycles()) / float64(updates),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
