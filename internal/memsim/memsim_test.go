package memsim

import (
	"errors"
	"testing"

	"hhgb/internal/gb"
)

func tiny() *Hierarchy {
	h, err := New([]LevelSpec{
		{Name: "L1", Sets: 4, Ways: 2, Line: 64, Latency: 1},
	}, 100)
	if err != nil {
		panic(err)
	}
	return h
}

func TestSpecValidation(t *testing.T) {
	if _, err := New([]LevelSpec{{Name: "x", Sets: 3, Ways: 1, Line: 64, Latency: 1}}, 10); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("non-pow2 sets: %v", err)
	}
	if _, err := New([]LevelSpec{{Name: "x", Sets: 4, Ways: 1, Line: 60, Latency: 1}}, 10); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("non-pow2 line: %v", err)
	}
	if _, err := New([]LevelSpec{{Name: "x", Sets: 4, Ways: 0, Line: 64, Latency: 1}}, 10); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero ways: %v", err)
	}
	if _, err := New(nil, 0); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero mem latency: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny()
	c1 := h.Access(0x1000)
	if c1 != 101 { // L1 latency + memory
		t.Fatalf("cold access = %d cycles, want 101", c1)
	}
	c2 := h.Access(0x1000)
	if c2 != 1 {
		t.Fatalf("warm access = %d cycles, want 1", c2)
	}
	c3 := h.Access(0x1004) // same line
	if c3 != 1 {
		t.Fatalf("same-line access = %d cycles, want 1", c3)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 sets x 2 ways x 64B lines: addresses 0, 4*64, 8*64 map to set 0.
	h := tiny()
	a, b, c := uint64(0), uint64(4*64), uint64(8*64)
	h.Access(a)
	h.Access(b)
	h.Access(a) // a is now MRU
	h.Access(c) // evicts b (LRU)
	if h.Access(a) != 1 {
		t.Fatal("a evicted despite being MRU")
	}
	if h.Access(b) == 1 {
		t.Fatal("b still resident despite LRU eviction")
	}
}

func TestStatsAndReset(t *testing.T) {
	h := tiny()
	h.Access(0)
	h.Access(0)
	st := h.Stats()
	if st[0].Hits != 1 || st[0].Misses != 1 {
		t.Fatalf("L1 stats = %+v", st[0])
	}
	if st[0].HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st[0].HitRate())
	}
	if h.TotalCycles() == 0 {
		t.Fatal("no cycles recorded")
	}
	h.Reset()
	if h.TotalCycles() != 0 {
		t.Fatal("reset kept cycles")
	}
	if h.Access(0) != 101 {
		t.Fatal("reset kept cache contents")
	}
	if (LevelStats{}).HitRate() != 0 {
		t.Fatal("empty hit rate != 0")
	}
}

func TestDefaultHierarchyShape(t *testing.T) {
	h := Default()
	if got := h.levels[0].spec.SizeBytes(); got != 32*1024 {
		t.Fatalf("L1 = %d bytes", got)
	}
	if got := h.levels[2].spec.SizeBytes(); got != 8*1024*1024 {
		t.Fatalf("L3 = %d bytes", got)
	}
	// A miss in everything costs the full stack.
	want := 4 + 12 + 40 + 200
	if c := h.Access(0xdeadbeef000); c != want {
		t.Fatalf("full miss = %d, want %d", c, want)
	}
}

func TestAccessRangeTouchesEachLine(t *testing.T) {
	h := tiny()
	cycles := h.AccessRange(0, 256) // 4 lines of 64B
	if cycles <= 0 {
		t.Fatal("no cycles")
	}
	st := h.Stats()
	if st[0].Hits+st[0].Misses != 4 {
		t.Fatalf("accesses = %d, want 4", st[0].Hits+st[0].Misses)
	}
	if h.AccessRange(0, 0) != 0 {
		t.Fatal("empty range cost nonzero")
	}
}

func TestWorkingSetFitsCacheHasHighHitRate(t *testing.T) {
	h := Default()
	// 16 KiB working set inside a 32 KiB L1: after warmup, all hits.
	for pass := 0; pass < 10; pass++ {
		h.AccessRange(0, 16*1024)
	}
	st := h.Stats()
	if st[0].HitRate() < 0.85 {
		t.Fatalf("L1 hit rate = %v for cache-resident set", st[0].HitRate())
	}
}

func TestWorkingSetExceedsCacheThrashes(t *testing.T) {
	h := Default()
	// 64 MiB working set: far beyond L3, LRU streaming gets no reuse.
	for pass := 0; pass < 3; pass++ {
		h.AccessRange(0, 64*1024*1024)
	}
	st := h.Stats()
	if st[2].HitRate() > 0.2 {
		t.Fatalf("L3 hit rate = %v for thrashing set", st[2].HitRate())
	}
}

func TestFlatVsHierIngestAblation(t *testing.T) {
	// E10: the hierarchical address pattern must be substantially cheaper
	// per update than the flat pattern once the structure outgrows cache.
	const updates = 20000
	const batch = 100
	const distinct = 1 << 30

	hFlat := Default()
	flat, err := SimulateFlatIngest(hFlat, updates, batch, distinct, 7)
	if err != nil {
		t.Fatal(err)
	}
	hHier := Default()
	hier, err := SimulateHierIngest(hHier, updates, batch, []int{2048, 32768}, distinct, 7)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Updates != updates || hier.Updates != updates {
		t.Fatalf("update counts: %d / %d", flat.Updates, hier.Updates)
	}
	if hier.CyclesPerEntry >= flat.CyclesPerEntry {
		t.Fatalf("hierarchy not cheaper: flat %.1f vs hier %.1f cycles/update",
			flat.CyclesPerEntry, hier.CyclesPerEntry)
	}
	ratio := flat.CyclesPerEntry / hier.CyclesPerEntry
	if ratio < 2 {
		t.Fatalf("speedup only %.2fx; expected >= 2x at these sizes", ratio)
	}
	// The flat model must also move far more merge traffic.
	if hier.MergedEntries >= flat.MergedEntries {
		t.Fatalf("merge traffic: hier %d >= flat %d", hier.MergedEntries, flat.MergedEntries)
	}
}

func TestIngestValidation(t *testing.T) {
	h := Default()
	if _, err := SimulateFlatIngest(h, 0, 1, 10, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero updates: %v", err)
	}
	if _, err := SimulateFlatIngest(h, 10, 0, 10, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero batch: %v", err)
	}
	if _, err := SimulateFlatIngest(h, 10, 1, 0, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero distinct: %v", err)
	}
	if _, err := SimulateHierIngest(h, 10, 1, []int{0}, 10, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero cut: %v", err)
	}
}

func TestGrowNNZSaturates(t *testing.T) {
	h := Default()
	// Tiny key space: the structure saturates and merge cost stabilizes.
	cost, err := SimulateFlatIngest(h, 5000, 50, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}
