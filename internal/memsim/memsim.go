// Package memsim is a multi-level set-associative cache simulator used to
// measure — rather than assert — the paper's core argument: hierarchical
// hypersparse matrices keep the majority of update work in fast memory.
//
// The simulator models an inclusive L1/L2/L3/DRAM hierarchy with LRU
// replacement and per-level latencies. The ingest models in model.go replay
// the address patterns of flat versus hierarchical batch-merge updates
// through the simulator, producing a simulated cycles-per-update figure for
// the memory-pressure ablation (experiment E10 in DESIGN.md).
package memsim

import (
	"fmt"

	"hhgb/internal/gb"
)

// LevelSpec describes one cache level.
type LevelSpec struct {
	Name    string
	Sets    int // number of sets; must be a power of two
	Ways    int // associativity
	Line    int // line size in bytes; must be a power of two
	Latency int // access latency in cycles
}

// SizeBytes returns the level's capacity.
func (s LevelSpec) SizeBytes() int { return s.Sets * s.Ways * s.Line }

// LevelStats accumulates per-level access counts.
type LevelStats struct {
	Name   string
	Hits   int64
	Misses int64
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (s LevelStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheLevel struct {
	spec     LevelSpec
	setShift uint
	setMask  uint64
	tags     []uint64 // sets*ways entries; 0 = empty (tag stored +1)
	use      []uint64 // LRU timestamps
	stats    LevelStats
}

func newCacheLevel(spec LevelSpec) (*cacheLevel, error) {
	if spec.Sets <= 0 || spec.Sets&(spec.Sets-1) != 0 {
		return nil, fmt.Errorf("%w: sets %d not a power of two", gb.ErrInvalidValue, spec.Sets)
	}
	if spec.Line <= 0 || spec.Line&(spec.Line-1) != 0 {
		return nil, fmt.Errorf("%w: line %d not a power of two", gb.ErrInvalidValue, spec.Line)
	}
	if spec.Ways <= 0 {
		return nil, fmt.Errorf("%w: ways %d <= 0", gb.ErrInvalidValue, spec.Ways)
	}
	shift := uint(0)
	for 1<<shift != spec.Line {
		shift++
	}
	return &cacheLevel{
		spec:     spec,
		setShift: shift,
		setMask:  uint64(spec.Sets - 1),
		tags:     make([]uint64, spec.Sets*spec.Ways),
		use:      make([]uint64, spec.Sets*spec.Ways),
		stats:    LevelStats{Name: spec.Name},
	}, nil
}

// access looks the line up, installing it on miss; returns hit.
func (c *cacheLevel) access(addr uint64, tick uint64) bool {
	line := addr >> c.setShift
	set := int(line & c.setMask)
	tag := line + 1 // +1 so 0 means "empty slot"
	base := set * c.spec.Ways
	victim := base
	oldest := c.use[base]
	for w := 0; w < c.spec.Ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.use[i] = tick
			c.stats.Hits++
			return true
		}
		if c.use[i] < oldest || c.tags[i] == 0 {
			if c.tags[i] == 0 {
				victim = i
				oldest = 0
			} else if c.use[i] < oldest {
				victim = i
				oldest = c.use[i]
			}
		}
	}
	c.tags[victim] = tag
	c.use[victim] = tick
	c.stats.Misses++
	return false
}

// Hierarchy is a stack of cache levels over a fixed-latency memory.
type Hierarchy struct {
	levels     []*cacheLevel
	memLatency int
	memName    string
	memAccess  int64
	tick       uint64
	cycles     int64
}

// New builds a hierarchy from fastest to slowest level.
func New(specs []LevelSpec, memLatency int) (*Hierarchy, error) {
	if memLatency <= 0 {
		return nil, fmt.Errorf("%w: memory latency %d <= 0", gb.ErrInvalidValue, memLatency)
	}
	h := &Hierarchy{memLatency: memLatency, memName: "DRAM"}
	for _, s := range specs {
		lvl, err := newCacheLevel(s)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, lvl)
	}
	return h, nil
}

// Default returns a commodity-server-like hierarchy:
// 32 KiB 8-way L1 (4 cy), 256 KiB 8-way L2 (12 cy), 8 MiB 16-way L3 (40 cy)
// over 200-cycle DRAM, all with 64-byte lines.
func Default() *Hierarchy {
	h, err := New([]LevelSpec{
		{Name: "L1", Sets: 64, Ways: 8, Line: 64, Latency: 4},
		{Name: "L2", Sets: 512, Ways: 8, Line: 64, Latency: 12},
		{Name: "L3", Sets: 8192, Ways: 16, Line: 64, Latency: 40},
	}, 200)
	if err != nil {
		panic(err) // static specs; cannot fail
	}
	return h
}

// Access simulates one memory access and returns its latency in cycles.
// The first level that hits serves the access; misses propagate downward
// and install the line at every level passed (inclusive hierarchy).
func (h *Hierarchy) Access(addr uint64) int {
	h.tick++
	cycles := 0
	for _, lvl := range h.levels {
		cycles += lvl.spec.Latency
		if lvl.access(addr, h.tick) {
			h.cycles += int64(cycles)
			return cycles
		}
	}
	cycles += h.memLatency
	h.memAccess++
	h.cycles += int64(cycles)
	return cycles
}

// AccessRange simulates a sequential sweep of n bytes starting at addr
// (touching each cache line once) and returns the total cycles.
func (h *Hierarchy) AccessRange(addr uint64, n int) int64 {
	if n <= 0 {
		return 0
	}
	line := uint64(h.lineSize())
	var total int64
	end := addr + uint64(n)
	for a := addr &^ (line - 1); a < end; a += line {
		total += int64(h.Access(a))
	}
	return total
}

func (h *Hierarchy) lineSize() int {
	if len(h.levels) == 0 {
		return 64
	}
	return h.levels[0].spec.Line
}

// Stats returns per-level statistics plus a pseudo-level for memory.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, 0, len(h.levels)+1)
	for _, lvl := range h.levels {
		out = append(out, lvl.stats)
	}
	out = append(out, LevelStats{Name: h.memName, Hits: h.memAccess})
	return out
}

// TotalCycles returns the cumulative simulated cycles.
func (h *Hierarchy) TotalCycles() int64 { return h.cycles }

// Reset clears all cache contents and statistics.
func (h *Hierarchy) Reset() {
	for _, lvl := range h.levels {
		for i := range lvl.tags {
			lvl.tags[i] = 0
			lvl.use[i] = 0
		}
		lvl.stats = LevelStats{Name: lvl.spec.Name}
	}
	h.memAccess = 0
	h.tick = 0
	h.cycles = 0
}
