package window

import (
	"sync"

	"hhgb/internal/gb"
)

// Summary is the per-window digest published to subscribers when a window
// seals. Err is non-nil when the seal-time aggregation failed (the window
// itself sealed regardless); the counting fields are zero then.
type Summary[T gb.Number] struct {
	Level        int
	Start, End   int64 // the window's event-time bounds, unix nanoseconds
	Entries      int   // distinct stored cells
	Sources      int   // non-empty rows
	Destinations int   // non-empty columns
	Total        T     // sum of stored values
	Err          error
}

// Subscription is one live feed of seal summaries. The store publishes
// exactly one Summary per sealed window, in global seal order; the queue
// is unbounded, so a slow consumer delays nobody (it trades memory for
// the ordering guarantee). Close it when done; the store's Close ends
// every subscription.
type Subscription[T gb.Number] struct {
	store  *Store[T]
	id     uint64
	levels map[int]bool // nil = all levels

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Summary[T]
	closed bool
}

// Subscribe registers a feed of seal summaries for the given levels (none
// = every level). Windows sealed before the call are not replayed.
func (s *Store[T]) Subscribe(levels ...int) *Subscription[T] {
	sub := &Subscription[T]{store: s}
	sub.cond = sync.NewCond(&sub.mu)
	if len(levels) > 0 {
		sub.levels = make(map[int]bool, len(levels))
		for _, l := range levels {
			sub.levels[l] = true
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sub.Close()
		return sub
	}
	s.nextSub++
	sub.id = s.nextSub
	s.subs[sub.id] = sub
	s.mu.Unlock()
	return sub
}

func (sub *Subscription[T]) wants(level int) bool {
	return sub.levels == nil || sub.levels[level]
}

func (sub *Subscription[T]) push(sum Summary[T]) {
	sub.mu.Lock()
	if !sub.closed {
		sub.queue = append(sub.queue, sum)
		sub.cond.Signal()
	}
	sub.mu.Unlock()
}

// Next blocks until the next summary is available and returns it; ok is
// false once the subscription is closed and its queue drained.
func (sub *Subscription[T]) Next() (sum Summary[T], ok bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for len(sub.queue) == 0 && !sub.closed {
		sub.cond.Wait()
	}
	if len(sub.queue) == 0 {
		return sum, false
	}
	sum = sub.queue[0]
	sub.queue = sub.queue[1:]
	return sum, true
}

// Pending returns the queued, not-yet-consumed summary count.
func (sub *Subscription[T]) Pending() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.queue)
}

// Close ends the subscription: Next drains the queue, then reports done.
// Idempotent; safe concurrently with the store sealing windows.
func (sub *Subscription[T]) Close() {
	if sub.store != nil && sub.id != 0 {
		sub.store.mu.Lock()
		delete(sub.store.subs, sub.id)
		sub.store.mu.Unlock()
	}
	sub.mu.Lock()
	sub.closed = true
	sub.cond.Broadcast()
	sub.mu.Unlock()
}
