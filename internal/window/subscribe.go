package window

import (
	"sync"
	"time"

	"hhgb/internal/gb"
)

// Summary is the per-window digest published to subscribers when a window
// seals. Err is non-nil when the seal-time aggregation failed (the window
// itself sealed regardless); the counting fields are zero then.
type Summary[T gb.Number] struct {
	Level        int
	Start, End   int64 // the window's event-time bounds, unix nanoseconds
	Entries      int   // distinct stored cells
	Sources      int   // non-empty rows
	Destinations int   // non-empty columns
	Total        T     // sum of stored values
	Err          error
}

// Subscription is one live feed of seal summaries. The store publishes
// exactly one Summary per sealed window, in global seal order. By default
// the queue is unbounded, so a slow consumer delays nobody (it trades
// memory for the ordering guarantee); with Config.SubscriberQueue set,
// the bound is a TRIGGER, not a hard cap — summaries keep queueing past
// it (no consumer ever observes a gap), but a subscription that stays at
// or over the bound for longer than Config.SubscriberPatience is evicted:
// closed, its backlog dropped, Evicted reporting true. Close it when
// done; the store's Close ends every subscription.
type Subscription[T gb.Number] struct {
	store    *Store[T]
	id       uint64
	levels   map[int]bool // nil = all levels
	limit    int          // queued-summary bound; 0 = unbounded
	patience time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []Summary[T]
	fullSince time.Time // when the queue was first seen full; zero if not
	closed    bool
	evicted   bool
}

// Subscribe registers a feed of seal summaries for the given levels (none
// = every level). Windows sealed before the call are not replayed.
func (s *Store[T]) Subscribe(levels ...int) *Subscription[T] {
	sub := &Subscription[T]{
		store:    s,
		limit:    s.cfg.SubscriberQueue,
		patience: s.cfg.SubscriberPatience,
	}
	sub.cond = sync.NewCond(&sub.mu)
	if len(levels) > 0 {
		sub.levels = make(map[int]bool, len(levels))
		for _, l := range levels {
			sub.levels[l] = true
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sub.Close()
		return sub
	}
	s.nextSub++
	sub.id = s.nextSub
	s.subs[sub.id] = sub
	s.mu.Unlock()
	return sub
}

func (sub *Subscription[T]) wants(level int) bool {
	return sub.levels == nil || sub.levels[level]
}

// push queues one summary, applying the eviction policy first; it reports
// whether the summary was delivered. Runs under sealMu (never the store
// mutex), so the eviction's deregistration can take store.mu safely.
func (sub *Subscription[T]) push(sum Summary[T]) bool {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return false
	}
	if sub.limit > 0 && len(sub.queue) >= sub.limit {
		if sub.fullSince.IsZero() {
			sub.fullSince = wallNow()
		}
		if wallSince(sub.fullSince) >= sub.patience {
			// Past patience: cut the subscriber loose. The backlog is
			// dropped — an evicted consumer's feed has a gap by
			// definition, and holding its memory helps nobody.
			sub.evicted = true
			sub.closed = true
			sub.queue = nil
			sub.cond.Broadcast()
			sub.mu.Unlock()
			sub.detach()
			sub.store.cfg.Metrics.SubEvictions.Inc()
			return false
		}
	} else {
		sub.fullSince = time.Time{}
	}
	sub.queue = append(sub.queue, sum)
	sub.cond.Signal()
	sub.mu.Unlock()
	return true
}

// Next blocks until the next summary is available and returns it; ok is
// false once the subscription is closed and its queue drained (or it was
// evicted — check Evicted to tell the two apart).
func (sub *Subscription[T]) Next() (sum Summary[T], ok bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	for len(sub.queue) == 0 && !sub.closed {
		sub.cond.Wait()
	}
	if len(sub.queue) == 0 {
		return sum, false
	}
	sum = sub.queue[0]
	sub.queue = sub.queue[1:]
	if sub.limit > 0 && len(sub.queue) < sub.limit {
		sub.fullSince = time.Time{} // consumer recovered; patience resets
	}
	return sum, true
}

// Pending returns the queued, not-yet-consumed summary count.
func (sub *Subscription[T]) Pending() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return len(sub.queue)
}

// Evicted reports whether the store disconnected this subscription for
// staying full past the patience deadline. Once true it stays true; Next
// returns ok=false immediately.
func (sub *Subscription[T]) Evicted() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.evicted
}

// detach removes the subscription from the store's registry so sealWin
// stops offering it summaries. Callers must NOT hold sub.mu (lock order
// is store.mu before sub.mu, never both upward).
func (sub *Subscription[T]) detach() {
	if sub.store != nil && sub.id != 0 {
		sub.store.mu.Lock()
		delete(sub.store.subs, sub.id)
		sub.store.mu.Unlock()
	}
}

// Close ends the subscription: Next drains the queue, then reports done.
// Idempotent; safe concurrently with the store sealing windows.
func (sub *Subscription[T]) Close() {
	sub.detach()
	sub.mu.Lock()
	sub.closed = true
	sub.cond.Broadcast()
	sub.mu.Unlock()
}
