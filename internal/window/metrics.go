package window

import (
	"hhgb/internal/gb"
	"hhgb/internal/metrics"
)

// Metrics is the window layer's instrument set. Like shard.Metrics,
// registration is idempotent: every store wired to the same registry
// shares one set of series. The registry handed to NewMetrics is also
// kept so each store can register its sampled gauges (window counts,
// subscriber queue depth) — those are registered per store, only on a
// real registry, and sum across stores sharing it.
type Metrics struct {
	reg *metrics.Registry // nil: per-store sampling funcs are skipped

	// SealLag observes, at each seal, how far the watermark had advanced
	// past the sealed window's end — an EVENT-TIME lag (seconds of stream
	// time, not wall time): lateness budget plus however much watermark
	// motion it took to trigger the seal.
	SealLag *metrics.Histogram
	// RollUp observes the wall-clock duration of materializing one
	// roll-up window (summing its children and sealing the parent).
	RollUp *metrics.Histogram
	// SummariesPushed counts summary deliveries into subscriber queues
	// (one per subscriber per sealed window it subscribes to).
	SummariesPushed *metrics.Counter
	// SubEvictions counts subscriptions disconnected for staying full
	// past the configured patience.
	SubEvictions *metrics.Counter
}

// NewMetrics registers (or re-fetches) the window instrument set on reg.
// A nil reg wires the instruments to the discard registry and disables
// per-store gauge sampling.
func NewMetrics(reg *metrics.Registry) *Metrics {
	r := metrics.OrDiscard(reg)
	return &Metrics{
		reg: reg,
		SealLag: r.Histogram("hhgb_window_seal_lag_seconds",
			"Event-time lag between a sealed window's end and the watermark at seal.", metrics.LagBuckets),
		RollUp: r.Histogram("hhgb_window_rollup_seconds",
			"Wall-clock duration of materializing one roll-up window.", nil),
		SummariesPushed: r.Counter("hhgb_window_summaries_pushed_total",
			"Seal summaries delivered into subscriber queues."),
		SubEvictions: r.Counter("hhgb_window_subscribers_evicted_total",
			"Subscriptions evicted for staying full past the patience deadline."),
	}
}

// registerStoreFuncs registers the store's sampled series: lifecycle
// counts from Stats and live queue depths. Called once per store, after
// construction succeeds, and only with a real registry — sampling funcs
// hold the store alive, so they must never pile up on the shared discard
// registry.
func registerStoreFuncs[T gb.Number](s *Store[T]) {
	m := s.cfg.Metrics
	if m == nil || m.reg == nil {
		return
	}
	r := m.reg
	r.GaugeFunc("hhgb_window_active",
		"Level-0 windows currently accepting appends.",
		func() int64 { return int64(s.Stats().Active) })
	r.GaugeFunc("hhgb_window_sealed",
		"Sealed windows currently retained (all levels).",
		func() int64 { return int64(s.Stats().Sealed) })
	r.CounterFunc("hhgb_window_seals_total",
		"Windows sealed so far (all levels).",
		func() int64 { return s.Stats().Seals })
	r.CounterFunc("hhgb_window_rollups_total",
		"Roll-up windows materialized.",
		func() int64 { return s.Stats().RollUps })
	r.CounterFunc("hhgb_window_expired_total",
		"Windows removed by retention.",
		func() int64 { return s.Stats().Expired })
	r.CounterFunc("hhgb_window_late_drops_total",
		"Entries refused with ErrLate.",
		func() int64 { return s.Stats().LateDrops })
	r.GaugeFunc("hhgb_window_subscriber_queue_depth",
		"Summaries queued, not yet consumed, across all subscriptions.",
		func() int64 {
			s.mu.Lock()
			subs := make([]*Subscription[T], 0, len(s.subs))
			for _, sub := range s.subs {
				subs = append(subs, sub)
			}
			s.mu.Unlock()
			var n int64
			for _, sub := range subs {
				n += int64(sub.Pending())
			}
			return n
		})
	r.GaugeFunc("hhgb_shard_queue_depth",
		"Batches pending on shard queues across all active windows.",
		func() int64 {
			s.mu.Lock()
			var live []*win[T]
			for _, w := range s.wins {
				if w.state == Active {
					live = append(live, w)
				}
			}
			s.mu.Unlock()
			var n int64
			for _, w := range live {
				n += int64(w.g.QueueDepth())
			}
			return n
		})
}
