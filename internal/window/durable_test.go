package window

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hhgb/internal/gb"
	"hhgb/internal/shard"
)

// The windowed kill-point table extends the shard layer's crash-window
// audit (internal/shard/durable_test.go) one level up: a crash is
// simulated by copying the store root mid-stream — exactly the bytes a
// kill -9 would leave — and recovering from the copy while the original
// store keeps running. Each window's own shard-layer guarantees carry
// over per window; these tests pin the store-layer windows on top:
//
//	crash window                      recovered state
//	after Flush, windows active       every window live, content exact
//	after Seal, marker present        sealed windows final, no replay
//	after Seal, marker lost           re-sealed idempotently (Resealed>0)
//	rolled up, then crash             parent + rolled children both durable
//	after Close                       clean restart, active windows resume
//	accepted, never flushed           per-window durable prefix only

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	var walk func(rel string)
	walk = func(rel string) {
		ents, err := os.ReadDir(filepath.Join(src, rel))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			r := filepath.Join(rel, e.Name())
			if e.IsDir() {
				if err := os.MkdirAll(filepath.Join(dst, r), 0o755); err != nil {
					t.Fatal(err)
				}
				walk(r)
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, r))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, r), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	walk(".")
	return dst
}

func durableCfg(dir string) Config {
	return Config{
		Window:   time.Second,
		RollUps:  []int{4},
		Lateness: 1000 * time.Second,
		Shard: shard.Config{
			Shards:  2,
			Handoff: 16,
			Durable: shard.Durability{Dir: dir, SyncEvery: 1},
		},
	}
}

// seedDurable builds a durable store with 6 windows of known content:
// windows 0..3 sealed (and rolled into one 4s parent), 4..5 active and
// flushed. Entry weights are 10*w+1 at cell (w, w), one per window.
func seedDurable(t *testing.T, dir string) (*Store[uint64], []entry) {
	t.Helper()
	s, err := New[uint64](dim, dim, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	sec := int64(time.Second)
	var entries []entry
	for w := int64(0); w < 6; w++ {
		e := entry{ts: w*sec + 5, r: gb.Index(w), c: gb.Index(w), v: uint64(10*w + 1)}
		entries = append(entries, e)
		if err := s.Append(e.ts, []gb.Index{e.r}, []gb.Index{e.c}, []uint64{e.v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(4 * sec); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s, entries
}

// verifyRecovered checks a recovered store serves the exact reference
// content over the full span.
func verifyRecovered(t *testing.T, s *Store[uint64], entries []entry, t0, t1 int64) {
	t.Helper()
	r, err := s.QueryRange(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Uncovered) != 0 {
		t.Fatalf("recovered range uncovered: %v", r.Uncovered)
	}
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, reference(t, entries, t0, t1)) {
		t.Fatalf("recovered content differs from reference over [%d,%d)", t0, t1)
	}
}

func TestDurableWindowedKillPoints(t *testing.T) {
	sec := int64(time.Second)

	t.Run("after-flush-active-windows", func(t *testing.T) {
		dir := t.TempDir()
		s, entries := seedDurable(t, dir)
		defer s.Close()
		crash := copyDir(t, dir) // kill -9 with two active windows
		rec, st, err := Recover[uint64](durableCfg(crash))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if st.Sealed != 5 || st.Active != 2 { // 4 sealed L0 + 1 roll-up
			t.Fatalf("recovered sealed=%d active=%d, want 5/2", st.Sealed, st.Active)
		}
		verifyRecovered(t, rec, entries, 0, 6*sec)
		// Active windows resume: a fresh append to window 5 lands.
		if err := rec.Append(5*sec+7, []gb.Index{99}, []gb.Index{99}, []uint64{5}); err != nil {
			t.Fatal(err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := rec.QueryRange(5*sec, 6*sec)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := r.Lookup(99, 99)
		if err != nil || !ok || v != 5 {
			t.Fatalf("post-recovery append: lookup = %d/%v/%v", v, ok, err)
		}
		// And appends behind the recovered frontier stay refused.
		if err := rec.Append(2*sec, []gb.Index{1}, []gb.Index{1}, []uint64{1}); !errors.Is(err, ErrLate) {
			t.Fatalf("append behind recovered frontier: %v, want ErrLate", err)
		}
	})

	t.Run("session-minting-floor", func(t *testing.T) {
		// The store manifest's session frontier advances only at store
		// barriers, while a window's per-shard tables log every frame
		// (SyncEvery 1 here): a sessioned frame accepted after the last
		// Flush recovers into the window's tables but not the manifest.
		// ResumeSeq must under-report from the manifest (the frame's
		// durability is unproven store-wide) and MintSeq must over-report
		// from the window tables (its seq is spent either way).
		dir := t.TempDir()
		s, err := New[uint64](dim, dim, durableCfg(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if dup, err := s.AppendSession("sess-W", 1, 5, []gb.Index{1}, []gb.Index{2}, []uint64{3}); err != nil || dup {
			t.Fatalf("seq 1: dup=%v err=%v", dup, err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if dup, err := s.AppendSession("sess-W", 2, 7, []gb.Index{3}, []gb.Index{4}, []uint64{5}); err != nil || dup {
			t.Fatalf("seq 2: dup=%v err=%v", dup, err)
		}
		// Drain the owning window's group (not a store barrier: the
		// manifest frontier must stay at 1) so seq 2's synced WAL record
		// is on disk when the "crash" copies the directory.
		if err := s.wins[key{0, 0}].g.Err(); err != nil {
			t.Fatal(err)
		}
		crash := copyDir(t, dir)
		rec, _, err := Recover[uint64](durableCfg(crash))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if got := rec.ResumeSeq("sess-W"); got != 1 {
			t.Fatalf("recovered ResumeSeq = %d, want 1 (manifest frontier under-reports)", got)
		}
		if got := rec.MintSeq("sess-W"); got != 2 {
			t.Fatalf("recovered MintSeq = %d, want 2 (window tables carry the spent seq)", got)
		}
		// The resuming client retransmits seq 2 — absorbed by the window's
		// per-shard tables — and mints new data at 3, which must land.
		if _, err := rec.AppendSession("sess-W", 2, 7, []gb.Index{3}, []gb.Index{4}, []uint64{5}); err != nil {
			t.Fatal(err)
		}
		if dup, err := rec.AppendSession("sess-W", 3, 9, []gb.Index{5}, []gb.Index{6}, []uint64{7}); err != nil || dup {
			t.Fatalf("seq 3: dup=%v err=%v", dup, err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		entries := []entry{
			{ts: 5, r: 1, c: 2, v: 3},
			{ts: 7, r: 3, c: 4, v: 5},
			{ts: 9, r: 5, c: 6, v: 7},
		}
		verifyRecovered(t, rec, entries, 0, int64(time.Second))
	})

	t.Run("seal-marker-lost", func(t *testing.T) {
		dir := t.TempDir()
		s, entries := seedDurable(t, dir)
		defer s.Close()
		crash := copyDir(t, dir)
		// Simulate a crash between a seal's group close and its marker:
		// drop one sealed window's SEALED file in the copy.
		victim := filepath.Join(crash, filepath.Base(victimDir(t, crash, 0, 2*sec)), sealedMarkerName)
		if err := os.Remove(victim); err != nil {
			t.Fatal(err)
		}
		rec, st, err := Recover[uint64](durableCfg(crash))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if st.Resealed != 1 {
			t.Fatalf("Resealed = %d, want 1", st.Resealed)
		}
		if st.Sealed != 5 {
			t.Fatalf("Sealed = %d, want 5", st.Sealed)
		}
		verifyRecovered(t, rec, entries, 0, 6*sec)
		// The re-seal restored the marker, so a second recovery is clean.
		if _, err := os.Stat(victim); err != nil {
			t.Fatalf("re-seal did not restore the marker: %v", err)
		}
	})

	t.Run("rollup-durable", func(t *testing.T) {
		dir := t.TempDir()
		s, entries := seedDurable(t, dir)
		defer s.Close()
		crash := copyDir(t, dir)
		rec, _, err := Recover[uint64](durableCfg(crash))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		// The aligned epoch answers from the recovered roll-up alone.
		r, err := rec.QueryRange(0, 4*sec)
		if err != nil {
			t.Fatal(err)
		}
		if r.Windows() != 1 {
			t.Fatalf("recovered rolled epoch covered by %d windows: %v", r.Windows(), r.Spans())
		}
		got, err := r.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, reference(t, entries, 0, 4*sec)) {
			t.Fatal("recovered roll-up differs from reference")
		}
		// Children recovered as rolled: sealing onward must not re-roll.
		if got := rec.Stats().RollUps; got != 0 {
			t.Fatalf("recovery re-materialized %d roll-ups", got)
		}
	})

	t.Run("rollup-marker-lost-discards-partial-parent", func(t *testing.T) {
		dir := t.TempDir()
		s, entries := seedDurable(t, dir)
		defer s.Close()
		crash := copyDir(t, dir)
		// A roll-up directory without its SEALED marker is a crash mid-
		// materialization: its group manifest exists but may hold any
		// prefix of the children's sum. Recovery must discard it, NOT
		// promote it.
		parent := victimDir(t, crash, 1, 0)
		if err := os.Remove(filepath.Join(parent, sealedMarkerName)); err != nil {
			t.Fatal(err)
		}
		rec, st, err := Recover[uint64](durableCfg(crash))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if st.Sealed != 4 { // the 4 level-0 children; no parent
			t.Fatalf("recovered sealed=%d, want 4", st.Sealed)
		}
		if _, err := os.Stat(parent); !os.IsNotExist(err) {
			t.Fatalf("partial roll-up directory survived recovery: %v", err)
		}
		// The children answer exactly in the meantime…
		verifyRecovered(t, rec, entries, 0, 4*sec)
		// …and the next seal pass re-materializes the parent from them.
		if err := rec.Seal(5 * sec); err != nil {
			t.Fatal(err)
		}
		if got := rec.Stats().RollUps; got != 1 {
			t.Fatalf("re-materialized RollUps = %d, want 1", got)
		}
		r, err := rec.QueryRange(0, 4*sec)
		if err != nil {
			t.Fatal(err)
		}
		if r.Windows() != 1 {
			t.Fatalf("re-rolled epoch cover = %v", r.Spans())
		}
		got, err := r.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, reference(t, entries, 0, 4*sec)) {
			t.Fatal("re-materialized roll-up differs from reference")
		}
	})

	t.Run("after-close-clean-restart", func(t *testing.T) {
		dir := t.TempDir()
		s, entries := seedDurable(t, dir)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		rec, st, err := Recover[uint64](durableCfg(dir))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		if st.ReplayedBatches != 0 {
			t.Fatalf("clean restart replayed %d batches", st.ReplayedBatches)
		}
		if st.Active != 2 {
			t.Fatalf("clean restart active=%d, want 2", st.Active)
		}
		verifyRecovered(t, rec, entries, 0, 6*sec)
		// Sealing continues where the stream left off.
		if err := rec.Seal(6 * sec); err != nil {
			t.Fatal(err)
		}
		if got := rec.Stats().Seals; got != 7 { // 5 recovered + 2 new
			t.Fatalf("Seals after resumed sealing = %d, want 7", got)
		}
	})

	t.Run("accepted-never-flushed", func(t *testing.T) {
		dir := t.TempDir()
		s, entries := seedDurable(t, dir)
		defer s.Close()
		// One more accepted-but-never-flushed append: its fate after the
		// crash is per that window's group commit; everything flushed
		// before it must survive regardless.
		if err := s.Append(5*sec+800, []gb.Index{77}, []gb.Index{77}, []uint64{3}); err != nil {
			t.Fatal(err)
		}
		crash := copyDir(t, dir)
		rec, _, err := Recover[uint64](durableCfg(crash))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		verifyRecovered(t, rec, entries, 0, 5*sec) // the flushed prefix, exact
	})
}

// victimDir returns the window directory for (level, start) under root.
func victimDir(t *testing.T, root string, level int, start int64) string {
	t.Helper()
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if l, st, ok := parseWinDir(e.Name()); ok && l == level && st == start {
			return filepath.Join(root, e.Name())
		}
	}
	t.Fatalf("no window dir for level %d start %d", level, start)
	return ""
}

// TestDurableLifecycleErrors pins the misuse errors: double-open of a
// fresh root, Recover of a live root, Recover of a non-durable config.
func TestDurableLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := New[uint64](dim, dim, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New[uint64](dim, dim, durableCfg(dir)); err == nil {
		t.Fatal("second New over a live root succeeded")
	}
	if _, _, err := Recover[uint64](durableCfg(dir)); err == nil {
		t.Fatal("Recover of a live root succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New[uint64](dim, dim, durableCfg(dir)); err == nil {
		t.Fatal("New over an existing (closed) root succeeded; want Recover-only")
	}
	if _, _, err := Recover[uint64](Config{Window: time.Second}); !errors.Is(err, shard.ErrNotDurable) {
		t.Fatalf("Recover without a directory: %v, want ErrNotDurable", err)
	}
	rec, _, err := Recover[uint64](durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
}
