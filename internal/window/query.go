package window

import (
	"fmt"
	"sort"
	"time"

	"hhgb/internal/flight"
	"hhgb/internal/gb"
	"hhgb/internal/stats"
)

// Span is one half-open event-time interval.
type Span struct {
	Start, End int64
}

// Range is a resolved range query: the cover of windows tiling [T0, T1)
// plus the query methods over it. A Range stays valid after the store
// seals, rolls up, or expires windows — the cover pins its groups, and
// closed groups remain queryable — but it describes the store as of
// resolution time: windows sealed later do not join it retroactively.
type Range[T gb.Number] struct {
	store  *Store[T]
	T0, T1 int64 // the aligned query bounds [T0, T1)
	cover  []*win[T]
	// Uncovered lists the slices of [T0, T1) no retained window could
	// tile exactly: data expired at the requested resolution (or a coarse
	// window only partially overlapping the range). Slices that never
	// held data are NOT listed — an empty window and no window are
	// indistinguishable and both contribute nothing.
	Uncovered []Span

	// Instrumentation, set by Instrument and owned by the querying
	// goroutine (a Range is not safe for concurrent queries once
	// instrumented). Both nil on the normal path: each leg then costs
	// two nil checks and no clock reads.
	sp     *flight.QuerySpan
	ex     *flight.QueryExplain
	single bool // the in-flight query routes each leg to one shard
}

// Instrument attaches a sampled query span and/or an EXPLAIN collector to
// the range. Either may be nil. The explain trailer's cover legs and
// uncovered holes are filled here, straight from the resolved cover —
// the trailer always matches what the Range serves, bit for bit; leg
// timings and fan-out counts are filled in as the next query method
// executes. Instrument supports one query method per call (re-instrument
// to run another).
func (r *Range[T]) Instrument(sp *flight.QuerySpan, ex *flight.QueryExplain) {
	r.sp, r.ex = sp, ex
	if ex == nil {
		return
	}
	ex.Legs = make([]flight.ExplainLeg, len(r.cover))
	for i, w := range r.cover {
		ex.Legs[i] = flight.ExplainLeg{
			Level:  w.level,
			Start:  w.start,
			End:    w.end,
			Shards: w.g.NumShards(),
		}
	}
	ex.Uncovered = make([]flight.ExplainSpan, len(r.Uncovered))
	for i, s := range r.Uncovered {
		ex.Uncovered[i] = flight.ExplainSpan{Start: s.Start, End: s.End}
	}
}

// leg runs one cover window's pushdown call, timing it when the range is
// instrumented: the duration max-folds into the span's fanout_max stage
// and lands in the explain trailer's leg, and the fan-out shape (window
// level, per-shard tasks) is counted.
func (r *Range[T]) leg(i int, w *win[T], f func(w *win[T]) error) error {
	if r.sp == nil && r.ex == nil {
		return f(w)
	}
	shards := w.g.NumShards()
	if r.single {
		shards = 1
	}
	t0 := flight.Now()
	err := f(w)
	d := time.Duration(flight.Now() - t0)
	r.sp.ObserveLeg(d)
	r.sp.Touch(w.level, shards)
	r.sp.AdvanceStage(flight.QStageFanout)
	if r.ex != nil && i < len(r.ex.Legs) {
		r.ex.Legs[i].Shards = shards
		r.ex.Legs[i].Dur += d
	}
	return err
}

// QueryRange resolves the cover of [t0, t1): t0 is aligned down and t1 up
// to the level-0 window, every retained window overlapping the result is a
// candidate, and the cover greedily prefers the coarsest window fitting
// entirely inside the range — so a spans-aligned query over a rolled-up
// epoch touches one matrix, not its many children. Only cover members are
// ever queried (their per-window counters are bumped at resolution; see
// Store.Windows).
func (s *Store[T]) QueryRange(t0, t1 int64) (*Range[T], error) {
	if t0 < 0 || t1 <= t0 {
		return nil, fmt.Errorf("%w: range [%d, %d)", gb.ErrInvalidValue, t0, t1)
	}
	lo := alignDown(t0, s.spans[0])
	hi := alignUp(t1, s.spans[0])
	s.mu.Lock()
	defer s.mu.Unlock()
	// Candidates: every retained window overlapping [lo, hi), keyed by
	// start so the cover walk can pick the coarsest fit at each position.
	// Roll-up windows only qualify once Sealed: a parent registers in the
	// map before materializeParent has copied its children in, and a
	// cover that picked the half-filled parent over the complete children
	// would silently undercount. (Level-0 windows are authoritative in
	// every live state — their data arrives by ingest, not by copy.)
	starts := map[int64][]*win[T]{}
	var positions []int64
	for _, w := range s.wins {
		if w.state == Expired || w.end <= lo || w.start >= hi {
			continue
		}
		if w.level > 0 && w.state != Sealed {
			continue
		}
		if len(starts[w.start]) == 0 {
			positions = append(positions, w.start)
		}
		starts[w.start] = append(starts[w.start], w)
	}
	sort.Slice(positions, func(a, b int) bool { return positions[a] < positions[b] })

	r := &Range[T]{store: s, T0: lo, T1: hi}
	pos := lo
	for pos < hi {
		// The coarsest window starting exactly here and ending inside the
		// range; windows tile disjointly by construction (a parent's span
		// is a whole multiple of its children's), so advancing by the
		// chosen window's span can never double-count a cell.
		var best *win[T]
		for _, w := range starts[pos] {
			if w.end <= hi && (best == nil || w.end > best.end) {
				best = w
			}
		}
		if best != nil {
			best.queries++
			r.cover = append(r.cover, best)
			pos = best.end
			continue
		}
		// Nothing usable starts here: skip to the next candidate start
		// (or the end) and record the hole. Either the slice never held
		// data, or retention expired the fine windows and the surviving
		// coarse one does not fit the range — callers see which via
		// Uncovered versus an empty result.
		next := hi
		for _, p := range positions {
			if p > pos && p < next {
				next = p
			}
		}
		r.Uncovered = append(r.Uncovered, Span{Start: pos, End: next})
		pos = next
	}
	return r, nil
}

// Windows returns the number of windows in the cover — what range-query
// cost scales with.
func (r *Range[T]) Windows() int { return len(r.cover) }

// Spans lists the cover's window spans in time order.
func (r *Range[T]) Spans() []Span {
	out := make([]Span, len(r.cover))
	for i, w := range r.cover {
		out[i] = Span{Start: w.start, End: w.end}
	}
	return out
}

// each runs f over every cover window, stopping at the first error.
func (r *Range[T]) each(f func(w *win[T]) error) error {
	for i, w := range r.cover {
		if err := r.leg(i, w, f); err != nil {
			return err
		}
	}
	return nil
}

// Total returns the sum of every stored value in the range: the
// per-window (per-shard pushed-down) totals, added.
func (r *Range[T]) Total() (T, error) {
	var total T
	plus := gb.Plus[T]()
	err := r.each(func(w *win[T]) error {
		t, err := w.g.Total()
		if err != nil {
			return err
		}
		total = plus.Op(total, t)
		return nil
	})
	return total, err
}

// Lookup returns the accumulated value of one cell over the range: the
// per-window single-shard lookups, added.
func (r *Range[T]) Lookup(row, col gb.Index) (T, bool, error) {
	// A lookup routes each window's leg to exactly one shard (runOne, not
	// the all-shard barrier) — mark it so instrumented legs count 1.
	r.single = true
	defer func() { r.single = false }()
	var total T
	found := false
	plus := gb.Plus[T]()
	err := r.each(func(w *win[T]) error {
		v, ok, err := w.g.Lookup(row, col)
		if err != nil {
			return err
		}
		if ok {
			total = plus.Op(total, v)
			found = true
		}
		return nil
	})
	if err != nil {
		var zero T
		return zero, false, err
	}
	return total, found, nil
}

// vec merges one pushdown vector kind across the cover.
func (r *Range[T]) vec(pick func(w *win[T]) (*gb.Vector[T], error), n gb.Index) (*gb.Vector[T], error) {
	var acc *gb.Vector[T]
	plus := gb.Plus[T]()
	err := r.each(func(w *win[T]) error {
		v, err := pick(w)
		if err != nil {
			return err
		}
		if acc == nil {
			acc = v
			return nil
		}
		acc, err = gb.VecEWiseAdd(acc, v, plus.Op)
		return err
	})
	if err != nil {
		return nil, err
	}
	if acc == nil {
		return gb.NewVector[T](n)
	}
	return acc, nil
}

// RowSums returns the per-row value totals over the range.
func (r *Range[T]) RowSums() (*gb.Vector[T], error) {
	return r.vec(func(w *win[T]) (*gb.Vector[T], error) { return w.g.RowSums() }, r.store.nrows)
}

// ColSums returns the per-column value totals over the range.
func (r *Range[T]) ColSums() (*gb.Vector[T], error) {
	return r.vec(func(w *win[T]) (*gb.Vector[T], error) { return w.g.ColSums() }, r.store.ncols)
}

// TopRows returns the k rows with the largest value totals over the range,
// ranked exactly as a flat matrix holding the range's sum would rank them.
func (r *Range[T]) TopRows(k int) ([]stats.Top[T], error) {
	v, err := r.RowSums()
	if err != nil {
		return nil, err
	}
	return stats.SelectTopK(v, k)
}

// TopCols returns the k columns with the largest value totals; see TopRows.
func (r *Range[T]) TopCols(k int) ([]stats.Top[T], error) {
	v, err := r.ColSums()
	if err != nil {
		return nil, err
	}
	return stats.SelectTopK(v, k)
}

// NVals returns the number of distinct stored cells over the range. Unlike
// sums, distinct counts are not additive across windows (a cell may recur
// in several), so this materializes the cover's sum — cost proportional to
// the cover's nnz, still bounded by the windows touched.
func (r *Range[T]) NVals() (int, error) {
	m, err := r.Materialize()
	if err != nil {
		return 0, err
	}
	return m.NVals(), nil
}

// Materialize sums the cover into one flat matrix — the reference the
// equivalence tests compare every other method against, and the escape
// hatch for analyses the pushdowns do not cover.
func (r *Range[T]) Materialize() (*gb.Matrix[T], error) {
	if len(r.cover) == 0 {
		return gb.NewMatrix[T](r.store.nrows, r.store.ncols)
	}
	parts := make([]*gb.Matrix[T], len(r.cover))
	for i, w := range r.cover {
		err := r.leg(i, w, func(w *win[T]) error {
			q, err := w.g.Query()
			if err != nil {
				return err
			}
			parts[i] = q
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return gb.Sum(parts...)
}
