package window

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hhgb/internal/gb"
	"hhgb/internal/shard"
)

// TestConcurrentAppendsStraddlingWindowBoundary hammers the seal frontier:
// producers append single-entry batches whose timestamps interleave across
// window boundaries while zero lateness makes every watermark advance seal
// aggressively. Every append must either apply entirely (nil error) or be
// refused entirely (ErrLate), and the accounting must balance exactly:
// accepted weight equals the stored total, refused entries equal the
// LateDrops counter.
func TestConcurrentAppendsStraddlingWindowBoundary(t *testing.T) {
	const (
		producers = 8
		perProd   = 400
		nWindows  = 10
	)
	s, err := New[uint64](dim, dim, Config{
		Window: time.Second,
		Shard:  shard.Config{Shards: 2, Handoff: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var accepted, refused atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Each producer sweeps the stream at its own phase, so at
				// any instant some producers are ahead (sealing windows)
				// while others still write near a boundary just behind.
				ts := int64(i)*int64(nWindows)*int64(time.Second)/perProd + int64(p)*137
				err := s.Append(ts, []gb.Index{gb.Index(p)}, []gb.Index{gb.Index(i % 50)}, []uint64{1})
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrLate):
					refused.Add(1)
				default:
					t.Errorf("append: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := s.Seal(int64(nWindows) * int64(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := s.QueryRange(0, int64(nWindows)*int64(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	total, err := r.Total()
	if err != nil {
		t.Fatal(err)
	}
	if int64(total) != accepted.Load() {
		t.Fatalf("stored total %d != accepted appends %d (refused %d)", total, accepted.Load(), refused.Load())
	}
	if got := s.Stats().LateDrops; got != refused.Load() {
		t.Fatalf("LateDrops = %d, want %d", got, refused.Load())
	}
	if accepted.Load()+refused.Load() != producers*perProd {
		t.Fatalf("accounting leak: %d + %d != %d", accepted.Load(), refused.Load(), producers*perProd)
	}
}

// TestExpiryRacingRangeQuery races retention-driven expiry against range
// queries two ways: a resolved Range must keep answering from its pinned
// (closed, still queryable) windows even after the store expired them, and
// concurrent QueryRange/expiry traffic must stay error- and race-free.
func TestExpiryRacingRangeQuery(t *testing.T) {
	sec := int64(time.Second)
	cfg := Config{
		Window:     time.Second,
		Retentions: []time.Duration{5 * time.Second},
		Lateness:   1000 * time.Second,
		Shard:      shard.Config{Shards: 2, Handoff: 8},
	}
	s, err := New[uint64](dim, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Three sealed windows, one entry each.
	for w := int64(0); w < 3; w++ {
		if err := s.Append(w*sec+1, []gb.Index{1}, []gb.Index{gb.Index(w)}, []uint64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(3 * sec); err != nil {
		t.Fatal(err)
	}
	r, err := s.QueryRange(0, 3*sec)
	if err != nil {
		t.Fatal(err)
	}
	// Advance far enough that retention expires all three windows.
	if err := s.Seal(10 * sec); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Expired; got != 3 {
		t.Fatalf("Expired = %d, want 3", got)
	}
	// The stale Range still answers from its pinned windows.
	total, err := r.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("stale range total = %d, want 3", total)
	}
	// A fresh resolve sees the holes instead.
	r2, err := s.QueryRange(0, 3*sec)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Windows() != 0 || len(r2.Uncovered) == 0 {
		t.Fatalf("post-expiry resolve: windows=%d uncovered=%v", r2.Windows(), r2.Uncovered)
	}

	// Racy half: appenders advancing the frontier (sealing + expiring
	// continuously) against query loops. Assert only absence of errors;
	// the race detector asserts the rest.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hi := s.Watermark()
				if hi < sec {
					continue
				}
				r, err := s.QueryRange(0, hi)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if _, err := r.Total(); err != nil {
					t.Errorf("total: %v", err)
					return
				}
			}
		}()
	}
	base := int64(20) * sec
	for i := 0; i < 400; i++ {
		ts := base + int64(i)*sec/10
		err := s.Append(ts, []gb.Index{2}, []gb.Index{3}, []uint64{1})
		if err != nil && !errors.Is(err, ErrLate) {
			t.Fatalf("append: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRangeExactDuringRollUp: a range query racing a roll-up must never
// observe the half-filled parent — the cover serves the sealed children
// until the parent itself seals, so the total is exact at every instant.
func TestRangeExactDuringRollUp(t *testing.T) {
	const perWindow = 20000
	sec := int64(time.Second)
	cfg := testCfg(2)
	s, err := New[uint64](dim, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for w := int64(0); w < 2; w++ {
		for off := 0; off < perWindow; off += 500 {
			rows := make([]gb.Index, 500)
			cols := make([]gb.Index, 500)
			vals := make([]uint64, 500)
			for i := range rows {
				rows[i] = gb.Index(off + i)
				cols[i] = gb.Index(w)
				vals[i] = 1
			}
			if err := s.Append(w*sec+1, rows, cols, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	const want = 2 * perWindow
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := s.QueryRange(0, 2*sec)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				total, err := r.Total()
				if err != nil {
					t.Errorf("total: %v", err)
					return
				}
				if total != want {
					t.Errorf("mid-rollup range total = %d, want %d (cover %v)", total, want, r.Spans())
					return
				}
			}
		}()
	}
	// Sealing both windows completes a factor-2 roll-up while the
	// queriers hammer the same span.
	if err := s.Seal(2 * sec); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if got := s.Stats().RollUps; got != 1 {
		t.Fatalf("RollUps = %d, want 1", got)
	}
	// And once sealed, the parent serves the aligned span alone.
	r, err := s.QueryRange(0, 2*sec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows() != 1 {
		t.Fatalf("post-rollup cover = %v", r.Spans())
	}
	if total, _ := r.Total(); total != want {
		t.Fatalf("post-rollup total = %d, want %d", total, want)
	}
}

// TestSubscribeUnderConcurrentIngest: with many producers racing the
// sealer, a subscriber still sees exactly one summary per sealed level-0
// window, in seal order.
func TestSubscribeUnderConcurrentIngest(t *testing.T) {
	const (
		producers = 6
		nWindows  = 12
	)
	sec := int64(time.Second)
	s, err := New[uint64](dim, dim, Config{
		Window:   time.Second,
		Lateness: 2 * time.Second,
		Shard:    shard.Config{Shards: 2, Handoff: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(0)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for w := 0; w < nWindows; w++ {
				ts := int64(w)*sec + int64(p+1)
				if err := s.Append(ts, []gb.Index{gb.Index(p)}, []gb.Index{gb.Index(w)}, []uint64{1}); err != nil && !errors.Is(err, ErrLate) {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := s.Seal(int64(nWindows) * sec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seen := map[int64]bool{}
	last := int64(-1)
	n := 0
	for {
		sum, ok := sub.Next()
		if !ok {
			break
		}
		n++
		if sum.Level != 0 {
			t.Fatalf("level-%d summary on a level-0 subscription", sum.Level)
		}
		if seen[sum.Start] {
			t.Fatalf("duplicate summary for window starting %d", sum.Start)
		}
		seen[sum.Start] = true
		if sum.Start <= last {
			t.Fatalf("summary order violated: %d after %d", sum.Start, last)
		}
		last = sum.Start
	}
	if n != nWindows {
		t.Fatalf("received %d summaries, want %d", n, nWindows)
	}
}
