package window

import (
	"strings"
	"testing"
	"time"

	"hhgb/internal/gb"
	"hhgb/internal/metrics"
)

// sealN appends one entry per second starting at ts=0 and consumes from
// keep after every append, so n level-0 windows seal deterministically on
// the appending goroutine.
func sealN(t *testing.T, s *Store[int64], n int, keep *Subscription[int64]) []Summary[int64] {
	t.Helper()
	var got []Summary[int64]
	for i := 0; i <= n; i++ {
		if err := s.Append(int64(i)*int64(time.Second), []gb.Index{1}, []gb.Index{2}, []int64{1}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if keep != nil {
			for keep.Pending() > 0 {
				sum, ok := keep.Next()
				if !ok {
					t.Fatal("healthy subscription closed early")
				}
				got = append(got, sum)
			}
		}
	}
	return got
}

// TestSubscriberEviction: with a queue bound of 1 and zero patience, a
// subscriber that never consumes is evicted on the second publish, while
// a healthy subscriber on the same store observes every seal in order.
// Deterministic: all sealing and pushing runs on this goroutine.
func TestSubscriberEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := New[int64](64, 64, Config{
		Window:             time.Second,
		SubscriberQueue:    1,
		SubscriberPatience: 0,
		Metrics:            NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stalled := s.Subscribe()
	healthy := s.Subscribe()

	got := sealN(t, s, 3, healthy)
	if len(got) != 3 {
		t.Fatalf("healthy subscriber got %d summaries, want 3", len(got))
	}
	for i, sum := range got {
		if want := int64(i) * int64(time.Second); sum.Start != want {
			t.Errorf("summary %d start = %d, want %d (seal order broken)", i, sum.Start, want)
		}
	}
	if !stalled.Evicted() {
		t.Fatal("stalled subscriber not evicted")
	}
	if _, ok := stalled.Next(); ok {
		t.Fatal("Next on an evicted subscription must report done")
	}
	if stalled.Pending() != 0 {
		t.Fatalf("evicted backlog not dropped: %d pending", stalled.Pending())
	}
	if healthy.Evicted() {
		t.Fatal("healthy subscriber wrongly marked evicted")
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hhgb_window_subscribers_evicted_total 1\n") {
		t.Errorf("eviction not counted:\n%s", out)
	}
	// 3 seals delivered to healthy + 1 queued on stalled before eviction.
	if !strings.Contains(out, "hhgb_window_summaries_pushed_total 4\n") {
		t.Errorf("summaries-pushed count wrong:\n%s", out)
	}
	if !strings.Contains(out, "hhgb_window_seals_total 3\n") {
		t.Errorf("seals counter wrong:\n%s", out)
	}
}

// TestSubscriberBoundIsATrigger: within patience the bound does not drop
// summaries — the queue grows past it, and a consumer that recovers sees
// the full feed.
func TestSubscriberBoundIsATrigger(t *testing.T) {
	s, err := New[int64](64, 64, Config{
		Window:             time.Second,
		SubscriberQueue:    1,
		SubscriberPatience: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	slow := s.Subscribe()
	sealN(t, s, 3, nil)
	if slow.Evicted() {
		t.Fatal("evicted within patience")
	}
	if got := slow.Pending(); got != 3 {
		t.Fatalf("queue holds %d summaries, want 3 (bound must not drop)", got)
	}
	for i := 0; i < 3; i++ {
		if _, ok := slow.Next(); !ok {
			t.Fatalf("summary %d missing after recovery", i)
		}
	}
}

// TestUnboundedDefaultNeverEvicts pins the zero-value behavior: no bound,
// no eviction, exactly as before the eviction policy existed.
func TestUnboundedDefaultNeverEvicts(t *testing.T) {
	s, err := New[int64](64, 64, Config{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	slow := s.Subscribe()
	sealN(t, s, 5, nil)
	if slow.Evicted() {
		t.Fatal("unbounded subscription evicted")
	}
	if got := slow.Pending(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
}
