// Package window is the temporal frontend of the sharded ingest engine: a
// Store partitions the insert stream into fixed-duration time windows, each
// backed by its own shard.Group cascade, and arranges the sealed windows
// into a roll-up hierarchy (fine windows summed into coarser epochs by
// matrix addition — the time-axis analogue of the paper's hierarchical
// accumulation, following "Vertical, Temporal, and Horizontal Scaling of
// Hierarchical Hypersparse GraphBLAS Matrices", arXiv:2108.06650).
//
// # Windows and sealing
//
// Every append carries an event timestamp; the entry lands in the level-0
// window [k·W, (k+1)·W) containing it, where W is Config.Window. The store
// tracks the high watermark (largest timestamp seen) and seals a window
// once the watermark passes its end by Config.Lateness: sealing excludes
// in-flight appends (a per-window barrier), closes the window's group —
// its ingest workers stop, the matrix stays fully queryable, and a durable
// window takes its final checkpoint — and publishes a per-window Summary
// to every Subscription, in seal order. Appends older than the seal
// frontier fail with ErrLate (counted, never silently dropped).
//
// # Roll-ups and retention
//
// Config.RollUps defines coarser levels: with Window = 1s and RollUps =
// {60, 60}, sealed 1s windows are summed into 1m windows, and those into
// 1h windows, as soon as the watermark passes the coarse span. Because
// GraphBLAS addition is linear, a roll-up window is exactly the sum of its
// children — so a range query may answer from one coarse matrix instead of
// many fine ones, and retention (Config.Retentions, per level) can expire
// the fine windows while the coarse ones keep serving long-range queries.
// Expiry closes and removes a sealed window (and deletes its durable
// state); a Range resolved before the expiry keeps working — closed groups
// remain queryable, so an in-flight query never races a deletion.
//
// # Range queries
//
// QueryRange(t0, t1) resolves a cover: a set of non-overlapping windows
// whose spans tile [t0, t1), preferring the coarsest window that fits
// entirely inside the range (one roll-up matrix instead of its many
// children). Only the cover's windows are ever touched — per-window query
// counters prove it — and each query merges the per-window, per-shard
// pushdown results exactly as the shard layer merges shards: totals and
// sums add, top-k ranks the merged vector, Lookup sums the (at most one
// per window) cells. The result is bit-identical to materializing the
// cover into one flat matrix and querying that.
package window

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hhgb/internal/flight"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/shard"
)

// ErrClosed is returned by Append, Seal, Flush, and Checkpoint after Close.
var ErrClosed = errors.New("window: store is closed")

// ErrLate is returned (wrapped; test with errors.Is) by Append when the
// batch's timestamp falls in a window that has already been sealed: the
// watermark passed it by more than Config.Lateness. The batch was not
// applied; Stats().LateDrops counts the dropped entries.
var ErrLate = errors.New("window: timestamp behind the seal frontier")

// DefaultLateness is the default out-of-orderness budget: a window seals
// only once the watermark passes its end by this much.
const DefaultLateness = 0 * time.Second

// Config describes a temporal window store.
type Config struct {
	// Window is the level-0 window duration. Required, > 0.
	Window time.Duration
	// RollUps lists the per-level roll-up factors: level i+1 windows span
	// RollUps[i] level-i windows (each factor must be >= 2). Empty keeps a
	// single level.
	RollUps []int
	// Retentions is the per-level retention: a sealed level-i window is
	// expired once the watermark passes its end by Retentions[i]. Zero (or
	// a missing entry) keeps that level forever. Expiring a level that
	// still feeds an un-materialized roll-up loses data for long-range
	// queries; retentions should be at least the parent level's span.
	Retentions []time.Duration
	// Lateness is the out-of-orderness budget: a window [s, s+W) seals
	// once watermark >= s+W+Lateness. Appends behind the frontier fail
	// with ErrLate.
	Lateness time.Duration
	// Shard configures every window's shard.Group. Shard.Durable.Dir, when
	// set, is the STORE root: each window persists under its own
	// subdirectory, and Recover restores the whole store from the root.
	Shard shard.Config
	// Metrics receives the window layer's instruments. Nil wires them to
	// the discard registry and skips the per-store sampled gauges.
	Metrics *Metrics
	// SubscriberQueue bounds each subscription's summary queue: a
	// subscription at or over the bound starts its patience clock, and
	// one still full when the clock passes SubscriberPatience is evicted
	// (see Subscription). Zero keeps the queue unbounded — no eviction.
	SubscriberQueue int
	// SubscriberPatience is how long a full subscription is tolerated
	// before eviction. Zero evicts on the first over-bound publish.
	SubscriberPatience time.Duration
}

// State of one window in its lifecycle.
type State int32

const (
	// Active: the window's group is live and accepting appends.
	Active State = iota
	// Sealing: picked for sealing; appends are already refused.
	Sealing
	// Sealed: closed (workers stopped, queryable), summary published.
	Sealed
	// Expired: removed by retention; only visible in counters.
	Expired
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Sealing:
		return "sealing"
	case Sealed:
		return "sealed"
	case Expired:
		return "expired"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// key identifies a window: its level and aligned start time.
type key struct {
	level int
	start int64
}

// win is one window: a shard.Group plus lifecycle state.
//
// Locking: state, queries, and rolled are guarded by the store mutex. wmu
// is the append/seal barrier: appenders hold it shared around g.Update,
// the sealer holds it exclusively while flipping state to Sealing — so a
// seal never runs with an append in flight, and the seal-time summary is
// complete.
type win[T gb.Number] struct {
	level      int
	start, end int64 // event-time bounds [start, end), unix nanoseconds
	g          *shard.Group[T]
	dir        string // durable subdirectory; "" when in-memory

	wmu     sync.RWMutex
	state   State
	rolled  bool  // summed into a sealed parent window
	queries int64 // range-query cover inclusions (tests assert span locality)

	// sessHigh, stashed when the window seals (and at recovery for sealed
	// windows), is the group's merged session high-water table: per client
	// session, the highest frame seq applied into THIS window. It lets a
	// retransmission that raced a seal be recognized as a duplicate — and
	// acked — instead of refused with ErrLate. Immutable once stashed;
	// guarded by the store mutex until then (nil while active).
	sessHigh map[string]uint64
}

// Store is a temporal window store over one logical nrows x ncols matrix.
// Append is safe for concurrent use by any number of goroutines; queries
// may run concurrently with ingest, sealing, and expiry.
type Store[T gb.Number] struct {
	nrows, ncols gb.Index
	cfg          Config
	spans        []int64 // per-level window span, nanoseconds

	// mu guards the window map, watermark/frontier, counters, pending
	// seal queue, and subscriber registry. It is never held across group
	// calls (Update/Flush/Close/queries), which can block.
	mu        sync.Mutex
	wins      map[key]*win[T]
	watermark int64 // largest event timestamp seen (exclusive frontier input)
	sealedTo  int64 // level-0 windows ending at or before this are sealed
	closed    bool
	pending   []*win[T] // windows marked Sealing, in seal order

	// sealMu serializes seal execution and subscriber dispatch, so every
	// subscriber observes one summary per sealed window in global seal
	// order. Never held together with mu.
	sealMu sync.Mutex

	// sessMu guards the store's exactly-once session frontiers, mirroring
	// shard.Group's: accepted advances when a sessioned frame lands in (or
	// is recognized by) a window; durable trails it, advancing only at
	// store-wide barriers (Flush, Checkpoint, Close) — a frame's entries
	// may spread across several windows' appends over time, so only a
	// barrier that syncs every live window can prove a prefix durable.
	// minted is only populated by recovery — the max over every recovered
	// window's per-shard session tables, which can exceed the recovered
	// accepted frontier; MintSeq folds it in (see shard.Group.MintSeq).
	// Leaf lock: nothing is acquired while it is held.
	sessMu   sync.Mutex
	accepted map[string]uint64
	durable  map[string]uint64
	minted   map[string]uint64

	subs    map[uint64]*Subscription[T]
	nextSub uint64

	stats Stats
}

// Stats counts the store's lifecycle events.
type Stats struct {
	Active    int   // windows currently accepting appends
	Sealed    int   // sealed windows currently retained (all levels)
	Seals     int64 // windows sealed so far (all levels)
	RollUps   int64 // roll-up windows materialized
	Expired   int64 // windows removed by retention
	LateDrops int64 // entries refused with ErrLate
}

// Info describes one retained window; see Store.Windows.
type Info struct {
	Level      int
	Start, End int64
	State      State
	Rolled     bool
	Queries    int64 // range-query covers that included this window
	Entries    int   // stored cells (sealed windows only; 0 for active)
}

// New returns an empty store. With Shard.Durable.Dir set, the root
// directory is claimed (single owner, like a durable group's) and a store
// manifest is written; restore an existing root with Recover instead.
func New[T gb.Number](nrows, ncols gb.Index, cfg Config) (*Store[T], error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("%w: window duration %v", gb.ErrInvalidValue, cfg.Window)
	}
	if cfg.Lateness < 0 {
		return nil, fmt.Errorf("%w: negative lateness %v", gb.ErrInvalidValue, cfg.Lateness)
	}
	spans := []int64{int64(cfg.Window)}
	for i, f := range cfg.RollUps {
		if f < 2 {
			return nil, fmt.Errorf("%w: roll-up factor %d at level %d (need >= 2)", gb.ErrInvalidValue, f, i)
		}
		spans = append(spans, spans[len(spans)-1]*int64(f))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	s := &Store[T]{
		nrows: nrows,
		ncols: ncols,
		cfg:   cfg,
		spans: spans,
		wins:  make(map[key]*win[T]),
		subs:  make(map[uint64]*Subscription[T]),
	}
	if cfg.Shard.Durable.Dir != "" {
		if err := s.initDurable(); err != nil {
			return nil, err
		}
	}
	registerStoreFuncs(s)
	return s, nil
}

// NRows returns the row dimension.
func (s *Store[T]) NRows() gb.Index { return s.nrows }

// NCols returns the column dimension.
func (s *Store[T]) NCols() gb.Index { return s.ncols }

// Window returns the level-0 window duration.
func (s *Store[T]) Window() time.Duration { return s.cfg.Window }

// Levels returns the number of hierarchy levels (1 + len(RollUps)).
func (s *Store[T]) Levels() int { return len(s.spans) }

// Span returns the duration of one window at the given level.
func (s *Store[T]) Span(level int) time.Duration { return time.Duration(s.spans[level]) }

// Durable reports whether the store persists its windows.
func (s *Store[T]) Durable() bool { return s.cfg.Shard.Durable.Dir != "" }

// ShardsPerWindow returns the shard count each window's group runs with
// (the configured value, or the GOMAXPROCS default the shard layer would
// resolve).
func (s *Store[T]) ShardsPerWindow() int {
	if s.cfg.Shard.Shards > 0 {
		return s.cfg.Shard.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// Watermark returns the largest event timestamp observed.
func (s *Store[T]) Watermark() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// SealedTo returns the seal frontier: every level-0 window ending at or
// before it is sealed, and appends behind it fail with ErrLate.
func (s *Store[T]) SealedTo() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealedTo
}

// alignDown floors ts to a span boundary. Timestamps are non-negative
// (Append enforces it), so integer division is the floor.
func alignDown(ts, span int64) int64 { return ts - ts%span }

// alignUp ceils ts to a span boundary.
func alignUp(ts, span int64) int64 {
	if r := ts % span; r != 0 {
		return ts - r + span
	}
	return ts
}

// groupConfig builds the shard.Config for one window's group.
func (s *Store[T]) groupConfig(dir string) shard.Config {
	cfg := s.cfg.Shard
	cfg.Durable.Dir = dir
	return cfg
}

// newWin creates (and registers) a window at the given level and start.
// Callers hold mu.
func (s *Store[T]) newWin(level int, start int64) (*win[T], error) {
	dir := ""
	if s.Durable() {
		dir = s.winDir(level, start)
	}
	cfg := s.groupConfig(dir)
	if level > 0 {
		// Roll-up windows are write-once and immediately sealed: a flat
		// single-level store with a large producer handoff ingests their
		// few huge sorted runs with linear merges, where the streaming
		// cascade (sized for endless small batches) would re-pay its
		// whole promotion ladder on historical data.
		cfg.Hier = hier.Config{}
		if cfg.Handoff < 1<<16 {
			cfg.Handoff = 1 << 16
		}
	}
	g, err := shard.NewGroup[T](s.nrows, s.ncols, cfg)
	if err != nil {
		return nil, err
	}
	w := &win[T]{
		level: level,
		start: start,
		end:   start + s.spans[level],
		g:     g,
		dir:   dir,
	}
	s.wins[key{level, start}] = w
	if level == 0 {
		s.stats.Active++
	}
	return w, nil
}

// Append routes one batch of updates, all stamped with the event timestamp
// ts (unix nanoseconds, >= 0), into the level-0 window containing ts. It
// is safe for concurrent use. Appends behind the seal frontier fail with
// ErrLate; crossing a window boundary may trigger sealing (and roll-up and
// expiry) work, which runs on the caller.
func (s *Store[T]) Append(ts int64, rows, cols []gb.Index, vals []T) error {
	if ts < 0 {
		return fmt.Errorf("%w: negative timestamp %d", gb.ErrInvalidValue, ts)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if ts > s.watermark {
		s.watermark = ts
	}
	start := alignDown(ts, s.spans[0])
	if start < s.sealedTo {
		s.stats.LateDrops += int64(len(rows))
		s.mu.Unlock()
		return fmt.Errorf("%w: ts %d is before frontier %d", ErrLate, ts, s.sealedTo)
	}
	w := s.wins[key{0, start}]
	if w == nil {
		var err error
		if w, err = s.newWin(0, start); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	sealWork := s.scheduleSealsLocked()
	s.mu.Unlock()

	// Ingest outside the store lock: Update may block on a full shard
	// queue, and the shared wmu excludes the sealer, so a seal-time
	// summary always includes every append that beat it here.
	w.wmu.RLock()
	var err error
	if w.state != Active {
		// The window was picked for sealing between the lookup and the
		// lock: the entry became late mid-flight (another producer pushed
		// the watermark past it). Refuse it exactly like any late append.
		err = fmt.Errorf("%w: window [%d,%d) sealed mid-append", ErrLate, w.start, w.end)
		s.mu.Lock()
		s.stats.LateDrops += int64(len(rows))
		s.mu.Unlock()
	} else {
		err = w.g.Update(rows, cols, vals)
	}
	w.wmu.RUnlock()

	if sealWork {
		s.runSeals()
	}
	return err
}

// AppendSession is Append under the exactly-once protocol: (session, seq)
// is the frame's dedup key, exactly as in shard.Group.UpdateSession. A
// frame at or below the store's accepted frontier — or at or below a
// sealed target window's stashed high-water table — returns dup=true
// without applying anything; a fresh frame routes into its window's group
// with the key attached (journaled on durable stores) and advances the
// accepted frontier. The durable frontier, which ResumeSeq reports on
// durable stores, follows at the next Flush, Checkpoint, or Close. One
// corner stays loud by design: a frame whose original delivery was lost
// un-synced in a crash, retransmitted after its window was re-sealed,
// fails with ErrLate — the data missed its window and is refused, never
// silently dropped.
func (s *Store[T]) AppendSession(session string, seq uint64, ts int64, rows, cols []gb.Index, vals []T) (bool, error) {
	return s.AppendSessionSpan(session, seq, ts, rows, cols, vals, nil)
}

// AppendSessionSpan is AppendSession carrying a sampled frame's latency
// span, threaded through to the window group's UpdateSessionSpan so
// shard workers can attribute the frame's async stages. A nil span is
// the common (unsampled) case and costs nothing.
func (s *Store[T]) AppendSessionSpan(session string, seq uint64, ts int64, rows, cols []gb.Index, vals []T, sp *flight.Span) (bool, error) {
	if session == "" || seq == 0 {
		return false, fmt.Errorf("%w: session %q seq %d", gb.ErrInvalidValue, session, seq)
	}
	if ts < 0 {
		return false, fmt.Errorf("%w: negative timestamp %d", gb.ErrInvalidValue, ts)
	}
	s.sessMu.Lock()
	prev := s.accepted[session]
	s.sessMu.Unlock()
	if seq <= prev {
		return true, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	if ts > s.watermark {
		s.watermark = ts
	}
	start := alignDown(ts, s.spans[0])
	if start < s.sealedTo {
		// Behind the frontier: a retransmission of a frame the sealed
		// window already holds is a duplicate, not a late arrival.
		if w := s.wins[key{0, start}]; w != nil && w.state == Sealed && seq <= w.sessHigh[session] {
			s.mu.Unlock()
			s.advanceAccepted(session, seq)
			return true, nil
		}
		s.stats.LateDrops += int64(len(rows))
		s.mu.Unlock()
		return false, fmt.Errorf("%w: ts %d is before frontier %d", ErrLate, ts, s.sealedTo)
	}
	w := s.wins[key{0, start}]
	if w == nil {
		var err error
		if w, err = s.newWin(0, start); err != nil {
			s.mu.Unlock()
			return false, err
		}
	}
	sealWork := s.scheduleSealsLocked()
	s.mu.Unlock()

	w.wmu.RLock()
	var dup bool
	var err error
	if w.state != Active {
		err = fmt.Errorf("%w: window [%d,%d) sealed mid-append", ErrLate, w.start, w.end)
		s.mu.Lock()
		s.stats.LateDrops += int64(len(rows))
		s.mu.Unlock()
	} else {
		// The group may still recognize the frame (its own frontier can
		// run ahead of the store's after a recovery); either way a nil
		// error means the frame is accounted for, so the store frontier
		// advances.
		dup, err = w.g.UpdateSessionSpan(session, seq, rows, cols, vals, sp)
		if err == nil {
			s.advanceAccepted(session, seq)
		}
	}
	w.wmu.RUnlock()

	if sealWork {
		s.runSeals()
	}
	return dup, err
}

// advanceAccepted moves the store's accepted frontier forward.
func (s *Store[T]) advanceAccepted(session string, seq uint64) {
	s.sessMu.Lock()
	if s.accepted == nil {
		s.accepted = make(map[string]uint64)
	}
	if seq > s.accepted[session] {
		s.accepted[session] = seq
	}
	s.sessMu.Unlock()
}

// ResumeSeq reports the session's resume frontier, like
// shard.Group.ResumeSeq: the durable frontier on durable stores, the
// accepted frontier otherwise; 0 for unknown sessions.
func (s *Store[T]) ResumeSeq(session string) uint64 {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.Durable() {
		return s.durable[session]
	}
	return s.accepted[session]
}

// MintSeq reports the session's seq-minting floor, like
// shard.Group.MintSeq: the highest frame seq the store's dedup state has
// ever recorded for the session, in any window, on any shard. Always >=
// ResumeSeq; a resuming client without its retransmit ring must assign
// new frames seqs strictly above it.
func (s *Store[T]) MintSeq(session string) uint64 {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	q := s.accepted[session]
	if m := s.minted[session]; m > q {
		q = m
	}
	return q
}

// snapshotAccepted copies the accepted frontier at a barrier's entry.
func (s *Store[T]) snapshotAccepted() map[string]uint64 {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if len(s.accepted) == 0 {
		return nil
	}
	snap := make(map[string]uint64, len(s.accepted))
	for sess, q := range s.accepted {
		snap[sess] = q
	}
	return snap
}

// commitDurableSessions publishes a pre-barrier snapshot after every live
// window synced; max per key, never backwards.
func (s *Store[T]) commitDurableSessions(snap map[string]uint64) {
	if len(snap) == 0 {
		return
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.durable == nil {
		s.durable = make(map[string]uint64, len(snap))
	}
	for sess, q := range snap {
		if q > s.durable[sess] {
			s.durable[sess] = q
		}
	}
}

// Seal advances the seal frontier to cover every level-0 window ending at
// or before upTo (aligned down to a window boundary), sealing them — and
// running any roll-ups and expiry that unlocks — before returning. It also
// advances the watermark to upTo, so a quiet stream can be sealed by a
// clock instead of by new data.
func (s *Store[T]) Seal(upTo int64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if upTo > s.watermark {
		s.watermark = upTo
	}
	target := alignDown(upTo, s.spans[0])
	sealWork := false
	if target > s.sealedTo {
		sealWork = s.scheduleSealsTo(target)
	}
	s.mu.Unlock()
	if sealWork {
		s.runSeals()
	}
	return nil
}

// scheduleSealsLocked derives the frontier from the watermark and lateness
// and queues newly-sealable windows. Callers hold mu; returns whether any
// seal work was queued (the caller then runs runSeals without mu).
func (s *Store[T]) scheduleSealsLocked() bool {
	if s.watermark < int64(s.cfg.Lateness) {
		return false // the whole stream is still within the lateness budget
	}
	target := alignDown(s.watermark-int64(s.cfg.Lateness), s.spans[0])
	if target <= s.sealedTo {
		return false
	}
	return s.scheduleSealsTo(target)
}

// scheduleSealsTo marks every active level-0 window ending at or before
// target as Sealing and queues it in start order (a map scan, NOT a walk
// over boundaries: the frontier can jump by an absolute wall-clock span,
// while live windows number at most a handful). Callers hold mu; the
// frontier must be advancing (target > s.sealedTo). Empty boundaries seal
// implicitly — there is no window to close — but the advance itself can
// still unlock roll-ups and expiry, so this always reports seal work.
func (s *Store[T]) scheduleSealsTo(target int64) bool {
	var due []*win[T]
	for _, w := range s.wins {
		if w.level == 0 && w.state == Active && w.end <= target {
			w.state = Sealing
			s.stats.Active--
			due = append(due, w)
		}
	}
	sort.Slice(due, func(a, b int) bool { return due[a].start < due[b].start })
	s.pending = append(s.pending, due...)
	s.sealedTo = target
	return true
}

// runSeals drains the pending-seal queue in order: each window is sealed
// (append barrier, group close, summary publication), then roll-ups and
// retention are applied. sealMu makes the whole sequence single-file, so
// subscribers observe seal order and roll-ups never race their children.
func (s *Store[T]) runSeals() {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	for {
		s.mu.Lock()
		if len(s.pending) == 0 {
			s.mu.Unlock()
			break
		}
		w := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.sealWin(w)
	}
	s.rollUp()
	s.expire()
	if s.Durable() {
		s.persistMetaBestEffort()
	}
}

// sealWin seals one window: exclude in-flight appends, close the group
// (final checkpoint when durable), mark it on disk, publish its summary.
// Runs under sealMu.
func (s *Store[T]) sealWin(w *win[T]) {
	w.wmu.Lock()
	// State was Sealing since scheduling; appends that raced the schedule
	// have either completed under the shared lock or will observe the
	// state and report ErrLate.
	w.wmu.Unlock()
	// Close drains every producer buffer and queue, stops the workers,
	// takes the final checkpoint when durable, and leaves the group fully
	// queryable — a sealed window costs zero goroutines.
	_ = w.g.Close()
	if w.dir != "" {
		s.markSealed(w)
	}
	// Stash the window's merged session table before publishing the seal:
	// a retransmission behind the new frontier consults it to tell
	// duplicate from late. NOT committed to the store's durable frontier —
	// a session's later frames may sit un-synced in other windows, and
	// only a store-wide barrier proves a whole prefix durable.
	highs := w.g.SessionHighs()
	sum := s.summarize(w)
	s.mu.Lock()
	w.sessHigh = highs
	w.state = Sealed
	s.stats.Seals++
	s.stats.Sealed++
	lag := s.watermark - w.end
	subs := make([]*Subscription[T], 0, len(s.subs))
	for _, sub := range s.subs {
		if sub.wants(w.level) {
			subs = append(subs, sub)
		}
	}
	s.mu.Unlock()
	if lag >= 0 {
		s.cfg.Metrics.SealLag.Observe(float64(lag) / 1e9)
	}
	sealLag := time.Duration(0)
	if lag > 0 {
		sealLag = time.Duration(lag)
	}
	s.cfg.Shard.Flight.Record(flight.KindSeal, 0, "", 0, uint64(w.level), uint64(sum.Entries), sealLag)
	delivered := uint64(0)
	for _, sub := range subs {
		if sub.push(sum) {
			delivered++
		}
	}
	s.cfg.Metrics.SummariesPushed.Add(delivered)
}

// summarize computes a sealed window's published summary in ONE row-major
// pass over the window's merged matrix: total and distinct-row count fall
// out of the iteration order, distinct columns from a set. The pushdown
// vector reductions would answer the same questions, but their
// column-wise vectors pay a comparison sort per seal — an order of
// magnitude over this scan on the profile — and a sealed window will
// never amortize a cache fill.
func (s *Store[T]) summarize(w *win[T]) Summary[T] {
	sum := Summary[T]{Level: w.level, Start: w.start, End: w.end}
	q, err := w.g.Query()
	if err != nil {
		sum.Err = err
		return sum
	}
	sum.Entries = q.NVals()
	var total T
	cols := make(map[gb.Index]struct{}, sum.Entries)
	var lastRow gb.Index
	q.Iterate(func(i, j gb.Index, v T) bool {
		total += v
		if sum.Sources == 0 || i != lastRow {
			sum.Sources++
			lastRow = i
		}
		cols[j] = struct{}{}
		return true
	})
	sum.Total = total
	sum.Destinations = len(cols)
	return sum
}

// rollUp materializes every complete coarse window whose span the frontier
// has passed: the children (sealed level-i windows inside the span) are
// summed into a fresh level-i+1 group, which is immediately sealed and
// published like any window. Runs under sealMu; cascades upward, so a 1m
// completion can complete an hour.
func (s *Store[T]) rollUp() {
	for lvl := 0; lvl+1 < len(s.spans); lvl++ {
		span := s.spans[lvl+1]
		for {
			s.mu.Lock()
			// Find the earliest sealed, un-rolled child at this level; its
			// parent span is the roll-up candidate.
			var first *win[T]
			for _, w := range s.wins {
				if w.level == lvl && w.state == Sealed && !w.rolled {
					if first == nil || w.start < first.start {
						first = w
					}
				}
			}
			if first == nil {
				s.mu.Unlock()
				break
			}
			pstart := alignDown(first.start, span)
			pend := pstart + span
			if s.sealedTo < pend {
				s.mu.Unlock()
				break // the parent span is still open
			}
			var children []*win[T]
			for b := pstart; b < pend; b += s.spans[lvl] {
				if c := s.wins[key{lvl, b}]; c != nil && c.state == Sealed && !c.rolled {
					children = append(children, c)
				}
			}
			for _, c := range children {
				c.rolled = true
			}
			s.mu.Unlock()
			if err := s.materializeParent(lvl+1, pstart, children); err != nil {
				// Un-mark so a later seal retries the roll-up; the fine
				// windows keep answering queries either way.
				s.mu.Lock()
				for _, c := range children {
					c.rolled = false
				}
				s.mu.Unlock()
				return
			}
		}
	}
}

// materializeParent builds one roll-up window as the matrix sum of its
// children and seals it. Runs under sealMu. The parent's entries arrive
// as a handful of huge row-major-sorted runs (each child's materialized
// Σ), so the chunks are sized to keep the per-chunk merge linear work
// dominant — re-cascading a historical matrix through small ingest
// batches would roughly double the whole stream's ingest cost.
func (s *Store[T]) materializeParent(level int, pstart int64, children []*win[T]) error {
	begun := wallNow()
	defer func() { s.cfg.Metrics.RollUp.Observe(wallSince(begun).Seconds()) }()
	s.mu.Lock()
	if s.wins[key{level, pstart}] != nil {
		s.mu.Unlock()
		return nil // already materialized (recovery can leave one behind)
	}
	p, err := s.newWin(level, pstart)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// On ANY failure past this point the half-filled parent must vanish
	// entirely — deregistered, closed, durable state deleted — or a later
	// roll-up pass would see it registered, assume the work done, and a
	// cover could serve the partial sum forever.
	fill := func() error {
		const chunk = 1 << 17
		rows := make([]gb.Index, 0, chunk)
		cols := make([]gb.Index, 0, chunk)
		vals := make([]T, 0, chunk)
		for _, c := range children {
			q, err := c.g.Query()
			if err != nil {
				return err
			}
			flush := func() error {
				if len(rows) == 0 {
					return nil
				}
				err := p.g.Update(rows, cols, vals)
				rows, cols, vals = rows[:0], cols[:0], vals[:0]
				return err
			}
			var uerr error
			q.Iterate(func(i, j gb.Index, v T) bool {
				rows, cols, vals = append(rows, i), append(cols, j), append(vals, v)
				if len(rows) == chunk {
					if uerr = flush(); uerr != nil {
						return false
					}
				}
				return true
			})
			if uerr == nil {
				uerr = flush()
			}
			if uerr != nil {
				return uerr
			}
		}
		return nil
	}
	if err := fill(); err != nil {
		s.mu.Lock()
		delete(s.wins, key{level, pstart})
		s.mu.Unlock()
		_ = p.g.Close()
		if p.dir != "" {
			s.removeWinDir(p)
		}
		return err
	}
	s.mu.Lock()
	p.state = Sealing
	s.stats.RollUps++
	s.mu.Unlock()
	s.cfg.Shard.Flight.Record(flight.KindRollup, 0, "", 0, uint64(level), uint64(len(children)), wallSince(begun))
	s.sealWin(p)
	return nil
}

// expire removes sealed windows whose retention has passed. Runs under
// sealMu. Closed groups stay queryable, so a Range resolved before the
// expiry keeps working; only the map entry (and any durable state) goes.
func (s *Store[T]) expire() {
	s.mu.Lock()
	var victims []*win[T]
	for k, w := range s.wins {
		if w.state != Sealed {
			continue
		}
		r := s.retention(w.level)
		if r <= 0 {
			continue
		}
		if s.watermark-w.end >= r {
			w.state = Expired
			s.stats.Sealed--
			s.stats.Expired++
			delete(s.wins, k)
			victims = append(victims, w)
		}
	}
	s.mu.Unlock()
	for _, w := range victims {
		s.cfg.Shard.Flight.Record(flight.KindExpiry, 0, "", 0, uint64(w.level), uint64(w.start), 0)
		if w.dir != "" {
			s.removeWinDir(w)
		}
	}
}

// retention returns the configured retention for a level (0 = forever).
func (s *Store[T]) retention(level int) int64 {
	if level < len(s.cfg.Retentions) {
		return int64(s.cfg.Retentions[level])
	}
	return 0
}

// Flush drains and completes all pending ingest work in every active
// window (a durable group-commit point, like Sharded.Flush). Sealed
// windows are already final.
func (s *Store[T]) Flush() error {
	var snap map[string]uint64
	if s.Durable() {
		snap = s.snapshotAccepted()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var live []*win[T]
	for _, w := range s.wins {
		if w.state == Active {
			live = append(live, w)
		}
	}
	s.mu.Unlock()
	for _, w := range live {
		if err := w.g.Flush(); err != nil && !errors.Is(err, shard.ErrClosed) {
			return err
		}
	}
	// Every frame in the snapshot is now on disk: its portions sit either
	// in a live window just fsynced, or in a window sealed since — whose
	// final checkpoint already made them durable.
	if s.Durable() {
		s.commitDurableSessions(snap)
		s.persistMetaBestEffort()
	}
	return nil
}

// Checkpoint checkpoints every active window's group (sealed windows took
// their final checkpoint at seal time). It fails with shard.ErrNotDurable
// on an in-memory store.
func (s *Store[T]) Checkpoint() error {
	if !s.Durable() {
		return shard.ErrNotDurable
	}
	snap := s.snapshotAccepted()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	var live []*win[T]
	for _, w := range s.wins {
		if w.state == Active {
			live = append(live, w)
		}
	}
	s.mu.Unlock()
	for _, w := range live {
		if err := w.g.Checkpoint(); err != nil && !errors.Is(err, shard.ErrClosed) {
			return err
		}
	}
	s.commitDurableSessions(snap)
	s.persistMetaBestEffort()
	return nil
}

// Close stops the store: active windows' groups close (final checkpoint
// when durable) WITHOUT sealing — they resume as active after Recover —
// and every subscription ends. The store stays fully queryable; Append,
// Seal, Flush, and Checkpoint fail with ErrClosed afterwards. Close is
// idempotent.
func (s *Store[T]) Close() error {
	var snap map[string]uint64
	if s.Durable() {
		snap = s.snapshotAccepted()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var live []*win[T]
	for _, w := range s.wins {
		if w.state == Active {
			live = append(live, w)
		}
	}
	subs := make([]*Subscription[T], 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	// Drain any queued seal work first so its windows close exactly once.
	s.runSeals()
	var first error
	for _, w := range live {
		w.wmu.Lock()
		err := w.g.Close()
		w.wmu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	if s.Durable() {
		if first == nil {
			// Every live window's final checkpoint succeeded, so the
			// whole accepted frontier is on disk.
			s.commitDurableSessions(snap)
		}
		s.persistMetaBestEffort()
		shard.ReleaseDirLock(s.cfg.Shard.Durable.Dir)
	}
	for _, sub := range subs {
		sub.Close()
	}
	return first
}

// Stats snapshots the lifecycle counters.
func (s *Store[T]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Windows lists every retained window (all levels), sorted by level then
// start, with its per-window query counter — the observable the span-
// locality tests assert on. Entries is filled for sealed windows only
// (counting an active window would barrier its ingest).
func (s *Store[T]) Windows() []Info {
	s.mu.Lock()
	infos := make([]Info, 0, len(s.wins))
	sealed := make([]*win[T], 0, len(s.wins))
	for _, w := range s.wins {
		infos = append(infos, Info{
			Level: w.level, Start: w.start, End: w.end,
			State: w.state, Rolled: w.rolled, Queries: w.queries,
		})
		if w.state == Sealed {
			sealed = append(sealed, w)
		}
	}
	s.mu.Unlock()
	counts := make(map[key]int, len(sealed))
	for _, w := range sealed {
		if n, err := w.g.NVals(); err == nil {
			counts[key{w.level, w.start}] = n
		}
	}
	for i := range infos {
		infos[i].Entries = counts[key{infos[i].Level, infos[i].Start}]
	}
	sortInfos(infos)
	return infos
}

func sortInfos(infos []Info) {
	sort.Slice(infos, func(a, b int) bool {
		if infos[a].Level != infos[b].Level {
			return infos[a].Level < infos[b].Level
		}
		return infos[a].Start < infos[b].Start
	})
}
