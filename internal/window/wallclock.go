// This file is the window package's ONLY wall-clock reader. Windowing is
// event-time-driven: sealing, roll-up, retention, and lateness all derive
// from appended timestamps and the watermark, never from the machine
// clock — that is what makes replays, backfills, and tests deterministic.
// The two legitimate wall-clock uses (measuring how long a roll-up takes,
// timing a slow subscriber's patience window) are confined here, and the
// hhgbinvariants analyzer (tools/analyzers/hhgbinvariants) rejects
// time.Now/time.Since in every other file of this package.
package window

import "time"

// wallNow reads the machine clock, for operational measurement only —
// never for window placement or seal decisions.
func wallNow() time.Time { return time.Now() }

// wallSince reports wall-clock time elapsed since t.
func wallSince(t time.Time) time.Duration { return time.Since(t) }
