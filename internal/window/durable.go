package window

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hhgb/internal/gb"
	"hhgb/internal/shard"
)

// Durable layout. The store root (Config.Shard.Durable.Dir) holds one
// subdirectory per retained window plus a store manifest:
//
//	WINDOWSTORE.json                store manifest: dims, window duration,
//	                                roll-ups, seal frontier (committed
//	                                atomically: tmp + rename)
//	win-L0-00000000000001700000000/ level-0 window starting at that unix-ns
//	  MANIFEST.json, wal-*, snap-*  the window's own durable shard.Group
//	  SEALED                        marker: the window sealed (its group
//	                                closed with a final checkpoint)
//	LOCK                            single-owner root lock
//
// Each window directory is a complete durable shard.Group, so every
// shard-layer crash-window guarantee (see internal/shard/durable.go)
// applies per window. On top, the store layer adds exactly one bit per
// window — SEALED — written after the group's final checkpoint:
//
//   - crash before a window seals: the window recovers live (its group's
//     WAL replays the synced prefix) and resumes as active;
//   - crash between a seal's group-close and its SEALED marker: recovery
//     observes end <= the manifest frontier and re-seals the window
//     (idempotent — the group close already made it final);
//   - crash after the marker: the window recovers sealed from snapshots
//     alone, no replay.
//
// Seal summaries are NOT replayed across recovery: subscriptions are
// in-memory feeds, and a subscriber that must survive restarts should
// persist its own cursor over QueryRange.

const (
	storeManifestName = "WINDOWSTORE.json"
	sealedMarkerName  = "SEALED"
	// storeManifestVersion tracks shard.manifestVersion: v2 is the
	// exactly-once release (store-level session frontier, session-bearing
	// per-window WALs). v1 store directories are refused, not migrated —
	// see the shard manifestVersion comment; re-ingest them.
	storeManifestVersion = 2
	winDirPrefix         = "win-L"
)

// storeManifest is the JSON root record fixing the store's shape.
type storeManifest struct {
	Version    int      `json:"version"`
	NRows      gb.Index `json:"nrows"`
	NCols      gb.Index `json:"ncols"`
	WindowNs   int64    `json:"window_ns"`
	RollUps    []int    `json:"rollups,omitempty"`
	Retentions []int64  `json:"retentions_ns,omitempty"`
	LatenessNs int64    `json:"lateness_ns"`
	SealedTo   int64    `json:"sealed_to"`
	Watermark  int64    `json:"watermark"`
	// Sessions is the store's durable exactly-once frontier at the last
	// barrier: per client session, the highest frame seq provably on disk
	// across every window — including windows sealed and since expired,
	// whose own manifests are gone. Recovery seeds the store frontier from
	// it; losing an advance (the write is best-effort at seal time)
	// under-reports and merely forces a retransmission.
	Sessions map[string]uint64 `json:"sessions,omitempty"`
}

// winDir names a window's subdirectory: level and zero-padded start, so
// lexical order is time order within a level.
func (s *Store[T]) winDir(level int, start int64) string {
	return filepath.Join(s.cfg.Shard.Durable.Dir, fmt.Sprintf("%s%d-%020d", winDirPrefix, level, start))
}

// parseWinDir recognizes window subdirectory names.
func parseWinDir(name string) (level int, start int64, ok bool) {
	if !strings.HasPrefix(name, winDirPrefix) {
		return 0, 0, false
	}
	lvlStr, startStr, found := strings.Cut(strings.TrimPrefix(name, winDirPrefix), "-")
	if !found {
		return 0, 0, false
	}
	l, err1 := strconv.Atoi(lvlStr)
	st, err2 := strconv.ParseInt(startStr, 10, 64)
	if err1 != nil || err2 != nil || l < 0 || st < 0 {
		return 0, 0, false
	}
	return l, st, true
}

// initDurable claims a fresh root directory and writes the initial store
// manifest. A root already holding a manifest belongs to an earlier store
// and must be restored with Recover.
func (s *Store[T]) initDurable() error {
	root := s.cfg.Shard.Durable.Dir
	if err := os.MkdirAll(root, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(root, storeManifestName)); err == nil {
		return fmt.Errorf("window: %s already holds a window store; use Recover to restore it", root)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if err := shard.AcquireDirLock(root); err != nil {
		return err
	}
	if err := s.persistMeta(); err != nil {
		shard.ReleaseDirLock(root)
		return err
	}
	return nil
}

// persistMeta commits the store manifest atomically (tmp + rename). The
// frontier it records trails the sealed windows' markers — recovery treats
// any window whose end is at or before the recorded frontier as sealed,
// and re-seals stragglers idempotently.
func (s *Store[T]) persistMeta() error {
	s.mu.Lock()
	m := storeManifest{
		Version:    storeManifestVersion,
		NRows:      s.nrows,
		NCols:      s.ncols,
		WindowNs:   s.spans[0],
		RollUps:    s.cfg.RollUps,
		LatenessNs: int64(s.cfg.Lateness),
		SealedTo:   s.sealedTo,
		Watermark:  s.watermark,
	}
	for _, r := range s.cfg.Retentions {
		m.Retentions = append(m.Retentions, int64(r))
	}
	s.mu.Unlock()
	s.sessMu.Lock()
	if len(s.durable) > 0 {
		m.Sessions = make(map[string]uint64, len(s.durable))
		for sess, q := range s.durable {
			m.Sessions[sess] = q
		}
	}
	s.sessMu.Unlock()
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	root := s.cfg.Shard.Durable.Dir
	tmp := filepath.Join(root, storeManifestName+".tmp")
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(root, storeManifestName)); err != nil {
		return err
	}
	return syncDir(root)
}

// writeFileSync writes data to path and fsyncs it before returning; the
// manifest carries the durable session frontier, and a frontier advance
// should survive the same crash the barrier that produced it survived.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (s *Store[T]) persistMetaBestEffort() {
	_ = s.persistMeta() // losing a frontier advance re-seals idempotently
}

// markSealed drops the SEALED marker in a window's directory.
func (s *Store[T]) markSealed(w *win[T]) {
	_ = os.WriteFile(filepath.Join(w.dir, sealedMarkerName), []byte("sealed\n"), 0o644)
}

// removeWinDir deletes an expired window's durable state.
func (s *Store[T]) removeWinDir(w *win[T]) {
	_ = os.RemoveAll(w.dir)
}

// RecoverStats describes what Recover rebuilt.
type RecoverStats struct {
	Windows  int // window directories restored (all levels)
	Sealed   int // restored sealed (marker present, or behind the frontier)
	Active   int // restored live, ready to ingest
	Resealed int // windows re-sealed (crash between group close and marker)
	// Replayed sums the per-window shard-layer WAL replay counts.
	ReplayedBatches int
	ReplayedEntries int
	TornTails       int
}

// Recover restores a window store from a root directory a previous durable
// store wrote. The store manifest fixes the dimensions, window duration,
// and roll-up/retention/lateness shape; cfg supplies only the per-window
// shard tuning (Depth, Handoff, Durable.SyncEvery — Shards and Hier come
// from each window's own manifest). Every retained window is recovered
// through the shard layer's RecoverGroup — windows in parallel, shards
// within a window in parallel — so each window independently restores its
// durable prefix with the usual torn-tail tolerance. Sealed windows come
// back sealed (closed, queryable); unsealed windows whose end is behind
// the recorded frontier are re-sealed (without re-publishing summaries —
// subscriptions do not survive restarts); the rest resume active.
func Recover[T gb.Number](cfg Config) (*Store[T], RecoverStats, error) {
	var st RecoverStats
	root := cfg.Shard.Durable.Dir
	if root == "" {
		return nil, st, shard.ErrNotDurable
	}
	data, err := os.ReadFile(filepath.Join(root, storeManifestName))
	if err != nil {
		return nil, st, err
	}
	var man storeManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, st, fmt.Errorf("window: parsing %s: %w", storeManifestName, err)
	}
	if man.Version != storeManifestVersion {
		return nil, st, fmt.Errorf("%w: store manifest version %d, want %d (v1 directories predate the session-bearing WAL layout and must be re-ingested)", gb.ErrInvalidValue, man.Version, storeManifestVersion)
	}
	if man.WindowNs <= 0 {
		return nil, st, fmt.Errorf("%w: store manifest window %dns", gb.ErrInvalidValue, man.WindowNs)
	}
	cfg.Window = time.Duration(man.WindowNs)
	cfg.RollUps = man.RollUps
	cfg.Lateness = time.Duration(man.LatenessNs)
	cfg.Retentions = cfg.Retentions[:0]
	for _, r := range man.Retentions {
		cfg.Retentions = append(cfg.Retentions, time.Duration(r))
	}
	if err := shard.AcquireDirLock(root); err != nil {
		return nil, st, err
	}
	ok := false
	defer func() {
		if !ok {
			shard.ReleaseDirLock(root)
		}
	}()

	s, err := buildRecovered[T](man, cfg)
	if err != nil {
		return nil, st, err
	}

	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, st, err
	}
	type pendingWin struct {
		level  int
		start  int64
		dir    string
		marked bool
	}
	var pend []pendingWin
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		level, start, okDir := parseWinDir(e.Name())
		if !okDir || level >= len(s.spans) {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
			continue // a window that never committed its group; nothing durable
		}
		_, merr := os.Stat(filepath.Join(dir, sealedMarkerName))
		if level > 0 && merr != nil {
			// A roll-up whose SEALED marker never landed is a crash
			// mid-materialization: its group manifest commits at creation,
			// so the directory may hold any prefix of the children's sum.
			// Discard it — the children are not marked rolled below, so
			// the next seal pass re-materializes the parent from scratch.
			_ = os.RemoveAll(dir)
			continue
		}
		pend = append(pend, pendingWin{level: level, start: start, dir: dir, marked: merr == nil})
	}
	sort.Slice(pend, func(a, b int) bool {
		if pend[a].level != pend[b].level {
			return pend[a].level < pend[b].level
		}
		return pend[a].start < pend[b].start
	})

	// Recover the window groups in parallel — each is an independent
	// durable directory, and the shard layer already parallelizes within
	// one. First error wins.
	wins := make([]*win[T], len(pend))
	perWin := make([]shard.RecoverStats, len(pend))
	errs := make([]error, len(pend))
	var wg sync.WaitGroup
	for i, p := range pend {
		wg.Add(1)
		go func(i int, p pendingWin) {
			defer wg.Done()
			gcfg := s.groupConfig(p.dir)
			g, rst, err := shard.RecoverGroup[T](gcfg)
			if err != nil {
				errs[i] = fmt.Errorf("window %s: %w", filepath.Base(p.dir), err)
				return
			}
			if g.NRows() != s.nrows || g.NCols() != s.ncols {
				g.Close()
				errs[i] = fmt.Errorf("%w: window %s dims %dx%d != store %dx%d",
					gb.ErrInvalidValue, filepath.Base(p.dir), g.NRows(), g.NCols(), s.nrows, s.ncols)
				return
			}
			perWin[i] = rst
			wins[i] = &win[T]{
				level: p.level,
				start: p.start,
				end:   p.start + s.spans[p.level],
				g:     g,
				dir:   p.dir,
			}
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, w := range wins {
				if w != nil {
					w.g.Close()
				}
			}
			return nil, st, fmt.Errorf("recovering %d windows: %w", len(pend), err)
		}
		st.ReplayedBatches += perWin[i].ReplayedBatches
		st.ReplayedEntries += perWin[i].ReplayedEntries
		st.TornTails += perWin[i].TornTails
	}

	for i, w := range wins {
		st.Windows++
		sealed := pend[i].marked
		if !sealed && w.end <= s.sealedTo {
			// A level-0 window behind the recorded frontier without its
			// marker: crash between the seal's group close and the marker
			// write. Its data arrived by ingest (complete up to the
			// durable prefix, unlike a partial roll-up copy, which was
			// discarded above), so re-seal it — idempotent, no summary
			// re-publication.
			sealed = true
			st.Resealed++
		}
		if sealed {
			w.g.Close() // no-op checkpoint on a cleanly-closed group
			s.markSealed(w)
			// Re-stash the sealed window's session table (the barrier runs
			// inline on a closed group) so retransmissions behind the
			// frontier are still recognized as duplicates after a restart.
			w.sessHigh = w.g.SessionHighs()
			w.state = Sealed
			s.stats.Sealed++
			s.stats.Seals++
			st.Sealed++
		} else {
			w.state = Active
			s.stats.Active++
			st.Active++
			// An active window implies the stream reached at least its
			// start; keep the recovered watermark monotone with that.
			if w.start > s.watermark {
				s.watermark = w.start
			}
		}
		if w.level > 0 {
			// A roll-up window's children are identifiable by span
			// containment; mark any surviving ones rolled so a restarted
			// roll-up pass neither re-materializes nor double-covers.
			for b := w.start; b < w.end; b += s.spans[w.level-1] {
				if c := s.wins[key{w.level - 1, b}]; c != nil {
					c.rolled = true
				}
			}
		}
		s.wins[key{w.level, w.start}] = w
		// Fold the window's session table into the store's minting floor:
		// any seq some window's shard remembers would be silently
		// dup-dropped if a resuming client reused it, so MintSeq must see
		// the max over every recovered window — the manifest frontier
		// (already seeded into accepted) trails it by whatever was applied
		// since the last store barrier.
		highs := w.sessHigh
		if highs == nil {
			highs = w.g.SessionHighs()
		}
		for sess, q := range highs {
			if s.minted == nil {
				s.minted = make(map[string]uint64)
			}
			if q > s.minted[sess] {
				s.minted[sess] = q
			}
		}
	}
	ok = true
	registerStoreFuncs(s)
	return s, st, nil
}

// buildRecovered constructs the empty store shell around a manifest.
func buildRecovered[T gb.Number](man storeManifest, cfg Config) (*Store[T], error) {
	spans := []int64{man.WindowNs}
	for i, f := range man.RollUps {
		if f < 2 {
			return nil, fmt.Errorf("%w: manifest roll-up factor %d at level %d", gb.ErrInvalidValue, f, i)
		}
		spans = append(spans, spans[len(spans)-1]*int64(f))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	s := &Store[T]{
		nrows:     man.NRows,
		ncols:     man.NCols,
		cfg:       cfg,
		spans:     spans,
		wins:      make(map[key]*win[T]),
		subs:      make(map[uint64]*Subscription[T]),
		watermark: man.Watermark,
		sealedTo:  man.SealedTo,
	}
	// Seed both session frontiers from the manifest: it is the only
	// carrier of seqs whose windows sealed and expired. The recovered
	// windows' own tables can only run ahead of it, and their dedup
	// (group frontiers, sealed sessHigh stashes) absorbs the difference.
	if len(man.Sessions) > 0 {
		s.accepted = make(map[string]uint64, len(man.Sessions))
		s.durable = make(map[string]uint64, len(man.Sessions))
		for sess, q := range man.Sessions {
			s.accepted[sess] = q
			s.durable[sess] = q
		}
	}
	return s, nil
}
