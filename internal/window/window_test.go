package window

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hhgb/internal/gb"
	"hhgb/internal/shard"
)

const dim = gb.Index(1) << 16

func testCfg(rollups ...int) Config {
	return Config{
		Window:  time.Second,
		RollUps: rollups,
		// A lateness beyond every test stream keeps the watermark from
		// auto-sealing: the tests drive sealing explicitly through Seal,
		// so window states are deterministic.
		Lateness: 1000 * time.Second,
		Shard:    shard.Config{Shards: 2, Handoff: 64},
	}
}

// entry is one timestamped reference observation.
type entry struct {
	ts   int64
	r, c gb.Index
	v    uint64
}

// genEntries produces a deterministic stream across nWindows seconds with
// a skewed row distribution (top-k needs collisions to be interesting).
func genEntries(seed int64, n, nWindows int) []entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]entry, n)
	for i := range out {
		r := gb.Index(rng.Intn(64))
		if rng.Intn(4) == 0 {
			r = gb.Index(rng.Intn(int(dim)))
		}
		out[i] = entry{
			ts: int64(rng.Intn(nWindows))*int64(time.Second) + int64(rng.Intn(int(time.Second))),
			r:  r,
			c:  gb.Index(rng.Intn(int(dim))),
			v:  uint64(rng.Intn(9) + 1),
		}
	}
	return out
}

// appendAll streams entries into the store in timestamp order (so nothing
// is late), in small batches.
func appendAll(t *testing.T, s *Store[uint64], entries []entry) {
	t.Helper()
	sorted := append([]entry(nil), entries...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].ts < sorted[j-1].ts; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j].ts == sorted[i].ts && j-i < 37 {
			j++
		}
		var rows, cols []gb.Index
		var vals []uint64
		for _, e := range sorted[i:j] {
			rows, cols, vals = append(rows, e.r), append(cols, e.c), append(vals, e.v)
		}
		if err := s.Append(sorted[i].ts, rows, cols, vals); err != nil {
			t.Fatalf("append ts=%d: %v", sorted[i].ts, err)
		}
		i = j
	}
}

// reference builds the flat matrix of every entry with ts in [t0, t1).
func reference(t *testing.T, entries []entry, t0, t1 int64) *gb.Matrix[uint64] {
	t.Helper()
	m, err := gb.NewMatrix[uint64](dim, dim)
	if err != nil {
		t.Fatal(err)
	}
	var rows, cols []gb.Index
	var vals []uint64
	for _, e := range entries {
		if e.ts >= t0 && e.ts < t1 {
			rows, cols, vals = append(rows, e.r), append(cols, e.c), append(vals, e.v)
		}
	}
	if err := m.AppendTuples(rows, cols, vals); err != nil {
		t.Fatal(err)
	}
	return m
}

func matricesEqual(a, b *gb.Matrix[uint64]) bool {
	if a.NVals() != b.NVals() {
		return false
	}
	equal := true
	a.Iterate(func(i, j gb.Index, v uint64) bool {
		w, err := b.ExtractElement(i, j)
		if err != nil || w != v {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// TestRangeMatchesFlatReference is the acceptance property: every range
// query over a k-window span is bit-identical to materializing those
// windows into one flat matrix and querying it — including when roll-ups
// answer part of the span.
func TestRangeMatchesFlatReference(t *testing.T) {
	const nWindows = 16
	entries := genEntries(7, 4000, nWindows)
	s, err := New[uint64](dim, dim, testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendAll(t, s, entries)
	// Seal the first 8 windows (completing two level-1 roll-ups of 4s
	// each); windows 8..15 stay active — ranges over them still answer.
	if err := s.Seal(8 * int64(time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RollUps; got != 2 {
		t.Fatalf("RollUps = %d, want 2", got)
	}

	rng := rand.New(rand.NewSource(99))
	spans := [][2]int64{{0, 4}, {0, 8}, {2, 7}, {5, 13}, {8, 16}, {0, 16}, {3, 4}}
	for i := 0; i < 10; i++ {
		a := int64(rng.Intn(nWindows))
		b := a + 1 + int64(rng.Intn(nWindows-int(a)))
		spans = append(spans, [2]int64{a, b})
	}
	for _, sp := range spans {
		t0, t1 := sp[0]*int64(time.Second), sp[1]*int64(time.Second)
		r, err := s.QueryRange(t0, t1)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Uncovered) != 0 {
			t.Fatalf("range [%d,%d): unexpected uncovered %v", sp[0], sp[1], r.Uncovered)
		}
		ref := reference(t, entries, t0, t1)

		got, err := r.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(got, ref) {
			t.Fatalf("range [%d,%d)s: materialized sum differs from flat reference", sp[0], sp[1])
		}
		nv, err := r.NVals()
		if err != nil || nv != ref.NVals() {
			t.Fatalf("range [%d,%d)s: NVals = %d (%v), want %d", sp[0], sp[1], nv, err, ref.NVals())
		}
		total, err := r.Total()
		if err != nil {
			t.Fatal(err)
		}
		wantTotal, err := gb.ReduceScalar(ref, gb.Plus[uint64]())
		if err != nil {
			t.Fatal(err)
		}
		if total != wantTotal {
			t.Fatalf("range [%d,%d)s: Total = %d, want %d", sp[0], sp[1], total, wantTotal)
		}
		top, err := r.TopRows(5)
		if err != nil {
			t.Fatal(err)
		}
		refSums, err := gb.ReduceRows(ref, gb.Plus[uint64]())
		if err != nil {
			t.Fatal(err)
		}
		gotSums, err := r.RowSums()
		if err != nil {
			t.Fatal(err)
		}
		refSums.Wait()
		gotSums.Wait()
		if gotSums.NVals() != refSums.NVals() {
			t.Fatalf("range [%d,%d)s: RowSums nvals %d want %d", sp[0], sp[1], gotSums.NVals(), refSums.NVals())
		}
		mismatch := false
		refSums.Iterate(func(i gb.Index, x uint64) bool {
			g, err := gotSums.ExtractElement(i)
			if err != nil || g != x {
				mismatch = true
				return false
			}
			return true
		})
		if mismatch {
			t.Fatalf("range [%d,%d)s: RowSums differ", sp[0], sp[1])
		}
		for k, e := range top {
			want, err := refSums.ExtractElement(e.Index)
			if err != nil || want != e.Value {
				t.Fatalf("range [%d,%d)s: top[%d] = (%d,%d), reference row sum %d (%v)",
					sp[0], sp[1], k, e.Index, e.Value, want, err)
			}
		}
		// Spot lookups, present and absent.
		for i := 0; i < 5; i++ {
			e := entries[rng.Intn(len(entries))]
			got, _, err := r.Lookup(e.r, e.c)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.ExtractElement(e.r, e.c)
			if errors.Is(err, gb.ErrNoValue) {
				want = 0
			} else if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("range [%d,%d)s: Lookup(%d,%d) = %d, want %d", sp[0], sp[1], e.r, e.c, got, want)
			}
		}
	}
}

// TestRangeTouchesOnlyCoveredWindows asserts span locality via the
// per-window query counters: a range query bumps exactly the cover and
// never a window outside the span — and a rolled-up span is served by ONE
// coarse window, not its children.
func TestRangeTouchesOnlyCoveredWindows(t *testing.T) {
	const nWindows = 8
	entries := genEntries(3, 1200, nWindows)
	s, err := New[uint64](dim, dim, testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendAll(t, s, entries)
	if err := s.Seal(nWindows * int64(time.Second)); err != nil {
		t.Fatal(err)
	}

	sec := int64(time.Second)
	r, err := s.QueryRange(5*sec, 7*sec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Windows() != 2 {
		t.Fatalf("2-window span covered by %d windows: %v", r.Windows(), r.Spans())
	}
	for _, info := range s.Windows() {
		touched := info.Level == 0 && info.Start >= 5*sec && info.End <= 7*sec
		if touched && info.Queries != 1 {
			t.Fatalf("window L%d[%d,%d) inside span: queries = %d, want 1", info.Level, info.Start, info.End, info.Queries)
		}
		if !touched && info.Queries != 0 {
			t.Fatalf("window L%d[%d,%d) outside span: queries = %d, want 0", info.Level, info.Start, info.End, info.Queries)
		}
	}

	// A rolled-up 4s epoch answers from one level-1 window.
	r2, err := s.QueryRange(0, 4*sec)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Windows() != 1 {
		t.Fatalf("rolled 4s span covered by %d windows: %v", r2.Windows(), r2.Spans())
	}
	if sp := r2.Spans()[0]; sp.End-sp.Start != 4*sec {
		t.Fatalf("rolled span is %v, want the 4s parent", sp)
	}
	// And a misaligned span must descend to the children.
	r3, err := s.QueryRange(1*sec, 4*sec)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Windows() != 3 {
		t.Fatalf("misaligned 3-window span covered by %d windows: %v", r3.Windows(), r3.Spans())
	}
}

// TestRetentionExpiresAndRollUpsKeepServing: fine windows expire by
// retention while the roll-up keeps answering aligned long-range queries;
// sub-window resolution inside the expired region reports the hole.
func TestRetentionExpiresAndRollUpsKeepServing(t *testing.T) {
	const nWindows = 8
	entries := genEntries(11, 1500, nWindows)
	cfg := testCfg(4)
	cfg.Retentions = []time.Duration{6 * time.Second} // level 0 expires fast; level 1 forever
	s, err := New[uint64](dim, dim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendAll(t, s, entries)
	if err := s.Seal(nWindows * int64(time.Second)); err != nil {
		t.Fatal(err)
	}
	if exp := s.Stats().Expired; exp == 0 {
		t.Fatal("no level-0 window expired under a 6s retention")
	}
	sec := int64(time.Second)
	// The aligned first epoch answers from the roll-up.
	r, err := s.QueryRange(0, 4*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Uncovered) != 0 || r.Windows() != 1 {
		t.Fatalf("aligned rolled span: windows=%d uncovered=%v", r.Windows(), r.Uncovered)
	}
	ref := reference(t, entries, 0, 4*sec)
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, ref) {
		t.Fatal("rolled-up range differs from flat reference after child expiry")
	}
	// A misaligned span into the expired region reports its hole instead
	// of silently under-counting.
	r2, err := s.QueryRange(1*sec, 4*sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Uncovered) == 0 {
		t.Fatalf("misaligned span over expired children: want uncovered hole, got full cover %v", r2.Spans())
	}
}

// TestSubscribeOneSummaryPerSealInOrder asserts the subscription
// invariant at the store layer: exactly one summary per sealed level-0
// window, in seal (time) order, with counts matching the window contents.
func TestSubscribeOneSummaryPerSealInOrder(t *testing.T) {
	const nWindows = 10
	entries := genEntries(21, 2000, nWindows)
	s, err := New[uint64](dim, dim, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(0)
	appendAll(t, s, entries)
	if err := s.Seal(nWindows * int64(time.Second)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	var sums []Summary[uint64]
	for {
		sum, ok := sub.Next()
		if !ok {
			break
		}
		sums = append(sums, sum)
	}
	if len(sums) != nWindows {
		t.Fatalf("received %d summaries, want %d", len(sums), nWindows)
	}
	for i, sum := range sums {
		if sum.Err != nil {
			t.Fatalf("summary %d: %v", i, sum.Err)
		}
		if want := int64(i) * int64(time.Second); sum.Start != want {
			t.Fatalf("summary %d out of order: start %d, want %d", i, sum.Start, want)
		}
		ref := reference(t, entries, sum.Start, sum.End)
		wantTotal, err := gb.ReduceScalar(ref, gb.Plus[uint64]())
		if err != nil {
			t.Fatal(err)
		}
		if sum.Entries != ref.NVals() || sum.Total != wantTotal {
			t.Fatalf("summary %d: entries=%d total=%d, want %d/%d", i, sum.Entries, sum.Total, ref.NVals(), wantTotal)
		}
	}
}

// TestLateAppendsAreRefusedAndCounted: appends behind the frontier fail
// with ErrLate and are counted, never silently dropped or applied.
func TestLateAppendsAreRefusedAndCounted(t *testing.T) {
	s, err := New[uint64](dim, dim, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sec := int64(time.Second)
	if err := s.Append(5*sec, []gb.Index{1}, []gb.Index{2}, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(5 * sec); err != nil {
		t.Fatal(err)
	}
	err = s.Append(3*sec, []gb.Index{1}, []gb.Index{2}, []uint64{7})
	if !errors.Is(err, ErrLate) {
		t.Fatalf("late append: err = %v, want ErrLate", err)
	}
	if got := s.Stats().LateDrops; got != 1 {
		t.Fatalf("LateDrops = %d, want 1", got)
	}
	r, err := s.QueryRange(0, 6*sec)
	if err != nil {
		t.Fatal(err)
	}
	total, err := r.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("total after refused late append = %d, want 1", total)
	}
}

// TestSealIdempotentAndClockDriven: Seal on a quiet stream seals by clock;
// re-sealing is a no-op; sealed windows report entries in Windows().
func TestSealIdempotentAndClockDriven(t *testing.T) {
	s, err := New[uint64](dim, dim, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sec := int64(time.Second)
	for w := 0; w < 3; w++ {
		ts := int64(w)*sec + sec/2
		if err := s.Append(ts, []gb.Index{gb.Index(w)}, []gb.Index{9}, []uint64{uint64(w + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(3 * sec); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(3 * sec); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Seals != 3 || st.Sealed != 3 || st.Active != 0 {
		t.Fatalf("stats after sealing: %+v", st)
	}
	infos := s.Windows()
	if len(infos) != 3 {
		t.Fatalf("%d windows, want 3", len(infos))
	}
	for i, info := range infos {
		if info.State != Sealed || info.Entries != 1 {
			t.Fatalf("window %d: %+v, want sealed with 1 entry", i, info)
		}
	}
}
