package hier

import (
	"fmt"

	"hhgb/internal/gb"
)

// AutoTuner adjusts the base cut of a cascade online, implementing the
// tuning loop the paper leaves to the operator ("the parameters are easily
// tunable to achieve optimal performance"): it replays short probe windows
// of the live stream through candidate configurations and keeps the
// fastest. The probe uses wall-clock-free work counters (entries moved per
// update), so the decision is deterministic and test-friendly.
type AutoTuner struct {
	// Candidates are the base cuts to consider.
	Candidates []int
	// Ratio and Levels fix the rest of the geometry.
	Ratio  int
	Levels int
	// WindowUpdates is how many updates each probe window replays.
	WindowUpdates int
}

// DefaultAutoTuner probes base cuts 2^10 … 2^20 with the default geometry.
func DefaultAutoTuner() AutoTuner {
	var cands []int
	for c := 1 << 10; c <= 1<<20; c <<= 2 {
		cands = append(cands, c)
	}
	return AutoTuner{
		Candidates:    cands,
		Ratio:         DefaultCutRatio,
		Levels:        DefaultLevels,
		WindowUpdates: 200_000,
	}
}

// Result reports one candidate's probe outcome.
type Result struct {
	BaseCut int
	// WorkPerUpdate is the number of entry move/merge operations per
	// ingested update — the deterministic cost proxy (lower is better).
	WorkPerUpdate float64
}

// Tune replays the provided stream window (rows/cols parallel slices,
// batched every batch entries) through every candidate and returns the
// results sorted as given plus the index of the best candidate.
func (at AutoTuner) Tune(rows, cols []gb.Index, batch int, dim gb.Index) ([]Result, int, error) {
	if len(rows) != len(cols) {
		return nil, 0, fmt.Errorf("%w: probe slices %d/%d differ", gb.ErrInvalidValue, len(rows), len(cols))
	}
	if len(rows) == 0 {
		return nil, 0, fmt.Errorf("%w: empty probe window", gb.ErrInvalidValue)
	}
	if batch < 1 {
		return nil, 0, fmt.Errorf("%w: batch %d < 1", gb.ErrInvalidValue, batch)
	}
	if len(at.Candidates) == 0 {
		return nil, 0, fmt.Errorf("%w: no candidates", gb.ErrInvalidValue)
	}
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}
	results := make([]Result, 0, len(at.Candidates))
	best := 0
	for ci, base := range at.Candidates {
		h, err := New[uint64](dim, dim, Config{Cuts: GeometricCuts(at.Levels, base, at.Ratio)})
		if err != nil {
			return nil, 0, err
		}
		for done := 0; done < len(rows); done += batch {
			end := done + batch
			if end > len(rows) {
				end = len(rows)
			}
			if err := h.Update(rows[done:end], cols[done:end], vals[:end-done]); err != nil {
				return nil, 0, err
			}
		}
		s := h.Stats()
		var moved int64
		for _, m := range s.CascadedEntries {
			moved += m
		}
		// Each ingested entry is sorted once (1 unit) plus every cascade
		// move costs a merge touch.
		work := float64(s.Updates+moved) / float64(s.Updates)
		results = append(results, Result{BaseCut: base, WorkPerUpdate: work})
		if work < results[best].WorkPerUpdate {
			best = ci
		}
	}
	return results, best, nil
}
