package hier

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hhgb/internal/gb"
)

// streamInto pushes n random updates in batches of batch into both a
// hierarchical matrix and a reference flat matrix.
func streamInto(t *testing.T, r *rand.Rand, h *Matrix[int64], flat *gb.Matrix[int64], n, batch int, dim gb.Index) {
	t.Helper()
	for done := 0; done < n; {
		sz := batch
		if n-done < sz {
			sz = n - done
		}
		rows := make([]gb.Index, sz)
		cols := make([]gb.Index, sz)
		vals := make([]int64, sz)
		for k := 0; k < sz; k++ {
			rows[k] = gb.Index(r.Uint64() % uint64(dim))
			cols[k] = gb.Index(r.Uint64() % uint64(dim))
			vals[k] = int64(r.Intn(7) + 1)
		}
		if err := h.Update(rows, cols, vals); err != nil {
			t.Fatal(err)
		}
		if err := flat.AppendTuples(rows, cols, vals); err != nil {
			t.Fatal(err)
		}
		done += sz
	}
}

func TestGeometricCuts(t *testing.T) {
	cuts := GeometricCuts(4, 100, 10)
	want := []int{100, 1000, 10000}
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
	if c := GeometricCuts(1, 100, 10); len(c) != 0 {
		t.Fatalf("single level cuts = %v", c)
	}
	if c := GeometricCuts(0, 100, 10); c != nil {
		t.Fatalf("zero levels cuts = %v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Cuts: []int{10, 0}}).Validate(); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero cut: %v", err)
	}
	if err := (Config{Cuts: []int{10, 100}}).Validate(); err != nil {
		t.Fatalf("valid cuts: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	if got := DefaultConfig().Levels(); got != DefaultLevels {
		t.Fatalf("default levels = %d", got)
	}
}

func TestSingleLevelDegeneratesToFlat(t *testing.T) {
	h := MustNew[int64](64, 64, Config{})
	if h.NumLevels() != 1 {
		t.Fatalf("levels = %d", h.NumLevels())
	}
	_ = h.Update([]gb.Index{1}, []gb.Index{2}, []int64{3})
	q, err := h.Query()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := q.ExtractElement(1, 2)
	if v != 3 {
		t.Fatalf("value = %d", v)
	}
}

func TestLinearityEquivalenceProperty(t *testing.T) {
	// The paper's central mathematical claim: for ANY cuts, the hierarchy
	// is exactly equivalent to flat accumulation.
	r := rand.New(rand.NewSource(100))
	f := func() bool {
		levels := 1 + r.Intn(5)
		cuts := make([]int, levels-1)
		for i := range cuts {
			cuts[i] = 1 + r.Intn(200)
		}
		h := MustNew[int64](256, 256, Config{Cuts: cuts})
		flat := gb.MustNewMatrix[int64](256, 256)
		n := 200 + r.Intn(2000)
		batch := 1 + r.Intn(97)
		for done := 0; done < n; done += batch {
			sz := batch
			if n-done < sz {
				sz = n - done
			}
			rows := make([]gb.Index, sz)
			cols := make([]gb.Index, sz)
			vals := make([]int64, sz)
			for k := 0; k < sz; k++ {
				rows[k] = gb.Index(r.Uint64() % 256)
				cols[k] = gb.Index(r.Uint64() % 256)
				vals[k] = int64(r.Intn(9) - 4)
			}
			if err := h.Update(rows, cols, vals); err != nil {
				return false
			}
			_ = flat.AppendTuples(rows, cols, vals)
		}
		q, err := h.Query()
		if err != nil {
			return false
		}
		return gb.Equal(q, flat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCutBoundInvariant(t *testing.T) {
	// After every Update, nnz(Ai) <= ci for all non-top levels.
	r := rand.New(rand.NewSource(101))
	cuts := []int{50, 500}
	h := MustNew[int64](1<<30, 1<<30, Config{Cuts: cuts})
	for step := 0; step < 300; step++ {
		sz := 1 + r.Intn(40)
		rows := make([]gb.Index, sz)
		cols := make([]gb.Index, sz)
		vals := make([]int64, sz)
		for k := 0; k < sz; k++ {
			rows[k] = gb.Index(r.Uint64() % (1 << 30))
			cols[k] = gb.Index(r.Uint64() % (1 << 30))
			vals[k] = 1
		}
		if err := h.Update(rows, cols, vals); err != nil {
			t.Fatal(err)
		}
		lv := h.LevelNVals()
		for i, cut := range cuts {
			if lv[i] > cut {
				t.Fatalf("step %d: level %d has %d > cut %d", step, i, lv[i], cut)
			}
		}
	}
}

func TestQueryDoesNotDisturbState(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	h := MustNew[int64](128, 128, Config{Cuts: []int{20}})
	flat := gb.MustNewMatrix[int64](128, 128)
	streamInto(t, r, h, flat, 500, 13, 128)
	before := h.LevelNVals()
	q1, err := h.Query()
	if err != nil {
		t.Fatal(err)
	}
	after := h.LevelNVals()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Query changed level %d: %d -> %d", i, before[i], after[i])
		}
	}
	// Query is repeatable.
	q2, err := h.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(q1, q2) {
		t.Fatal("repeated Query differs")
	}
	// And stream can continue after a query.
	streamInto(t, r, h, flat, 200, 7, 128)
	q3, _ := h.Query()
	if !gb.Equal(q3, flat) {
		t.Fatal("post-query stream diverged from flat reference")
	}
}

func TestFlushCollapsesToTop(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	h := MustNew[int64](128, 128, Config{Cuts: []int{10, 100}})
	flat := gb.MustNewMatrix[int64](128, 128)
	streamInto(t, r, h, flat, 700, 9, 128)
	top, err := h.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(top, flat) {
		t.Fatal("Flush total != flat reference")
	}
	lv := h.LevelNVals()
	for i := 0; i < len(lv)-1; i++ {
		if lv[i] != 0 {
			t.Fatalf("level %d not empty after Flush: %d", i, lv[i])
		}
	}
	// Stream continues correctly after Flush.
	streamInto(t, r, h, flat, 300, 11, 128)
	q, _ := h.Query()
	if !gb.Equal(q, flat) {
		t.Fatal("post-flush stream diverged")
	}
}

func TestUpdateMatrix(t *testing.T) {
	h := MustNew[int64](64, 64, Config{Cuts: []int{5}})
	a := gb.MustNewMatrix[int64](64, 64)
	for i := gb.Index(0); i < 10; i++ {
		_ = a.SetElement(i, i, 2)
	}
	if err := h.UpdateMatrix(a); err != nil {
		t.Fatal(err)
	}
	n, err := h.NVals()
	if err != nil || n != 10 {
		t.Fatalf("NVals = %d, %v", n, err)
	}
	// Cut of 5 exceeded: level 0 must have cascaded.
	if h.Stats().Cascades[0] != 1 {
		t.Fatalf("cascades = %v", h.Stats().Cascades)
	}
	bad := gb.MustNewMatrix[int64](32, 32)
	if err := h.UpdateMatrix(bad); !errors.Is(err, gb.ErrDimensionMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := MustNew[int64](1<<20, 1<<20, Config{Cuts: []int{100}})
	r := rand.New(rand.NewSource(104))
	total := 0
	batches := 0
	for step := 0; step < 50; step++ {
		sz := 25
		rows := make([]gb.Index, sz)
		cols := make([]gb.Index, sz)
		vals := make([]int64, sz)
		for k := 0; k < sz; k++ {
			rows[k] = gb.Index(r.Uint64() % (1 << 20))
			cols[k] = gb.Index(r.Uint64() % (1 << 20))
			vals[k] = 1
		}
		_ = h.Update(rows, cols, vals)
		total += sz
		batches++
	}
	s := h.Stats()
	if s.Updates != int64(total) || s.Batches != int64(batches) {
		t.Fatalf("stats = %+v", s)
	}
	if s.Cascades[0] == 0 {
		t.Fatal("expected cascades with cut=100 and 1250 sparse updates")
	}
	// Cascaded traffic into slow memory must be far less than 1 entry per
	// update ingested — the memory-pressure claim in its simplest form.
	if s.CascadedEntries[0] > s.Updates {
		t.Fatalf("cascade moved more entries (%d) than were ingested (%d)", s.CascadedEntries[0], s.Updates)
	}
	h.ResetStats()
	if h.Stats().Updates != 0 || h.Stats().Cascades[0] != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestClear(t *testing.T) {
	h := MustNew[int64](64, 64, DefaultConfig())
	_ = h.Update([]gb.Index{1}, []gb.Index{1}, []int64{1})
	h.Clear()
	n, err := h.NVals()
	if err != nil || n != 0 {
		t.Fatalf("after clear: %d, %v", n, err)
	}
}

func TestUpdateOutOfBoundsRejected(t *testing.T) {
	h := MustNew[int64](16, 16, DefaultConfig())
	err := h.Update([]gb.Index{16}, []gb.Index{0}, []int64{1})
	if !errors.Is(err, gb.ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New[int64](16, 16, Config{Cuts: []int{-1}}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
	if _, err := New[int64](0, 16, Config{}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero dim: %v", err)
	}
}

func TestDuplicateHeavyStreamCollapses(t *testing.T) {
	// A stream hammering few distinct keys must keep all levels tiny:
	// duplicates combine in fast memory and cascades stay rare.
	h := MustNew[int64](1<<40, 1<<40, Config{Cuts: []int{64, 1024}})
	for step := 0; step < 1000; step++ {
		rows := []gb.Index{gb.Index(uint64(step % 8))}
		cols := []gb.Index{gb.Index(uint64(step % 4))}
		if err := h.Update(rows, cols, []int64{1}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := h.NVals()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("distinct entries = %d, want 8", n)
	}
	if h.Stats().Cascades[0] != 0 {
		t.Fatalf("duplicate-heavy stream should never cascade, got %v", h.Stats().Cascades)
	}
	q, _ := h.Query()
	total, _ := gb.ReduceScalar(q, gb.Plus[int64]())
	if total != 1000 {
		t.Fatalf("value mass = %d, want 1000", total)
	}
}

func TestLevelAccessor(t *testing.T) {
	h := MustNew[int64](16, 16, Config{Cuts: []int{2}})
	_ = h.Update([]gb.Index{1}, []gb.Index{1}, []int64{1})
	if h.Level(0) == nil || h.Level(1) == nil {
		t.Fatal("nil level")
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDeepCascadePropagates(t *testing.T) {
	// Tiny cuts force promotions through every level in one Update.
	h := MustNew[int64](1<<20, 1<<20, Config{Cuts: []int{1, 2, 3}})
	rows := make([]gb.Index, 64)
	cols := make([]gb.Index, 64)
	vals := make([]int64, 64)
	for k := range rows {
		rows[k] = gb.Index(uint64(k))
		cols[k] = gb.Index(uint64(k))
		vals[k] = 1
	}
	if err := h.Update(rows, cols, vals); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	for i := 0; i < 3; i++ {
		if s.Cascades[i] == 0 {
			t.Fatalf("level %d never cascaded: %v", i, s.Cascades)
		}
	}
	lv := h.LevelNVals()
	if lv[3] != 64 {
		t.Fatalf("top level holds %d, want 64 (levels: %v)", lv[3], lv)
	}
	n, _ := h.NVals()
	if n != 64 {
		t.Fatalf("NVals = %d", n)
	}
}

// TestExtractElementSumsLevels checks the point lookup equals the
// materialized query for cells living at one level, split across levels,
// and absent — plus the bounds error.
func TestExtractElementSumsLevels(t *testing.T) {
	h := MustNew[uint64](1<<20, 1<<20, Config{Cuts: []int{2, 8}})
	// Repeatedly update one cell so copies of it cascade upward and the
	// cell exists at several levels at once.
	for i := 0; i < 12; i++ {
		if err := h.Update([]gb.Index{7, uint64(100 + i)}, []gb.Index{9, 3}, []uint64{5, 1}); err != nil {
			t.Fatal(err)
		}
	}
	q, err := h.Query()
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.ExtractElement(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := h.ExtractElement(7, 9)
	if err != nil || !ok {
		t.Fatalf("ExtractElement(7,9) ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("ExtractElement(7,9) = %d, Query says %d", got, want)
	}
	if _, ok, err := h.ExtractElement(8, 8); err != nil || ok {
		t.Fatalf("absent cell: ok=%v err=%v; want false, nil", ok, err)
	}
	if _, _, err := h.ExtractElement(1<<20, 0); err == nil {
		t.Fatal("out of bounds should fail")
	}
}
