package hier

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

func TestEncodeDecodeRoundTripMidStream(t *testing.T) {
	// Snapshot a matrix mid-cascade; the restored copy must produce the
	// same query AND the same future behaviour (cascade state is exact).
	r := rand.New(rand.NewSource(300))
	h := MustNew[uint64](1<<30, 1<<30, Config{Cuts: []int{100, 1000}})
	flatten := func(n int, target *Matrix[uint64]) {
		for k := 0; k < n; k++ {
			rows := []gb.Index{gb.Index(r.Uint64() % (1 << 30))}
			cols := []gb.Index{gb.Index(r.Uint64() % (1 << 30))}
			if err := target.Update(rows, cols, []uint64{1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	flatten(777, h)

	var buf bytes.Buffer
	if err := Encode(&buf, h, gb.Uint64Codec[uint64]()); err != nil {
		t.Fatal(err)
	}
	restored, err := Decode[uint64](&buf, gb.Uint64Codec[uint64]())
	if err != nil {
		t.Fatal(err)
	}

	// Same configuration.
	if restored.NumLevels() != h.NumLevels() {
		t.Fatalf("levels %d != %d", restored.NumLevels(), h.NumLevels())
	}
	for i, c := range h.Cuts() {
		if restored.Cuts()[i] != c {
			t.Fatalf("cuts %v != %v", restored.Cuts(), h.Cuts())
		}
	}
	// Same per-level occupancy (exact cascade state).
	lv1, lv2 := h.LevelNVals(), restored.LevelNVals()
	for i := range lv1 {
		if lv1[i] != lv2[i] {
			t.Fatalf("level occupancy %v != %v", lv1, lv2)
		}
	}
	// Same query.
	q1, _ := h.Query()
	q2, _ := restored.Query()
	if !gb.Equal(q1, q2) {
		t.Fatal("restored query differs")
	}
	// Same future: continue both with an identical deterministic stream.
	g1, _ := powerlaw.NewRMAT(20, 42)
	g2, _ := powerlaw.NewRMAT(20, 42)
	for k := 0; k < 50; k++ {
		e1 := g1.Edges(20)
		e2 := g2.Edges(20)
		r1, c1, v1 := powerlaw.ToTuples(e1)
		r2, c2, v2 := powerlaw.ToTuples(e2)
		if err := h.Update(r1, c1, v1); err != nil {
			t.Fatal(err)
		}
		if err := restored.Update(r2, c2, v2); err != nil {
			t.Fatal(err)
		}
	}
	q1, _ = h.Query()
	q2, _ = restored.Query()
	if !gb.Equal(q1, q2) {
		t.Fatal("futures diverged after restore")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode[uint64](strings.NewReader("NOTHIERxxxxxxxxxxxxxxxxx"), gb.Uint64Codec[uint64]()); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	h := MustNew[uint64](1<<20, 1<<20, Config{Cuts: []int{10}})
	_ = h.Update([]gb.Index{1, 2, 3}, []gb.Index{4, 5, 6}, []uint64{1, 1, 1})
	var buf bytes.Buffer
	if err := Encode(&buf, h, gb.Uint64Codec[uint64]()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 12, len(full) / 2, len(full) - 1} {
		if _, err := Decode[uint64](bytes.NewReader(full[:cut]), gb.Uint64Codec[uint64]()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestEncodeEmptyHierarchy(t *testing.T) {
	h := MustNew[uint64](1<<40, 1<<40, DefaultConfig())
	var buf bytes.Buffer
	if err := Encode(&buf, h, gb.Uint64Codec[uint64]()); err != nil {
		t.Fatal(err)
	}
	restored, err := Decode[uint64](&buf, gb.Uint64Codec[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	n, err := restored.NVals()
	if err != nil || n != 0 {
		t.Fatalf("restored empty: %d, %v", n, err)
	}
	if restored.NRows() != 1<<40 {
		t.Fatalf("dims = %d", restored.NRows())
	}
}

func TestAutoTunerPicksACandidate(t *testing.T) {
	g, _ := powerlaw.NewRMAT(22, 9)
	edges := g.Edges(30_000)
	rows, cols, _ := powerlaw.ToTuples(edges)
	at := AutoTuner{
		Candidates:    []int{1 << 8, 1 << 12, 1 << 16},
		Ratio:         16,
		Levels:        4,
		WindowUpdates: len(edges),
	}
	results, best, err := at.Tune(rows, cols, 1000, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.WorkPerUpdate < 1 {
			t.Fatalf("work/update %v < 1 (every entry is at least sorted once)", res.WorkPerUpdate)
		}
		if res.BaseCut != at.Candidates[i] {
			t.Fatalf("result order scrambled: %+v", results)
		}
	}
	if best < 0 || best >= len(results) {
		t.Fatalf("best = %d", best)
	}
	// The winner must have minimal work.
	for _, res := range results {
		if res.WorkPerUpdate < results[best].WorkPerUpdate {
			t.Fatalf("best %v is not minimal (found %v)", results[best], res)
		}
	}
	// With a 1000-entry batch, tiny cuts cascade constantly; the largest
	// cut should beat the smallest on this window.
	if results[0].WorkPerUpdate <= results[2].WorkPerUpdate {
		t.Fatalf("expected small cut to cost more: %+v", results)
	}
}

func TestAutoTunerValidation(t *testing.T) {
	at := DefaultAutoTuner()
	if _, _, err := at.Tune(nil, nil, 10, 1<<20); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := at.Tune([]gb.Index{1}, []gb.Index{1, 2}, 10, 1<<20); err == nil {
		t.Fatal("mismatched slices accepted")
	}
	if _, _, err := at.Tune([]gb.Index{1}, []gb.Index{1}, 0, 1<<20); err == nil {
		t.Fatal("zero batch accepted")
	}
	bad := AutoTuner{Ratio: 16, Levels: 4}
	if _, _, err := bad.Tune([]gb.Index{1}, []gb.Index{1}, 1, 1<<20); err == nil {
		t.Fatal("no candidates accepted")
	}
	if len(DefaultAutoTuner().Candidates) == 0 {
		t.Fatal("default tuner has no candidates")
	}
}
