package hier

import (
	"fmt"
	"sync"

	"hhgb/internal/gb"
)

// Concurrent wraps a hierarchical matrix with a mutex so multiple goroutines
// can stream into one instance. The paper's experiment gives every process
// its own instance (shared-nothing, see Sharded); Concurrent exists for
// applications that must share one logical matrix.
type Concurrent[T gb.Number] struct {
	mu sync.Mutex
	m  *Matrix[T]
}

// NewConcurrent returns a thread-safe hierarchical matrix.
func NewConcurrent[T gb.Number](nrows, ncols gb.Index, cfg Config) (*Concurrent[T], error) {
	m, err := New[T](nrows, ncols, cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent[T]{m: m}, nil
}

// Update ingests a batch under the lock.
func (c *Concurrent[T]) Update(rows, cols []gb.Index, vals []T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Update(rows, cols, vals)
}

// Query materializes the total under the lock.
func (c *Concurrent[T]) Query() (*gb.Matrix[T], error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Query()
}

// Stats returns a copy of the counters under the lock.
func (c *Concurrent[T]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Stats()
}

// NVals returns the distinct entry count under the lock.
func (c *Concurrent[T]) NVals() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.NVals()
}

// Sharded partitions one logical traffic matrix across K independent
// hierarchical instances by hashing the row id. Each shard has its own
// lock, so ingest scales with shard count — the single-node analogue of
// the paper's 31,000 independent instances.
type Sharded[T gb.Number] struct {
	shards []*Concurrent[T]
}

// NewSharded returns a sharded hierarchical matrix with k shards.
func NewSharded[T gb.Number](nrows, ncols gb.Index, cfg Config, k int) (*Sharded[T], error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: shard count %d < 1", gb.ErrInvalidValue, k)
	}
	s := &Sharded[T]{}
	for i := 0; i < k; i++ {
		c, err := NewConcurrent[T](nrows, ncols, cfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, c)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded[T]) NumShards() int { return len(s.shards) }

// shardOf routes a row id to a shard with a 64-bit mix (splitmix64 final
// avalanche), keeping power-law-skewed row spaces balanced.
func (s *Sharded[T]) shardOf(row gb.Index) int {
	x := uint64(row)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(s.shards)))
}

// Update routes each tuple to its shard and ingests per-shard sub-batches.
func (s *Sharded[T]) Update(rows, cols []gb.Index, vals []T) error {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return fmt.Errorf("%w: slice lengths %d/%d/%d differ", gb.ErrInvalidValue, len(rows), len(cols), len(vals))
	}
	k := len(s.shards)
	if k == 1 {
		return s.shards[0].Update(rows, cols, vals)
	}
	bRows := make([][]gb.Index, k)
	bCols := make([][]gb.Index, k)
	bVals := make([][]T, k)
	for i := range rows {
		sh := s.shardOf(rows[i])
		bRows[sh] = append(bRows[sh], rows[i])
		bCols[sh] = append(bCols[sh], cols[i])
		bVals[sh] = append(bVals[sh], vals[i])
	}
	for sh := 0; sh < k; sh++ {
		if len(bRows[sh]) == 0 {
			continue
		}
		if err := s.shards[sh].Update(bRows[sh], bCols[sh], bVals[sh]); err != nil {
			return err
		}
	}
	return nil
}

// Query sums the totals of every shard into one matrix.
func (s *Sharded[T]) Query() (*gb.Matrix[T], error) {
	var parts []*gb.Matrix[T]
	for _, sh := range s.shards {
		q, err := sh.Query()
		if err != nil {
			return nil, err
		}
		parts = append(parts, q)
	}
	return gb.Sum(parts...)
}

// NVals returns the distinct entry count of the combined matrix.
func (s *Sharded[T]) NVals() (int, error) {
	q, err := s.Query()
	if err != nil {
		return 0, err
	}
	return q.NVals(), nil
}
