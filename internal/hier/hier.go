// Package hier implements hierarchical hypersparse matrices — the core
// contribution of Kepner et al., "75,000,000,000 Streaming Inserts/Second
// Using Hierarchical Hypersparse GraphBLAS Matrices" (IPDPS Workshops 2020).
//
// A hierarchical matrix is a cascade of N hypersparse matrices A1 … AN with
// nonzero cuts c1 … c(N-1). Streaming updates are added into A1, the
// smallest matrix, which lives in the fastest memory. Whenever
// nnz(Ai) > ci, the level is promoted — A(i+1) += Ai; Ai is cleared — and
// the rule re-applies upward. Queries materialize A = Σ Ai.
//
// Because GraphBLAS addition is linear and handles all hypersparse index
// bookkeeping, the cascade is *exactly* equivalent to accumulating every
// update into a single flat matrix (a property the tests verify for random
// cut vectors), while performing the vast majority of update work inside
// small, cache-resident structures.
package hier

import (
	"fmt"

	"hhgb/internal/gb"
)

// Config describes the shape of a hierarchical matrix.
type Config struct {
	// Cuts holds the nonzero thresholds c1 … c(N-1) for the non-top
	// levels; level i cascades into level i+1 when nnz exceeds Cuts[i].
	// The number of levels is len(Cuts)+1; the top level is unbounded.
	Cuts []int
}

// DefaultLevels is the cascade depth used when no configuration is given.
// Four levels with a geometric cut progression is the configuration family
// the paper describes as "easily tunable".
const DefaultLevels = 4

// DefaultBaseCut is the default c1: small enough that level 1 stays inside
// L2-cache-sized working sets on commodity hardware.
const DefaultBaseCut = 1 << 14

// DefaultCutRatio is the default geometric growth between cuts.
const DefaultCutRatio = 16

// GeometricCuts returns cuts c_i = base * ratio^(i-1) for a cascade with
// the given number of levels (levels-1 cuts). It is the tuning family from
// the paper's Section II.
func GeometricCuts(levels, base, ratio int) []int {
	if levels < 1 {
		return nil
	}
	cuts := make([]int, levels-1)
	c := base
	for i := range cuts {
		cuts[i] = c
		c *= ratio
	}
	return cuts
}

// DefaultConfig returns the default 4-level geometric configuration.
func DefaultConfig() Config {
	return Config{Cuts: GeometricCuts(DefaultLevels, DefaultBaseCut, DefaultCutRatio)}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for i, cut := range c.Cuts {
		if cut < 1 {
			return fmt.Errorf("%w: cut %d is %d; cuts must be >= 1", gb.ErrInvalidValue, i, cut)
		}
	}
	return nil
}

// Levels returns the cascade depth implied by the configuration.
func (c Config) Levels() int { return len(c.Cuts) + 1 }

// Stats counts the work a hierarchical matrix has performed. All counters
// are cumulative since construction (or the last ResetStats).
type Stats struct {
	// Updates is the number of individual entry updates ingested.
	Updates int64
	// Batches is the number of Update/UpdateMatrix calls.
	Batches int64
	// Cascades[i] counts promotions of level i into level i+1.
	Cascades []int64
	// CascadedEntries[i] counts entries moved by those promotions; the
	// ratio CascadedEntries[i]/Updates is the fraction of traffic that
	// reached level i+1 — the "memory pressure" the hierarchy removes.
	CascadedEntries []int64
	// Queries counts Query/Flush materializations.
	Queries int64
}

// Matrix is an N-level hierarchical hypersparse matrix of T values.
// It is not safe for concurrent use; wrap it in Concurrent or shard it
// with Sharded for parallel ingest.
type Matrix[T gb.Number] struct {
	nrows, ncols gb.Index
	cuts         []int
	levels       []*gb.Matrix[T]
	plus         gb.BinaryOp[T]
	stats        Stats
}

// New returns an empty hierarchical matrix with the given dimensions and
// configuration. A Config with nil Cuts yields a single flat level (N=1),
// which degenerates to an ordinary hypersparse matrix.
func New[T gb.Number](nrows, ncols gb.Index, cfg Config) (*Matrix[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Levels()
	h := &Matrix[T]{
		nrows: nrows,
		ncols: ncols,
		cuts:  append([]int(nil), cfg.Cuts...),
		plus:  gb.Plus[T]().Op,
		stats: Stats{Cascades: make([]int64, n), CascadedEntries: make([]int64, n)},
	}
	for i := 0; i < n; i++ {
		m, err := gb.NewMatrix[T](nrows, ncols)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, m)
	}
	return h, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew[T gb.Number](nrows, ncols gb.Index, cfg Config) *Matrix[T] {
	h, err := New[T](nrows, ncols, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// NRows returns the row dimension.
func (h *Matrix[T]) NRows() gb.Index { return h.nrows }

// NCols returns the column dimension.
func (h *Matrix[T]) NCols() gb.Index { return h.ncols }

// NumLevels returns the cascade depth N.
func (h *Matrix[T]) NumLevels() int { return len(h.levels) }

// Cuts returns a copy of the cut thresholds c1 … c(N-1).
func (h *Matrix[T]) Cuts() []int { return append([]int(nil), h.cuts...) }

// Update ingests a batch of streaming updates: A1 += A where A is the
// hypersparse matrix assembled from the tuples, then cascades any level
// whose nonzero count exceeds its cut. This is the paper's Section II
// update procedure, and the operation whose rate Fig. 2 measures.
func (h *Matrix[T]) Update(rows, cols []gb.Index, vals []T) error {
	if err := h.levels[0].AppendTuples(rows, cols, vals); err != nil {
		return err
	}
	h.stats.Updates += int64(len(rows))
	h.stats.Batches++
	return h.cascade()
}

// UpdateMatrix ingests an already-assembled hypersparse matrix: A1 += a.
func (h *Matrix[T]) UpdateMatrix(a *gb.Matrix[T]) error {
	if a.NRows() != h.nrows || a.NCols() != h.ncols {
		return fmt.Errorf("%w: update %dx%d into %dx%d", gb.ErrDimensionMismatch, a.NRows(), a.NCols(), h.nrows, h.ncols)
	}
	h.stats.Updates += int64(a.NVals())
	h.stats.Batches++
	if err := gb.AddAssign(h.levels[0], a, h.plus); err != nil {
		return err
	}
	return h.cascade()
}

// cascade applies the promotion rule bottom-up: while nnz(Ai) > ci,
// A(i+1) += Ai and Ai is cleared. The pending-length upper bound avoids
// materializing level 1 when it cannot possibly have crossed its cut.
func (h *Matrix[T]) cascade() error {
	for i := 0; i < len(h.cuts); i++ {
		lvl := h.levels[i]
		// Cheap upper bound first: if even pending+stored can't exceed
		// the cut, the level certainly doesn't cascade and we avoid the
		// sort/merge entirely.
		if lvl.MaterializedNVals()+lvl.PendingLen() <= h.cuts[i] {
			return nil
		}
		nnz := lvl.NVals() // forces Wait; exact count after dedup
		if nnz <= h.cuts[i] {
			return nil
		}
		if err := gb.AddAssign(h.levels[i+1], lvl, h.plus); err != nil {
			return err
		}
		lvl.Clear()
		h.stats.Cascades[i]++
		h.stats.CascadedEntries[i] += int64(nnz)
	}
	return nil
}

// Query materializes A = Σ Ai without disturbing the cascade state.
// The paper's analysis step: all pending updates become visible.
func (h *Matrix[T]) Query() (*gb.Matrix[T], error) {
	h.stats.Queries++
	return gb.Sum(h.levels...)
}

// Materialize completes every level's pending work without summing them,
// making the hierarchy scannable with zero staleness. For a cascade this
// costs at most O(c1 + batch) — only the lowest level ever holds pending
// updates — whereas a flat (single-level) matrix pays a full O(nnz) merge;
// that asymmetry is the paper's mechanism in one method.
func (h *Matrix[T]) Materialize() {
	for _, lvl := range h.levels {
		lvl.Wait()
	}
}

// Flush completes all pending work by cascading every level into the top
// and returns the resulting total matrix. After Flush, all levels below the
// top are empty and the top holds Σ Ai. The returned matrix is the live top
// level (not a copy): callers that need isolation should Dup it.
func (h *Matrix[T]) Flush() (*gb.Matrix[T], error) {
	h.stats.Queries++
	top := h.levels[len(h.levels)-1]
	for i := 0; i < len(h.levels)-1; i++ {
		lvl := h.levels[i]
		nnz := lvl.NVals()
		if nnz == 0 {
			continue
		}
		if err := gb.AddAssign(top, lvl, h.plus); err != nil {
			return nil, err
		}
		lvl.Clear()
		h.stats.Cascades[i]++
		h.stats.CascadedEntries[i] += int64(nnz)
	}
	top.Wait()
	return top, nil
}

// ExtractElement returns the accumulated value at (i, j), summed across
// levels, and whether any level stores the cell. Because a cell can live at
// several levels at once (recent traffic in A1, cascaded history above),
// the per-level values are combined with the accumulation operator — by
// linearity this equals the value a full Query would materialize, at
// O(levels x log nnz) cost instead of O(nnz).
func (h *Matrix[T]) ExtractElement(i, j gb.Index) (T, bool, error) {
	var total T
	if i >= h.nrows || j >= h.ncols {
		return total, false, fmt.Errorf("%w: (%d,%d) outside %d x %d", gb.ErrIndexOutOfBounds, i, j, h.nrows, h.ncols)
	}
	found := false
	for _, lvl := range h.levels {
		v, err := lvl.ExtractElement(i, j)
		if err != nil {
			if err == gb.ErrNoValue {
				continue
			}
			return total, false, err
		}
		if !found {
			total, found = v, true
			continue
		}
		total = h.plus(total, v)
	}
	return total, found, nil
}

// NVals returns the exact number of distinct stored entries across the
// hierarchy. It requires a full Query (entries may be split across levels),
// so it is an analysis-time operation, not an ingest-time one.
func (h *Matrix[T]) NVals() (int, error) {
	q, err := h.Query()
	if err != nil {
		return 0, err
	}
	return q.NVals(), nil
}

// LevelNVals reports the per-level nonzero counts (materializing pending
// updates level by level). Useful for inspecting cascade behaviour.
func (h *Matrix[T]) LevelNVals() []int {
	out := make([]int, len(h.levels))
	for i, lvl := range h.levels {
		out[i] = lvl.NVals()
	}
	return out
}

// Level returns the i-th level matrix for read-only inspection.
// Mutating it breaks the cascade invariants.
func (h *Matrix[T]) Level(i int) *gb.Matrix[T] { return h.levels[i] }

// Stats returns a copy of the cumulative counters.
func (h *Matrix[T]) Stats() Stats {
	s := h.stats
	s.Cascades = append([]int64(nil), h.stats.Cascades...)
	s.CascadedEntries = append([]int64(nil), h.stats.CascadedEntries...)
	return s
}

// ResetStats zeroes the counters (cascade state is untouched).
func (h *Matrix[T]) ResetStats() {
	h.stats = Stats{
		Cascades:        make([]int64, len(h.levels)),
		CascadedEntries: make([]int64, len(h.levels)),
	}
}

// Clear empties every level, keeping configuration and dimensions.
func (h *Matrix[T]) Clear() {
	for _, lvl := range h.levels {
		lvl.Clear()
	}
}

// String summarizes the hierarchy without materializing a query.
func (h *Matrix[T]) String() string {
	return fmt.Sprintf("hier.Matrix[%dx%d, levels=%d, cuts=%v]", h.nrows, h.ncols, len(h.levels), h.cuts)
}
