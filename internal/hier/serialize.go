package hier

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"hhgb/internal/gb"
)

const hierMagic = "HHGBhier"

// Encode writes the complete hierarchical matrix — configuration and every
// level's contents — in a binary form Decode can restore. Snapshots taken
// mid-stream resume exactly (cascade state included); this is the
// checkpoint/restart path a long-running traffic-matrix service needs.
func Encode[T gb.Number](w io.Writer, h *Matrix[T], c gb.Codec[T]) error {
	if _, err := io.WriteString(w, hierMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := putUvarint(h.nrows); err != nil {
		return err
	}
	if err := putUvarint(h.ncols); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(h.cuts))); err != nil {
		return err
	}
	for _, cut := range h.cuts {
		if err := putUvarint(uint64(cut)); err != nil {
			return err
		}
	}
	// Each level is written as a length-prefixed block so Decode can hand
	// each one an isolated reader (gb.Decode buffers internally).
	var block bytes.Buffer
	for _, lvl := range h.levels {
		block.Reset()
		if err := gb.Encode(&block, lvl, c); err != nil {
			return err
		}
		if err := putUvarint(uint64(block.Len())); err != nil {
			return err
		}
		if _, err := w.Write(block.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Decode restores a hierarchical matrix written by Encode. Statistics
// counters start fresh; the cascade state (per-level contents) is exact.
func Decode[T gb.Number](r io.Reader, c gb.Codec[T]) (*Matrix[T], error) {
	br := byteReaderOf(r)
	magic := make([]byte, len(hierMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hier: reading magic: %w", err)
	}
	if string(magic) != hierMagic {
		return nil, fmt.Errorf("%w: bad hierarchical-matrix magic %q", gb.ErrInvalidValue, magic)
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ncuts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	cuts := make([]int, ncuts)
	for i := range cuts {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		cuts[i] = int(v)
	}
	h, err := New[T](nrows, ncols, Config{Cuts: cuts})
	if err != nil {
		return nil, err
	}
	for i := range h.levels {
		blockLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("hier: level %d length: %w", i, err)
		}
		block := make([]byte, blockLen)
		if _, err := io.ReadFull(br, block); err != nil {
			return nil, fmt.Errorf("hier: level %d block: %w", i, err)
		}
		lvl, err := gb.Decode[T](bytes.NewReader(block), c)
		if err != nil {
			return nil, fmt.Errorf("hier: level %d: %w", i, err)
		}
		if lvl.NRows() != nrows || lvl.NCols() != ncols {
			return nil, fmt.Errorf("%w: level %d dims %dx%d != %dx%d",
				gb.ErrInvalidValue, i, lvl.NRows(), lvl.NCols(), nrows, ncols)
		}
		h.levels[i] = lvl
	}
	return h, nil
}

// byteReaderOf adapts r to io.ByteReader without double-buffering when it
// already implements it.
func byteReaderOf(r io.Reader) interface {
	io.Reader
	io.ByteReader
} {
	if br, ok := r.(interface {
		io.Reader
		io.ByteReader
	}); ok {
		return br
	}
	return &byteReader{r: r}
}

type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.one[:])
	return b.one[0], err
}
