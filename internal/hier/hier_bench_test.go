package hier

import (
	"fmt"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

// benchStream pre-generates pool batches of the given size.
func benchStream(b *testing.B, pool, batch, scale int) ([][]gb.Index, [][]gb.Index, []uint64) {
	b.Helper()
	g, err := powerlaw.NewRMAT(scale, 0xcafe)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]gb.Index, pool)
	cols := make([][]gb.Index, pool)
	for p := 0; p < pool; p++ {
		rows[p] = make([]gb.Index, batch)
		cols[p] = make([]gb.Index, batch)
		if err := g.Fill(rows[p], cols[p]); err != nil {
			b.Fatal(err)
		}
	}
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}
	return rows, cols, vals
}

// BenchmarkUpdate measures the streaming ingest path at the paper's batch
// size across cascade depths.
func BenchmarkUpdate(b *testing.B) {
	const batch = 100_000
	rows, cols, vals := benchStream(b, 8, batch, 32)
	for _, levels := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("levels=%d", levels), func(b *testing.B) {
			h := MustNew[uint64](1<<32, 1<<32, Config{Cuts: GeometricCuts(levels, DefaultBaseCut, DefaultCutRatio)})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % len(rows)
				if err := h.Update(rows[p], cols[p], vals); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "updates/s")
		})
	}
}

// BenchmarkQuery measures materializing A = Σ Ai after substantial ingest.
func BenchmarkQuery(b *testing.B) {
	const batch = 100_000
	rows, cols, vals := benchStream(b, 8, batch, 32)
	h := MustNew[uint64](1<<32, 1<<32, DefaultConfig())
	for p := 0; p < len(rows); p++ {
		if err := h.Update(rows[p], cols[p], vals); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Query(); err != nil {
			b.Fatal(err)
		}
	}
}
