package hier

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"hhgb/internal/gb"
)

func TestConcurrentParallelIngest(t *testing.T) {
	c, err := NewConcurrent[int64](1<<30, 1<<30, Config{Cuts: []int{256}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < perWorker; k++ {
				rows := []gb.Index{gb.Index(r.Uint64() % (1 << 30))}
				cols := []gb.Index{gb.Index(r.Uint64() % (1 << 30))}
				if err := c.Update(rows, cols, []int64{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := c.Stats()
	if s.Updates != workers*perWorker {
		t.Fatalf("updates = %d, want %d", s.Updates, workers*perWorker)
	}
	q, err := c.Query()
	if err != nil {
		t.Fatal(err)
	}
	mass, _ := gb.ReduceScalar(q, gb.Plus[int64]())
	if mass != workers*perWorker {
		t.Fatalf("value mass = %d, want %d", mass, workers*perWorker)
	}
}

func TestShardedMatchesUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	s, err := NewSharded[int64](1<<20, 1<<20, Config{Cuts: []int{64}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	flat := gb.MustNewMatrix[int64](1<<20, 1<<20)
	for step := 0; step < 100; step++ {
		sz := 1 + r.Intn(50)
		rows := make([]gb.Index, sz)
		cols := make([]gb.Index, sz)
		vals := make([]int64, sz)
		for k := 0; k < sz; k++ {
			rows[k] = gb.Index(r.Uint64() % (1 << 20))
			cols[k] = gb.Index(r.Uint64() % (1 << 20))
			vals[k] = int64(r.Intn(5) + 1)
		}
		if err := s.Update(rows, cols, vals); err != nil {
			t.Fatal(err)
		}
		_ = flat.AppendTuples(rows, cols, vals)
	}
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(q, flat) {
		t.Fatal("sharded total != flat reference")
	}
	n, err := s.NVals()
	if err != nil || n != flat.NVals() {
		t.Fatalf("NVals = %d, want %d (%v)", n, flat.NVals(), err)
	}
}

func TestShardedSingleShardFastPath(t *testing.T) {
	s, err := NewSharded[int64](64, 64, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	if err := s.Update([]gb.Index{1}, []gb.Index{2}, []int64{3}); err != nil {
		t.Fatal(err)
	}
	q, _ := s.Query()
	v, _ := q.ExtractElement(1, 2)
	if v != 3 {
		t.Fatalf("value = %d", v)
	}
}

func TestShardedRejectsBadArgs(t *testing.T) {
	if _, err := NewSharded[int64](64, 64, Config{}, 0); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero shards: %v", err)
	}
	s, _ := NewSharded[int64](64, 64, Config{}, 3)
	if err := s.Update([]gb.Index{1}, []gb.Index{1, 2}, []int64{1}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestShardedParallelIngestConservesMass(t *testing.T) {
	s, _ := NewSharded[int64](1<<30, 1<<30, Config{Cuts: []int{128}}, 4)
	const workers = 6
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 1000))
			for k := 0; k < perWorker; k++ {
				if err := s.Update(
					[]gb.Index{gb.Index(r.Uint64() % (1 << 30))},
					[]gb.Index{gb.Index(r.Uint64() % (1 << 30))},
					[]int64{1},
				); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	mass, _ := gb.ReduceScalar(q, gb.Plus[int64]())
	if mass != workers*perWorker {
		t.Fatalf("mass = %d, want %d", mass, workers*perWorker)
	}
}
