// Package stats computes the network statistics the paper's Section III
// says a real analysis application would run on each stream: degree and
// traffic vectors, supernode top-k, summaries, and an EWMA background
// model with anomaly extraction — all expressed over the GraphBLAS kernels
// so they inherit the hypersparse cost model.
package stats

import (
	"fmt"
	"sort"

	"hhgb/internal/gb"
)

// Entry is one ranked (index, value) result.
type Entry struct {
	Index gb.Index
	Value uint64
}

// OutDegrees returns, per source with traffic, the number of distinct
// destinations (pattern degree, not packet count).
func OutDegrees(m *gb.Matrix[uint64]) (*gb.Vector[uint64], error) {
	ones, err := gb.Apply(m, func(uint64) uint64 { return 1 })
	if err != nil {
		return nil, err
	}
	return gb.ReduceRows(ones, gb.Plus[uint64]())
}

// InDegrees returns, per destination, the number of distinct sources.
func InDegrees(m *gb.Matrix[uint64]) (*gb.Vector[uint64], error) {
	ones, err := gb.Apply(m, func(uint64) uint64 { return 1 })
	if err != nil {
		return nil, err
	}
	return gb.ReduceCols(ones, gb.Plus[uint64]())
}

// OutTraffic returns per-source packet totals (row sums).
func OutTraffic(m *gb.Matrix[uint64]) (*gb.Vector[uint64], error) {
	return gb.ReduceRows(m, gb.Plus[uint64]())
}

// InTraffic returns per-destination packet totals (column sums).
func InTraffic(m *gb.Matrix[uint64]) (*gb.Vector[uint64], error) {
	return gb.ReduceCols(m, gb.Plus[uint64]())
}

// TopK returns the k largest entries of v, ties broken by lower index
// first, ordered descending by value. k larger than the entry count
// returns everything.
func TopK(v *gb.Vector[uint64], k int) ([]Entry, error) {
	top, err := SelectTopK(v, k)
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, len(top))
	for i, e := range top {
		entries[i] = Entry{Index: e.Index, Value: e.Value}
	}
	return entries, nil
}

// Top is one ranked entry of a SelectTopK result.
type Top[T gb.Number] struct {
	Index gb.Index
	Value T
}

// topLess is the selection order: an entry ranks higher when its value is
// larger, ties broken by lower index. The order is total (indices are
// distinct), so bounded-heap selection returns exactly the entries a full
// sort would.
func topLess[T gb.Number](a, b Top[T]) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Index < b.Index
}

// SelectTopK returns the k largest entries of v in descending order (ties
// broken by lower index first) using a bounded min-heap: O(n log k) time
// and O(k) space instead of TopK's full O(n log n) sort, so selecting a
// handful of supernodes from a merged degree vector costs (nearly) result
// size, not a sort of every vertex. k larger than the entry count returns
// everything; the output is identical to sorting all entries and keeping
// the first k.
func SelectTopK[T gb.Number](v *gb.Vector[T], k int) ([]Top[T], error) {
	if k < 0 {
		return nil, fmt.Errorf("%w: k = %d", gb.ErrInvalidValue, k)
	}
	// heap keeps the current best k with the weakest entry at the root —
	// the one a stronger newcomer evicts. "a is weaker than b" is
	// topLess(b, a), since the selection order is a total order.
	weaker := func(a, b Top[T]) bool { return topLess(b, a) }
	heap := make([]Top[T], 0, k)
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !weaker(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(heap) && weaker(heap[l], heap[w]) {
				w = l
			}
			if r < len(heap) && weaker(heap[r], heap[w]) {
				w = r
			}
			if w == i {
				return
			}
			heap[i], heap[w] = heap[w], heap[i]
			i = w
		}
	}
	v.Iterate(func(i gb.Index, x T) bool {
		e := Top[T]{Index: i, Value: x}
		if len(heap) < k {
			heap = append(heap, e)
			siftUp(len(heap) - 1)
			return true
		}
		if k > 0 && topLess(e, heap[0]) {
			heap[0] = e
			siftDown()
		}
		return true
	})
	sort.Slice(heap, func(a, b int) bool { return topLess(heap[a], heap[b]) })
	return heap, nil
}

// Summary aggregates the headline statistics of a traffic matrix.
type Summary struct {
	// Entries is the number of stored (src, dst) pairs.
	Entries int
	// Sources is the number of distinct sources with traffic.
	Sources int
	// Destinations is the number of distinct destinations with traffic.
	Destinations int
	// TotalPackets is the sum of all values.
	TotalPackets uint64
	// MaxOutDegree is the largest per-source destination fan-out.
	MaxOutDegree uint64
	// MaxInDegree is the largest per-destination source fan-in.
	MaxInDegree uint64
}

// Summarize computes a Summary with GraphBLAS reductions.
func Summarize(m *gb.Matrix[uint64]) (Summary, error) {
	var s Summary
	s.Entries = m.NVals()
	total, err := gb.ReduceScalar(m, gb.Plus[uint64]())
	if err != nil {
		return s, err
	}
	s.TotalPackets = total
	od, err := OutDegrees(m)
	if err != nil {
		return s, err
	}
	id, err := InDegrees(m)
	if err != nil {
		return s, err
	}
	s.Sources = od.NVals()
	s.Destinations = id.NVals()
	s.MaxOutDegree, err = gb.VecReduce(od, gb.MaxWith[uint64](0))
	if err != nil {
		return s, err
	}
	s.MaxInDegree, err = gb.VecReduce(id, gb.MaxWith[uint64](0))
	if err != nil {
		return s, err
	}
	return s, nil
}

// Background maintains an exponentially weighted moving-average model of
// traffic: B ← (1-α)·B + α·W for each completed window W. It is the
// "computing background models" application from the paper's introduction.
type Background struct {
	Alpha   float64
	model   *gb.Matrix[float64]
	windows int
}

// NewBackground returns an empty model over the given index space.
func NewBackground(nrows, ncols gb.Index, alpha float64) (*Background, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("%w: alpha %v outside (0,1]", gb.ErrInvalidValue, alpha)
	}
	m, err := gb.NewMatrix[float64](nrows, ncols)
	if err != nil {
		return nil, err
	}
	return &Background{Alpha: alpha, model: m}, nil
}

// Absorb folds one completed window into the model.
func (b *Background) Absorb(window *gb.Matrix[uint64]) error {
	wf, err := toFloat(window)
	if err != nil {
		return err
	}
	scaledW, err := gb.Scale(wf, b.Alpha)
	if err != nil {
		return err
	}
	decayed, err := gb.Scale(b.model, 1-b.Alpha)
	if err != nil {
		return err
	}
	next, err := gb.EWiseAdd(decayed, scaledW, gb.Plus[float64]().Op)
	if err != nil {
		return err
	}
	b.model = next
	b.windows++
	return nil
}

// Windows returns how many windows the model has absorbed.
func (b *Background) Windows() int { return b.windows }

// Model returns the current background matrix (live reference).
func (b *Background) Model() *gb.Matrix[float64] { return b.model }

// Anomalies returns the entries of window whose packet count exceeds
// factor times the background expectation (with a floor of minPackets to
// suppress noise on cold cells) — the "inferring unobserved traffic /
// botnet flagging" style analysis from the paper's introduction.
func (b *Background) Anomalies(window *gb.Matrix[uint64], factor float64, minPackets uint64) (*gb.Matrix[uint64], error) {
	if factor <= 0 {
		return nil, fmt.Errorf("%w: factor %v <= 0", gb.ErrInvalidValue, factor)
	}
	model := b.model
	return gb.Select(window, func(i, j gb.Index, v uint64) bool {
		if v < minPackets {
			return false
		}
		expected, err := model.ExtractElement(i, j)
		if err != nil {
			// No history at all: a hot new edge is anomalous.
			return true
		}
		return float64(v) > factor*expected
	})
}

// toFloat converts a uint64 matrix to float64 preserving the pattern.
func toFloat(m *gb.Matrix[uint64]) (*gb.Matrix[float64], error) {
	rows, cols, vals := m.ExtractTuples()
	fvals := make([]float64, len(vals))
	for k, v := range vals {
		fvals[k] = float64(v)
	}
	return gb.MatrixFromTuples(m.NRows(), m.NCols(), rows, cols, fvals, gb.Plus[float64]().Op)
}
