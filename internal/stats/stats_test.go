package stats

import (
	"errors"
	"sort"
	"testing"

	"hhgb/internal/gb"
)

// sample builds the matrix
//
//	src 1 -> dst 2 (5 pkts), dst 3 (1 pkt)
//	src 4 -> dst 2 (7 pkts)
func sample(t *testing.T) *gb.Matrix[uint64] {
	t.Helper()
	m, err := gb.MatrixFromTuples(1<<32, 1<<32,
		[]gb.Index{1, 1, 4}, []gb.Index{2, 3, 2},
		[]uint64{5, 1, 7}, gb.Plus[uint64]().Op)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDegreesAndTraffic(t *testing.T) {
	m := sample(t)
	od, err := OutDegrees(m)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := od.ExtractElement(1); v != 2 {
		t.Fatalf("outdeg(1) = %d", v)
	}
	if v, _ := od.ExtractElement(4); v != 1 {
		t.Fatalf("outdeg(4) = %d", v)
	}
	id, err := InDegrees(m)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := id.ExtractElement(2); v != 2 {
		t.Fatalf("indeg(2) = %d", v)
	}
	ot, err := OutTraffic(m)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ot.ExtractElement(1); v != 6 {
		t.Fatalf("outtraffic(1) = %d", v)
	}
	it, err := InTraffic(m)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := it.ExtractElement(2); v != 12 {
		t.Fatalf("intraffic(2) = %d", v)
	}
}

func TestTopK(t *testing.T) {
	m := sample(t)
	it, _ := InTraffic(m)
	top, err := TopK(it, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Index != 2 || top[0].Value != 12 {
		t.Fatalf("top = %+v", top)
	}
	all, err := TopK(it, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("len = %d", len(all))
	}
	// Descending order.
	if all[0].Value < all[1].Value {
		t.Fatalf("not descending: %+v", all)
	}
	if _, err := TopK(it, -1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("negative k: %v", err)
	}
	zero, err := TopK(it, 0)
	if err != nil || len(zero) != 0 {
		t.Fatalf("k=0: %v, %v", zero, err)
	}
}

func TestTopKTieBreak(t *testing.T) {
	v := gb.MustNewVector[uint64](100)
	_ = v.SetElement(9, 5)
	_ = v.SetElement(3, 5)
	top, err := TopK(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].Index != 3 || top[1].Index != 9 {
		t.Fatalf("tie break by index broken: %+v", top)
	}
}

func TestSummarize(t *testing.T) {
	m := sample(t)
	s, err := Summarize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{
		Entries:      3,
		Sources:      2,
		Destinations: 2,
		TotalPackets: 13,
		MaxOutDegree: 2,
		MaxInDegree:  2,
	}
	if s != want {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	m := gb.MustNewMatrix[uint64](16, 16)
	s, err := Summarize(m)
	if err != nil {
		t.Fatal(err)
	}
	if s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestBackgroundAbsorbAndDecay(t *testing.T) {
	b, err := NewBackground(1<<16, 1<<16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := gb.MatrixFromTuples(1<<16, 1<<16,
		[]gb.Index{1}, []gb.Index{2}, []uint64{8}, gb.Plus[uint64]().Op)
	if err := b.Absorb(w1); err != nil {
		t.Fatal(err)
	}
	v, err := b.Model().ExtractElement(1, 2)
	if err != nil || v != 4 { // 0.5 * 8
		t.Fatalf("model(1,2) = %v, %v", v, err)
	}
	// Second empty window halves it.
	w2 := gb.MustNewMatrix[uint64](1<<16, 1<<16)
	if err := b.Absorb(w2); err != nil {
		t.Fatal(err)
	}
	v, _ = b.Model().ExtractElement(1, 2)
	if v != 2 {
		t.Fatalf("decayed model(1,2) = %v", v)
	}
	if b.Windows() != 2 {
		t.Fatalf("windows = %d", b.Windows())
	}
}

func TestBackgroundValidation(t *testing.T) {
	if _, err := NewBackground(16, 16, 0); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("alpha 0: %v", err)
	}
	if _, err := NewBackground(16, 16, 1.5); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("alpha > 1: %v", err)
	}
}

func TestAnomalies(t *testing.T) {
	b, err := NewBackground(1<<16, 1<<16, 1.0) // model = last window
	if err != nil {
		t.Fatal(err)
	}
	base, _ := gb.MatrixFromTuples(1<<16, 1<<16,
		[]gb.Index{1, 2}, []gb.Index{1, 2}, []uint64{10, 10}, gb.Plus[uint64]().Op)
	if err := b.Absorb(base); err != nil {
		t.Fatal(err)
	}
	// Next window: (1,1) normal, (2,2) hot (x10), (5,5) brand new & hot.
	window, _ := gb.MatrixFromTuples(1<<16, 1<<16,
		[]gb.Index{1, 2, 5, 6}, []gb.Index{1, 2, 5, 6}, []uint64{11, 100, 50, 1}, gb.Plus[uint64]().Op)
	anom, err := b.Anomalies(window, 3.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if anom.NVals() != 2 {
		t.Fatalf("anomalies = %d, want 2", anom.NVals())
	}
	if _, err := anom.ExtractElement(2, 2); err != nil {
		t.Fatal("hot edge (2,2) missed")
	}
	if _, err := anom.ExtractElement(5, 5); err != nil {
		t.Fatal("new edge (5,5) missed")
	}
	// (6,6) is new but under the packet floor.
	if _, err := anom.ExtractElement(6, 6); !errors.Is(err, gb.ErrNoValue) {
		t.Fatal("noise edge (6,6) flagged")
	}
	if _, err := b.Anomalies(window, 0, 1); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("factor 0: %v", err)
	}
}

// TestSelectTopKMatchesFullSort fuzzes the bounded-heap selection against
// a reference full sort: identical output for every k, including value
// ties (broken by lower index) and k beyond the entry count.
func TestSelectTopKMatchesFullSort(t *testing.T) {
	v := gb.MustNewVector[uint64](1 << 20)
	rng := uint64(0x9e3779b97f4a7c15)
	n := 500
	idx := make([]gb.Index, 0, n)
	vals := make([]uint64, 0, n)
	seen := map[gb.Index]bool{}
	for len(idx) < n {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		i := gb.Index(rng % (1 << 20))
		if seen[i] {
			continue
		}
		seen[i] = true
		idx = append(idx, i)
		vals = append(vals, rng%17) // few distinct values: lots of ties
	}
	if err := v.Build(idx, vals, gb.Plus[uint64]().Op); err != nil {
		t.Fatal(err)
	}
	reference := func(k int) []Top[uint64] {
		all := make([]Top[uint64], 0, n)
		v.Iterate(func(i gb.Index, x uint64) bool {
			all = append(all, Top[uint64]{Index: i, Value: x})
			return true
		})
		sort.Slice(all, func(a, b int) bool { return topLess(all[a], all[b]) })
		if k < len(all) {
			all = all[:k]
		}
		return all
	}
	for _, k := range []int{0, 1, 2, 7, 99, n, n + 100} {
		got, err := SelectTopK(v, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := reference(k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d entries, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d entry %d: got %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
	if _, err := SelectTopK(v, -1); err == nil {
		t.Fatal("negative k should fail")
	}
}

// TestTopKDelegatesToSelect checks the uint64 wrapper stays consistent
// with the generic selection.
func TestTopKDelegatesToSelect(t *testing.T) {
	m := sample(t)
	ot, err := OutTraffic(m)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(ot, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != (Entry{Index: 4, Value: 7}) || top[1] != (Entry{Index: 1, Value: 6}) {
		t.Fatalf("TopK = %+v", top)
	}
}
