// Package proto defines the binary wire protocol between the network
// ingest server (internal/server) and its clients (hhgbclient): a
// length-prefixed frame stream over any reliable byte transport (TCP).
//
// # Framing
//
// Every message is one self-delimiting frame:
//
//	frame := uvarint(len) ‖ kind(1 byte) ‖ body(len-1 bytes)
//
// len counts the kind byte plus the body and is capped at MaxFrame, so a
// torn or hostile length prefix is an error, never an allocation request.
// There is no per-frame checksum: the transport (TCP) already provides
// integrity, and the durable server re-frames batches into its CRC32-framed
// write-ahead log (internal/wal) before acknowledging a flush.
//
// # Session
//
// A connection opens with the client's Hello — magic, protocol version,
// a client-chosen session identifier, and the resume seq (the highest seq
// the client believes acknowledged; informational) — and the server's
// Welcome: negotiated version, matrix dimension, shard count, durability
// flag, window duration, and two session frontiers — LastSeq, the server's
// highest durably-applied insert seq for that session (under-reported;
// governs retransmit-ring trimming), and HighSeq, the highest seq its
// dedup state has ever recorded (over-reported; governs minting — a
// resuming client without its ring sends new frames strictly above it).
// The session identifier, not the TCP connection, is the exactly-once
// dedup scope: a client that reconnects under the same session may
// retransmit any insert frame above LastSeq, and the server acks
// duplicates without re-applying them. An empty
// session opts out of dedup (fire-and-forget ingest). Then the client
// pipelines requests, each carrying a client-assigned sequence number
// (starting at 1, strictly increasing within the session across
// reconnects; 0 is reserved for connection-level errors), and the server
// responds per request:
//
//	Insert      → Ack          batch accepted into the ingest pipeline
//	InsertAt    → Ack          ditto, timestamped (windowed servers)
//	Flush       → Ack          all prior accepted batches applied (+fsynced)
//	Checkpoint  → Ack          ditto, plus snapshot compaction
//	Lookup      → LookupResp
//	TopK        → TopKResp
//	Summary     → SummaryResp
//	RangeLookup → LookupResp   over an event-time range (windowed servers)
//	RangeTopK   → TopKResp     over an event-time range
//	RangeSummary→ SummaryResp  over an event-time range
//	Subscribe   → Ack, then a stream of WindowSummary frames
//	Explain     → ExplainResp  runs a wrapped query op, returns its trailer
//	Goodbye     → Ack          server drained this connection's buffers
//	(any)       → Error        per-request failure (seq echoes the request)
//
// Insert and InsertAt bodies reuse the WAL batch record codec
// (wal.AppendBatchRecord): uvarint count, then rows, cols, values, all
// uvarints — the same bytes a durable shard worker frames into its log.
// InsertAt prefixes the batch with an event timestamp (unix nanoseconds);
// all of a frame's entries share it, so a windowed server routes the
// whole frame into one window.
//
// Responses to a connection's requests arrive in request order, with two
// exceptions: an overloaded server rejects an Insert from its reader loop
// (Error code ErrCodeOverload) while earlier requests may still be queued,
// so that Error can overtake their responses; and WindowSummary frames —
// pushed by the server whenever a window seals, after the Subscribe ack —
// interleave arbitrarily with responses, tagged with the Subscribe's seq.
// Clients must match responses to requests by seq, not by arrival order.
package proto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hhgb/internal/wal"
)

// Magic opens every Hello body: "HGB1" big-endian.
const Magic uint32 = 0x48474231

// Version is the protocol version this package speaks. A server refuses a
// Hello with a different version (ErrCodeVersion) rather than guessing.
// Version 2 added the temporal frames (InsertAt, Range*, Subscribe,
// WindowSummary) and the Welcome window-duration field. Version 3 made
// ingest exactly-once: Hello carries a session identifier and resume seq,
// Welcome answers with the session's durable high-water mark (LastSeq),
// and Insert/InsertAt seqs become the per-session dedup key.
const Version = 3

// MaxSession caps the Hello session identifier's length, matching the
// WAL-side cap (wal.MaxSessionID) so every session the server accepts can
// be journaled.
const MaxSession = wal.MaxSessionID

// MaxFrame caps a frame's length prefix (kind + body). Larger prefixes are
// malformed: the reader errors instead of allocating.
const MaxFrame = 1 << 24

// MaxBatch caps the entry count of one Insert frame, enforced on both
// sides: AppendInsert refuses to build a larger frame, and ParseInsert
// treats a larger count as malformed before allocating.
const MaxBatch = 1 << 16

// ErrMalformed is returned (wrapped; test with errors.Is) for any frame or
// body that does not parse: torn length, oversized frame, truncated or
// trailing body bytes, bad magic.
var ErrMalformed = errors.New("proto: malformed frame")

// Frame kinds. Client-to-server kinds have the high bit clear,
// server-to-client kinds have it set.
const (
	KindHello        byte = 0x01
	KindInsert       byte = 0x02
	KindFlush        byte = 0x03
	KindCheckpoint   byte = 0x04
	KindLookup       byte = 0x05
	KindTopK         byte = 0x06
	KindSummary      byte = 0x07
	KindGoodbye      byte = 0x08
	KindInsertAt     byte = 0x09
	KindRangeLookup  byte = 0x0a
	KindRangeTopK    byte = 0x0b
	KindRangeSummary byte = 0x0c
	KindSubscribe    byte = 0x0d
	KindExplain      byte = 0x0e

	KindWelcome       byte = 0x81
	KindAck           byte = 0x82
	KindLookupResp    byte = 0x83
	KindTopKResp      byte = 0x84
	KindSummaryResp   byte = 0x85
	KindError         byte = 0x86
	KindWindowSummary byte = 0x87
	KindExplainResp   byte = 0x88
)

// Error codes carried by Error frames.
const (
	// ErrCodeVersion: the Hello's magic or version was not acceptable.
	// Connection-level (seq 0); the server closes after sending it.
	ErrCodeVersion uint64 = 1
	// ErrCodeMalformed: a frame or body failed to parse. Connection-level
	// (seq 0 when the request's seq could not be read); the server closes.
	ErrCodeMalformed uint64 = 2
	// ErrCodeOverload: the server's in-flight entry budget is exhausted;
	// the Insert was dropped (not applied). Retryable after backoff.
	ErrCodeOverload uint64 = 3
	// ErrCodeTooLarge: the Insert exceeds the server's batch cap.
	ErrCodeTooLarge uint64 = 4
	// ErrCodeRejected: the batch failed validation (out-of-bounds index,
	// mismatched slice lengths); nothing was applied.
	ErrCodeRejected uint64 = 5
	// ErrCodeClosed: the matrix is closed or the server is draining.
	ErrCodeClosed uint64 = 6
	// ErrCodeInternal: an ingest or query error on the server; the message
	// carries detail.
	ErrCodeInternal uint64 = 7
	// ErrCodeEvicted: the server disconnected this subscriber for falling
	// too far behind the seal summary stream (its push queue stayed full
	// past the server's patience). The connection closes after this frame;
	// the client may reconnect and re-subscribe, accepting the gap.
	ErrCodeEvicted uint64 = 8
)

// TopK axes.
const (
	AxisSources      byte = 0
	AxisDestinations byte = 1
)

// Frame is one decoded frame: its kind and its body bytes. The body slice
// is only valid until the reader's next call.
type Frame struct {
	Kind byte
	Body []byte
}

// Reader decodes a frame stream. It is not safe for concurrent use.
type Reader struct {
	br    *bufio.Reader
	buf   []byte
	bytes int64
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Bytes returns the total framed bytes consumed.
func (r *Reader) Bytes() int64 { return r.bytes }

// Next reads one frame. io.EOF means the stream ended cleanly on a frame
// boundary; a frame cut mid-way returns io.ErrUnexpectedEOF; a length
// prefix beyond MaxFrame (or of zero length — every frame has a kind)
// returns an ErrMalformed-wrapped error. The returned body aliases an
// internal buffer reused by the next call.
func (r *Reader) Next() (Frame, error) {
	length, n, err := wal.ReadUvarint(r.br)
	if err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return Frame{}, io.EOF // clean end: no bytes of a next frame
		}
		if errors.Is(err, io.EOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		if errors.Is(err, wal.ErrVarint) {
			return Frame{}, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		return Frame{}, err
	}
	if length == 0 {
		return Frame{}, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if length > MaxFrame {
		return Frame{}, fmt.Errorf("%w: frame length %d exceeds %d", ErrMalformed, length, MaxFrame)
	}
	if uint64(cap(r.buf)) < length {
		r.buf = make([]byte, length)
	}
	buf := r.buf[:length]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	r.bytes += int64(n) + int64(length)
	return Frame{Kind: buf[0], Body: buf[1:]}, nil
}

// Writer encodes frames onto an underlying writer, buffered: frames are
// sent at Flush (or when the buffer fills). It is not safe for concurrent
// use.
type Writer struct {
	bw    *bufio.Writer
	buf   []byte
	bytes int64
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Bytes returns the total framed bytes produced.
func (w *Writer) Bytes() int64 { return w.bytes }

// WriteFrame frames kind+body and buffers it.
func (w *Writer) WriteFrame(kind byte, body []byte) error {
	length := uint64(1 + len(body))
	if length > MaxFrame {
		return fmt.Errorf("%w: frame length %d exceeds %d", ErrMalformed, length, MaxFrame)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], length)
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	if err := w.bw.WriteByte(kind); err != nil {
		return err
	}
	if _, err := w.bw.Write(body); err != nil {
		return err
	}
	w.bytes += int64(n) + int64(length)
	return nil
}

// Flush sends every buffered frame to the transport.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Body builders and parsers. Builders append to a caller-owned buffer
// (pass buf[:0] to reuse); parsers reject truncated or trailing bytes with
// ErrMalformed-wrapped errors and never over-allocate.

// bodyReader parses uvarint fields off a body slice.
type bodyReader struct {
	b   []byte
	off int
}

func (r *bodyReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated field", ErrMalformed)
	}
	r.off += n
	return v, nil
}

func (r *bodyReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("%w: truncated field", ErrMalformed)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *bodyReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b)-r.off)
	}
	return nil
}

// AppendHello builds a Hello body: magic (4 bytes big-endian), version,
// session identifier (uvarint length + bytes; empty opts out of dedup),
// and the client's resume seq — the highest seq it believes acknowledged,
// 0 on a fresh session (informational: the server's own table decides).
func AppendHello(buf []byte, session string, resumeSeq uint64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, Magic)
	buf = binary.AppendUvarint(buf, Version)
	buf = binary.AppendUvarint(buf, uint64(len(session)))
	buf = append(buf, session...)
	return binary.AppendUvarint(buf, resumeSeq)
}

// ParseHello returns the client's protocol version, session identifier,
// and resume seq. When the magic and version parse but the session fields
// do not — the shape of an older client's shorter Hello — the version is
// still returned alongside the error, so a server can answer with a
// version refusal instead of a generic malformed-frame error.
func ParseHello(body []byte) (version uint64, session string, resumeSeq uint64, err error) {
	if len(body) < 4 {
		return 0, "", 0, fmt.Errorf("%w: hello too short", ErrMalformed)
	}
	if binary.BigEndian.Uint32(body) != Magic {
		return 0, "", 0, fmt.Errorf("%w: bad magic %#x", ErrMalformed, binary.BigEndian.Uint32(body))
	}
	r := bodyReader{b: body, off: 4}
	if version, err = r.uvarint(); err != nil {
		return 0, "", 0, err
	}
	n, err := r.uvarint()
	if err != nil {
		return version, "", 0, err
	}
	if n > MaxSession {
		return version, "", 0, fmt.Errorf("%w: session id %d bytes exceeds %d", ErrMalformed, n, MaxSession)
	}
	if n > uint64(len(body)-r.off) {
		return version, "", 0, fmt.Errorf("%w: truncated session id", ErrMalformed)
	}
	session = string(body[r.off : r.off+int(n)])
	r.off += int(n)
	if resumeSeq, err = r.uvarint(); err != nil {
		return version, "", 0, err
	}
	if err := r.done(); err != nil {
		return version, "", 0, err
	}
	return version, session, resumeSeq, nil
}

// Welcome is the server's half of the handshake.
type Welcome struct {
	Version uint64
	Dim     uint64 // matrix dimension
	Shards  uint64 // server-side shard count (informational)
	Durable bool   // inserts are write-ahead-logged; Flush acks durability
	// Window is the server's level-0 window duration in nanoseconds; 0
	// means the server is flat (not windowed). A windowed server accepts
	// InsertAt/Range*/Subscribe and refuses plain Insert; a flat server
	// the reverse. Clients also use it to cut timestamped batches at
	// window boundaries.
	Window uint64
	// LastSeq is the server's highest durably-applied insert seq for the
	// Hello's session (0 for a fresh or empty session): the client may
	// drop every unacked frame at or below it from its retransmit ring
	// and must retransmit everything above it. On a non-durable server it
	// is the highest accepted seq instead.
	//
	// LastSeq deliberately under-reports — it trails the accepted
	// frontier until a Flush/Checkpoint barrier, and after server
	// recovery it is the min over per-shard session tables — so it is
	// safe for trimming but NOT for choosing the next seq to send.
	LastSeq uint64
	// HighSeq is the seq-minting floor: the highest insert seq the
	// server's dedup state has ever recorded for the Hello's session, on
	// any shard (0 for a fresh or empty session). It is always >= LastSeq
	// and deliberately over-reports. A client resuming a session without
	// its in-memory retransmit ring (a fresh process) must mint new seqs
	// strictly above HighSeq; minting in (LastSeq, HighSeq] would collide
	// with seqs an earlier incarnation already used, and the server would
	// ack the new frames as duplicates without applying them.
	HighSeq uint64
}

// AppendWelcome builds a Welcome body.
func AppendWelcome(buf []byte, w Welcome) []byte {
	buf = binary.AppendUvarint(buf, w.Version)
	buf = binary.AppendUvarint(buf, w.Dim)
	buf = binary.AppendUvarint(buf, w.Shards)
	flags := byte(0)
	if w.Durable {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, w.Window)
	buf = binary.AppendUvarint(buf, w.LastSeq)
	return binary.AppendUvarint(buf, w.HighSeq)
}

// ParseWelcome decodes a Welcome body.
func ParseWelcome(body []byte) (Welcome, error) {
	var w Welcome
	r := bodyReader{b: body}
	var err error
	if w.Version, err = r.uvarint(); err != nil {
		return w, err
	}
	if w.Dim, err = r.uvarint(); err != nil {
		return w, err
	}
	if w.Shards, err = r.uvarint(); err != nil {
		return w, err
	}
	flags, err := r.byte()
	if err != nil {
		return w, err
	}
	if flags > 1 {
		return w, fmt.Errorf("%w: unknown welcome flags %#x", ErrMalformed, flags)
	}
	w.Durable = flags == 1
	if w.Window, err = r.uvarint(); err != nil {
		return w, err
	}
	if w.LastSeq, err = r.uvarint(); err != nil {
		return w, err
	}
	if w.HighSeq, err = r.uvarint(); err != nil {
		return w, err
	}
	return w, r.done()
}

// AppendInsert builds an Insert body: seq, then the batch in the WAL record
// codec. Batches beyond MaxBatch are refused (split them upstream).
func AppendInsert(buf []byte, seq uint64, rows, cols, vals []uint64) ([]byte, error) {
	if len(rows) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d entries exceeds %d", ErrMalformed, len(rows), MaxBatch)
	}
	buf = binary.AppendUvarint(buf, seq)
	return wal.AppendBatchRecord(buf, rows, cols, vals, func(v uint64) uint64 { return v }), nil
}

// ParseInsert decodes an Insert body into fresh slices. The batch's slice
// lengths always match; index bounds are the server's to validate. The
// server's reader loop uses ParseInsertBatch with pooled scratch instead.
func ParseInsert(body []byte) (seq uint64, rows, cols, vals []uint64, err error) {
	var b Batch
	if seq, err = ParseInsertBatch(body, &b); err != nil {
		return 0, nil, nil, nil, err
	}
	return seq, b.Rows, b.Cols, b.Vals, nil
}

// Batch is reusable decode scratch for Insert/InsertAt bodies: the three
// entry slices are overwritten by each ParseInsertBatch/ParseInsertAtBatch
// call, reusing their capacity. A Batch warmed to the connection's working
// batch size makes decode allocation-free, which is why the server pools
// them per connection instead of allocating per frame.
type Batch struct {
	Rows, Cols, Vals []uint64
}

// Len returns the number of entries in the decoded batch.
func (b *Batch) Len() int { return len(b.Rows) }

// errTruncatedCount is built once: the zero-allocation decode path must
// not construct error values per failure.
var errTruncatedCount = fmt.Errorf("%w: truncated batch count", ErrMalformed)

// errOversizeBatch and wrapMalformed live outside the noalloc parse path
// so their formatting allocations stay off it (errors are not steady
// state).
func errOversizeBatch(n uint64) error {
	return fmt.Errorf("%w: batch of %d entries exceeds %d", ErrMalformed, n, MaxBatch)
}

func wrapMalformed(err error) error {
	return fmt.Errorf("%w: %v", ErrMalformed, err)
}

// ParseInsertBatch decodes an Insert body into b, reusing its capacity.
// It allocates nothing once b has warmed to the working batch size.
//
//hhgb:noalloc
func ParseInsertBatch(body []byte, b *Batch) (seq uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, err
	}
	return seq, parseBatchBody(body[r.off:], b)
}

// parseBatchBody decodes the WAL-codec batch record that terminates an
// Insert/InsertAt body into b's scratch.
//
//hhgb:noalloc
func parseBatchBody(rec []byte, b *Batch) error {
	// Peek the batch count so an oversized batch errors before the WAL
	// decoder's (record-bounded, but larger) scratch growth.
	n, k := binary.Uvarint(rec)
	if k <= 0 {
		return errTruncatedCount
	}
	if n > MaxBatch {
		return errOversizeBatch(n)
	}
	rows, cols, vals, err := wal.DecodeBatchRecordInto(rec, b.Rows[:0], b.Cols[:0], b.Vals[:0], identU64)
	if err != nil {
		return wrapMalformed(err)
	}
	b.Rows, b.Cols, b.Vals = rows, cols, vals
	return nil
}

// identU64 is the value codec for uint64 payloads; a named function (not a
// closure) so taking its value never allocates.
func identU64(v uint64) uint64 { return v }

// AppendInsertAt builds an InsertAt body: seq, event timestamp (unix
// nanoseconds; every entry in the frame shares it, so the server routes
// the whole batch into one window), then the batch in the WAL record
// codec. Batches beyond MaxBatch are refused (split them upstream).
func AppendInsertAt(buf []byte, seq uint64, ts uint64, rows, cols, vals []uint64) ([]byte, error) {
	if len(rows) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d entries exceeds %d", ErrMalformed, len(rows), MaxBatch)
	}
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, ts)
	return wal.AppendBatchRecord(buf, rows, cols, vals, func(v uint64) uint64 { return v }), nil
}

// ParseInsertAt decodes an InsertAt body into fresh slices. The server's
// reader loop uses ParseInsertAtBatch with pooled scratch instead.
func ParseInsertAt(body []byte) (seq, ts uint64, rows, cols, vals []uint64, err error) {
	var b Batch
	if seq, ts, err = ParseInsertAtBatch(body, &b); err != nil {
		return 0, 0, nil, nil, nil, err
	}
	return seq, ts, b.Rows, b.Cols, b.Vals, nil
}

// ParseInsertAtBatch decodes an InsertAt body into b, reusing its
// capacity. It allocates nothing once b has warmed to the working batch
// size.
//
//hhgb:noalloc
func ParseInsertAtBatch(body []byte, b *Batch) (seq, ts uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	if ts, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	return seq, ts, parseBatchBody(body[r.off:], b)
}

// AppendRangeLookup builds a RangeLookup body: a Lookup restricted to the
// event-time range [t0, t1) (unix nanoseconds). Answered by LookupResp.
func AppendRangeLookup(buf []byte, seq, src, dst, t0, t1 uint64) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, src)
	buf = binary.AppendUvarint(buf, dst)
	buf = binary.AppendUvarint(buf, t0)
	return binary.AppendUvarint(buf, t1)
}

// ParseRangeLookup decodes a RangeLookup body.
func ParseRangeLookup(body []byte) (seq, src, dst, t0, t1 uint64, err error) {
	r := bodyReader{b: body}
	for _, p := range [...]*uint64{&seq, &src, &dst, &t0, &t1} {
		if *p, err = r.uvarint(); err != nil {
			return 0, 0, 0, 0, 0, err
		}
	}
	return seq, src, dst, t0, t1, r.done()
}

// AppendRangeTopK builds a RangeTopK body: a TopK restricted to [t0, t1).
// Answered by TopKResp.
func AppendRangeTopK(buf []byte, seq uint64, axis byte, k, t0, t1 uint64) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, axis)
	buf = binary.AppendUvarint(buf, k)
	buf = binary.AppendUvarint(buf, t0)
	return binary.AppendUvarint(buf, t1)
}

// ParseRangeTopK decodes a RangeTopK body.
func ParseRangeTopK(body []byte) (seq uint64, axis byte, k, t0, t1 uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return
	}
	if axis, err = r.byte(); err != nil {
		return
	}
	if axis > AxisDestinations {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: unknown axis %d", ErrMalformed, axis)
	}
	for _, p := range [...]*uint64{&k, &t0, &t1} {
		if *p, err = r.uvarint(); err != nil {
			return 0, 0, 0, 0, 0, err
		}
	}
	return seq, axis, k, t0, t1, r.done()
}

// AppendRangeSummary builds a RangeSummary body: the facade Summary over
// [t0, t1). Answered by SummaryResp.
func AppendRangeSummary(buf []byte, seq, t0, t1 uint64) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, t0)
	return binary.AppendUvarint(buf, t1)
}

// ParseRangeSummary decodes a RangeSummary body.
func ParseRangeSummary(body []byte) (seq, t0, t1 uint64, err error) {
	r := bodyReader{b: body}
	for _, p := range [...]*uint64{&seq, &t0, &t1} {
		if *p, err = r.uvarint(); err != nil {
			return 0, 0, 0, err
		}
	}
	return seq, t0, t1, r.done()
}

// SubscribeAllLevels is the Subscribe level wildcard: summaries of every
// hierarchy level.
const SubscribeAllLevels byte = 0xff

// AppendSubscribe builds a Subscribe body: the server acks it, then pushes
// one WindowSummary frame per sealed window of the requested level
// (SubscribeAllLevels = every level), tagged with this seq, until the
// connection closes.
func AppendSubscribe(buf []byte, seq uint64, level byte) []byte {
	buf = binary.AppendUvarint(buf, seq)
	return append(buf, level)
}

// ParseSubscribe decodes a Subscribe body.
func ParseSubscribe(body []byte) (seq uint64, level byte, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	if level, err = r.byte(); err != nil {
		return 0, 0, err
	}
	return seq, level, r.done()
}

// WindowSummary is the per-window digest a windowed server pushes to a
// subscribed connection when a window seals.
type WindowSummary struct {
	Sub          uint64 // the Subscribe request's seq
	Level        uint64 // 0 = finest
	Start, End   uint64 // event-time bounds, unix nanoseconds
	Entries      uint64 // distinct stored cells
	Sources      uint64 // non-empty rows
	Destinations uint64 // non-empty columns
	Packets      uint64 // sum of stored weights
}

// AppendWindowSummary builds a WindowSummary body.
func AppendWindowSummary(buf []byte, ws WindowSummary) []byte {
	for _, v := range [...]uint64{ws.Sub, ws.Level, ws.Start, ws.End, ws.Entries, ws.Sources, ws.Destinations, ws.Packets} {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// ParseWindowSummary decodes a WindowSummary body.
func ParseWindowSummary(body []byte) (WindowSummary, error) {
	var ws WindowSummary
	r := bodyReader{b: body}
	var err error
	for _, p := range [...]*uint64{&ws.Sub, &ws.Level, &ws.Start, &ws.End, &ws.Entries, &ws.Sources, &ws.Destinations, &ws.Packets} {
		if *p, err = r.uvarint(); err != nil {
			return ws, err
		}
	}
	return ws, r.done()
}

// AppendSeq builds the body shared by Flush, Checkpoint, Summary, Goodbye,
// and Ack frames: the sequence number alone.
func AppendSeq(buf []byte, seq uint64) []byte {
	return binary.AppendUvarint(buf, seq)
}

// ParseSeq decodes a seq-only body.
func ParseSeq(body []byte) (seq uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, err
	}
	return seq, r.done()
}

// AppendLookup builds a Lookup body.
func AppendLookup(buf []byte, seq, src, dst uint64) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, src)
	return binary.AppendUvarint(buf, dst)
}

// ParseLookup decodes a Lookup body.
func ParseLookup(body []byte) (seq, src, dst uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return
	}
	if src, err = r.uvarint(); err != nil {
		return
	}
	if dst, err = r.uvarint(); err != nil {
		return
	}
	return seq, src, dst, r.done()
}

// AppendLookupResp builds a LookupResp body.
func AppendLookupResp(buf []byte, seq uint64, found bool, value uint64) []byte {
	buf = binary.AppendUvarint(buf, seq)
	f := byte(0)
	if found {
		f = 1
	}
	buf = append(buf, f)
	return binary.AppendUvarint(buf, value)
}

// ParseLookupResp decodes a LookupResp body.
func ParseLookupResp(body []byte) (seq uint64, found bool, value uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return
	}
	f, err := r.byte()
	if err != nil {
		return 0, false, 0, err
	}
	if f > 1 {
		return 0, false, 0, fmt.Errorf("%w: bad found flag %#x", ErrMalformed, f)
	}
	if value, err = r.uvarint(); err != nil {
		return 0, false, 0, err
	}
	return seq, f == 1, value, r.done()
}

// AppendTopK builds a TopK body.
func AppendTopK(buf []byte, seq uint64, axis byte, k uint64) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, axis)
	return binary.AppendUvarint(buf, k)
}

// ParseTopK decodes a TopK body.
func ParseTopK(body []byte) (seq uint64, axis byte, k uint64, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return
	}
	if axis, err = r.byte(); err != nil {
		return
	}
	if axis > AxisDestinations {
		return 0, 0, 0, fmt.Errorf("%w: unknown axis %d", ErrMalformed, axis)
	}
	if k, err = r.uvarint(); err != nil {
		return
	}
	return seq, axis, k, r.done()
}

// Ranked is one TopKResp entry.
type Ranked struct {
	ID    uint64
	Value uint64
}

// AppendTopKResp builds a TopKResp body.
func AppendTopKResp(buf []byte, seq uint64, top []Ranked) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(top)))
	for _, t := range top {
		buf = binary.AppendUvarint(buf, t.ID)
		buf = binary.AppendUvarint(buf, t.Value)
	}
	return buf
}

// ParseTopKResp decodes a TopKResp body.
func ParseTopKResp(body []byte) (seq uint64, top []Ranked, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	// Each entry needs >= 2 bytes; bound n before allocating.
	if n > uint64(len(body)-r.off)/2 {
		return 0, nil, fmt.Errorf("%w: top-k count %d exceeds body", ErrMalformed, n)
	}
	top = make([]Ranked, n)
	for i := range top {
		if top[i].ID, err = r.uvarint(); err != nil {
			return 0, nil, err
		}
		if top[i].Value, err = r.uvarint(); err != nil {
			return 0, nil, err
		}
	}
	return seq, top, r.done()
}

// Summary mirrors the facade's Summary over the wire.
type Summary struct {
	Entries      uint64
	Sources      uint64
	Destinations uint64
	TotalPackets uint64
	MaxOutDegree uint64
	MaxInDegree  uint64
}

// AppendSummaryResp builds a SummaryResp body.
func AppendSummaryResp(buf []byte, seq uint64, s Summary) []byte {
	buf = binary.AppendUvarint(buf, seq)
	for _, v := range [...]uint64{s.Entries, s.Sources, s.Destinations, s.TotalPackets, s.MaxOutDegree, s.MaxInDegree} {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// ParseSummaryResp decodes a SummaryResp body.
func ParseSummaryResp(body []byte) (seq uint64, s Summary, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, s, err
	}
	for _, p := range [...]*uint64{&s.Entries, &s.Sources, &s.Destinations, &s.TotalPackets, &s.MaxOutDegree, &s.MaxInDegree} {
		if *p, err = r.uvarint(); err != nil {
			return 0, s, err
		}
	}
	return seq, s, r.done()
}

// MaxErrorMsg caps an Error frame's message length.
const MaxErrorMsg = 1 << 10

// AppendError builds an Error body. Messages are truncated to MaxErrorMsg.
func AppendError(buf []byte, seq, code uint64, msg string) []byte {
	if len(msg) > MaxErrorMsg {
		msg = msg[:MaxErrorMsg]
	}
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, code)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	return append(buf, msg...)
}

// ParseError decodes an Error body.
func ParseError(body []byte) (seq, code uint64, msg string, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return
	}
	if code, err = r.uvarint(); err != nil {
		return
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, 0, "", err
	}
	if n > MaxErrorMsg || n > uint64(len(body)-r.off) {
		return 0, 0, "", fmt.Errorf("%w: error message length %d exceeds body", ErrMalformed, n)
	}
	msg = string(body[r.off : r.off+int(n)])
	r.off += int(n)
	return seq, code, msg, r.done()
}

// ExplainReq is a decoded Explain request: one of the six query ops,
// wrapped. The server executes the wrapped query for real and answers
// with an ExplainResp carrying the structured trailer instead of the
// query's normal response.
type ExplainReq struct {
	Seq uint64
	// Op is the wrapped query kind: KindLookup, KindTopK, KindSummary,
	// or their Range variants. Only the fields that op defines are
	// meaningful; the body carries exactly those, in the op's own order.
	Op       byte
	Src, Dst uint64 // lookup ops
	Axis     byte   // top-k ops
	K        uint64 // top-k ops
	T0, T1   uint64 // range ops
}

// explainOpFields returns which field groups an explainable op carries.
func explainOpFields(op byte) (lookup, topk, ranged, ok bool) {
	switch op {
	case KindLookup:
		return true, false, false, true
	case KindTopK:
		return false, true, false, true
	case KindSummary:
		return false, false, false, true
	case KindRangeLookup:
		return true, false, true, true
	case KindRangeTopK:
		return false, true, true, true
	case KindRangeSummary:
		return false, false, true, true
	}
	return false, false, false, false
}

// AppendExplain builds an Explain body: uvarint seq, the wrapped op kind,
// then that op's own fields in its own order (minus the seq it would
// carry standalone). Ops outside the explainable six are refused.
func AppendExplain(buf []byte, q ExplainReq) ([]byte, error) {
	lookup, topk, ranged, ok := explainOpFields(q.Op)
	if !ok {
		return nil, fmt.Errorf("%w: op 0x%02x is not explainable", ErrMalformed, q.Op)
	}
	if topk && q.Axis > AxisDestinations {
		return nil, fmt.Errorf("%w: unknown axis %d", ErrMalformed, q.Axis)
	}
	buf = binary.AppendUvarint(buf, q.Seq)
	buf = append(buf, q.Op)
	if lookup {
		buf = binary.AppendUvarint(buf, q.Src)
		buf = binary.AppendUvarint(buf, q.Dst)
	}
	if topk {
		buf = append(buf, q.Axis)
		buf = binary.AppendUvarint(buf, q.K)
	}
	if ranged {
		buf = binary.AppendUvarint(buf, q.T0)
		buf = binary.AppendUvarint(buf, q.T1)
	}
	return buf, nil
}

// ParseExplain decodes an Explain body.
func ParseExplain(body []byte) (ExplainReq, error) {
	var q ExplainReq
	r := bodyReader{b: body}
	var err error
	if q.Seq, err = r.uvarint(); err != nil {
		return ExplainReq{}, err
	}
	if q.Op, err = r.byte(); err != nil {
		return ExplainReq{}, err
	}
	lookup, topk, ranged, ok := explainOpFields(q.Op)
	if !ok {
		return ExplainReq{}, fmt.Errorf("%w: op 0x%02x is not explainable", ErrMalformed, q.Op)
	}
	if lookup {
		if q.Src, err = r.uvarint(); err != nil {
			return ExplainReq{}, err
		}
		if q.Dst, err = r.uvarint(); err != nil {
			return ExplainReq{}, err
		}
	}
	if topk {
		if q.Axis, err = r.byte(); err != nil {
			return ExplainReq{}, err
		}
		if q.Axis > AxisDestinations {
			return ExplainReq{}, fmt.Errorf("%w: unknown axis %d", ErrMalformed, q.Axis)
		}
		if q.K, err = r.uvarint(); err != nil {
			return ExplainReq{}, err
		}
	}
	if ranged {
		if q.T0, err = r.uvarint(); err != nil {
			return ExplainReq{}, err
		}
		if q.T1, err = r.uvarint(); err != nil {
			return ExplainReq{}, err
		}
	}
	return q, r.done()
}

// ExplainLeg is one fan-out leg of an ExplainResp: the cover window it
// hit (level and event-time bounds; zeros on a flat server's single leg),
// the per-shard tasks it issued, and the leg's duration.
type ExplainLeg struct {
	Level      uint64
	Start, End uint64 // event-time bounds, unix nanoseconds
	Shards     uint64
	DurNanos   uint64
}

// ExplainSpan is one uncovered hole of an explained range query.
type ExplainSpan struct {
	Start, End uint64
}

// Explain is the structured trailer an ExplainResp carries: the cover the
// query was served from (one timed leg per window, in time order), the
// uncovered holes, the end-to-end execution time, and the shard
// pushdown-cache traffic observed around the query (best-effort under
// concurrent load — the counters are server-global).
type Explain struct {
	Op          byte
	TotalNanos  uint64
	Legs        []ExplainLeg
	Uncovered   []ExplainSpan
	CacheHits   uint64
	CacheMisses uint64
}

// AppendExplainResp builds an ExplainResp body.
func AppendExplainResp(buf []byte, seq uint64, e Explain) []byte {
	buf = binary.AppendUvarint(buf, seq)
	buf = append(buf, e.Op)
	buf = binary.AppendUvarint(buf, e.TotalNanos)
	buf = binary.AppendUvarint(buf, e.CacheHits)
	buf = binary.AppendUvarint(buf, e.CacheMisses)
	buf = binary.AppendUvarint(buf, uint64(len(e.Legs)))
	for _, l := range e.Legs {
		for _, v := range [...]uint64{l.Level, l.Start, l.End, l.Shards, l.DurNanos} {
			buf = binary.AppendUvarint(buf, v)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.Uncovered)))
	for _, s := range e.Uncovered {
		buf = binary.AppendUvarint(buf, s.Start)
		buf = binary.AppendUvarint(buf, s.End)
	}
	return buf
}

// ParseExplainResp decodes an ExplainResp body.
func ParseExplainResp(body []byte) (seq uint64, e Explain, err error) {
	r := bodyReader{b: body}
	if seq, err = r.uvarint(); err != nil {
		return 0, e, err
	}
	if e.Op, err = r.byte(); err != nil {
		return 0, Explain{}, err
	}
	if _, _, _, ok := explainOpFields(e.Op); !ok {
		return 0, Explain{}, fmt.Errorf("%w: op 0x%02x is not explainable", ErrMalformed, e.Op)
	}
	for _, p := range [...]*uint64{&e.TotalNanos, &e.CacheHits, &e.CacheMisses} {
		if *p, err = r.uvarint(); err != nil {
			return 0, Explain{}, err
		}
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, Explain{}, err
	}
	// Each leg needs >= 5 bytes; bound n before allocating.
	if n > uint64(len(body)-r.off)/5 {
		return 0, Explain{}, fmt.Errorf("%w: explain leg count %d exceeds body", ErrMalformed, n)
	}
	if n > 0 {
		e.Legs = make([]ExplainLeg, n)
	}
	for i := range e.Legs {
		l := &e.Legs[i]
		for _, p := range [...]*uint64{&l.Level, &l.Start, &l.End, &l.Shards, &l.DurNanos} {
			if *p, err = r.uvarint(); err != nil {
				return 0, Explain{}, err
			}
		}
	}
	n, err = r.uvarint()
	if err != nil {
		return 0, Explain{}, err
	}
	// Each hole needs >= 2 bytes.
	if n > uint64(len(body)-r.off)/2 {
		return 0, Explain{}, fmt.Errorf("%w: explain hole count %d exceeds body", ErrMalformed, n)
	}
	if n > 0 {
		e.Uncovered = make([]ExplainSpan, n)
	}
	for i := range e.Uncovered {
		if e.Uncovered[i].Start, err = r.uvarint(); err != nil {
			return 0, Explain{}, err
		}
		if e.Uncovered[i].End, err = r.uvarint(); err != nil {
			return 0, Explain{}, err
		}
	}
	return seq, e, r.done()
}
