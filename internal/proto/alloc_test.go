package proto

import "testing"

// The decode stage of the ingest hot path must not allocate once its
// scratch is warm: ParseInsertBatch and ParseInsertAtBatch decode into a
// caller-owned Batch whose slices are reused across frames. These budgets
// are load-bearing — a regression here multiplies into per-frame garbage
// on every producer connection — so they are pinned at exactly zero.

func insertBody(t testing.TB, n int) []byte {
	t.Helper()
	rows, cols, vals := make([]uint64, n), make([]uint64, n), make([]uint64, n)
	for i := range rows {
		rows[i] = uint64(i * 3)
		cols[i] = uint64(i*7 + 1)
		vals[i] = uint64(i + 1)
	}
	body, err := AppendInsert(nil, 42, rows, cols, vals)
	if err != nil {
		t.Fatalf("AppendInsert: %v", err)
	}
	return body
}

func TestAllocBudgetParseInsertBatch(t *testing.T) {
	body := insertBody(t, 256)
	var b Batch
	if _, err := ParseInsertBatch(body, &b); err != nil { // warm the scratch
		t.Fatalf("ParseInsertBatch: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseInsertBatch(body, &b); err != nil {
			t.Fatalf("ParseInsertBatch: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ParseInsertBatch allocates %.1f/op, budget is 0", allocs)
	}
}

func TestAllocBudgetParseInsertAtBatch(t *testing.T) {
	body := insertBody(t, 256)
	// An InsertAt body is seq ‖ ts ‖ record; splice a timestamp in by
	// re-encoding through the public helper.
	rows, cols, vals := make([]uint64, 256), make([]uint64, 256), make([]uint64, 256)
	for i := range rows {
		rows[i], cols[i], vals[i] = uint64(i), uint64(i+1), uint64(i+2)
	}
	body, err := AppendInsertAt(body[:0], 42, 99, rows, cols, vals)
	if err != nil {
		t.Fatalf("AppendInsertAt: %v", err)
	}
	var b Batch
	if _, _, err := ParseInsertAtBatch(body, &b); err != nil {
		t.Fatalf("ParseInsertAtBatch: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := ParseInsertAtBatch(body, &b); err != nil {
			t.Fatalf("ParseInsertAtBatch: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ParseInsertAtBatch allocates %.1f/op, budget is 0", allocs)
	}
}
