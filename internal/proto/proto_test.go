package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// roundTrip frames a body, reads it back, and returns the received frame.
func roundTrip(t *testing.T, kind byte, body []byte) Frame {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(kind, body); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r := NewReader(&buf)
	f, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if f.Kind != kind {
		t.Fatalf("kind = %#x, want %#x", f.Kind, kind)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("second Next = %v, want io.EOF", err)
	}
	return f
}

func TestHelloWelcomeRoundTrip(t *testing.T) {
	f := roundTrip(t, KindHello, AppendHello(nil, "sess-1", 42))
	v, session, resume, err := ParseHello(f.Body)
	if err != nil || v != Version || session != "sess-1" || resume != 42 {
		t.Fatalf("ParseHello = %d, %q, %d, %v", v, session, resume, err)
	}
	// The anonymous (empty-session) Hello round-trips too.
	v, session, resume, err = ParseHello(roundTrip(t, KindHello, AppendHello(nil, "", 0)).Body)
	if err != nil || v != Version || session != "" || resume != 0 {
		t.Fatalf("anonymous ParseHello = %d, %q, %d, %v", v, session, resume, err)
	}
	// An over-long session id is refused before allocating.
	long := strings.Repeat("s", MaxSession+1)
	if _, _, _, err := ParseHello(AppendHello(nil, long, 0)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized session = %v, want ErrMalformed", err)
	}

	in := Welcome{Version: Version, Dim: 1 << 32, Shards: 8, Durable: true, LastSeq: 7, HighSeq: 9}
	f = roundTrip(t, KindWelcome, AppendWelcome(nil, in))
	out, err := ParseWelcome(f.Body)
	if err != nil || out != in {
		t.Fatalf("ParseWelcome = %+v, %v; want %+v", out, err, in)
	}
}

// TestParseHelloReturnsVersionOnShortHello pins the property the server's
// version refusal relies on: a v2-shaped Hello (magic + version only, no
// session fields) fails to parse, but the version still comes back so the
// server can answer ErrCodeVersion instead of a generic malformed error.
func TestParseHelloReturnsVersionOnShortHello(t *testing.T) {
	v2 := binary.BigEndian.AppendUint32(nil, Magic)
	v2 = binary.AppendUvarint(v2, 2)
	v, _, _, err := ParseHello(v2)
	if err == nil {
		t.Fatal("v2 hello parsed without error")
	}
	if v != 2 {
		t.Fatalf("version = %d, want 2 alongside the error", v)
	}
	// Bad magic yields no version at all.
	if v, _, _, err := ParseHello([]byte{0, 1, 2, 3, 4}); err == nil || v != 0 {
		t.Fatalf("bad magic = %d, %v; want 0 and an error", v, err)
	}
}

func TestInsertRoundTrip(t *testing.T) {
	rows := []uint64{1, 1 << 40, 3}
	cols := []uint64{2, 5, 1<<64 - 1}
	vals := []uint64{1, 7, 9}
	body, err := AppendInsert(nil, 42, rows, cols, vals)
	if err != nil {
		t.Fatalf("AppendInsert: %v", err)
	}
	f := roundTrip(t, KindInsert, body)
	seq, r, c, v, err := ParseInsert(f.Body)
	if err != nil {
		t.Fatalf("ParseInsert: %v", err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d", seq)
	}
	for i := range rows {
		if r[i] != rows[i] || c[i] != cols[i] || v[i] != vals[i] {
			t.Fatalf("entry %d: (%d,%d,%d) != (%d,%d,%d)", i, r[i], c[i], v[i], rows[i], cols[i], vals[i])
		}
	}
}

func TestInsertOverMaxBatch(t *testing.T) {
	rows := make([]uint64, MaxBatch+1)
	if _, err := AppendInsert(nil, 1, rows, rows, rows); !errors.Is(err, ErrMalformed) {
		t.Fatalf("AppendInsert over cap = %v, want ErrMalformed", err)
	}
	// A hostile count larger than MaxBatch must error before allocating.
	body := binary.AppendUvarint(nil, 1)                   // seq
	body = binary.AppendUvarint(body, uint64(MaxBatch)*16) // count
	if _, _, _, _, err := ParseInsert(body); !errors.Is(err, ErrMalformed) {
		t.Fatalf("ParseInsert hostile count = %v, want ErrMalformed", err)
	}
}

func TestQueryBodiesRoundTrip(t *testing.T) {
	{
		f := roundTrip(t, KindLookup, AppendLookup(nil, 7, 11, 13))
		seq, src, dst, err := ParseLookup(f.Body)
		if err != nil || seq != 7 || src != 11 || dst != 13 {
			t.Fatalf("ParseLookup = %d,%d,%d,%v", seq, src, dst, err)
		}
	}
	{
		f := roundTrip(t, KindLookupResp, AppendLookupResp(nil, 7, true, 99))
		seq, found, v, err := ParseLookupResp(f.Body)
		if err != nil || seq != 7 || !found || v != 99 {
			t.Fatalf("ParseLookupResp = %d,%v,%d,%v", seq, found, v, err)
		}
	}
	{
		f := roundTrip(t, KindTopK, AppendTopK(nil, 8, AxisDestinations, 10))
		seq, axis, k, err := ParseTopK(f.Body)
		if err != nil || seq != 8 || axis != AxisDestinations || k != 10 {
			t.Fatalf("ParseTopK = %d,%d,%d,%v", seq, axis, k, err)
		}
	}
	{
		in := []Ranked{{ID: 3, Value: 100}, {ID: 9, Value: 50}}
		f := roundTrip(t, KindTopKResp, AppendTopKResp(nil, 8, in))
		seq, top, err := ParseTopKResp(f.Body)
		if err != nil || seq != 8 || len(top) != 2 || top[0] != in[0] || top[1] != in[1] {
			t.Fatalf("ParseTopKResp = %d,%v,%v", seq, top, err)
		}
	}
	{
		in := Summary{Entries: 1, Sources: 2, Destinations: 3, TotalPackets: 4, MaxOutDegree: 5, MaxInDegree: 6}
		f := roundTrip(t, KindSummaryResp, AppendSummaryResp(nil, 9, in))
		seq, out, err := ParseSummaryResp(f.Body)
		if err != nil || seq != 9 || out != in {
			t.Fatalf("ParseSummaryResp = %d,%+v,%v", seq, out, err)
		}
	}
	{
		f := roundTrip(t, KindError, AppendError(nil, 4, ErrCodeOverload, "busy"))
		seq, code, msg, err := ParseError(f.Body)
		if err != nil || seq != 4 || code != ErrCodeOverload || msg != "busy" {
			t.Fatalf("ParseError = %d,%d,%q,%v", seq, code, msg, err)
		}
	}
	{
		f := roundTrip(t, KindFlush, AppendSeq(nil, 12))
		seq, err := ParseSeq(f.Body)
		if err != nil || seq != 12 {
			t.Fatalf("ParseSeq = %d,%v", seq, err)
		}
	}
}

func TestTemporalBodiesRoundTrip(t *testing.T) {
	{
		rows := []uint64{1, 1 << 40}
		cols := []uint64{2, 5}
		vals := []uint64{1, 7}
		body, err := AppendInsertAt(nil, 42, 1_700_000_000_000_000_000, rows, cols, vals)
		if err != nil {
			t.Fatalf("AppendInsertAt: %v", err)
		}
		f := roundTrip(t, KindInsertAt, body)
		seq, ts, r, c, v, err := ParseInsertAt(f.Body)
		if err != nil || seq != 42 || ts != 1_700_000_000_000_000_000 {
			t.Fatalf("ParseInsertAt = %d,%d,%v", seq, ts, err)
		}
		for i := range rows {
			if r[i] != rows[i] || c[i] != cols[i] || v[i] != vals[i] {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	}
	{
		rows := make([]uint64, MaxBatch+1)
		if _, err := AppendInsertAt(nil, 1, 0, rows, rows, rows); !errors.Is(err, ErrMalformed) {
			t.Fatalf("AppendInsertAt over cap = %v, want ErrMalformed", err)
		}
		body := binary.AppendUvarint(nil, 1)                   // seq
		body = binary.AppendUvarint(body, 9)                   // ts
		body = binary.AppendUvarint(body, uint64(MaxBatch)*16) // count
		if _, _, _, _, _, err := ParseInsertAt(body); !errors.Is(err, ErrMalformed) {
			t.Fatalf("ParseInsertAt hostile count = %v, want ErrMalformed", err)
		}
	}
	{
		f := roundTrip(t, KindRangeLookup, AppendRangeLookup(nil, 7, 11, 13, 100, 200))
		seq, src, dst, t0, t1, err := ParseRangeLookup(f.Body)
		if err != nil || seq != 7 || src != 11 || dst != 13 || t0 != 100 || t1 != 200 {
			t.Fatalf("ParseRangeLookup = %d,%d,%d,%d,%d,%v", seq, src, dst, t0, t1, err)
		}
	}
	{
		f := roundTrip(t, KindRangeTopK, AppendRangeTopK(nil, 8, AxisSources, 10, 100, 200))
		seq, axis, k, t0, t1, err := ParseRangeTopK(f.Body)
		if err != nil || seq != 8 || axis != AxisSources || k != 10 || t0 != 100 || t1 != 200 {
			t.Fatalf("ParseRangeTopK = %d,%d,%d,%d,%d,%v", seq, axis, k, t0, t1, err)
		}
	}
	{
		f := roundTrip(t, KindRangeSummary, AppendRangeSummary(nil, 9, 100, 200))
		seq, t0, t1, err := ParseRangeSummary(f.Body)
		if err != nil || seq != 9 || t0 != 100 || t1 != 200 {
			t.Fatalf("ParseRangeSummary = %d,%d,%d,%v", seq, t0, t1, err)
		}
	}
	{
		f := roundTrip(t, KindSubscribe, AppendSubscribe(nil, 5, SubscribeAllLevels))
		seq, level, err := ParseSubscribe(f.Body)
		if err != nil || seq != 5 || level != SubscribeAllLevels {
			t.Fatalf("ParseSubscribe = %d,%d,%v", seq, level, err)
		}
	}
	{
		in := WindowSummary{Sub: 5, Level: 1, Start: 100, End: 200, Entries: 3, Sources: 2, Destinations: 3, Packets: 44}
		f := roundTrip(t, KindWindowSummary, AppendWindowSummary(nil, in))
		out, err := ParseWindowSummary(f.Body)
		if err != nil || out != in {
			t.Fatalf("ParseWindowSummary = %+v, %v; want %+v", out, err, in)
		}
	}
	// The Welcome window field survives the round trip for a windowed
	// server.
	in := Welcome{Version: Version, Dim: 1 << 24, Shards: 2, Window: 1_000_000_000}
	out, err := ParseWelcome(roundTrip(t, KindWelcome, AppendWelcome(nil, in)).Body)
	if err != nil || out != in {
		t.Fatalf("windowed Welcome = %+v, %v; want %+v", out, err, in)
	}
}

func TestReaderTornAndHostileFrames(t *testing.T) {
	// Clean EOF on an empty stream.
	if _, err := NewReader(strings.NewReader("")).Next(); err != io.EOF {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
	// A frame cut mid-length, mid-body.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(KindSummary, AppendSeq(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		if _, err := NewReader(bytes.NewReader(whole[:cut])).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// Oversized length prefix: error, not an allocation.
	huge := binary.AppendUvarint(nil, MaxFrame+1)
	if _, err := NewReader(bytes.NewReader(huge)).Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized frame = %v, want ErrMalformed", err)
	}
	// Zero-length frame: malformed (no kind byte).
	if _, err := NewReader(bytes.NewReader([]byte{0})).Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length frame = %v, want ErrMalformed", err)
	}
	// Non-terminating varint.
	bad := bytes.Repeat([]byte{0xff}, 11)
	if _, err := NewReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overlong varint = %v, want ErrMalformed", err)
	}
}

func TestWriterRefusesOversizedFrame(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(KindInsert, make([]byte, MaxFrame)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized WriteFrame = %v, want ErrMalformed", err)
	}
}

// TestParsersRejectTruncation walks every parser over every strict prefix
// of a valid body: each must error (never panic) and never succeed on a
// truncated body with trailing data absent.
func TestParsersRejectTruncation(t *testing.T) {
	insert, err := AppendInsert(nil, 3, []uint64{1, 2}, []uint64{3, 4}, []uint64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	insertAt, err := AppendInsertAt(nil, 3, 300, []uint64{1, 2}, []uint64{3, 4}, []uint64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		body  []byte
		parse func([]byte) error
	}{
		{"hello", AppendHello(nil, "sess", 300), func(b []byte) error { _, _, _, err := ParseHello(b); return err }},
		{"welcome", AppendWelcome(nil, Welcome{Version: 1, Dim: 10, Shards: 2}), func(b []byte) error { _, err := ParseWelcome(b); return err }},
		{"insert", insert, func(b []byte) error { _, _, _, _, err := ParseInsert(b); return err }},
		{"seq", AppendSeq(nil, 300), func(b []byte) error { _, err := ParseSeq(b); return err }},
		{"lookup", AppendLookup(nil, 1, 300, 400), func(b []byte) error { _, _, _, err := ParseLookup(b); return err }},
		{"lookupresp", AppendLookupResp(nil, 1, true, 300), func(b []byte) error { _, _, _, err := ParseLookupResp(b); return err }},
		{"topk", AppendTopK(nil, 1, AxisSources, 300), func(b []byte) error { _, _, _, err := ParseTopK(b); return err }},
		{"topkresp", AppendTopKResp(nil, 1, []Ranked{{300, 400}}), func(b []byte) error { _, _, err := ParseTopKResp(b); return err }},
		{"summaryresp", AppendSummaryResp(nil, 1, Summary{Entries: 300}), func(b []byte) error { _, _, err := ParseSummaryResp(b); return err }},
		{"error", AppendError(nil, 1, ErrCodeInternal, "boom"), func(b []byte) error { _, _, _, err := ParseError(b); return err }},
		{"insertat", insertAt, func(b []byte) error { _, _, _, _, _, err := ParseInsertAt(b); return err }},
		{"rangelookup", AppendRangeLookup(nil, 1, 300, 400, 500, 600), func(b []byte) error { _, _, _, _, _, err := ParseRangeLookup(b); return err }},
		{"rangetopk", AppendRangeTopK(nil, 1, AxisSources, 300, 400, 500), func(b []byte) error { _, _, _, _, _, err := ParseRangeTopK(b); return err }},
		{"rangesummary", AppendRangeSummary(nil, 1, 300, 400), func(b []byte) error { _, _, _, err := ParseRangeSummary(b); return err }},
		{"subscribe", AppendSubscribe(nil, 300, 0), func(b []byte) error { _, _, err := ParseSubscribe(b); return err }},
		{"windowsummary", AppendWindowSummary(nil, WindowSummary{Sub: 300, Start: 400, End: 500, Packets: 600}), func(b []byte) error { _, err := ParseWindowSummary(b); return err }},
	}
	for _, tc := range cases {
		if err := tc.parse(tc.body); err != nil {
			t.Fatalf("%s: whole body failed: %v", tc.name, err)
		}
		for cut := 0; cut < len(tc.body); cut++ {
			if err := tc.parse(tc.body[:cut]); err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes parsed without error", tc.name, cut, len(tc.body))
			}
		}
		// Trailing garbage must be rejected too.
		if err := tc.parse(append(append([]byte(nil), tc.body...), 0)); err == nil {
			t.Fatalf("%s: trailing byte parsed without error", tc.name)
		}
	}
}
