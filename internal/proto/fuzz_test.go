package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"hhgb/internal/pool"
	"hhgb/internal/wal"
)

// The fuzz targets assert the protocol-robustness contract: arbitrary
// bytes fed to the frame reader and every body parser must produce an
// error or a value — never a panic — and must never allocate more than the
// input could justify (the parsers bound counts by the remaining bytes
// before allocating; an out-of-memory abort here is a finding). CI runs
// each target for a short fixed time on every push.

// FuzzReaderNext streams arbitrary bytes through the frame reader until it
// errors or the stream is exhausted.
func FuzzReaderNext(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	body, _ := AppendInsert(nil, 1, []uint64{1, 2}, []uint64{3, 4}, []uint64{5, 6})
	_ = w.WriteFrame(KindInsert, body)
	_ = w.WriteFrame(KindFlush, AppendSeq(nil, 2))
	_ = w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			fr, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrMalformed) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(fr.Body) > MaxFrame {
				t.Fatalf("frame body %d exceeds MaxFrame", len(fr.Body))
			}
		}
	})
}

// FuzzParseInsert feeds arbitrary bodies to the insert parser — the one
// carrying attacker-sized batches.
func FuzzParseInsert(f *testing.F) {
	good, _ := AppendInsert(nil, 9, []uint64{1, 1 << 60}, []uint64{2, 3}, []uint64{1, 1})
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		seq, rows, cols, vals, err := ParseInsert(body)
		if err != nil {
			return
		}
		if len(rows) != len(cols) || len(rows) != len(vals) {
			t.Fatalf("uneven batch: %d/%d/%d", len(rows), len(cols), len(vals))
		}
		if len(rows) > MaxBatch {
			t.Fatalf("batch %d exceeds MaxBatch", len(rows))
		}
		_ = seq
	})
}

// FuzzParseBodies drives every remaining parser over the same corpus; all
// must be total (error, never panic).
func FuzzParseBodies(f *testing.F) {
	f.Add(AppendWelcome(nil, Welcome{Version: 1, Dim: 1 << 32, Shards: 4, Durable: true, Window: 1e9}))
	f.Add(AppendTopKResp(nil, 5, []Ranked{{1, 2}, {3, 4}}))
	f.Add(AppendSummaryResp(nil, 6, Summary{Entries: 10}))
	f.Add(AppendError(nil, 7, ErrCodeOverload, "overloaded"))
	f.Add(AppendHello(nil, "sess-fuzz", 42))
	f.Add(AppendRangeTopK(nil, 8, AxisSources, 10, 1e9, 2e9))
	f.Add(AppendSubscribe(nil, 9, SubscribeAllLevels))
	f.Add(AppendWindowSummary(nil, WindowSummary{Sub: 9, Start: 1e9, End: 2e9, Entries: 5, Packets: 50}))
	if ex, err := AppendExplain(nil, ExplainReq{Seq: 10, Op: KindRangeTopK, Axis: AxisSources, K: 5, T0: 1e9, T1: 2e9}); err == nil {
		f.Add(ex)
	}
	f.Add(AppendExplainResp(nil, 11, Explain{Op: KindRangeSummary, TotalNanos: 5e6,
		Legs:      []ExplainLeg{{Start: 1e9, End: 2e9, Shards: 2, DurNanos: 1e6}},
		Uncovered: []ExplainSpan{{Start: 2e9, End: 3e9}}}))
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _, _, _ = ParseHello(body)
		_, _ = ParseWelcome(body)
		_, _ = ParseSeq(body)
		_, _, _, _ = ParseLookup(body)
		_, _, _, _ = ParseLookupResp(body)
		_, _, _, _ = ParseTopK(body)
		if _, top, err := ParseTopKResp(body); err == nil && len(top) > len(body) {
			t.Fatalf("top-k result larger than its encoding")
		}
		_, _, _ = ParseSummaryResp(body)
		_, _, _, _ = ParseError(body)
		_, _, _, _, _, _ = ParseRangeLookup(body)
		_, _, _, _, _, _ = ParseRangeTopK(body)
		_, _, _, _ = ParseRangeSummary(body)
		_, _, _ = ParseSubscribe(body)
		_, _ = ParseWindowSummary(body)
		_, _ = ParseExplain(body)
		if _, e, err := ParseExplainResp(body); err == nil && len(e.Legs)+len(e.Uncovered) > len(body) {
			t.Fatalf("explain trailer larger than its encoding")
		}
	})
}

// FuzzParseHello targets the handshake parser on its own — the one parser
// that must stay partially total: when the magic and version decode, the
// version must come back even if the session fields are torn, so a server
// can tell an old client from a hostile one. Seeds include a truncated
// session-bearing Hello (the wire shape of a v3 frame cut mid-session).
func FuzzParseHello(f *testing.F) {
	good := AppendHello(nil, "sess-fuzz", 1<<40)
	f.Add(good)
	f.Add(good[:6]) // cut inside the session length/body: v3 truncation
	f.Add(AppendHello(nil, "", 0))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		v, session, resume, err := ParseHello(body)
		if err != nil {
			if session != "" || resume != 0 {
				t.Fatalf("error path leaked session %q / resume %d", session, resume)
			}
			if v != 0 && len(body) < 5 {
				t.Fatalf("version %d from a %d-byte body", v, len(body))
			}
			return
		}
		if len(session) > MaxSession {
			t.Fatalf("session of %d bytes exceeds MaxSession", len(session))
		}
		_ = v
	})
}

// FuzzParseInsertAt covers the timestamped insert parser — like
// FuzzParseInsert, the body carrying attacker-sized batches.
func FuzzParseInsertAt(f *testing.F) {
	good, _ := AppendInsertAt(nil, 9, 1e9, []uint64{1, 1 << 60}, []uint64{2, 3}, []uint64{1, 1})
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _, rows, cols, vals, err := ParseInsertAt(body)
		if err != nil {
			return
		}
		if len(rows) != len(cols) || len(rows) != len(vals) {
			t.Fatalf("uneven batch: %d/%d/%d", len(rows), len(cols), len(vals))
		}
		if len(rows) > MaxBatch {
			t.Fatalf("batch %d exceeds MaxBatch", len(rows))
		}
	})
}

// fuzzBatchPool is the pooled scratch under test in
// FuzzBatchRecordPooledRoundtrip. It is package-level on purpose: scratch
// survives from one fuzz execution to the next, and the poison scrambles
// every returned batch — so if the pooled decode ever reads retained
// memory instead of the input bytes, the scrambled residue of a previous
// input diverges from the allocating reference and the fuzzer reports it.
var fuzzBatchPool = pool.NewChecked(4,
	func() *Batch { return new(Batch) },
	func(b *Batch) {
		for i := range b.Rows {
			b.Rows[i] = 0xA5A5A5A5A5A5A5A5
			b.Cols[i] = 0x5A5A5A5A5A5A5A5A
			b.Vals[i] = 0xDEADDEADDEADDEAD
		}
	})

// FuzzBatchRecordPooledRoundtrip drives the pooled batch-record path over
// arbitrary session-framed insert bodies (seq ‖ record): pooled decode
// must agree exactly with the allocating wal-level reference, a
// successful decode must re-encode to bytes that decode to the same batch
// and re-encode identically (a one-step fixed point — arbitrary inputs
// may use non-minimal varints, so only the re-encoding is canonical), and
// the leak-checked pool must stay balanced across every execution.
func FuzzBatchRecordPooledRoundtrip(f *testing.F) {
	good, _ := AppendInsert(nil, 9, []uint64{1, 1 << 60}, []uint64{2, 3}, []uint64{5, 6})
	f.Add(good)
	empty, _ := AppendInsert(nil, 1, nil, nil, nil)
	f.Add(empty)
	f.Add([]byte{})
	f.Add(good[:4])
	f.Fuzz(func(t *testing.T, body []byte) {
		b := fuzzBatchPool.Get()
		seq, err := ParseInsertBatch(body, b)
		if err == nil {
			// Cross-check against the allocating wal-level decoder on the
			// record past the seq header: same values, no dependence on
			// the poisoned scratch the pooled path decoded into.
			_, k := binary.Uvarint(body)
			refRows, refCols, refVals, werr := wal.DecodeBatchRecord(body[k:], identU64)
			if werr != nil {
				t.Fatalf("pooled parse ok, wal reference failed: %v", werr)
			}
			if !equalU64(b.Rows, refRows) || !equalU64(b.Cols, refCols) || !equalU64(b.Vals, refVals) {
				t.Fatalf("pooled decode diverges from wal reference (n=%d)", b.Len())
			}

			enc, eerr := AppendInsert(nil, seq, b.Rows, b.Cols, b.Vals)
			if eerr != nil {
				t.Fatalf("re-encode of a decoded batch failed: %v", eerr)
			}
			b2 := fuzzBatchPool.Get()
			seq2, perr := ParseInsertBatch(enc, b2)
			if perr != nil || seq2 != seq {
				t.Fatalf("re-encoded body failed to parse: seq=%d err=%v", seq2, perr)
			}
			if !equalU64(b.Rows, b2.Rows) || !equalU64(b.Cols, b2.Cols) || !equalU64(b.Vals, b2.Vals) {
				t.Fatalf("decode(encode(batch)) != batch")
			}
			enc2, eerr := AppendInsert(nil, seq2, b2.Rows, b2.Cols, b2.Vals)
			if eerr != nil || !bytes.Equal(enc, enc2) {
				t.Fatalf("re-encode is not a fixed point (err %v)", eerr)
			}
			fuzzBatchPool.Put(b2)
		}
		fuzzBatchPool.Put(b)
		if verr := fuzzBatchPool.Verify(); verr != nil {
			t.Fatalf("pool protocol violated: %v", verr)
		}
	})
}
