package proto

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The checked-in seed corpus under testdata/fuzz/<Target>/ gives CI's
// fixed-time fuzz runs coverage of every frame kind — including the
// temporal ones — from the first input, instead of rediscovering the
// format from zero each run. Go's fuzzer loads these files automatically
// as seed inputs for `go test` and `-fuzz` alike.
//
// Regenerate after protocol changes with:
//
//	go test ./internal/proto -run TestSeedCorpus -regen-corpus
//
// and commit the result; TestSeedCorpusIsFreshAndValid fails if the
// checked-in files drift from what the current builders produce.

var regenCorpus = flag.Bool("regen-corpus", false, "rewrite testdata/fuzz seed corpus files")

// corpusEntry encodes one seed in the Go fuzz corpus file format.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// decodeCorpusEntry parses the single-[]byte corpus file format back.
func decodeCorpusEntry(content []byte) ([]byte, error) {
	lines := strings.Split(strings.TrimSuffix(string(content), "\n"), "\n")
	if len(lines) != 2 || lines[0] != "go test fuzz v1" {
		return nil, fmt.Errorf("not a v1 single-value corpus file")
	}
	quoted, ok := strings.CutPrefix(lines[1], "[]byte(")
	if !ok {
		return nil, fmt.Errorf("corpus value is not a []byte literal")
	}
	quoted, ok = strings.CutSuffix(quoted, ")")
	if !ok {
		return nil, fmt.Errorf("corpus value is not a []byte literal")
	}
	s, err := strconv.Unquote(quoted)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// frames builds one frame stream from (kind, body) pairs.
func frames(t *testing.T, pairs ...any) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < len(pairs); i += 2 {
		if err := w.WriteFrame(pairs[i].(byte), pairs[i+1].([]byte)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// seedCorpus enumerates every seed file the corpus should hold, keyed by
// target and name. Bodies cover every frame kind of protocol version 3,
// including the session-bearing Hello/Welcome handshake.
func seedCorpus(t *testing.T) map[string]map[string][]byte {
	t.Helper()
	insert, err := AppendInsert(nil, 3, []uint64{1, 1 << 40}, []uint64{2, 1<<64 - 1}, []uint64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	insertAt, err := AppendInsertAt(nil, 4, 1_700_000_000_000_000_000, []uint64{7, 8}, []uint64{9, 10}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	emptyInsert, err := AppendInsert(nil, 1, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := AppendWindowSummary(nil, WindowSummary{Sub: 5, Level: 1, Start: 1e18, End: 2e18, Entries: 3, Sources: 2, Destinations: 3, Packets: 44})
	exReq, err := AppendExplain(nil, ExplainReq{Seq: 20, Op: KindRangeTopK, Axis: AxisSources, K: 5, T0: 1e18, T1: 2e18})
	if err != nil {
		t.Fatal(err)
	}
	exResp := AppendExplainResp(nil, 21, Explain{Op: KindRangeTopK, TotalNanos: 5e6, CacheHits: 3, CacheMisses: 1,
		Legs:      []ExplainLeg{{Level: 1, Start: 1e18, End: 1e18 + 1e9, Shards: 2, DurNanos: 1e6}},
		Uncovered: []ExplainSpan{{Start: 15e17, End: 16e17}}})
	return map[string]map[string][]byte{
		"FuzzReaderNext": {
			"handshake": frames(t, KindHello, AppendHello(nil, "seed-session", 41),
				KindWelcome, AppendWelcome(nil, Welcome{Version: Version, Dim: 1 << 32, Shards: 4, Durable: true, Window: 1e9, LastSeq: 41, HighSeq: 44})),
			"handshake-anon": frames(t, KindHello, AppendHello(nil, "", 0),
				KindWelcome, AppendWelcome(nil, Welcome{Version: Version, Dim: 1 << 20, Shards: 2})),
			"ingest": frames(t, KindInsert, insert, KindInsertAt, insertAt,
				KindFlush, AppendSeq(nil, 5), KindCheckpoint, AppendSeq(nil, 6), KindGoodbye, AppendSeq(nil, 7)),
			"queries": frames(t, KindLookup, AppendLookup(nil, 8, 11, 13),
				KindTopK, AppendTopK(nil, 9, AxisDestinations, 10),
				KindSummary, AppendSeq(nil, 10)),
			"temporal": frames(t, KindRangeLookup, AppendRangeLookup(nil, 11, 1, 2, 1e18, 2e18),
				KindRangeTopK, AppendRangeTopK(nil, 12, AxisSources, 10, 1e18, 2e18),
				KindRangeSummary, AppendRangeSummary(nil, 13, 1e18, 2e18),
				KindSubscribe, AppendSubscribe(nil, 14, SubscribeAllLevels)),
			"explain": frames(t, KindExplain, exReq, KindExplainResp, exResp),
			"responses": frames(t, KindAck, AppendSeq(nil, 15),
				KindLookupResp, AppendLookupResp(nil, 16, true, 99),
				KindTopKResp, AppendTopKResp(nil, 17, []Ranked{{1, 2}, {3, 4}}),
				KindSummaryResp, AppendSummaryResp(nil, 18, Summary{Entries: 10, TotalPackets: 55}),
				KindWindowSummary, ws,
				KindError, AppendError(nil, 19, ErrCodeOverload, "overloaded")),
		},
		"FuzzParseInsert": {
			"small": insert,
		},
		"FuzzParseInsertAt": {
			"small": insertAt,
		},
		"FuzzBatchRecordPooledRoundtrip": {
			"small":     insert,
			"empty":     emptyInsert,
			"truncated": insert[:4],
		},
		"FuzzParseHello": {
			"session":   AppendHello(nil, "seed-session", 41),
			"anonymous": AppendHello(nil, "", 0),
			"truncated": AppendHello(nil, "seed-session", 41)[:7],
		},
		"FuzzParseBodies": {
			"hello":         AppendHello(nil, "seed-session", 41),
			"welcome":       AppendWelcome(nil, Welcome{Version: Version, Dim: 1 << 24, Shards: 2, Window: 1e9, LastSeq: 41, HighSeq: 44}),
			"lookup":        AppendLookup(nil, 1, 2, 3),
			"lookupresp":    AppendLookupResp(nil, 1, true, 300),
			"topk":          AppendTopK(nil, 1, AxisSources, 5),
			"topkresp":      AppendTopKResp(nil, 1, []Ranked{{1, 100}}),
			"summaryresp":   AppendSummaryResp(nil, 1, Summary{Entries: 7, Sources: 2, Destinations: 3}),
			"error":         AppendError(nil, 1, ErrCodeRejected, "nope"),
			"rangelookup":   AppendRangeLookup(nil, 1, 2, 3, 1e18, 2e18),
			"rangetopk":     AppendRangeTopK(nil, 1, AxisDestinations, 10, 1e18, 2e18),
			"rangesummary":  AppendRangeSummary(nil, 1, 1e18, 2e18),
			"subscribe":     AppendSubscribe(nil, 1, 0),
			"windowsummary": ws,
			"explain":       exReq,
			"explainresp":   exResp,
		},
	}
}

// TestSeedCorpusIsFreshAndValid regenerates the corpus with -regen-corpus
// and otherwise verifies the checked-in files byte-match what the current
// builders produce (so corpus and protocol can never drift apart), that
// every FuzzReaderNext seed decodes as a clean frame stream, and that all
// of version 3's frame kinds — the temporal ones included — appear in the
// reader corpus.
func TestSeedCorpusIsFreshAndValid(t *testing.T) {
	want := seedCorpus(t)
	if *regenCorpus {
		for target, files := range want {
			dir := filepath.Join("testdata", "fuzz", target)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, data := range files {
				if err := os.WriteFile(filepath.Join(dir, "seed-"+name), corpusEntry(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	kinds := map[byte]bool{}
	for target, files := range want {
		for name, data := range files {
			path := filepath.Join("testdata", "fuzz", target, "seed-"+name)
			content, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (regenerate with -regen-corpus)", path, err)
			}
			got, err := decodeCorpusEntry(content)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s: checked-in seed differs from the current builder output (regenerate with -regen-corpus)", path)
			}
			if target != "FuzzReaderNext" {
				continue
			}
			r := NewReader(bytes.NewReader(got))
			for {
				f, err := r.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatalf("%s (%s): seed stream not cleanly framed: %v", path, name, err)
				}
				kinds[f.Kind] = true
			}
		}
	}
	for _, kind := range []byte{
		KindHello, KindInsert, KindFlush, KindCheckpoint, KindLookup, KindTopK,
		KindSummary, KindGoodbye, KindInsertAt, KindRangeLookup, KindRangeTopK,
		KindRangeSummary, KindSubscribe, KindWelcome, KindAck, KindLookupResp,
		KindTopKResp, KindSummaryResp, KindError, KindWindowSummary,
	} {
		if !kinds[kind] {
			t.Fatalf("no FuzzReaderNext seed covers frame kind %#x", kind)
		}
	}
}
