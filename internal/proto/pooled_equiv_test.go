package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// The pooled decode path (ParseInsertBatch into a reused Batch) must be
// bit-identical to the allocating reference (ParseInsert) on every input —
// including Batch reuse across frames of wildly different sizes, which is
// exactly the state a pooled batch accumulates in production. The test
// also re-encodes from the pooled result and demands the original bytes
// back, closing the loop on both directions of the codec.
func TestPooledInsertDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b Batch // deliberately reused across all iterations
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(300) // crosses the Batch's warm capacity both ways
		rows := make([]uint64, n)
		cols := make([]uint64, n)
		vals := make([]uint64, n)
		for i := 0; i < n; i++ {
			rows[i] = rng.Uint64() >> uint(rng.Intn(64))
			cols[i] = rng.Uint64() >> uint(rng.Intn(64))
			vals[i] = rng.Uint64() >> uint(rng.Intn(64))
		}
		seq := rng.Uint64()
		withTS := iter%2 == 1
		var body []byte
		var err error
		if withTS {
			body, err = AppendInsertAt(nil, seq, uint64(iter), rows, cols, vals)
		} else {
			body, err = AppendInsert(nil, seq, rows, cols, vals)
		}
		if err != nil {
			t.Fatalf("iter %d: encode: %v", iter, err)
		}

		var refSeq, refTS, gotSeq, gotTS uint64
		var refRows, refCols, refVals []uint64
		if withTS {
			refSeq, refTS, refRows, refCols, refVals, err = ParseInsertAt(body)
		} else {
			refSeq, refRows, refCols, refVals, err = ParseInsert(body)
		}
		if err != nil {
			t.Fatalf("iter %d: reference parse: %v", iter, err)
		}
		if withTS {
			gotSeq, gotTS, err = ParseInsertAtBatch(body, &b)
		} else {
			gotSeq, err = ParseInsertBatch(body, &b)
		}
		if err != nil {
			t.Fatalf("iter %d: pooled parse: %v", iter, err)
		}
		if gotSeq != refSeq || gotTS != refTS {
			t.Fatalf("iter %d: header = (%d, %d), want (%d, %d)", iter, gotSeq, gotTS, refSeq, refTS)
		}
		if !equalU64(b.Rows, refRows) || !equalU64(b.Cols, refCols) || !equalU64(b.Vals, refVals) {
			t.Fatalf("iter %d: pooled decode diverges from reference (n=%d)", iter, n)
		}

		// Round-trip: re-encode from the pooled batch; bytes must match.
		var re []byte
		if withTS {
			re, err = AppendInsertAt(nil, seq, uint64(iter), b.Rows, b.Cols, b.Vals)
		} else {
			re, err = AppendInsert(nil, seq, b.Rows, b.Cols, b.Vals)
		}
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", iter, err)
		}
		if !bytes.Equal(re, body) {
			t.Fatalf("iter %d: re-encode not byte-identical", iter)
		}
	}
}

// equalU64 treats nil and empty as equal — the reference parser returns
// nil slices for empty batches, the pooled one returns truncated scratch.
func equalU64(a, b []uint64) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// Malformed bodies must leave the pooled batch's scratch intact (so a
// failed decode cannot leak previous contents into the next success) and
// must fail with the same classification as the reference.
func TestPooledInsertDecodeErrorsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	good, err := AppendInsert(nil, 7, []uint64{1, 2}, []uint64{3, 4}, []uint64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for iter := 0; iter < 500; iter++ {
		body := append([]byte(nil), good...)
		body = body[:rng.Intn(len(body))] // truncate at a random point
		if len(body) > 0 && rng.Intn(2) == 0 {
			body[rng.Intn(len(body))] ^= 0xFF
		}
		_, _, _, _, refErr := ParseInsert(body)
		_, gotErr := ParseInsertBatch(body, &b)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("iter %d: reference err %v, pooled err %v", iter, refErr, gotErr)
		}
		if refErr == nil {
			// Re-verify the successful decode agrees.
			_, refRows, _, _, _ := ParseInsert(body)
			if !equalU64(b.Rows, refRows) {
				t.Fatalf("iter %d: decode divergence on mutated-but-valid body", iter)
			}
		}
	}
}
