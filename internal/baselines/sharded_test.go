package baselines

import (
	"sync"
	"testing"

	"hhgb/internal/gb"
)

// TestShardedEngineMatchesHier is the engine-level linearity invariant for
// the concurrent frontend: the merged sharded matrix equals the matrix a
// single hierarchical instance accumulates from the same stream.
func TestShardedEngineMatchesHier(t *testing.T) {
	stream := testStream(t, 15, 400)
	se, err := NewShardedGraphBLAS(testDim, []int{1 << 10, 1 << 14}, 4)
	if err != nil {
		t.Fatal(err)
	}
	he, err := NewHierGraphBLAS(testDim, []int{1 << 10, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	runEngine(t, se, stream)
	runEngine(t, he, stream)
	sq, err := se.Query()
	if err != nil {
		t.Fatal(err)
	}
	hq, err := he.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(sq, hq) {
		t.Fatal("sharded and hierarchical GraphBLAS diverged")
	}
	if se.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", se.NumShards())
	}
	if st := se.Stats(); st.Updates != se.Count() {
		t.Fatalf("merged stats Updates %d != Count %d", st.Updates, se.Count())
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedEngineConcurrentIngest exercises the one capability no other
// engine has: concurrent producers on a single instance.
func TestShardedEngineConcurrentIngest(t *testing.T) {
	se, err := NewShardedGraphBLAS(testDim, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 5
	stream := testStream(t, producers, 1000)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := se.Ingest(stream[p]); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	if se.Count() != int64(producers*1000) {
		t.Fatalf("Count = %d, want %d", se.Count(), producers*1000)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}
