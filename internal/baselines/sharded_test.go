package baselines

import (
	"sync"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
	"hhgb/internal/stats"
)

// TestShardedEngineMatchesHier is the engine-level linearity invariant for
// the concurrent frontend: the merged sharded matrix equals the matrix a
// single hierarchical instance accumulates from the same stream.
func TestShardedEngineMatchesHier(t *testing.T) {
	stream := testStream(t, 15, 400)
	se, err := NewShardedGraphBLAS(testDim, []int{1 << 10, 1 << 14}, 4)
	if err != nil {
		t.Fatal(err)
	}
	he, err := NewHierGraphBLAS(testDim, []int{1 << 10, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	runEngine(t, se, stream)
	runEngine(t, he, stream)
	sq, err := se.Query()
	if err != nil {
		t.Fatal(err)
	}
	hq, err := he.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(sq, hq) {
		t.Fatal("sharded and hierarchical GraphBLAS diverged")
	}
	if se.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", se.NumShards())
	}
	if st := se.Stats(); st.Updates != se.Count() {
		t.Fatalf("merged stats Updates %d != Count %d", st.Updates, se.Count())
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedEngineConcurrentIngest exercises the one capability no other
// engine has: concurrent producers on a single instance.
func TestShardedEngineConcurrentIngest(t *testing.T) {
	se, err := NewShardedGraphBLAS(testDim, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 5
	stream := testStream(t, producers, 1000)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := se.Ingest(stream[p]); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	if se.Count() != int64(producers*1000) {
		t.Fatalf("Count = %d, want %d", se.Count(), producers*1000)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedEnginePushdownQueries checks the pushdown accessors agree
// with the materialized query.
func TestShardedEnginePushdownQueries(t *testing.T) {
	e, err := NewShardedGraphBLAS(1<<24, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	g, err := powerlaw.NewRMAT(24, 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(g.Edges(5000)); err != nil {
		t.Fatal(err)
	}
	q, err := e.Query()
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.NVals()
	if err != nil {
		t.Fatal(err)
	}
	if n != q.NVals() {
		t.Fatalf("NVals = %d, materialized %d", n, q.NVals())
	}
	top, err := e.TopSources(5)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := stats.OutTraffic(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.SelectTopK(vec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != len(want) {
		t.Fatalf("top-k length %d, want %d", len(top), len(want))
	}
	for i := range top {
		if top[i] != want[i] {
			t.Fatalf("top[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
	if _, err := e.TopDestinations(5); err != nil {
		t.Fatal(err)
	}
	var hits int
	q.Iterate(func(i, j gb.Index, v uint64) bool {
		got, ok, err := e.Lookup(i, j)
		if err != nil || !ok || got != v {
			t.Fatalf("Lookup(%d,%d) = %d,%v,%v; want %d,true,nil", i, j, got, ok, err, v)
		}
		hits++
		return hits < 10
	})
}
