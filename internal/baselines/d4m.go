package baselines

import (
	"strconv"

	"hhgb/internal/assoc"
)

// d4mKey formats an integer id the way D4M traffic-matrix scripts do:
// a fixed-width decimal string, so lexicographic key order matches numeric
// order. The formatting cost is part of what the D4M baselines pay.
func d4mKey(prefix byte, id uint64) string {
	var buf [21]byte
	buf[0] = prefix
	s := strconv.AppendUint(buf[1:1], id, 10)
	// left-pad to width 20 with '0'
	pad := 20 - len(s)
	out := make([]byte, 21)
	out[0] = prefix
	for i := 1; i <= pad; i++ {
		out[i] = '0'
	}
	copy(out[1+pad:], s)
	return string(out)
}

// HierD4M is the paper's prior system [19], [24]: hierarchical D4M
// associative arrays with string row/column keys.
type HierD4M struct {
	h      *assoc.Hier
	count  int64
	closed bool
}

// DefaultD4MCuts mirrors the hierarchical D4M configuration: smaller cuts
// than the GraphBLAS cascade because each level carries string key lists.
func DefaultD4MCuts() []int { return []int{1 << 12, 1 << 16, 1 << 20} }

// NewHierD4M returns the engine; nil cuts select DefaultD4MCuts.
func NewHierD4M(cuts []int) (*HierD4M, error) {
	if cuts == nil {
		cuts = DefaultD4MCuts()
	}
	h, err := assoc.NewHier(cuts)
	if err != nil {
		return nil, err
	}
	return &HierD4M{h: h}, nil
}

// Name implements Engine.
func (e *HierD4M) Name() string { return "hier-d4m" }

// Ingest implements Engine.
func (e *HierD4M) Ingest(edges []Edge) error {
	if e.closed {
		return errClosed(e.Name())
	}
	rows := make([]string, len(edges))
	cols := make([]string, len(edges))
	vals := make([]float64, len(edges))
	for k, ed := range edges {
		rows[k] = d4mKey('r', uint64(ed.Row))
		cols[k] = d4mKey('c', uint64(ed.Col))
		vals[k] = float64(ed.Val)
	}
	if err := e.h.Update(rows, cols, vals); err != nil {
		return err
	}
	e.count += int64(len(edges))
	return nil
}

// Flush implements Engine (queries materialize on demand; nothing pending).
func (e *HierD4M) Flush() error {
	if e.closed {
		return errClosed(e.Name())
	}
	return nil
}

// Count implements Engine.
func (e *HierD4M) Count() int64 { return e.count }

// Close implements Engine.
func (e *HierD4M) Close() error {
	e.closed = true
	return nil
}

// QueryAssoc materializes the total associative array.
func (e *HierD4M) QueryAssoc() (*assoc.Assoc, error) { return e.h.Query() }

// AccumuloD4M is the D4M-over-Accumulo pipeline [25]: triples are encoded
// with D4M string keys, pre-summed client-side (the D4M batch combiner),
// then written through the Accumulo tablet-server model in large batches.
type AccumuloD4M struct {
	acc    *Accumulo
	count  int64
	closed bool
}

// NewAccumuloD4M returns the engine over a fresh Accumulo model.
func NewAccumuloD4M(cfg AccumuloConfig) (*AccumuloD4M, error) {
	acc, err := NewAccumulo(cfg)
	if err != nil {
		return nil, err
	}
	return &AccumuloD4M{acc: acc}, nil
}

// Name implements Engine.
func (e *AccumuloD4M) Name() string { return "accumulo-d4m" }

// Ingest implements Engine: client-side combine, then batched mutations.
func (e *AccumuloD4M) Ingest(edges []Edge) error {
	if e.closed {
		return errClosed(e.Name())
	}
	// D4M pre-aggregation: sum duplicate (row, col) pairs in the batch
	// before they reach the tablet server.
	combined := make(map[[2]uint64]uint64, len(edges))
	for _, ed := range edges {
		combined[[2]uint64{uint64(ed.Row), uint64(ed.Col)}] += ed.Val
	}
	for key, val := range combined {
		if err := e.acc.mutate(d4mKey('r', key[0]), d4mKey('c', key[1]), val); err != nil {
			return err
		}
	}
	e.count += int64(len(edges))
	return e.acc.groupCommit()
}

// Flush implements Engine.
func (e *AccumuloD4M) Flush() error {
	if e.closed {
		return errClosed(e.Name())
	}
	return e.acc.Flush()
}

// Count implements Engine.
func (e *AccumuloD4M) Count() int64 { return e.count }

// Close implements Engine.
func (e *AccumuloD4M) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	return e.acc.Close()
}

// Entries exposes the tablet model's distinct entry count for tests.
func (e *AccumuloD4M) Entries() int { return e.acc.Entries() }
