package baselines

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hhgb/internal/gb"
	"hhgb/internal/wal"
)

// CrateDBConfig sizes the distributed-SQL ingest model.
type CrateDBConfig struct {
	// Shards is the number of table shards rows hash onto.
	Shards int
	// RefreshEvery is the per-shard buffered row count that triggers a
	// segment refresh (sort + seal), Elasticsearch-style.
	RefreshEvery int
	// TranslogSink receives translog bytes; nil means io.Discard.
	TranslogSink io.Writer
}

// DefaultCrateDBConfig returns a laptop-scaled SQL-ingest model.
func DefaultCrateDBConfig() CrateDBConfig {
	return CrateDBConfig{Shards: 4, RefreshEvery: 50_000}
}

type crateRow struct {
	src, dst uint64
	cnt      uint64
}

type crateShard struct {
	translog *wal.Writer
	buffer   []crateRow
	segments [][]crateRow // sorted, sealed
	docids   map[string]int64
	terms    map[string]int32 // per-field term dictionary (src/dst postings)
	refresh  int64
}

// CrateDB models a distributed SQL store's ingest path: every batch is
// formatted into an INSERT statement, parsed back (the SQL layer cost),
// routed to shards by hash, appended to a per-shard translog, and made
// searchable by periodic segment refreshes that sort the buffered rows.
type CrateDB struct {
	cfg    CrateDBConfig
	shards []*crateShard
	count  int64
	closed bool
	stmts  int64
}

// NewCrateDB returns a fresh SQL-ingest model.
func NewCrateDB(cfg CrateDBConfig) (*CrateDB, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultCrateDBConfig().Shards
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = DefaultCrateDBConfig().RefreshEvery
	}
	sink := sinkOrDiscard(cfg.TranslogSink)
	c := &CrateDB{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &crateShard{
			translog: wal.NewWriter(sink),
			docids:   make(map[string]int64),
			terms:    make(map[string]int32),
		})
	}
	return c, nil
}

// stmtRows is the multi-row INSERT chunk size the client driver uses;
// real SQL ingest is bounded by statement size, not batch size.
const stmtRows = 100

// Name implements Engine.
func (c *CrateDB) Name() string { return "cratedb" }

// formatInsert renders the batch as a multi-row INSERT statement — the
// client-side serialization every SQL ingest pays.
func formatInsert(edges []Edge) string {
	var sb strings.Builder
	sb.Grow(64 + 40*len(edges))
	sb.WriteString("INSERT INTO traffic (src, dst, cnt) VALUES ")
	for k, ed := range edges {
		if k > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('(')
		sb.WriteString(strconv.FormatUint(uint64(ed.Row), 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(uint64(ed.Col), 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(ed.Val, 10))
		sb.WriteByte(')')
	}
	return sb.String()
}

// parseInsert parses the VALUES list back into rows — the server-side SQL
// parse/plan cost.
func parseInsert(stmt string) ([]crateRow, error) {
	_, values, ok := strings.Cut(stmt, "VALUES ")
	if !ok {
		return nil, fmt.Errorf("%w: malformed insert statement", gb.ErrInvalidValue)
	}
	var rows []crateRow
	for len(values) > 0 {
		open := strings.IndexByte(values, '(')
		close := strings.IndexByte(values, ')')
		if open != 0 || close < 0 {
			return nil, fmt.Errorf("%w: malformed values list", gb.ErrInvalidValue)
		}
		fields := strings.Split(values[1:close], ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: expected 3 columns, got %d", gb.ErrInvalidValue, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", gb.ErrInvalidValue, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", gb.ErrInvalidValue, err)
		}
		cnt, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", gb.ErrInvalidValue, err)
		}
		rows = append(rows, crateRow{src: src, dst: dst, cnt: cnt})
		values = values[close+1:]
		values = strings.TrimPrefix(values, ",")
	}
	return rows, nil
}

// Ingest implements Engine: the batch is chunked into bounded multi-row
// INSERT statements; each statement is formatted, parsed, routed, doc-id
// indexed, translogged and durably synced.
func (c *CrateDB) Ingest(edges []Edge) error {
	if c.closed {
		return errClosed(c.Name())
	}
	for start := 0; start < len(edges); start += stmtRows {
		end := start + stmtRows
		if end > len(edges) {
			end = len(edges)
		}
		if err := c.ingestStatement(edges[start:end]); err != nil {
			return err
		}
	}
	return nil
}

func (c *CrateDB) ingestStatement(edges []Edge) error {
	stmt := formatInsert(edges)
	rows, err := parseInsert(stmt)
	if err != nil {
		return err
	}
	c.stmts++
	var doc []byte
	for _, row := range rows {
		sh := c.shards[mix64(row.src)%uint64(len(c.shards))]
		// The translog stores the JSON _source document, not a packed
		// binary row — the document-store cost every row insert pays.
		doc = doc[:0]
		doc = append(doc, `{"src":`...)
		doc = strconv.AppendUint(doc, row.src, 10)
		doc = append(doc, `,"dst":`...)
		doc = strconv.AppendUint(doc, row.dst, 10)
		doc = append(doc, `,"cnt":`...)
		doc = strconv.AppendUint(doc, row.cnt, 10)
		doc = append(doc, '}')
		if err := sh.translog.Append(doc); err != nil {
			return err
		}
		// Every document gets a generated _id plus term-dictionary
		// entries for its indexed columns — the Lucene-style inverted
		// index every document insert maintains.
		seq := int64(len(sh.docids))
		id := strconv.FormatUint(mix64(row.src)^mix64(row.dst)^uint64(seq), 16)
		sh.docids[id] = seq
		var term []byte
		term = append(term[:0], "src:"...)
		term = strconv.AppendUint(term, row.src, 10)
		sh.terms[string(term)]++
		term = append(term[:0], "dst:"...)
		term = strconv.AppendUint(term, row.dst, 10)
		sh.terms[string(term)]++
		sh.buffer = append(sh.buffer, row)
		if len(sh.buffer) >= c.cfg.RefreshEvery {
			refreshShard(sh)
		}
	}
	// Statement-level durability point.
	for _, sh := range c.shards {
		if err := sh.translog.Sync(); err != nil {
			return err
		}
	}
	c.count += int64(len(rows))
	return nil
}

// refreshShard sorts and seals the buffered rows into a segment.
func refreshShard(sh *crateShard) {
	if len(sh.buffer) == 0 {
		return
	}
	seg := append([]crateRow(nil), sh.buffer...)
	sort.Slice(seg, func(i, j int) bool {
		if seg[i].src != seg[j].src {
			return seg[i].src < seg[j].src
		}
		return seg[i].dst < seg[j].dst
	})
	sh.segments = append(sh.segments, seg)
	sh.buffer = sh.buffer[:0]
	sh.refresh++
}

// Flush implements Engine: refresh every shard.
func (c *CrateDB) Flush() error {
	if c.closed {
		return errClosed(c.Name())
	}
	for _, sh := range c.shards {
		refreshShard(sh)
		if err := sh.translog.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Count implements Engine.
func (c *CrateDB) Count() int64 { return c.count }

// Close implements Engine.
func (c *CrateDB) Close() error {
	if c.closed {
		return nil
	}
	if err := c.Flush(); err != nil {
		return err
	}
	c.closed = true
	return nil
}

// Statements returns the number of INSERT statements processed.
func (c *CrateDB) Statements() int64 { return c.stmts }

// Rows returns the total rows stored across shards (buffered + sealed).
func (c *CrateDB) Rows() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh.buffer)
		for _, seg := range sh.segments {
			n += len(seg)
		}
	}
	return n
}

func put64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// mix64 is the splitmix64 finalizer, used for shard routing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
