package baselines

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hhgb/internal/gb"
)

// SciDBConfig sizes the chunked-array model.
type SciDBConfig struct {
	// ChunkSize is the per-dimension chunk edge length.
	ChunkSize uint64
	// CommitEvery is the number of ingested cells between synchronized
	// commits (SciDB's transactional array-version boundary).
	CommitEvery int
}

// DefaultSciDBConfig returns a laptop-scaled array-store model. The commit
// interval reflects SciDB's transactional array versioning: bulk loads
// commit in bounded slabs, each repacking every dirty chunk.
func DefaultSciDBConfig() SciDBConfig {
	return SciDBConfig{ChunkSize: 4096, CommitEvery: 25_000}
}

type chunkKey struct{ r, c uint64 }

// chunk buffers cell updates for one (r, c) chunk between commits.
type chunk struct {
	cells map[uint64]uint64 // offset within chunk -> value
	dirty bool
	// packed is the committed, sorted representation (RLE-style header +
	// cell stream), rebuilt at every commit the chunk participates in.
	packed []byte
}

// SciDB models a chunked multidimensional array store: cells route to
// chunks, chunks buffer updates in memory, and a synchronized commit
// sorts and re-packs every dirty chunk while stamping a new array version.
type SciDB struct {
	cfg         SciDBConfig
	chunks      map[chunkKey]*chunk
	sinceCommit int
	versions    int64
	count       int64
	closed      bool
}

// NewSciDB returns a fresh array-store model.
func NewSciDB(cfg SciDBConfig) (*SciDB, error) {
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultSciDBConfig().ChunkSize
	}
	if cfg.CommitEvery <= 0 {
		cfg.CommitEvery = DefaultSciDBConfig().CommitEvery
	}
	return &SciDB{cfg: cfg, chunks: make(map[chunkKey]*chunk)}, nil
}

// Name implements Engine.
func (s *SciDB) Name() string { return "scidb" }

// csvRoundTrip formats the batch as the CSV a SciDB loadcsv ingest consumes
// and parses it back — the import-path cost the SciDB benchmarking paper
// [26] measures (SciDB bulk ingest is CSV load, not a binary fast path).
func csvRoundTrip(edges []Edge) ([]Edge, error) {
	var sb strings.Builder
	sb.Grow(32 * len(edges))
	for _, ed := range edges {
		sb.WriteString(strconv.FormatUint(uint64(ed.Row), 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(uint64(ed.Col), 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatUint(ed.Val, 10))
		sb.WriteByte('\n')
	}
	out := make([]Edge, 0, len(edges))
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: malformed csv line %q", gb.ErrInvalidValue, line)
		}
		r, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", gb.ErrInvalidValue, err)
		}
		c, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", gb.ErrInvalidValue, err)
		}
		v, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", gb.ErrInvalidValue, err)
		}
		out = append(out, Edge{Row: gb.Index(r), Col: gb.Index(c), Val: v})
	}
	return out, nil
}

// Ingest implements Engine: CSV import, then chunk-routed cell updates.
func (s *SciDB) Ingest(edges []Edge) error {
	if s.closed {
		return errClosed(s.Name())
	}
	if len(edges) == 0 {
		return nil
	}
	edges, err := csvRoundTrip(edges)
	if err != nil {
		return err
	}
	cs := s.cfg.ChunkSize
	for _, ed := range edges {
		key := chunkKey{uint64(ed.Row) / cs, uint64(ed.Col) / cs}
		ch := s.chunks[key]
		if ch == nil {
			ch = &chunk{cells: make(map[uint64]uint64)}
			s.chunks[key] = ch
		}
		offset := (uint64(ed.Row)%cs)*cs + uint64(ed.Col)%cs
		ch.cells[offset] += ed.Val
		ch.dirty = true
		s.sinceCommit++
		if s.sinceCommit >= s.cfg.CommitEvery {
			s.commit()
		}
	}
	s.count += int64(len(edges))
	return nil
}

// commit is the synchronized array-version boundary: every dirty chunk is
// sorted and re-packed, and the version counter advances. The all-chunks
// sweep is the coordination cost that bounds SciDB's ingest rate.
func (s *SciDB) commit() {
	for _, ch := range s.chunks {
		if !ch.dirty {
			continue
		}
		offsets := make([]uint64, 0, len(ch.cells))
		for o := range ch.cells {
			offsets = append(offsets, o)
		}
		sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
		packed := make([]byte, 0, 16*len(offsets)+8)
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(offsets)))
		packed = append(packed, hdr[:]...)
		var word [8]byte
		for _, o := range offsets {
			binary.LittleEndian.PutUint64(word[:], o)
			packed = append(packed, word[:]...)
			binary.LittleEndian.PutUint64(word[:], ch.cells[o])
			packed = append(packed, word[:]...)
		}
		ch.packed = packed
		ch.dirty = false
	}
	s.versions++
	s.sinceCommit = 0
}

// Flush implements Engine: force a commit.
func (s *SciDB) Flush() error {
	if s.closed {
		return errClosed(s.Name())
	}
	s.commit()
	return nil
}

// Count implements Engine.
func (s *SciDB) Count() int64 { return s.count }

// Close implements Engine.
func (s *SciDB) Close() error {
	if s.closed {
		return nil
	}
	s.commit()
	s.closed = true
	return nil
}

// Versions returns the number of committed array versions.
func (s *SciDB) Versions() int64 { return s.versions }

// Entries returns the number of distinct cells stored.
func (s *SciDB) Entries() int {
	n := 0
	for _, ch := range s.chunks {
		n += len(ch.cells)
	}
	return n
}

// Lookup returns the accumulated value of a cell; used by tests.
func (s *SciDB) Lookup(row, col gb.Index) (uint64, bool) {
	cs := s.cfg.ChunkSize
	ch := s.chunks[chunkKey{uint64(row) / cs, uint64(col) / cs}]
	if ch == nil {
		return 0, false
	}
	v, ok := ch.cells[(uint64(row)%cs)*cs+uint64(col)%cs]
	return v, ok
}
