package baselines

import (
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

const testDim gb.Index = 1 << 22

// testStream returns a deterministic power-law batch stream.
func testStream(t testing.TB, batches, batchSize int) [][]Edge {
	t.Helper()
	g, err := powerlaw.NewRMAT(20, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]Edge, batches)
	for k := range out {
		out[k] = g.Edges(batchSize)
	}
	return out
}

// runEngine streams all batches through an engine and flushes.
func runEngine(t testing.TB, e Engine, stream [][]Edge) {
	t.Helper()
	for _, batch := range stream {
		if err := e.Ingest(batch); err != nil {
			t.Fatalf("%s: ingest: %v", e.Name(), err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("%s: flush: %v", e.Name(), err)
	}
}

func TestAllEnginesConserveCount(t *testing.T) {
	// Invariant 6 in DESIGN.md: every engine reports Count == Σ batches.
	stream := testStream(t, 20, 500)
	total := int64(20 * 500)
	for name, factory := range Registry(testDim) {
		e, err := factory()
		if err != nil {
			t.Fatalf("%s: factory: %v", name, err)
		}
		runEngine(t, e, stream)
		if e.Count() != total {
			t.Errorf("%s: Count = %d, want %d", name, e.Count(), total)
		}
		if e.Name() != name {
			t.Errorf("registry name %q != engine name %q", name, e.Name())
		}
		if err := e.Close(); err != nil {
			t.Errorf("%s: close: %v", name, err)
		}
		// Closed engines refuse further work.
		if err := e.Ingest(stream[0]); err == nil {
			t.Errorf("%s: ingest after close succeeded", name)
		}
		// Double close is a no-op.
		if err := e.Close(); err != nil {
			t.Errorf("%s: double close: %v", name, err)
		}
	}
}

func TestFig2OrderCoversRegistry(t *testing.T) {
	reg := Registry(testDim)
	for _, name := range Fig2Order() {
		if _, ok := reg[name]; !ok {
			t.Errorf("Fig2Order lists unknown engine %q", name)
		}
	}
	// flat-graphblas (the ablation) and sharded-graphblas (the concurrent
	// frontend, not a paper system) are intentionally not in Fig. 2.
	if len(Fig2Order()) != len(reg)-2 {
		t.Errorf("Fig2Order has %d engines, registry %d", len(Fig2Order()), len(reg))
	}
}

func TestGraphBLASEnginesAgree(t *testing.T) {
	// Hierarchical and flat GraphBLAS must produce identical matrices —
	// the linearity invariant surfaced at the engine level.
	stream := testStream(t, 15, 400)
	he, err := NewHierGraphBLAS(testDim, []int{1 << 10, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFlatGraphBLAS(testDim)
	if err != nil {
		t.Fatal(err)
	}
	runEngine(t, he, stream)
	runEngine(t, fe, stream)
	hq, err := he.Query()
	if err != nil {
		t.Fatal(err)
	}
	fq, err := fe.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(hq, fq) {
		t.Fatal("hierarchical and flat GraphBLAS diverged")
	}
	// Value mass equals update count (all weights are 1).
	mass, err := gb.ReduceScalar(hq, gb.Plus[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	if int64(mass) != he.Count() {
		t.Fatalf("mass %d != count %d", mass, he.Count())
	}
	if he.Stats().Cascades[0] == 0 {
		t.Fatal("hier engine never cascaded with tiny cuts")
	}
}

func TestHierD4MQueryMatchesMass(t *testing.T) {
	stream := testStream(t, 8, 200)
	e, err := NewHierD4M([]int{256})
	if err != nil {
		t.Fatal(err)
	}
	runEngine(t, e, stream)
	a, err := e.QueryAssoc()
	if err != nil {
		t.Fatal(err)
	}
	total, err := a.Total()
	if err != nil {
		t.Fatal(err)
	}
	if int64(total) != e.Count() {
		t.Fatalf("assoc mass %v != count %d", total, e.Count())
	}
}

func TestD4MKeyFixedWidthSorted(t *testing.T) {
	a := d4mKey('r', 5)
	b := d4mKey('r', 40)
	c := d4mKey('r', 12345678901234)
	if len(a) != 21 || len(b) != 21 || len(c) != 21 {
		t.Fatalf("widths %d/%d/%d", len(a), len(b), len(c))
	}
	// Lexicographic order must equal numeric order.
	if !(a < b && b < c) {
		t.Fatalf("key order broken: %q %q %q", a, b, c)
	}
	if a[0] != 'r' {
		t.Fatalf("prefix lost: %q", a)
	}
}

func TestAccumuloCombinesAndCompacts(t *testing.T) {
	cfg := DefaultAccumuloConfig()
	cfg.MemtableBytes = 64 << 10 // force frequent minor compactions
	cfg.MaxRuns = 3
	a, err := NewAccumulo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one key across many flush boundaries plus scatter traffic.
	g, _ := powerlaw.NewRMAT(18, 5)
	for step := 0; step < 20; step++ {
		batch := g.Edges(2000)
		for k := range batch {
			if k%10 == 0 {
				batch[k] = Edge{Row: 7, Col: 9, Val: 1}
			}
		}
		if err := a.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.Flushes() == 0 {
		t.Fatal("memtable never flushed despite tiny limit")
	}
	if a.Compactions() == 0 {
		t.Fatal("no major compaction despite MaxRuns=3")
	}
	// The hammered key must have accumulated exactly its hits across
	// memtable and runs (combining survived flush + compaction).
	v, ok := a.Lookup(d4mKey('r', 7), d4mKey('c', 9))
	if !ok {
		t.Fatal("hammered key missing")
	}
	if v != 20*200 {
		t.Fatalf("combined value = %d, want %d", v, 20*200)
	}
	if a.WALBytes() == 0 {
		t.Fatal("no WAL bytes framed")
	}
}

func TestAccumuloEntriesAfterCompaction(t *testing.T) {
	cfg := DefaultAccumuloConfig()
	cfg.MemtableBytes = 32 << 10
	cfg.MaxRuns = 2
	a, _ := NewAccumulo(cfg)
	edges := make([]Edge, 0, 3000)
	for k := 0; k < 3000; k++ {
		edges = append(edges, Edge{Row: gb.Index(uint64(k % 500)), Col: gb.Index(uint64(k % 100)), Val: 1})
	}
	if err := a.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := a.Entries(); got != 500 {
		t.Fatalf("entries = %d, want 500 distinct keys", got)
	}
}

func TestAccumuloD4MPreAggregates(t *testing.T) {
	e, err := NewAccumuloD4M(DefaultAccumuloConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1000 updates to the same key: client-side combine collapses them to
	// a single mutation per batch.
	batch := make([]Edge, 1000)
	for k := range batch {
		batch[k] = Edge{Row: 1, Col: 2, Val: 1}
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 1000 {
		t.Fatalf("count = %d", e.Count())
	}
	if e.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", e.Entries())
	}
	v, ok := e.acc.Lookup(d4mKey('r', 1), d4mKey('c', 2))
	if !ok || v != 1000 {
		t.Fatalf("value = %d, %v", v, ok)
	}
}

func TestSciDBChunksAndVersions(t *testing.T) {
	cfg := SciDBConfig{ChunkSize: 16, CommitEvery: 100}
	s, err := NewSciDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	for k := 0; k < 500; k++ {
		edges = append(edges, Edge{Row: gb.Index(uint64(k % 64)), Col: gb.Index(uint64(k % 32)), Val: 2})
	}
	if err := s.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	if s.Versions() < 4 {
		t.Fatalf("versions = %d, want >= 4 with CommitEvery=100", s.Versions())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Lookup(0, 0)
	if !ok {
		t.Fatal("cell (0,0) missing")
	}
	// k=0, 64 hit? k%64==0 && k%32==0 at k=0,64(row 0,col 0),128,... rows
	// repeat every 64: cells (0,0) receive k=0,192,384 → wait, col repeats
	// every 32. (0,0) gets k where k%64==0 and k%32==0: k=0,64,128,...
	// every 64 → ceil(500/64)=8 hits of value 2.
	if v != 16 {
		t.Fatalf("cell (0,0) = %d, want 16", v)
	}
	if s.Entries() != 64 {
		t.Fatalf("entries = %d, want 64 distinct cells", s.Entries())
	}
}

func TestCrateDBSQLRoundTripAndSharding(t *testing.T) {
	cfg := CrateDBConfig{Shards: 3, RefreshEvery: 100}
	c, err := NewCrateDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := powerlaw.NewRMAT(16, 9)
	for step := 0; step < 5; step++ {
		if err := c.Ingest(g.Edges(300)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1500 {
		t.Fatalf("count = %d", c.Count())
	}
	if c.Rows() != 1500 {
		t.Fatalf("rows = %d, want 1500", c.Rows())
	}
	// 300-row batches chunk into ceil(300/100) = 3 statements each.
	if c.Statements() != 15 {
		t.Fatalf("statements = %d, want 15", c.Statements())
	}
	// Empty batches are legal no-ops.
	if err := c.Ingest(nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseInsertRejectsMalformed(t *testing.T) {
	if _, err := parseInsert("DELETE FROM traffic"); err == nil {
		t.Fatal("malformed statement accepted")
	}
	if _, err := parseInsert("INSERT INTO traffic (src, dst, cnt) VALUES (1,2)"); err == nil {
		t.Fatal("two-column row accepted")
	}
	if _, err := parseInsert("INSERT INTO traffic (src, dst, cnt) VALUES (a,b,c)"); err == nil {
		t.Fatal("non-numeric row accepted")
	}
	rows, err := parseInsert(formatInsert([]Edge{{Row: 11, Col: 22, Val: 33}}))
	if err != nil || len(rows) != 1 || rows[0] != (crateRow{11, 22, 33}) {
		t.Fatalf("round trip: %v, %v", rows, err)
	}
}

func TestTPCCTransactionsAndIndex(t *testing.T) {
	cfg := TPCCConfig{TxnSize: 10}
	e, err := NewTPCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	for k := 0; k < 95; k++ {
		edges = append(edges, Edge{Row: gb.Index(uint64(k % 7)), Col: gb.Index(uint64(k % 5)), Val: 1})
	}
	if err := e.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	if e.Transactions() != 10 { // ceil(95/10)
		t.Fatalf("transactions = %d, want 10", e.Transactions())
	}
	if e.Rows() != 35 { // lcm(7,5) distinct keys
		t.Fatalf("rows = %d, want 35", e.Rows())
	}
	v, ok := e.Lookup(0, 0)
	if !ok || v != 3 { // k = 0, 35, 70
		t.Fatalf("key (0,0) = %d, %v; want 3", v, ok)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineRelativeOrdering(t *testing.T) {
	// The qualitative Fig. 2 claim at single-process scale: hierarchical
	// GraphBLAS must ingest the same stream faster than hierarchical D4M,
	// which must beat the OLTP model. (Coarse 3-point ordering check;
	// the full sweep lives in the benchmark harness.)
	if testing.Short() {
		t.Skip("ordering check is timing-based")
	}
	stream := testStream(t, 25, 2000)
	timeOf := func(factory Factory) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ { // rep 0 is warmup; keep the min of the rest
			e, err := factory()
			if err != nil {
				t.Fatal(err)
			}
			start := nowSeconds()
			runEngine(t, e, stream)
			elapsed := nowSeconds() - start
			if rep == 0 {
				continue
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best
	}
	reg := Registry(testDim)
	tHier := timeOf(reg["hier-graphblas"])
	tD4M := timeOf(reg["hier-d4m"])
	tTPCC := timeOf(reg["tpcc"])
	if !(tHier < tD4M) {
		t.Errorf("hier-graphblas (%.4fs) not faster than hier-d4m (%.4fs)", tHier, tD4M)
	}
	if !(tHier < tTPCC) {
		t.Errorf("hier-graphblas (%.4fs) not faster than tpcc (%.4fs)", tHier, tTPCC)
	}
}
