package baselines

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"

	"hhgb/internal/gb"
	"hhgb/internal/skiplist"
	"hhgb/internal/wal"
)

// AccumuloConfig sizes the tablet-server model.
type AccumuloConfig struct {
	// MemtableBytes is the in-memory map size that triggers a minor
	// compaction (flush to a sorted run).
	MemtableBytes int64
	// MaxRuns is the number of flushed runs that triggers a merging
	// (major) compaction.
	MaxRuns int
	// LogSyncEvery is the group-commit size in mutations for the raw
	// (continuous-ingest) engine.
	LogSyncEvery int
	// LogSink receives the write-ahead log bytes; nil means io.Discard
	// (the framing/CRC work is still performed).
	LogSink io.Writer
}

// DefaultAccumuloConfig returns a laptop-scaled tablet-server model.
func DefaultAccumuloConfig() AccumuloConfig {
	return AccumuloConfig{
		MemtableBytes: 4 << 20,
		MaxRuns:       10,
		LogSyncEvery:  1000,
	}
}

// run is one flushed, sorted immutable file (RFile analogue).
type run struct {
	keys []string
	vals []uint64
}

// Accumulo models a single tablet server's ingest path: mutations are
// framed into a CRC32 write-ahead log, inserted into an ordered memtable
// (skiplist) with a summing combiner, flushed to sorted runs when the
// memtable fills, and merge-compacted when runs accumulate.
type Accumulo struct {
	cfg      AccumuloConfig
	mem      *skiplist.List
	log      *wal.Writer
	runs     []run
	count    int64
	sinceLog int
	ts       int64
	closed   bool

	// model statistics
	flushes     int64
	compactions int64
}

// NewAccumulo returns a fresh tablet-server model.
func NewAccumulo(cfg AccumuloConfig) (*Accumulo, error) {
	if cfg.MemtableBytes <= 0 {
		cfg.MemtableBytes = DefaultAccumuloConfig().MemtableBytes
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = DefaultAccumuloConfig().MaxRuns
	}
	if cfg.LogSyncEvery <= 0 {
		cfg.LogSyncEvery = DefaultAccumuloConfig().LogSyncEvery
	}
	sink := sinkOrDiscard(cfg.LogSink)
	return &Accumulo{
		cfg: cfg,
		mem: skiplist.New(0x5eed),
		log: wal.NewWriter(sink),
	}, nil
}

// Name implements Engine.
func (a *Accumulo) Name() string { return "accumulo" }

var sumMerge = func(old, new []byte) []byte {
	x := binary.LittleEndian.Uint64(old)
	y := binary.LittleEndian.Uint64(new)
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], x+y)
	return out[:]
}

// mutate applies one mutation: WAL append + combining memtable insert.
func (a *Accumulo) mutate(rowKey, colQual string, val uint64) error {
	// Mutation wire format: row ‖ 0x00 ‖ colQual ‖ value.
	rec := make([]byte, 0, len(rowKey)+len(colQual)+9)
	rec = append(rec, rowKey...)
	rec = append(rec, 0)
	rec = append(rec, colQual...)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], val)
	rec = append(rec, v[:]...)
	if err := a.log.Append(rec); err != nil {
		return err
	}
	key := rec[:len(rowKey)+1+len(colQual)]
	a.mem.PutMerge(key, v[:], sumMerge)
	if a.mem.Bytes() > a.cfg.MemtableBytes {
		if err := a.flushMemtable(); err != nil {
			return err
		}
	}
	return nil
}

// groupCommit syncs the WAL — the batch-writer commit boundary.
func (a *Accumulo) groupCommit() error {
	a.sinceLog = 0
	return a.log.Sync()
}

// mutateFull is the continuous-ingest mutation path: unlike the D4M batch
// writer (which ships bare key/value pairs pre-summed client-side), every
// cell carries its full Accumulo metadata — column family, visibility
// label and a formatted timestamp — through the log and the memtable key.
func (a *Accumulo) mutateFull(rowKey, colQual string, val uint64, ts int64) error {
	const family = "deg"
	const visibility = "public|internal"
	rec := make([]byte, 0, len(rowKey)+len(family)+len(colQual)+len(visibility)+40)
	rec = append(rec, rowKey...)
	rec = append(rec, 0)
	rec = append(rec, family...)
	rec = append(rec, 0)
	rec = append(rec, colQual...)
	rec = append(rec, 0)
	rec = append(rec, visibility...)
	rec = append(rec, 0)
	rec = strconv.AppendInt(rec, ts, 10)
	rec = append(rec, 0)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], val)
	rec = append(rec, v[:]...)
	if err := a.log.Append(rec); err != nil {
		return err
	}
	// The memtable key carries row ‖ family ‖ qualifier (visibility and
	// timestamp resolve at combine time).
	key := make([]byte, 0, len(rowKey)+len(family)+len(colQual)+2)
	key = append(key, rowKey...)
	key = append(key, 0)
	key = append(key, family...)
	key = append(key, 0)
	key = append(key, colQual...)
	a.mem.PutMerge(key, v[:], sumMerge)
	if a.mem.Bytes() > a.cfg.MemtableBytes {
		return a.flushMemtable()
	}
	return nil
}

// Ingest implements Engine: the continuous-ingest client sends individual
// full-metadata mutations with periodic group commits (no client-side
// combining).
func (a *Accumulo) Ingest(edges []Edge) error {
	if a.closed {
		return errClosed(a.Name())
	}
	for _, ed := range edges {
		a.ts++
		if err := a.mutateFull(d4mKey('r', uint64(ed.Row)), d4mKey('c', uint64(ed.Col)), ed.Val, a.ts); err != nil {
			return err
		}
		a.sinceLog++
		if a.sinceLog >= a.cfg.LogSyncEvery {
			if err := a.groupCommit(); err != nil {
				return err
			}
		}
	}
	a.count += int64(len(edges))
	return nil
}

// flushMemtable performs a minor compaction: drain the ordered memtable
// into a sorted immutable run.
func (a *Accumulo) flushMemtable() error {
	if a.mem.Len() == 0 {
		return nil
	}
	if err := a.log.Sync(); err != nil {
		return err
	}
	r := run{
		keys: make([]string, 0, a.mem.Len()),
		vals: make([]uint64, 0, a.mem.Len()),
	}
	a.mem.Iterate(func(k, v []byte) bool {
		r.keys = append(r.keys, string(k))
		r.vals = append(r.vals, binary.LittleEndian.Uint64(v))
		return true
	})
	a.mem.Reset()
	a.runs = append(a.runs, r)
	a.flushes++
	if len(a.runs) > a.cfg.MaxRuns {
		a.compact()
	}
	return nil
}

// compact merge-sorts all runs into one, summing colliding keys — the
// major compaction with a summing combiner.
func (a *Accumulo) compact() {
	if len(a.runs) <= 1 {
		return
	}
	total := 0
	for _, r := range a.runs {
		total += len(r.keys)
	}
	type cursor struct{ run, pos int }
	cursors := make([]cursor, len(a.runs))
	for i := range cursors {
		cursors[i] = cursor{run: i}
	}
	out := run{keys: make([]string, 0, total), vals: make([]uint64, 0, total)}
	for {
		best := -1
		for i, c := range cursors {
			if c.pos >= len(a.runs[c.run].keys) {
				continue
			}
			if best == -1 || a.runs[c.run].keys[c.pos] < a.runs[cursors[best].run].keys[cursors[best].pos] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c := &cursors[best]
		k := a.runs[c.run].keys[c.pos]
		v := a.runs[c.run].vals[c.pos]
		c.pos++
		if n := len(out.keys); n > 0 && out.keys[n-1] == k {
			out.vals[n-1] += v
		} else {
			out.keys = append(out.keys, k)
			out.vals = append(out.vals, v)
		}
	}
	a.runs = []run{out}
	a.compactions++
}

// Flush implements Engine: minor-compact the memtable and sync the log.
func (a *Accumulo) Flush() error {
	if a.closed {
		return errClosed(a.Name())
	}
	if err := a.flushMemtable(); err != nil {
		return err
	}
	return a.log.Sync()
}

// Count implements Engine.
func (a *Accumulo) Count() int64 { return a.count }

// Close implements Engine.
func (a *Accumulo) Close() error {
	if a.closed {
		return nil
	}
	if err := a.Flush(); err != nil {
		return err
	}
	a.closed = true
	return nil
}

// Entries returns the number of distinct keys currently stored across the
// memtable and all runs (post-combining).
func (a *Accumulo) Entries() int {
	keys := make(map[string]struct{})
	a.mem.Iterate(func(k, _ []byte) bool {
		keys[string(k)] = struct{}{}
		return true
	})
	for _, r := range a.runs {
		for _, k := range r.keys {
			keys[k] = struct{}{}
		}
	}
	return len(keys)
}

// Lookup returns the summed value for a (row, col) pair across the
// memtable and runs, checking both the lean D4M key layout and the
// full-metadata continuous-ingest layout; used by tests.
func (a *Accumulo) Lookup(rowKey, colQual string) (uint64, bool) {
	lean := rowKey + "\x00" + colQual
	full := rowKey + "\x00deg\x00" + colQual
	var total uint64
	found := false
	for _, ks := range []string{lean, full} {
		if v, ok := a.mem.Get([]byte(ks)); ok {
			total += binary.LittleEndian.Uint64(v)
			found = true
		}
		for _, r := range a.runs {
			i := sort.SearchStrings(r.keys, ks)
			if i < len(r.keys) && r.keys[i] == ks {
				total += r.vals[i]
				found = true
			}
		}
	}
	return total, found
}

// Recover replays a write-ahead log produced by this model's mutation
// paths into the memtable, reconstructing the pre-crash in-memory state
// (flushed runs are durable files and survive on their own). Returns the
// number of mutations replayed. A clean EOF ends the replay; a corrupt
// frame — including the torn final frame a crash between Append and Sync
// leaves — aborts with an error wrapping wal.ErrCorrupt, the intact
// prefix already applied. Callers replaying a crash-cut log may treat
// that error as the end of the log (the sharded frontend's recovery does
// exactly this for each shard's newest segment; see shard.RecoverGroup).
func (a *Accumulo) Recover(r io.Reader) (int, error) {
	reader := wal.NewReader(r)
	replayed := 0
	for {
		rec, err := reader.Next()
		if err == io.EOF {
			return replayed, nil
		}
		if err != nil {
			return replayed, err
		}
		if len(rec) < 9 {
			return replayed, fmt.Errorf("%w: short wal record (%d bytes)", gb.ErrInvalidValue, len(rec))
		}
		// Both mutation layouts end with an 8-byte value; the key is
		// everything before it, minus the trailing timestamp field for
		// full-metadata records (detected by its visibility marker).
		val := rec[len(rec)-8:]
		key := rec[:len(rec)-8]
		// Full-metadata records: row ‖ 0 ‖ family ‖ 0 ‖ qual ‖ 0 ‖ vis ‖ 0 ‖ ts ‖ 0.
		// Their memtable key is row ‖ 0 ‖ family ‖ 0 ‖ qual.
		if n := bytes.Count(key, []byte{0}); n >= 5 {
			parts := bytes.SplitN(key, []byte{0}, 4)
			key = bytes.Join(parts[:3], []byte{0})
		}
		a.mem.PutMerge(key, val, sumMerge)
		replayed++
		if a.mem.Bytes() > a.cfg.MemtableBytes {
			if err := a.flushMemtable(); err != nil {
				return replayed, err
			}
		}
	}
}

// Flushes returns the number of minor compactions performed.
func (a *Accumulo) Flushes() int64 { return a.flushes }

// Compactions returns the number of major compactions performed.
func (a *Accumulo) Compactions() int64 { return a.compactions }

// WALBytes returns the number of log bytes framed.
func (a *Accumulo) WALBytes() int64 { return a.log.Bytes() }
