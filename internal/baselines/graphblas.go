package baselines

import (
	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

// HierGraphBLAS is the paper's system: a hierarchical hypersparse
// GraphBLAS matrix ingesting integer-keyed updates.
type HierGraphBLAS struct {
	m      *hier.Matrix[uint64]
	count  int64
	closed bool
	rows   []gb.Index
	cols   []gb.Index
	vals   []uint64
}

// NewHierGraphBLAS returns the engine over a dim x dim traffic matrix.
// A nil cuts slice selects the default 4-level geometric configuration.
func NewHierGraphBLAS(dim gb.Index, cuts []int) (*HierGraphBLAS, error) {
	cfg := hier.DefaultConfig()
	if cuts != nil {
		cfg = hier.Config{Cuts: cuts}
	}
	m, err := hier.New[uint64](dim, dim, cfg)
	if err != nil {
		return nil, err
	}
	return &HierGraphBLAS{m: m}, nil
}

// Name implements Engine.
func (e *HierGraphBLAS) Name() string { return "hier-graphblas" }

// Ingest implements Engine.
func (e *HierGraphBLAS) Ingest(edges []Edge) error {
	if e.closed {
		return errClosed(e.Name())
	}
	e.rows = e.rows[:0]
	e.cols = e.cols[:0]
	e.vals = e.vals[:0]
	for _, ed := range edges {
		e.rows = append(e.rows, ed.Row)
		e.cols = append(e.cols, ed.Col)
		e.vals = append(e.vals, ed.Val)
	}
	if err := e.m.Update(e.rows, e.cols, e.vals); err != nil {
		return err
	}
	e.count += int64(len(edges))
	return nil
}

// Flush implements Engine.
func (e *HierGraphBLAS) Flush() error {
	if e.closed {
		return errClosed(e.Name())
	}
	_, err := e.m.Flush()
	return err
}

// Count implements Engine.
func (e *HierGraphBLAS) Count() int64 { return e.count }

// Close implements Engine.
func (e *HierGraphBLAS) Close() error {
	if e.closed {
		return nil
	}
	if err := e.Flush(); err != nil {
		return err
	}
	e.closed = true
	return nil
}

// Query implements Queryable.
func (e *HierGraphBLAS) Query() (*gb.Matrix[uint64], error) { return e.m.Query() }

// Stats exposes the cascade counters for analysis.
func (e *HierGraphBLAS) Stats() hier.Stats { return e.m.Stats() }

// FlatGraphBLAS is the no-hierarchy ablation: the same hypersparse
// substrate, materialized after every batch (as a flat in-memory store
// serving queries must be).
type FlatGraphBLAS struct {
	m      *gb.Matrix[uint64]
	count  int64
	closed bool
	rows   []gb.Index
	cols   []gb.Index
	vals   []uint64
}

// NewFlatGraphBLAS returns the flat-ingest engine over a dim x dim matrix.
func NewFlatGraphBLAS(dim gb.Index) (*FlatGraphBLAS, error) {
	m, err := gb.NewMatrix[uint64](dim, dim)
	if err != nil {
		return nil, err
	}
	return &FlatGraphBLAS{m: m}, nil
}

// Name implements Engine.
func (e *FlatGraphBLAS) Name() string { return "flat-graphblas" }

// Ingest implements Engine.
func (e *FlatGraphBLAS) Ingest(edges []Edge) error {
	if e.closed {
		return errClosed(e.Name())
	}
	e.rows = e.rows[:0]
	e.cols = e.cols[:0]
	e.vals = e.vals[:0]
	for _, ed := range edges {
		e.rows = append(e.rows, ed.Row)
		e.cols = append(e.cols, ed.Col)
		e.vals = append(e.vals, ed.Val)
	}
	if err := e.m.AppendTuples(e.rows, e.cols, e.vals); err != nil {
		return err
	}
	e.m.Wait() // the flat store merges every batch into the full structure
	e.count += int64(len(edges))
	return nil
}

// Flush implements Engine.
func (e *FlatGraphBLAS) Flush() error {
	if e.closed {
		return errClosed(e.Name())
	}
	e.m.Wait()
	return nil
}

// Count implements Engine.
func (e *FlatGraphBLAS) Count() int64 { return e.count }

// Close implements Engine.
func (e *FlatGraphBLAS) Close() error {
	if e.closed {
		return nil
	}
	e.m.Wait()
	e.closed = true
	return nil
}

// Query implements Queryable.
func (e *FlatGraphBLAS) Query() (*gb.Matrix[uint64], error) { return e.m.Dup(), nil }
