package baselines

import (
	"io"
	"os"
	"testing"

	"hhgb/internal/powerlaw"
)

// TestEnginesQuiet pins that no engine chatters on stdout or stderr
// during normal operation: benchmark harnesses parse their own output,
// and a baseline model that logs per-batch would both corrupt piped
// results and distort the timing it exists to measure. Diagnostic byte
// streams (WAL, translog, redo) go only to the injected sinks, which
// default to io.Discard via sinkOrDiscard.
func TestEnginesQuiet(t *testing.T) {
	// The engines run in-process, so swap the real file descriptors'
	// os.File handles; restore them whatever happens.
	capture := func() (restore func() (stdout, stderr string)) {
		or, ow, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		er, ew, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		oldOut, oldErr := os.Stdout, os.Stderr
		os.Stdout, os.Stderr = ow, ew
		return func() (string, string) {
			os.Stdout, os.Stderr = oldOut, oldErr
			ow.Close()
			ew.Close()
			ob, _ := io.ReadAll(or)
			eb, _ := io.ReadAll(er)
			or.Close()
			er.Close()
			return string(ob), string(eb)
		}
	}

	gen, err := powerlaw.NewRMAT(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]Edge, 512)
	for i := range edges {
		edges[i] = gen.Edge()
	}

	for name, factory := range Registry(1 << 10) {
		t.Run(name, func(t *testing.T) {
			restore := capture()
			runErr := func() error {
				e, err := factory()
				if err != nil {
					return err
				}
				for i := 0; i < len(edges); i += 128 {
					if err := e.Ingest(edges[i : i+128]); err != nil {
						return err
					}
				}
				if err := e.Flush(); err != nil {
					return err
				}
				return e.Close()
			}()
			stdout, stderr := restore()
			if runErr != nil {
				t.Fatal(runErr)
			}
			if stdout != "" {
				t.Errorf("engine %s wrote to stdout: %q", name, stdout)
			}
			if stderr != "" {
				t.Errorf("engine %s wrote to stderr: %q", name, stderr)
			}
		})
	}
}
