package baselines

import (
	"hash/crc32"
	"io"
	"sync"

	"hhgb/internal/btree"
	"hhgb/internal/wal"
)

// TPCCConfig sizes the OLTP row-store model.
type TPCCConfig struct {
	// TxnSize is the number of row inserts per transaction (TPC-C
	// new-order writes ~10 order lines per transaction).
	TxnSize int
	// RedoSink receives redo-log bytes; nil means io.Discard.
	RedoSink io.Writer
}

// DefaultTPCCConfig returns the standard model configuration.
func DefaultTPCCConfig() TPCCConfig {
	return TPCCConfig{TxnSize: 10}
}

// TPCC models an Oracle-style OLTP row store running an insert-heavy
// TPC-C-like workload. Each row insert pays the full relational path:
// SQL-layer row formatting and parsing, an undo record, a redo record,
// primary and secondary B+tree index maintenance; each transaction takes a
// lock and commit forces the redo group to storage. Per-row relational
// overhead plus per-transaction durability is what pins this engine to the
// bottom of Fig. 2.
type TPCC struct {
	cfg      TPCCConfig
	tree     *btree.Tree // primary index (row, col)
	byCol    *btree.Tree // secondary index (col, row)
	redo     *wal.Writer
	undo     *wal.Writer
	lock     sync.Mutex
	block    [8192]byte // buffer-pool page image
	blockCRC uint32
	count    int64
	txns     int64
	closed   bool
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// NewTPCC returns a fresh OLTP model.
func NewTPCC(cfg TPCCConfig) (*TPCC, error) {
	if cfg.TxnSize <= 0 {
		cfg.TxnSize = DefaultTPCCConfig().TxnSize
	}
	sink := sinkOrDiscard(cfg.RedoSink)
	return &TPCC{
		cfg:   cfg,
		tree:  btree.New(),
		byCol: btree.New(),
		redo:  wal.NewWriter(sink),
		undo:  wal.NewWriter(io.Discard),
	}, nil
}

// Name implements Engine.
func (t *TPCC) Name() string { return "tpcc" }

// redoRecord renders a fixed-layout 48-byte redo entry (header + row).
func redoRecord(buf []byte, row, col, val uint64, txn int64) []byte {
	buf = buf[:0]
	var w [8]byte
	for _, v := range [...]uint64{0x5245444f_5245434f /* "REDORECO" */, uint64(txn), row, col, val, 0} {
		put64(w[:], v)
		buf = append(buf, w[:]...)
	}
	return buf
}

// sqlRow renders and re-parses the row through the SQL layer, returning
// the parsed values. The format/parse round trip models statement
// processing, bind handling and row formatting.
func sqlRow(ed Edge) (row, col, val uint64, err error) {
	stmt := formatInsert([]Edge{ed})
	rows, err := parseInsert(stmt)
	if err != nil {
		return 0, 0, 0, err
	}
	return rows[0].src, rows[0].dst, rows[0].cnt, nil
}

// Ingest implements Engine: rows are grouped into transactions; each
// transaction acquires the lock, pushes every row through the SQL layer,
// writes undo + redo, maintains both indexes, and commits by syncing the
// redo group.
func (t *TPCC) Ingest(edges []Edge) error {
	if t.closed {
		return errClosed(t.Name())
	}
	add := func(old, new uint64) uint64 { return old + new }
	rec := make([]byte, 0, 48)
	for start := 0; start < len(edges); start += t.cfg.TxnSize {
		end := start + t.cfg.TxnSize
		if end > len(edges) {
			end = len(edges)
		}
		t.lock.Lock()
		t.txns++
		for _, ed := range edges[start:end] {
			row, col, val, err := sqlRow(ed)
			if err != nil {
				t.lock.Unlock()
				return err
			}
			// Undo: the before-image (prior value if any).
			before, _ := t.tree.Get(btree.Key{Hi: row, Lo: col})
			rec = redoRecord(rec, row, col, before, t.txns)
			if err := t.undo.Append(rec); err != nil {
				t.lock.Unlock()
				return err
			}
			// Redo: the after-image.
			rec = redoRecord(rec, row, col, val, t.txns)
			if err := t.redo.Append(rec); err != nil {
				t.lock.Unlock()
				return err
			}
			t.tree.Upsert(btree.Key{Hi: row, Lo: col}, val, add)
			t.byCol.Upsert(btree.Key{Hi: col, Lo: row}, val, add)
			// Buffer-pool block write: the row lands in an 8 KiB-page
			// image whose touched region is re-checksummed — the block
			// formatting + checksum cost of a page-oriented store.
			off := int(mix64(row^col)) & (len(t.block) - 64)
			copy(t.block[off:], rec)
			t.blockCRC = crc32.Update(t.blockCRC, crcTable, t.block[off:off+64])
		}
		err := t.redo.Sync() // commit
		t.lock.Unlock()
		if err != nil {
			return err
		}
	}
	t.count += int64(len(edges))
	return nil
}

// Flush implements Engine.
func (t *TPCC) Flush() error {
	if t.closed {
		return errClosed(t.Name())
	}
	return t.redo.Sync()
}

// Count implements Engine.
func (t *TPCC) Count() int64 { return t.count }

// Close implements Engine.
func (t *TPCC) Close() error {
	if t.closed {
		return nil
	}
	if err := t.redo.Sync(); err != nil {
		return err
	}
	t.closed = true
	return nil
}

// Transactions returns the number of committed transactions.
func (t *TPCC) Transactions() int64 { return t.txns }

// Rows returns the number of distinct rows in the index.
func (t *TPCC) Rows() int { return t.tree.Len() }

// Lookup returns the accumulated value for a key; used by tests.
func (t *TPCC) Lookup(row, col uint64) (uint64, bool) {
	return t.tree.Get(btree.Key{Hi: row, Lo: col})
}
