package baselines

import (
	"sync/atomic"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
	"hhgb/internal/shard"
	"hhgb/internal/stats"
)

// ShardedGraphBLAS is the concurrent ingest frontend as a benchmark
// engine: one logical matrix hash-partitioned across S hierarchical
// cascades, each behind a bounded queue drained by a worker goroutine
// (batches are partitioned into striped producer-local shard buffers, so
// concurrent Ingest calls never contend on a shared splitter). Unlike the
// other engines it is internally parallel, so one instance per node is the
// natural deployment (ScalePerServer); its Ingest is also safe for
// concurrent producers, which the shared-nothing harnesses never need but
// application frontends do. Its analysis queries are pushed down to the
// shard workers and merged at read time, so they run concurrently with
// ingest at result-size serial cost.
type ShardedGraphBLAS struct {
	g      *shard.Group[uint64]
	count  atomic.Int64
	closed atomic.Bool
}

var (
	_ Engine    = (*ShardedGraphBLAS)(nil)
	_ Queryable = (*ShardedGraphBLAS)(nil)
	_ Drainer   = (*ShardedGraphBLAS)(nil)
)

// NewShardedGraphBLAS returns the engine over a dim x dim traffic matrix
// with the given shard count (<= 0 selects GOMAXPROCS). A nil cuts slice
// selects the default 4-level geometric cascade per shard.
func NewShardedGraphBLAS(dim gb.Index, cuts []int, shards int) (*ShardedGraphBLAS, error) {
	cfg := hier.DefaultConfig()
	if cuts != nil {
		cfg = hier.Config{Cuts: cuts}
	}
	g, err := shard.NewGroup[uint64](dim, dim, shard.Config{Shards: shards, Hier: cfg})
	if err != nil {
		return nil, err
	}
	return &ShardedGraphBLAS{g: g}, nil
}

// Name implements Engine.
func (e *ShardedGraphBLAS) Name() string { return "sharded-graphblas" }

// NumShards returns the shard count.
func (e *ShardedGraphBLAS) NumShards() int { return e.g.NumShards() }

// Ingest implements Engine. It is safe for concurrent use: each call
// builds fresh tuple slices (the per-engine reusable buffers the
// single-goroutine engines keep would race here).
func (e *ShardedGraphBLAS) Ingest(edges []Edge) error {
	if e.closed.Load() {
		return errClosed(e.Name())
	}
	rows, cols, vals := powerlaw.ToTuples(edges)
	if err := e.g.Update(rows, cols, vals); err != nil {
		return err
	}
	e.count.Add(int64(len(edges)))
	return nil
}

// Flush implements Engine: it drains every shard queue and completes all
// cascade work, surfacing any asynchronous ingest error.
func (e *ShardedGraphBLAS) Flush() error {
	if e.closed.Load() {
		return errClosed(e.Name())
	}
	return e.g.Flush()
}

// Drain implements Drainer: it blocks until every accepted batch has been
// ingested, without forcing cascade promotion — the async analogue of a
// synchronous engine's Ingest having returned.
func (e *ShardedGraphBLAS) Drain() error {
	if e.closed.Load() {
		return nil // Close already drained
	}
	return e.g.Err()
}

// Count implements Engine.
func (e *ShardedGraphBLAS) Count() int64 { return e.count.Load() }

// Close implements Engine. The engine stays queryable afterwards.
func (e *ShardedGraphBLAS) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	return e.g.Close()
}

// Query implements Queryable: the merged total across shards. Prefer the
// pushdown queries below when the full matrix is not needed.
func (e *ShardedGraphBLAS) Query() (*gb.Matrix[uint64], error) { return e.g.Query() }

// NVals returns the distinct stored entry count: per-shard counts summed,
// no global materialization.
func (e *ShardedGraphBLAS) NVals() (int, error) { return e.g.NVals() }

// Lookup returns one cell's accumulated weight, routed to the single shard
// that owns the cell.
func (e *ShardedGraphBLAS) Lookup(row, col gb.Index) (uint64, bool, error) {
	return e.g.Lookup(row, col)
}

// TopSources returns the k sources with the most total traffic: per-shard
// row sums pushed down to the workers, merged, and heap-selected.
func (e *ShardedGraphBLAS) TopSources(k int) ([]stats.Top[uint64], error) {
	return e.g.TopRows(k)
}

// TopDestinations is TopSources over destinations (column sums).
func (e *ShardedGraphBLAS) TopDestinations(k int) ([]stats.Top[uint64], error) {
	return e.g.TopCols(k)
}

// Stats exposes the merged cascade counters for analysis.
func (e *ShardedGraphBLAS) Stats() hier.Stats { return e.g.Stats() }
