// Package baselines implements the streaming-ingest engines compared in
// the paper's Fig. 2, behind a single Engine interface:
//
//   - HierGraphBLAS — hierarchical hypersparse GraphBLAS (this paper)
//   - FlatGraphBLAS — the same substrate without the hierarchy (ablation)
//   - ShardedGraphBLAS — the hierarchy hash-partitioned across cores
//     (the concurrent ingest frontend; one internally-parallel instance)
//   - HierD4M       — hierarchical D4M associative arrays [19]
//   - AccumuloD4M   — D4M batch ingest into an Accumulo tablet model [25]
//   - Accumulo      — the Accumulo continuous-ingest model [27]
//   - SciDB         — chunked-array store with synchronized commits [26]
//   - CrateDB       — SQL statement + translog + shard refresh model [28]
//   - TPCC          — OLTP row store: B+tree + redo log + per-txn commit
//
// The closed/remote systems are behavioral models: they do real CPU work
// with the same cost structure as the modelled system (key encoding, WAL
// framing + CRC, ordered memtable insertion, flush/compaction, SQL
// formatting/parsing, chunk packing, B+tree splits), not protocol-faithful
// reimplementations. See DESIGN.md §2 for the substitution rationale.
package baselines

import (
	"fmt"
	"io"

	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

// Edge is one streaming update (alias of the generator's edge type).
type Edge = powerlaw.Edge

// Engine is a streaming-ingest engine under benchmark.
type Engine interface {
	// Name identifies the engine in reports ("hier-graphblas", ...).
	Name() string
	// Ingest streams one batch of updates into the engine.
	Ingest(edges []Edge) error
	// Flush completes all pending work (memtable flushes, commits, ...).
	Flush() error
	// Count returns the cumulative number of updates ingested.
	Count() int64
	// Close releases resources, flushing first.
	Close() error
}

// Queryable is implemented by engines that can materialize the resulting
// traffic matrix for analysis.
type Queryable interface {
	Query() (*gb.Matrix[uint64], error)
}

// Drainer is implemented by asynchronous engines whose Ingest returns on
// queue-accept rather than completion. Drain blocks until every accepted
// batch has actually been ingested — timed harnesses must call it inside
// the measured window so async engines aren't credited for queued work.
type Drainer interface {
	Drain() error
}

// Factory builds a fresh engine instance; the cluster harness gives each
// simulated process its own instance (shared-nothing).
type Factory func() (Engine, error)

// Registry maps engine names to factories with the default model
// configurations used by the Fig. 2 harness.
func Registry(dim gb.Index) map[string]Factory {
	return map[string]Factory{
		"hier-graphblas":    func() (Engine, error) { return NewHierGraphBLAS(dim, nil) },
		"flat-graphblas":    func() (Engine, error) { return NewFlatGraphBLAS(dim) },
		"sharded-graphblas": func() (Engine, error) { return NewShardedGraphBLAS(dim, nil, 0) },
		"hier-d4m":          func() (Engine, error) { return NewHierD4M(nil) },
		"accumulo-d4m":      func() (Engine, error) { return NewAccumuloD4M(DefaultAccumuloConfig()) },
		"accumulo":          func() (Engine, error) { return NewAccumulo(DefaultAccumuloConfig()) },
		"scidb":             func() (Engine, error) { return NewSciDB(DefaultSciDBConfig()) },
		"cratedb":           func() (Engine, error) { return NewCrateDB(DefaultCrateDBConfig()) },
		"tpcc":              func() (Engine, error) { return NewTPCC(DefaultTPCCConfig()) },
	}
}

// Fig2Order lists the engines in the order the paper's Fig. 2 legend
// presents them (fastest to slowest at scale).
func Fig2Order() []string {
	return []string{
		"hier-graphblas",
		"hier-d4m",
		"accumulo-d4m",
		"scidb",
		"accumulo",
		"cratedb",
		"tpcc",
	}
}

// ScalingClass describes how an engine's aggregate throughput composes
// across servers in the Fig. 2 model.
type ScalingClass int

const (
	// ScaleSharedNothing engines run one instance per process/core with
	// no communication: aggregate = servers x procs/server x rate.
	// The paper's hierarchical GraphBLAS and hierarchical D4M runs.
	ScaleSharedNothing ScalingClass = iota
	// ScalePerServer engines run one internally-parallel server process
	// per node (tablet server, array instance, SQL node): aggregate =
	// servers x rate.
	ScalePerServer
	// ScaleUp engines are single scale-up systems whose published
	// cluster results grow far sublinearly: aggregate = rate x
	// servers^0.3 (Oracle TPC-C).
	ScaleUp
)

// ClassOf returns the scaling class of a registered engine.
func ClassOf(name string) ScalingClass {
	switch name {
	case "hier-graphblas", "flat-graphblas", "hier-d4m":
		return ScaleSharedNothing
	case "tpcc":
		return ScaleUp
	default:
		// Includes sharded-graphblas: one internally-parallel instance
		// per node, so aggregate throughput composes per server.
		return ScalePerServer
	}
}

// errClosed is returned when an engine is used after Close.
func errClosed(name string) error {
	return fmt.Errorf("%w: engine %s is closed", gb.ErrInvalidValue, name)
}

// sinkOrDiscard resolves an optional diagnostic/log sink: engines never
// write to stdout/stderr on their own (TestEnginesQuiet pins this), so a
// nil sink means the caller doesn't want the bytes and they go to
// io.Discard rather than leaking anywhere visible.
func sinkOrDiscard(w io.Writer) io.Writer {
	if w == nil {
		return io.Discard
	}
	return w
}
