package baselines

import "time"

// nowSeconds returns a monotonic wall-clock reading for coarse timing
// comparisons in tests.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
