package baselines

import (
	"bytes"
	"errors"
	"testing"

	"hhgb/internal/gb"
	"hhgb/internal/wal"
)

func TestAccumuloRecoverFromWAL(t *testing.T) {
	// Run a server with its WAL captured, "crash" it (discard the
	// in-memory state), and recover a fresh server from the log.
	var logBuf bytes.Buffer
	cfg := DefaultAccumuloConfig()
	cfg.LogSink = &logBuf
	cfg.MemtableBytes = 1 << 30 // never flush: everything is in-memory at crash
	a, err := NewAccumulo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	for k := 0; k < 500; k++ {
		edges = append(edges, Edge{Row: gb.Index(uint64(k % 50)), Col: gb.Index(uint64(k % 20)), Val: 1})
	}
	if err := a.Ingest(edges); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil { // syncs the WAL; also flushes memtable
		t.Fatal(err)
	}
	wantEntries := a.Entries()
	wantVal, ok := a.Lookup(d4mKey('r', 0), d4mKey('c', 0))
	if !ok {
		t.Fatal("key (0,0) missing pre-crash")
	}

	// Crash: new server, replay the captured log.
	fresh, err := NewAccumulo(DefaultAccumuloConfig())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Recover(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 500 {
		t.Fatalf("replayed %d mutations, want 500", replayed)
	}
	if got := fresh.Entries(); got != wantEntries {
		t.Fatalf("recovered %d entries, want %d", got, wantEntries)
	}
	gotVal, ok := fresh.Lookup(d4mKey('r', 0), d4mKey('c', 0))
	if !ok || gotVal != wantVal {
		t.Fatalf("recovered value = %d, %v; want %d", gotVal, ok, wantVal)
	}
}

func TestAccumuloRecoverD4MLayout(t *testing.T) {
	// The lean D4M mutation layout must also replay.
	var logBuf bytes.Buffer
	cfg := DefaultAccumuloConfig()
	cfg.LogSink = &logBuf
	e, err := NewAccumuloD4M(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Edge, 100)
	for k := range batch {
		batch[k] = Edge{Row: 3, Col: 4, Val: 2}
	}
	if err := e.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewAccumulo(DefaultAccumuloConfig())
	replayed, err := fresh.Recover(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 { // client-side combine collapsed the batch
		t.Fatalf("replayed %d, want 1", replayed)
	}
	v, ok := fresh.Lookup(d4mKey('r', 3), d4mKey('c', 4))
	if !ok || v != 200 {
		t.Fatalf("recovered value = %d, %v; want 200", v, ok)
	}
}

func TestAccumuloRecoverDetectsCorruption(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := DefaultAccumuloConfig()
	cfg.LogSink = &logBuf
	a, _ := NewAccumulo(cfg)
	if err := a.Ingest([]Edge{{Row: 1, Col: 2, Val: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := logBuf.Bytes()
	raw[len(raw)-1] ^= 0xff
	fresh, _ := NewAccumulo(DefaultAccumuloConfig())
	if _, err := fresh.Recover(bytes.NewReader(raw)); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestAccumuloRecoverEmptyLog(t *testing.T) {
	fresh, _ := NewAccumulo(DefaultAccumuloConfig())
	n, err := fresh.Recover(bytes.NewReader(nil))
	if err != nil || n != 0 {
		t.Fatalf("empty log: %d, %v", n, err)
	}
}
