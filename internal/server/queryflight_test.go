package server

import (
	"strings"
	"testing"
	"time"

	"hhgb"
	"hhgb/internal/flight"
	"hhgb/internal/pool"
	"hhgb/internal/proto"
)

// TestQueryStageSpansReconcile is the read-path twin of
// TestIngestStageSpansReconcile: every query op carries a span whose
// seven synchronous stages partition [decode start, ack] exactly, so the
// per-stage histogram sums must equal the total — both directions, not
// just an upper bound like ingest (queries have no async tail). With
// SlowQuery 0 every spanned query is also force-recorded into the flight
// ring as one causally ordered chain, which this walks per query.
func TestQueryStageSpansReconcile(t *testing.T) {
	reg := hhgb.NewMetrics()
	rec := hhgb.NewFlightRecorder(256)
	// SlowFrame -1 keeps ingest spans out of the ring so it holds only
	// query chains.
	_, _, addr := startWindowedServer(t,
		Config{Metrics: reg, Flight: rec, TraceSample: 1, SlowFrame: -1, SlowQuery: 0},
		hhgb.WithMetrics(reg), hhgb.WithFlightRecorder(rec))

	c := dialRaw(t, addr)
	c.handshakeSession("qspan", 0)
	for seq := uint64(1); seq <= 3; seq++ {
		ts := uint64(winBase.Add(time.Duration(seq-1) * time.Second).UnixNano())
		body, err := proto.AppendInsertAt(nil, seq, ts, []uint64{1}, []uint64{7}, []uint64{seq})
		if err != nil {
			t.Fatal(err)
		}
		c.send(proto.KindInsertAt, body)
		c.expectAck(seq)
	}

	// One of each read op, plain and ranged: seq 4..9.
	t0 := uint64(winBase.UnixNano())
	t1 := uint64(winBase.Add(4 * time.Second).UnixNano())
	queries := []struct {
		kind byte
		body []byte
		resp byte
	}{
		{proto.KindLookup, proto.AppendLookup(nil, 4, 1, 7), proto.KindLookupResp},
		{proto.KindTopK, proto.AppendTopK(nil, 5, proto.AxisSources, 5), proto.KindTopKResp},
		{proto.KindSummary, proto.AppendSeq(nil, 6), proto.KindSummaryResp},
		{proto.KindRangeLookup, proto.AppendRangeLookup(nil, 7, 1, 7, t0, t1), proto.KindLookupResp},
		{proto.KindRangeTopK, proto.AppendRangeTopK(nil, 8, proto.AxisDestinations, 5, t0, t1), proto.KindTopKResp},
		{proto.KindRangeSummary, proto.AppendRangeSummary(nil, 9, t0, t1), proto.KindSummaryResp},
	}
	for _, q := range queries {
		c.send(q.kind, q.body)
		if f := c.next(); f.Kind != q.resp {
			t.Fatalf("query kind %#x reply kind %#x, want %#x", q.kind, f.Kind, q.resp)
		}
	}
	nq := uint64(len(queries))

	// A span finalizes just after its response is written; wait for all.
	hists := flight.RegisterQueryStageHistograms(reg)
	total := hists[flight.QStageTotal]
	deadline := time.Now().Add(5 * time.Second)
	for total.Count() < nq {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d query spans finalized", total.Count(), nq)
		}
		time.Sleep(5 * time.Millisecond)
	}

	sum := func(st flight.QStage) float64 {
		_, _, _, s := hists[st].Snapshot()
		return s
	}
	syncStages := []flight.QStage{
		flight.QStageDecode, flight.QStageQueue, flight.QStagePlan, flight.QStageFanout,
		flight.QStageMerge, flight.QStageEncode, flight.QStageAck,
	}
	var syncSum float64
	for _, st := range syncStages {
		if n := hists[st].Count(); n != nq {
			t.Errorf("stage %s has %d observations, want %d", st, n, nq)
		}
		syncSum += sum(st)
	}
	totalSum := sum(flight.QStageTotal)
	if totalSum <= 0 {
		t.Fatalf("total stage sum = %g, want > 0", totalSum)
	}
	// Sync stages share boundary timestamps and there is no async tail:
	// the partition is exact, so the sums must agree both ways (modulo
	// float rounding of the per-stage nanosecond conversions).
	eps := totalSum*1e-9 + 1e-9
	if diff := syncSum - totalSum; diff > eps || diff < -eps {
		t.Errorf("sync stages sum to %gs, end-to-end total %gs — stages do not partition the span", syncSum, totalSum)
	}

	// Fan-out shape: every query touched at least one shard, and the
	// ranged queries walked level-0 cover windows.
	if n := hists[flight.QStageFanoutMax].Count(); n != nq {
		t.Errorf("fanout_max has %d observations, want %d (every query ran at least one leg)", n, nq)
	}
	var expo strings.Builder
	if _, err := reg.WriteTo(&expo); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		flight.QueryShardsHistogramName + "_count 6",
		flight.QueryWindowsHistogramName + `_count{level="0"} `,
	} {
		if !strings.Contains(expo.String(), line) {
			t.Errorf("exposition is missing %q", line)
		}
	}

	// SlowQuery 0 force-records every spanned query: the ring must hold
	// the complete decode→plan→fanout→merge→encode→ack chain for each, in
	// causal (claim) order, with no slow_query marker (that needs a
	// positive threshold).
	evs := rec.Snapshot()
	want := []string{"query_decode", "query_plan", "query_fanout", "query_merge", "query_encode", "query_ack"}
	for seq := uint64(4); seq <= 9; seq++ {
		var kinds []string
		var lastClaim uint64
		for _, e := range evs {
			if e.FrameSeq != seq || e.Session != "qspan" {
				continue
			}
			if len(kinds) > 0 && e.Seq != lastClaim+1 {
				t.Fatalf("query %d chain not consecutive: claim %d after %d", seq, e.Seq, lastClaim)
			}
			lastClaim = e.Seq
			kinds = append(kinds, e.Kind)
		}
		if len(kinds) != len(want) {
			t.Fatalf("query %d ring chain = %v, want %v", seq, kinds, want)
		}
		for i := range want {
			if kinds[i] != want[i] {
				t.Fatalf("query %d ring chain = %v, want %v", seq, kinds, want)
			}
		}
	}
}

// TestExplainMatchesServedCover is the bit-for-bit acceptance check: the
// EXPLAIN trailer's cover legs and uncovered holes must be exactly the
// spans the equivalent RangeView reports — same windows, same bounds,
// same order — because Instrument fills the trailer from the same
// resolved cover the query served.
func TestExplainMatchesServedCover(t *testing.T) {
	_, wm, addr := startWindowedServer(t, Config{})
	c := dialRaw(t, addr)
	c.handshake()

	// Traffic in windows 0, 1, and 3 — window 2 never exists, so a range
	// over [0, 4s) must report it as an uncovered hole.
	seq := uint64(1)
	for _, win := range []int{0, 1, 3} {
		ts := uint64(winBase.Add(time.Duration(win) * time.Second).UnixNano())
		body, err := proto.AppendInsertAt(nil, seq, ts, []uint64{uint64(win + 1)}, []uint64{9}, []uint64{1})
		if err != nil {
			t.Fatal(err)
		}
		c.send(proto.KindInsertAt, body)
		c.expectAck(seq)
		seq++
	}
	c.send(proto.KindFlush, proto.AppendSeq(nil, seq))
	c.expectAck(seq)
	seq++

	t0 := winBase
	t1 := winBase.Add(4 * time.Second)
	body, err := proto.AppendExplain(nil, proto.ExplainReq{
		Seq: seq, Op: proto.KindRangeSummary,
		T0: uint64(t0.UnixNano()), T1: uint64(t1.UnixNano()),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindExplain, body)
	f := c.next()
	if f.Kind != proto.KindExplainResp {
		t.Fatalf("explain reply kind %#x", f.Kind)
	}
	gotSeq, e, err := proto.ParseExplainResp(f.Body)
	if err != nil || gotSeq != seq {
		t.Fatalf("explain resp seq %d, %v; want seq %d", gotSeq, err, seq)
	}
	if e.Op != proto.KindRangeSummary {
		t.Fatalf("explain op %#x, want range summary", e.Op)
	}

	view, err := wm.QueryRange(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	spans := view.Spans()
	if len(e.Legs) != len(spans) {
		t.Fatalf("explain legs %d, served cover has %d windows", len(e.Legs), len(spans))
	}
	for i, leg := range e.Legs {
		if int64(leg.Start) != spans[i].Start.UnixNano() || int64(leg.End) != spans[i].End.UnixNano() {
			t.Errorf("leg %d = [%d, %d), served span [%d, %d)",
				i, leg.Start, leg.End, spans[i].Start.UnixNano(), spans[i].End.UnixNano())
		}
		if leg.Level != 0 {
			t.Errorf("leg %d level %d, want 0 (no roll-ups configured)", i, leg.Level)
		}
		if leg.Shards != 2 {
			t.Errorf("leg %d shards %d, want 2 (barrier query on a 2-shard group)", i, leg.Shards)
		}
	}
	holes := view.Uncovered()
	if len(e.Uncovered) != len(holes) {
		t.Fatalf("explain uncovered %d holes, served view has %d (%v)", len(e.Uncovered), len(holes), holes)
	}
	for i, u := range e.Uncovered {
		if int64(u.Start) != holes[i].Start.UnixNano() || int64(u.End) != holes[i].End.UnixNano() {
			t.Errorf("hole %d = [%d, %d), served hole [%d, %d)",
				i, u.Start, u.End, holes[i].Start.UnixNano(), holes[i].End.UnixNano())
		}
	}
	// The skipped window must actually be in there.
	wantHole := [2]int64{winBase.Add(2 * time.Second).UnixNano(), winBase.Add(3 * time.Second).UnixNano()}
	found := false
	for _, u := range e.Uncovered {
		if int64(u.Start) == wantHole[0] && int64(u.End) == wantHole[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("uncovered %v does not include the skipped window [%d, %d)", e.Uncovered, wantHole[0], wantHole[1])
	}
}

// TestQuerySpanPoolBalanced swaps the query tracer's span free-list for a
// leak-detecting pool and drives every span path — plain and ranged
// queries, EXPLAIN, and the Drop paths a refused range takes — then
// verifies every sampled span was returned exactly once.
func TestQuerySpanPoolBalanced(t *testing.T) {
	srv, _, addr := startWindowedServer(t, Config{TraceSample: 1})
	checked := pool.NewChecked(8, srv.qtracer.AllocSpan, nil)
	srv.qtracer.SetPool(checked)

	c := dialRaw(t, addr)
	c.handshake()
	body, err := proto.AppendInsertAt(nil, 1, uint64(winBase.UnixNano()), []uint64{3}, []uint64{4}, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsertAt, body)
	c.expectAck(1)

	t0 := uint64(winBase.UnixNano())
	t1 := uint64(winBase.Add(time.Second).UnixNano())
	c.send(proto.KindLookup, proto.AppendLookup(nil, 2, 3, 4))
	if f := c.next(); f.Kind != proto.KindLookupResp {
		t.Fatalf("lookup reply kind %#x", f.Kind)
	}
	c.send(proto.KindRangeSummary, proto.AppendRangeSummary(nil, 3, t0, t1))
	if f := c.next(); f.Kind != proto.KindSummaryResp {
		t.Fatalf("range summary reply kind %#x", f.Kind)
	}
	// A backwards range errors out of rangeView — the span must take the
	// Drop path and still return to the pool.
	c.send(proto.KindRangeSummary, proto.AppendRangeSummary(nil, 4, t1, t0))
	if f := c.next(); f.Kind != proto.KindError {
		t.Fatalf("backwards range reply kind %#x, want error", f.Kind)
	}
	// EXPLAIN spans too, on both the success and failure paths.
	eb, err := proto.AppendExplain(nil, proto.ExplainReq{Seq: 5, Op: proto.KindRangeTopK,
		Axis: proto.AxisSources, K: 3, T0: t0, T1: t1})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindExplain, eb)
	if f := c.next(); f.Kind != proto.KindExplainResp {
		t.Fatalf("explain reply kind %#x", f.Kind)
	}
	eb, err = proto.AppendExplain(nil, proto.ExplainReq{Seq: 6, Op: proto.KindRangeLookup,
		Src: 3, Dst: 4, T0: t1, T1: t0})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindExplain, eb)
	if f := c.next(); f.Kind != proto.KindError {
		t.Fatalf("backwards explain reply kind %#x, want error", f.Kind)
	}

	c.nc.Close()
	srv.Close()
	if err := checked.Verify(); err != nil {
		t.Fatal(err)
	}
	gets, puts := checked.Stats()
	if gets == 0 || gets != puts {
		t.Fatalf("span pool gets=%d puts=%d, want equal and nonzero", gets, puts)
	}
	// 5 sampled spans: the lookup, the two range queries, the two explains.
	if gets != 5 {
		t.Fatalf("span pool gets=%d, want 5 (one per query)", gets)
	}
}

// TestUntracedQueryDecodeAllocFree pins the off switch: with query
// tracing inactive the decode-side hooks every read op passes through —
// queryStart and sampleQuery — cost zero allocations (and skip even the
// clock read).
func TestUntracedQueryDecodeAllocFree(t *testing.T) {
	srv, _, _ := startServer(t, 1<<10, Config{})
	if srv.qtracer.Active() {
		t.Fatal("query tracer active without TraceSample or SlowQuery")
	}
	c := &conn{srv: srv, id: 1, session: "alloc"}
	req := request{kind: proto.KindLookup, seq: 9, src: 1, dst: 2}
	if a := testing.AllocsPerRun(200, func() {
		start := c.queryStart()
		if start != 0 {
			t.Fatal("inactive tracer read the clock")
		}
		c.sampleQuery(&req, start)
		if req.qspan != nil {
			t.Fatal("inactive tracer attached a span")
		}
	}); a != 0 {
		t.Fatalf("untraced query decode hooks allocate %.1f/op, budget is 0", a)
	}
}
