// Package server is the network ingest frontend: a TCP listener
// (optionally TLS) that speaks the internal/proto wire protocol in front
// of one hhgb.Sharded matrix — or one hhgb.Windowed temporal store, which
// additionally serves timestamped inserts, event-time range queries, and
// pushed per-window seal summaries (Subscribe) — turning the in-process
// concurrent ingest path into a service remote producers stream into
// (the deployment shape of RedisGraph's protocol frontend and the MIT
// real-time traffic pipeline).
//
// # Per-connection pipeline
//
// Each accepted connection runs two goroutines wired by a bounded queue:
//
//	reader ──▶ apply queue (Config.QueueDepth frames) ──▶ applier ──▶ per-conn Appender ──▶ shard queues
//
// The reader decodes frames and enqueues requests; the applier executes
// them in order — inserts go into the connection's own hhgb.Appender (one
// producer, zero cross-connection contention), queries and flushes run the
// facade's barrier path — and writes the responses. Per-connection program
// order is therefore preserved: a Lookup after an acked Insert on the same
// connection observes that insert.
//
// # Backpressure and overload
//
// Two mechanisms bound the server's memory, one blocking and one explicit:
//
//   - The apply queue is bounded. When a connection's applier falls behind
//     (its shard queues are full, a barrier is running), the reader blocks
//     enqueueing, stops reading, and TCP backpressure reaches the client —
//     no data is dropped, the pipe just fills.
//   - The aggregate entry budget (Config.MaxInFlight, summed over all
//     connections' decoded-but-unapplied inserts) bounds what the queues
//     can hold across every connection. An Insert that would exceed it is
//     dropped and answered immediately with an Error frame
//     (proto.ErrCodeOverload) from the reader — overtaking queued
//     responses, so the client learns it outran the server while its
//     earlier frames are still draining. Overloaded inserts are NOT
//     applied; the client decides whether to back off and retry.
//
// # Ack semantics and exactly-once sessions
//
// Ack(Insert) means accepted: validated and handed to the matrix's ingest
// pipeline. It does NOT mean applied or durable. Ack(Flush) means every
// insert acked before it on any connection is applied and — on a durable
// matrix — fsynced (hhgb's group-commit point). Ack(Checkpoint) adds
// snapshot compaction. A kill -9 after Ack(Flush) therefore loses nothing
// that was flush-acked; inserts acked after the last Flush recover per
// shard as far as each shard's group commit reached.
//
// A Hello carrying a session identifier upgrades the connection to
// exactly-once ingest: each insert frame's seq becomes the (session, seq)
// dedup key, the Welcome answers with the session's resume frontier
// (highest durably-applied seq on a durable matrix), and a frame at or
// below the frontier is acked without being re-applied (counted in
// duplicates_dropped). A client that crashes, reconnects, and
// retransmits its unacked frames under the same session therefore lands
// each frame exactly once, across server restarts too — the dedup state
// is journaled in the WAL and checkpointed into the manifest. Sessions
// are client-chosen; producers must not share one. Empty-session
// connections keep the at-least-accepted semantics above.
//
// # Shutdown
//
// Close stops the listener, then drains: every connection's reader stops,
// its queued requests are applied and acked, its appender hands off its
// buffers, and the connection closes. Accepted (acked) inserts are never
// dropped by shutdown. The matrix itself stays open — it belongs to the
// caller, who typically calls its Close (final checkpoint) next.
package server

import (
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hhgb"
	"hhgb/internal/flight"
	"hhgb/internal/metrics"
	"hhgb/internal/pool"
	"hhgb/internal/proto"
	"hhgb/internal/shard"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// DefaultQueueDepth is the default per-connection apply-queue depth in
// frames: the pipelining window between the connection's reader and
// applier.
const DefaultQueueDepth = 32

// DefaultMaxInFlight is the default aggregate in-flight entry budget.
const DefaultMaxInFlight = 1 << 21

// DefaultSubPatience bounds how long one WindowSummary write to a
// subscriber may block before the connection is declared slow and
// evicted.
const DefaultSubPatience = 10 * time.Second

// Config describes a network ingest server.
type Config struct {
	// Matrix is the sharded matrix the server fronts. Exactly one of
	// Matrix and Windowed is required; both are owned by the caller
	// (Close does not close them).
	Matrix *hhgb.Sharded
	// Windowed is the temporal window store the server fronts instead of
	// a flat Matrix: inserts must carry event timestamps (InsertAt),
	// range queries and Subscribe work, and plain Insert is refused.
	Windowed *hhgb.Windowed
	// TLS, when set, wraps the listener: every accepted connection
	// performs the TLS handshake before the protocol handshake.
	TLS *tls.Config
	// MaxBatch caps the entries of one insert frame; zero selects
	// proto.MaxBatch. Larger frames are refused with ErrCodeTooLarge.
	MaxBatch int
	// QueueDepth is the per-connection apply queue in frames; zero selects
	// DefaultQueueDepth.
	QueueDepth int
	// MaxInFlight is the aggregate decoded-but-unapplied entry budget
	// across all connections; zero selects DefaultMaxInFlight. Inserts
	// beyond it are answered with ErrCodeOverload and dropped.
	MaxInFlight int64
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the server's instruments: every /stats
	// counter mirrored off the same atomics (so the two endpoints always
	// reconcile), frame counts, per-op latency histograms, and the
	// in-flight budget. Nil disables registration; the apply path still
	// observes into discarded instruments.
	Metrics *metrics.Registry
	// SubPatience bounds how long one WindowSummary write to a subscriber
	// may block. A write that times out — the peer stopped reading —
	// evicts the connection: a typed ErrCodeEvicted frame is attempted
	// and the connection closes. Zero selects DefaultSubPatience. The
	// windowed store's own queue bound (hhgb.WithSubscriberQueue) is the
	// complementary policy for consumers that read, just too slowly.
	SubPatience time.Duration
	// Flight, when set, receives the server's structured event stream —
	// connection open/close, refusals, subscriber evictions, and (via
	// sampled spans) per-frame pipeline traces. Share one recorder with
	// the matrix (hhgb.WithFlightRecorder) so matrix-side events (WAL
	// fsyncs, checkpoints, seals) interleave on the same timeline.
	Flight *flight.Recorder
	// TraceSample samples one in every TraceSample insert frames into a
	// per-stage latency span, observed into the
	// hhgb_server_ingest_stage_seconds histograms and — past SlowFrame —
	// recorded into Flight. Zero or negative disables sampling; unsampled
	// frames pay one atomic add and zero allocations.
	TraceSample int
	// SlowFrame is the ring-record threshold for sampled frames: a
	// sampled frame whose end-to-end latency reaches it is written to
	// Flight stage by stage, with a slow_frame marker event. Zero records
	// every sampled frame (no marker); negative records none.
	SlowFrame time.Duration
	// SlowQuery is the ring-record threshold for query spans, the read
	// path's analog of SlowFrame: a spanned query whose end-to-end
	// latency reaches it lands in Flight as a causally ordered
	// decode → plan → fanout → merge → encode → ack chain, with a
	// slow_query marker event. Queries are orders of magnitude rarer
	// than insert frames, so when tracing is on at all (TraceSample > 0
	// or SlowQuery > 0) every query is spanned — into the
	// hhgb_query_stage_seconds and fan-out-shape histograms — and
	// SlowQuery only gates the ring. Zero records every spanned query
	// (no marker); negative records none.
	SlowQuery time.Duration
}

// batchPoolCap bounds how many idle decode batches the server retains
// across all connections. Circulation above it falls to the garbage
// collector; steady traffic recycles well under it.
const batchPoolCap = 64

// Server accepts proto connections and feeds one Sharded matrix.
type Server struct {
	cfg Config

	// batchPool pools the insert decode scratch: the reader borrows a
	// *proto.Batch per insert frame, decodes into it (reusing capacity),
	// ownership rides the request through the apply queue, and the
	// applier returns it once the matrix has copied the entries out — at
	// ack time, or on whichever error path consumed the request. An
	// interface so tests can swap in a leak-detecting pool.Checked.
	batchPool pool.Pool[*proto.Batch]

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	nextID uint64
	closed bool
	wg     sync.WaitGroup

	inFlight atomic.Int64

	opHist map[byte]*metrics.Histogram
	// tracer samples insert frames into stage-latency spans; always
	// non-nil (an inactive tracer samples nothing and costs one branch).
	tracer *flight.Tracer
	// qtracer spans read ops the same way; always non-nil. Every query is
	// spanned when tracing is on at all (see Config.SlowQuery).
	qtracer *flight.QueryTracer
	// shardMet is the registry's shard instrument set — the same counters
	// the fronted matrix's workers bump when Config.Metrics matches the
	// matrix's registry (the deployment shape). EXPLAIN reads the
	// pushdown-cache counters around a query to report its cache traffic.
	shardMet *shard.Metrics

	totalConns    atomic.Int64
	batches       atomic.Int64
	entries       atomic.Int64
	overloads     atomic.Int64
	dupsDropped   atomic.Int64
	sessResumed   atomic.Int64
	rejected      atomic.Int64
	flushes       atomic.Int64
	checkpoints   atomic.Int64
	queries       atomic.Int64
	subscriptions atomic.Int64
	summariesOut  atomic.Int64
	evictions     atomic.Int64
	// framesIn/framesOut are metrics-only (not part of the /stats v1
	// schema): whole protocol frames decoded and written.
	framesIn  atomic.Int64
	framesOut atomic.Int64
	// bytes of connections that have already closed; live connections are
	// summed at Stats time.
	closedBytesIn  atomic.Int64
	closedBytesOut atomic.Int64
}

// New returns a server over cfg.Matrix or cfg.Windowed. Serve starts
// accepting.
func New(cfg Config) (*Server, error) {
	if (cfg.Matrix == nil) == (cfg.Windowed == nil) {
		return nil, errors.New("server: exactly one of Config.Matrix and Config.Windowed is required")
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > proto.MaxBatch {
		cfg.MaxBatch = proto.MaxBatch
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.SubPatience <= 0 {
		cfg.SubPatience = DefaultSubPatience
	}
	// Queries are rare next to insert frames: when tracing is on at all,
	// span every query (1-in-1) so the stage histograms are complete and
	// a slow query can never dodge the ring by losing the sample lottery.
	qEvery := 0
	if cfg.TraceSample > 0 || cfg.SlowQuery > 0 {
		qEvery = 1
	}
	s := &Server{
		cfg:       cfg,
		conns:     make(map[*conn]struct{}),
		opHist:    opHistograms(cfg.Metrics),
		tracer:    flight.NewTracer(cfg.Metrics, cfg.Flight, cfg.TraceSample, cfg.SlowFrame),
		qtracer:   flight.NewQueryTracer(cfg.Metrics, cfg.Flight, qEvery, cfg.SlowQuery),
		shardMet:  shard.NewMetrics(cfg.Metrics),
		batchPool: pool.New(batchPoolCap, func() *proto.Batch { return new(proto.Batch) }),
	}
	registerServerFuncs(s)
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Close. With Config.TLS set, the
// listener is wrapped so every connection speaks TLS. It returns
// ErrServerClosed after a graceful Close, or the accept error that
// stopped it.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.TLS != nil {
		ln = tls.NewListener(ln, s.cfg.TLS)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.nextID++
		// The queue is allocated here, before the conn is visible to
		// Stats, so stats() reading len(c.queue) never races run()'s
		// post-handshake setup.
		c := &conn{srv: s, id: s.nextID, nc: nc, queue: make(chan request, s.cfg.QueueDepth)}
		s.conns[c] = struct{}{}
		s.totalConns.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			c.run()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.closedBytesIn.Add(c.bytesIn.Load())
			s.closedBytesOut.Add(c.bytesOut.Load())
		}()
	}
}

// Close stops the listener and drains every connection: queued requests
// are applied and acked, appender buffers hand off, and the connections
// close. It returns once all connection goroutines have exited. The
// matrix is left open. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}
	s.wg.Wait()
	return nil
}

// StatsVersion identifies the /stats JSON schema. It increments whenever
// a field of Stats or ConnStats is renamed, retyped, or removed — adding
// a field is compatible and does NOT bump it. Dashboards should pin the
// version they were written against; TestStatsSchemaPinned asserts the
// exact field set shipped for this version, so accidental drift fails CI
// instead of silently breaking consumers.
const StatsVersion = 1

// Stats is a point-in-time snapshot of the server's counters — the
// versioned schema served at /stats.
type Stats struct {
	Version       int   `json:"version"`
	ActiveConns   int   `json:"active_conns"`
	TotalConns    int64 `json:"total_conns"`
	InsertBatches int64 `json:"insert_batches"`
	InsertEntries int64 `json:"insert_entries"`
	Overloads     int64 `json:"overloads"`
	// DuplicatesDropped counts sessioned insert frames acked without
	// being applied because their (session, seq) was already at or below
	// the session's accepted frontier — the exactly-once dedup at work.
	DuplicatesDropped int64 `json:"duplicates_dropped"`
	// SessionsResumed counts handshakes that arrived with a nonzero
	// resume seq: reconnecting clients picking an existing session back
	// up.
	SessionsResumed int64       `json:"sessions_resumed"`
	Rejected        int64       `json:"rejected"`
	Flushes         int64       `json:"flushes"`
	Checkpoints     int64       `json:"checkpoints"`
	Queries         int64       `json:"queries"`
	Subscriptions   int64       `json:"subscriptions"`
	WindowSummaries int64       `json:"window_summaries_pushed"`
	InFlightEntries int64       `json:"in_flight_entries"`
	BytesIn         int64       `json:"bytes_in"`
	BytesOut        int64       `json:"bytes_out"`
	Conns           []ConnStats `json:"conns,omitempty"`
}

// ConnStats is one live connection's slice of the counters.
type ConnStats struct {
	ID            uint64 `json:"id"`
	Remote        string `json:"remote"`
	InsertBatches int64  `json:"insert_batches"`
	InsertEntries int64  `json:"insert_entries"`
	Overloads     int64  `json:"overloads"`
	Pending       int    `json:"pending"`
	BytesIn       int64  `json:"bytes_in"`
	BytesOut      int64  `json:"bytes_out"`
}

// Stats snapshots the aggregate and per-connection counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Version:           StatsVersion,
		TotalConns:        s.totalConns.Load(),
		InsertBatches:     s.batches.Load(),
		InsertEntries:     s.entries.Load(),
		Overloads:         s.overloads.Load(),
		DuplicatesDropped: s.dupsDropped.Load(),
		SessionsResumed:   s.sessResumed.Load(),
		Rejected:          s.rejected.Load(),
		Flushes:           s.flushes.Load(),
		Checkpoints:       s.checkpoints.Load(),
		Queries:           s.queries.Load(),
		Subscriptions:     s.subscriptions.Load(),
		WindowSummaries:   s.summariesOut.Load(),
		InFlightEntries:   s.inFlight.Load(),
		BytesIn:           s.closedBytesIn.Load(),
		BytesOut:          s.closedBytesOut.Load(),
	}
	s.mu.Lock()
	for c := range s.conns {
		cs := c.stats()
		st.Conns = append(st.Conns, cs)
		st.BytesIn += cs.BytesIn
		st.BytesOut += cs.BytesOut
	}
	s.mu.Unlock()
	st.ActiveConns = len(st.Conns)
	sort.Slice(st.Conns, func(i, j int) bool { return st.Conns[i].ID < st.Conns[j].ID })
	return st
}

// StatsHandler serves the Stats snapshot as JSON — the expvar-style
// introspection endpoint (mount it wherever the operator's HTTP mux
// lives; cmd/hhgb-serve exposes it at /stats).
func (s *Server) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Stats())
	})
}

// request is one decoded client frame on a connection's apply queue.
type request struct {
	kind     byte
	seq      uint64
	batch    *proto.Batch // insert, insertAt: pooled; owner must return it
	ts       uint64       // insertAt: event time, unix nanoseconds
	src, dst uint64       // lookup, rangeLookup
	axis     byte         // topk, rangeTopK
	k        uint64       // topk, rangeTopK
	t0, t1   uint64       // range queries: event-time bounds
	level    byte         // subscribe
	xop      byte         // explain: the wrapped query kind
	// span is the frame's sampled latency span (inserts only, 1 in
	// Config.TraceSample); nil on unsampled frames, and every span method
	// is nil-safe, so the common path pays one branch per mark.
	span *flight.Span
	// qspan is the query-path analog (read ops only); same nil-safety.
	qspan *flight.QuerySpan
}

// conn is one accepted connection.
type conn struct {
	srv *Server
	id  uint64
	nc  net.Conn

	// session is the client-chosen exactly-once session identifier from
	// the Hello; empty for plain at-least-accepted connections. Set once
	// during the handshake, read-only afterwards.
	session string

	wmu sync.Mutex // guards w: the applier writes responses, the reader overload/fatal errors, subscription pushers
	w   *proto.Writer

	queue    chan request
	draining atomic.Bool

	// ackBuf is the applier's reusable Ack body scratch (see conn.ack);
	// owned by the applier goroutine exclusively.
	ackBuf []byte

	// subs are this connection's live window subscriptions; each owns a
	// pusher goroutine writing WindowSummary frames under wmu. Guarded by
	// subMu; closed (and waited for) at teardown.
	subMu  sync.Mutex
	subs   []*hhgb.WindowSub
	subWG  sync.WaitGroup
	closed atomic.Bool // teardown begun: refuse new subscriptions

	batches   atomic.Int64
	entries   atomic.Int64
	overloads atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
}

func (c *conn) stats() ConnStats {
	return ConnStats{
		ID:            c.id,
		Remote:        c.nc.RemoteAddr().String(),
		InsertBatches: c.batches.Load(),
		InsertEntries: c.entries.Load(),
		Overloads:     c.overloads.Load(),
		Pending:       len(c.queue),
		BytesIn:       c.bytesIn.Load(),
		BytesOut:      c.bytesOut.Load(),
	}
}

// drainWriteGrace bounds how long a draining connection may block writing
// its final acks: a healthy client drains them in microseconds, while a
// stalled or malicious one that stopped reading would otherwise wedge its
// applier in a full kernel send buffer and hang Server.Close forever.
const drainWriteGrace = 5 * time.Second

// evictNoticeGrace bounds the best-effort ErrCodeEvicted frame written to
// a subscriber being evicted — its socket is often the reason it fell
// behind, so the notice gets one short deadline, then the connection
// closes regardless.
const evictNoticeGrace = time.Second

// beginDrain asks the connection to stop reading: the reader observes the
// flag (its blocking read is interrupted by the deadline) and falls into
// the normal shutdown path — drain the queue, ack, close. The write side
// gets a grace deadline so a peer that stopped reading cannot block the
// drain indefinitely (its applier falls into the write-error path and
// exits).
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now())
	c.nc.SetWriteDeadline(time.Now().Add(drainWriteGrace))
}

// send writes one frame under the write lock; flush pushes it (and
// everything buffered) to the wire.
func (c *conn) send(kind byte, body []byte, flush bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.w.WriteFrame(kind, body); err != nil {
		return err
	}
	if flush {
		if err := c.w.Flush(); err != nil {
			return err
		}
	}
	c.srv.framesOut.Add(1)
	c.bytesOut.Store(c.w.Bytes())
	return nil
}

// sendTimed writes and flushes one frame under a write deadline of the
// given grace, so a peer that stopped reading turns into a timeout error
// instead of a goroutine wedged in a full send buffer. The deadline is
// restored afterwards: cleared normally, re-armed to the drain grace if
// the connection began draining meanwhile (checked AFTER the restore, so
// a concurrent beginDrain can never be left with an unbounded write).
func (c *conn) sendTimed(kind byte, body []byte, grace time.Duration) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(grace))
	err := c.w.WriteFrame(kind, body)
	if err == nil {
		err = c.w.Flush()
	}
	c.nc.SetWriteDeadline(time.Time{})
	if c.draining.Load() {
		c.nc.SetWriteDeadline(time.Now().Add(drainWriteGrace))
	}
	if err == nil {
		c.srv.framesOut.Add(1)
	}
	c.bytesOut.Store(c.w.Bytes())
	return err
}

func (c *conn) sendErr(seq, code uint64, msg string, flush bool) error {
	return c.send(proto.KindError, proto.AppendError(nil, seq, code, msg), flush)
}

// run owns the connection end to end: handshake, then the reader loop
// feeding the applier goroutine, then teardown.
func (c *conn) run() {
	defer c.nc.Close()
	r := proto.NewReader(c.nc)
	c.w = proto.NewWriter(c.nc)

	// Handshake. The first frame must be a valid Hello at our version.
	f, err := r.Next()
	if err != nil {
		c.srv.logf("conn %d: handshake read: %v", c.id, err)
		return
	}
	c.srv.framesIn.Add(1)
	if f.Kind != proto.KindHello {
		c.sendErr(0, proto.ErrCodeMalformed, "expected hello", true)
		return
	}
	v, session, resumeSeq, err := proto.ParseHello(f.Body)
	if v != 0 && v != proto.Version {
		// The version field parsed and disagrees — including the shorter
		// Hello of a pre-session client, whose body stops at the version.
		// Answer with a version refusal, not a generic malformed error.
		c.sendErr(0, proto.ErrCodeVersion, fmt.Sprintf("server speaks version %d, client %d", proto.Version, v), true)
		return
	}
	if err != nil {
		c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
		return
	}
	c.session = session
	var (
		wel proto.Welcome
		app *hhgb.Appender
	)
	if wm := c.srv.cfg.Windowed; wm != nil {
		wel = proto.Welcome{
			Version: proto.Version,
			Dim:     wm.Dim(),
			Shards:  uint64(wm.Shards()),
			Durable: wm.Durable(),
			Window:  uint64(wm.Window()),
		}
		if session != "" {
			wel.LastSeq = wm.SessionResume(session)
			wel.HighSeq = wm.SessionMint(session)
		}
	} else {
		m := c.srv.cfg.Matrix
		if session == "" {
			// Sessioned inserts take the dedup path straight into the
			// shard queues; only plain connections get a per-conn
			// appender.
			app, err = m.NewAppender()
			if err != nil {
				c.sendErr(0, proto.ErrCodeClosed, "matrix is closed", true)
				return
			}
		}
		wel = proto.Welcome{
			Version: proto.Version,
			Dim:     m.Dim(),
			Shards:  uint64(m.Shards()),
			Durable: m.Durable(),
		}
		if session != "" {
			wel.LastSeq = m.SessionResume(session)
			wel.HighSeq = m.SessionMint(session)
		}
	}
	if session != "" && resumeSeq > 0 {
		c.srv.sessResumed.Add(1)
	}
	if err := c.send(proto.KindWelcome, proto.AppendWelcome(nil, wel), true); err != nil {
		if app != nil {
			app.Close()
		}
		return
	}
	c.srv.cfg.Flight.Record(flight.KindConnOpen, c.id, c.session, 0, uint64(wel.LastSeq), 0, 0)

	// Applier: executes requests in order, writes responses. The write
	// side flushes whenever the queue is momentarily empty — batching
	// acks under load, bounding latency when idle.
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.apply(app)
	}()

	// Reader loop.
	for {
		f, err := r.Next()
		c.bytesIn.Store(r.Bytes())
		if err == nil {
			c.srv.framesIn.Add(1)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !c.draining.Load() {
				if errors.Is(err, proto.ErrMalformed) {
					c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
				}
				c.srv.logf("conn %d: read: %v", c.id, err)
			}
			break
		}
		req, fatal, drop := c.decode(f)
		if fatal {
			break
		}
		if drop {
			continue
		}
		c.queue <- req
		if req.kind == proto.KindGoodbye {
			break
		}
	}
	close(c.queue)
	<-done
	c.closeSubs()
	c.srv.cfg.Flight.Record(flight.KindConnClose, c.id, c.session, 0,
		uint64(c.bytesIn.Load()), uint64(c.bytesOut.Load()), 0)
}

// closeSubs ends every subscription and waits for their pushers, so no
// goroutine outlives the connection.
func (c *conn) closeSubs() {
	c.closed.Store(true)
	c.subMu.Lock()
	subs := c.subs
	c.subs = nil
	c.subMu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
	c.subWG.Wait()
}

// startSub registers one subscription and its pusher goroutine: summaries
// stream to the client in seal order, tagged with the Subscribe seq,
// until the subscription (or the connection) closes. The pusher writes
// under wmu, interleaving whole frames with the applier's responses.
func (c *conn) startSub(sub *hhgb.WindowSub, seq uint64) {
	c.subMu.Lock()
	if c.closed.Load() {
		c.subMu.Unlock()
		sub.Close()
		return
	}
	c.subs = append(c.subs, sub)
	c.subWG.Add(1)
	c.subMu.Unlock()
	go func() {
		defer c.subWG.Done()
		for {
			ws, ok := sub.Next()
			if !ok {
				if sub.Evicted() {
					// The windowed store cut the subscription loose: its
					// queue stayed over the bound past the configured
					// patience. Tell the client why (best effort, under a
					// short deadline — the socket may be the reason it
					// fell behind), then tear the whole connection down: a
					// consumer that cannot keep up with summaries is not
					// keeping up with anything.
					c.srv.evictions.Add(1)
					c.srv.cfg.Flight.Record(flight.KindEviction, c.id, c.session, seq, 0, 0, 0)
					_ = c.sendTimed(proto.KindError,
						proto.AppendError(nil, seq, proto.ErrCodeEvicted,
							"subscriber evicted: summary backlog over bound past patience"),
						evictNoticeGrace)
					c.nc.Close()
				}
				return
			}
			body := proto.AppendWindowSummary(nil, proto.WindowSummary{
				Sub:          seq,
				Level:        uint64(ws.Level),
				Start:        uint64(ws.Start.UnixNano()),
				End:          uint64(ws.End.UnixNano()),
				Entries:      uint64(ws.Entries),
				Sources:      uint64(ws.Sources),
				Destinations: uint64(ws.Destinations),
				Packets:      ws.Packets,
			})
			if err := c.sendTimed(proto.KindWindowSummary, body, c.srv.cfg.SubPatience); err != nil {
				sub.Close()
				// A deadline expiry means the peer stopped reading its
				// summaries: evict it — close the connection so reader
				// and applier tear down — and count it. No typed notice
				// here: the summary write may have stopped mid-frame, so
				// anything appended after it would be unparseable. Any
				// other write error is ordinary teardown in progress.
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					c.srv.evictions.Add(1)
					c.srv.cfg.Flight.Record(flight.KindEviction, c.id, c.session, seq, 1, 0, 0)
					c.nc.Close()
				}
				return
			}
			c.srv.summariesOut.Add(1)
		}
	}()
}

// admitInsert applies the reader-side size and overload policies to one
// decoded insert batch, answering the refusing error frame itself.
// false means the frame is dropped (the caller returns the batch).
func (c *conn) admitInsert(b *proto.Batch, seq uint64) bool {
	s := c.srv
	if b.Len() > s.cfg.MaxBatch {
		s.cfg.Flight.Record(flight.KindRefusal, c.id, c.session, seq,
			uint64(proto.ErrCodeTooLarge), uint64(b.Len()), 0)
		c.sendErr(seq, proto.ErrCodeTooLarge,
			fmt.Sprintf("batch of %d entries exceeds server cap %d", b.Len(), s.cfg.MaxBatch), true)
		return false
	}
	n := int64(b.Len())
	if s.inFlight.Add(n) > s.cfg.MaxInFlight {
		s.inFlight.Add(-n)
		c.overloads.Add(1)
		s.overloads.Add(1)
		s.cfg.Flight.Record(flight.KindRefusal, c.id, c.session, seq,
			uint64(proto.ErrCodeOverload), uint64(n), 0)
		c.sendErr(seq, proto.ErrCodeOverload,
			fmt.Sprintf("in-flight entry budget %d exhausted", s.cfg.MaxInFlight), true)
		return false
	}
	return true
}

// queryStart captures the decode-begin clock for a query frame — zero
// (no clock read) when query tracing is off.
func (c *conn) queryStart() int64 {
	if c.srv.qtracer.Active() {
		return flight.Now()
	}
	return 0
}

// sampleQuery attaches a query span to a decoded read request when the
// tracer picks it, closing the decode stage. No-op (nil span) when
// tracing is off — the untraced path stays allocation-free.
func (c *conn) sampleQuery(req *request, start int64) {
	if sp := c.srv.qtracer.Sample(c.id, c.session, req.seq, start); sp != nil {
		sp.EndStage(flight.QStageDecode)
		req.qspan = sp
	}
}

// decode turns one frame into a request, applying the overload and size
// policies that run on the reader (so their error frames can overtake
// queued work). fatal=true tears the connection down; drop=true skips
// just this frame.
func (c *conn) decode(f proto.Frame) (req request, fatal, drop bool) {
	s := c.srv
	switch f.Kind {
	case proto.KindInsert:
		// Trace sampling decides after admission (a refused frame must not
		// hold a span), but the decode stage starts here — capture the
		// clock before the parse so a sampled span charges parse plus
		// admission to StageDecode.
		var start int64
		if s.tracer.Active() {
			start = flight.Now()
		}
		b := s.batchPool.Get()
		seq, err := proto.ParseInsertBatch(f.Body, b)
		if err != nil {
			s.batchPool.Put(b)
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		if !c.admitInsert(b, seq) {
			s.batchPool.Put(b)
			return req, false, true
		}
		req = request{kind: f.Kind, seq: seq, batch: b}
		if sp := s.tracer.Sample(c.id, c.session, seq, start); sp != nil {
			sp.EndStage(flight.StageDecode)
			req.span = sp
		}
		return req, false, false
	case proto.KindInsertAt:
		var start int64
		if s.tracer.Active() {
			start = flight.Now()
		}
		b := s.batchPool.Get()
		seq, ts, err := proto.ParseInsertAtBatch(f.Body, b)
		if err != nil {
			s.batchPool.Put(b)
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		if !c.admitInsert(b, seq) {
			s.batchPool.Put(b)
			return req, false, true
		}
		req = request{kind: f.Kind, seq: seq, ts: ts, batch: b}
		if sp := s.tracer.Sample(c.id, c.session, seq, start); sp != nil {
			sp.EndStage(flight.StageDecode)
			req.span = sp
		}
		return req, false, false
	case proto.KindFlush, proto.KindCheckpoint, proto.KindGoodbye:
		seq, err := proto.ParseSeq(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		return request{kind: f.Kind, seq: seq}, false, false
	case proto.KindSummary:
		start := c.queryStart()
		seq, err := proto.ParseSeq(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: seq}
		c.sampleQuery(&req, start)
		return req, false, false
	case proto.KindRangeLookup:
		start := c.queryStart()
		seq, src, dst, t0, t1, err := proto.ParseRangeLookup(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: seq, src: src, dst: dst, t0: t0, t1: t1}
		c.sampleQuery(&req, start)
		return req, false, false
	case proto.KindRangeTopK:
		start := c.queryStart()
		seq, axis, k, t0, t1, err := proto.ParseRangeTopK(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: seq, axis: axis, k: k, t0: t0, t1: t1}
		c.sampleQuery(&req, start)
		return req, false, false
	case proto.KindRangeSummary:
		start := c.queryStart()
		seq, t0, t1, err := proto.ParseRangeSummary(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: seq, t0: t0, t1: t1}
		c.sampleQuery(&req, start)
		return req, false, false
	case proto.KindSubscribe:
		seq, level, err := proto.ParseSubscribe(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		return request{kind: f.Kind, seq: seq, level: level}, false, false
	case proto.KindLookup:
		start := c.queryStart()
		seq, src, dst, err := proto.ParseLookup(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: seq, src: src, dst: dst}
		c.sampleQuery(&req, start)
		return req, false, false
	case proto.KindTopK:
		start := c.queryStart()
		seq, axis, k, err := proto.ParseTopK(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: seq, axis: axis, k: k}
		c.sampleQuery(&req, start)
		return req, false, false
	case proto.KindExplain:
		start := c.queryStart()
		q, err := proto.ParseExplain(f.Body)
		if err != nil {
			c.sendErr(0, proto.ErrCodeMalformed, err.Error(), true)
			return req, true, false
		}
		req = request{kind: f.Kind, seq: q.Seq, xop: q.Op,
			src: q.Src, dst: q.Dst, axis: q.Axis, k: q.K, t0: q.T0, t1: q.T1}
		c.sampleQuery(&req, start)
		return req, false, false
	default:
		c.sendErr(0, proto.ErrCodeMalformed, fmt.Sprintf("unexpected frame kind %#x", f.Kind), true)
		return req, true, false
	}
}

// rangeView resolves the windowed store's view for one range request,
// mapping a zero t1 to "everything" and validating the bounds.
func rangeView(wm *hhgb.Windowed, t0, t1 uint64) (*hhgb.RangeView, error) {
	if t1 == 0 {
		return wm.AllTime()
	}
	if t0 > math.MaxInt64 || t1 > math.MaxInt64 || t1 <= t0 {
		return nil, fmt.Errorf("bad event-time range [%d, %d)", t0, t1)
	}
	return wm.QueryRange(time.Unix(0, int64(t0)), time.Unix(0, int64(t1)))
}

// apply executes queued requests in order. Responses flush when the queue
// is momentarily empty (or on error frames), so acks batch under load.
// app is the per-connection appender on a flat server, nil on a windowed
// one (windowed appends route through the store's own window groups).
func (c *conn) apply(app *hhgb.Appender) {
	if app != nil {
		defer app.Close() // hands off any buffered entries
	}
	s := c.srv
	m := s.cfg.Matrix
	wm := s.cfg.Windowed
	// notWindowed/onlyWindowed reject the ops the fronted store cannot
	// serve — with a typed per-request error, never a torn connection.
	reject := func(seq uint64, msg string) error {
		s.rejected.Add(1)
		s.cfg.Flight.Record(flight.KindRefusal, c.id, c.session, seq,
			uint64(proto.ErrCodeRejected), 0, 0)
		return c.sendErr(seq, proto.ErrCodeRejected, msg, true)
	}
	for req := range c.queue {
		begun := time.Now()
		flush := len(c.queue) == 0
		// Sampled inserts close their queue-wait stage at dequeue; nil-safe
		// no-op for everything else. Spanned queries likewise.
		req.span.EndStage(flight.StageQueue)
		req.qspan.EndStage(flight.QStageQueue)
		var err error
		switch req.kind {
		case proto.KindInsert:
			b := req.batch
			n := int64(b.Len())
			if wm != nil {
				s.inFlight.Add(-n)
				s.batchPool.Put(b)
				req.span.Drop()
				err = reject(req.seq, "server is windowed; use timestamped inserts (InsertAt)")
				break
			}
			var (
				dup  bool
				ierr error
			)
			if c.session != "" {
				dup, ierr = m.AppendWeightedSessionSpan(c.session, req.seq, b.Rows, b.Cols, b.Vals, req.span)
			} else {
				ierr = app.AppendWeighted(b.Rows, b.Cols, b.Vals)
			}
			req.span.EndStage(flight.StagePartition)
			s.inFlight.Add(-n)
			// The matrix copied the entries out (or refused the batch);
			// either way the scratch is dead — recycle it before writing
			// the response.
			s.batchPool.Put(b)
			if ierr != nil {
				code := proto.ErrCodeRejected
				if errors.Is(ierr, hhgb.ErrClosed) {
					code = proto.ErrCodeClosed
				}
				s.rejected.Add(1)
				req.span.Drop()
				err = c.sendErr(req.seq, code, ierr.Error(), true)
				break
			}
			if dup {
				// A retransmit of an already-accepted frame: ack it (the
				// client is waiting for exactly this) without re-applying.
				// Its timings describe the retransmit path, not ingest —
				// drop the span unobserved.
				s.dupsDropped.Add(1)
				err = c.ack(req.seq, flush)
				req.span.Drop()
				break
			}
			c.batches.Add(1)
			c.entries.Add(n)
			s.batches.Add(1)
			s.entries.Add(n)
			err = c.ack(req.seq, flush)
			req.span.EndStage(flight.StageAck)
			req.span.Done()
		case proto.KindInsertAt:
			b := req.batch
			n := int64(b.Len())
			if wm == nil {
				s.inFlight.Add(-n)
				s.batchPool.Put(b)
				req.span.Drop()
				err = reject(req.seq, "server is not windowed; use plain inserts")
				break
			}
			var (
				dup  bool
				ierr error
			)
			if req.ts > math.MaxInt64 {
				ierr = fmt.Errorf("timestamp %d overflows", req.ts)
			} else if c.session != "" {
				dup, ierr = wm.AppendWeightedAtSessionSpan(c.session, req.seq, time.Unix(0, int64(req.ts)), b.Rows, b.Cols, b.Vals, req.span)
			} else {
				ierr = wm.AppendWeighted(time.Unix(0, int64(req.ts)), b.Rows, b.Cols, b.Vals)
			}
			req.span.EndStage(flight.StagePartition)
			s.inFlight.Add(-n)
			s.batchPool.Put(b)
			if ierr != nil {
				code := proto.ErrCodeRejected
				if errors.Is(ierr, hhgb.ErrClosed) {
					code = proto.ErrCodeClosed
				}
				s.rejected.Add(1)
				req.span.Drop()
				err = c.sendErr(req.seq, code, ierr.Error(), true)
				break
			}
			if dup {
				s.dupsDropped.Add(1)
				err = c.ack(req.seq, flush)
				req.span.Drop()
				break
			}
			c.batches.Add(1)
			c.entries.Add(n)
			s.batches.Add(1)
			s.entries.Add(n)
			err = c.ack(req.seq, flush)
			req.span.EndStage(flight.StageAck)
			req.span.Done()
		case proto.KindFlush:
			s.flushes.Add(1)
			if wm != nil {
				err = c.ackOp(req.seq, wm.Flush(), flush)
			} else {
				err = c.ackOp(req.seq, m.Flush(), flush)
			}
		case proto.KindCheckpoint:
			s.checkpoints.Add(1)
			if wm != nil {
				err = c.ackOp(req.seq, wm.Checkpoint(), flush)
			} else {
				err = c.ackOp(req.seq, m.Checkpoint(), flush)
			}
		case proto.KindGoodbye:
			// Drain this connection's buffers so a client that saw the
			// ack can immediately observe its inserts via another
			// connection's queries. Windowed appends apply synchronously;
			// Flush makes them query-visible the same way.
			switch {
			case wm != nil:
				err = c.ackOp(req.seq, wm.Flush(), true)
			case app != nil:
				err = c.ackOp(req.seq, app.Flush(), true)
			default:
				// Sessioned flat connection: no per-conn appender to
				// drain, but a full Flush gives the same visibility
				// guarantee to the goodbye ack.
				err = c.ackOp(req.seq, m.Flush(), true)
			}
		case proto.KindLookup, proto.KindRangeLookup:
			s.queries.Add(1)
			var (
				v        uint64
				found    bool
				qerr     error
				rejected bool
			)
			switch {
			case req.kind == proto.KindLookup && wm == nil:
				req.qspan.EndStage(flight.QStagePlan) // trivial route
				var legStart int64
				if req.qspan != nil {
					legStart = flight.Now()
				}
				v, found, qerr = m.Lookup(req.src, req.dst)
				if req.qspan != nil {
					req.qspan.ObserveLeg(time.Duration(flight.Now() - legStart))
					req.qspan.TouchShards(1) // lookups route to one shard
					req.qspan.AdvanceStage(flight.QStageFanout)
				}
			case wm == nil:
				req.qspan.Drop()
				err = reject(req.seq, "range queries need a windowed server")
				rejected = true
			default:
				var view *hhgb.RangeView
				if req.kind == proto.KindLookup {
					view, qerr = wm.AllTime()
				} else {
					view, qerr = rangeView(wm, req.t0, req.t1)
				}
				if qerr == nil {
					req.qspan.EndStage(flight.QStagePlan)
					if req.qspan != nil {
						view.Instrument(req.qspan, nil)
					}
					v, found, qerr = view.Lookup(req.src, req.dst)
				}
			}
			if rejected {
				break // the error frame already answered (err holds its write outcome)
			}
			if qerr != nil {
				req.qspan.Drop()
				err = c.sendErr(req.seq, proto.ErrCodeRejected, qerr.Error(), true)
				break
			}
			req.qspan.EndStage(flight.QStageMerge)
			body := proto.AppendLookupResp(nil, req.seq, found, v)
			req.qspan.EndStage(flight.QStageEncode)
			err = c.send(proto.KindLookupResp, body, flush)
			req.qspan.EndStage(flight.QStageAck)
			req.qspan.Done()
		case proto.KindTopK, proto.KindRangeTopK:
			s.queries.Add(1)
			var top []hhgb.Ranked
			var qerr error
			var rejected bool
			switch {
			case req.kind == proto.KindTopK && wm == nil:
				req.qspan.EndStage(flight.QStagePlan) // trivial route
				var legStart int64
				if req.qspan != nil {
					legStart = flight.Now()
				}
				if req.axis == proto.AxisSources {
					top, qerr = m.TopSources(int(req.k))
				} else {
					top, qerr = m.TopDestinations(int(req.k))
				}
				if req.qspan != nil {
					req.qspan.ObserveLeg(time.Duration(flight.Now() - legStart))
					req.qspan.TouchShards(m.Shards()) // all-shard barrier
					req.qspan.AdvanceStage(flight.QStageFanout)
				}
			case wm == nil:
				req.qspan.Drop()
				err = reject(req.seq, "range queries need a windowed server")
				rejected = true
			default:
				var view *hhgb.RangeView
				if req.kind == proto.KindTopK {
					view, qerr = wm.AllTime()
				} else {
					view, qerr = rangeView(wm, req.t0, req.t1)
				}
				if qerr == nil {
					req.qspan.EndStage(flight.QStagePlan)
					if req.qspan != nil {
						view.Instrument(req.qspan, nil)
					}
					if req.axis == proto.AxisSources {
						top, qerr = view.TopSources(int(req.k))
					} else {
						top, qerr = view.TopDestinations(int(req.k))
					}
				}
			}
			if rejected {
				break
			}
			if qerr != nil {
				req.qspan.Drop()
				err = c.sendErr(req.seq, proto.ErrCodeInternal, qerr.Error(), true)
				break
			}
			req.qspan.EndStage(flight.QStageMerge)
			wire := make([]proto.Ranked, len(top))
			for i, t := range top {
				wire[i] = proto.Ranked{ID: t.ID, Value: t.Value}
			}
			body := proto.AppendTopKResp(nil, req.seq, wire)
			req.qspan.EndStage(flight.QStageEncode)
			err = c.send(proto.KindTopKResp, body, flush)
			req.qspan.EndStage(flight.QStageAck)
			req.qspan.Done()
		case proto.KindSummary, proto.KindRangeSummary:
			s.queries.Add(1)
			var sum hhgb.Summary
			var qerr error
			var rejected bool
			switch {
			case req.kind == proto.KindSummary && wm == nil:
				req.qspan.EndStage(flight.QStagePlan) // trivial route
				var legStart int64
				if req.qspan != nil {
					legStart = flight.Now()
				}
				sum, qerr = m.Summary()
				if req.qspan != nil {
					req.qspan.ObserveLeg(time.Duration(flight.Now() - legStart))
					req.qspan.TouchShards(m.Shards()) // all-shard barrier
					req.qspan.AdvanceStage(flight.QStageFanout)
				}
			case wm == nil:
				req.qspan.Drop()
				err = reject(req.seq, "range queries need a windowed server")
				rejected = true
			default:
				var view *hhgb.RangeView
				if req.kind == proto.KindSummary {
					view, qerr = wm.AllTime()
				} else {
					view, qerr = rangeView(wm, req.t0, req.t1)
				}
				if qerr == nil {
					req.qspan.EndStage(flight.QStagePlan)
					if req.qspan != nil {
						view.Instrument(req.qspan, nil)
					}
					sum, qerr = view.Summary()
				}
			}
			if rejected {
				break
			}
			if qerr != nil {
				req.qspan.Drop()
				err = c.sendErr(req.seq, proto.ErrCodeInternal, qerr.Error(), true)
				break
			}
			req.qspan.EndStage(flight.QStageMerge)
			body := proto.AppendSummaryResp(nil, req.seq, proto.Summary{
				Entries:      uint64(sum.Entries),
				Sources:      uint64(sum.Sources),
				Destinations: uint64(sum.Destinations),
				TotalPackets: sum.TotalPackets,
				MaxOutDegree: sum.MaxOutDegree,
				MaxInDegree:  sum.MaxInDegree,
			})
			req.qspan.EndStage(flight.QStageEncode)
			err = c.send(proto.KindSummaryResp, body, flush)
			req.qspan.EndStage(flight.QStageAck)
			req.qspan.Done()
		case proto.KindExplain:
			s.queries.Add(1)
			// EXPLAIN runs the wrapped query for real and answers with its
			// structured trailer instead of the query's normal response.
			// Diagnostic path: it may allocate.
			ex := &flight.QueryExplain{}
			hits0 := s.shardMet.CacheHits.Value()
			miss0 := s.shardMet.CacheMisses.Value()
			execStart := flight.Now()
			qerr, rejected := c.runExplain(req, ex)
			if rejected {
				req.qspan.Drop()
				err = reject(req.seq, "range queries need a windowed server")
				break
			}
			if qerr != nil {
				req.qspan.Drop()
				err = c.sendErr(req.seq, proto.ErrCodeInternal, qerr.Error(), true)
				break
			}
			total := flight.Now() - execStart
			req.qspan.EndStage(flight.QStageMerge)
			e := proto.Explain{
				Op:         req.xop,
				TotalNanos: uint64(total),
				// Best-effort under concurrent load: the counters are
				// registry-global, so another connection's query may leak
				// into the delta.
				CacheHits:   s.shardMet.CacheHits.Value() - hits0,
				CacheMisses: s.shardMet.CacheMisses.Value() - miss0,
			}
			if len(ex.Legs) > 0 {
				e.Legs = make([]proto.ExplainLeg, len(ex.Legs))
				for i, l := range ex.Legs {
					e.Legs[i] = proto.ExplainLeg{
						Level:    uint64(l.Level),
						Start:    uint64(l.Start),
						End:      uint64(l.End),
						Shards:   uint64(l.Shards),
						DurNanos: uint64(l.Dur),
					}
				}
			}
			if len(ex.Uncovered) > 0 {
				e.Uncovered = make([]proto.ExplainSpan, len(ex.Uncovered))
				for i, u := range ex.Uncovered {
					e.Uncovered[i] = proto.ExplainSpan{Start: uint64(u.Start), End: uint64(u.End)}
				}
			}
			body := proto.AppendExplainResp(nil, req.seq, e)
			req.qspan.EndStage(flight.QStageEncode)
			err = c.send(proto.KindExplainResp, body, flush)
			req.qspan.EndStage(flight.QStageAck)
			req.qspan.Done()
		case proto.KindSubscribe:
			if wm == nil {
				err = reject(req.seq, "subscriptions need a windowed server")
				break
			}
			var sub *hhgb.WindowSub
			if req.level == proto.SubscribeAllLevels {
				sub = wm.Subscribe()
			} else if int(req.level) < wm.Levels() {
				sub = wm.Subscribe(int(req.level))
			} else {
				err = reject(req.seq, fmt.Sprintf("level %d beyond the server's %d levels", req.level, wm.Levels()))
				break
			}
			s.subscriptions.Add(1)
			// Ack first (under program order), then start the pusher:
			// every summary the client sees follows its subscribe ack.
			err = c.ack(req.seq, true)
			if err != nil {
				sub.Close()
				break
			}
			c.startSub(sub, req.seq)
		}
		if h := s.opHist[req.kind]; h != nil {
			h.Observe(time.Since(begun).Seconds())
		}
		if err != nil {
			// The write side is gone; stop responding but keep draining
			// the queue so in-flight accounting and appender handoff
			// stay correct.
			c.srv.logf("conn %d: write: %v", c.id, err)
			c.drainQuietly()
			return
		}
	}
	c.flushWriter()
}

// runExplain executes an Explain request's wrapped query op, discarding
// its result and filling ex with the served cover, per-leg timings, and
// fan-out shape. rejected=true means the op needs a windowed server and
// this one is flat (the caller answers with the standard rejection).
func (c *conn) runExplain(req request, ex *flight.QueryExplain) (qerr error, rejected bool) {
	s := c.srv
	m := s.cfg.Matrix
	wm := s.cfg.Windowed
	ranged := req.xop == proto.KindRangeLookup || req.xop == proto.KindRangeTopK || req.xop == proto.KindRangeSummary
	if wm == nil {
		if ranged {
			return nil, true
		}
		// Flat store: the trivial route, then one fan-out leg covering the
		// whole pushdown call (level/bounds zero — there is no window).
		req.qspan.EndStage(flight.QStagePlan)
		shards := m.Shards()
		if req.xop == proto.KindLookup {
			shards = 1
		}
		legStart := flight.Now()
		switch req.xop {
		case proto.KindLookup:
			_, _, qerr = m.Lookup(req.src, req.dst)
		case proto.KindTopK:
			if req.axis == proto.AxisSources {
				_, qerr = m.TopSources(int(req.k))
			} else {
				_, qerr = m.TopDestinations(int(req.k))
			}
		case proto.KindSummary:
			_, qerr = m.Summary()
		}
		d := time.Duration(flight.Now() - legStart)
		req.qspan.ObserveLeg(d)
		req.qspan.TouchShards(shards)
		req.qspan.AdvanceStage(flight.QStageFanout)
		ex.Legs = []flight.ExplainLeg{{Shards: shards, Dur: d}}
		return qerr, false
	}
	var view *hhgb.RangeView
	if ranged {
		view, qerr = rangeView(wm, req.t0, req.t1)
	} else {
		view, qerr = wm.AllTime()
	}
	if qerr != nil {
		return qerr, false
	}
	req.qspan.EndStage(flight.QStagePlan)
	view.Instrument(req.qspan, ex)
	switch req.xop {
	case proto.KindLookup, proto.KindRangeLookup:
		_, _, qerr = view.Lookup(req.src, req.dst)
	case proto.KindTopK, proto.KindRangeTopK:
		if req.axis == proto.AxisSources {
			_, qerr = view.TopSources(int(req.k))
		} else {
			_, qerr = view.TopDestinations(int(req.k))
		}
	case proto.KindSummary, proto.KindRangeSummary:
		_, qerr = view.Summary()
	}
	return qerr, false
}

// ack writes an Ack frame for seq, reusing the applier-owned scratch
// buffer — the per-frame body allocation this avoids is the last one on
// the steady-state ack path. Only the applier goroutine may call it.
func (c *conn) ack(seq uint64, flush bool) error {
	c.ackBuf = proto.AppendSeq(c.ackBuf[:0], seq)
	return c.send(proto.KindAck, c.ackBuf, flush)
}

// ackOp acks a flush/checkpoint-style op, or reports its failure.
func (c *conn) ackOp(seq uint64, opErr error, flush bool) error {
	if opErr != nil {
		code := proto.ErrCodeInternal
		switch {
		case errors.Is(opErr, hhgb.ErrClosed):
			code = proto.ErrCodeClosed
		case errors.Is(opErr, hhgb.ErrNotDurable):
			code = proto.ErrCodeRejected
		}
		return c.sendErr(seq, code, opErr.Error(), true)
	}
	return c.ack(seq, flush)
}

// drainQuietly consumes the rest of the queue after the write side failed,
// releasing the in-flight budget (and the pooled batches) without applying
// anything further.
func (c *conn) drainQuietly() {
	for req := range c.queue {
		if req.batch != nil {
			c.srv.inFlight.Add(-int64(req.batch.Len()))
			c.srv.batchPool.Put(req.batch)
		}
		req.span.Drop() // never applied; recycle unobserved
		req.qspan.Drop()
	}
}

func (c *conn) flushWriter() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_ = c.w.Flush()
	c.bytesOut.Store(c.w.Bytes())
}
