package server

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"hhgb/internal/pool"
	"hhgb/internal/proto"
)

// checkedBatchPool swaps the server's decode-batch free-list for a
// leak-detecting pool.Checked whose poison scrambles returned batches: if
// any stage touches a batch after the applier returned it (use after
// Put), the scrambled coordinates corrupt the matrix and the final
// content check below fails; if any path drops a batch without returning
// it (or returns one twice), Verify fails at drain.
func checkedBatchPool(s *Server) *pool.Checked[*proto.Batch] {
	c := pool.NewChecked(batchPoolCap,
		func() *proto.Batch { return new(proto.Batch) },
		func(b *proto.Batch) {
			for i := range b.Rows {
				b.Rows[i] = 0xA5A5A5A5
				b.Cols[i] = 0x5A5A5A5A
				b.Vals[i] = 0xDEADDEAD
			}
		})
	s.batchPool = c
	return c
}

// leakProducer drives one session over raw protocol connections:
// seeded random insert batches, a mid-stream reconnect that retransmits
// already-acked frames (exercising the duplicate-drop Put path), and a
// final flush. All errors are returned, never Fatal'd — this runs in a
// goroutine.
func leakProducer(addr, session string, seed int64, record func(r, c, v uint64)) error {
	rng := rand.New(rand.NewSource(seed))
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	r, w := proto.NewReader(nc), proto.NewWriter(nc)

	send := func(kind byte, body []byte) error {
		if err := w.WriteFrame(kind, body); err != nil {
			return err
		}
		return w.Flush()
	}
	expectAck := func(seq uint64) error {
		f, err := r.Next()
		if err != nil {
			return err
		}
		if f.Kind != proto.KindAck {
			return fmt.Errorf("session %s: want ack, got kind %#x", session, f.Kind)
		}
		got, err := proto.ParseSeq(f.Body)
		if err != nil || got != seq {
			return fmt.Errorf("session %s: ack = %d, %v; want %d", session, got, err, seq)
		}
		return nil
	}
	hello := func() error {
		if err := send(proto.KindHello, proto.AppendHello(nil, session, 0)); err != nil {
			return err
		}
		f, err := r.Next()
		if err != nil {
			return err
		}
		if f.Kind != proto.KindWelcome {
			return fmt.Errorf("session %s: handshake reply kind %#x", session, f.Kind)
		}
		return nil
	}
	if err := hello(); err != nil {
		return err
	}

	const frames = 40
	var lastBody []byte
	for seq := uint64(1); seq <= frames; seq++ {
		n := 1 + rng.Intn(64)
		rows := make([]uint64, n)
		cols := make([]uint64, n)
		vals := make([]uint64, n)
		for i := 0; i < n; i++ {
			rows[i] = uint64(rng.Intn(64))
			cols[i] = uint64(rng.Intn(64))
			vals[i] = 1 + uint64(rng.Intn(100))
			record(rows[i], cols[i], vals[i])
		}
		body, err := proto.AppendInsert(nil, seq, rows, cols, vals)
		if err != nil {
			return err
		}
		if err := send(proto.KindInsert, body); err != nil {
			return err
		}
		if err := expectAck(seq); err != nil {
			return err
		}
		lastBody = body

		if seq == frames/2 {
			// Reconnect mid-stream and retransmit the frame that was
			// already acked: the server must ack it again without
			// re-applying (duplicate-drop path returns the batch too).
			nc.Close()
			if nc, err = net.Dial("tcp", addr); err != nil {
				return err
			}
			r, w = proto.NewReader(nc), proto.NewWriter(nc)
			if err := hello(); err != nil {
				return err
			}
			if err := send(proto.KindInsert, lastBody); err != nil {
				return err
			}
			if err := expectAck(seq); err != nil {
				return err
			}
		}
	}
	if err := send(proto.KindFlush, proto.AppendSeq(nil, frames+1)); err != nil {
		return err
	}
	return expectAck(frames + 1)
}

// TestBatchPoolNoLeaksUnderSessionChurn runs concurrent session producers
// with reconnect-and-retransmit churn plus the reader-side refusal paths
// (oversize batch, malformed body), then closes the server and verifies
// the batch pool drained clean: every Get matched by exactly one Put, no
// foreign or double returns, nothing outstanding. Matrix content is then
// checked against a host-side sum to prove poisoned (returned) batches
// were never read by the apply path.
func TestBatchPoolNoLeaksUnderSessionChurn(t *testing.T) {
	srv, _, addr := startServer(t, 64, Config{MaxBatch: 64})
	checked := checkedBatchPool(srv)

	var mu sync.Mutex
	want := make(map[[2]uint64]uint64)
	record := func(r, c, v uint64) {
		mu.Lock()
		want[[2]uint64{r, c}] += v
		mu.Unlock()
	}

	const producers = 4
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			errs <- leakProducer(addr, fmt.Sprintf("sess-%d", p), int64(p+1), record)
		}(p)
	}
	for p := 0; p < producers; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Refusal paths must return the batch too. Oversize: decoded, then
	// refused by admitInsert (connection survives). Malformed: decode
	// fails mid-parse and tears the connection.
	c := dialRaw(t, addr)
	c.handshake()
	big := make([]uint64, 65)
	body, err := proto.AppendInsert(nil, 1, big, big, big)
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	f := c.next()
	if f.Kind != proto.KindError {
		t.Fatalf("oversize reply kind %#x, want error", f.Kind)
	}
	c.send(proto.KindInsert, body[:3]) // truncated: malformed, fatal
	if f = c.next(); f.Kind != proto.KindError {
		t.Fatalf("malformed reply kind %#x, want error", f.Kind)
	}

	// Verify matrix content on a fresh connection before shutdown.
	q := dialRaw(t, addr)
	q.handshake()
	q.send(proto.KindFlush, proto.AppendSeq(nil, 1))
	q.expectAck(1)
	seq := uint64(2)
	for k, v := range want {
		q.send(proto.KindLookup, proto.AppendLookup(nil, seq, k[0], k[1]))
		f := q.next()
		if f.Kind != proto.KindLookupResp {
			t.Fatalf("lookup reply kind %#x", f.Kind)
		}
		_, found, got, err := proto.ParseLookupResp(f.Body)
		if err != nil || !found || got != v {
			t.Fatalf("lookup (%d,%d) = %d found=%v err=%v, want %d", k[0], k[1], got, found, err, v)
		}
		seq++
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := checked.Verify(); err != nil {
		t.Fatalf("batch pool protocol violated: %v", err)
	}
	gets, puts := checked.Stats()
	if gets == 0 || gets != puts {
		t.Fatalf("pool stats gets=%d puts=%d, want equal and nonzero", gets, puts)
	}
}
