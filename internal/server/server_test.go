package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"testing"

	"hhgb"
	"hhgb/internal/proto"
)

// startServer runs a server over a fresh matrix on a loopback listener and
// returns the dial address plus a cleanup-registered handle.
func startServer(t *testing.T, dim uint64, cfg Config) (*Server, *hhgb.Sharded, string) {
	t.Helper()
	m, err := hhgb.NewSharded(dim, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	cfg.Matrix = m
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, m, ln.Addr().String()
}

// rawConn is a minimal hand-rolled protocol client for exercising the
// server below the hhgbclient conveniences.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	r  *proto.Reader
	w  *proto.Writer
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc, r: proto.NewReader(nc), w: proto.NewWriter(nc)}
}

func (c *rawConn) send(kind byte, body []byte) {
	c.t.Helper()
	if err := c.w.WriteFrame(kind, body); err != nil {
		c.t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawConn) next() proto.Frame {
	c.t.Helper()
	f, err := c.r.Next()
	if err != nil {
		c.t.Fatalf("Next: %v", err)
	}
	return f
}

func (c *rawConn) handshake() proto.Welcome {
	c.t.Helper()
	return c.handshakeSession("", 0)
}

func (c *rawConn) handshakeSession(session string, resumeSeq uint64) proto.Welcome {
	c.t.Helper()
	c.send(proto.KindHello, proto.AppendHello(nil, session, resumeSeq))
	f := c.next()
	if f.Kind != proto.KindWelcome {
		c.t.Fatalf("handshake reply kind %#x", f.Kind)
	}
	w, err := proto.ParseWelcome(f.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return w
}

func (c *rawConn) expectAck(seq uint64) {
	c.t.Helper()
	f := c.next()
	if f.Kind == proto.KindError {
		_, code, msg, _ := proto.ParseError(f.Body)
		c.t.Fatalf("want ack %d, got error code %d: %s", seq, code, msg)
	}
	if f.Kind != proto.KindAck {
		c.t.Fatalf("want ack, got kind %#x", f.Kind)
	}
	got, err := proto.ParseSeq(f.Body)
	if err != nil || got != seq {
		c.t.Fatalf("ack seq = %d, %v; want %d", got, err, seq)
	}
}

func TestHandshakeAndIngestQueryRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, 1<<20, Config{})
	c := dialRaw(t, addr)
	w := c.handshake()
	if w.Dim != 1<<20 || w.Shards != 2 || w.Durable {
		t.Fatalf("welcome = %+v", w)
	}

	body, err := proto.AppendInsert(nil, 1, []uint64{7, 7, 9}, []uint64{8, 8, 10}, []uint64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	c.expectAck(1)
	c.send(proto.KindFlush, proto.AppendSeq(nil, 2))
	c.expectAck(2)

	c.send(proto.KindLookup, proto.AppendLookup(nil, 3, 7, 8))
	f := c.next()
	if f.Kind != proto.KindLookupResp {
		t.Fatalf("lookup reply kind %#x", f.Kind)
	}
	seq, found, v, err := proto.ParseLookupResp(f.Body)
	if err != nil || seq != 3 || !found || v != 3 {
		t.Fatalf("lookup = seq %d, found %v, v %d, err %v", seq, found, v, err)
	}

	c.send(proto.KindSummary, proto.AppendSeq(nil, 4))
	f = c.next()
	if f.Kind != proto.KindSummaryResp {
		t.Fatalf("summary reply kind %#x", f.Kind)
	}
	_, sum, err := proto.ParseSummaryResp(f.Body)
	if err != nil || sum.Entries != 2 || sum.TotalPackets != 8 {
		t.Fatalf("summary = %+v, %v", sum, err)
	}

	c.send(proto.KindTopK, proto.AppendTopK(nil, 5, proto.AxisSources, 1))
	f = c.next()
	if f.Kind != proto.KindTopKResp {
		t.Fatalf("topk reply kind %#x", f.Kind)
	}
	_, top, err := proto.ParseTopKResp(f.Body)
	if err != nil || len(top) != 1 || top[0].ID != 9 || top[0].Value != 5 {
		t.Fatalf("topk = %v, %v", top, err)
	}

	c.send(proto.KindGoodbye, proto.AppendSeq(nil, 6))
	c.expectAck(6)
	if _, err := c.r.Next(); err != io.EOF {
		t.Fatalf("after goodbye = %v, want io.EOF", err)
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	_, _, addr := startServer(t, 1<<10, Config{})
	c := dialRaw(t, addr)
	// A pre-session client's whole Hello: magic + a foreign version, no
	// session fields. The server must answer with a version refusal, not
	// a malformed-frame error.
	body := binary.BigEndian.AppendUint32(nil, proto.Magic)
	body = binary.AppendUvarint(body, 99)
	c.send(proto.KindHello, body)
	f := c.next()
	if f.Kind != proto.KindError {
		t.Fatalf("reply kind %#x, want error", f.Kind)
	}
	seq, code, _, err := proto.ParseError(f.Body)
	if err != nil || seq != 0 || code != proto.ErrCodeVersion {
		t.Fatalf("error = seq %d code %d err %v", seq, code, err)
	}
	if _, err := c.r.Next(); err != io.EOF {
		t.Fatalf("after version error = %v, want io.EOF", err)
	}
}

func TestMalformedFrameTearsConnection(t *testing.T) {
	_, _, addr := startServer(t, 1<<10, Config{})
	c := dialRaw(t, addr)
	c.handshake()
	c.send(proto.KindInsert, []byte{}) // truncated insert body
	f := c.next()
	if f.Kind != proto.KindError {
		t.Fatalf("reply kind %#x, want error", f.Kind)
	}
	seq, code, _, err := proto.ParseError(f.Body)
	if err != nil || seq != 0 || code != proto.ErrCodeMalformed {
		t.Fatalf("error = seq %d code %d err %v", seq, code, err)
	}
	if _, err := c.r.Next(); err != io.EOF {
		t.Fatalf("after malformed = %v, want io.EOF", err)
	}
}

func TestOutOfBoundsInsertRejected(t *testing.T) {
	_, _, addr := startServer(t, 16, Config{})
	c := dialRaw(t, addr)
	c.handshake()
	body, err := proto.AppendInsert(nil, 1, []uint64{99}, []uint64{0}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	f := c.next()
	seq, code, _, perr := proto.ParseError(f.Body)
	if f.Kind != proto.KindError || perr != nil || seq != 1 || code != proto.ErrCodeRejected {
		t.Fatalf("reply = kind %#x seq %d code %d err %v", f.Kind, seq, code, perr)
	}
	// The connection survives a rejected batch.
	c.send(proto.KindFlush, proto.AppendSeq(nil, 2))
	c.expectAck(2)
}

func TestOverloadErrorFrame(t *testing.T) {
	s, _, addr := startServer(t, 1<<10, Config{MaxInFlight: 4})
	c := dialRaw(t, addr)
	c.handshake()
	body, err := proto.AppendInsert(nil, 1, make([]uint64, 8), make([]uint64, 8), make([]uint64, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	f := c.next()
	seq, code, _, perr := proto.ParseError(f.Body)
	if f.Kind != proto.KindError || perr != nil || seq != 1 || code != proto.ErrCodeOverload {
		t.Fatalf("reply = kind %#x seq %d code %d err %v", f.Kind, seq, code, perr)
	}
	if got := s.Stats().Overloads; got != 1 {
		t.Fatalf("Stats().Overloads = %d, want 1", got)
	}
	// A batch within the budget still lands.
	small, err := proto.AppendInsert(nil, 2, []uint64{1}, []uint64{2}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, small)
	c.expectAck(2)
}

func TestCheckpointWithoutDurabilityRejected(t *testing.T) {
	_, _, addr := startServer(t, 1<<10, Config{})
	c := dialRaw(t, addr)
	c.handshake()
	c.send(proto.KindCheckpoint, proto.AppendSeq(nil, 1))
	f := c.next()
	seq, code, _, perr := proto.ParseError(f.Body)
	if f.Kind != proto.KindError || perr != nil || seq != 1 || code != proto.ErrCodeRejected {
		t.Fatalf("reply = kind %#x seq %d code %d err %v", f.Kind, seq, code, perr)
	}
}

// TestGracefulDrain proves Close's contract: every acked insert is in the
// matrix after Close returns, even though the client never flushed.
func TestGracefulDrain(t *testing.T) {
	s, m, addr := startServer(t, 1<<20, Config{})
	c := dialRaw(t, addr)
	c.handshake()
	const batches = 10
	for i := uint64(1); i <= batches; i++ {
		body, err := proto.AppendInsert(nil, i, []uint64{i}, []uint64{i + 1}, []uint64{1})
		if err != nil {
			t.Fatal(err)
		}
		c.send(proto.KindInsert, body)
		c.expectAck(i)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := m.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if n != batches {
		t.Fatalf("after drain Entries = %d, want %d", n, batches)
	}
	if st := s.Stats(); st.InsertBatches != batches || st.InFlightEntries != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

func TestServeAfterCloseRefused(t *testing.T) {
	m, err := hhgb.NewSharded(1<<10, hhgb.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := New(Config{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(ln); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

func TestStatsHandlerServesJSON(t *testing.T) {
	s, _, addr := startServer(t, 1<<10, Config{})
	c := dialRaw(t, addr)
	c.handshake()
	body, err := proto.AppendInsert(nil, 1, []uint64{1}, []uint64{2}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	c.expectAck(1)

	rec := httptest.NewRecorder()
	s.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, rec.Body.String())
	}
	if st.InsertBatches != 1 || st.InsertEntries != 1 || st.ActiveConns != 1 || len(st.Conns) != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Conns[0].Remote == "" || st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("per-conn stats = %+v", st.Conns[0])
	}
}

// TestSessionDedupAndResume covers the exactly-once path end to end on a
// flat (non-durable) server: a retransmitted frame is acked without being
// re-applied, a second connection resuming the session learns the
// frontier in its Welcome, and its cross-connection retransmits are
// dropped too.
func TestSessionDedupAndResume(t *testing.T) {
	srv, m, addr := startServer(t, 1<<20, Config{})
	c := dialRaw(t, addr)
	if w := c.handshakeSession("sess-A", 0); w.LastSeq != 0 {
		t.Fatalf("fresh session LastSeq = %d, want 0", w.LastSeq)
	}
	body, err := proto.AppendInsert(nil, 1, []uint64{7}, []uint64{8}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	c.expectAck(1)
	// The exact same frame again: acked, not re-applied.
	c.send(proto.KindInsert, body)
	c.expectAck(1)
	c.send(proto.KindFlush, proto.AppendSeq(nil, 2))
	c.expectAck(2)
	if v, ok, err := m.Lookup(7, 8); err != nil || !ok || v != 3 {
		t.Fatalf("Lookup = %d, %v, %v; want 3 (the duplicate must not double it)", v, ok, err)
	}

	// A reconnecting client resumes the session on a new connection.
	c2 := dialRaw(t, addr)
	if w := c2.handshakeSession("sess-A", 1); w.LastSeq != 1 {
		t.Fatalf("resumed session LastSeq = %d, want 1", w.LastSeq)
	}
	c2.send(proto.KindInsert, body) // retransmit of seq 1 across connections
	c2.expectAck(1)
	body2, err := proto.AppendInsert(nil, 2, []uint64{7}, []uint64{8}, []uint64{4})
	if err != nil {
		t.Fatal(err)
	}
	c2.send(proto.KindInsert, body2)
	c2.expectAck(2)
	c2.send(proto.KindFlush, proto.AppendSeq(nil, 3))
	c2.expectAck(3)
	if v, ok, err := m.Lookup(7, 8); err != nil || !ok || v != 7 {
		t.Fatalf("Lookup = %d, %v, %v; want 7", v, ok, err)
	}

	st := srv.Stats()
	if st.DuplicatesDropped != 2 || st.SessionsResumed != 1 {
		t.Fatalf("stats: duplicates_dropped=%d sessions_resumed=%d, want 2/1",
			st.DuplicatesDropped, st.SessionsResumed)
	}
	// Only the two fresh frames count as inserts.
	if st.InsertBatches != 2 || st.InsertEntries != 2 {
		t.Fatalf("stats: batches=%d entries=%d, want 2/2", st.InsertBatches, st.InsertEntries)
	}
}

// TestCrossProcessResumeMintingFloor pins the two Welcome frontiers
// against the scenario that used to lose data: on a durable server a
// client flushes through seq 1, sends seq 3 (acked, never flushed), and
// dies with its retransmit ring. The resuming process must learn both
// LastSeq=1 — the under-reported trim/retransmit frontier — and
// HighSeq=3 — the minting floor: a fresh frame minted at seq 3 (what
// seeding from LastSeq produced) is dup-acked without being applied.
func TestCrossProcessResumeMintingFloor(t *testing.T) {
	// Huge sync-every: the WAL fsyncs only at barriers, so the durable
	// frontier provably trails the accepted one between Flushes.
	m, err := hhgb.NewSharded(1<<20, hhgb.WithShards(2),
		hhgb.WithDurability(t.TempDir()), hhgb.WithSyncEvery(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	s, err := New(Config{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	addr := ln.Addr().String()

	c := dialRaw(t, addr)
	if w := c.handshakeSession("sess-M", 0); w.LastSeq != 0 || w.HighSeq != 0 {
		t.Fatalf("fresh session frontiers = %d/%d, want 0/0", w.LastSeq, w.HighSeq)
	}
	b1, err := proto.AppendInsert(nil, 1, []uint64{7}, []uint64{8}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, b1)
	c.expectAck(1)
	c.send(proto.KindFlush, proto.AppendSeq(nil, 2))
	c.expectAck(2) // durable frontier: 1
	b3, err := proto.AppendInsert(nil, 3, []uint64{9}, []uint64{10}, []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, b3)
	c.expectAck(3) // accepted: 3, durable still 1

	// The "fresh process" resumes: it must see both frontiers.
	c2 := dialRaw(t, addr)
	w := c2.handshakeSession("sess-M", 0)
	if w.LastSeq != 1 {
		t.Fatalf("resumed LastSeq = %d, want 1 (durable frontier under-reports)", w.LastSeq)
	}
	if w.HighSeq != 3 {
		t.Fatalf("resumed HighSeq = %d, want 3 (accepted frontier is the minting floor)", w.HighSeq)
	}
	// Reusing a seq at or below HighSeq is exactly the loss mode: acked,
	// never applied. The server's dedup cannot tell new data from a
	// retransmission — that is why the client must mint above HighSeq.
	bReused, err := proto.AppendInsert(nil, 3, []uint64{100}, []uint64{100}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	c2.send(proto.KindInsert, bReused)
	c2.expectAck(3)
	// New data minted above HighSeq lands.
	b4, err := proto.AppendInsert(nil, 4, []uint64{11}, []uint64{12}, []uint64{9})
	if err != nil {
		t.Fatal(err)
	}
	c2.send(proto.KindInsert, b4)
	c2.expectAck(4)
	c2.send(proto.KindFlush, proto.AppendSeq(nil, 5))
	c2.expectAck(5)
	if v, ok, err := m.Lookup(11, 12); err != nil || !ok || v != 9 {
		t.Fatalf("Lookup(11,12) = %d, %v, %v; want 9 (minted above HighSeq must apply)", v, ok, err)
	}
	if v, ok, err := m.Lookup(9, 10); err != nil || !ok || v != 5 {
		t.Fatalf("Lookup(9,10) = %d, %v, %v; want 5", v, ok, err)
	}
	if _, ok, err := m.Lookup(100, 100); err != nil || ok {
		t.Fatalf("Lookup(100,100) found=%v, %v; want absent (reused seq is dup-dropped)", ok, err)
	}
}
