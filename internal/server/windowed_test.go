package server

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"math/big"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"hhgb"
	"hhgb/internal/proto"
)

var winBase = time.Unix(1_700_000_000, 0)

// startWindowedServer runs a server over a fresh windowed matrix.
func startWindowedServer(t *testing.T, cfg Config, opts ...hhgb.Option) (*Server, *hhgb.Windowed, string) {
	t.Helper()
	wm, err := hhgb.NewWindowed(1<<20, time.Second,
		append([]hhgb.Option{hhgb.WithShards(2), hhgb.WithLateness(time.Hour)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wm.Close() })
	cfg.Windowed = wm
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, wm, ln.Addr().String()
}

func (c *rawConn) expectError(seq, code uint64) {
	c.t.Helper()
	f := c.next()
	if f.Kind != proto.KindError {
		c.t.Fatalf("want error frame, got kind %#x", f.Kind)
	}
	gotSeq, gotCode, msg, err := proto.ParseError(f.Body)
	if err != nil || gotSeq != seq || gotCode != code {
		c.t.Fatalf("error = seq %d code %d (%q), %v; want seq %d code %d", gotSeq, gotCode, msg, err, seq, code)
	}
}

func TestWindowedServerEndToEnd(t *testing.T) {
	srv, _, addr := startWindowedServer(t, Config{})
	c := dialRaw(t, addr)
	w := c.handshake()
	if w.Window != uint64(time.Second) {
		t.Fatalf("welcome window = %d, want 1s", w.Window)
	}
	if !w.Durable && w.Dim != 1<<20 {
		t.Fatalf("welcome = %+v", w)
	}

	// Subscribe to level-0 seals before ingesting.
	c.send(proto.KindSubscribe, proto.AppendSubscribe(nil, 1, 0))
	c.expectAck(1)

	// A plain Insert is refused on a windowed server.
	plain, err := proto.AppendInsert(nil, 2, []uint64{1}, []uint64{2}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, plain)
	c.expectError(2, proto.ErrCodeRejected)

	// Three windows of traffic: window w holds w+1 packets from source 7.
	seq := uint64(3)
	for win := 0; win < 3; win++ {
		ts := uint64(winBase.Add(time.Duration(win) * time.Second).UnixNano())
		for i := 0; i <= win; i++ {
			body, err := proto.AppendInsertAt(nil, seq, ts, []uint64{7}, []uint64{uint64(10 + win)}, []uint64{1})
			if err != nil {
				t.Fatal(err)
			}
			c.send(proto.KindInsertAt, body)
			c.expectAck(seq)
			seq++
		}
	}
	c.send(proto.KindFlush, proto.AppendSeq(nil, seq))
	c.expectAck(seq)
	seq++

	// Range over windows 1..2: 2+3 = 5 packets.
	t0 := uint64(winBase.Add(time.Second).UnixNano())
	t1 := uint64(winBase.Add(3 * time.Second).UnixNano())
	c.send(proto.KindRangeSummary, proto.AppendRangeSummary(nil, seq, t0, t1))
	f := c.next()
	if f.Kind != proto.KindSummaryResp {
		t.Fatalf("range summary reply kind %#x", f.Kind)
	}
	gotSeq, sum, err := proto.ParseSummaryResp(f.Body)
	if err != nil || gotSeq != seq || sum.TotalPackets != 5 || sum.Entries != 2 {
		t.Fatalf("range summary = seq %d %+v, %v", gotSeq, sum, err)
	}
	seq++

	c.send(proto.KindRangeTopK, proto.AppendRangeTopK(nil, seq, proto.AxisSources, 1, t0, t1))
	f = c.next()
	gotSeq, top, err := proto.ParseTopKResp(f.Body)
	if err != nil || gotSeq != seq || len(top) != 1 || top[0].ID != 7 || top[0].Value != 5 {
		t.Fatalf("range topk = %v, %v", top, err)
	}
	seq++

	c.send(proto.KindRangeLookup, proto.AppendRangeLookup(nil, seq, 7, 11, t0, t1))
	f = c.next()
	gotSeq, found, v, err := proto.ParseLookupResp(f.Body)
	if err != nil || gotSeq != seq || !found || v != 2 {
		t.Fatalf("range lookup = %d/%v/%v", v, found, err)
	}
	seq++

	// The un-ranged Lookup answers all-time: 1 packet in window 0.
	c.send(proto.KindLookup, proto.AppendLookup(nil, seq, 7, 10))
	f = c.next()
	_, found, v, err = proto.ParseLookupResp(f.Body)
	if err != nil || !found || v != 1 {
		t.Fatalf("all-time lookup = %d/%v/%v", v, found, err)
	}
	seq++

	// Sealing the first two windows pushes exactly two summaries, in
	// order, tagged with the subscribe seq.
	srv.cfg.Windowed.Seal(winBase.Add(2 * time.Second))
	for win := 0; win < 2; win++ {
		f = c.next()
		if f.Kind != proto.KindWindowSummary {
			t.Fatalf("expected WindowSummary, got kind %#x", f.Kind)
		}
		ws, err := proto.ParseWindowSummary(f.Body)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Sub != 1 || ws.Level != 0 {
			t.Fatalf("summary tag = sub %d level %d", ws.Sub, ws.Level)
		}
		if want := uint64(winBase.Add(time.Duration(win) * time.Second).UnixNano()); ws.Start != want {
			t.Fatalf("summary %d start = %d, want %d", win, ws.Start, want)
		}
		if ws.Packets != uint64(win+1) {
			t.Fatalf("summary %d packets = %d, want %d", win, ws.Packets, win+1)
		}
	}

	// A late insert behind the frontier is refused with a typed error.
	late, err := proto.AppendInsertAt(nil, seq, uint64(winBase.UnixNano()), []uint64{1}, []uint64{1}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsertAt, late)
	c.expectError(seq, proto.ErrCodeRejected)
	seq++

	// Goodbye still drains cleanly with a subscription open.
	c.send(proto.KindGoodbye, proto.AppendSeq(nil, seq))
	c.expectAck(seq)

	st := srv.Stats()
	if st.Subscriptions != 1 || st.WindowSummaries != 2 {
		t.Fatalf("stats: subscriptions=%d summaries=%d", st.Subscriptions, st.WindowSummaries)
	}
}

func TestWindowedOpsRejectedOnFlatServer(t *testing.T) {
	_, _, addr := startServer(t, 1<<20, Config{})
	c := dialRaw(t, addr)
	if w := c.handshake(); w.Window != 0 {
		t.Fatalf("flat server advertises window %d", w.Window)
	}
	body, err := proto.AppendInsertAt(nil, 1, uint64(winBase.UnixNano()), []uint64{1}, []uint64{2}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsertAt, body)
	c.expectError(1, proto.ErrCodeRejected)
	c.send(proto.KindRangeSummary, proto.AppendRangeSummary(nil, 2, 0, uint64(time.Second)))
	c.expectError(2, proto.ErrCodeRejected)
	c.send(proto.KindSubscribe, proto.AppendSubscribe(nil, 3, proto.SubscribeAllLevels))
	c.expectError(3, proto.ErrCodeRejected)
}

// TestStatsSchemaPinned asserts the exact JSON field set of the versioned
// /stats document: adding a field requires updating this list (and
// renaming or removing one requires bumping StatsVersion), so client
// dashboards never silently break.
func TestStatsSchemaPinned(t *testing.T) {
	if StatsVersion != 1 {
		t.Fatalf("StatsVersion = %d: update the pinned field sets for the new schema", StatsVersion)
	}
	wantTop := []string{
		"active_conns", "bytes_in", "bytes_out", "checkpoints", "conns",
		"duplicates_dropped", "flushes", "in_flight_entries",
		"insert_batches", "insert_entries", "overloads", "queries",
		"rejected", "sessions_resumed", "subscriptions", "total_conns",
		"version", "window_summaries_pushed",
	}
	wantConn := []string{
		"bytes_in", "bytes_out", "id", "insert_batches", "insert_entries",
		"overloads", "pending", "remote",
	}
	st := Stats{Version: StatsVersion, Conns: []ConnStats{{ID: 1, Remote: "r"}}}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	if got := sortedKeys(top); !reflect.DeepEqual(got, wantTop) {
		t.Fatalf("stats fields drifted:\n got %v\nwant %v", got, wantTop)
	}
	var conns []map[string]json.RawMessage
	if err := json.Unmarshal(top["conns"], &conns); err != nil || len(conns) != 1 {
		t.Fatalf("conns: %v", err)
	}
	if got := sortedKeys(conns[0]); !reflect.DeepEqual(got, wantConn) {
		t.Fatalf("conn stats fields drifted:\n got %v\nwant %v", got, wantConn)
	}
	if string(top["version"]) != "1" {
		t.Fatalf("version = %s, want 1", top["version"])
	}
}

func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// selfSigned mints a loopback-only certificate for the TLS tests.
func selfSigned(t *testing.T) (tls.Certificate, *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "hhgb-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, pool
}

// TestTLSListener covers the listener-side TLS wrap below the client
// conveniences: a verified TLS session speaks the protocol end to end,
// and a plaintext dial fails rather than reaching the handshake.
func TestTLSListener(t *testing.T) {
	cert, pool := selfSigned(t)
	_, _, addr := startServer(t, 1<<20, Config{
		TLS: &tls.Config{Certificates: []tls.Certificate{cert}},
	})

	nc, err := tls.Dial("tcp", addr, &tls.Config{RootCAs: pool, ServerName: "127.0.0.1"})
	if err != nil {
		t.Fatalf("tls dial: %v", err)
	}
	defer nc.Close()
	c := &rawConn{t: t, nc: nc, r: proto.NewReader(nc), w: proto.NewWriter(nc)}
	if w := c.handshake(); w.Dim != 1<<20 {
		t.Fatalf("welcome over TLS = %+v", w)
	}
	body, err := proto.AppendInsert(nil, 1, []uint64{4}, []uint64{5}, []uint64{6})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsert, body)
	c.expectAck(1)

	// Plaintext against the TLS listener: the server's TLS layer rejects
	// it; the client sees a dead or torn connection, never a Welcome.
	plain, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	pw := proto.NewWriter(plain)
	pw.WriteFrame(proto.KindHello, proto.AppendHello(nil, "", 0))
	pw.Flush()
	plain.SetReadDeadline(time.Now().Add(2 * time.Second))
	if f, err := proto.NewReader(plain).Next(); err == nil && f.Kind == proto.KindWelcome {
		t.Fatal("plaintext handshake succeeded against a TLS listener")
	}
}
