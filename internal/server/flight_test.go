package server

import (
	"testing"
	"time"

	"hhgb"
	"hhgb/internal/flight"
	"hhgb/internal/proto"
)

// TestIngestStageSpansReconcile streams sampled frames end to end and
// reconciles the two halves of the latency plane: the per-stage
// histograms must hold one observation per frame for every synchronous
// stage, the synchronous stages must sum to no more than the end-to-end
// total (they share boundaries, so the chain decode → queue → partition
// → ack is exact; the total additionally covers the async shard tail),
// and the flight-recorder ring must hold each frame's pipeline events in
// causal order.
func TestIngestStageSpansReconcile(t *testing.T) {
	reg := hhgb.NewMetrics()
	rec := hhgb.NewFlightRecorder(256)
	_, _, addr := startWindowedServer(t,
		Config{Metrics: reg, Flight: rec, TraceSample: 1, SlowFrame: 0},
		hhgb.WithMetrics(reg), hhgb.WithFlightRecorder(rec))

	const frames = 5
	c := dialRaw(t, addr)
	c.handshakeSession("flight", 0)
	for seq := uint64(1); seq <= frames; seq++ {
		ts := uint64(winBase.Add(time.Duration(seq) * time.Millisecond).UnixNano())
		body, err := proto.AppendInsertAt(nil, seq, ts, []uint64{seq, seq + 1}, []uint64{7, 8}, []uint64{1, 1})
		if err != nil {
			t.Fatal(err)
		}
		c.send(proto.KindInsertAt, body)
		c.expectAck(seq)
	}

	// A span finalizes when the last shard reference drops, which may
	// trail the ack; wait for all totals to land.
	hists := flight.RegisterStageHistograms(reg)
	total := hists[flight.StageTotal]
	deadline := time.Now().Add(5 * time.Second)
	for total.Count() < frames {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d spans finalized", total.Count(), frames)
		}
		time.Sleep(5 * time.Millisecond)
	}

	sum := func(st flight.Stage) float64 {
		_, _, _, s := hists[st].Snapshot()
		return s
	}
	syncStages := []flight.Stage{flight.StageDecode, flight.StageQueue, flight.StagePartition, flight.StageAck}
	var syncSum float64
	for _, st := range syncStages {
		if n := hists[st].Count(); n != frames {
			t.Errorf("stage %s has %d observations, want %d", st, n, frames)
		}
		syncSum += sum(st)
	}
	totalSum := sum(flight.StageTotal)
	if totalSum <= 0 {
		t.Fatalf("total stage sum = %g, want > 0", totalSum)
	}
	if syncSum > totalSum*(1+1e-9)+1e-9 {
		t.Errorf("sync stages sum to %gs > end-to-end total %gs — stage boundaries overlap", syncSum, totalSum)
	}

	// SlowFrame 0 force-records every sampled frame: the ring must hold a
	// causally ordered pipeline for each, and the event claim order is the
	// causal order by construction.
	evs := rec.Snapshot()
	for seq := uint64(1); seq <= frames; seq++ {
		var order []string
		for _, e := range evs {
			if e.FrameSeq == seq && e.Session == "flight" {
				order = append(order, e.Kind)
			}
		}
		// Non-durable store: no wal_append leg; shard_apply may be 0ns on a
		// tiny batch and elided, but decode → dequeue → ack must be there.
		want := []string{"frame_decode", "dequeue", "ack"}
		got := order[:0:0]
		for _, k := range order {
			if k == "frame_decode" || k == "dequeue" || k == "ack" {
				got = append(got, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d pipeline events = %v, want at least %v (all: %v)", seq, got, want, order)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("frame %d pipeline out of order: %v, want %v", seq, order, want)
			}
		}
	}
}
