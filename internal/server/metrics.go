package server

import (
	"hhgb/internal/metrics"
	"hhgb/internal/proto"
)

// opNames maps request frame kinds to their op label on the server's
// apply-latency histogram.
var opNames = map[byte]string{
	proto.KindInsert:       "insert",
	proto.KindInsertAt:     "insert_at",
	proto.KindFlush:        "flush",
	proto.KindCheckpoint:   "checkpoint",
	proto.KindGoodbye:      "goodbye",
	proto.KindLookup:       "lookup",
	proto.KindRangeLookup:  "range_lookup",
	proto.KindTopK:         "topk",
	proto.KindRangeTopK:    "range_topk",
	proto.KindSummary:      "summary",
	proto.KindRangeSummary: "range_summary",
	proto.KindSubscribe:    "subscribe",
	proto.KindExplain:      "explain",
}

// opHistograms builds the per-op apply-latency histogram family, one
// series per request kind. A nil registry wires them to the discard
// registry so the apply loop never branches on instrumentation.
func opHistograms(reg *metrics.Registry) map[byte]*metrics.Histogram {
	r := metrics.OrDiscard(reg)
	m := make(map[byte]*metrics.Histogram, len(opNames))
	for kind, op := range opNames {
		m[kind] = r.Histogram("hhgb_server_op_seconds",
			"Apply latency per operation: dequeue to response handed to the writer.",
			nil, metrics.L("op", op))
	}
	return m
}

// registerServerFuncs registers the server's sampled series: every /stats
// v1 counter mirrored straight off the SAME atomics the JSON snapshot
// reads — so /metrics and /stats reconcile exactly by construction — plus
// the metrics-only frame counters and eviction count. Called once from
// New, only with a real registry (sampling funcs hold the server alive).
func registerServerFuncs(s *Server) {
	r := s.cfg.Metrics
	if r == nil {
		return
	}
	r.CounterFunc("hhgb_server_connections_total",
		"Connections accepted.",
		func() int64 { return s.totalConns.Load() })
	r.GaugeFunc("hhgb_server_active_conns",
		"Connections currently open.",
		func() int64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return int64(n)
		})
	r.CounterFunc("hhgb_server_insert_batches_total",
		"Insert frames applied (duplicates and refusals excluded).",
		func() int64 { return s.batches.Load() })
	r.CounterFunc("hhgb_server_insert_entries_total",
		"Matrix entries applied from insert frames.",
		func() int64 { return s.entries.Load() })
	r.CounterFunc("hhgb_server_overloads_total",
		"Insert frames refused over the in-flight entry budget.",
		func() int64 { return s.overloads.Load() })
	r.CounterFunc("hhgb_server_duplicates_dropped_total",
		"Sessioned insert frames acked without re-applying (exactly-once dedup).",
		func() int64 { return s.dupsDropped.Load() })
	r.CounterFunc("hhgb_server_sessions_resumed_total",
		"Handshakes that resumed an existing session (nonzero resume seq).",
		func() int64 { return s.sessResumed.Load() })
	r.CounterFunc("hhgb_server_rejected_total",
		"Requests refused with a typed per-request error.",
		func() int64 { return s.rejected.Load() })
	r.CounterFunc("hhgb_server_flushes_total",
		"Flush barriers requested by clients.",
		func() int64 { return s.flushes.Load() })
	r.CounterFunc("hhgb_server_checkpoints_total",
		"Checkpoints requested by clients.",
		func() int64 { return s.checkpoints.Load() })
	r.CounterFunc("hhgb_server_queries_total",
		"Query frames served (lookup, top-k, summary, and range forms).",
		func() int64 { return s.queries.Load() })
	r.CounterFunc("hhgb_server_subscriptions_total",
		"Window summary subscriptions started.",
		func() int64 { return s.subscriptions.Load() })
	r.CounterFunc("hhgb_server_window_summaries_total",
		"Window seal summaries written to subscribers.",
		func() int64 { return s.summariesOut.Load() })
	r.CounterFunc("hhgb_server_subscribers_evicted_total",
		"Subscriber connections disconnected for not keeping up with summaries.",
		func() int64 { return s.evictions.Load() })
	r.GaugeFunc("hhgb_server_in_flight_entries",
		"Decoded-but-unapplied insert entries across all connections.",
		func() int64 { return s.inFlight.Load() })
	r.GaugeFunc("hhgb_server_in_flight_budget",
		"Configured aggregate in-flight entry budget (MaxInFlight).",
		func() int64 { return s.cfg.MaxInFlight })
	r.CounterFunc("hhgb_server_frames_in_total",
		"Protocol frames decoded from clients.",
		func() int64 { return s.framesIn.Load() })
	r.CounterFunc("hhgb_server_frames_out_total",
		"Protocol frames written to clients.",
		func() int64 { return s.framesOut.Load() })
	r.CounterFunc("hhgb_server_bytes_in_total",
		"Wire bytes read from clients (closed connections plus live ones).",
		func() int64 { return s.sumBytes(true) })
	r.CounterFunc("hhgb_server_bytes_out_total",
		"Wire bytes written to clients (closed connections plus live ones).",
		func() int64 { return s.sumBytes(false) })
}

// sumBytes mirrors the Stats byte accounting: retired connections'
// totals plus every live connection's running count.
func (s *Server) sumBytes(in bool) int64 {
	var n int64
	if in {
		n = s.closedBytesIn.Load()
	} else {
		n = s.closedBytesOut.Load()
	}
	s.mu.Lock()
	for c := range s.conns {
		if in {
			n += c.bytesIn.Load()
		} else {
			n += c.bytesOut.Load()
		}
	}
	s.mu.Unlock()
	return n
}
