package server

import (
	"errors"
	"io"
	"net"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"hhgb"
	"hhgb/internal/metrics"
	"hhgb/internal/proto"
)

// TestMetricsSchemaPinned asserts the exact exported metric family set —
// name and kind — in the style of TestStatsSchemaPinned: adding a metric
// requires updating this list, so dashboards and the CI smoke never
// silently lose a series they scrape.
func TestMetricsSchemaPinned(t *testing.T) {
	reg := hhgb.NewMetrics()
	_, _, addr := startWindowedServer(t, Config{Metrics: reg, TraceSample: 1}, hhgb.WithMetrics(reg))

	// One frame of traffic so histograms and funcs all have samples.
	c := dialRaw(t, addr)
	c.handshake()
	body, err := proto.AppendInsertAt(nil, 1, uint64(winBase.UnixNano()), []uint64{1}, []uint64{2}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsertAt, body)
	c.expectAck(1)
	// And one traced range query so the hhgb_query_* families carry samples.
	t0 := uint64(winBase.UnixNano())
	c.send(proto.KindRangeLookup, proto.AppendRangeLookup(nil, 2, 1, 2, t0, t0+uint64(time.Second)))
	if f := c.next(); f.Kind != proto.KindLookupResp {
		t.Fatalf("range lookup reply kind %#x", f.Kind)
	}

	want := map[string]string{
		"hhgb_server_connections_total":         "counter",
		"hhgb_server_active_conns":              "gauge",
		"hhgb_server_insert_batches_total":      "counter",
		"hhgb_server_insert_entries_total":      "counter",
		"hhgb_server_overloads_total":           "counter",
		"hhgb_server_duplicates_dropped_total":  "counter",
		"hhgb_server_sessions_resumed_total":    "counter",
		"hhgb_server_rejected_total":            "counter",
		"hhgb_server_flushes_total":             "counter",
		"hhgb_server_checkpoints_total":         "counter",
		"hhgb_server_queries_total":             "counter",
		"hhgb_server_subscriptions_total":       "counter",
		"hhgb_server_window_summaries_total":    "counter",
		"hhgb_server_subscribers_evicted_total": "counter",
		"hhgb_server_in_flight_entries":         "gauge",
		"hhgb_server_in_flight_budget":          "gauge",
		"hhgb_server_frames_in_total":           "counter",
		"hhgb_server_frames_out_total":          "counter",
		"hhgb_server_bytes_in_total":            "counter",
		"hhgb_server_bytes_out_total":           "counter",
		"hhgb_server_op_seconds":                "histogram",
		"hhgb_server_ingest_stage_seconds":      "histogram",
		"hhgb_query_stage_seconds":              "histogram",
		"hhgb_query_shards_touched":             "histogram",
		"hhgb_query_windows_touched":            "histogram",
		"hhgb_shard_cache_hits_total":           "counter",
		"hhgb_shard_cache_misses_total":         "counter",
		"hhgb_shard_cache_invalidations_total":  "counter",
		"hhgb_shard_batches_applied_total":      "counter",
		"hhgb_shard_entries_applied_total":      "counter",
		"hhgb_shard_wal_fsync_seconds":          "histogram",
		"hhgb_shard_checkpoint_seconds":         "histogram",
		"hhgb_shard_queue_depth":                "gauge",
		"hhgb_window_seal_lag_seconds":          "histogram",
		"hhgb_window_rollup_seconds":            "histogram",
		"hhgb_window_summaries_pushed_total":    "counter",
		"hhgb_window_subscribers_evicted_total": "counter",
		"hhgb_window_active":                    "gauge",
		"hhgb_window_sealed":                    "gauge",
		"hhgb_window_seals_total":               "counter",
		"hhgb_window_rollups_total":             "counter",
		"hhgb_window_expired_total":             "counter",
		"hhgb_window_late_drops_total":          "counter",
		"hhgb_window_subscriber_queue_depth":    "gauge",
	}
	got := map[string]string{}
	for _, f := range reg.Families() {
		got[f.Name] = f.Kind
	}
	if !reflect.DeepEqual(got, want) {
		for n, k := range got {
			if want[n] != k {
				t.Errorf("unexpected family %s (%s) — new metrics must be added to the pinned list", n, k)
			}
		}
		for n, k := range want {
			if got[n] != k {
				t.Errorf("missing family %s (%s)", n, k)
			}
		}
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(b.String()); err != nil {
		t.Fatalf("/metrics output does not parse: %v", err)
	}
}

// TestMetricsReconcileWithStats drives traffic and asserts the /metrics
// counters equal the /stats v1 snapshot — the acceptance contract: the
// two endpoints read the same atomics, so they can never drift.
func TestMetricsReconcileWithStats(t *testing.T) {
	reg := hhgb.NewMetrics()
	srv, _, addr := startWindowedServer(t, Config{Metrics: reg}, hhgb.WithMetrics(reg))
	c := dialRaw(t, addr)
	c.handshakeSession("recon", 0)
	seq := uint64(1)
	for win := 0; win < 3; win++ {
		ts := uint64(winBase.Add(time.Duration(win) * time.Second).UnixNano())
		body, err := proto.AppendInsertAt(nil, seq, ts, []uint64{1, 2}, []uint64{3, 4}, []uint64{1, 1})
		if err != nil {
			t.Fatal(err)
		}
		c.send(proto.KindInsertAt, body)
		c.expectAck(seq)
		seq++
	}
	// A duplicate retransmission, a flush, and a query.
	dup, err := proto.AppendInsertAt(nil, 1, uint64(winBase.UnixNano()), []uint64{1}, []uint64{3}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	c.send(proto.KindInsertAt, dup)
	c.expectAck(1)
	c.send(proto.KindFlush, proto.AppendSeq(nil, seq))
	c.expectAck(seq)
	seq++
	c.send(proto.KindLookup, proto.AppendLookup(nil, seq, 1, 3))
	if f := c.next(); f.Kind != proto.KindLookupResp {
		t.Fatalf("lookup reply kind %#x", f.Kind)
	}

	st := srv.Stats()
	if st.InsertEntries != 6 || st.DuplicatesDropped != 1 {
		t.Fatalf("stats: %+v", st)
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	sample := func(name string) string {
		for _, line := range strings.Split(out, "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok {
				return v
			}
		}
		t.Fatalf("no sample for %s in:\n%s", name, out)
		return ""
	}
	for name, want := range map[string]int64{
		"hhgb_server_insert_entries_total":     st.InsertEntries,
		"hhgb_server_insert_batches_total":     st.InsertBatches,
		"hhgb_server_duplicates_dropped_total": st.DuplicatesDropped,
		"hhgb_server_flushes_total":            st.Flushes,
		"hhgb_server_queries_total":            st.Queries,
		"hhgb_server_connections_total":        st.TotalConns,
		"hhgb_server_overloads_total":          st.Overloads,
		"hhgb_server_rejected_total":           st.Rejected,
	} {
		if got := sample(name); got != strconv.FormatInt(want, 10) {
			t.Errorf("%s = %s, /stats says %d", name, got, want)
		}
	}
}

// pipeListener feeds net.Pipe server halves to Serve. Pipes carry no
// kernel buffer, so a peer that stops reading blocks the server's very
// next write — which is what makes the eviction test deterministic.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// dial hands the server half to Accept and returns the client half.
func (l *pipeListener) dial(t *testing.T) *rawConn {
	t.Helper()
	client, server := net.Pipe()
	select {
	case l.conns <- server:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not accept the pipe")
	}
	t.Cleanup(func() { client.Close() })
	return &rawConn{t: t, nc: client, r: proto.NewReader(client), w: proto.NewWriter(client)}
}

// TestSubscriberEvictionE2E: a subscriber that stops reading is evicted —
// typed ErrCodeEvicted frame, connection closed, counted in metrics —
// while a healthy subscriber on the same store observes every seal.
// Deterministic: net.Pipe writes block instantly, WithSubscriberQueue(1)
// with zero patience evicts on the first over-bound publish, and the
// stalled client resumes reading only to collect its eviction notice.
func TestSubscriberEvictionE2E(t *testing.T) {
	reg := hhgb.NewMetrics()
	wm, err := hhgb.NewWindowed(1<<20, time.Second,
		hhgb.WithShards(2), hhgb.WithLateness(time.Hour),
		hhgb.WithMetrics(reg), hhgb.WithSubscriberQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wm.Close() })
	srv, err := New(Config{Windowed: wm, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln := newPipeListener()
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	stalled := ln.dial(t)
	stalled.handshake()
	stalled.send(proto.KindSubscribe, proto.AppendSubscribe(nil, 7, 0))
	stalled.expectAck(7)

	healthy := ln.dial(t)
	healthy.handshake()
	healthy.send(proto.KindSubscribe, proto.AppendSubscribe(nil, 9, 0))
	healthy.expectAck(9)

	// Seal windows from the ingest side until the stalled subscriber's
	// queue trips the bound. The stalled client reads NOTHING during this
	// phase: its pusher blocks on the pipe holding one summary, the next
	// queues (bound reached), and the one after that evicts. The healthy
	// client consumes each summary BEFORE the next seal — its queue is
	// provably empty at every publish, so with the same hair-trigger
	// bound it can never be evicted: eviction is per-subscriber backlog,
	// not per-store.
	const seals = 3
	for win := 0; win <= seals; win++ {
		at := winBase.Add(time.Duration(win) * time.Second)
		if err := wm.Append(at, []uint64{4}, []uint64{5}); err != nil {
			t.Fatal(err)
		}
		if err := wm.Seal(at); err != nil {
			t.Fatal(err)
		}
		if win == 0 {
			continue // nothing sealed yet: first window still open
		}
		f := healthy.next()
		if f.Kind == proto.KindError {
			seq, code, msg, _ := proto.ParseError(f.Body)
			t.Fatalf("healthy subscriber: want WindowSummary %d, got error seq %d code %d: %s", win-1, seq, code, msg)
		}
		if f.Kind != proto.KindWindowSummary {
			t.Fatalf("healthy subscriber: want WindowSummary %d, got kind %#x", win-1, f.Kind)
		}
		ws, err := proto.ParseWindowSummary(f.Body)
		if err != nil || ws.Sub != 9 {
			t.Fatalf("healthy summary %d: %+v, %v", win-1, ws, err)
		}
		if want := uint64(winBase.Add(time.Duration(win-1) * time.Second).UnixNano()); ws.Start != want {
			t.Fatalf("healthy summary %d start = %d, want %d (order broken)", win-1, ws.Start, want)
		}
	}

	// The stalled client resumes reading: at most one in-flight summary,
	// then the typed eviction notice, then the server closes the conn.
	sawEvicted := false
	for i := 0; i < 4 && !sawEvicted; i++ {
		f, err := stalled.r.Next()
		if err != nil {
			t.Fatalf("stalled conn died before the eviction notice: %v", err)
		}
		switch f.Kind {
		case proto.KindWindowSummary:
			// the one the pusher was blocked writing
		case proto.KindError:
			seq, code, _, perr := proto.ParseError(f.Body)
			if perr != nil || code != proto.ErrCodeEvicted || seq != 7 {
				t.Fatalf("eviction notice = seq %d code %d, %v; want seq 7 code %d", seq, code, perr, proto.ErrCodeEvicted)
			}
			sawEvicted = true
		default:
			t.Fatalf("unexpected frame kind %#x on stalled conn", f.Kind)
		}
	}
	if !sawEvicted {
		t.Fatal("no ErrCodeEvicted frame")
	}
	if _, err := stalled.r.Next(); err == nil {
		t.Fatal("stalled connection still open after eviction")
	} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Logf("stalled conn closed with %v", err)
	}

	// The healthy subscriber keeps working after the eviction.
	healthy.send(proto.KindFlush, proto.AppendSeq(nil, 100))
	healthy.expectAck(100)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hhgb_server_subscribers_evicted_total 1\n") {
		t.Errorf("server eviction not counted:\n%s", out)
	}
	if !strings.Contains(out, "hhgb_window_subscribers_evicted_total 1\n") {
		t.Errorf("window eviction not counted:\n%s", out)
	}
}
