package assoc

import (
	"fmt"

	"hhgb/internal/gb"
)

// Hier is the hierarchical associative array of Reuther et al. (HPEC 2018)
// and Kepner et al. (HPEC 2019): the same N-level cut-and-cascade scheme as
// internal/hier, but over string-keyed D4M associative arrays. It is the
// "Hierarchical D4M" baseline curve of the paper's Fig. 2.
type Hier struct {
	cuts   []int
	levels []*Assoc
	// stats
	updates  int64
	batches  int64
	cascades []int64
}

// NewHier returns an empty hierarchical associative array with the given
// cuts (len(cuts)+1 levels; nil cuts mean a single flat level).
func NewHier(cuts []int) (*Hier, error) {
	for i, c := range cuts {
		if c < 1 {
			return nil, fmt.Errorf("%w: cut %d is %d; cuts must be >= 1", gb.ErrInvalidValue, i, c)
		}
	}
	n := len(cuts) + 1
	h := &Hier{cuts: append([]int(nil), cuts...), cascades: make([]int64, n)}
	for i := 0; i < n; i++ {
		h.levels = append(h.levels, New())
	}
	return h, nil
}

// Update ingests a batch of string triples: A1 = A1 + A, then cascades any
// level whose entry count exceeds its cut.
func (h *Hier) Update(rows, cols []string, vals []float64) error {
	batch, err := FromTriples(rows, cols, vals)
	if err != nil {
		return err
	}
	sum, err := Add(h.levels[0], batch)
	if err != nil {
		return err
	}
	h.levels[0] = sum
	h.updates += int64(len(rows))
	h.batches++
	return h.cascade()
}

func (h *Hier) cascade() error {
	for i := 0; i < len(h.cuts); i++ {
		if h.levels[i].NNZ() <= h.cuts[i] {
			return nil
		}
		up, err := Add(h.levels[i+1], h.levels[i])
		if err != nil {
			return err
		}
		h.levels[i+1] = up
		h.levels[i] = New()
		h.cascades[i]++
	}
	return nil
}

// Query materializes the total associative array Σ Ai without disturbing
// the cascade state.
func (h *Hier) Query() (*Assoc, error) {
	total := New()
	for _, lvl := range h.levels {
		sum, err := Add(total, lvl)
		if err != nil {
			return nil, err
		}
		total = sum
	}
	return total, nil
}

// NNZ returns the number of distinct entries across the hierarchy.
func (h *Hier) NNZ() (int, error) {
	q, err := h.Query()
	if err != nil {
		return 0, err
	}
	return q.NNZ(), nil
}

// LevelNNZ reports per-level entry counts.
func (h *Hier) LevelNNZ() []int {
	out := make([]int, len(h.levels))
	for i, lvl := range h.levels {
		out[i] = lvl.NNZ()
	}
	return out
}

// Updates returns the cumulative number of entries ingested.
func (h *Hier) Updates() int64 { return h.updates }

// Cascades returns a copy of the per-level cascade counters.
func (h *Hier) Cascades() []int64 { return append([]int64(nil), h.cascades...) }
