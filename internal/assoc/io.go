package assoc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hhgb/internal/gb"
)

// WriteTSV writes the associative array as "row<TAB>col<TAB>value" lines
// in row-major key order — the D4M interchange format (ReadCSV/WriteCSV
// in the Matlab toolbox, with tabs).
func (a *Assoc) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	rows, cols, vals := a.Triples()
	for k := range rows {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%v\n", rows[k], cols[k], vals[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses "row<TAB>col<TAB>value" lines into an associative array,
// summing duplicate keys. Blank lines are skipped; malformed lines are an
// error.
func ReadTSV(r io.Reader) (*Assoc, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var rows, cols []string
	var vals []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("%w: line %d has %d fields, want 3", gb.ErrInvalidValue, lineNo, len(parts))
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d value %q: %v", gb.ErrInvalidValue, lineNo, parts[2], err)
		}
		rows = append(rows, parts[0])
		cols = append(cols, parts[1])
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromTriples(rows, cols, vals)
}
