package assoc

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hhgb/internal/gb"
)

func TestTSVRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	rows, cols, vals := triple(r, 60, 25)
	a, err := FromTriples(rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, got) {
		t.Fatal("TSV round trip mismatch")
	}
}

func TestTSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil || got.NNZ() != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestReadTSVSumsDuplicates(t *testing.T) {
	in := "r1\tc1\t2\n\nr1\tc1\t3\n"
	a, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := a.Value("r1", "c1")
	if !ok || v != 5 {
		t.Fatalf("dup sum = %v, %v", v, ok)
	}
}

func TestReadTSVRejectsMalformed(t *testing.T) {
	for i, in := range []string{
		"r1\tc1\n",           // two fields
		"r1\tc1\t1\textra\n", // four fields
		"r1\tc1\tnotanum\n",  // bad value
	} {
		if _, err := ReadTSV(strings.NewReader(in)); !errors.Is(err, gb.ErrInvalidValue) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}
