// Package assoc implements D4M-style associative arrays: sparse matrices
// whose rows and columns are addressed by sorted string keys, backed by the
// hypersparse kernel in internal/gb.
//
// Associative arrays are the representation the paper's prior work
// ("Streaming 1.9 Billion Hypersparse Network Updates Per Second with D4M",
// HPEC 2019) used for traffic matrices. Every algebraic step must maintain
// the sorted key lists and remap indices, which is exactly why integer-keyed
// GraphBLAS matrices are faster — the gap visible between the two
// hierarchical curves in the paper's Fig. 2. This package reproduces that
// baseline faithfully enough to measure it.
package assoc

import (
	"fmt"
	"sort"
	"strings"

	"hhgb/internal/gb"
)

// Assoc is an associative array: string row/column keys over float64
// values. The zero value is the empty array and is ready to use.
// Assoc values are immutable once constructed; algebra returns new arrays.
type Assoc struct {
	rows []string // sorted, unique
	cols []string // sorted, unique
	mat  *gb.Matrix[float64]
}

// New returns the empty associative array.
func New() *Assoc { return &Assoc{} }

// FromTriples constructs an associative array from parallel triple slices;
// duplicate (row, col) pairs have their values summed (the D4M default).
func FromTriples(rows, cols []string, vals []float64) (*Assoc, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("%w: triple lengths %d/%d/%d differ", gb.ErrInvalidValue, len(rows), len(cols), len(vals))
	}
	if len(rows) == 0 {
		return New(), nil
	}
	rk := sortedUnique(rows)
	ck := sortedUnique(cols)
	m, err := gb.NewMatrix[float64](gb.Index(uint64(len(rk))), gb.Index(uint64(len(ck))))
	if err != nil {
		return nil, err
	}
	ri := make([]gb.Index, len(rows))
	ci := make([]gb.Index, len(cols))
	for k := range rows {
		ri[k] = gb.Index(uint64(sort.SearchStrings(rk, rows[k])))
		ci[k] = gb.Index(uint64(sort.SearchStrings(ck, cols[k])))
	}
	if err := m.Build(ri, ci, vals, gb.Plus[float64]().Op); err != nil {
		return nil, err
	}
	return &Assoc{rows: rk, cols: ck, mat: m}, nil
}

// sortedUnique returns the sorted set of the input strings.
func sortedUnique(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for r := 1; r < len(out); r++ {
		if out[r] != out[w] {
			w++
			out[w] = out[r]
		}
	}
	return out[:w+1]
}

// NNZ returns the number of stored entries.
func (a *Assoc) NNZ() int {
	if a.mat == nil {
		return 0
	}
	return a.mat.NVals()
}

// RowKeys returns a copy of the sorted row key list.
func (a *Assoc) RowKeys() []string { return append([]string(nil), a.rows...) }

// ColKeys returns a copy of the sorted column key list.
func (a *Assoc) ColKeys() []string { return append([]string(nil), a.cols...) }

// Value returns the value at (row, col) and whether an entry exists.
func (a *Assoc) Value(row, col string) (float64, bool) {
	if a.mat == nil {
		return 0, false
	}
	ri := sort.SearchStrings(a.rows, row)
	if ri == len(a.rows) || a.rows[ri] != row {
		return 0, false
	}
	ci := sort.SearchStrings(a.cols, col)
	if ci == len(a.cols) || a.cols[ci] != col {
		return 0, false
	}
	v, err := a.mat.ExtractElement(gb.Index(uint64(ri)), gb.Index(uint64(ci)))
	if err != nil {
		return 0, false
	}
	return v, true
}

// Triples returns all entries as parallel key/key/value slices in
// row-major key order.
func (a *Assoc) Triples() (rows, cols []string, vals []float64) {
	if a.mat == nil {
		return nil, nil, nil
	}
	ri, ci, vv := a.mat.ExtractTuples()
	rows = make([]string, len(ri))
	cols = make([]string, len(ci))
	for k := range ri {
		rows[k] = a.rows[ri[k]]
		cols[k] = a.cols[ci[k]]
	}
	return rows, cols, vv
}

// Add returns the associative-array sum a + b: keys are unioned, values on
// colliding (row, col) keys are added. This is the D4M "+" the hierarchical
// D4M cascade is built from; note the full key-remap cost it pays.
func Add(a, b *Assoc) (*Assoc, error) {
	if a.mat == nil {
		return b.copy(), nil
	}
	if b.mat == nil {
		return a.copy(), nil
	}
	rows := mergeKeys(a.rows, b.rows)
	cols := mergeKeys(a.cols, b.cols)
	am, err := remap(a, rows, cols)
	if err != nil {
		return nil, err
	}
	bm, err := remap(b, rows, cols)
	if err != nil {
		return nil, err
	}
	sum, err := gb.EWiseAdd(am, bm, gb.Plus[float64]().Op)
	if err != nil {
		return nil, err
	}
	return &Assoc{rows: rows, cols: cols, mat: sum}, nil
}

// copy returns a deep copy.
func (a *Assoc) copy() *Assoc {
	c := &Assoc{rows: append([]string(nil), a.rows...), cols: append([]string(nil), a.cols...)}
	if a.mat != nil {
		c.mat = a.mat.Dup()
	}
	return c
}

// mergeKeys unions two sorted unique key lists.
func mergeKeys(x, y []string) []string {
	out := make([]string, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) || j < len(y) {
		switch {
		case j >= len(y) || (i < len(x) && x[i] < y[j]):
			out = append(out, x[i])
			i++
		case i >= len(x) || y[j] < x[i]:
			out = append(out, y[j])
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	return out
}

// remap rebuilds a's matrix in the index space of the given key lists
// (which must contain all of a's keys).
func remap(a *Assoc, rows, cols []string) (*gb.Matrix[float64], error) {
	rowMap := make([]gb.Index, len(a.rows))
	for k, key := range a.rows {
		rowMap[k] = gb.Index(uint64(sort.SearchStrings(rows, key)))
	}
	colMap := make([]gb.Index, len(a.cols))
	for k, key := range a.cols {
		colMap[k] = gb.Index(uint64(sort.SearchStrings(cols, key)))
	}
	ri, ci, vv := a.mat.ExtractTuples()
	for k := range ri {
		ri[k] = rowMap[ri[k]]
		ci[k] = colMap[ci[k]]
	}
	return gb.MatrixFromTuples(gb.Index(uint64(len(rows))), gb.Index(uint64(len(cols))), ri, ci, vv, gb.Plus[float64]().Op)
}

// Transpose returns the associative array with row and column keys (and the
// underlying matrix) exchanged.
func (a *Assoc) Transpose() (*Assoc, error) {
	if a.mat == nil {
		return New(), nil
	}
	mt, err := gb.Transpose(a.mat)
	if err != nil {
		return nil, err
	}
	return &Assoc{rows: append([]string(nil), a.cols...), cols: append([]string(nil), a.rows...), mat: mt}, nil
}

// SumRows returns, for each row key with entries, the sum of its values —
// the D4M sum(A, 2) used for out-traffic per source.
func (a *Assoc) SumRows() ([]string, []float64, error) {
	if a.mat == nil {
		return nil, nil, nil
	}
	v, err := gb.ReduceRows(a.mat, gb.Plus[float64]())
	if err != nil {
		return nil, nil, err
	}
	idx, vals := v.ExtractTuples()
	keys := make([]string, len(idx))
	for k := range idx {
		keys[k] = a.rows[idx[k]]
	}
	return keys, vals, nil
}

// SumCols returns, for each column key with entries, the sum of its values.
func (a *Assoc) SumCols() ([]string, []float64, error) {
	if a.mat == nil {
		return nil, nil, nil
	}
	v, err := gb.ReduceCols(a.mat, gb.Plus[float64]())
	if err != nil {
		return nil, nil, err
	}
	idx, vals := v.ExtractTuples()
	keys := make([]string, len(idx))
	for k := range idx {
		keys[k] = a.cols[idx[k]]
	}
	return keys, vals, nil
}

// Total returns the sum of all values.
func (a *Assoc) Total() (float64, error) {
	if a.mat == nil {
		return 0, nil
	}
	return gb.ReduceScalar(a.mat, gb.Plus[float64]())
}

// SubsrefRows returns the sub-array containing only the given row keys
// (absent keys are ignored), with keys preserved — D4M A(keys, :).
func (a *Assoc) SubsrefRows(keys []string) (*Assoc, error) {
	if a.mat == nil {
		return New(), nil
	}
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	return a.filter(func(r, _ string) bool { return want[r] })
}

// SubsrefColsPrefix returns the sub-array whose column keys start with the
// given prefix — the D4M "StartsWith" range query that Accumulo serves with
// a scan.
func (a *Assoc) SubsrefColsPrefix(prefix string) (*Assoc, error) {
	if a.mat == nil {
		return New(), nil
	}
	return a.filter(func(_, c string) bool { return strings.HasPrefix(c, prefix) })
}

// filter rebuilds the array keeping entries whose keys satisfy keep.
func (a *Assoc) filter(keep func(r, c string) bool) (*Assoc, error) {
	rows, cols, vals := a.Triples()
	var fr, fc []string
	var fv []float64
	for k := range rows {
		if keep(rows[k], cols[k]) {
			fr = append(fr, rows[k])
			fc = append(fc, cols[k])
			fv = append(fv, vals[k])
		}
	}
	return FromTriples(fr, fc, fv)
}

// Equal reports whether two associative arrays hold identical keys and
// entries.
func Equal(a, b *Assoc) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	ar, ac, av := a.Triples()
	br, bc, bv := b.Triples()
	for k := range ar {
		if ar[k] != br[k] || ac[k] != bc[k] || av[k] != bv[k] {
			return false
		}
	}
	return true
}

// String summarizes the array.
func (a *Assoc) String() string {
	return fmt.Sprintf("assoc.Assoc[%d rows x %d cols, nnz=%d]", len(a.rows), len(a.cols), a.NNZ())
}
