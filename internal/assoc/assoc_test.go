package assoc

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hhgb/internal/gb"
)

func triple(r *rand.Rand, n int, keys int) (rows, cols []string, vals []float64) {
	for k := 0; k < n; k++ {
		rows = append(rows, fmt.Sprintf("r%03d", r.Intn(keys)))
		cols = append(cols, fmt.Sprintf("c%03d", r.Intn(keys)))
		vals = append(vals, float64(r.Intn(9)+1))
	}
	return
}

func TestFromTriplesBasics(t *testing.T) {
	a, err := FromTriples(
		[]string{"b", "a", "b"},
		[]string{"y", "x", "y"},
		[]float64{1, 2, 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d", a.NNZ())
	}
	v, ok := a.Value("b", "y")
	if !ok || v != 11 {
		t.Fatalf("A(b,y) = %v, %v", v, ok)
	}
	if _, ok := a.Value("a", "y"); ok {
		t.Fatal("phantom entry (a,y)")
	}
	if _, ok := a.Value("zzz", "y"); ok {
		t.Fatal("phantom row key")
	}
	rk := a.RowKeys()
	if len(rk) != 2 || rk[0] != "a" || rk[1] != "b" {
		t.Fatalf("row keys = %v", rk)
	}
}

func TestFromTriplesErrors(t *testing.T) {
	if _, err := FromTriples([]string{"a"}, []string{"b", "c"}, []float64{1}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
	empty, err := FromTriples(nil, nil, nil)
	if err != nil || empty.NNZ() != 0 {
		t.Fatalf("empty: %v, %v", empty, err)
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	f := func() bool {
		rows, cols, vals := triple(r, 50, 20)
		a, err := FromTriples(rows, cols, vals)
		if err != nil {
			return false
		}
		tr, tc, tv := a.Triples()
		b, err := FromTriples(tr, tc, tv)
		if err != nil {
			return false
		}
		return Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		ar, ac, av := triple(r, 40, 15)
		br, bc, bv := triple(r, 40, 15)
		a, _ := FromTriples(ar, ac, av)
		b, _ := FromTriples(br, bc, bv)
		sum, err := Add(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ref := make(map[[2]string]float64)
		for k := range ar {
			ref[[2]string{ar[k], ac[k]}] += av[k]
		}
		for k := range br {
			ref[[2]string{br[k], bc[k]}] += bv[k]
		}
		if sum.NNZ() != len(ref) {
			t.Fatalf("trial %d: NNZ %d, want %d", trial, sum.NNZ(), len(ref))
		}
		for key, want := range ref {
			got, ok := sum.Value(key[0], key[1])
			if !ok || got != want {
				t.Fatalf("trial %d: %v = %v (%v), want %v", trial, key, got, ok, want)
			}
		}
	}
}

func TestAddWithEmpty(t *testing.T) {
	a, _ := FromTriples([]string{"r"}, []string{"c"}, []float64{5})
	e := New()
	s1, err := Add(a, e)
	if err != nil || !Equal(s1, a) {
		t.Fatalf("a + empty: %v, %v", s1, err)
	}
	s2, err := Add(e, a)
	if err != nil || !Equal(s2, a) {
		t.Fatalf("empty + a: %v, %v", s2, err)
	}
	s3, err := Add(e, New())
	if err != nil || s3.NNZ() != 0 {
		t.Fatalf("empty + empty: %v, %v", s3, err)
	}
	// The result must not alias a.
	if v, _ := s1.Value("r", "c"); v != 5 {
		t.Fatalf("copy value = %v", v)
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	f := func() bool {
		ar, ac, av := triple(r, 30, 12)
		br, bc, bv := triple(r, 30, 12)
		a, _ := FromTriples(ar, ac, av)
		b, _ := FromTriples(br, bc, bv)
		ab, err1 := Add(a, b)
		ba, err2 := Add(b, a)
		return err1 == nil && err2 == nil && Equal(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromTriples(
		[]string{"r1", "r2"}, []string{"c1", "c2"}, []float64{1, 2})
	at, err := a.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := at.Value("c2", "r2")
	if !ok || v != 2 {
		t.Fatalf("transposed value = %v, %v", v, ok)
	}
	att, _ := at.Transpose()
	if !Equal(a, att) {
		t.Fatal("double transpose != identity")
	}
	et, err := New().Transpose()
	if err != nil || et.NNZ() != 0 {
		t.Fatalf("empty transpose: %v", err)
	}
}

func TestSums(t *testing.T) {
	a, _ := FromTriples(
		[]string{"r1", "r1", "r2"},
		[]string{"c1", "c2", "c1"},
		[]float64{1, 2, 4},
	)
	keys, sums, err := a.SumRows()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"r1": 3, "r2": 4}
	for k := range keys {
		if want[keys[k]] != sums[k] {
			t.Fatalf("row %s sum = %v", keys[k], sums[k])
		}
	}
	ckeys, csums, err := a.SumCols()
	if err != nil {
		t.Fatal(err)
	}
	cwant := map[string]float64{"c1": 5, "c2": 2}
	for k := range ckeys {
		if cwant[ckeys[k]] != csums[k] {
			t.Fatalf("col %s sum = %v", ckeys[k], csums[k])
		}
	}
	tot, err := a.Total()
	if err != nil || tot != 7 {
		t.Fatalf("total = %v, %v", tot, err)
	}
	if tot, err := New().Total(); err != nil || tot != 0 {
		t.Fatalf("empty total = %v, %v", tot, err)
	}
}

func TestSubsref(t *testing.T) {
	a, _ := FromTriples(
		[]string{"r1", "r2", "r3"},
		[]string{"ip-10", "ip-10", "ip-99"},
		[]float64{1, 2, 3},
	)
	sub, err := a.SubsrefRows([]string{"r1", "r3", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NNZ() != 2 {
		t.Fatalf("subsref NNZ = %d", sub.NNZ())
	}
	if _, ok := sub.Value("r2", "ip-10"); ok {
		t.Fatal("excluded row present")
	}
	pre, err := a.SubsrefColsPrefix("ip-1")
	if err != nil {
		t.Fatal(err)
	}
	if pre.NNZ() != 2 {
		t.Fatalf("prefix NNZ = %d", pre.NNZ())
	}
	if ev, err := New().SubsrefRows([]string{"x"}); err != nil || ev.NNZ() != 0 {
		t.Fatalf("empty subsref: %v", err)
	}
}

func TestHierLinearity(t *testing.T) {
	// Hierarchical D4M must agree with flat D4M accumulation — the same
	// linearity invariant as the GraphBLAS cascade.
	r := rand.New(rand.NewSource(63))
	h, err := NewHier([]int{20, 100})
	if err != nil {
		t.Fatal(err)
	}
	flat := New()
	for step := 0; step < 40; step++ {
		rows, cols, vals := triple(r, 15, 30)
		if err := h.Update(rows, cols, vals); err != nil {
			t.Fatal(err)
		}
		batch, _ := FromTriples(rows, cols, vals)
		flat, err = Add(flat, batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	q, err := h.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(q, flat) {
		t.Fatal("hierarchical D4M != flat D4M")
	}
	if h.Updates() != 40*15 {
		t.Fatalf("updates = %d", h.Updates())
	}
	if h.Cascades()[0] == 0 {
		t.Fatal("no cascades despite small cut")
	}
}

func TestHierCutBound(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	cuts := []int{25}
	h, _ := NewHier(cuts)
	for step := 0; step < 30; step++ {
		rows, cols, vals := triple(r, 10, 100)
		if err := h.Update(rows, cols, vals); err != nil {
			t.Fatal(err)
		}
		if got := h.LevelNNZ()[0]; got > cuts[0] {
			t.Fatalf("step %d: level 0 nnz %d > cut %d", step, got, cuts[0])
		}
	}
}

func TestHierValidation(t *testing.T) {
	if _, err := NewHier([]int{0}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("zero cut: %v", err)
	}
	h, err := NewHier(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Update([]string{"a"}, []string{"b"}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	n, err := h.NNZ()
	if err != nil || n != 1 {
		t.Fatalf("NNZ = %d, %v", n, err)
	}
}

func TestStringSummary(t *testing.T) {
	a, _ := FromTriples([]string{"r"}, []string{"c"}, []float64{1})
	if a.String() == "" {
		t.Fatal("empty string")
	}
}
