// Package trace provides the IP traffic-matrix tooling the paper's
// introduction motivates: mapping IP addresses to hypersparse matrix
// indices, keyed anonymization (traffic data is sensitive), synthetic
// netflow generation, and windowed streaming into hierarchical matrices.
//
// Real network telescopes (e.g. the CAIDA darknet traces used by the
// companion papers) cannot ship with an open-source repository; the
// synthetic generator substitutes a power-law flow source with the same
// matrix-level statistics (heavy-tailed fan-in/fan-out, sparse support).
package trace

import (
	"fmt"
	"strconv"
	"strings"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
)

// Flow is one observed (source, destination, packets) record.
type Flow struct {
	Src     uint32
	Dst     uint32
	Packets uint64
}

// IPv4Space is the matrix dimension covering all IPv4 addresses.
const IPv4Space gb.Index = 1 << 32

// IPv4ToIndex maps an IPv4 address to a matrix index.
func IPv4ToIndex(ip uint32) gb.Index { return gb.Index(uint64(ip)) }

// IndexToIPv4 maps a matrix index back to an IPv4 address; indices beyond
// the IPv4 space are an error.
func IndexToIPv4(i gb.Index) (uint32, error) {
	if uint64(i) >= uint64(IPv4Space) {
		return 0, fmt.Errorf("%w: index %d outside IPv4 space", gb.ErrIndexOutOfBounds, i)
	}
	return uint32(i), nil
}

// ParseIPv4 parses a dotted-quad address.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("%w: %q is not dotted-quad", gb.ErrInvalidValue, s)
	}
	var ip uint32
	for _, p := range parts {
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("%w: octet %q malformed", gb.ErrInvalidValue, p)
		}
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil || v > 255 {
			return 0, fmt.Errorf("%w: octet %q out of range", gb.ErrInvalidValue, p)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// FormatIPv4 renders an address as dotted-quad.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Anonymizer is a keyed bijection on the IPv4 space: a 4-round Feistel
// network over 16-bit halves with a multiplicative round function. It
// preserves matrix structure (it is a permutation) while unlinking
// addresses from real hosts, the anonymization regime traffic-matrix
// archives use.
type Anonymizer struct {
	rk [4]uint32
}

// NewAnonymizer derives round keys from the given secret.
func NewAnonymizer(secret uint64) *Anonymizer {
	a := &Anonymizer{}
	x := secret
	for i := range a.rk {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		a.rk[i] = uint32(x)
	}
	return a
}

func feistelRound(half uint32, key uint32) uint32 {
	x := half*0x9e3779b1 + key
	x ^= x >> 15
	x *= 0x85ebca77
	x ^= x >> 13
	return x & 0xffff
}

// Anon maps an address to its pseudonym.
func (a *Anonymizer) Anon(ip uint32) uint32 {
	l, r := ip>>16, ip&0xffff
	for i := 0; i < 4; i++ {
		l, r = r, l^feistelRound(r, a.rk[i])
	}
	return l<<16 | r
}

// Deanon inverts Anon under the same key.
func (a *Anonymizer) Deanon(ip uint32) uint32 {
	l, r := ip>>16, ip&0xffff
	for i := 3; i >= 0; i-- {
		l, r = r^feistelRound(l, a.rk[i]), l
	}
	return l<<16 | r
}

// Generator produces synthetic netflow with power-law source and
// destination popularity and heavy-tailed packet counts.
type Generator struct {
	pairs *powerlaw.PairSampler
	pkts  *powerlaw.BoundedPareto
	anon  *Anonymizer
}

// NewGenerator returns a seeded flow generator. Generated addresses are
// passed through a keyed permutation so they spread over the full IPv4
// space the way real (anonymized) telescope data does.
func NewGenerator(seed uint64) (*Generator, error) {
	pairs, err := powerlaw.NewParetoPairs(IPv4Space, 1.1, seed)
	if err != nil {
		return nil, err
	}
	pkts, err := powerlaw.NewBoundedPareto(1<<16, 1.3, seed^0x00c0ffee)
	if err != nil {
		return nil, err
	}
	return &Generator{pairs: pairs, pkts: pkts, anon: NewAnonymizer(seed ^ 0xa11ce)}, nil
}

// Next produces one flow.
func (g *Generator) Next() Flow {
	e := g.pairs.Edge()
	return Flow{
		Src:     g.anon.Anon(uint32(uint64(e.Row))),
		Dst:     g.anon.Anon(uint32(uint64(e.Col))),
		Packets: uint64(g.pkts.Next()) + 1,
	}
}

// Batch produces n flows.
func (g *Generator) Batch(n int) []Flow {
	out := make([]Flow, n)
	for k := range out {
		out[k] = g.Next()
	}
	return out
}

// Window accumulates flows into per-window hierarchical traffic matrices:
// the streaming-analysis loop of the paper's motivating application.
// After every FlowsPerWindow flows the current matrix is finalized and a
// fresh one begins.
type Window struct {
	FlowsPerWindow int
	cfg            hier.Config
	current        *hier.Matrix[uint64]
	inWindow       int
	completed      []*gb.Matrix[uint64]
	rows           []gb.Index
	cols           []gb.Index
	vals           []uint64
}

// NewWindow returns a windowed accumulator; cfg configures each window's
// cascade.
func NewWindow(flowsPerWindow int, cfg hier.Config) (*Window, error) {
	if flowsPerWindow < 1 {
		return nil, fmt.Errorf("%w: flows per window %d < 1", gb.ErrInvalidValue, flowsPerWindow)
	}
	cur, err := hier.New[uint64](IPv4Space, IPv4Space, cfg)
	if err != nil {
		return nil, err
	}
	return &Window{FlowsPerWindow: flowsPerWindow, cfg: cfg, current: cur}, nil
}

// Observe streams one batch of flows, rotating windows as they fill.
func (w *Window) Observe(flows []Flow) error {
	for start := 0; start < len(flows); {
		room := w.FlowsPerWindow - w.inWindow
		end := start + room
		if end > len(flows) {
			end = len(flows)
		}
		chunk := flows[start:end]
		w.rows = w.rows[:0]
		w.cols = w.cols[:0]
		w.vals = w.vals[:0]
		for _, f := range chunk {
			w.rows = append(w.rows, IPv4ToIndex(f.Src))
			w.cols = append(w.cols, IPv4ToIndex(f.Dst))
			w.vals = append(w.vals, f.Packets)
		}
		if err := w.current.Update(w.rows, w.cols, w.vals); err != nil {
			return err
		}
		w.inWindow += len(chunk)
		start = end
		if w.inWindow >= w.FlowsPerWindow {
			if err := w.rotate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// rotate finalizes the current window.
func (w *Window) rotate() error {
	total, err := w.current.Flush()
	if err != nil {
		return err
	}
	w.completed = append(w.completed, total.Dup())
	next, err := hier.New[uint64](IPv4Space, IPv4Space, w.cfg)
	if err != nil {
		return err
	}
	w.current = next
	w.inWindow = 0
	return nil
}

// Completed returns the finalized window matrices so far.
func (w *Window) Completed() []*gb.Matrix[uint64] { return w.completed }

// CurrentFill reports how many flows the open window holds.
func (w *Window) CurrentFill() int { return w.inWindow }

// Current returns the live (partial) window's total.
func (w *Window) Current() (*gb.Matrix[uint64], error) { return w.current.Query() }
